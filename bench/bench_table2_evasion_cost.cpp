// Table 2: the cost of evasion — success rate counting ONLY whether the
// adapted model was fooled (ignoring the original model), PGD vs DIVA.
//
// Paper (quantization): PGD 98.4-98.7%, DIVA 95.1-97.0% — DIVA gives up
// at most 3.6 points of raw attack power to gain evasiveness.
// §5.3 also reports that raising c to 10 recovers most of the gap.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Table 2 — evasion cost: success against the adapted model only");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  TablePrinter table({"Arch", "PGD attack-only", "DIVA attack-only (c=1)",
                      "DIVA attack-only (c=10)"});
  for (const Arch arch : kArches) {
    std::printf("  -- %s --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& qat = zoo.adapted_qat(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto q8_fn = ModelZoo::fn(zoo.quantized(arch));
    const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
    const AttackTargets targets{source(orig), source(qat)};

    auto pgd = make_attack("pgd", targets, {.cfg = cfg});
    const EvasionResult rp = run_attack(*pgd, eval, orig_fn, q8_fn);
    auto diva1 = make_attack("diva", targets, {.cfg = cfg, .c = 1.0f});
    const EvasionResult r1 = run_attack(*diva1, eval, orig_fn, q8_fn);
    auto diva10 = make_attack("diva", targets, {.cfg = cfg, .c = 10.0f});
    const EvasionResult r10 = run_attack(*diva10, eval, orig_fn, q8_fn);

    table.add_row({arch_name(arch), fmt(rp.attack_only_rate()) + "%",
                   fmt(r1.attack_only_rate()) + "%",
                   fmt(r10.attack_only_rate()) + "%"});
  }
  table.print();
  std::printf(
      "\npaper: PGD 98.4-98.7%%, DIVA(c=1) 95.1-97.0%% (1.7-3.6pp cheaper\n"
      "than PGD); raising c toward 10 recovers the attack-only gap at the\n"
      "price of evasiveness (§5.3). The reproduced shape: DIVA(c=10)\n"
      "approaches PGD while DIVA(c=1) trades raw attack power for evasion.\n");
  return 0;
}
