// Table 2: the cost of evasion — success rate counting ONLY whether the
// adapted model was fooled (ignoring the original model), PGD vs DIVA.
//
// Paper (quantization): PGD 98.4-98.7%, DIVA 95.1-97.0% — DIVA gives up
// at most 3.6 points of raw attack power to gain evasiveness.
// §5.3 also reports that raising c to 10 recovers most of the gap.
//
// Second section: the probe-compression query-efficiency sweep — the
// derivative-free (black-box) attack on the deployed int8 artifact,
// dense SPSA vs the compressed estimators (subspace / sparse / batched
// probing), across probe budgets. Each grid point emits one JSON row
// with its telemetry query accounting, so the queries-per-evasion
// trend is diffable across PRs (tools/check_probe_efficiency gates it).
//
//   DIVA_TABLE2_SMOKE=1   downsampled sweep for CI
//   DIVA_TABLE2_JSON      sweep output path (default
//                         table2_probe_compression.json)
#include <ctime>
#include <fstream>
#include <thread>

#include "attack/probe_compression.h"
#include "bench_common.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "telemetry/telemetry.h"

using namespace diva;
using namespace diva::bench;

namespace {

std::string today() {
  const std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  localtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

std::uint64_t counter_of(const telemetry::Snapshot& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

/// One sweep point: a labeled probing configuration at one budget.
struct SweepPoint {
  const char* variant;
  FdConfig fd;
};

void run_probe_compression_sweep(ModelZoo& zoo) {
  banner("probe compression — query-efficiency sweep (black-box int8-fd)");
  const bool smoke = env_flag("DIVA_TABLE2_SMOKE", false);
  const std::string json_path =
      env_string("DIVA_TABLE2_JSON", "table2_probe_compression.json");
  std::ofstream json(json_path);
  DIVA_CHECK(json.good(), "cannot open JSON output path " << json_path);

  const std::string date = today();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::string cpu_flags = cpu_features_summary();
  const char* tier = isa_tier_name(active_isa_tier());

  // One architecture keeps the grid paired and the wall-clock sane; the
  // estimators don't interact with the conv topology.
  const Arch arch = Arch::kResNet;
  const QuantizedModel& q8 = zoo.quantized(arch);
  const auto q8_fn = ModelZoo::fn(q8);
  const Dataset eval =
      make_eval_set(zoo.val_set(), {q8_fn}, smoke ? 1 : 2);
  const auto n = static_cast<std::int64_t>(eval.size());

  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = smoke ? 2 : 6;
  const std::vector<int> budgets = smoke ? std::vector<int>{4, 8}
                                         : std::vector<int>{16, 64};

  // PCA basis fit from the eval images themselves — the paper-track
  // image manifold, not synthetic directions.
  const auto pca = make_pca_subspace(eval.images, 16);
  FdConfig sub_rand, sub_pca, sparse, batch, stack;
  sub_rand.subspace_dim = 16;
  sub_pca.subspace = pca;
  sparse.sparsity = 0.25f;
  batch.batch_probes = true;
  batch.max_probe_rows = 512;
  stack.subspace = pca;
  stack.sparsity = 0.5f;
  stack.batch_probes = true;
  stack.max_probe_rows = 512;
  const SweepPoint points[] = {
      {"dense", {}},        {"sub16-rand", sub_rand}, {"sub16-pca", sub_pca},
      {"sp25", sparse},     {"batch", batch},         {"stack", stack},
  };

  std::printf("arch %s, %zd images, %d steps; budgets:",
              arch_name(arch).c_str(), static_cast<std::ptrdiff_t>(n),
              cfg.steps);
  for (const int b : budgets) std::printf(" %d", b);
  std::printf("; writing %s\n\n", json_path.c_str());

  TablePrinter table({"Variant", "Samples", "Attack-only", "Queries",
                      "Probe fwds", "Seconds"});
  for (const SweepPoint& p : points) {
    for (const int samples : budgets) {
      FdConfig fd = p.fd;
      fd.samples = samples;
      auto attack = make_attack("pgd", {nullptr, fd_source(q8, fd)},
                                {.cfg = cfg});
      const telemetry::Snapshot before = telemetry::snapshot();
      const auto t0 = std::chrono::steady_clock::now();
      const Tensor adv = attack->perturb(eval.images, eval.labels);
      const double secs =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      const telemetry::Snapshot telem =
          telemetry::diff(telemetry::snapshot(), before);
      const EvasionResult ev =
          evaluate_evasion(q8_fn, q8_fn, eval.images, adv, eval.labels);

      const std::uint64_t queries = counter_of(telem, "quant.forward.rows");
      const std::uint64_t probe_rows =
          counter_of(telem, "attack.fd.spsa_probes");
      const std::uint64_t forwards =
          counter_of(telem, "attack.fd.probe_forwards");
      const std::uint64_t dof = counter_of(telem, "attack.fd.probe_dof");

      char row[512];
      std::snprintf(
          row, sizeof(row),
          "{\"bench\":\"table2_probe_compression\",\"date\":\"%s\","
          "\"cores\":%u,\"isa_tier\":\"%s\",\"cpu_flags\":\"%s\","
          "\"variant\":\"%s\",\"label\":\"%s\",\"samples\":%d,"
          "\"steps\":%d,\"images\":%zd,\"adapted_fooled\":%d,"
          "\"attack_only_pct\":%.2f,\"deployed_queries\":%llu,"
          "\"probe_rows\":%llu,\"probe_forwards\":%llu,\"probe_dof\":%llu,"
          "\"seconds\":%.4f,\"images_per_sec\":%.2f}",
          date.c_str(), cores, tier, cpu_flags.c_str(), p.variant,
          fd_label(fd).c_str(), samples, cfg.steps,
          static_cast<std::ptrdiff_t>(n), ev.adapted_fooled,
          ev.attack_only_rate(),
          static_cast<unsigned long long>(queries),
          static_cast<unsigned long long>(probe_rows),
          static_cast<unsigned long long>(forwards),
          static_cast<unsigned long long>(dof), secs,
          secs > 0 ? static_cast<double>(n) / secs : 0.0);
      json << row << "\n";
      json.flush();

      table.add_row({std::string(p.variant), std::to_string(samples),
                     fmt(ev.attack_only_rate()) + "%",
                     std::to_string(queries), std::to_string(forwards),
                     fmt(static_cast<float>(secs))});
    }
  }
  table.print();
  std::printf(
      "\nqueries = int8 rows through the deployed artifact (telemetry\n"
      "quant.forward.rows). The compression claim: a compressed variant\n"
      "at a quarter of the probe budget matches the dense estimator's\n"
      "attack-only rate at full budget — same evasion, a fraction of the\n"
      "deployed-model queries (gated by tools/check_probe_efficiency).\n");
}

}  // namespace

int main() {
  ModelZoo zoo;
  if (env_flag("DIVA_TABLE2_SMOKE", false)) {
    // CI smoke: only the gated probe-compression sweep; the paper
    // table trains and attacks all three architectures.
    std::printf("[smoke] skipping the paper Table 2 section\n");
    run_probe_compression_sweep(zoo);
    return 0;
  }

  banner("Table 2 — evasion cost: success against the adapted model only");
  const AttackConfig cfg = ExperimentDefaults::attack();

  TablePrinter table({"Arch", "PGD attack-only", "DIVA attack-only (c=1)",
                      "DIVA attack-only (c=10)"});
  for (const Arch arch : kArches) {
    std::printf("  -- %s --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& qat = zoo.adapted_qat(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto q8_fn = ModelZoo::fn(zoo.quantized(arch));
    const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
    const AttackTargets targets{source(orig), source(qat)};

    auto pgd = make_attack("pgd", targets, {.cfg = cfg});
    const EvasionResult rp = run_attack(*pgd, eval, orig_fn, q8_fn);
    auto diva1 = make_attack("diva", targets, {.cfg = cfg, .c = 1.0f});
    const EvasionResult r1 = run_attack(*diva1, eval, orig_fn, q8_fn);
    auto diva10 = make_attack("diva", targets, {.cfg = cfg, .c = 10.0f});
    const EvasionResult r10 = run_attack(*diva10, eval, orig_fn, q8_fn);

    table.add_row({arch_name(arch), fmt(rp.attack_only_rate()) + "%",
                   fmt(r1.attack_only_rate()) + "%",
                   fmt(r10.attack_only_rate()) + "%"});
  }
  table.print();
  std::printf(
      "\npaper: PGD 98.4-98.7%%, DIVA(c=1) 95.1-97.0%% (1.7-3.6pp cheaper\n"
      "than PGD); raising c toward 10 recovers the attack-only gap at the\n"
      "price of evasiveness (§5.3). The reproduced shape: DIVA(c=10)\n"
      "approaches PGD while DIVA(c=1) trades raw attack power for evasion.\n");

  run_probe_compression_sweep(zoo);
  return 0;
}
