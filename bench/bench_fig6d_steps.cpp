// Figure 6d: top-1 evasive success on ResNet as attack steps increase.
//
// Paper: PGD plateaus at 40.8% by step 7; DIVA keeps climbing and
// reaches 96.9% by step 11.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Figure 6d — top-1 evasive success vs attack steps (ResNet)");
  ModelZoo zoo;
  Sequential& orig = zoo.original(Arch::kResNet);
  Sequential& qat = zoo.adapted_qat(Arch::kResNet);
  const auto orig_fn = ModelZoo::fn(orig);
  const auto q8_fn = ModelZoo::fn(zoo.quantized(Arch::kResNet));
  const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});

  AttackConfig cfg = ExperimentDefaults::attack();
  std::vector<float> pgd_curve(static_cast<std::size_t>(cfg.steps));
  std::vector<float> diva_curve(static_cast<std::size_t>(cfg.steps));
  const AttackTargets targets{source(orig), source(qat)};

  cfg.step_callback = [&](int step, const Tensor& x_adv) {
    const EvasionResult r =
        evaluate_evasion(orig_fn, q8_fn, eval.images, x_adv, eval.labels);
    pgd_curve[static_cast<std::size_t>(step - 1)] = r.top1_rate();
  };
  auto pgd = make_attack("pgd", targets, {.cfg = cfg});
  (void)pgd->perturb(eval.images, eval.labels);

  cfg.step_callback = [&](int step, const Tensor& x_adv) {
    const EvasionResult r =
        evaluate_evasion(orig_fn, q8_fn, eval.images, x_adv, eval.labels);
    diva_curve[static_cast<std::size_t>(step - 1)] = r.top1_rate();
  };
  auto diva = make_attack("diva", targets,
                          {.cfg = cfg, .c = ExperimentDefaults::kC});
  (void)diva->perturb(eval.images, eval.labels);

  TablePrinter table({"Step", "PGD top1 (%)", "DIVA top1 (%)"});
  for (int s = 0; s < cfg.steps; ++s) {
    table.add_row({std::to_string(s + 1),
                   fmt(pgd_curve[static_cast<std::size_t>(s)]),
                   fmt(diva_curve[static_cast<std::size_t>(s)])});
  }
  table.print();
  std::printf(
      "\npaper shape: PGD's evasive success plateaus after a few steps\n"
      "(40.8%% at step 7) while DIVA keeps climbing (96.9%% at step 11)\n"
      "and dominates from step 1 on.\n");
  return 0;
}
