// §5.4: other baseline attacks under the quantization setting, top-1
// evasive success criterion.
//
// Paper (average across the three architectures): CW 25.5%,
// Momentum PGD 39.4%, PGD 40.6% — both alternatives are no better than
// plain PGD, and all are far below DIVA.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Sec 5.4 — baseline attacks (top-1 evasive success)");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  TablePrinter table({"Arch", "CW", "MomentumPGD", "PGD", "DIVA"});
  double sum_cw = 0, sum_mpgd = 0, sum_pgd = 0, sum_diva = 0;

  for (const Arch arch : kArches) {
    std::printf("  -- %s --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& qat = zoo.adapted_qat(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto q8_fn = ModelZoo::fn(zoo.quantized(arch));
    const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
    const AttackTargets targets{source(orig), source(qat)};

    AttackConfig mcfg = cfg;
    mcfg.momentum = 0.5f;
    auto cw = make_attack("cw", targets, {.cfg = cfg});
    auto mpgd = make_attack("momentum-pgd", targets, {.cfg = mcfg});
    auto pgd = make_attack("pgd", targets, {.cfg = cfg});
    auto diva = make_attack("diva", targets,
                            {.cfg = cfg, .c = ExperimentDefaults::kC});

    const float r_cw = run_attack(*cw, eval, orig_fn, q8_fn).top1_rate();
    const float r_mp = run_attack(*mpgd, eval, orig_fn, q8_fn).top1_rate();
    const float r_pg = run_attack(*pgd, eval, orig_fn, q8_fn).top1_rate();
    const float r_dv = run_attack(*diva, eval, orig_fn, q8_fn).top1_rate();
    sum_cw += r_cw;
    sum_mpgd += r_mp;
    sum_pgd += r_pg;
    sum_diva += r_dv;
    table.add_row({arch_name(arch), fmt(r_cw), fmt(r_mp), fmt(r_pg),
                   fmt(r_dv)});
  }
  table.add_row({"average", fmt(sum_cw / 3), fmt(sum_mpgd / 3),
                 fmt(sum_pgd / 3), fmt(sum_diva / 3)});
  table.print();
  std::printf(
      "\npaper averages: CW 25.5, MomentumPGD 39.4, PGD 40.6 — single-model\n"
      "baselines cluster together and below DIVA; CW (margin loss) is the\n"
      "weakest evader because it drives the sample deep past the boundary,\n"
      "maximizing transfer to the original model.\n");
  return 0;
}
