// Figure 8: DIVA against pruning adaptation (§5.6).
//   8a/8b  pruned models:            top-1 / top-5 evasive success.
//   8c/8d  pruned + quantized:       top-1 / top-5 evasive success.
//
// Paper: DIVA >= 97.8% top-1 everywhere and always above PGD; PGD gets
// closer to DIVA than in the quantization setting because pruning is a
// more intrusive adaptation (instability 17.1-33.5%, natural-image
// confidence delta 10-36.1%), which lets plain PGD hit the pruned model
// without collaterally flipping the original. Attack-only success is
// ~100% for both attacks.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Figure 8 — attacks on pruned and pruned+quantized models");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  TablePrinter t_pruned({"Arch", "sparsity", "instab", "nat cd", "PGD top1",
                         "DIVA top1", "PGD top5", "DIVA top5"});
  TablePrinter t_pq({"Arch", "PGD top1", "DIVA top1", "PGD top5",
                     "DIVA top5", "PGD att-only", "DIVA att-only"});

  for (const Arch arch : kArches) {
    std::printf("  -- %s (pruned) --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& pruned = zoo.pruned(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto pruned_fn = ModelZoo::fn(pruned);

    const InstabilityStats s = instability(orig_fn, pruned_fn, zoo.val_set());
    const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, pruned_fn});

    const AttackTargets targets{source(orig), source(pruned)};
    auto pgd = make_attack("pgd", targets, {.cfg = cfg});
    auto diva = make_attack("diva", targets,
                            {.cfg = cfg, .c = ExperimentDefaults::kC});
    const EvasionResult rp = run_attack(*pgd, eval, orig_fn, pruned_fn);
    const EvasionResult rd = run_attack(*diva, eval, orig_fn, pruned_fn);

    // Sparsity: measured zero fraction on prunable weights.
    float nat_cd = rd.conf_delta_natural;
    t_pruned.add_row(
        {arch_name(arch), "60%", fmt(100.0 * s.instability) + "%",
         fmt(nat_cd) + "%", fmt(rp.top1_rate()), fmt(rd.top1_rate()),
         fmt(rp.top5_rate()), fmt(rd.top5_rate())});

    std::printf("  -- %s (pruned+quantized) --\n", arch_name(arch).c_str());
    Sequential& pq_qat = zoo.pruned_qat(arch);
    const auto pq_fn = ModelZoo::fn(zoo.pruned_quantized(arch));
    const Dataset eval_pq = make_eval_set(zoo.val_set(), {orig_fn, pq_fn});
    const AttackTargets pq_targets{source(orig), source(pq_qat)};
    auto pgd2 = make_attack("pgd", pq_targets, {.cfg = cfg});
    auto diva2 = make_attack("diva", pq_targets,
                             {.cfg = cfg, .c = ExperimentDefaults::kC});
    const EvasionResult rp2 = run_attack(*pgd2, eval_pq, orig_fn, pq_fn);
    const EvasionResult rd2 = run_attack(*diva2, eval_pq, orig_fn, pq_fn);
    t_pq.add_row({arch_name(arch), fmt(rp2.top1_rate()),
                  fmt(rd2.top1_rate()), fmt(rp2.top5_rate()),
                  fmt(rd2.top5_rate()), fmt(rp2.attack_only_rate()),
                  fmt(rd2.attack_only_rate())});
  }

  banner("Fig. 8a/8b — pruned models (evasive success, %)");
  t_pruned.print();
  std::printf("paper: instability 17.1-33.5%%, natural cd 10-36.1%%; DIVA\n"
              ">= 97.8 top-1 and above PGD; PGD closer to DIVA than under\n"
              "quantization.\n");

  banner("Fig. 8c/8d — pruned + quantized models (evasive success, %)");
  t_pq.print();
  std::printf("paper: both attacks ~98-100%% attack-only; DIVA's top-5\n"
              "significantly higher than PGD's.\n");
  return 0;
}
