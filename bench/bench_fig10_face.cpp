// Figure 10 + §6: the face-recognition case study.
//   10a  top-1 evasive success: DIVA ~98% vs PGD much lower.
//   10b  top-5 evasive success: DIVA ahead, both lower than ImageNet
//        because only 150 identities exist (30 here).
//   10c  confidence delta: natural < PGD < DIVA.
//   §6   targeted attack: steering the adapted model's misprediction
//        onto a chosen identity (paper: hits a set of ~8.3 of 150).
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Figure 10 / Sec 6 — face recognition case study");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  Sequential& orig = zoo.face_original();
  Sequential& qat = zoo.face_qat();
  const auto orig_fn = ModelZoo::fn(orig);
  const auto q8_fn = ModelZoo::fn(zoo.face_quantized());

  std::printf("  face model: orig acc %.1f%%, int8 acc %.1f%% (paper: 99.4 /"
              " 99.0)\n",
              100.0 * accuracy(orig_fn, zoo.face_val()),
              100.0 * accuracy(q8_fn, zoo.face_val()));

  const Dataset eval =
      make_eval_set(zoo.face_val(), {orig_fn, q8_fn}, /*per_class=*/5);

  const AttackTargets targets{source(orig), source(qat)};
  auto pgd = make_attack("pgd", targets, {.cfg = cfg});
  auto diva = make_attack("diva", targets,
                          {.cfg = cfg, .c = ExperimentDefaults::kC});
  const EvasionResult rp = run_attack(*pgd, eval, orig_fn, q8_fn);
  const EvasionResult rd = run_attack(*diva, eval, orig_fn, q8_fn);

  TablePrinter table({"Attack", "top1 evasive", "top5 evasive",
                      "conf delta", "attack-only"});
  table.add_row({"PGD", fmt(rp.top1_rate()) + "%", fmt(rp.top5_rate()) + "%",
                 fmt(rp.conf_delta_adv) + "%",
                 fmt(rp.attack_only_rate()) + "%"});
  table.add_row({"DIVA", fmt(rd.top1_rate()) + "%", fmt(rd.top5_rate()) + "%",
                 fmt(rd.conf_delta_adv) + "%",
                 fmt(rd.attack_only_rate()) + "%"});
  table.print();
  std::printf("  natural conf delta: %.1f%%\n", rd.conf_delta_natural);
  std::printf(
      "\npaper: DIVA ~98%% top-1, DIVA > PGD on every metric; top-5 lower\n"
      "than the ImageNet setting because the label space is small.\n");

  // ------------------------------------------------------------------
  // Targeted attack (§6): for a handful of target identities, try to
  // steer the adapted model's misprediction onto the target.
  // ------------------------------------------------------------------
  banner("Sec 6 — targeted DIVA");
  const int kTargets = 5;
  int evaluated = 0, hit_target = 0, evasive_hit = 0;
  for (int t = 0; t < kTargets; ++t) {
    const int target = (t * 7 + 3) % zoo.config().face_identities;
    // Victims: eval images whose label differs from the target.
    std::vector<int> victims;
    for (std::int64_t i = 0; i < eval.size() && victims.size() < 20; ++i) {
      if (eval.labels[static_cast<std::size_t>(i)] != target) {
        victims.push_back(static_cast<int>(i));
      }
    }
    Dataset vic = eval.subset(victims);
    auto attack = make_attack(
        "targeted-diva", targets,
        {.cfg = cfg, .c = 1.0f, .k = 2.0f, .target = target});
    const Tensor adv = attack->perturb(vic.images, vic.labels);
    const auto pred_a = argmax_rows(q8_fn(adv));
    const auto pred_o = argmax_rows(orig_fn(adv));
    for (std::size_t i = 0; i < pred_a.size(); ++i) {
      ++evaluated;
      if (pred_a[i] == target) {
        ++hit_target;
        if (pred_o[i] == vic.labels[i]) ++evasive_hit;
      }
    }
  }
  std::printf(
      "  targeted DIVA over %d targets x ~20 victims: adapted model driven\n"
      "  to the chosen identity on %.1f%% of attempts (%.1f%% while the\n"
      "  original model stayed correct).\n",
      kTargets, 100.0 * hit_target / evaluated,
      100.0 * evasive_hit / evaluated);
  std::printf(
      "\npaper: the targeted variant narrows the misprediction to a set of\n"
      "~8.3 of 150 people on average — a coarse steering capability, which\n"
      "is the behaviour to compare (nonzero but far from perfect).\n");
  return 0;
}
