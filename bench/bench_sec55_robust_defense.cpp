// §5.5: robust (PGD-minimax) training as a defense.
//
// Paper: on a robust-trained ResNet50 + quantized twin, DIVA's top-1
// evasive success is 12.8% (c=5) vs PGD 10.5%; robust accuracy under
// the evasive attacks is ~22% for both; with c=1.5 DIVA trades 4pp of
// attack-only success for +10.1pp evasive success vs PGD. Everything is
// strongly compressed relative to the undefended models because robust
// training shrinks the divergence wedge between the two models.
#include "bench_common.h"
#include "robust/robust.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Sec 5.5 — robust training as a defense (ResNet)");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  Sequential& orig = zoo.robust_original();
  Sequential& qat = zoo.robust_qat();
  const auto orig_fn = ModelZoo::fn(orig);
  const auto q8_fn = ModelZoo::fn(zoo.robust_quantized());

  const InstabilityStats s = instability(orig_fn, q8_fn, zoo.val_set());
  std::printf("  robust orig acc %.1f%%, robust int8 acc %.1f%%, "
              "instability %.1f%%\n",
              100.0 * s.orig_accuracy, 100.0 * s.adapted_accuracy,
              100.0 * s.instability);

  const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
  const AttackTargets targets{source(orig), source(qat)};

  TablePrinter table({"Attack", "top1 evasive", "attack-only",
                      "robust acc (adapted)"});
  auto pgd = make_attack("pgd", targets, {.cfg = cfg});
  const Tensor adv_p = pgd->perturb(eval.images, eval.labels);
  const EvasionResult rp =
      evaluate_evasion(orig_fn, q8_fn, eval.images, adv_p, eval.labels);
  table.add_row({"PGD", fmt(rp.top1_rate()) + "%",
                 fmt(rp.attack_only_rate()) + "%",
                 fmt(100.0 - rp.attack_only_rate()) + "%"});

  for (const float c : {1.5f, 5.0f}) {
    auto diva = make_attack("diva", targets, {.cfg = cfg, .c = c});
    const Tensor adv_d = diva->perturb(eval.images, eval.labels);
    const EvasionResult rd =
        evaluate_evasion(orig_fn, q8_fn, eval.images, adv_d, eval.labels);
    table.add_row({"DIVA c=" + fmt(c, 1), fmt(rd.top1_rate()) + "%",
                   fmt(rd.attack_only_rate()) + "%",
                   fmt(100.0 - rd.attack_only_rate()) + "%"});
  }
  table.print();

  std::printf(
      "\npaper: PGD 10.5%% vs DIVA(c=5) 12.8%% top-1 evasive; DIVA(c=1.5)\n"
      "+10.1pp evasive over PGD at -4pp attack-only; robust accuracy ~22%%\n"
      "for both. Reproduced shape: all success rates compressed relative\n"
      "to the undefended benches (robust training shrinks the divergence\n"
      "wedge), with DIVA retaining an evasive edge over PGD.\n");
  return 0;
}
