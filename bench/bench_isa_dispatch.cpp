// bench_isa_dispatch — paired ISA-tier sweep for the kernel runtime.
//
// Measures the same three workloads at every ISA tier this process can
// execute (available_isa_tiers), switching tiers in-process with
// force_isa_tier so one invocation produces a same-day, same-machine
// paired comparison (ROADMAP's drift caveat: never compare img/s rows
// from different runs). Tiers are INTERLEAVED round by round — round r
// runs scalar, avx2, ... back to back — so slow box-level drift lands
// on every tier equally instead of biasing the last one.
//
// Workloads:
//   int8_batched_forward  batched QuantizedModel::forward (pure igemm)
//   pgd/int8-fd           SPSA probing of the int8 artifact (igemm +
//                         attack loop) — the headline DIVA-on-edge path
//   diva/sgemm            DIVA joint attack on float original + QAT
//                         twin (pure sgemm fwd/bwd)
//
// The pool is untrained (init + calibrate + compile): img/s depends on
// arithmetic, not accuracy. One JSON line per (mode, tier, round) goes
// to DIVA_ISA_BENCH_JSON (default isa_dispatch.json).
//
// Env knobs (src/runtime/env.h):
//   DIVA_ISA_BENCH_SMOKE=1   one round, smaller workloads (CI smoke)
//   DIVA_ISA_BENCH_JSON      output path
//   DIVA_ISA_BENCH_ROUNDS    interleaved rounds (default 3)
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <vector>

#include "attack/engine.h"
#include "attack/registry.h"
#include "bench_common.h"
#include "data/synth_digits.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "runtime/env.h"

namespace {

using namespace diva;

std::string today() {
  const std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  localtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

struct Workload {
  const char* mode;
  std::int64_t images;                 // per timed call
  std::function<void()> run;           // one timed call
};

}  // namespace

int main() {
  const bool smoke = env_flag("DIVA_ISA_BENCH_SMOKE", false);
  const std::string json_path =
      env_string("DIVA_ISA_BENCH_JSON", "isa_dispatch.json");
  const int rounds =
      static_cast<int>(env_int_positive("DIVA_ISA_BENCH_ROUNDS", smoke ? 1 : 3));

  std::ofstream json(json_path);
  DIVA_CHECK(json.good(), "cannot open JSON output path " << json_path);

  banner(std::string("kernel ISA dispatch sweep") + (smoke ? " (smoke)" : ""));
  const std::string date = today();
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const std::string cpu_flags = cpu_features_summary();
  const std::vector<IsaTier> tiers = available_isa_tiers();
  const IsaTier startup_tier = active_isa_tier();
  std::printf("machine: %u core(s); cpu: %s\nstartup isa_tier: %s; "
              "sweeping %zu tier(s), %d round(s)\n\n",
              cores, cpu_flags.empty() ? "baseline x86-64" : cpu_flags.c_str(),
              isa_tier_name(startup_tier), tiers.size(), rounds);

  // Untrained digit-track pool (weights random, calibration real).
  auto original = make_digit_net(NetMode::kFloat);
  init_parameters(*original, 41);
  auto qat = make_digit_net(NetMode::kQat);
  init_parameters(*qat, 42);
  const SynthDigits digits;
  const Dataset calib = digits.generate(2);
  calibrate(*qat, {calib.images});
  const QuantizedModel quantized =
      QuantizedModel::compile(*qat, Shape{SynthDigits::kChannels,
                                          SynthDigits::kHeight,
                                          SynthDigits::kWidth});

  const std::int64_t fwd_batch = smoke ? 32 : 64;
  const std::int64_t atk_batch = smoke ? 8 : 16;
  const int atk_steps = smoke ? 2 : 4;
  const int fd_samples = smoke ? 8 : 16;
  const int fwd_reps = smoke ? 4 : 16;

  const Dataset fwd_set =
      digits.generate(static_cast<int>((fwd_batch + 9) / 10), 500);
  std::vector<int> fwd_take;
  for (std::int64_t i = 0; i < fwd_batch; ++i)
    fwd_take.push_back(static_cast<int>(i));
  const Tensor fwd_x = fwd_set.subset(fwd_take).images;

  const Dataset atk_set =
      digits.generate(static_cast<int>((atk_batch + 9) / 10), 900);
  std::vector<int> atk_take;
  for (std::int64_t i = 0; i < atk_batch; ++i)
    atk_take.push_back(static_cast<int>(i));
  const Dataset atk = atk_set.subset(atk_take);

  AttackConfig acfg;
  acfg.epsilon = 0.05f;
  acfg.alpha = 0.01f;
  acfg.steps = atk_steps;
  acfg.seed = 7;

  auto fd_pgd = make_attack(
      "pgd", {nullptr, fd_source(quantized, {.samples = fd_samples})},
      {.cfg = acfg});
  auto diva_atk = make_attack(
      "diva", {source(*original), source(*qat)}, {.cfg = acfg, .c = 1.0f});
  const AttackEngine engine({.threads = 1, .shard_size = 4});

  const std::vector<Workload> workloads = {
      {"int8_batched_forward", fwd_batch * fwd_reps,
       [&] {
         for (int i = 0; i < fwd_reps; ++i) (void)quantized.forward(fwd_x);
       }},
      {"pgd/int8-fd", atk_batch,
       [&] { (void)engine.run(*fd_pgd, atk.images, atk.labels); }},
      {"diva/sgemm", atk_batch,
       [&] { (void)engine.run(*diva_atk, atk.images, atk.labels); }},
  };

  TablePrinter table({"round", "isa_tier", "mode", "seconds", "img/s"});
  for (int round = 0; round < rounds; ++round) {
    for (const IsaTier tier : tiers) {
      force_isa_tier(tier);
      for (const Workload& w : workloads) {
        w.run();  // warm-up: packs buffers, faults pages, primes caches
        const auto t0 = std::chrono::steady_clock::now();
        w.run();
        const double secs =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        const double img_s = static_cast<double>(w.images) / secs;
        table.add_row({std::to_string(round), isa_tier_name(tier), w.mode,
                       fmt(secs, 4), fmt(img_s, 1)});
        json << "{\"bench\":\"isa_dispatch\",\"date\":\"" << date
             << "\",\"cores\":" << cores << ",\"isa_tier\":\""
             << isa_tier_name(tier) << "\",\"cpu_flags\":\"" << cpu_flags
             << "\",\"mode\":\"" << w.mode << "\",\"round\":" << round
             << ",\"images\":" << w.images << ",\"seconds\":" << fmt(secs, 4)
             << ",\"images_per_sec\":" << fmt(img_s, 1) << "}\n";
        json.flush();
      }
    }
  }
  force_isa_tier(startup_tier);

  std::printf("\n");
  table.print();
  std::printf("\nwrote JSON rows to %s\n", json_path.c_str());
  return 0;
}
