// Figure 1: outcome categories (both correct / orig-correct+quant-wrong /
// both wrong / orig-wrong+quant-correct) after attacking the quantized
// ResNet with PGD vs DIVA.
//
// Paper: PGD lands most images in "both incorrect" (the attack
// transfers to the original model); DIVA lands most images in
// "original correct & quantized incorrect" — the evasive cell.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

namespace {

void report(const char* name, const OutcomeBreakdown& b) {
  std::printf("  %-6s both-correct %5.1f%%  ORIG-OK+QUANT-WRONG %5.1f%%  "
              "both-wrong %5.1f%%  orig-wrong+quant-ok %5.1f%%\n",
              name, 100.0 * b.both_correct / b.total,
              100.0 * b.orig_correct_adapted_wrong / b.total,
              100.0 * b.both_wrong / b.total,
              100.0 * b.orig_wrong_adapted_correct / b.total);
}

}  // namespace

int main() {
  banner("Figure 1 — PGD vs DIVA outcome categories on quantized ResNet");
  ModelZoo zoo;
  Sequential& orig = zoo.original(Arch::kResNet);
  Sequential& qat = zoo.adapted_qat(Arch::kResNet);
  const auto orig_fn = ModelZoo::fn(orig);
  const auto q8_fn = ModelZoo::fn(zoo.quantized(Arch::kResNet));

  const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
  const AttackConfig cfg = ExperimentDefaults::attack();
  const AttackTargets targets{source(orig), source(qat)};

  auto pgd = make_attack("pgd", targets, {.cfg = cfg});
  const Tensor adv_pgd = pgd->perturb(eval.images, eval.labels);
  report("PGD", outcome_breakdown(orig_fn, q8_fn, adv_pgd, eval.labels));

  auto dva = make_attack("diva", targets,
                         {.cfg = cfg, .c = ExperimentDefaults::kC});
  const Tensor adv_diva = dva->perturb(eval.images, eval.labels);
  report("DIVA", outcome_breakdown(orig_fn, q8_fn, adv_diva, eval.labels));

  std::printf(
      "\npaper shape: PGD concentrates mass in 'both wrong' (it transfers\n"
      "to the original model); DIVA concentrates mass in the evasive cell\n"
      "'original correct & quantized wrong'.\n");
  return 0;
}
