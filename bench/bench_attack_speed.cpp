// §5.2 "Attack speed": PGD and DIVA run at nearly the same wall-clock
// cost per step (paper: ~1 s/step each on their hardware; the claim is
// the *ratio*, not the absolute number). Also microbenches the int8
// engine against the float forward — the edge-deployment speedup that
// motivates quantization in the first place.
#include <benchmark/benchmark.h>

#include "attack/attack.h"
#include "core/experiment_defaults.h"
#include "core/zoo.h"

namespace diva {
namespace {

ModelZoo& zoo() {
  static ModelZoo z = [] {
    ZooConfig cfg;
    cfg.verbose = false;
    return ModelZoo(cfg);
  }();
  return z;
}

Tensor eval_batch(std::int64_t n) {
  std::vector<int> idx;
  for (std::int64_t i = 0; i < n; ++i) idx.push_back(static_cast<int>(i));
  return gather_batch(zoo().val_set().images, idx);
}

std::vector<int> eval_labels(std::int64_t n) {
  return {zoo().val_set().labels.begin(), zoo().val_set().labels.begin() + n};
}

void BM_PgdStep(benchmark::State& state) {
  Sequential& qat = zoo().adapted_qat(Arch::kResNet);
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 1;  // one step per iteration -> per-step cost
  const Tensor x = eval_batch(16);
  const auto y = eval_labels(16);
  PgdAttack pgd(qat, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgd.perturb(x, y));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_PgdStep)->Unit(benchmark::kMillisecond);

void BM_DivaStep(benchmark::State& state) {
  Sequential& orig = zoo().original(Arch::kResNet);
  Sequential& qat = zoo().adapted_qat(Arch::kResNet);
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 1;
  const Tensor x = eval_batch(16);
  const auto y = eval_labels(16);
  DivaAttack diva(orig, qat, 1.0f, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(diva.perturb(x, y));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_DivaStep)->Unit(benchmark::kMillisecond);

void BM_FloatForward(benchmark::State& state) {
  Sequential& orig = zoo().original(Arch::kResNet);
  orig.set_training(false);
  const Tensor x = eval_batch(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orig.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_FloatForward)->Unit(benchmark::kMillisecond);

void BM_Int8Forward(benchmark::State& state) {
  const QuantizedModel& q8 = zoo().quantized(Arch::kResNet);
  const Tensor x = eval_batch(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q8.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Int8Forward)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace diva

BENCHMARK_MAIN();
