// §5.2 "Attack speed": PGD and DIVA run at nearly the same wall-clock
// cost per step (paper: ~1 s/step each on their hardware; the claim is
// the *ratio*, not the absolute number). Also microbenches the int8
// engine against the float forward — the edge-deployment speedup that
// motivates quantization in the first place — and sweeps AttackEngine
// throughput across 1/2/4/8 worker threads, emitting a JSON record for
// the perf trajectory.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "attack/engine.h"
#include "attack/registry.h"
#include "core/experiment_defaults.h"
#include "core/zoo.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "runtime/env.h"
#include "telemetry/telemetry.h"

namespace diva {
namespace {

ModelZoo& zoo() {
  static ModelZoo z = [] {
    ZooConfig cfg;
    cfg.verbose = false;
    return ModelZoo(cfg);
  }();
  return z;
}

Tensor eval_batch(std::int64_t n) {
  std::vector<int> idx;
  for (std::int64_t i = 0; i < n; ++i) idx.push_back(static_cast<int>(i));
  return gather_batch(zoo().val_set().images, idx);
}

std::vector<int> eval_labels(std::int64_t n) {
  return {zoo().val_set().labels.begin(), zoo().val_set().labels.begin() + n};
}

AttackTargets resnet_targets() {
  return {source(zoo().original(Arch::kResNet)),
          source(zoo().adapted_qat(Arch::kResNet))};
}

void BM_PgdStep(benchmark::State& state) {
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 1;  // one step per iteration -> per-step cost
  const Tensor x = eval_batch(16);
  const auto y = eval_labels(16);
  auto pgd = make_attack("pgd", resnet_targets(), {.cfg = cfg});
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgd->perturb(x, y));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_PgdStep)->Unit(benchmark::kMillisecond);

void BM_DivaStep(benchmark::State& state) {
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 1;
  const Tensor x = eval_batch(16);
  const auto y = eval_labels(16);
  auto diva = make_attack("diva", resnet_targets(), {.cfg = cfg, .c = 1.0f});
  for (auto _ : state) {
    benchmark::DoNotOptimize(diva->perturb(x, y));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_DivaStep)->Unit(benchmark::kMillisecond);

/// AttackEngine sharded DIVA; Arg = worker threads.
void BM_EngineDiva(benchmark::State& state) {
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 2;
  const Tensor x = eval_batch(32);
  const auto y = eval_labels(32);
  auto diva = make_attack("diva", resnet_targets(), {.cfg = cfg, .c = 1.0f});
  const AttackEngine engine(
      {.threads = static_cast<unsigned>(state.range(0)), .shard_size = 4});
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(*diva, x, y));
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EngineDiva)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_FloatForward(benchmark::State& state) {
  Sequential& orig = zoo().original(Arch::kResNet);
  orig.set_training(false);
  const Tensor x = eval_batch(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(orig.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_FloatForward)->Unit(benchmark::kMillisecond);

void BM_Int8Forward(benchmark::State& state) {
  const QuantizedModel& q8 = zoo().quantized(Arch::kResNet);
  const Tensor x = eval_batch(16);
  for (auto _ : state) {
    benchmark::DoNotOptimize(q8.forward(x));
  }
  state.SetItemsProcessed(state.iterations() * 16);
}
BENCHMARK(BM_Int8Forward)->Unit(benchmark::kMillisecond);

/// Chrono-timed AttackEngine throughput sweep over 1/2/4/8 threads,
/// emitted as one JSON record per attack mode so perf dashboards can
/// track the trajectory. Written to stderr so stdout stays valid for
/// --benchmark_format=json; set DIVA_SKIP_ENGINE_SWEEP=1 to skip.
void sweep_one(const char* mode, const char* note, Attack& attack,
               const Tensor& x, const std::vector<int>& y, int steps) {
  std::fprintf(stderr,
               "{\"bench\":\"attack_engine_throughput\",\"mode\":\"%s\","
               "\"note\":\"%s\",\"isa_tier\":\"%s\",\"cpu_flags\":\"%s\","
               "\"batch\":%lld,\"steps\":%d,"
               "\"shard_size\":4,\"results\":[",
               mode, note, isa_tier_name(active_isa_tier()),
               cpu_features_summary().c_str(),
               static_cast<long long>(x.dim(0)), steps);
  bool first = true;
  // Telemetry delta over the whole sweep (warm-ups included — the
  // accounting prices the workload, not the timer window): queries,
  // probes, MACs, and shard timings next to the img/s they explain.
  const telemetry::Snapshot telem_before = telemetry::snapshot();
  for (const unsigned threads : {1u, 2u, 4u, 8u}) {
    const AttackEngine engine({.threads = threads, .shard_size = 4});
    (void)engine.run(attack, x, y);  // warm-up: caches, pool spin-up
    const auto t0 = std::chrono::steady_clock::now();
    (void)engine.run(attack, x, y);
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::fprintf(
        stderr, "%s{\"threads\":%u,\"seconds\":%.4f,\"images_per_sec\":%.1f}",
        first ? "" : ",", threads, secs, static_cast<double>(x.dim(0)) / secs);
    first = false;
  }
  const telemetry::Snapshot telem_delta =
      telemetry::diff(telemetry::snapshot(), telem_before);
  std::fprintf(stderr, "],\"telemetry\":%s}\n",
               telemetry::to_json(telem_delta).c_str());
}

void run_engine_throughput_sweep() {
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.steps = 2;

  // Module-source DIVA: both gradient sources serialize behind their
  // module mutexes, so this sweep measures engine overhead (sharding,
  // contention), not parallel speedup — concurrency caps near 2x.
  {
    const Tensor x = eval_batch(32);
    const auto y = eval_labels(32);
    auto diva =
        make_attack("diva", resnet_targets(), {.cfg = cfg, .c = 1.0f});
    sweep_one("diva/module-sources",
              "module sources serialize behind mutexes; overhead baseline",
              *diva, x, y, cfg.steps);
  }

  // Derivative-free int8 target: probes run lock-free and concurrently,
  // the case where engine threads actually pay off.
  {
    AttackConfig fd_cfg = cfg;
    fd_cfg.steps = 1;
    const Tensor x = eval_batch(8);
    const auto y = eval_labels(8);
    auto fd_pgd = make_attack(
        "pgd",
        {nullptr, fd_source(zoo().quantized(Arch::kResNet), {.samples = 32})},
        {.cfg = fd_cfg});
    sweep_one("pgd/int8-fd", "lock-free SPSA probing; parallel payoff case",
              *fd_pgd, x, y, fd_cfg.steps);
  }
}

}  // namespace
}  // namespace diva

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  {
    const std::string flags = diva::cpu_features_summary();
    std::fprintf(stderr, "isa_tier: %s (cpu: %s)\n",
                 diva::isa_tier_name(diva::active_isa_tier()),
                 flags.empty() ? "baseline x86-64" : flags.c_str());
  }
  if (!diva::env_flag("DIVA_SKIP_ENGINE_SWEEP", false)) {
    diva::run_engine_throughput_sweep();
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
