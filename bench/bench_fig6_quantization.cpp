// Figure 6a/6b/6c (+ §5.2 DSSIM): attacks on quantized models across
// the three architectures.
//
//   6a  top-1 evasive success:  PGD 30.2-50.9%, blackbox DIVA
//       30.3-77.2%, semi-blackbox DIVA 71.1-96.2%, whitebox DIVA
//       92.3-97%.
//   6b  top-5 evasive success:  whitebox DIVA 2.6-4.2x PGD.
//   6c  confidence delta:       natural ~7.9%, PGD 18.6-25%,
//       DIVA 56.6-72.4%.
//   §5.2 DSSIM: all adversarial images imperceptible.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Figure 6 — attacks on quantized models (whitebox / semi-BB / BB)");
  ModelZoo zoo;
  const AttackConfig cfg = ExperimentDefaults::attack();

  TablePrinter t6a({"Arch", "PGD top1", "BB DIVA top1", "semiBB top1",
                    "DIVA top1"});
  TablePrinter t6b({"Arch", "PGD top5", "BB DIVA top5", "semiBB top5",
                    "DIVA top5"});
  TablePrinter t6c({"Arch", "natural cd", "PGD cd", "DIVA cd"});
  float max_dssim = 0.0f;

  for (const Arch arch : kArches) {
    std::printf("  -- %s --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& qat = zoo.adapted_qat(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto q8_fn = ModelZoo::fn(zoo.quantized(arch));
    const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn});
    const AttackSpec diva_spec{.cfg = cfg, .c = ExperimentDefaults::kC};

    // Whitebox PGD baseline against the adapted model.
    const AttackTargets whitebox{source(orig), source(qat)};
    auto pgd = make_attack("pgd", whitebox, {.cfg = cfg});
    const EvasionResult rp = run_attack(*pgd, eval, orig_fn, q8_fn);

    // Whitebox DIVA: both true models.
    auto diva = make_attack("diva", whitebox, diva_spec);
    const EvasionResult rd = run_attack(*diva, eval, orig_fn, q8_fn);

    // Semi-blackbox DIVA: surrogate original + true adapted (§4.3).
    Sequential& surro_fp = zoo.surrogate_original(arch);
    auto semi = make_attack("diva", {source(surro_fp), source(qat)},
                            diva_spec);
    const EvasionResult rs = run_attack(*semi, eval, orig_fn, q8_fn);

    // Blackbox DIVA: surrogate original + surrogate adapted (§4.4).
    Sequential& surro_qat = zoo.surrogate_adapted_qat(arch);
    auto bb = make_attack("diva", {source(surro_fp), source(surro_qat)},
                          diva_spec);
    const EvasionResult rb = run_attack(*bb, eval, orig_fn, q8_fn);

    t6a.add_row({arch_name(arch), fmt(rp.top1_rate()), fmt(rb.top1_rate()),
                 fmt(rs.top1_rate()), fmt(rd.top1_rate())});
    t6b.add_row({arch_name(arch), fmt(rp.top5_rate()), fmt(rb.top5_rate()),
                 fmt(rs.top5_rate()), fmt(rd.top5_rate())});
    t6c.add_row({arch_name(arch), fmt(rd.conf_delta_natural),
                 fmt(rp.conf_delta_adv), fmt(rd.conf_delta_adv)});
    max_dssim = std::max(max_dssim, std::max(rp.max_dssim, rd.max_dssim));
  }

  banner("Fig. 6a — top-1 evasive success (%)");
  t6a.print();
  std::printf("paper: PGD 30.2-50.9, BB 30.3-77.2, semiBB 71.1-96.2, "
              "whitebox 92.3-97\n");

  banner("Fig. 6b — top-5 evasive success (%)");
  t6b.print();
  std::printf("paper: whitebox DIVA 2.6-4.2x PGD. NOTE: top-5 over few\n"
              "classes (vs 1000 in the paper) is a much stricter criterion\n"
              "— 5 labels cover a third of our label space — so absolute\n"
              "top-5 numbers are structurally lower here.\n");

  banner("Fig. 6c — confidence delta on the correct class (%)");
  t6c.print();
  std::printf("paper: natural ~7.9, PGD 18.6-25, DIVA 56.6-72.4 — the\n"
              "ordering natural < PGD < DIVA is the reproduced shape.\n");

  std::printf("\nSec 5.2 DSSIM: max over all adversarial images = %.4f\n"
              "(paper: < 0.0092 at 224x224; larger here because epsilon\n"
              "is calibrated up for 32x32 inputs — see EXPERIMENTS.md).\n",
              max_dssim);
  return 0;
}
