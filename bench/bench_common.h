// Shared plumbing for the experiment-reproduction benches.
#pragma once

#include <chrono>
#include <cstdio>
#include <string>

#include "attack/engine.h"
#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/experiment_defaults.h"
#include "core/report.h"
#include "core/zoo.h"
#include "runtime/env.h"

namespace diva::bench {

/// Builds the paper-style eval set: up to `per_class` validation images
/// per class that every listed model classifies correctly.
inline Dataset make_eval_set(const Dataset& pool,
                             const std::vector<ModelFn>& models,
                             int per_class = ExperimentDefaults::kEvalPerClass) {
  const auto idx = select_correct(models, pool, per_class);
  DIVA_CHECK(!idx.empty(), "no commonly-correct samples for eval set");
  return pool.subset(idx);
}

/// Runs one attack and scores it against (orig, adapted).
inline EvasionResult run_attack(Attack& attack, const Dataset& eval,
                                const ModelFn& orig, const ModelFn& adapted) {
  const auto t0 = std::chrono::steady_clock::now();
  const Tensor adv = attack.perturb(eval.images, eval.labels);
  const double secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EvasionResult r = evaluate_evasion(orig, adapted, eval.images, adv,
                                     eval.labels);
  std::printf("    [%s: %zd images, %.1fs]\n", attack.name().c_str(),
              static_cast<std::ptrdiff_t>(eval.size()), secs);
  return r;
}

inline const char* kArchList[] = {"ResNet", "MobileNet", "DenseNet"};
inline constexpr Arch kArches[] = {Arch::kResNet, Arch::kMobileNet,
                                   Arch::kDenseNet};

}  // namespace diva::bench
