// Design-choice ablations called out in DESIGN.md:
//   (1) per-channel vs per-tensor weight quantization,
//   (2) QAT finetune epochs (0 = post-training quantization) — the
//       paper observes more QAT epochs worsen orig/adapted stability,
//   (3) the resulting DIVA attack surface for each variant.
#include "bench_common.h"
#include "core/trainer.h"
#include "data/synth_imagenet.h"
#include "nn/fold_bn.h"
#include "quant/qat.h"
#include "quant/qat_layers.h"

using namespace diva;
using namespace diva::bench;

namespace {

/// Builds a QAT twin of the original with the given knobs; returns the
/// compiled int8 model + accuracy/instability/DIVA statistics row.
void run_variant(ModelZoo& zoo, const std::string& label, bool per_tensor,
                 int qat_epochs, TablePrinter& table) {
  Sequential& orig = zoo.original(Arch::kResNet);
  const auto orig_fn = ModelZoo::fn(orig);

  auto qat = make_model(Arch::kResNet, zoo.config().num_classes,
                        NetMode::kQat);
  fold_batchnorm_into(orig, *qat);
  if (per_tensor) {
    qat->visit([](Module& m) {
      if (auto* conv = dynamic_cast<QatConv2d*>(&m)) {
        conv->set_per_tensor(true);
      }
    });
  }
  // Calibrate on a few training batches.
  std::vector<Tensor> calib;
  Rng rng(0xAB1A7);
  for (int b = 0; b < 4; ++b) {
    std::vector<int> idx;
    for (int i = 0; i < 32; ++i) {
      idx.push_back(static_cast<int>(
          rng.randint(static_cast<std::uint64_t>(zoo.train_set().size()))));
    }
    calib.push_back(gather_batch(zoo.train_set().images, idx));
  }
  calibrate(*qat, calib);
  if (qat_epochs > 0) {
    TrainConfig cfg;
    cfg.epochs = qat_epochs;
    cfg.lr = zoo.config().qat_lr;
    cfg.weight_decay = 0.0f;
    cfg.seed = 21;
    train_classifier(*qat, zoo.train_set(), cfg);
  }

  QuantizedModel q8 = QuantizedModel::compile(
      *qat, Shape{SynthImageNet::kChannels, SynthImageNet::kHeight,
                  SynthImageNet::kWidth});
  const auto q8_fn = [&q8](const Tensor& x) { return q8.forward(x); };

  const InstabilityStats s = instability(orig_fn, q8_fn, zoo.val_set());
  const Dataset eval = make_eval_set(zoo.val_set(), {orig_fn, q8_fn},
                                     /*per_class=*/4);
  auto diva = make_attack("diva", {source(orig), source(*qat)},
                          {.cfg = ExperimentDefaults::attack(),
                           .c = ExperimentDefaults::kC});
  const Tensor adv = diva->perturb(eval.images, eval.labels);
  const EvasionResult r =
      evaluate_evasion(orig_fn, q8_fn, eval.images, adv, eval.labels);

  table.add_row({label, fmt(100.0 * s.adapted_accuracy) + "%",
                 fmt(100.0 * s.instability) + "%",
                 fmt(r.top1_rate()) + "%"});
}

}  // namespace

int main() {
  banner("Ablations — quantization design choices (ResNet)");
  ModelZoo zoo;
  const auto orig_fn = ModelZoo::fn(zoo.original(Arch::kResNet));
  std::printf("  original float accuracy: %.1f%%\n",
              100.0 * accuracy(orig_fn, zoo.val_set()));

  TablePrinter table({"Variant", "int8 acc", "instability", "DIVA top1"});
  run_variant(zoo, "per-channel, PTQ (0 QAT epochs)", false, 0, table);
  run_variant(zoo, "per-channel, 2 QAT epochs", false, 2, table);
  run_variant(zoo, "per-channel, 4 QAT epochs", false, 4, table);
  run_variant(zoo, "per-tensor,  2 QAT epochs", true, 2, table);
  table.print();
  std::printf(
      "\nExpected: per-channel quantization preserves more accuracy than\n"
      "per-tensor; QAT finetuning recovers accuracy over PTQ but *adds*\n"
      "orig/adapted instability as epochs grow (the paper's observation\n"
      "that more QAT epochs 'worsen the stability'), which in turn widens\n"
      "DIVA's attack surface.\n");
  return 0;
}
