// Scenario-matrix sweep: runs the full {attack} x {original source} x
// {adapted source} grid from ROADMAP's attack-scenario matrix through
// the scenario runner and emits one JSON record per cell.
//
// This bench closes the matrix cells that had no executable coverage:
//   - surrogate original x int8-STE / int8-FD / batched-int8 adapted
//     (the §4.3 semi-blackbox attacker aiming at the deployed artifact),
//   - and the §4.2 comparison of QAT-twin gradients (int8-ste) against
//     true-artifact gradients (int8-fd) on the same deployed int8 target,
//     printed as a focused table after the sweep.
//
// Usage:
//   bench_scenario_matrix [--smoke] [--json PATH]
// Env fallbacks (used by CI): DIVA_SCENARIO_SMOKE=1, DIVA_SCENARIO_JSON.
// The table goes to stdout; the JSON lines go to the --json file
// (default scenario_matrix.json in the working directory).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>

#include "bench_common.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "scenario/scenario.h"
#include "telemetry/telemetry.h"

using namespace diva;
using namespace diva::scenario;

namespace {

std::string cell_key(const CellResult& r) {
  return r.cell.attack + "|" + to_string(r.cell.original) + "|" +
         to_string(r.cell.adapted);
}

void print_matrix_table(const std::vector<CellResult>& results) {
  TablePrinter table({"attack", "original", "adapted", "evade%", "fooled%",
                      "orig-ok%", "L-inf", "L2", "steps", "img/s", "status"});
  for (const CellResult& r : results) {
    if (!r.ran) {
      table.add_row({r.cell.attack, to_string(r.cell.original),
                     to_string(r.cell.adapted), "-", "-", "-", "-", "-", "-",
                     "-", "skipped"});
      continue;
    }
    table.add_row(
        {r.cell.attack, to_string(r.cell.original), to_string(r.cell.adapted),
         fmt(r.evasion_top1_pct), fmt(r.adapted_fooled_pct),
         fmt(r.orig_preserved_pct), fmt(r.linf, 4), fmt(r.mean_l2, 3),
         r.mean_steps_to_evade < 0 ? "-" : fmt(r.mean_steps_to_evade),
         fmt(r.images_per_sec), "ok"});
  }
  table.print();
}

void print_sec42_comparison(const std::vector<CellResult>& results) {
  // §4.2: does the attacker need the true artifact's gradients, or does
  // the QAT twin stand in? Same deployed int8 target, three gradient
  // routes: pure twin backprop (qat), twin-backward/artifact-forward
  // (int8-ste), artifact-only probing (int8-fd).
  std::map<std::string, const CellResult*> by_key;
  for (const CellResult& r : results) by_key[cell_key(r)] = &r;

  banner("Sec. 4.2 — QAT-twin gradients vs true-artifact gradients (DIVA)");
  TablePrinter table({"gradient route", "deployed target", "evade%",
                      "fooled%", "steps", "img/s"});
  const struct {
    const char* key;
    const char* route;
    const char* target;
  } rows[] = {
      {"diva|float|qat", "QAT twin fwd+bwd", "QAT twin (float sim)"},
      {"diva|float|int8-ste", "int8 fwd, twin bwd (STE)", "int8 artifact"},
      {"diva|float|int8-fd", "int8 only (SPSA probes)", "int8 artifact"},
  };
  for (const auto& row : rows) {
    const auto it = by_key.find(row.key);
    if (it == by_key.end() || !it->second->ran) continue;
    const CellResult& r = *it->second;
    table.add_row({row.route, row.target, fmt(r.evasion_top1_pct),
                   fmt(r.adapted_fooled_pct),
                   r.mean_steps_to_evade < 0 ? "-"
                                             : fmt(r.mean_steps_to_evade),
                   fmt(r.images_per_sec)});
  }
  table.print();
}

void print_defense_comparison(const std::vector<CellResult>& results) {
  // Defense rows: the same attacker (DIVA probing the deployed target
  // with SPSA) against the static artifact, the EI-MTD twin pool, and
  // the early-exit dynamic model.
  std::map<std::string, const CellResult*> by_key;
  for (const CellResult& r : results) by_key[cell_key(r)] = &r;

  banner("Deployed defenses — static artifact vs EI-MTD vs early-exit "
         "(DIVA, fd probes)");
  TablePrinter table({"deployed target", "evade%", "fooled%", "orig-ok%",
                      "queries"});
  const struct {
    const char* key;
    const char* target;
  } rows[] = {
      {"diva|float|int8-fd", "static int8 artifact"},
      {"diva|float|int8-mtd", "EI-MTD twin pool"},
      {"diva|float|int8-ee", "early-exit dynamic"},
  };
  for (const auto& row : rows) {
    const auto it = by_key.find(row.key);
    if (it == by_key.end() || !it->second->ran) continue;
    const CellResult& r = *it->second;
    table.add_row({row.target, fmt(r.evasion_top1_pct),
                   fmt(r.adapted_fooled_pct), fmt(r.orig_preserved_pct),
                   std::to_string(r.deployed_queries)});
  }
  table.print();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = env_flag("DIVA_SCENARIO_SMOKE", false);
  std::string json_path = env_string("DIVA_SCENARIO_JSON",
                                     "scenario_matrix.json");
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--json PATH]\n", argv[0]);
      return 2;
    }
  }

  // Open the output before the zoo builds: a bad path must fail in
  // milliseconds, not after minutes of model training and attack runs.
  std::ofstream json(json_path);
  DIVA_CHECK(json.good(), "cannot open JSON output path " << json_path);

  banner(std::string("Scenario matrix sweep (ResNet track") +
         (smoke ? ", smoke)" : ")"));
  {
    const std::string flags = cpu_features_summary();
    std::printf("isa_tier: %s (cpu: %s)\n",
                isa_tier_name(active_isa_tier()),
                flags.empty() ? "baseline x86-64" : flags.c_str());
  }
  ZooConfig zcfg;
  zcfg.verbose = true;
  ModelZoo zoo(zcfg);
  const Arch arch = Arch::kResNet;

  ModelPool pool;
  pool.original = &zoo.original(arch);
  pool.surrogate = &zoo.surrogate_original(arch);
  // The float-adapted column uses the magnitude-pruned model (§5.6) —
  // the repo's full-precision edge adaptation.
  pool.adapted_float = &zoo.pruned(arch);
  pool.adapted_qat = &zoo.adapted_qat(arch);
  pool.quantized = &zoo.quantized(arch);
  // Deployed-defense rows: an EI-MTD pool of two differently-quantized
  // twins (the base and pruned-track artifacts), and an early-exit
  // dynamic model whose cheap head is the pruned artifact.
  const MovingTargetModel mtd(
      {&zoo.quantized(arch), &zoo.pruned_quantized(arch)});
  const EarlyExitModel early_exit(&zoo.pruned_quantized(arch),
                                  &zoo.quantized(arch), 0.5f);
  pool.mtd = &mtd;
  pool.early_exit = &early_exit;

  const Dataset eval = bench::make_eval_set(
      zoo.val_set(),
      {ModelZoo::fn(zoo.original(arch)), ModelZoo::fn(zoo.adapted_qat(arch)),
       ModelZoo::fn(zoo.pruned(arch)), ModelZoo::fn(zoo.quantized(arch))},
      smoke ? 1 : 2);
  std::printf("\neval set: %zd images correctly classified by every scored "
              "model\n\n",
              static_cast<std::ptrdiff_t>(eval.size()));

  RunnerConfig cfg;
  cfg.spec.cfg = ExperimentDefaults::attack();
  cfg.spec.c = ExperimentDefaults::kC;
  if (smoke) {
    cfg.spec.cfg.steps = 4;
    cfg.fd.samples = 8;
  } else {
    cfg.spec.cfg.steps = 10;
    cfg.fd.samples = 24;
  }
  cfg.batched_threads = 8;
  cfg.shard_size = 4;
  cfg.measure_steps = true;

  const ScenarioMatrix matrix(pool, cfg);
  int done = 0;
  const int total = static_cast<int>(matrix.enumerate().size());
  // Each record streams to the JSON file as its cell lands, so an
  // interrupt or mid-sweep error keeps every completed cell. Every cell
  // record is followed by its telemetry delta — the actual queries,
  // probes, and MACs the cell spent, the paper's Table 2 cost axis.
  telemetry::Snapshot telem_prev = telemetry::snapshot();
  const std::vector<CellResult> results =
      matrix.run_all(eval, [&](const CellResult& r) {
        ++done;
        std::printf("  [%3d/%3d] %-14s %-9s x %-12s %s\n", done, total,
                    r.cell.attack.c_str(), to_string(r.cell.original),
                    to_string(r.cell.adapted),
                    r.ran ? fmt(r.evasion_top1_pct).append("% evade").c_str()
                          : "skipped");
        std::fflush(stdout);
        json << to_json(r, cfg) << "\n";
        const telemetry::Snapshot now = telemetry::snapshot();
        json << "{\"bench\":\"scenario_matrix\",\"mode\":\"telemetry\""
             << ",\"attack\":\"" << r.cell.attack << "\",\"original\":\""
             << to_string(r.cell.original) << "\",\"adapted\":\""
             << to_string(r.cell.adapted) << "\",\"snapshot\":"
             << telemetry::to_json(telemetry::diff(now, telem_prev)) << "}\n";
        telem_prev = now;
        json.flush();
      });

  std::printf("\n");
  print_matrix_table(results);
  std::printf("\n");
  print_sec42_comparison(results);
  std::printf("\n");
  print_defense_comparison(results);

  std::printf("\nwrote %zu JSON records to %s\n", results.size(),
              json_path.c_str());
  return 0;
}
