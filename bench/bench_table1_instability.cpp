// Table 1: original vs quantized accuracy, per-direction deviation
// counts, and instability, across the three architectures.
//
// Paper reference (ImageNet, 23,925 val images):
//   ResNet50     72.1% / 70.1%, 1510 / 925, instability 8.1%
//   MobileNet    69.1% / 67.4%, 1199 / 677, instability 6.3%
//   DenseNet121  73.5% / 71.0%, 1567 / 816, instability 7.9%
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Table 1 — accuracy and instability: original vs int8-quantized");
  ModelZoo zoo;

  TablePrinter table({"Architecture", "Orig acc", "Quant acc",
                      "OrigOK+QuantWrong", "OrigWrong+QuantOK",
                      "Instability"});
  for (const Arch arch : kArches) {
    const auto orig = ModelZoo::fn(zoo.original(arch));
    const auto q8 = ModelZoo::fn(zoo.quantized(arch));
    const InstabilityStats s = instability(orig, q8, zoo.val_set());
    table.add_row({arch_name(arch), fmt(100.0 * s.orig_accuracy) + "%",
                   fmt(100.0 * s.adapted_accuracy) + "%",
                   std::to_string(s.orig_correct_adapted_wrong),
                   std::to_string(s.orig_wrong_adapted_correct),
                   fmt(100.0 * s.instability) + "%"});
  }
  table.print();
  std::printf(
      "\npaper: orig 69.1-73.5%%, quant within 96%% of orig, instability"
      " 6.3-8.1%% (1000 classes, 224x224).\n"
      "Expected shape: quantized accuracy close to original while a\n"
      "nontrivial fraction of individual predictions deviate in both\n"
      "directions. Absolute instability is higher at this scale: int8\n"
      "grids on 8-32 channel layers move decision boundaries relatively\n"
      "further than on ResNet50-width layers.\n");
  return 0;
}
