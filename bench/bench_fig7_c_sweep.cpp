// Figure 7: whitebox DIVA top-1 evasive success as the balance
// hyperparameter c varies, per architecture, with the PGD baseline as a
// horizontal reference.
//
// Paper: success peaks in the mid-range of c (97.7% at c=0.1 for
// MobileNet, 94.4% at c=1 for ResNet, 96.9% at c=10 for DenseNet in
// their run); very small c never attacks, very large c behaves like
// plain PGD on the adapted model and loses evasiveness.
#include "bench_common.h"

using namespace diva;
using namespace diva::bench;

int main() {
  banner("Figure 7 — whitebox DIVA top-1 evasive success vs c");
  ModelZoo zoo;
  AttackConfig cfg = ExperimentDefaults::attack();
  const float c_values[] = {0.0f, 0.01f, 0.1f, 0.5f, 1.0f, 5.0f, 10.0f};

  TablePrinter table({"c", "ResNet", "MobileNet", "DenseNet"});
  std::vector<std::vector<std::string>> rows(std::size(c_values));
  std::vector<float> pgd_ref;

  for (const Arch arch : kArches) {
    std::printf("  -- %s --\n", arch_name(arch).c_str());
    Sequential& orig = zoo.original(arch);
    Sequential& qat = zoo.adapted_qat(arch);
    const auto orig_fn = ModelZoo::fn(orig);
    const auto q8_fn = ModelZoo::fn(zoo.quantized(arch));
    const Dataset eval =
        make_eval_set(zoo.val_set(), {orig_fn, q8_fn}, /*per_class=*/3);
    const AttackTargets targets{source(orig), source(qat)};

    auto pgd = make_attack("pgd", targets, {.cfg = cfg});
    pgd_ref.push_back(run_attack(*pgd, eval, orig_fn, q8_fn).top1_rate());

    for (std::size_t i = 0; i < std::size(c_values); ++i) {
      auto diva = make_attack("diva", targets, {.cfg = cfg, .c = c_values[i]});
      const EvasionResult r = run_attack(*diva, eval, orig_fn, q8_fn);
      rows[i].push_back(fmt(r.top1_rate()));
    }
  }

  for (std::size_t i = 0; i < std::size(c_values); ++i) {
    table.add_row({fmt(c_values[i], 3), rows[i][0], rows[i][1], rows[i][2]});
  }
  table.print();
  std::printf("  PGD reference: ResNet %s, MobileNet %s, DenseNet %s\n",
              fmt(pgd_ref[0]).c_str(), fmt(pgd_ref[1]).c_str(),
              fmt(pgd_ref[2]).c_str());
  std::printf(
      "\npaper shape: an inverted-U in c — near-zero success for c -> 0\n"
      "(no attack pressure), a peak in the mid-range, and decay toward\n"
      "the PGD-like regime for large c (attack transfers to the original\n"
      "model). DIVA above the PGD reference through the peak region.\n");
  return 0;
}
