// Figure 4: PCA of penultimate-layer representations on the digit
// dataset, before and after the DIVA attack.
//
// The paper plots 2-D PCA of ResNet50 features for digits 0 and 2 from
// both the original and adapted models, then shows that DIVA moves the
// attacked digit-0 representations of the *adapted* model into the
// digit-2 cluster while the original model's representations move much
// less. This bench reproduces the figure numerically: it prints the
// cluster centroids and, as the headline statistic, how far each
// model's attacked representations travel toward the target cluster.
#include "bench_common.h"
#include <cmath>

#include "metrics/pca.h"
#include "models/factory.h"

using namespace diva;
using namespace diva::bench;

namespace {

/// Mean row of [N, D].
std::vector<float> centroid(const Tensor& m) {
  std::vector<float> c(static_cast<std::size_t>(m.dim(1)), 0.0f);
  for (std::int64_t i = 0; i < m.dim(0); ++i) {
    for (std::int64_t j = 0; j < m.dim(1); ++j) {
      c[static_cast<std::size_t>(j)] += m.at(i, j);
    }
  }
  for (auto& v : c) v /= static_cast<float>(m.dim(0));
  return c;
}

float dist2d(const std::vector<float>& a, const std::vector<float>& b) {
  const float dx = a[0] - b[0], dy = a[1] - b[1];
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace

int main() {
  banner("Figure 4 — PCA of penultimate representations (digits 0 vs 2)");
  ModelZoo zoo;
  Sequential& orig = zoo.digit_original();
  Sequential& qat = zoo.digit_qat();
  orig.set_training(false);
  qat.set_training(false);

  // Samples of digit 0 and digit 2 that both models classify correctly.
  const auto orig_fn = ModelZoo::fn(orig);
  const auto qat_fn = ModelZoo::fn(qat);
  const Dataset& val = zoo.digit_val();
  std::vector<int> zeros, twos;
  const auto po = predict(orig_fn, val);
  const auto pa = predict(qat_fn, val);
  for (std::int64_t i = 0; i < val.size(); ++i) {
    const std::size_t si = static_cast<std::size_t>(i);
    if (po[si] != val.labels[si] || pa[si] != val.labels[si]) continue;
    if (val.labels[si] == 0 && zeros.size() < 150) zeros.push_back(static_cast<int>(i));
    if (val.labels[si] == 2 && twos.size() < 150) twos.push_back(static_cast<int>(i));
  }
  Dataset d0 = val.subset(zeros);
  Dataset d2 = val.subset(twos);
  std::printf("  %zu digit-0 and %zu digit-2 samples\n", zeros.size(),
              twos.size());

  // Attack the digit-0 samples with targeted DIVA toward digit 2 — the
  // paper's figure visualizes exactly the 0 -> 2 flips. The budget is
  // larger than the rate benches because the digit task has wide
  // margins and the figure needs successful flips to visualize.
  AttackConfig cfg = ExperimentDefaults::attack();
  cfg.epsilon = 32.0f / 255.0f;
  cfg.alpha = 3.0f / 255.0f;
  cfg.steps = 40;
  auto diva = make_attack("targeted-diva", {source(orig), source(qat)},
                          {.cfg = cfg, .c = 1.0f, .k = 2.0f, .target = 2});
  Tensor adv0 = diva->perturb(d0.images, d0.labels);
  {
    const auto pa_adv = argmax_rows(qat_fn(adv0));
    const auto po_adv = argmax_rows(orig_fn(adv0));
    int flipped = 0, kept = 0;
    std::vector<int> evasive;
    for (std::size_t i = 0; i < pa_adv.size(); ++i) {
      flipped += pa_adv[i] == 2;
      kept += po_adv[i] == 0;
      if (pa_adv[i] == 2 && po_adv[i] == 0) {
        evasive.push_back(static_cast<int>(i));
      }
    }
    std::printf("  attack: adapted flipped 0->2 on %d/%zu, original kept "
                "label 0 on %d/%zu, evasive 0->2 flips: %zu\n",
                flipped, pa_adv.size(), kept, po_adv.size(), evasive.size());
    // The paper's figure plots the attacked images that achieved the
    // evasive 0 -> 2 flip; restrict the representation study to those.
    if (evasive.size() >= 3) {
      adv0 = gather_batch(adv0, evasive);
    } else {
      std::printf("  (too few evasive flips; plotting all attacked images)\n");
    }
  }

  // Representations: adapted & original, natural & attacked.
  const Tensor rep_a0 = penultimate_features(qat, d0.images);
  const Tensor rep_a2 = penultimate_features(qat, d2.images);
  const Tensor rep_a0_adv = penultimate_features(qat, adv0);
  const Tensor rep_o0 = penultimate_features(orig, d0.images);
  const Tensor rep_o2 = penultimate_features(orig, d2.images);
  const Tensor rep_o0_adv = penultimate_features(orig, adv0);

  // Fit PCA on the union of natural representations (both models, both
  // digits), as the paper plots everything in one projection.
  const std::int64_t d = rep_a0.dim(1);
  std::vector<float> all;
  for (const Tensor* t : {&rep_a0, &rep_a2, &rep_o0, &rep_o2}) {
    for (std::int64_t i = 0; i < t->numel(); ++i) all.push_back((*t)[i]);
  }
  const std::int64_t rows = static_cast<std::int64_t>(all.size()) / d;
  Tensor stacked(Shape{rows, d}, std::move(all));
  const PcaResult pca = pca_fit(stacked, 2);

  const auto c_a0 = centroid(pca_transform(pca, rep_a0));
  const auto c_a2 = centroid(pca_transform(pca, rep_a2));
  const auto c_a0_adv = centroid(pca_transform(pca, rep_a0_adv));
  const auto c_o0 = centroid(pca_transform(pca, rep_o0));
  const auto c_o2 = centroid(pca_transform(pca, rep_o2));
  const auto c_o0_adv = centroid(pca_transform(pca, rep_o0_adv));

  TablePrinter table({"Group", "PC1", "PC2"});
  table.add_row({"Adapted, digit-0 natural", fmt(c_a0[0], 2), fmt(c_a0[1], 2)});
  table.add_row({"Adapted, digit-2 natural", fmt(c_a2[0], 2), fmt(c_a2[1], 2)});
  table.add_row({"Adapted, digit-0 ATTACKED", fmt(c_a0_adv[0], 2), fmt(c_a0_adv[1], 2)});
  table.add_row({"Original, digit-0 natural", fmt(c_o0[0], 2), fmt(c_o0[1], 2)});
  table.add_row({"Original, digit-2 natural", fmt(c_o2[0], 2), fmt(c_o2[1], 2)});
  table.add_row({"Original, digit-0 ATTACKED", fmt(c_o0_adv[0], 2), fmt(c_o0_adv[1], 2)});
  table.print();

  // Headline statistics. (1) Natural-representation gap between the two
  // models (the paper's "subtle difference even on original images").
  // (2) How far the attack displaces each model's representations from
  // its own natural digit-0 cluster: the paper reports the adapted
  // model's representations moving further than the original's.
  const float nat_gap = dist2d(c_a0, c_o0);
  const float moved_a = dist2d(c_a0_adv, c_a0);
  const float moved_o = dist2d(c_o0_adv, c_o0);
  (void)c_a2;
  (void)c_o2;
  std::printf("\n  natural digit-0 centroid gap between models: %.2f\n",
              nat_gap);
  std::printf(
      "  attack displacement of digit-0 representations:\n"
      "    adapted model:  %.2f\n    original model: %.2f  (ratio %.2fx)\n",
      moved_a, moved_o, moved_a / moved_o);
  std::printf(
      "\npaper shape: (1) even natural representations of the two models\n"
      "differ subtly (nonzero centroid gap); (2) DIVA displaces the\n"
      "adapted model's attacked representations more than the original\n"
      "model's. At this scale the displaced cluster does not fully reach\n"
      "the digit-2 cluster as in the paper's 224x224 ResNet50 setting --\n"
      "the low-capacity digit twins are too well-separated -- but the\n"
      "asymmetry between the two models is reproduced.\n");
  return 0;
}
