// bench_serve_throughput — attack-as-a-service scaling sweep.
//
// Sweeps {worker processes} x {concurrent clients} x {coalescing
// window} over a loopback AttackServer and records aggregate img/s plus
// client-observed p50/p99 request latency. Every run also records a
// same-day paired baseline: the identical workload pushed through a
// single-process AttackEngine at matching thread width, in the same
// JSON file — so one file answers "what did sharding across processes
// buy over threads in one process, measured the same day on the same
// machine".
//
// The pool is an *untrained* digit-track pair (init + calibrate +
// compile, no training): serve throughput depends on arithmetic, not
// accuracy, and this keeps the bench self-contained and fast.
//
// Env knobs (see src/runtime/env.h; flags are not needed in CI):
//   DIVA_SERVE_SMOKE=1   tiny sweep for CI smoke
//   DIVA_SERVE_JSON      output path (default serve_throughput.json)
//   DIVA_SERVE_STEPS     attack steps per request (default 6)
//   DIVA_SERVE_BATCH     samples per request (default 16)
//   DIVA_SERVE_REQUESTS  requests per client (default 4)
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synth_digits.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "runtime/env.h"
#include "serve/client.h"
#include "serve/server.h"
#include "telemetry/telemetry.h"

namespace {

using namespace diva;
using scenario::AdaptedKind;
using scenario::OriginalKind;

std::string today() {
  const std::time_t t = std::time(nullptr);
  char buf[16];
  std::tm tm{};
  localtime_r(&t, &tm);
  std::strftime(buf, sizeof(buf), "%Y-%m-%d", &tm);
  return buf;
}

double percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  const double idx = p * static_cast<double>(v.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return v[lo] * (1.0 - frac) + v[hi] * frac;
}

struct SweepPoint {
  unsigned workers;
  unsigned clients;
  std::int64_t window_us;
};

struct Measured {
  double seconds = 0.0;
  double images_per_sec = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double hist_quantile(const diva::telemetry::Snapshot& snap,
                     const std::string& name, double p) {
  const auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.quantile(p);
}

double hist_mean(const diva::telemetry::Snapshot& snap,
                 const std::string& name) {
  const auto it = snap.histograms.find(name);
  return it == snap.histograms.end() ? 0.0 : it->second.mean();
}

}  // namespace

int main() {
  const bool smoke = env_flag("DIVA_SERVE_SMOKE", false);
  const std::string json_path =
      env_string("DIVA_SERVE_JSON", "serve_throughput.json");
  const int steps =
      static_cast<int>(env_int_positive("DIVA_SERVE_STEPS", smoke ? 3 : 6));
  const std::int64_t batch = env_int_positive("DIVA_SERVE_BATCH", smoke ? 8 : 16);
  const int requests = static_cast<int>(
      env_int_positive("DIVA_SERVE_REQUESTS", smoke ? 2 : 4));

  std::ofstream json(json_path);
  DIVA_CHECK(json.good(), "cannot open JSON output path " << json_path);

  banner(std::string("attack-serve throughput sweep") +
         (smoke ? " (smoke)" : ""));

  // Untrained digit-track pool: weights random, calibration real.
  auto original = make_digit_net(NetMode::kFloat);
  init_parameters(*original, 2024);
  auto qat = make_digit_net(NetMode::kQat);
  init_parameters(*qat, 2025);
  const SynthDigits digits;
  const Dataset calib = digits.generate(2);
  calibrate(*qat, {calib.images});
  const QuantizedModel quantized =
      QuantizedModel::compile(*qat, Shape{SynthDigits::kChannels,
                                          SynthDigits::kHeight,
                                          SynthDigits::kWidth});
  scenario::ModelPool pool;
  pool.original = original.get();
  pool.adapted_qat = qat.get();
  pool.quantized = &quantized;

  // One fixed request payload, reused by every client: the sweep varies
  // transport and scheduling, never the arithmetic per request.
  const Dataset data =
      digits.generate(static_cast<int>((batch + 9) / 10), 100);
  std::vector<int> take;
  for (int i = 0; i < batch; ++i) take.push_back(i);
  const Dataset req_set = data.subset(take);

  serve::AttackRequest proto;
  proto.attack = "pgd";
  proto.original = OriginalKind::kNone;
  proto.adapted = AdaptedKind::kInt8Ste;
  proto.spec.cfg.epsilon = 0.05f;
  proto.spec.cfg.alpha = 0.01f;
  proto.spec.cfg.steps = steps;
  proto.spec.cfg.seed = 7;
  proto.images = req_set.images;
  proto.labels = req_set.labels;

  std::vector<SweepPoint> sweep;
  const std::vector<unsigned> worker_axis = smoke ? std::vector<unsigned>{1, 2}
                                                  : std::vector<unsigned>{1, 2, 4};
  const std::vector<unsigned> client_axis =
      smoke ? std::vector<unsigned>{2} : std::vector<unsigned>{1, 4};
  const std::vector<std::int64_t> window_axis =
      smoke ? std::vector<std::int64_t>{0} : std::vector<std::int64_t>{0, 2000};
  for (unsigned w : worker_axis)
    for (unsigned c : client_axis)
      for (std::int64_t win : window_axis) sweep.push_back({w, c, win});

  const std::string date = today();
  // Sharding across processes can only pay when there are cores to
  // shard onto; every JSON row records the machine width so a flat
  // curve on a small container reads as what it is (an overhead
  // measurement), not as a failed optimization.
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());
  const unsigned worker_threads = cores >= 4 ? 2 : 1;
  const std::int64_t shard_size = 4;
  // The kernel ISA tier shifts every img/s number, so rows record it
  // next to `cores` (rows from different tiers must never be compared
  // as if same-machine-same-day).
  const std::string isa = isa_tier_name(active_isa_tier());
  const std::string cpu_flags = cpu_features_summary();
  std::printf("machine: %u core(s); worker_threads=%u; isa_tier=%s (%s)\n\n",
              cores, worker_threads, isa.c_str(),
              cpu_flags.empty() ? "baseline x86-64" : cpu_flags.c_str());

  TablePrinter table({"workers", "clients", "window", "img/s", "p50 ms",
                      "p99 ms", "engine img/s @ same threads"});

  // Paired single-process baselines, one per distinct thread width:
  // the same total workload (clients x requests x batch samples, same
  // attack/steps) through AttackEngine at threads = workers x
  // worker_threads.
  std::map<unsigned, double> engine_img_s;
  auto engine_baseline = [&](unsigned workers, unsigned clients) -> double {
    const unsigned threads = workers * worker_threads;
    const auto cached = engine_img_s.find(threads);
    const std::int64_t total =
        static_cast<std::int64_t>(clients) * requests * batch;
    if (cached != engine_img_s.end()) return cached->second;
    const AttackTargets targets{
        scenario::make_original_source(pool, proto.original),
        scenario::make_adapted_source(pool, proto.adapted, {})};
    const auto attack = make_attack(proto.attack, targets, proto.spec);
    AttackEngine engine({threads, shard_size});
    const auto t0 = std::chrono::steady_clock::now();
    std::int64_t done = 0;
    while (done < total) {
      (void)engine.run(*attack, proto.images, proto.labels);
      done += batch;
    }
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    const double img_s = static_cast<double>(done) / secs;
    engine_img_s[threads] = img_s;
    json << "{\"bench\":\"serve_throughput\",\"mode\":\"engine_baseline\""
         << ",\"date\":\"" << date << "\",\"cores\":" << cores
         << ",\"isa_tier\":\"" << isa << "\",\"cpu_flags\":\"" << cpu_flags
         << "\",\"attack\":\"" << proto.attack
         << "\",\"adapted\":\"int8-ste\",\"threads\":" << threads
         << ",\"batch\":" << batch << ",\"steps\":" << steps
         << ",\"shard_size\":" << shard_size << ",\"images\":" << done
         << ",\"seconds\":" << fmt(secs, 4)
         << ",\"images_per_sec\":" << fmt(img_s, 2) << "}\n";
    return img_s;
  };

  for (const SweepPoint& pt : sweep) {
    serve::ServeConfig cfg;
    cfg.socket_path = "/tmp/diva_bench_serve_" + std::to_string(getpid()) +
                      ".sock";
    cfg.workers = pt.workers;
    cfg.worker_threads = worker_threads;
    cfg.shard_size = shard_size;
    cfg.coalesce_window = std::chrono::microseconds(pt.window_us);
    serve::AttackServer server(pool, cfg);
    server.start();

    // Per-point server-side telemetry delta: snapshot over the wire
    // before and after the client storm, then diff — exactly what a
    // client would see, so the numbers also exercise the stats channel.
    telemetry::Snapshot stats_before;
    {
      serve::AttackClient probe(cfg.socket_path);
      stats_before = probe.stats();
    }

    std::vector<std::thread> clients;
    std::vector<std::vector<double>> latencies(pt.clients);
    std::atomic<bool> failed{false};
    const auto t0 = std::chrono::steady_clock::now();
    for (unsigned c = 0; c < pt.clients; ++c) {
      clients.emplace_back([&, c] {
        try {
          serve::AttackClient client(cfg.socket_path);
          for (int r = 0; r < requests; ++r) {
            const auto r0 = std::chrono::steady_clock::now();
            serve::AttackRequest req = proto;
            req.id = 0;  // client assigns
            (void)client.run(std::move(req));
            latencies[c].push_back(
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - r0)
                    .count() *
                1e3);
          }
        } catch (const std::exception& e) {
          std::fprintf(stderr, "client %u failed: %s\n", c, e.what());
          failed.store(true);
        }
      });
    }
    for (auto& t : clients) t.join();
    const double secs =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    telemetry::Snapshot stats_delta;
    {
      serve::AttackClient probe(cfg.socket_path);
      stats_delta = telemetry::diff(probe.stats(), stats_before);
    }
    server.stop();
    DIVA_CHECK(!failed.load(), "a bench client failed; see stderr");

    std::vector<double> all;
    for (const auto& per : latencies) {
      all.insert(all.end(), per.begin(), per.end());
    }
    Measured m;
    m.seconds = secs;
    m.images_per_sec =
        static_cast<double>(pt.clients) * requests * batch / secs;
    m.p50_ms = percentile(all, 0.50);
    m.p99_ms = percentile(all, 0.99);

    // Server-side view of the same point: request latency measured from
    // decode to last shard (no socket/client overhead) and how full the
    // coalescing batches actually got.
    const double server_p50_ms =
        hist_quantile(stats_delta, "serve.request_us", 0.50) / 1000.0;
    const double server_p99_ms =
        hist_quantile(stats_delta, "serve.request_us", 0.99) / 1000.0;
    const double mean_batch_jobs = hist_mean(stats_delta, "serve.batch.jobs");

    const double baseline = engine_baseline(pt.workers, pt.clients);
    json << "{\"bench\":\"serve_throughput\",\"mode\":\"telemetry\""
         << ",\"date\":\"" << date << "\",\"workers\":" << pt.workers
         << ",\"clients\":" << pt.clients
         << ",\"window_us\":" << pt.window_us
         << ",\"snapshot\":" << telemetry::to_json(stats_delta) << "}\n";
    json << "{\"bench\":\"serve_throughput\",\"mode\":\"served\""
         << ",\"date\":\"" << date << "\",\"cores\":" << cores
         << ",\"isa_tier\":\"" << isa << "\",\"cpu_flags\":\"" << cpu_flags
         << "\",\"attack\":\"" << proto.attack
         << "\",\"adapted\":\"int8-ste\",\"workers\":" << pt.workers
         << ",\"worker_threads\":" << worker_threads
         << ",\"clients\":" << pt.clients
         << ",\"window_us\":" << pt.window_us << ",\"batch\":" << batch
         << ",\"steps\":" << steps << ",\"shard_size\":" << shard_size
         << ",\"requests\":" << pt.clients * requests
         << ",\"images\":" << pt.clients * requests * batch
         << ",\"seconds\":" << fmt(m.seconds, 4)
         << ",\"images_per_sec\":" << fmt(m.images_per_sec, 2)
         << ",\"p50_ms\":" << fmt(m.p50_ms, 2)
         << ",\"p99_ms\":" << fmt(m.p99_ms, 2)
         << ",\"server_p50_ms\":" << fmt(server_p50_ms, 2)
         << ",\"server_p99_ms\":" << fmt(server_p99_ms, 2)
         << ",\"mean_batch_jobs\":" << fmt(mean_batch_jobs, 2)
         << ",\"engine_baseline_images_per_sec\":" << fmt(baseline, 2)
         << "}\n";
    table.add_row({std::to_string(pt.workers), std::to_string(pt.clients),
                   std::to_string(pt.window_us) + "us",
                   fmt(m.images_per_sec, 1), fmt(m.p50_ms, 1),
                   fmt(m.p99_ms, 1), fmt(baseline, 1)});
  }

  table.print();
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}
