#include "scenario/defense.h"

#include <cstring>
#include <limits>

#include "telemetry/telemetry.h"

namespace diva::scenario {

namespace {

/// Copies the selected rows of a [N, ...] batch into a fresh [K, ...]
/// batch with the same per-row shape.
Tensor gather_rows(const Tensor& x, const std::vector<std::int64_t>& rows) {
  const std::int64_t per = x.numel() / x.dim(0);
  std::vector<std::int64_t> dims = x.shape().dims();
  dims[0] = static_cast<std::int64_t>(rows.size());
  Tensor out{Shape(std::move(dims))};
  for (std::size_t k = 0; k < rows.size(); ++k) {
    std::memcpy(out.raw() + static_cast<std::int64_t>(k) * per,
                x.raw() + rows[k] * per,
                sizeof(float) * static_cast<std::size_t>(per));
  }
  return out;
}

void scatter_rows(const Tensor& src, const std::vector<std::int64_t>& rows,
                  Tensor* dst) {
  const std::int64_t per = dst->numel() / dst->dim(0);
  for (std::size_t k = 0; k < rows.size(); ++k) {
    std::memcpy(dst->raw() + rows[k] * per,
                src.raw() + static_cast<std::int64_t>(k) * per,
                sizeof(float) * static_cast<std::size_t>(per));
  }
}

std::int64_t logits_width(const QuantizedModel& m) {
  return m.output_slot().shape.numel();
}

}  // namespace

MovingTargetModel::MovingTargetModel(
    std::vector<const QuantizedModel*> members, std::uint64_t seed)
    : members_(std::move(members)), seed_(seed) {
  DIVA_CHECK(!members_.empty(), "moving-target pool needs at least one member");
  for (const QuantizedModel* m : members_) {
    DIVA_CHECK(m != nullptr, "moving-target pool member is null");
    DIVA_CHECK(logits_width(*m) == logits_width(*members_[0]),
               "moving-target pool members disagree on logits width");
  }
}

std::size_t MovingTargetModel::member_for(const float* row,
                                          std::int64_t numel) const {
  // FNV-1a over the row's float bits. Pure in content: the same image
  // hits the same member whatever batch or shard it arrives in.
  std::uint64_t h = 0xcbf29ce484222325ULL ^ seed_;
  const auto* bytes = reinterpret_cast<const unsigned char*>(row);
  const std::size_t n = static_cast<std::size_t>(numel) * sizeof(float);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return static_cast<std::size_t>(h % members_.size());
}

Tensor MovingTargetModel::forward(const Tensor& x) const {
  DIVA_CHECK(x.rank() == 4, "MovingTargetModel::forward expects NCHW");
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;
  DIVA_TELEM_COUNT("defense.mtd.rows", static_cast<std::uint64_t>(n));

  std::vector<std::vector<std::int64_t>> by_member(members_.size());
  for (std::int64_t i = 0; i < n; ++i) {
    by_member[member_for(x.raw() + i * per, per)].push_back(i);
  }

  const std::int64_t classes = logits_width(*members_[0]);
  Tensor out(Shape{n, classes});
  for (std::size_t m = 0; m < members_.size(); ++m) {
    const std::vector<std::int64_t>& rows = by_member[m];
    if (rows.empty()) continue;
    telemetry::counter("defense.mtd.member." + std::to_string(m))
        .add(static_cast<std::uint64_t>(rows.size()));
    const Tensor logits = members_[m]->forward(gather_rows(x, rows));
    scatter_rows(logits, rows, &out);
  }
  return out;
}

EarlyExitModel::EarlyExitModel(const QuantizedModel* early,
                               const QuantizedModel* full, float margin)
    : early_(early), full_(full), margin_(margin) {
  DIVA_CHECK(early_ != nullptr && full_ != nullptr,
             "early-exit model needs both the early head and the full model");
  DIVA_CHECK(logits_width(*early_) == logits_width(*full_),
             "early head and full model disagree on logits width");
  DIVA_CHECK(margin_ >= 0.0f, "early-exit margin must be non-negative");
}

bool EarlyExitModel::exits_early(const float* early_logits,
                                 std::int64_t classes) const {
  float top1 = early_logits[0], top2 = -std::numeric_limits<float>::infinity();
  for (std::int64_t c = 1; c < classes; ++c) {
    const float v = early_logits[c];
    if (v > top1) {
      top2 = top1;
      top1 = v;
    } else if (v > top2) {
      top2 = v;
    }
  }
  return top1 - top2 >= margin_;
}

Tensor EarlyExitModel::forward(const Tensor& x) const {
  DIVA_CHECK(x.rank() == 4, "EarlyExitModel::forward expects NCHW");
  const std::int64_t n = x.dim(0);
  DIVA_TELEM_COUNT("defense.ee.rows", static_cast<std::uint64_t>(n));

  Tensor out = early_->forward(x);
  const std::int64_t classes = out.numel() / n;
  std::vector<std::int64_t> deep;
  for (std::int64_t i = 0; i < n; ++i) {
    if (!exits_early(out.raw() + i * classes, classes)) deep.push_back(i);
  }
  DIVA_TELEM_COUNT("defense.ee.early_rows",
                   static_cast<std::uint64_t>(n) - deep.size());
  DIVA_TELEM_COUNT("defense.ee.full_rows",
                   static_cast<std::uint64_t>(deep.size()));
  if (!deep.empty()) {
    const Tensor full_logits = full_->forward(gather_rows(x, deep));
    scatter_rows(full_logits, deep, &out);
  }
  return out;
}

}  // namespace diva::scenario
