// Defended / dynamic deployed artifacts for the scenario matrix.
//
// The paper scores evasion against one static int8 artifact; real edge
// deployments increasingly are neither static nor singular. Two defense
// shapes from the related work become first-class deployed models here:
//
//   MovingTargetModel — EI-MTD-style moving-target defense: the serving
//     artifact is drawn per query from a pool of differently-quantized
//     twins, so an attacker's probes see a shifting target. Member
//     selection is a pure content hash of the query row (FNV-1a over
//     the row's float bits mixed with a seed): a given image always
//     lands on the same member — re-sampling "per query" in the
//     deployment sense — while staying bit-deterministic under any
//     batch composition or engine shard geometry.
//
//   EarlyExitModel — early-exit dynamic DNN ("Mind Your Heart" shape):
//     a cheap early head answers confident queries and only uncertain
//     rows continue to the full artifact. The exit taken is input-
//     dependent (top-2 logit margin of the early head vs a threshold),
//     again a pure per-row function.
//
// Both wrap QuantizedModel forwards, so deployed-query telemetry
// (quant.forward.rows) keeps pricing every probe; the wrappers add
// per-member / per-exit counters on top:
//   defense.mtd.rows, defense.mtd.member.<i>
//   defense.ee.rows, defense.ee.early_rows, defense.ee.full_rows
#pragma once

#include <cstdint>
#include <vector>

#include "quant/quantized_model.h"

namespace diva::scenario {

class MovingTargetModel {
 public:
  /// `members` are non-owning and must outlive the wrapper; at least
  /// one, all with the same logits width.
  explicit MovingTargetModel(std::vector<const QuantizedModel*> members,
                             std::uint64_t seed = 0xE17D5EEDULL);

  /// NCHW batch in, [N, classes] float logits out. Each row is served
  /// by member_for(row); rows are grouped per member so pool twins
  /// still run batched.
  Tensor forward(const Tensor& x) const;

  /// Pool member that serves a query with this content: FNV-1a over the
  /// row's float bits, mixed with the pool seed. Deterministic in
  /// content alone — shard geometry and batch order cannot change it.
  std::size_t member_for(const float* row, std::int64_t numel) const;

  std::size_t num_members() const { return members_.size(); }
  std::uint64_t seed() const { return seed_; }

 private:
  std::vector<const QuantizedModel*> members_;
  std::uint64_t seed_;
};

class EarlyExitModel {
 public:
  /// `early` and `full` are non-owning, must outlive the wrapper, and
  /// must agree on logits width. A row exits at the early head when its
  /// top-2 logit margin reaches `margin`.
  EarlyExitModel(const QuantizedModel* early, const QuantizedModel* full,
                 float margin = 1.0f);

  /// NCHW batch in, [N, classes] float logits out: early-head logits
  /// for confident rows, full-model logits for the rest.
  Tensor forward(const Tensor& x) const;

  /// Exit decision for one early-head logits row (top1 - top2 >= margin).
  bool exits_early(const float* early_logits, std::int64_t classes) const;

  float margin() const { return margin_; }

 private:
  const QuantizedModel* early_;
  const QuantizedModel* full_;
  float margin_;
};

}  // namespace diva::scenario
