#include "scenario/scenario.h"

#include <chrono>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <utility>

#include "attack/probe_compression.h"
#include "kernels/cpu_features.h"
#include "kernels/kernel_dispatch.h"
#include "telemetry/telemetry.h"

namespace diva::scenario {

namespace {

std::uint64_t counter_of(const telemetry::Snapshot& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

ModelFn eval_fn(Module& m) {
  m.set_training(false);
  return [&m](const Tensor& x) { return m.forward(x); };
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::string num(double v, const char* fmt) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace

const char* to_string(OriginalKind kind) {
  switch (kind) {
    case OriginalKind::kNone: return "none";
    case OriginalKind::kFloat: return "float";
    case OriginalKind::kSurrogate: return "surrogate";
  }
  return "?";
}

const char* to_string(AdaptedKind kind) {
  switch (kind) {
    case AdaptedKind::kFloat: return "float";
    case AdaptedKind::kQat: return "qat";
    case AdaptedKind::kInt8Ste: return "int8-ste";
    case AdaptedKind::kInt8Fd: return "int8-fd";
    case AdaptedKind::kInt8FdSub: return "int8-fd-sub";
    case AdaptedKind::kInt8FdSparse: return "int8-fd-sparse";
    case AdaptedKind::kInt8FdBatch: return "int8-fd-batch";
    case AdaptedKind::kInt8Batched: return "int8-batched";
    case AdaptedKind::kInt8Mtd: return "int8-mtd";
    case AdaptedKind::kInt8EarlyExit: return "int8-ee";
  }
  return "?";
}

bool parse_original_kind(const std::string& name, OriginalKind* out) {
  for (const OriginalKind kind :
       {OriginalKind::kNone, OriginalKind::kFloat, OriginalKind::kSurrogate}) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

bool parse_adapted_kind(const std::string& name, AdaptedKind* out) {
  for (const AdaptedKind kind :
       {AdaptedKind::kFloat, AdaptedKind::kQat, AdaptedKind::kInt8Ste,
        AdaptedKind::kInt8Fd, AdaptedKind::kInt8FdSub,
        AdaptedKind::kInt8FdSparse, AdaptedKind::kInt8FdBatch,
        AdaptedKind::kInt8Batched, AdaptedKind::kInt8Mtd,
        AdaptedKind::kInt8EarlyExit}) {
    if (name == to_string(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

const std::vector<OriginalKind>& all_original_kinds() {
  static const std::vector<OriginalKind> kinds = {
      OriginalKind::kNone, OriginalKind::kFloat, OriginalKind::kSurrogate};
  return kinds;
}

const std::vector<AdaptedKind>& all_adapted_kinds() {
  static const std::vector<AdaptedKind> kinds = {
      AdaptedKind::kFloat,        AdaptedKind::kQat,
      AdaptedKind::kInt8Ste,      AdaptedKind::kInt8Fd,
      AdaptedKind::kInt8FdSub,    AdaptedKind::kInt8FdSparse,
      AdaptedKind::kInt8FdBatch,  AdaptedKind::kInt8Batched,
      AdaptedKind::kInt8Mtd,      AdaptedKind::kInt8EarlyExit};
  return kinds;
}

ScenarioMatrix::ScenarioMatrix(ModelPool pool, RunnerConfig cfg)
    : pool_(pool), cfg_(std::move(cfg)) {
  DIVA_CHECK(cfg_.batched_threads >= 1, "batched_threads must be at least 1");
  // The runner owns per-step instrumentation (steps-to-evade); a caller
  // callback would also make attacks unshardable, silently turning the
  // batched column sequential.
  DIVA_CHECK(!cfg_.spec.cfg.step_callback,
             "RunnerConfig.spec must not carry a step_callback");
  if (cfg_.attacks.empty()) cfg_.attacks = registered_attack_names();
}

std::vector<CellSpec> ScenarioMatrix::enumerate() const {
  std::vector<CellSpec> cells;
  cells.reserve(cfg_.attacks.size() * all_original_kinds().size() *
                all_adapted_kinds().size());
  for (const std::string& attack : cfg_.attacks) {
    for (const OriginalKind o : all_original_kinds()) {
      for (const AdaptedKind a : all_adapted_kinds()) {
        cells.push_back({attack, o, a});
      }
    }
  }
  return cells;
}

std::string pool_missing_reason(const ModelPool& pool, OriginalKind original,
                                AdaptedKind adapted) {
  if (pool.original == nullptr) {
    return "model pool lacks the true original model (required for evasion "
           "scoring)";
  }
  if (original == OriginalKind::kSurrogate && pool.surrogate == nullptr) {
    return "model pool lacks a surrogate original (distill one per Sec. 4.3)";
  }
  switch (adapted) {
    case AdaptedKind::kFloat:
      if (pool.adapted_float == nullptr) {
        return "model pool lacks a float adapted model";
      }
      break;
    case AdaptedKind::kQat:
      if (pool.adapted_qat == nullptr) {
        return "model pool lacks the QAT twin";
      }
      break;
    case AdaptedKind::kInt8Ste:
      if (pool.quantized == nullptr || pool.adapted_qat == nullptr) {
        return "int8+STE needs both the quantized artifact and its QAT "
               "shadow";
      }
      break;
    case AdaptedKind::kInt8Fd:
    case AdaptedKind::kInt8FdSub:
    case AdaptedKind::kInt8FdSparse:
    case AdaptedKind::kInt8FdBatch:
    case AdaptedKind::kInt8Batched:
      if (pool.quantized == nullptr) {
        return "model pool lacks the quantized artifact";
      }
      break;
    case AdaptedKind::kInt8Mtd:
      if (pool.mtd == nullptr) {
        return "model pool lacks a moving-target twin pool (EI-MTD row)";
      }
      break;
    case AdaptedKind::kInt8EarlyExit:
      if (pool.early_exit == nullptr) {
        return "model pool lacks an early-exit dynamic model";
      }
      break;
  }
  return "";
}

std::shared_ptr<GradSource> make_original_source(const ModelPool& pool,
                                                 OriginalKind kind) {
  switch (kind) {
    case OriginalKind::kNone: return nullptr;
    case OriginalKind::kFloat: return source(*pool.original, "original");
    case OriginalKind::kSurrogate:
      return source(*pool.surrogate, "surrogate");
  }
  return nullptr;
}

FdConfig resolved_fd_for(AdaptedKind kind, const FdConfig& base) {
  FdConfig fd = base;
  switch (kind) {
    case AdaptedKind::kInt8FdSub:
      if (!fd.subspace && fd.subspace_dim <= 0) {
        fd.subspace_dim = kDefaultFdSubspaceDim;
      }
      break;
    case AdaptedKind::kInt8FdSparse:
      if (fd.sparsity >= 1.0f) fd.sparsity = kDefaultFdSparsity;
      break;
    case AdaptedKind::kInt8FdBatch:
      fd.batch_probes = true;
      break;
    default:
      break;
  }
  return fd;
}

std::shared_ptr<GradSource> make_adapted_source(const ModelPool& pool,
                                                AdaptedKind kind,
                                                const FdConfig& fd) {
  switch (kind) {
    case AdaptedKind::kFloat:
      return source(*pool.adapted_float, "adapted-float");
    case AdaptedKind::kQat: return source(*pool.adapted_qat, "adapted-qat");
    case AdaptedKind::kInt8Ste:
      return source(*pool.quantized, *pool.adapted_qat);
    case AdaptedKind::kInt8Fd:
    case AdaptedKind::kInt8FdSub:
    case AdaptedKind::kInt8FdSparse:
    case AdaptedKind::kInt8FdBatch:
    case AdaptedKind::kInt8Batched:
      return fd_source(*pool.quantized, resolved_fd_for(kind, fd));
    // Defense columns: the deployed artifact is the defended wrapper
    // itself, probed derivative-free — there is no single float twin to
    // backprop through a moving or dynamic target.
    case AdaptedKind::kInt8Mtd:
      return fd_source(
          [m = pool.mtd](const Tensor& x) { return m->forward(x); },
          resolved_fd_for(kind, fd), "mtd");
    case AdaptedKind::kInt8EarlyExit:
      return fd_source(
          [m = pool.early_exit](const Tensor& x) { return m->forward(x); },
          resolved_fd_for(kind, fd), "ee");
  }
  return nullptr;
}

ModelFn deployed_model_fn(const ModelPool& pool, AdaptedKind kind) {
  switch (kind) {
    case AdaptedKind::kFloat: return eval_fn(*pool.adapted_float);
    case AdaptedKind::kQat: return eval_fn(*pool.adapted_qat);
    case AdaptedKind::kInt8Ste:
    case AdaptedKind::kInt8Fd:
    case AdaptedKind::kInt8FdSub:
    case AdaptedKind::kInt8FdSparse:
    case AdaptedKind::kInt8FdBatch:
    case AdaptedKind::kInt8Batched:
      return [q = pool.quantized](const Tensor& x) { return q->forward(x); };
    case AdaptedKind::kInt8Mtd:
      return [m = pool.mtd](const Tensor& x) { return m->forward(x); };
    case AdaptedKind::kInt8EarlyExit:
      return [m = pool.early_exit](const Tensor& x) { return m->forward(x); };
  }
  return {};
}

std::string ScenarioMatrix::skip_reason(const CellSpec& cell) const {
  const AttackTraits traits = attack_traits(cell.attack);  // throws unknown
  if (pool_.original == nullptr) {
    return pool_missing_reason(pool_, cell.original, cell.adapted);
  }
  // Kinds registered without traits carry placeholder flags: every row
  // must reach construction, where the factory's own checks decide
  // (run_cell downgrades a rejection to a skip record).
  if (traits.declared) {
    if (traits.needs_original && cell.original == OriginalKind::kNone) {
      return cell.attack + " drives an original-model source; the 'none' row "
                           "covers single-model attacks only";
    }
    if (!traits.needs_original && cell.original != OriginalKind::kNone) {
      return cell.attack + " is a single-model attack; the original side is "
                           "ignored (covered in the 'none' row)";
    }
  }
  return pool_missing_reason(pool_, cell.original, cell.adapted);
}

std::shared_ptr<GradSource> ScenarioMatrix::original_source(
    OriginalKind kind) const {
  return make_original_source(pool_, kind);
}

std::shared_ptr<GradSource> ScenarioMatrix::adapted_source(
    AdaptedKind kind) const {
  return make_adapted_source(pool_, kind, cfg_.fd);
}

ModelFn ScenarioMatrix::deployed_adapted_fn(AdaptedKind kind) const {
  return deployed_model_fn(pool_, kind);
}

float ScenarioMatrix::measure_steps_to_evade(const CellSpec& cell,
                                             const AttackTargets& targets,
                                             const Dataset& eval) const {
  const ModelFn deployed = deployed_adapted_fn(cell.adapted);
  const std::int64_t n = eval.images.dim(0);
  std::vector<int> first_flip(static_cast<std::size_t>(n), -1);
  std::vector<char> wrong_now(static_cast<std::size_t>(n), 0);
  Tensor final_batch;

  AttackSpec spec = cfg_.spec;
  spec.cfg.step_callback = [&](int step, const Tensor& batch) {
    const std::vector<int> preds = argmax_rows(deployed(batch));
    for (std::int64_t i = 0; i < n; ++i) {
      const std::size_t s = static_cast<std::size_t>(i);
      wrong_now[s] = preds[s] != eval.labels[s];
      if (first_flip[s] < 0 && wrong_now[s]) first_flip[s] = step;
    }
    final_batch = batch;
  };
  auto attack = make_attack(cell.attack, targets, spec);
  (void)attack->perturb(eval.images, eval.labels);

  // Average only over samples that EVADED per the joint criterion
  // (§5.1): the deployed adapted model ends wrong — a transient
  // mid-attack flip that reverts does not count — while the true
  // original still classifies the final image correctly.
  const std::vector<int> orig_preds =
      argmax_rows(eval_fn(*pool_.original)(final_batch));
  double sum = 0.0;
  int count = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const std::size_t s = static_cast<std::size_t>(i);
    if (wrong_now[s] && first_flip[s] > 0 &&
        orig_preds[s] == eval.labels[s]) {
      sum += first_flip[s];
      ++count;
    }
  }
  return count > 0 ? static_cast<float>(sum / count) : -1.0f;
}

CellResult ScenarioMatrix::run_cell(const CellSpec& cell,
                                    const Dataset& eval) const {
  DIVA_CHECK(eval.images.rank() == 4 && eval.images.dim(0) > 0,
             "scenario eval set must be a non-empty NCHW batch");
  CellResult r;
  r.cell = cell;
  r.skip_reason = skip_reason(cell);
  if (!r.skip_reason.empty()) return r;

  const AttackTargets targets{original_source(cell.original),
                              adapted_source(cell.adapted)};
  // Kinds registered without traits declare no requirements, so their
  // factories may still reject the cell's targets at construction time;
  // keep the one-record-per-cell contract by downgrading that to a
  // skip record instead of aborting a whole sweep.
  std::unique_ptr<Attack> attack;
  try {
    attack = make_attack(cell.attack, targets, cfg_.spec);
  } catch (const Error& e) {
    r.skip_reason = std::string("construction failed: ") + e.what();
    return r;
  }

  // Report the width that actually runs: mirror AttackEngine::run's
  // fallback — one sequential call when the attack is not shardable or
  // the batch fits in a single shard.
  const bool batched = cell.adapted == AdaptedKind::kInt8Batched &&
                       attack->shardable() &&
                       eval.images.dim(0) > cfg_.shard_size;
  r.threads = batched ? cfg_.batched_threads : 1;

  // Engine (and its thread pool) constructed outside the timed window
  // so the batched column's throughput excludes pool spin-up.
  std::unique_ptr<AttackEngine> engine;
  if (batched) {
    engine = std::make_unique<AttackEngine>(EngineConfig{
        .threads = r.threads, .shard_size = cfg_.shard_size});
  }
  // Telemetry deltas around the timed window give the deployed-query
  // cost of exactly this attack run (PR 8 counters; all zero when
  // telemetry is disabled).
  const telemetry::Snapshot telem_base = telemetry::snapshot();
  const auto t0 = std::chrono::steady_clock::now();
  const Tensor adv = batched ? engine->run(*attack, eval.images, eval.labels)
                             : attack->perturb(eval.images, eval.labels);
  r.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  const telemetry::Snapshot telem =
      telemetry::diff(telemetry::snapshot(), telem_base);
  r.deployed_queries = counter_of(telem, "quant.forward.rows");
  r.probe_rows = counter_of(telem, "attack.fd.spsa_probes") +
                 counter_of(telem, "attack.fd.coordinate_probes");
  r.probe_forwards = counter_of(telem, "attack.fd.probe_forwards");
  // Defense-row accounting: per-member query split of the moving-target
  // pool, and the exit split of the early-exit model.
  if (cell.adapted == AdaptedKind::kInt8Mtd && pool_.mtd != nullptr) {
    r.mtd_member_queries.resize(pool_.mtd->num_members(), 0);
    for (std::size_t m = 0; m < r.mtd_member_queries.size(); ++m) {
      r.mtd_member_queries[m] = counter_of(
          telem, ("defense.mtd.member." + std::to_string(m)).c_str());
    }
  }
  if (cell.adapted == AdaptedKind::kInt8EarlyExit) {
    r.ee_early_rows = counter_of(telem, "defense.ee.early_rows");
    r.ee_full_rows = counter_of(telem, "defense.ee.full_rows");
  }
  const std::int64_t n = eval.images.dim(0);
  r.images_per_sec =
      r.seconds > 0.0 ? static_cast<double>(n) / r.seconds : 0.0;

  const EvasionResult ev =
      evaluate_evasion(eval_fn(*pool_.original),
                       deployed_adapted_fn(cell.adapted), eval.images, adv,
                       eval.labels);
  r.total = ev.total;
  r.adapted_fooled = ev.adapted_fooled;
  if (r.deployed_queries > 0 && r.adapted_fooled > 0) {
    r.queries_per_fooled = static_cast<double>(r.deployed_queries) /
                           static_cast<double>(r.adapted_fooled);
  }
  r.evasion_top1_pct = ev.top1_rate();
  r.adapted_fooled_pct = ev.attack_only_rate();
  r.orig_preserved_pct =
      ev.total ? 100.0f * static_cast<float>(ev.orig_preserved) / ev.total
               : 0.0f;

  r.linf = max_abs(sub(adv, eval.images));
  const std::int64_t per = adv.numel() / n;
  double l2_sum = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    double sq = 0.0;
    const float* a = adv.raw() + i * per;
    const float* x = eval.images.raw() + i * per;
    for (std::int64_t j = 0; j < per; ++j) {
      const double d = static_cast<double>(a[j]) - x[j];
      sq += d * d;
    }
    l2_sum += std::sqrt(sq);
  }
  r.mean_l2 = static_cast<float>(l2_sum / static_cast<double>(n));

  if (cfg_.measure_steps) {
    r.mean_steps_to_evade = measure_steps_to_evade(cell, targets, eval);
  }
  r.ran = true;
  return r;
}

std::vector<CellResult> ScenarioMatrix::run_all(
    const Dataset& eval,
    const std::function<void(const CellResult&)>& on_cell) const {
  std::vector<CellResult> results;
  const std::vector<CellSpec> cells = enumerate();
  results.reserve(cells.size());
  for (const CellSpec& cell : cells) {
    results.push_back(run_cell(cell, eval));
    if (on_cell) on_cell(results.back());
  }
  return results;
}

std::string to_json(const CellResult& r, const RunnerConfig& cfg) {
  std::string s = "{\"bench\":\"scenario_matrix\"";
  // The kernel ISA tier shifts both throughput and (via sgemm FMA
  // reordering) float-path metrics, so every row records it.
  s += std::string(",\"isa_tier\":\"") + isa_tier_name(active_isa_tier()) +
       "\"";
  s += ",\"cpu_flags\":\"" + cpu_features_summary() + "\"";
  s += ",\"attack\":\"" + json_escape(r.cell.attack) + "\"";
  s += std::string(",\"original\":\"") + to_string(r.cell.original) + "\"";
  s += std::string(",\"adapted\":\"") + to_string(r.cell.adapted) + "\"";
  if (!r.ran) {
    s += ",\"status\":\"skipped\",\"reason\":\"" +
         json_escape(r.skip_reason) + "\"}";
    return s;
  }
  s += ",\"status\":\"ok\"";
  s += ",\"epsilon\":" + num(cfg.spec.cfg.epsilon, "%.6f");
  s += ",\"alpha\":" + num(cfg.spec.cfg.alpha, "%.6f");
  s += ",\"steps\":" + std::to_string(cfg.spec.cfg.steps);
  s += ",\"fd_samples\":" + std::to_string(cfg.fd.samples);
  // Resolved probe-compression levers of this cell's column, so
  // compressed columns are tellable apart in recorded sweeps.
  const FdConfig fd = resolved_fd_for(r.cell.adapted, cfg.fd);
  s += ",\"fd_subspace_dim\":" +
       std::to_string(fd.subspace ? fd.subspace->dim()
                                  : static_cast<std::int64_t>(fd.subspace_dim));
  s += ",\"fd_sparsity\":" + num(fd.sparsity, "%.3f");
  s += std::string(",\"fd_batch_probes\":") +
       (fd.batch_probes ? "true" : "false");
  s += ",\"threads\":" + std::to_string(r.threads);
  s += ",\"total\":" + std::to_string(r.total);
  s += ",\"adapted_fooled\":" + std::to_string(r.adapted_fooled);
  s += ",\"evasion_top1_pct\":" + num(r.evasion_top1_pct, "%.2f");
  s += ",\"adapted_fooled_pct\":" + num(r.adapted_fooled_pct, "%.2f");
  s += ",\"orig_preserved_pct\":" + num(r.orig_preserved_pct, "%.2f");
  s += ",\"linf\":" + num(r.linf, "%.6f");
  s += ",\"mean_l2\":" + num(r.mean_l2, "%.6f");
  s += ",\"mean_steps_to_evade\":" + num(r.mean_steps_to_evade, "%.2f");
  s += ",\"deployed_queries\":" + std::to_string(r.deployed_queries);
  s += ",\"probe_rows\":" + std::to_string(r.probe_rows);
  s += ",\"probe_forwards\":" + std::to_string(r.probe_forwards);
  if (r.cell.adapted == AdaptedKind::kInt8Mtd) {
    s += ",\"mtd_member_queries\":[";
    for (std::size_t m = 0; m < r.mtd_member_queries.size(); ++m) {
      if (m) s += ",";
      s += std::to_string(r.mtd_member_queries[m]);
    }
    s += "]";
  }
  if (r.cell.adapted == AdaptedKind::kInt8EarlyExit) {
    s += ",\"ee_early_rows\":" + std::to_string(r.ee_early_rows);
    s += ",\"ee_full_rows\":" + std::to_string(r.ee_full_rows);
  }
  s += ",\"queries_per_fooled\":" + num(r.queries_per_fooled, "%.1f");
  s += ",\"seconds\":" + num(r.seconds, "%.4f");
  s += ",\"images_per_sec\":" + num(r.images_per_sec, "%.2f");
  s += "}";
  return s;
}

void write_json_lines(const std::vector<CellResult>& results,
                      const RunnerConfig& cfg, std::ostream& os) {
  for (const CellResult& r : results) os << to_json(r, cfg) << "\n";
}

}  // namespace diva::scenario
