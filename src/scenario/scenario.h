// Scenario-matrix runner: the attack matrix as executable code.
//
// The paper's central claim (§4.2–§4.4) is that attack efficacy depends
// on *which pair of models* the attacker holds. This subsystem makes
// that pairing space a first-class object: it enumerates the full
// {registry attack} x {original source} x {adapted source} grid,
// resolves every cell through the attack registry (using AttackTraits
// to tell "skipped by construction" from "misconfigured"), runs each
// runnable cell, and emits one JSON record per cell — evasion rates
// against (true original, deployed adapted), L-inf/L2 perturbation
// cost, steps-to-evade, and throughput.
//
// Rows (original side):
//   none       single-model attacks (PGD/CW/FGSM/momentum) — no
//              evasion constraint during optimization.
//   float      whitebox: the true original model (§4.2).
//   surrogate  semi-blackbox: a surrogate of the original distilled
//              from the adapted model (§4.3/§4.4).
//
// Columns (adapted side = the model being fooled):
//   float         a full-precision adapted model (e.g. pruned, §5.6).
//   qat           the QAT twin, backprop through fake-quant.
//   int8-ste      deployed int8 artifact forward, straight-through
//                 gradients via the QAT shadow (§4.2's twin gradients).
//   int8-fd       deployed artifact alone, SPSA/finite differences —
//                 true-artifact gradients, no float twin.
//   int8-fd-sub   probe-compressed SPSA: gradients estimated in a
//                 k-dim perturbation subspace (k = fd.subspace_dim or
//                 kDefaultFdSubspaceDim) and lifted to image space.
//   int8-fd-sparse probe-compressed SPSA: sign-sparse probe directions
//                 touching a fd.sparsity fraction of coordinates.
//   int8-fd-batch  same estimator, probe rows packed across samples
//                 and pairs into large batched int8 forwards.
//   int8-batched  same derivative-free artifact target, executed
//                 through the AttackEngine (N-wide batched int8
//                 executor sharded across worker threads).
//   int8-mtd      EI-MTD moving-target defense: the deployed artifact
//                 is drawn per query (content hash) from a pool of
//                 differently-quantized twins; attacks probe the pool
//                 derivative-free. Telemetry counts per-member queries.
//   int8-ee       early-exit dynamic model: a cheap early head answers
//                 confident queries, uncertain rows continue to the
//                 full artifact — the exit taken is input-dependent.
//
// Scoring is constant across the row: the *true* original (never the
// surrogate) and the deployed artifact of the column — so a surrogate
// cell measures transfer, exactly like the paper's Fig. 5.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "attack/engine.h"
#include "attack/registry.h"
#include "core/evaluation.h"
#include "scenario/defense.h"

namespace diva::scenario {

/// The original-model source an attack optimizes against (matrix row).
enum class OriginalKind { kNone, kFloat, kSurrogate };

/// The adapted-model representation the attack differentiates through
/// (matrix column).
enum class AdaptedKind {
  kFloat,
  kQat,
  kInt8Ste,
  kInt8Fd,
  kInt8FdSub,
  kInt8FdSparse,
  kInt8FdBatch,
  kInt8Batched,
  kInt8Mtd,
  kInt8EarlyExit,
};

const char* to_string(OriginalKind kind);
const char* to_string(AdaptedKind kind);

/// Inverse of to_string, for CLIs and wire protocols. Returns false
/// (leaving *out untouched) for unrecognized names.
bool parse_original_kind(const std::string& name, OriginalKind* out);
bool parse_adapted_kind(const std::string& name, AdaptedKind* out);

/// Row/column enumeration order used by ScenarioMatrix::enumerate().
const std::vector<OriginalKind>& all_original_kinds();
const std::vector<AdaptedKind>& all_adapted_kinds();

/// The model pool a matrix draws from. Entries are non-owning and may
/// be null — cells needing a missing model report a skip reason instead
/// of running. `original` is required for every cell: evasion is always
/// scored against the true original model.
struct ModelPool {
  Module* original = nullptr;       // true original; whitebox grad source
  Module* surrogate = nullptr;      // distilled stand-in original (§4.3)
  Module* adapted_float = nullptr;  // full-precision adapted model
  Module* adapted_qat = nullptr;    // QAT twin: qat source + STE shadow
  const QuantizedModel* quantized = nullptr;  // deployed int8 artifact
  // Defended / dynamic deployed artifacts (scenario/defense.h); only the
  // defense columns need them.
  const MovingTargetModel* mtd = nullptr;     // EI-MTD twin pool
  const EarlyExitModel* early_exit = nullptr; // early-exit dynamic model
};

/// One cell of the matrix: a registry attack kind plus the model pair
/// it is aimed at.
struct CellSpec {
  std::string attack;
  OriginalKind original = OriginalKind::kNone;
  AdaptedKind adapted = AdaptedKind::kQat;
};

// ---------------------------------------------------------------------------
// Pool -> attack wiring, shared with the serve layer (src/serve/): the
// attack server resolves request cells through the exact same source
// construction and missing-model diagnostics as the matrix runner, so a
// served cell and a swept cell can never disagree about what a
// (original, adapted) pair means.
// ---------------------------------------------------------------------------

/// Why the pool cannot field this (original, adapted) pair, or "" when
/// every required model is present. Checks the true original first
/// (always required for evasion scoring), then the requested row and
/// column models.
std::string pool_missing_reason(const ModelPool& pool, OriginalKind original,
                                AdaptedKind adapted);

/// Gradient source for the matrix row; null for OriginalKind::kNone.
/// Requires the pool model for the kind (see pool_missing_reason).
std::shared_ptr<GradSource> make_original_source(const ModelPool& pool,
                                                 OriginalKind kind);

/// Default levers for the probe-compressed columns when the sweep-wide
/// FdConfig leaves them off.
inline constexpr int kDefaultFdSubspaceDim = 16;
inline constexpr float kDefaultFdSparsity = 0.25f;

/// The FdConfig a column actually probes with: `base` plus the lever
/// the probe-compressed kind mandates (subspace_dim for kInt8FdSub,
/// sparsity for kInt8FdSparse, batch_probes for kInt8FdBatch). Levers
/// already active in `base` are kept, so a sweep can pin e.g. a PCA
/// subspace for every compressed column at once.
FdConfig resolved_fd_for(AdaptedKind kind, const FdConfig& base);

/// Gradient source for the matrix column. The int8-fd* and
/// int8-batched columns probe with resolved_fd_for(kind, fd); requires
/// the pool model(s) for the kind.
std::shared_ptr<GradSource> make_adapted_source(const ModelPool& pool,
                                                AdaptedKind kind,
                                                const FdConfig& fd);

/// Eval-mode forward of the *deployed* artifact the column represents —
/// what verdicts are scored against.
ModelFn deployed_model_fn(const ModelPool& pool, AdaptedKind kind);

/// Sweep-wide knobs shared by every cell.
struct RunnerConfig {
  /// Attack budget + objective hyperparameters (registry AttackSpec).
  AttackSpec spec;
  /// Probe configuration for the derivative-free int8 columns.
  FdConfig fd;
  /// AttackEngine width for the int8-batched column (other columns run
  /// sequentially so per-cell throughput stays comparable).
  unsigned batched_threads = 4;
  std::int64_t shard_size = 4;
  /// When set, each runnable cell is re-run once with a step observer
  /// that probes the deployed adapted model after every iteration to
  /// measure steps-to-evade. Doubles the attack cost of the cell; the
  /// timed run stays uninstrumented.
  bool measure_steps = true;
  /// Attack kinds to sweep; empty means every registered kind.
  std::vector<std::string> attacks;
};

/// One matrix-cell record. Every enumerated cell produces exactly one:
/// either `ran` with metrics, or a non-empty `skip_reason`.
struct CellResult {
  CellSpec cell;
  bool ran = false;
  std::string skip_reason;

  int total = 0;           // eval-set size
  int adapted_fooled = 0;  // samples where the deployed adapted model flipped
  float evasion_top1_pct = 0.0f;   // paper §5.1 joint criterion
  float adapted_fooled_pct = 0.0f; // (b) alone — Table 2 metric
  float orig_preserved_pct = 0.0f; // (a) alone
  float linf = 0.0f;               // max L-inf over the batch
  float mean_l2 = 0.0f;            // mean per-sample L2
  /// Mean 1-based step at which the deployed adapted model first
  /// misclassified, averaged over samples that evaded per the §5.1
  /// joint criterion (adapted ends wrong AND the true original ends
  /// correct); -1 when unmeasured or no sample evaded.
  float mean_steps_to_evade = -1.0f;
  double seconds = 0.0;
  double images_per_sec = 0.0;
  unsigned threads = 1;  // execution width of the timed run

  // Deployed-artifact query accounting for the timed run, from
  // telemetry deltas (all zero when telemetry is disabled). This is the
  // queries-per-evasion axis of the probe-compression sweeps.
  std::uint64_t deployed_queries = 0;  // quant.forward rows
  std::uint64_t probe_rows = 0;        // FD probe rows (SPSA + coordinate)
  std::uint64_t probe_forwards = 0;    // probe forward calls (batching)
  /// deployed_queries / adapted_fooled; -1 when nothing was fooled or
  /// telemetry was off.
  double queries_per_fooled = -1.0;

  // Defense-row accounting (telemetry deltas of the timed run; empty /
  // zero for non-defense columns or with telemetry disabled).
  /// Per-member query rows of the int8-mtd column, index = pool member.
  std::vector<std::uint64_t> mtd_member_queries;
  /// Early-exit row split of the int8-ee column.
  std::uint64_t ee_early_rows = 0;
  std::uint64_t ee_full_rows = 0;
};

class ScenarioMatrix {
 public:
  explicit ScenarioMatrix(ModelPool pool, RunnerConfig cfg = {});

  /// Every (attack, original, adapted) combination in deterministic
  /// order: attacks (cfg order or sorted registry order) x rows x
  /// columns.
  std::vector<CellSpec> enumerate() const;

  /// Empty string when the cell is runnable, otherwise why it will be
  /// skipped (wrong row for the attack's traits, or missing pool
  /// model). Throws diva::Error for unregistered attack kinds.
  std::string skip_reason(const CellSpec& cell) const;

  /// Runs (or skips) one cell against the eval set. Deterministic: the
  /// same cell, config, and eval set reproduce every metric bit-for-bit
  /// (timing fields excepted).
  CellResult run_cell(const CellSpec& cell, const Dataset& eval) const;

  /// Runs the whole matrix; `on_cell` (optional) observes each record
  /// as it lands, for progress reporting.
  std::vector<CellResult> run_all(
      const Dataset& eval,
      const std::function<void(const CellResult&)>& on_cell = {}) const;

  const ModelPool& pool() const { return pool_; }
  const RunnerConfig& config() const { return cfg_; }

 private:
  std::shared_ptr<GradSource> original_source(OriginalKind kind) const;
  std::shared_ptr<GradSource> adapted_source(AdaptedKind kind) const;
  ModelFn deployed_adapted_fn(AdaptedKind kind) const;
  float measure_steps_to_evade(const CellSpec& cell,
                               const AttackTargets& targets,
                               const Dataset& eval) const;

  ModelPool pool_;
  RunnerConfig cfg_;
};

/// One JSON object (single line, no trailing newline) per record —
/// the schema documented in README.md. `cfg` supplies the sweep-wide
/// context fields (epsilon/steps/FD samples).
std::string to_json(const CellResult& r, const RunnerConfig& cfg);

/// Writes one `to_json` line per record.
void write_json_lines(const std::vector<CellResult>& results,
                      const RunnerConfig& cfg, std::ostream& os);

}  // namespace diva::scenario
