#include "metrics/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "runtime/check.h"

namespace diva {

namespace {

/// Cyclic Jacobi eigendecomposition of a symmetric matrix (in place).
/// Returns eigenvalues; fills eigenvectors as columns of v.
std::vector<double> jacobi_eigen(std::vector<double>& m, std::int64_t d,
                                 std::vector<double>& v) {
  v.assign(static_cast<std::size_t>(d * d), 0.0);
  for (std::int64_t i = 0; i < d; ++i) v[static_cast<std::size_t>(i * d + i)] = 1.0;

  for (int sweep = 0; sweep < 64; ++sweep) {
    double off = 0.0;
    for (std::int64_t p = 0; p < d; ++p) {
      for (std::int64_t q = p + 1; q < d; ++q) {
        off += m[static_cast<std::size_t>(p * d + q)] *
               m[static_cast<std::size_t>(p * d + q)];
      }
    }
    if (off < 1e-18) break;

    for (std::int64_t p = 0; p < d; ++p) {
      for (std::int64_t q = p + 1; q < d; ++q) {
        const double apq = m[static_cast<std::size_t>(p * d + q)];
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m[static_cast<std::size_t>(p * d + p)];
        const double aqq = m[static_cast<std::size_t>(q * d + q)];
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        for (std::int64_t i = 0; i < d; ++i) {
          const double mip = m[static_cast<std::size_t>(i * d + p)];
          const double miq = m[static_cast<std::size_t>(i * d + q)];
          m[static_cast<std::size_t>(i * d + p)] = c * mip - s * miq;
          m[static_cast<std::size_t>(i * d + q)] = s * mip + c * miq;
        }
        for (std::int64_t i = 0; i < d; ++i) {
          const double mpi = m[static_cast<std::size_t>(p * d + i)];
          const double mqi = m[static_cast<std::size_t>(q * d + i)];
          m[static_cast<std::size_t>(p * d + i)] = c * mpi - s * mqi;
          m[static_cast<std::size_t>(q * d + i)] = s * mpi + c * mqi;
        }
        for (std::int64_t i = 0; i < d; ++i) {
          const double vip = v[static_cast<std::size_t>(i * d + p)];
          const double viq = v[static_cast<std::size_t>(i * d + q)];
          v[static_cast<std::size_t>(i * d + p)] = c * vip - s * viq;
          v[static_cast<std::size_t>(i * d + q)] = s * vip + c * viq;
        }
      }
    }
  }

  std::vector<double> eig(static_cast<std::size_t>(d));
  for (std::int64_t i = 0; i < d; ++i) {
    eig[static_cast<std::size_t>(i)] = m[static_cast<std::size_t>(i * d + i)];
  }
  return eig;
}

}  // namespace

PcaResult pca_fit(const Tensor& x, int k) {
  DIVA_CHECK(x.rank() == 2, "pca_fit needs [N, D]");
  const std::int64_t n = x.dim(0), d = x.dim(1);
  DIVA_CHECK(n >= 2, "pca_fit needs at least two observations");
  DIVA_CHECK(k >= 1 && k <= d, "pca k out of range");

  PcaResult out;
  out.mean.assign(static_cast<std::size_t>(d), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      out.mean[static_cast<std::size_t>(j)] += x.at(i, j);
    }
  }
  for (auto& m : out.mean) m /= static_cast<float>(n);

  // Covariance (D x D) in double.
  std::vector<double> cov(static_cast<std::size_t>(d * d), 0.0);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t a = 0; a < d; ++a) {
      const double da = x.at(i, a) - out.mean[static_cast<std::size_t>(a)];
      for (std::int64_t b = a; b < d; ++b) {
        cov[static_cast<std::size_t>(a * d + b)] +=
            da * (x.at(i, b) - out.mean[static_cast<std::size_t>(b)]);
      }
    }
  }
  for (std::int64_t a = 0; a < d; ++a) {
    for (std::int64_t b = a; b < d; ++b) {
      const double val = cov[static_cast<std::size_t>(a * d + b)] / (n - 1);
      cov[static_cast<std::size_t>(a * d + b)] = val;
      cov[static_cast<std::size_t>(b * d + a)] = val;
    }
  }

  std::vector<double> vecs;
  const auto eig = jacobi_eigen(cov, d, vecs);

  // Sort eigenpairs descending.
  std::vector<int> order(static_cast<std::size_t>(d));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](int a, int b) { return eig[static_cast<std::size_t>(a)] > eig[static_cast<std::size_t>(b)]; });

  out.components = Tensor(Shape{k, d});
  out.explained_variance.resize(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const int src = order[static_cast<std::size_t>(c)];
    out.explained_variance[static_cast<std::size_t>(c)] =
        static_cast<float>(std::max(0.0, eig[static_cast<std::size_t>(src)]));
    for (std::int64_t j = 0; j < d; ++j) {
      out.components.at(c, j) =
          static_cast<float>(vecs[static_cast<std::size_t>(j * d + src)]);
    }
  }
  return out;
}

PcaResult pca_fit_gram(const Tensor& x, int k) {
  DIVA_CHECK(x.rank() == 2, "pca_fit_gram needs [N, D]");
  const std::int64_t n = x.dim(0), d = x.dim(1);
  DIVA_CHECK(n >= 2, "pca_fit_gram needs at least two observations");
  DIVA_CHECK(k >= 1 && k <= std::min<std::int64_t>(n - 1, d),
             "pca_fit_gram k out of range (k <= min(N - 1, D))");

  PcaResult out;
  out.mean.assign(static_cast<std::size_t>(d), 0.0f);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      out.mean[static_cast<std::size_t>(j)] += x.at(i, j);
    }
  }
  for (auto& m : out.mean) m /= static_cast<float>(n);

  // Centered observations in double.
  std::vector<double> xc(static_cast<std::size_t>(n * d));
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      xc[static_cast<std::size_t>(i * d + j)] =
          static_cast<double>(x.at(i, j)) -
          static_cast<double>(out.mean[static_cast<std::size_t>(j)]);
    }
  }

  // Gram matrix G = Xc Xc^T (N x N, unnormalized). Its eigenpairs
  // (mu, u) give covariance eigenvalues mu / (n - 1) and components
  // w = Xc^T u / sqrt(mu), which are unit-norm since |Xc^T u|^2 = mu.
  std::vector<double> gram(static_cast<std::size_t>(n * n), 0.0);
  for (std::int64_t a = 0; a < n; ++a) {
    for (std::int64_t b = a; b < n; ++b) {
      double acc = 0.0;
      const double* ra = xc.data() + a * d;
      const double* rb = xc.data() + b * d;
      for (std::int64_t j = 0; j < d; ++j) acc += ra[j] * rb[j];
      gram[static_cast<std::size_t>(a * n + b)] = acc;
      gram[static_cast<std::size_t>(b * n + a)] = acc;
    }
  }

  std::vector<double> vecs;
  const auto eig = jacobi_eigen(gram, n, vecs);

  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return eig[static_cast<std::size_t>(a)] > eig[static_cast<std::size_t>(b)];
  });

  out.components = Tensor(Shape{k, d});
  out.explained_variance.resize(static_cast<std::size_t>(k));
  for (int c = 0; c < k; ++c) {
    const int src = order[static_cast<std::size_t>(c)];
    const double mu = eig[static_cast<std::size_t>(src)];
    DIVA_CHECK(mu > 1e-9,
               "pca_fit_gram: component " << c << " has (near-)zero variance "
                                          << mu << "; reduce k");
    out.explained_variance[static_cast<std::size_t>(c)] =
        static_cast<float>(mu / static_cast<double>(n - 1));
    const double inv = 1.0 / std::sqrt(mu);
    for (std::int64_t j = 0; j < d; ++j) {
      double acc = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        acc += xc[static_cast<std::size_t>(i * d + j)] *
               vecs[static_cast<std::size_t>(i * n + src)];
      }
      out.components.at(c, j) = static_cast<float>(acc * inv);
    }
  }
  return out;
}

Tensor pca_transform(const PcaResult& pca, const Tensor& x) {
  DIVA_CHECK(x.rank() == 2 && x.dim(1) == pca.components.dim(1),
             "pca_transform dimension mismatch");
  const std::int64_t n = x.dim(0), d = x.dim(1);
  const std::int64_t k = pca.components.dim(0);
  Tensor out(Shape{n, k});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t c = 0; c < k; ++c) {
      double acc = 0;
      for (std::int64_t j = 0; j < d; ++j) {
        acc += (x.at(i, j) - pca.mean[static_cast<std::size_t>(j)]) *
               pca.components.at(c, j);
      }
      out.at(i, c) = static_cast<float>(acc);
    }
  }
  return out;
}

Tensor pca_inverse_transform(const PcaResult& pca, const Tensor& coeffs) {
  DIVA_CHECK(coeffs.rank() == 2 && coeffs.dim(1) == pca.components.dim(0),
             "pca_inverse_transform dimension mismatch");
  const std::int64_t n = coeffs.dim(0);
  const std::int64_t k = pca.components.dim(0);
  const std::int64_t d = pca.components.dim(1);
  Tensor out(Shape{n, d});
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      double acc = static_cast<double>(pca.mean[static_cast<std::size_t>(j)]);
      for (std::int64_t c = 0; c < k; ++c) {
        acc += static_cast<double>(coeffs.at(i, c)) *
               static_cast<double>(pca.components.at(c, j));
      }
      out.at(i, j) = static_cast<float>(acc);
    }
  }
  return out;
}

}  // namespace diva
