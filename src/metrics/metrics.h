// Evaluation metrics used throughout the paper's tables and figures.
//
// Models are passed as forward closures (float logits from NCHW batches)
// so the same metrics apply to float Modules, QAT Modules, and int8
// QuantizedModels.
#pragma once

#include <functional>
#include <vector>

#include "data/dataset.h"
#include "tensor/tensor.h"

namespace diva {

/// Any classifier: NCHW batch in, [N, classes] float logits out.
using ModelFn = std::function<Tensor(const Tensor&)>;

/// Runs the model over the dataset in batches; returns predicted top-1
/// labels.
std::vector<int> predict(const ModelFn& model, const Dataset& data,
                         std::int64_t batch_size = 64);

/// Top-1 accuracy over a dataset.
float accuracy(const ModelFn& model, const Dataset& data,
               std::int64_t batch_size = 64);

/// Top-k accuracy.
float topk_accuracy(const ModelFn& model, const Dataset& data, int k,
                    std::int64_t batch_size = 64);

/// Paper Table 1 statistics between an original and adapted model.
struct InstabilityStats {
  float orig_accuracy = 0.0f;
  float adapted_accuracy = 0.0f;
  int orig_correct_adapted_wrong = 0;  // deviations hurting the edge model
  int orig_wrong_adapted_correct = 0;  // deviations "helping" the edge model
  int disagreements = 0;               // predictions differ (any labels)
  float instability = 0.0f;            // disagreements / total
  int total = 0;
};

InstabilityStats instability(const ModelFn& orig, const ModelFn& adapted,
                             const Dataset& data,
                             std::int64_t batch_size = 64);

/// Mean confidence delta (paper §5.1): average over samples of
/// p_orig(y | x) - p_adapted(y | x), in percent [0, 100].
float confidence_delta(const ModelFn& orig, const ModelFn& adapted,
                       const Tensor& images, const std::vector<int>& labels,
                       std::int64_t batch_size = 64);

}  // namespace diva
