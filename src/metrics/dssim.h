// Structural dissimilarity (DSSIM) between images — the perceptual
// similarity check the paper applies to all adversarial samples
// (reported max 0.0092; "imperceptible to humans").
//
// SSIM is computed per 8x8 window per channel with the standard
// constants (K1 = 0.01, K2 = 0.03, dynamic range L = 1.0) and averaged;
// DSSIM = (1 - SSIM) / 2.
#pragma once

#include "tensor/tensor.h"

namespace diva {

/// Mean SSIM between two CHW or NCHW image tensors in [0,1].
float ssim(const Tensor& a, const Tensor& b);

/// DSSIM = (1 - SSIM) / 2; 0 for identical images, up to 0.5.
float dssim(const Tensor& a, const Tensor& b);

}  // namespace diva
