#include "metrics/metrics.h"

#include <algorithm>

#include "tensor/tensor_ops.h"

namespace diva {

namespace {

/// Applies fn to dataset batches, collecting logits into one tensor.
Tensor batched_logits(const ModelFn& model, const Tensor& images,
                      std::int64_t batch_size) {
  const std::int64_t n = images.dim(0);
  Tensor all;
  std::int64_t done = 0;
  while (done < n) {
    const std::int64_t take = std::min(batch_size, n - done);
    std::vector<int> idx(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<int>(done + i);
    }
    const Tensor logits = model(gather_batch(images, idx));
    if (all.empty()) {
      all = Tensor(Shape{n, logits.dim(1)});
    }
    std::copy_n(logits.raw(), logits.numel(), all.raw() + done * all.dim(1));
    done += take;
  }
  return all;
}

}  // namespace

std::vector<int> predict(const ModelFn& model, const Dataset& data,
                         std::int64_t batch_size) {
  return argmax_rows(batched_logits(model, data.images, batch_size));
}

float accuracy(const ModelFn& model, const Dataset& data,
               std::int64_t batch_size) {
  const auto preds = predict(model, data, batch_size);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    if (preds[i] == data.labels[i]) ++correct;
  }
  return static_cast<float>(correct) / static_cast<float>(preds.size());
}

float topk_accuracy(const ModelFn& model, const Dataset& data, int k,
                    std::int64_t batch_size) {
  const Tensor logits = batched_logits(model, data.images, batch_size);
  const auto topk = topk_rows(logits, k);
  std::int64_t correct = 0;
  for (std::size_t i = 0; i < topk.size(); ++i) {
    if (std::find(topk[i].begin(), topk[i].end(), data.labels[i]) !=
        topk[i].end()) {
      ++correct;
    }
  }
  return static_cast<float>(correct) / static_cast<float>(topk.size());
}

InstabilityStats instability(const ModelFn& orig, const ModelFn& adapted,
                             const Dataset& data, std::int64_t batch_size) {
  const auto po = predict(orig, data, batch_size);
  const auto pa = predict(adapted, data, batch_size);
  InstabilityStats s;
  s.total = static_cast<int>(po.size());
  int oc = 0, ac = 0;
  for (std::size_t i = 0; i < po.size(); ++i) {
    const int y = data.labels[i];
    if (po[i] == y) ++oc;
    if (pa[i] == y) ++ac;
    if (po[i] == y && pa[i] != y) ++s.orig_correct_adapted_wrong;
    if (po[i] != y && pa[i] == y) ++s.orig_wrong_adapted_correct;
    if (po[i] != pa[i]) ++s.disagreements;
  }
  s.orig_accuracy = static_cast<float>(oc) / static_cast<float>(s.total);
  s.adapted_accuracy = static_cast<float>(ac) / static_cast<float>(s.total);
  s.instability =
      static_cast<float>(s.disagreements) / static_cast<float>(s.total);
  return s;
}

float confidence_delta(const ModelFn& orig, const ModelFn& adapted,
                       const Tensor& images, const std::vector<int>& labels,
                       std::int64_t batch_size) {
  const Tensor po =
      softmax_rows(batched_logits(orig, images, batch_size));
  const Tensor pa =
      softmax_rows(batched_logits(adapted, images, batch_size));
  double total = 0.0;
  const std::int64_t n = images.dim(0);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    total += static_cast<double>(po.at(i, y)) - pa.at(i, y);
  }
  return static_cast<float>(total / n * 100.0);
}

}  // namespace diva
