// Principal component analysis for the paper's Figure 4 representation
// study. Covariance eigendecomposition via cyclic Jacobi rotations
// (exact for the small penultimate-feature dimensions used here).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace diva {

struct PcaResult {
  Tensor components;           // [k, D] principal axes (rows, unit norm)
  std::vector<float> explained_variance;  // eigenvalues, descending
  std::vector<float> mean;     // [D] feature means
};

/// Fits k principal components of row-observations X [N, D].
PcaResult pca_fit(const Tensor& x, int k);

/// Projects observations [N, D] onto the fitted components -> [N, k].
Tensor pca_transform(const PcaResult& pca, const Tensor& x);

}  // namespace diva
