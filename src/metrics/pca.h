// Principal component analysis for the paper's Figure 4 representation
// study. Covariance eigendecomposition via cyclic Jacobi rotations
// (exact for the small penultimate-feature dimensions used here).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace diva {

struct PcaResult {
  Tensor components;           // [k, D] principal axes (rows, unit norm)
  std::vector<float> explained_variance;  // eigenvalues, descending
  std::vector<float> mean;     // [D] feature means
};

/// Fits k principal components of row-observations X [N, D].
PcaResult pca_fit(const Tensor& x, int k);

/// Snapshot/Gram-trick fit for N << D (e.g. pixel-space images): solves
/// the N x N Gram eigenproblem instead of the D x D covariance, so the
/// Jacobi cost scales with the observation count. Requires
/// k <= min(N - 1, D) and nonzero variance along every kept component.
PcaResult pca_fit_gram(const Tensor& x, int k);

/// Projects observations [N, D] onto the fitted components -> [N, k].
Tensor pca_transform(const PcaResult& pca, const Tensor& x);

/// Reconstructs observations from coefficients: [N, k] -> [N, D],
/// mean + sum_c coeff_c * component_c. Adjoint of pca_transform.
Tensor pca_inverse_transform(const PcaResult& pca, const Tensor& coeffs);

}  // namespace diva
