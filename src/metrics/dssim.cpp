#include "metrics/dssim.h"

#include <cmath>

#include "runtime/check.h"

namespace diva {

namespace {

constexpr float kC1 = 0.01f * 0.01f;  // (K1 * L)^2 with L = 1
constexpr float kC2 = 0.03f * 0.03f;
constexpr std::int64_t kWindow = 8;

/// SSIM of one window pair.
float window_ssim(const float* a, const float* b, std::int64_t stride,
                  std::int64_t wh, std::int64_t ww) {
  double ma = 0, mb = 0;
  const double n = static_cast<double>(wh * ww);
  for (std::int64_t y = 0; y < wh; ++y) {
    for (std::int64_t x = 0; x < ww; ++x) {
      ma += a[y * stride + x];
      mb += b[y * stride + x];
    }
  }
  ma /= n;
  mb /= n;
  double va = 0, vb = 0, cov = 0;
  for (std::int64_t y = 0; y < wh; ++y) {
    for (std::int64_t x = 0; x < ww; ++x) {
      const double da = a[y * stride + x] - ma;
      const double db = b[y * stride + x] - mb;
      va += da * da;
      vb += db * db;
      cov += da * db;
    }
  }
  va /= n - 1;
  vb /= n - 1;
  cov /= n - 1;
  const double num = (2 * ma * mb + kC1) * (2 * cov + kC2);
  const double den = (ma * ma + mb * mb + kC1) * (va + vb + kC2);
  return static_cast<float>(num / den);
}

}  // namespace

float ssim(const Tensor& a, const Tensor& b) {
  DIVA_CHECK(a.shape() == b.shape(), "ssim: shape mismatch");
  DIVA_CHECK(a.rank() == 3 || a.rank() == 4, "ssim: need CHW or NCHW");

  const std::int64_t channels = a.rank() == 4 ? a.dim(0) * a.dim(1) : a.dim(0);
  const std::int64_t h = a.dim(a.rank() - 2);
  const std::int64_t w = a.dim(a.rank() - 1);
  DIVA_CHECK(h >= kWindow && w >= kWindow, "ssim: image smaller than window");

  double total = 0;
  std::int64_t count = 0;
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* pa = a.raw() + c * h * w;
    const float* pb = b.raw() + c * h * w;
    for (std::int64_t y = 0; y + kWindow <= h; y += kWindow / 2) {
      for (std::int64_t x = 0; x + kWindow <= w; x += kWindow / 2) {
        total += window_ssim(pa + y * w + x, pb + y * w + x, w, kWindow,
                             kWindow);
        ++count;
      }
    }
  }
  return static_cast<float>(total / count);
}

float dssim(const Tensor& a, const Tensor& b) {
  return (1.0f - ssim(a, b)) / 2.0f;
}

}  // namespace diva
