#include "attack/attack_math.h"

#include <algorithm>
#include <cmath>

namespace diva {

Tensor prob_grad_rows(const Tensor& probs, const std::vector<int>& labels) {
  DIVA_CHECK(probs.rank() == 2, "prob_grad_rows needs [N, D]");
  const std::int64_t n = probs.dim(0), d = probs.dim(1);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");
  Tensor g(probs.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    const float py = probs.at(i, y);
    for (std::int64_t j = 0; j < d; ++j) {
      g.at(i, j) = py * ((static_cast<int>(j) == y ? 1.0f : 0.0f) -
                         probs.at(i, j));
    }
  }
  return g;
}

Tensor ce_grad_rows(const Tensor& logits, const std::vector<int>& labels) {
  Tensor g = softmax_rows(logits);
  for (std::int64_t i = 0; i < g.dim(0); ++i) {
    g.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
  }
  return g;
}

Tensor cw_grad_rows(const Tensor& logits, const std::vector<int>& labels) {
  Tensor g(logits.shape());
  const std::int64_t d = logits.dim(1);
  for (std::int64_t i = 0; i < logits.dim(0); ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    int best = -1;
    float best_v = -1e30f;
    for (std::int64_t j = 0; j < d; ++j) {
      if (static_cast<int>(j) == y) continue;
      if (logits.at(i, j) > best_v) {
        best_v = logits.at(i, j);
        best = static_cast<int>(j);
      }
    }
    g.at(i, best) = 1.0f;
    g.at(i, y) = -1.0f;
  }
  return g;
}

Tensor project(const Tensor& x_adv, const Tensor& x_natural, float epsilon) {
  DIVA_CHECK(x_adv.shape() == x_natural.shape(), "project: shape mismatch");
  Tensor out(x_adv.shape());
  for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
    const float lo = std::max(0.0f, x_natural[i] - epsilon);
    const float hi = std::min(1.0f, x_natural[i] + epsilon);
    out[i] = std::min(hi, std::max(lo, x_adv[i]));
  }
  return out;
}

Tensor ascend_and_project(const Tensor& x_adv, const Tensor& grad,
                          const Tensor& x_natural, float alpha,
                          float epsilon) {
  Tensor stepped(x_adv.shape());
  for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
    const float s = grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
    stepped[i] = x_adv[i] + alpha * s;
  }
  return project(stepped, x_natural, epsilon);
}

}  // namespace diva
