// GradSource: the differentiable-model concept of the attack layer.
//
// A GradSource is anything that can (a) produce eval-mode logits for an
// NCHW batch and (b) estimate the gradient of a scalar objective with
// respect to that batch. Attacks are written against this concept
// instead of concrete Module references, so the same objective can be
// aimed at a float Sequential, a QAT twin, or the deployed integer-only
// QuantizedModel artifact.
//
// Gradient computation is expressed as one atomic `input_grad` call:
// the iterator hands the source a GradRequest holding two closures over
// the objective —
//   dlogits(logits) -> d(objective term)/d(logits)   (backprop sources)
//   values(logits)  -> per-sample scalar term values (derivative-free
//                      sources, e.g. finite differences)
// — and the source picks whichever representation it can use. Making
// the forward/backward pair a single call lets stateful Module-backed
// sources guard it with a mutex, which is what allows the AttackEngine
// to shard one attack across threads while sharing models.
//
// Adapters provided here:
//   ModuleGradSource   — float/QAT Module (Sequential) via backprop.
//   QuantSteGradSource — QuantizedModel forward, straight-through
//                        gradients from a float shadow module (the QAT
//                        twin), i.e. the estimator the paper uses for
//                        int8 targets.
//   QuantFdGradSource  — QuantizedModel forward, central finite
//                        differences on the scalar objective: no float
//                        twin needed, the integer artifact alone is the
//                        attack target.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "nn/module.h"
#include "quant/quantized_model.h"
#include "tensor/tensor_ops.h"

namespace diva {

/// Objective closures a GradSource may use to compute input gradients.
struct GradRequest {
  /// d(objective term)/d(logits) for backpropagating sources. [N,D]->[N,D];
  /// row r of the logits corresponds to batch sample r.
  std::function<Tensor(const Tensor& logits)> dlogits;
  /// Per-row scalar term values for derivative-free sources. `rows[r]`
  /// names the batch sample whose label applies to logits row r — FD
  /// sources evaluate many probe rows per sample. [R,D] -> [R].
  std::function<std::vector<float>(const Tensor& logits,
                                   const std::vector<std::int64_t>& rows)>
      values;
  /// Global index of batch sample 0 and the 0-based iteration number.
  /// Stochastic estimators key their probe streams on (sample, step) so
  /// engine sharding reproduces the sequential result bit-for-bit.
  std::int64_t first_sample = 0;
  int step = 0;
};

class GradSource {
 public:
  virtual ~GradSource() = default;

  /// Eval-mode forward: NCHW batch in, [N, classes] float logits out.
  virtual Tensor logits(const Tensor& x) = 0;

  /// d(objective term)/d(x), computed atomically (forward + gradient).
  /// Thread-safe: may be called concurrently from engine shards.
  virtual Tensor input_grad(const Tensor& x, const GradRequest& req) = 0;

  /// Enters/leaves attack mode (eval, parameter gradients off). Calls
  /// nest: the engine prepares once per shard and the model is restored
  /// only when the last shard finishes.
  virtual void prepare() {}
  virtual void restore() {}

  virtual std::string name() const = 0;
};

/// RAII guard that prepares a set of sources and restores them on exit.
class SourcePrepareGuard {
 public:
  explicit SourcePrepareGuard(
      const std::vector<std::shared_ptr<GradSource>>& sources)
      : sources_(sources) {
    for (auto& s : sources_) s->prepare();
  }
  ~SourcePrepareGuard() {
    for (auto& s : sources_) s->restore();
  }
  SourcePrepareGuard(const SourcePrepareGuard&) = delete;
  SourcePrepareGuard& operator=(const SourcePrepareGuard&) = delete;

 private:
  const std::vector<std::shared_ptr<GradSource>>& sources_;
};

/// Backprop adapter for any Module (Sequential, QAT nets, ...). The
/// module's forward/backward pair is stateful and non-reentrant, so the
/// whole input_grad computation is serialized behind a mutex; parallel
/// engine shards interleave at gradient granularity.
class ModuleGradSource : public GradSource {
 public:
  explicit ModuleGradSource(Module& module, std::string label = "");

  Tensor logits(const Tensor& x) override;
  Tensor input_grad(const Tensor& x, const GradRequest& req) override;
  void prepare() override;
  void restore() override;
  std::string name() const override { return label_; }

  Module& module() { return module_; }

 private:
  Module& module_;
  std::string label_;
  std::mutex mu_;
  int prepared_ = 0;  // nesting depth of prepare() calls
};

/// Straight-through adapter: logits come from the integer-only model,
/// gradients flow through a float shadow module (typically the QAT twin
/// the artifact was compiled from). Quantization error is treated as
/// identity in the backward pass — the classic STE.
class QuantSteGradSource : public GradSource {
 public:
  QuantSteGradSource(const QuantizedModel& model, Module& shadow,
                     std::string label = "int8+ste");

  Tensor logits(const Tensor& x) override;
  Tensor input_grad(const Tensor& x, const GradRequest& req) override;
  void prepare() override;
  void restore() override;
  std::string name() const override { return label_; }

 private:
  const QuantizedModel& model_;
  Module& shadow_;
  std::string label_;
  std::mutex mu_;
  int prepared_ = 0;
};

class ProbeSubspace;  // attack/probe_compression.h

/// Derivative-free probing configuration for QuantFdGradSource.
struct FdConfig {
  /// Probe half-step. Must clear the requantization staircase: one input
  /// int8 level is ~1/255 for [0,1] inputs, and inner accumulators only
  /// register multi-quantum moves, so the default is several levels.
  float h = 8.0f / 255.0f;
  /// SPSA probe pairs per sample. More pairs -> lower estimator
  /// variance; cost is 2*samples forwards per sample per step.
  int samples = 128;
  /// Use exact per-pixel central differences instead of SPSA. Costs
  /// 2*pixels forwards per sample per step, and on integer models the
  /// per-pixel signal is usually below the rounding staircase — kept as
  /// the reference estimator, not the default.
  bool coordinate = false;
  /// Base seed of the probe-direction streams (split per sample/step).
  std::uint64_t seed = 0x5B5AULL;

  // Probe-compression levers (ROADMAP item 3). All default off, which
  // reproduces the pre-compression dense estimator bit-for-bit.

  /// Estimate the gradient in a k-dimensional perturbation subspace
  /// instead of full image space; 0 disables. Without an explicit
  /// `subspace`, a random orthonormal basis is derived from `seed`.
  int subspace_dim = 0;
  /// Explicit basis override (e.g. a PCA basis fit from real images via
  /// make_pca_subspace). Takes precedence over subspace_dim.
  std::shared_ptr<const ProbeSubspace> subspace = nullptr;
  /// Fraction of the probed degrees of freedom each probe touches
  /// (sign-sparse directions, antithetically paired). 1.0 = dense.
  float sparsity = 1.0f;
  /// Schedule probe rows across samples AND probe pairs into large
  /// batched int8 forwards instead of one 2*samples forward per sample.
  bool batch_probes = false;
  /// Row cap per batched probe forward (even; >= 2). Only read when
  /// batch_probes is set.
  std::int64_t max_probe_rows = 1024;
};

/// Applies the DIVA_FD_* environment overrides on top of `base`:
/// DIVA_FD_H, DIVA_FD_SAMPLES, DIVA_FD_SUBSPACE, DIVA_FD_SPARSITY,
/// DIVA_FD_BATCH, DIVA_FD_PROBE_ROWS.
FdConfig fd_config_from_env(FdConfig base = {});

/// Derivative-free adapter: estimates the gradient of the scalar
/// objective term through the integer-only model, with no float twin at
/// all. Default estimator is simultaneous-perturbation (SPSA): probe
/// pairs x +- h*delta with random sign vectors delta move every inner
/// accumulator by many quanta at once, which is what survives int8
/// requantization rounding; per-pixel central differences are available
/// via FdConfig::coordinate. Deterministic in (seed, sample, step).
class QuantFdGradSource : public GradSource {
 public:
  explicit QuantFdGradSource(const QuantizedModel& model, FdConfig cfg = {},
                             std::string label = "int8+fd");

  /// Probes an arbitrary deployed forward function instead of a bare
  /// QuantizedModel — the hook defense wrappers (moving-target pools,
  /// early-exit models) use to become derivative-free attack targets.
  /// `forward` must be thread-safe and deterministic per row.
  QuantFdGradSource(std::function<Tensor(const Tensor&)> forward,
                    FdConfig cfg, std::string label);

  Tensor logits(const Tensor& x) override;
  Tensor input_grad(const Tensor& x, const GradRequest& req) override;
  std::string name() const override { return label_; }

 private:
  Tensor coordinate_grad(const Tensor& x, const GradRequest& req) const;
  Tensor spsa_grad(const Tensor& x, const GradRequest& req) const;
  /// Resolves the active probe subspace for image dimension `per`:
  /// the explicit cfg_.subspace if set, else a lazily built (and
  /// cached) random basis when subspace_dim > 0, else null.
  std::shared_ptr<const ProbeSubspace> ensure_subspace(
      std::int64_t per) const;

  std::function<Tensor(const Tensor&)> forward_;
  FdConfig cfg_;
  std::string label_;
  mutable std::mutex sub_mu_;
  mutable std::shared_ptr<const ProbeSubspace> sub_;
};

}  // namespace diva
