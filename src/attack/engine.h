// AttackEngine: deterministic data-parallel execution of attacks.
//
// The engine splits an eval batch into fixed-size shards and runs the
// attack on each shard across a runtime::ThreadPool. Shard boundaries
// depend only on the batch size (never on the thread count), per-sample
// work is independent (eval-mode forwards, per-sample momentum and
// projection), and random starts draw from per-sample RNG streams keyed
// by the *global* sample index — so the sharded result is bit-identical
// to the sequential result for a fixed seed, whether the engine runs
// with 1, 2, 4, or 8 threads.
//
// Stateful gradient sources (Module-backed) serialize their
// forward/backward pairs internally; derivative-free sources (the int8
// finite-difference adapter) run fully concurrently, which is where
// multi-threading pays off most.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "attack/attack.h"
#include "runtime/thread_pool.h"

namespace diva {

struct EngineConfig {
  /// Worker threads; 0 means hardware concurrency.
  unsigned threads = 0;
  /// Samples per shard. Fixed shard geometry (independent of thread
  /// count) is what makes the output reproducible across pool sizes.
  std::int64_t shard_size = 8;
};

class AttackEngine {
 public:
  explicit AttackEngine(EngineConfig cfg = {});
  ~AttackEngine();

  AttackEngine(const AttackEngine&) = delete;
  AttackEngine& operator=(const AttackEngine&) = delete;

  /// Runs the attack over the batch, sharded across the pool. Falls back
  /// to a single sequential call when the attack is not shardable (e.g.
  /// it carries a step callback) or the batch fits in one shard.
  Tensor run(Attack& attack, const Tensor& x,
             const std::vector<int>& labels) const;

  unsigned threads() const;

 private:
  EngineConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;  // absent when threads == 1
};

}  // namespace diva
