// The attack layer: gradient sources, composable objectives, and one
// iterated optimizer.
//
// The API is three layers deep:
//
//   1. GradSource (grad_source.h) — the differentiable-model concept:
//      eval-mode logits + an atomic input-gradient closure. Adapters
//      exist for float/QAT Modules (backprop), and for the deployed
//      integer-only QuantizedModel via straight-through estimation
//      (QuantSteGradSource) or finite differences (QuantFdGradSource),
//      so the edge artifact itself is a first-class attack target.
//
//   2. AttackObjective (objective.h) — the scalar function being
//      ascended, written as weighted per-source terms. Cross-entropy,
//      CW margin, the DIVA joint objective (Eq. 5/6) and targeted DIVA
//      are objectives, not attack classes.
//
//   3. IteratedAttack (this header) — the single PGD/momentum iterator
//      that drives any (sources, objective) pair, plus AttackEngine
//      (engine.h) which shards batches across a runtime::ThreadPool
//      with per-sample RNG streams (sharded output is bit-identical to
//      sequential for a fixed seed), and the string-keyed registry
//      (registry.h): make_attack("diva", targets, spec).
//
// All attacks operate on batches of natural images in [0,1] (NCHW) and
// produce adversarial batches constrained to the L-infinity ball of
// radius epsilon around the natural input, intersected with [0,1]
// (Eq. 3 of the paper). Models are attacked in eval mode with parameter
// gradients disabled; only input gradients are computed.
//
// Default hyperparameters follow the paper's §5.1: epsilon = 8/255,
// step size alpha = 1/255, t = 20 steps, natural-sample initialization
// (no random start).
//
// The PR-1 concrete wrapper classes (PgdAttack, FgsmAttack,
// MomentumPgdAttack, DivaAttack, TargetedDivaAttack) were removed after
// their one-release deprecation window; build attacks through the
// registry (registry.h) or compose IteratedAttack directly — see the
// migration table in CHANGES.md.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack_math.h"
#include "attack/grad_source.h"
#include "attack/objective.h"
#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace diva {

struct AttackConfig {
  float epsilon = 8.0f / 255.0f;
  float alpha = 1.0f / 255.0f;
  int steps = 20;
  bool random_start = false;
  std::uint64_t seed = 0;
  /// Momentum coefficient mu (Dong et al.); 0 disables the velocity
  /// accumulator and takes plain sign-of-gradient steps.
  float momentum = 0.0f;
  /// Optional observer invoked after every iteration with (1-based step,
  /// current adversarial batch) — used by the Fig. 6d step sweep.
  /// Attacks carrying a callback are not sharded by the AttackEngine.
  std::function<void(int, const Tensor&)> step_callback;
};

class Attack {
 public:
  virtual ~Attack() = default;

  /// Perturbs a batch; returns adversarial images of the same shape.
  virtual Tensor perturb(const Tensor& x, const std::vector<int>& labels) = 0;

  /// Shard entry point for the AttackEngine: like perturb, but sample i
  /// of `x` is sample `first_sample + i` of the engine-level batch, so
  /// per-sample RNG streams land on the same values under any sharding.
  virtual Tensor perturb_indexed(const Tensor& x,
                                 const std::vector<int>& labels,
                                 std::int64_t first_sample) {
    (void)first_sample;
    return perturb(x, labels);
  }

  /// True only when sharding cannot change observable behavior: the
  /// attack honors first_sample, is safe to call concurrently, and has
  /// no whole-batch coupling (e.g. a step_callback observer). The base
  /// default is conservative — custom attacks that only implement
  /// perturb() run sequentially under the engine until they opt in.
  virtual bool shardable() const { return false; }

  virtual std::string name() const = 0;
};

/// The unified gradient-ascent iterator: projected sign steps (optional
/// momentum, optional per-sample random start) on any objective over
/// any set of gradient sources. Every attack in the library is an
/// instance of this class.
class IteratedAttack : public Attack {
 public:
  IteratedAttack(std::string name,
                 std::vector<std::shared_ptr<GradSource>> sources,
                 std::shared_ptr<AttackObjective> objective,
                 AttackConfig cfg = {});

  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  Tensor perturb_indexed(const Tensor& x, const std::vector<int>& labels,
                         std::int64_t first_sample) override;
  bool shardable() const override { return !cfg_.step_callback; }
  std::string name() const override { return name_; }

  const AttackConfig& config() const { return cfg_; }
  const AttackObjective& objective() const { return *objective_; }
  const std::vector<std::shared_ptr<GradSource>>& sources() const {
    return sources_;
  }

 private:
  std::string name_;
  std::vector<std::shared_ptr<GradSource>> sources_;
  std::shared_ptr<AttackObjective> objective_;
  AttackConfig cfg_;
};

}  // namespace diva
