// Adversarial attack interfaces and the gradient-based attack family.
//
// All attacks operate on batches of natural images in [0,1] (NCHW) and
// produce adversarial batches constrained to the L-infinity ball of
// radius epsilon around the natural input, intersected with [0,1]
// (Eq. 3 of the paper). Models are attacked in eval mode with parameter
// gradients disabled; only input gradients are computed.
//
// Default hyperparameters follow the paper's §5.1: epsilon = 8/255,
// step size alpha = 1/255, t = 20 steps, natural-sample initialization
// (no random start).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace diva {

struct AttackConfig {
  float epsilon = 8.0f / 255.0f;
  float alpha = 1.0f / 255.0f;
  int steps = 20;
  bool random_start = false;
  std::uint64_t seed = 0;
  /// Optional observer invoked after every iteration with (1-based step,
  /// current adversarial batch) — used by the Fig. 6d step sweep.
  std::function<void(int, const Tensor&)> step_callback;
};

class Attack {
 public:
  virtual ~Attack() = default;

  /// Perturbs a batch; returns adversarial images of the same shape.
  virtual Tensor perturb(const Tensor& x, const std::vector<int>& labels) = 0;

  virtual std::string name() const = 0;
};

/// Loss maximized by the single-model attacks.
enum class AttackLoss {
  kCrossEntropy,  // standard PGD objective
  kCwMargin,      // max_{i != y} z_i - z_y   (L-inf CW, Madry setup)
};

/// Projected gradient descent (Madry et al.) against a single model.
class PgdAttack : public Attack {
 public:
  PgdAttack(Module& model, AttackConfig cfg = {},
            AttackLoss loss = AttackLoss::kCrossEntropy);

  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  std::string name() const override {
    return loss_ == AttackLoss::kCwMargin ? "CW" : "PGD";
  }

 private:
  Module& model_;
  AttackConfig cfg_;
  AttackLoss loss_;
};

/// FGSM: single-step PGD with alpha = epsilon (Goodfellow et al.).
class FgsmAttack : public Attack {
 public:
  explicit FgsmAttack(Module& model, float epsilon = 8.0f / 255.0f);
  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  std::string name() const override { return "FGSM"; }

 private:
  PgdAttack pgd_;
};

/// Momentum PGD (Dong et al.): accumulates an L1-normalized gradient
/// moving average before taking the sign step.
class MomentumPgdAttack : public Attack {
 public:
  MomentumPgdAttack(Module& model, AttackConfig cfg = {}, float mu = 0.5f);
  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  std::string name() const override { return "MomentumPGD"; }

 private:
  Module& model_;
  AttackConfig cfg_;
  float mu_;
};

/// DIVA (the paper's contribution, Eq. 5/6): jointly maximizes
///   L = p_orig(y | x') - c * p_adapted(y | x')
/// so the adapted model flips while the original model keeps its
/// prediction. Solved with PGD-style iterations.
class DivaAttack : public Attack {
 public:
  DivaAttack(Module& original, Module& adapted, float c = 1.0f,
             AttackConfig cfg = {});

  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  std::string name() const override { return "DIVA"; }

  float c() const { return c_; }

 private:
  Module& original_;
  Module& adapted_;
  float c_;
  AttackConfig cfg_;
};

/// Targeted DIVA (§6): adds a pull toward a chosen target class on the
/// adapted model:  L = p_o[y] - c * p_a[y] - k * || p_a - onehot(t) ||^2.
class TargetedDivaAttack : public Attack {
 public:
  TargetedDivaAttack(Module& original, Module& adapted, int target_class,
                     float c = 1.0f, float k = 2.0f, AttackConfig cfg = {});

  Tensor perturb(const Tensor& x, const std::vector<int>& labels) override;
  std::string name() const override { return "TargetedDIVA"; }

 private:
  Module& original_;
  Module& adapted_;
  int target_;
  float c_, k_;
  AttackConfig cfg_;
};

// ---------------------------------------------------------------------------
// Building blocks shared by the attack implementations (exposed for
// tests and for composing new attacks).
// ---------------------------------------------------------------------------

/// d(p[y])/d(logits) rows: p[y] * (e_y - p). `probs` is [N, D].
Tensor prob_grad_rows(const Tensor& probs, const std::vector<int>& labels);

/// Projects x_adv into the epsilon ball around x and into [0,1].
Tensor project(const Tensor& x_adv, const Tensor& x_natural, float epsilon);

/// One ascent step: x + alpha * sign(grad), then projection.
Tensor ascend_and_project(const Tensor& x_adv, const Tensor& grad,
                          const Tensor& x_natural, float alpha, float epsilon);

}  // namespace diva
