// Pure-math building blocks shared by attack objectives and the PGD
// iterator: loss-gradient rows, the epsilon-ball projection, and the
// signed ascent step. Exposed for tests and for composing new
// objectives.
#pragma once

#include <vector>

#include "tensor/tensor_ops.h"

namespace diva {

/// d(p[y])/d(logits) rows: p[y] * (e_y - p). `probs` is [N, D].
Tensor prob_grad_rows(const Tensor& probs, const std::vector<int>& labels);

/// d(CE)/d(logits) = p - onehot (per row; un-normalized across the batch
/// so sign() steps are per-sample, matching the standard attack setup).
Tensor ce_grad_rows(const Tensor& logits, const std::vector<int>& labels);

/// d(max_{i!=y} z_i - z_y)/d(logits) = e_{i*} - e_y.
Tensor cw_grad_rows(const Tensor& logits, const std::vector<int>& labels);

/// Projects x_adv into the epsilon ball around x and into [0,1].
Tensor project(const Tensor& x_adv, const Tensor& x_natural, float epsilon);

/// One ascent step: x + alpha * sign(grad), then projection.
Tensor ascend_and_project(const Tensor& x_adv, const Tensor& grad,
                          const Tensor& x_natural, float alpha, float epsilon);

}  // namespace diva
