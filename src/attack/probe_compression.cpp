#include "attack/probe_compression.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>

#include "metrics/pca.h"
#include "runtime/check.h"

namespace diva {

// ---------------------------------------------------------------------------
// ProbeSubspace
// ---------------------------------------------------------------------------

ProbeSubspace::ProbeSubspace(Tensor basis, std::string kind)
    : basis_(std::move(basis)), kind_(std::move(kind)) {
  DIVA_CHECK(basis_.rank() == 2, "ProbeSubspace basis must be [k, D]");
  DIVA_CHECK(basis_.dim(0) >= 1 && basis_.dim(0) <= basis_.dim(1),
             "ProbeSubspace needs 1 <= k <= D, got [" << basis_.dim(0) << ", "
                                                      << basis_.dim(1) << "]");
}

std::vector<float> ProbeSubspace::lift(const std::vector<float>& coeffs) const {
  const std::int64_t k = dim(), d = image_dim();
  DIVA_CHECK(static_cast<std::int64_t>(coeffs.size()) == k,
             "lift expects " << k << " coefficients, got " << coeffs.size());
  std::vector<float> out(static_cast<std::size_t>(d), 0.0f);
  for (std::int64_t c = 0; c < k; ++c) {
    const float cc = coeffs[static_cast<std::size_t>(c)];
    if (cc == 0.0f) continue;
    const float* row = basis_.raw() + c * d;
    for (std::int64_t j = 0; j < d; ++j) {
      out[static_cast<std::size_t>(j)] += cc * row[j];
    }
  }
  return out;
}

std::vector<float> ProbeSubspace::project(const float* image) const {
  const std::int64_t k = dim(), d = image_dim();
  std::vector<float> out(static_cast<std::size_t>(k));
  for (std::int64_t c = 0; c < k; ++c) {
    const float* row = basis_.raw() + c * d;
    double acc = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      acc += static_cast<double>(row[j]) * static_cast<double>(image[j]);
    }
    out[static_cast<std::size_t>(c)] = static_cast<float>(acc);
  }
  return out;
}

std::shared_ptr<const ProbeSubspace> make_random_subspace(
    std::int64_t image_dim, std::int64_t k, std::uint64_t seed) {
  DIVA_CHECK(k >= 1 && k <= image_dim,
             "random subspace needs 1 <= k <= D, got k=" << k
                                                         << " D=" << image_dim);
  Rng rng(seed);
  // Gaussian rows, orthonormalized by modified Gram-Schmidt in double.
  std::vector<std::vector<double>> rows(static_cast<std::size_t>(k));
  for (std::int64_t r = 0; r < k; ++r) {
    auto& row = rows[static_cast<std::size_t>(r)];
    row.resize(static_cast<std::size_t>(image_dim));
    for (;;) {
      for (auto& v : row) v = static_cast<double>(rng.normal());
      for (std::int64_t p = 0; p < r; ++p) {
        const auto& prev = rows[static_cast<std::size_t>(p)];
        double proj = 0.0;
        for (std::int64_t j = 0; j < image_dim; ++j) {
          proj += row[static_cast<std::size_t>(j)] *
                  prev[static_cast<std::size_t>(j)];
        }
        for (std::int64_t j = 0; j < image_dim; ++j) {
          row[static_cast<std::size_t>(j)] -=
              proj * prev[static_cast<std::size_t>(j)];
        }
      }
      double norm2 = 0.0;
      for (const double v : row) norm2 += v * v;
      if (norm2 > 1e-12) {  // a.s. true for Gaussian draws; redraw otherwise
        const double inv = 1.0 / std::sqrt(norm2);
        for (auto& v : row) v *= inv;
        break;
      }
    }
  }
  Tensor basis(Shape{k, image_dim});
  for (std::int64_t r = 0; r < k; ++r) {
    for (std::int64_t j = 0; j < image_dim; ++j) {
      basis.at(r, j) =
          static_cast<float>(rows[static_cast<std::size_t>(r)]
                                 [static_cast<std::size_t>(j)]);
    }
  }
  return std::make_shared<ProbeSubspace>(std::move(basis), "rand");
}

std::shared_ptr<const ProbeSubspace> make_pca_subspace(const Tensor& images,
                                                       int k) {
  DIVA_CHECK(images.rank() >= 2, "make_pca_subspace needs [N, ...] images");
  const std::int64_t n = images.dim(0);
  DIVA_CHECK(n >= 2, "make_pca_subspace needs at least two images");
  const std::int64_t d = images.numel() / n;
  const std::int64_t kk =
      std::min<std::int64_t>(k, std::min<std::int64_t>(n - 1, d));
  DIVA_CHECK(kk >= 1, "make_pca_subspace k out of range");
  Tensor flat(Shape{n, d});
  std::memcpy(flat.raw(), images.raw(),
              sizeof(float) * static_cast<std::size_t>(images.numel()));
  // Snapshot/Gram eigensolve when observations are the small side:
  // pixel-space D (e.g. 784) would make the direct D x D Jacobi
  // intractable, and rank caps the useful k at n - 1 anyway.
  PcaResult pca = (n - 1 < d) ? pca_fit_gram(flat, static_cast<int>(kk))
                              : pca_fit(flat, static_cast<int>(kk));
  return std::make_shared<ProbeSubspace>(std::move(pca.components), "pca");
}

// ---------------------------------------------------------------------------
// SparseProbe
// ---------------------------------------------------------------------------

SparseProbe sample_sparse_probe(Rng& rng, std::int64_t dim, std::int64_t nnz) {
  DIVA_CHECK(dim >= 1 && nnz >= 1 && nnz <= dim,
             "sample_sparse_probe needs 1 <= nnz <= dim, got nnz="
                 << nnz << " dim=" << dim);
  SparseProbe sp;
  sp.dim = dim;
  if (nnz >= dim) {
    // Dense probe: identity support, one bernoulli per coordinate in
    // ascending order — the exact stream the legacy dense SPSA drew.
    sp.index.resize(static_cast<std::size_t>(dim));
    std::iota(sp.index.begin(), sp.index.end(), 0);
  } else {
    std::vector<std::uint8_t> taken(static_cast<std::size_t>(dim), 0);
    sp.index.reserve(static_cast<std::size_t>(nnz));
    while (static_cast<std::int64_t>(sp.index.size()) < nnz) {
      const auto idx = static_cast<std::int32_t>(
          rng.randint(static_cast<std::uint64_t>(dim)));
      if (!taken[static_cast<std::size_t>(idx)]) {
        taken[static_cast<std::size_t>(idx)] = 1;
        sp.index.push_back(idx);
      }
    }
    std::sort(sp.index.begin(), sp.index.end());
  }
  sp.signbits.assign((sp.index.size() + 7) / 8, 0);
  for (std::size_t t = 0; t < sp.index.size(); ++t) {
    if (rng.bernoulli(0.5)) {
      sp.signbits[t >> 3] |= static_cast<std::uint8_t>(1u << (t & 7));
    }
  }
  return sp;
}

SparseProbe encode_sparse_probe(const float* dense, std::int64_t dim) {
  SparseProbe sp;
  sp.dim = dim;
  for (std::int64_t i = 0; i < dim; ++i) {
    if (dense[i] != 0.0f) sp.index.push_back(static_cast<std::int32_t>(i));
  }
  sp.signbits.assign((sp.index.size() + 7) / 8, 0);
  for (std::size_t t = 0; t < sp.index.size(); ++t) {
    if (dense[sp.index[t]] > 0.0f) {
      sp.signbits[t >> 3] |= static_cast<std::uint8_t>(1u << (t & 7));
    }
  }
  return sp;
}

std::vector<float> decode_sparse_probe(const SparseProbe& probe) {
  std::vector<float> out(static_cast<std::size_t>(probe.dim), 0.0f);
  for (std::size_t t = 0; t < probe.index.size(); ++t) {
    out[static_cast<std::size_t>(probe.index[t])] = probe.sign(t);
  }
  return out;
}

}  // namespace diva
