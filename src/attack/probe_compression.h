// Probe compression for derivative-free (SPSA) attacks on the int8
// artifact.
//
// SPSA cost against the deployed model is probes × forwards: every PGD
// step spends 2·samples probe rows per image, each a full-dimension
// perturbation. This module supplies the three levers that compress
// that budget (ROADMAP item 3):
//
//   ProbeSubspace      — a k-dimensional perturbation basis (PCA-fit
//                        from real images, or a random orthonormal
//                        projection). Probe directions are drawn in
//                        coefficient space and lifted to image space,
//                        so estimator cost scales with k instead of D.
//   SparseProbe        — a sign-sparse probe direction (GeoMX bisparse
//                        idiom): a random coordinate subset with ±1
//                        signs bit-packed, paired antithetically.
//   encode/decode      — dense ±1/0 vector <-> SparseProbe round-trip,
//                        the compressed wire form of a probe.
//
// Everything here is deterministic: subspaces are a pure function of
// (seed) or the fitting data, and sparse probes are a pure function of
// the caller's Rng stream. When nnz == dim, sample_sparse_probe draws
// exactly one bernoulli per coordinate in ascending order — the same
// stream the pre-compression dense SPSA estimator consumed, so the
// default configuration reproduces historical probe directions
// bit-for-bit.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "runtime/rng.h"
#include "tensor/tensor.h"

namespace diva {

/// A k-dimensional perturbation subspace with orthonormal basis rows.
/// basis() is [k, D]: row c is the image-space direction of coefficient
/// axis c. lift/project are exact adjoints up to float rounding.
class ProbeSubspace {
 public:
  ProbeSubspace(Tensor basis, std::string kind);

  std::int64_t dim() const { return basis_.dim(0); }
  std::int64_t image_dim() const { return basis_.dim(1); }
  const Tensor& basis() const { return basis_; }
  /// "pca" or "rand" — recorded in labels and bench JSON.
  const std::string& kind() const { return kind_; }

  /// Coefficients [k] -> image-space direction [D]: sum_c c_c * row_c.
  std::vector<float> lift(const std::vector<float>& coeffs) const;
  /// Image vector [D] -> coefficients [k]: row_c · image.
  std::vector<float> project(const float* image) const;

 private:
  Tensor basis_;
  std::string kind_;
};

/// Random orthonormal subspace: k Gaussian rows in double precision,
/// modified Gram-Schmidt, cast to float. Deterministic in (seed).
std::shared_ptr<const ProbeSubspace> make_random_subspace(
    std::int64_t image_dim, std::int64_t k, std::uint64_t seed);

/// PCA subspace fit from a batch of images ([N, D] or NCHW, flattened
/// per sample). Uses the Gram/snapshot eigensolve when N - 1 < D so
/// pixel-space bases stay tractable; k is clamped to min(N - 1, D).
std::shared_ptr<const ProbeSubspace> make_pca_subspace(const Tensor& images,
                                                       int k);

/// A sign-sparse probe direction over `dim` coordinates: `index` is the
/// ascending support, bit t of `signbits` gives the sign of support
/// entry t (1 -> +1, 0 -> -1). Untouched coordinates are zero.
struct SparseProbe {
  std::int64_t dim = 0;
  std::vector<std::int32_t> index;
  std::vector<std::uint8_t> signbits;

  std::int64_t nnz() const { return static_cast<std::int64_t>(index.size()); }
  /// Sign of support entry t (NOT coordinate t unless the probe is dense).
  float sign(std::size_t t) const {
    return (signbits[t >> 3] >> (t & 7)) & 1 ? 1.0f : -1.0f;
  }
};

/// Draws a probe with `nnz` distinct random coordinates and random ±1
/// signs from `rng`. When nnz == dim the support is the identity and
/// exactly one bernoulli is drawn per coordinate in ascending order
/// (the legacy dense SPSA stream).
SparseProbe sample_sparse_probe(Rng& rng, std::int64_t dim, std::int64_t nnz);

/// Dense ±1/0 vector -> SparseProbe (support = nonzeros, sign of value).
SparseProbe encode_sparse_probe(const float* dense, std::int64_t dim);

/// SparseProbe -> dense ±1/0 vector of length dim.
std::vector<float> decode_sparse_probe(const SparseProbe& probe);

}  // namespace diva
