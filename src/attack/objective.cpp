#include "attack/objective.h"

#include <cmath>

#include "attack/attack_math.h"
#include "runtime/check.h"
#include "tensor/tensor_ops.h"

namespace diva {

namespace {

void check_source(std::size_t s, std::size_t n) {
  DIVA_CHECK(s < n, "objective source index " << s << " out of range");
}

/// p[y] per row of a probability matrix.
std::vector<float> label_probs(const Tensor& probs,
                               const std::vector<int>& labels) {
  std::vector<float> out(static_cast<std::size_t>(probs.dim(0)));
  for (std::int64_t i = 0; i < probs.dim(0); ++i) {
    out[static_cast<std::size_t>(i)] =
        probs.at(i, labels[static_cast<std::size_t>(i)]);
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// CrossEntropyObjective
// ---------------------------------------------------------------------------

Tensor CrossEntropyObjective::grad_logits(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 1);
  return ce_grad_rows(logits, labels);
}

std::vector<float> CrossEntropyObjective::term_values(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 1);
  const Tensor p = softmax_rows(logits);
  std::vector<float> out = label_probs(p, labels);
  for (auto& v : out) v = -std::log(std::max(v, 1e-12f));
  return out;
}

// ---------------------------------------------------------------------------
// CwMarginObjective
// ---------------------------------------------------------------------------

Tensor CwMarginObjective::grad_logits(std::size_t s, const Tensor& logits,
                                      const std::vector<int>& labels) const {
  check_source(s, 1);
  return cw_grad_rows(logits, labels);
}

std::vector<float> CwMarginObjective::term_values(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 1);
  const std::int64_t d = logits.dim(1);
  std::vector<float> out(static_cast<std::size_t>(logits.dim(0)));
  for (std::int64_t i = 0; i < logits.dim(0); ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    float best = -1e30f;
    for (std::int64_t j = 0; j < d; ++j) {
      if (static_cast<int>(j) == y) continue;
      best = std::max(best, logits.at(i, j));
    }
    out[static_cast<std::size_t>(i)] = best - logits.at(i, y);
  }
  return out;
}

// ---------------------------------------------------------------------------
// DivaObjective
// ---------------------------------------------------------------------------

DivaObjective::DivaObjective(float c) : c_(c) {
  DIVA_CHECK(c >= 0.0f, "DIVA c must be non-negative");
}

Tensor DivaObjective::grad_logits(std::size_t s, const Tensor& logits,
                                  const std::vector<int>& labels) const {
  check_source(s, 2);
  return prob_grad_rows(softmax_rows(logits), labels);
}

std::vector<float> DivaObjective::term_values(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 2);
  return label_probs(softmax_rows(logits), labels);
}

// ---------------------------------------------------------------------------
// TargetedDivaObjective
// ---------------------------------------------------------------------------

TargetedDivaObjective::TargetedDivaObjective(int target_class, float c,
                                             float k)
    : target_(target_class), c_(c), k_(k) {
  DIVA_CHECK(target_class >= 0, "target class must be non-negative");
}

Tensor TargetedDivaObjective::grad_logits(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 2);
  const Tensor p = softmax_rows(logits);
  if (s == 0) return prob_grad_rows(p, labels);

  // Adapted-model logit gradient: -c * d(p_a[y]) - k * d(||p_a - t||^2).
  Tensor dlogits = prob_grad_rows(p, labels);
  const std::int64_t n = p.dim(0), d = p.dim(1);
  for (std::int64_t i = 0; i < n; ++i) {
    // J_softmax^T v with v = 2 (p - onehot(t)):
    //   p .* v - p * (p . v)
    double pv = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      const float target_ind = static_cast<int>(j) == target_ ? 1.0f : 0.0f;
      pv += static_cast<double>(p.at(i, j)) * 2.0 * (p.at(i, j) - target_ind);
    }
    for (std::int64_t j = 0; j < d; ++j) {
      const float target_ind = static_cast<int>(j) == target_ ? 1.0f : 0.0f;
      const float dl2 = p.at(i, j) * (2.0f * (p.at(i, j) - target_ind) -
                                      static_cast<float>(pv));
      // The iterator ascends on the weighted sum, so fold the signs here:
      dlogits.at(i, j) = -c_ * dlogits.at(i, j) - k_ * dl2;
    }
  }
  return dlogits;
}

std::vector<float> TargetedDivaObjective::term_values(
    std::size_t s, const Tensor& logits,
    const std::vector<int>& labels) const {
  check_source(s, 2);
  const Tensor p = softmax_rows(logits);
  std::vector<float> out = label_probs(p, labels);
  if (s == 0) return out;
  const std::int64_t d = p.dim(1);
  for (std::int64_t i = 0; i < p.dim(0); ++i) {
    double dist2 = 0.0;
    for (std::int64_t j = 0; j < d; ++j) {
      const float target_ind = static_cast<int>(j) == target_ ? 1.0f : 0.0f;
      const double diff = p.at(i, j) - target_ind;
      dist2 += diff * diff;
    }
    auto& v = out[static_cast<std::size_t>(i)];
    v = -c_ * v - k_ * static_cast<float>(dist2);
  }
  return out;
}

}  // namespace diva
