// String-keyed attack registry: the one construction path for every
// attack in the library.
//
//   AttackTargets t{source(original), source(adapted_qat)};
//   auto diva = make_attack("diva", t, {.cfg = cfg, .c = 1.0f});
//   Tensor adv = diva->perturb(images, labels);
//
// AttackTargets is the model-pool indirection: each side is a
// GradSource, so "adapted" can be a float Module, a QAT twin, or the
// deployed int8 QuantizedModel (via the STE or finite-difference
// adapters) — swapping the target model never changes attack code.
//
// Built-in attack kinds:
//   "pgd"            cross-entropy PGD on the adapted model
//   "cw"             CW-margin PGD on the adapted model
//   "fgsm"           single-step PGD with alpha = epsilon
//   "momentum-pgd"   momentum PGD (spec.cfg.momentum; 0.5 if unset)
//   "diva"           DIVA joint objective over (original, adapted)
//   "targeted-diva"  targeted DIVA (spec.target, spec.c, spec.k)
//
// New kinds can be added at runtime with register_attack(), e.g. from
// experiment drivers that compose custom objectives.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "attack/attack.h"

namespace diva {

/// The models an attack is aimed at. Single-model attacks use only
/// `adapted`; evasive attacks drive both sides.
struct AttackTargets {
  std::shared_ptr<GradSource> original;  // evasion constraint (may be null)
  std::shared_ptr<GradSource> adapted;   // the model being fooled
};

/// Everything a factory needs besides the targets. Fields beyond `cfg`
/// are objective hyperparameters; kinds ignore the ones they don't use.
struct AttackSpec {
  AttackConfig cfg;
  float c = 1.0f;  // DIVA balance (Eq. 5)
  float k = 2.0f;  // targeted-DIVA pull strength
  int target = 0;  // targeted-DIVA target class
};

/// Builds a backprop gradient source for a float or QAT module.
std::shared_ptr<GradSource> source(Module& module, std::string label = "");

/// Builds a straight-through source: int8 forward, float-shadow backward.
std::shared_ptr<GradSource> source(const QuantizedModel& model, Module& shadow,
                                   std::string label = "int8+ste");

/// Canonical display label for a derivative-free source: "int8+fd" plus
/// one suffix per active probe-compression lever, e.g.
/// "int8+fd+sub16+sp25+batch". Scenario cells and bench JSON use this
/// so lever configurations are tellable apart in recorded results.
std::string fd_label(const FdConfig& cfg);

/// Builds a derivative-free source for the int8 artifact alone (SPSA by
/// default; see FdConfig for the exact coordinate-wise estimator). When
/// `label` is left at its default, the lever-annotated fd_label(cfg) is
/// used instead.
std::shared_ptr<GradSource> fd_source(const QuantizedModel& model,
                                      FdConfig cfg = {},
                                      std::string label = "int8+fd");

/// Derivative-free source over an arbitrary deployed forward function —
/// how defended / dynamic artifacts (moving-target pools, early-exit
/// models) become attack targets. `forward` must be thread-safe and
/// deterministic per row. The label suffix is appended to fd_label(cfg).
std::shared_ptr<GradSource> fd_source(
    std::function<Tensor(const Tensor&)> forward, FdConfig cfg,
    std::string label_suffix);

using AttackFactory = std::function<std::unique_ptr<Attack>(
    const AttackTargets&, const AttackSpec&)>;

/// Introspection metadata for a registered kind: which sides of
/// AttackTargets its factory consumes. This is what lets scenario
/// drivers enumerate the (attack x original x adapted) matrix and tell
/// "cell skipped by construction" apart from "cell misconfigured"
/// without instantiating anything.
struct AttackTraits {
  /// Pair attacks (the DIVA family) drive an original-model source;
  /// single-model attacks ignore `AttackTargets::original` entirely.
  bool needs_original = false;
  /// Every built-in kind drives the adapted side; traits keep the flag
  /// so derived tooling never hard-codes it.
  bool needs_adapted = true;
  /// False for kinds registered through the traits-less overload: the
  /// requirement flags are then placeholders, so matrix drivers must
  /// let every row reach construction instead of trusting them.
  bool declared = true;
};

/// Registers (or replaces) an attack kind without declared traits: the
/// kind reports no source requirements, so make_attack never pre-rejects
/// its targets and the factory's own validation decides.
void register_attack(const std::string& kind, AttackFactory factory);

/// Registers (or replaces) an attack kind with explicit traits, which
/// make_attack pre-validates and matrix drivers use to place the kind
/// in the scenario grid. Prefer this overload for new kinds.
void register_attack(const std::string& kind, AttackTraits traits,
                     AttackFactory factory);

/// Traits of a registered kind. Throws diva::Error for unknown kinds.
AttackTraits attack_traits(const std::string& kind);

/// Checks `targets` against the kind's traits without instantiating the
/// attack. Returns an empty string when the pair is valid, otherwise
/// the same human-readable reason make_attack would throw with.
std::string validate_attack_targets(const std::string& kind,
                                    const AttackTargets& targets);

/// Instantiates a registered attack kind. Throws diva::Error for unknown
/// kinds or missing targets.
std::unique_ptr<Attack> make_attack(const std::string& kind,
                                    const AttackTargets& targets,
                                    const AttackSpec& spec = {});

/// True if `kind` is registered.
bool attack_registered(const std::string& kind);

/// All registered kinds, sorted.
std::vector<std::string> registered_attack_names();

}  // namespace diva
