// AttackObjective: the scalar function an iterated attack ascends.
//
// An objective is a weighted sum of per-source terms
//   L(x) = sum_s weight(s) * term_s(logits_s(x))
// over the logits of one or more GradSources. Each term is exposed in
// two interchangeable forms so every source kind can consume it:
//   grad_logits(s, ...)  — d(term_s)/d(logits_s), for backprop sources;
//   term_values(s, ...)  — the per-row scalar term_s itself, for
//                          derivative-free (finite-difference) sources.
// The PGD/momentum iterator in attack.h combines the per-source input
// gradients with the weights; objectives never touch models directly,
// which is what makes "DIVA against the int8 artifact" the same code
// path as "DIVA against a float twin".
//
// Provided objectives (source order in brackets):
//   CrossEntropyObjective [model]            — standard PGD loss.
//   CwMarginObjective     [model]            — max_{i!=y} z_i - z_y.
//   DivaObjective         [original, adapted]— p_o[y] - c * p_a[y] (Eq. 5).
//   TargetedDivaObjective [original, adapted]— adds -k*||p_a - onehot(t)||^2.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace diva {

class AttackObjective {
 public:
  virtual ~AttackObjective() = default;

  virtual std::string name() const = 0;

  /// Number of GradSources this objective drives.
  virtual std::size_t num_sources() const = 0;

  /// d(term_s)/d(logits of source s), unweighted. Row r of `logits`
  /// carries the logits for labels[r].
  virtual Tensor grad_logits(std::size_t s, const Tensor& logits,
                             const std::vector<int>& labels) const = 0;

  /// Per-row scalar value of term s (unweighted), for derivative-free
  /// sources. Row r of `logits` carries the logits for labels[r].
  virtual std::vector<float> term_values(
      std::size_t s, const Tensor& logits,
      const std::vector<int>& labels) const = 0;

  /// Linear weight of source s's contribution to the total gradient.
  virtual float weight(std::size_t s) const {
    (void)s;
    return 1.0f;
  }
};

/// Cross-entropy ascent against a single model (PGD's objective).
class CrossEntropyObjective : public AttackObjective {
 public:
  std::string name() const override { return "cross-entropy"; }
  std::size_t num_sources() const override { return 1; }
  Tensor grad_logits(std::size_t s, const Tensor& logits,
                     const std::vector<int>& labels) const override;
  std::vector<float> term_values(std::size_t s, const Tensor& logits,
                                 const std::vector<int>& labels) const override;
};

/// L-inf CW margin: max_{i != y} z_i - z_y (Madry setup).
class CwMarginObjective : public AttackObjective {
 public:
  std::string name() const override { return "cw-margin"; }
  std::size_t num_sources() const override { return 1; }
  Tensor grad_logits(std::size_t s, const Tensor& logits,
                     const std::vector<int>& labels) const override;
  std::vector<float> term_values(std::size_t s, const Tensor& logits,
                                 const std::vector<int>& labels) const override;
};

/// DIVA joint objective (paper Eq. 5/6):
///   L = p_orig(y|x') - c * p_adapted(y|x')
/// Source 0 is the original model (weight +1), source 1 the adapted
/// model (weight -c).
class DivaObjective : public AttackObjective {
 public:
  explicit DivaObjective(float c);

  std::string name() const override { return "diva"; }
  std::size_t num_sources() const override { return 2; }
  Tensor grad_logits(std::size_t s, const Tensor& logits,
                     const std::vector<int>& labels) const override;
  std::vector<float> term_values(std::size_t s, const Tensor& logits,
                                 const std::vector<int>& labels) const override;
  float weight(std::size_t s) const override { return s == 0 ? 1.0f : -c_; }

  float c() const { return c_; }

 private:
  float c_;
};

/// Targeted DIVA (paper §6): source 0 as in DIVA; source 1's term is
///   -c * p_a[y] - k * || p_a - onehot(target) ||^2
/// with the balance constants folded into the term (weight +1), exactly
/// as the seed implementation combined them.
class TargetedDivaObjective : public AttackObjective {
 public:
  TargetedDivaObjective(int target_class, float c, float k);

  std::string name() const override { return "targeted-diva"; }
  std::size_t num_sources() const override { return 2; }
  Tensor grad_logits(std::size_t s, const Tensor& logits,
                     const std::vector<int>& labels) const override;
  std::vector<float> term_values(std::size_t s, const Tensor& logits,
                                 const std::vector<int>& labels) const override;

  int target_class() const { return target_; }

 private:
  int target_;
  float c_, k_;
};

}  // namespace diva
