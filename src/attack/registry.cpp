#include "attack/registry.h"

#include <map>
#include <mutex>
#include <utility>

#include "attack/probe_compression.h"

namespace diva {

namespace {

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

/// One registered kind: construction plus the introspection metadata
/// scenario drivers use to enumerate/validate matrix cells.
struct RegistryEntry {
  AttackTraits traits;
  AttackFactory factory;
};

std::map<std::string, RegistryEntry>& registry();

// Builtin factories run only after make_attack has validated the
// targets against the kind's declared traits, so the sources are
// non-null here (IteratedAttack's own null check is the backstop).
std::unique_ptr<Attack> make_single(const std::string& display,
                                    std::shared_ptr<AttackObjective> objective,
                                    const AttackTargets& t,
                                    AttackConfig cfg) {
  return std::make_unique<IteratedAttack>(
      display, std::vector<std::shared_ptr<GradSource>>{t.adapted},
      std::move(objective), std::move(cfg));
}

std::unique_ptr<Attack> make_pair(const std::string& display,
                                  std::shared_ptr<AttackObjective> objective,
                                  const AttackTargets& t, AttackConfig cfg) {
  return std::make_unique<IteratedAttack>(
      display, std::vector<std::shared_ptr<GradSource>>{t.original, t.adapted},
      std::move(objective), std::move(cfg));
}

constexpr AttackTraits kSingleModel{.needs_original = false,
                                    .needs_adapted = true};
constexpr AttackTraits kModelPair{.needs_original = true,
                                  .needs_adapted = true};

std::map<std::string, RegistryEntry> builtin_attacks() {
  std::map<std::string, RegistryEntry> reg;
  reg["pgd"] = {kSingleModel, [](const AttackTargets& t, const AttackSpec& s) {
                  return make_single("PGD",
                                     std::make_shared<CrossEntropyObjective>(),
                                     t, s.cfg);
                }};
  reg["cw"] = {kSingleModel, [](const AttackTargets& t, const AttackSpec& s) {
                 return make_single("CW",
                                    std::make_shared<CwMarginObjective>(), t,
                                    s.cfg);
               }};
  reg["fgsm"] = {kSingleModel,
                 [](const AttackTargets& t, const AttackSpec& s) {
                   AttackConfig cfg = s.cfg;
                   cfg.alpha = cfg.epsilon;
                   cfg.steps = 1;
                   return make_single("FGSM",
                                      std::make_shared<CrossEntropyObjective>(),
                                      t, std::move(cfg));
                 }};
  reg["momentum-pgd"] = {
      kSingleModel, [](const AttackTargets& t, const AttackSpec& s) {
        AttackConfig cfg = s.cfg;
        if (cfg.momentum <= 0.0f) cfg.momentum = 0.5f;
        return make_single("MomentumPGD",
                           std::make_shared<CrossEntropyObjective>(), t,
                           std::move(cfg));
      }};
  reg["diva"] = {kModelPair, [](const AttackTargets& t, const AttackSpec& s) {
                   return make_pair("DIVA",
                                    std::make_shared<DivaObjective>(s.c), t,
                                    s.cfg);
                 }};
  reg["targeted-diva"] = {
      kModelPair, [](const AttackTargets& t, const AttackSpec& s) {
        return make_pair(
            "TargetedDIVA",
            std::make_shared<TargetedDivaObjective>(s.target, s.c, s.k), t,
            s.cfg);
      }};
  return reg;
}

std::map<std::string, RegistryEntry>& registry() {
  static std::map<std::string, RegistryEntry> reg = builtin_attacks();
  return reg;
}

RegistryEntry find_entry(const std::string& kind) {
  std::lock_guard<std::mutex> lock(registry_mu());
  auto it = registry().find(kind);
  DIVA_CHECK(it != registry().end(), "unknown attack kind '" << kind << "'");
  return it->second;
}

}  // namespace

std::shared_ptr<GradSource> source(Module& module, std::string label) {
  return std::make_shared<ModuleGradSource>(module, std::move(label));
}

std::shared_ptr<GradSource> source(const QuantizedModel& model, Module& shadow,
                                   std::string label) {
  return std::make_shared<QuantSteGradSource>(model, shadow, std::move(label));
}

std::string fd_label(const FdConfig& cfg) {
  if (cfg.coordinate) return "int8+fd+coord";
  std::string label = "int8+fd";
  if (cfg.subspace) {
    label += "+" + cfg.subspace->kind() + std::to_string(cfg.subspace->dim());
  } else if (cfg.subspace_dim > 0) {
    label += "+sub" + std::to_string(cfg.subspace_dim);
  }
  if (cfg.sparsity < 1.0f) {
    label +=
        "+sp" + std::to_string(static_cast<int>(cfg.sparsity * 100.0f + 0.5f));
  }
  if (cfg.batch_probes) label += "+batch";
  return label;
}

std::shared_ptr<GradSource> fd_source(const QuantizedModel& model,
                                      FdConfig cfg, std::string label) {
  if (label == "int8+fd") label = fd_label(cfg);
  return std::make_shared<QuantFdGradSource>(model, cfg, std::move(label));
}

std::shared_ptr<GradSource> fd_source(
    std::function<Tensor(const Tensor&)> forward, FdConfig cfg,
    std::string label_suffix) {
  std::string label = fd_label(cfg);
  if (!label_suffix.empty()) label += "+" + label_suffix;
  return std::make_shared<QuantFdGradSource>(std::move(forward), cfg,
                                             std::move(label));
}

void register_attack(const std::string& kind, AttackFactory factory) {
  // Permissive traits: kinds registered without declaring requirements
  // keep the pre-traits contract — make_attack never pre-rejects their
  // targets, the factory's own checks decide.
  register_attack(kind,
                  AttackTraits{.needs_original = false,
                               .needs_adapted = false,
                               .declared = false},
                  std::move(factory));
}

void register_attack(const std::string& kind, AttackTraits traits,
                     AttackFactory factory) {
  DIVA_CHECK(factory != nullptr, "null attack factory");
  std::lock_guard<std::mutex> lock(registry_mu());
  registry()[kind] = {traits, std::move(factory)};
}

namespace {

std::string validate_against(const AttackTraits& traits,
                             const std::string& kind,
                             const AttackTargets& targets) {
  if (traits.needs_adapted && targets.adapted == nullptr) {
    return kind + " needs an adapted-model source";
  }
  if (traits.needs_original && targets.original == nullptr) {
    return kind + " needs an original-model source";
  }
  return "";
}

}  // namespace

AttackTraits attack_traits(const std::string& kind) {
  return find_entry(kind).traits;
}

std::string validate_attack_targets(const std::string& kind,
                                    const AttackTargets& targets) {
  return validate_against(attack_traits(kind), kind, targets);
}

std::unique_ptr<Attack> make_attack(const std::string& kind,
                                    const AttackTargets& targets,
                                    const AttackSpec& spec) {
  // One lookup: validation uses the same entry the factory comes from.
  // Traits-level validation up front gives every declared kind the same
  // message shape; kinds registered without traits declare no
  // requirements, so their factories' own checks decide.
  const RegistryEntry entry = find_entry(kind);
  const std::string reason = validate_against(entry.traits, kind, targets);
  DIVA_CHECK(reason.empty(), reason);
  return entry.factory(targets, spec);
}

bool attack_registered(const std::string& kind) {
  std::lock_guard<std::mutex> lock(registry_mu());
  return registry().count(kind) > 0;
}

std::vector<std::string> registered_attack_names() {
  std::lock_guard<std::mutex> lock(registry_mu());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, entry] : registry()) names.push_back(name);
  return names;
}

}  // namespace diva
