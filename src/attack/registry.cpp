#include "attack/registry.h"

#include <map>
#include <mutex>
#include <utility>

namespace diva {

namespace {

std::mutex& registry_mu() {
  static std::mutex mu;
  return mu;
}

std::map<std::string, AttackFactory>& registry();

std::shared_ptr<GradSource> require_adapted(const AttackTargets& t,
                                            const std::string& kind) {
  DIVA_CHECK(t.adapted != nullptr, kind << " needs an adapted-model source");
  return t.adapted;
}

std::shared_ptr<GradSource> require_original(const AttackTargets& t,
                                             const std::string& kind) {
  DIVA_CHECK(t.original != nullptr, kind << " needs an original-model source");
  return t.original;
}

std::unique_ptr<Attack> make_single(const std::string& display,
                                    std::shared_ptr<AttackObjective> objective,
                                    const AttackTargets& t,
                                    AttackConfig cfg) {
  return std::make_unique<IteratedAttack>(
      display,
      std::vector<std::shared_ptr<GradSource>>{require_adapted(t, display)},
      std::move(objective), std::move(cfg));
}

std::unique_ptr<Attack> make_pair(const std::string& display,
                                  std::shared_ptr<AttackObjective> objective,
                                  const AttackTargets& t, AttackConfig cfg) {
  return std::make_unique<IteratedAttack>(
      display,
      std::vector<std::shared_ptr<GradSource>>{require_original(t, display),
                                               require_adapted(t, display)},
      std::move(objective), std::move(cfg));
}

std::map<std::string, AttackFactory> builtin_attacks() {
  std::map<std::string, AttackFactory> reg;
  reg["pgd"] = [](const AttackTargets& t, const AttackSpec& s) {
    return make_single("PGD", std::make_shared<CrossEntropyObjective>(), t,
                       s.cfg);
  };
  reg["cw"] = [](const AttackTargets& t, const AttackSpec& s) {
    return make_single("CW", std::make_shared<CwMarginObjective>(), t, s.cfg);
  };
  reg["fgsm"] = [](const AttackTargets& t, const AttackSpec& s) {
    AttackConfig cfg = s.cfg;
    cfg.alpha = cfg.epsilon;
    cfg.steps = 1;
    return make_single("FGSM", std::make_shared<CrossEntropyObjective>(), t,
                       std::move(cfg));
  };
  reg["momentum-pgd"] = [](const AttackTargets& t, const AttackSpec& s) {
    AttackConfig cfg = s.cfg;
    if (cfg.momentum <= 0.0f) cfg.momentum = 0.5f;
    return make_single("MomentumPGD",
                       std::make_shared<CrossEntropyObjective>(), t,
                       std::move(cfg));
  };
  reg["diva"] = [](const AttackTargets& t, const AttackSpec& s) {
    return make_pair("DIVA", std::make_shared<DivaObjective>(s.c), t, s.cfg);
  };
  reg["targeted-diva"] = [](const AttackTargets& t, const AttackSpec& s) {
    return make_pair(
        "TargetedDIVA",
        std::make_shared<TargetedDivaObjective>(s.target, s.c, s.k), t,
        s.cfg);
  };
  return reg;
}

std::map<std::string, AttackFactory>& registry() {
  static std::map<std::string, AttackFactory> reg = builtin_attacks();
  return reg;
}

}  // namespace

std::shared_ptr<GradSource> source(Module& module, std::string label) {
  return std::make_shared<ModuleGradSource>(module, std::move(label));
}

std::shared_ptr<GradSource> source(const QuantizedModel& model, Module& shadow,
                                   std::string label) {
  return std::make_shared<QuantSteGradSource>(model, shadow, std::move(label));
}

std::shared_ptr<GradSource> fd_source(const QuantizedModel& model,
                                      FdConfig cfg, std::string label) {
  return std::make_shared<QuantFdGradSource>(model, cfg, std::move(label));
}

void register_attack(const std::string& kind, AttackFactory factory) {
  DIVA_CHECK(factory != nullptr, "null attack factory");
  std::lock_guard<std::mutex> lock(registry_mu());
  registry()[kind] = std::move(factory);
}

std::unique_ptr<Attack> make_attack(const std::string& kind,
                                    const AttackTargets& targets,
                                    const AttackSpec& spec) {
  AttackFactory factory;
  {
    std::lock_guard<std::mutex> lock(registry_mu());
    auto it = registry().find(kind);
    DIVA_CHECK(it != registry().end(), "unknown attack kind '" << kind << "'");
    factory = it->second;
  }
  return factory(targets, spec);
}

bool attack_registered(const std::string& kind) {
  std::lock_guard<std::mutex> lock(registry_mu());
  return registry().count(kind) > 0;
}

std::vector<std::string> registered_attack_names() {
  std::lock_guard<std::mutex> lock(registry_mu());
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, factory] : registry()) names.push_back(name);
  return names;
}

}  // namespace diva
