#include "attack/attack.h"

#include <algorithm>
#include <cmath>

#include "nn/loss.h"
#include "runtime/rng.h"

namespace diva {

namespace {

/// Freezes a model for attack use: eval mode, no parameter gradients.
void freeze(Module& m) {
  m.set_training(false);
  m.set_param_grads_enabled(false);
}

/// Restores the default state (training loops re-enable what they need).
void unfreeze(Module& m) { m.set_param_grads_enabled(true); }

/// RAII guard so attacks leave models as they found them.
class FreezeGuard {
 public:
  explicit FreezeGuard(Module& m) : m_(m) { freeze(m_); }
  ~FreezeGuard() { unfreeze(m_); }
  FreezeGuard(const FreezeGuard&) = delete;
  FreezeGuard& operator=(const FreezeGuard&) = delete;

 private:
  Module& m_;
};

Tensor maybe_random_start(const Tensor& x, const AttackConfig& cfg) {
  if (!cfg.random_start) return x;
  Rng rng(cfg.seed == 0 ? 0xA77AC4 : cfg.seed);
  Tensor noise(x.shape());
  noise.fill_uniform(rng, -cfg.epsilon, cfg.epsilon);
  return clamp(add(x, noise), 0.0f, 1.0f);
}

/// d(CE)/d(logits) = p - onehot (per row; un-normalized across batch so
/// sign() steps are per-sample, matching the standard attack setup).
Tensor ce_grad_rows(const Tensor& logits, const std::vector<int>& labels) {
  Tensor g = softmax_rows(logits);
  for (std::int64_t i = 0; i < g.dim(0); ++i) {
    g.at(i, labels[static_cast<std::size_t>(i)]) -= 1.0f;
  }
  return g;
}

/// d(max_{i!=y} z_i - z_y)/d(logits) = e_{i*} - e_y.
Tensor cw_grad_rows(const Tensor& logits, const std::vector<int>& labels) {
  Tensor g(logits.shape());
  const std::int64_t d = logits.dim(1);
  for (std::int64_t i = 0; i < logits.dim(0); ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    int best = -1;
    float best_v = -1e30f;
    for (std::int64_t j = 0; j < d; ++j) {
      if (static_cast<int>(j) == y) continue;
      if (logits.at(i, j) > best_v) {
        best_v = logits.at(i, j);
        best = static_cast<int>(j);
      }
    }
    g.at(i, best) = 1.0f;
    g.at(i, y) = -1.0f;
  }
  return g;
}

}  // namespace

Tensor prob_grad_rows(const Tensor& probs, const std::vector<int>& labels) {
  DIVA_CHECK(probs.rank() == 2, "prob_grad_rows needs [N, D]");
  const std::int64_t n = probs.dim(0), d = probs.dim(1);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");
  Tensor g(probs.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    const float py = probs.at(i, y);
    for (std::int64_t j = 0; j < d; ++j) {
      g.at(i, j) = py * ((static_cast<int>(j) == y ? 1.0f : 0.0f) -
                         probs.at(i, j));
    }
  }
  return g;
}

Tensor project(const Tensor& x_adv, const Tensor& x_natural, float epsilon) {
  DIVA_CHECK(x_adv.shape() == x_natural.shape(), "project: shape mismatch");
  Tensor out(x_adv.shape());
  for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
    const float lo = std::max(0.0f, x_natural[i] - epsilon);
    const float hi = std::min(1.0f, x_natural[i] + epsilon);
    out[i] = std::min(hi, std::max(lo, x_adv[i]));
  }
  return out;
}

Tensor ascend_and_project(const Tensor& x_adv, const Tensor& grad,
                          const Tensor& x_natural, float alpha,
                          float epsilon) {
  Tensor stepped(x_adv.shape());
  for (std::int64_t i = 0; i < x_adv.numel(); ++i) {
    const float s = grad[i] > 0.0f ? 1.0f : (grad[i] < 0.0f ? -1.0f : 0.0f);
    stepped[i] = x_adv[i] + alpha * s;
  }
  return project(stepped, x_natural, epsilon);
}

PgdAttack::PgdAttack(Module& model, AttackConfig cfg, AttackLoss loss)
    : model_(model), cfg_(cfg), loss_(loss) {
  DIVA_CHECK(cfg_.epsilon > 0 && cfg_.alpha > 0 && cfg_.steps >= 1,
             "bad attack config");
}

Tensor PgdAttack::perturb(const Tensor& x, const std::vector<int>& labels) {
  FreezeGuard guard(model_);
  Tensor x_adv = maybe_random_start(x, cfg_);
  for (int t = 0; t < cfg_.steps; ++t) {
    const Tensor logits = model_.forward(x_adv);
    const Tensor dlogits = loss_ == AttackLoss::kCwMargin
                               ? cw_grad_rows(logits, labels)
                               : ce_grad_rows(logits, labels);
    const Tensor grad = model_.backward(dlogits);
    x_adv = ascend_and_project(x_adv, grad, x, cfg_.alpha, cfg_.epsilon);
    if (cfg_.step_callback) cfg_.step_callback(t + 1, x_adv);
  }
  return x_adv;
}

FgsmAttack::FgsmAttack(Module& model, float epsilon)
    : pgd_(model,
           AttackConfig{.epsilon = epsilon, .alpha = epsilon, .steps = 1}) {}

Tensor FgsmAttack::perturb(const Tensor& x, const std::vector<int>& labels) {
  return pgd_.perturb(x, labels);
}

MomentumPgdAttack::MomentumPgdAttack(Module& model, AttackConfig cfg, float mu)
    : model_(model), cfg_(cfg), mu_(mu) {}

Tensor MomentumPgdAttack::perturb(const Tensor& x,
                                  const std::vector<int>& labels) {
  FreezeGuard guard(model_);
  Tensor x_adv = maybe_random_start(x, cfg_);
  Tensor velocity(x.shape());
  const std::int64_t per = x.numel() / x.dim(0);
  for (int t = 0; t < cfg_.steps; ++t) {
    const Tensor logits = model_.forward(x_adv);
    const Tensor grad = model_.backward(ce_grad_rows(logits, labels));
    // Per-sample L1 normalization before momentum accumulation.
    for (std::int64_t n = 0; n < x.dim(0); ++n) {
      double l1 = 0.0;
      const float* g = grad.raw() + n * per;
      for (std::int64_t i = 0; i < per; ++i) l1 += std::fabs(g[i]);
      const float inv = l1 > 0.0 ? static_cast<float>(1.0 / l1) : 0.0f;
      float* v = velocity.raw() + n * per;
      for (std::int64_t i = 0; i < per; ++i) {
        v[i] = mu_ * v[i] + g[i] * inv;
      }
    }
    x_adv = ascend_and_project(x_adv, velocity, x, cfg_.alpha, cfg_.epsilon);
  }
  return x_adv;
}

DivaAttack::DivaAttack(Module& original, Module& adapted, float c,
                       AttackConfig cfg)
    : original_(original), adapted_(adapted), c_(c), cfg_(cfg) {
  DIVA_CHECK(c >= 0.0f, "DIVA c must be non-negative");
}

Tensor DivaAttack::perturb(const Tensor& x, const std::vector<int>& labels) {
  FreezeGuard guard_orig(original_);
  FreezeGuard guard_adapted(adapted_);
  Tensor x_adv = maybe_random_start(x, cfg_);
  for (int t = 0; t < cfg_.steps; ++t) {
    // Ascent on L = p_orig[y] - c * p_adapted[y].
    const Tensor p_o = softmax_rows(original_.forward(x_adv));
    const Tensor p_a = softmax_rows(adapted_.forward(x_adv));
    const Tensor grad_o = original_.backward(prob_grad_rows(p_o, labels));
    Tensor dlogits_a = prob_grad_rows(p_a, labels);
    const Tensor grad_a = adapted_.backward(dlogits_a);

    Tensor grad = grad_o;
    axpy(-c_, grad_a, grad);
    x_adv = ascend_and_project(x_adv, grad, x, cfg_.alpha, cfg_.epsilon);
    if (cfg_.step_callback) cfg_.step_callback(t + 1, x_adv);
  }
  return x_adv;
}

TargetedDivaAttack::TargetedDivaAttack(Module& original, Module& adapted,
                                       int target_class, float c, float k,
                                       AttackConfig cfg)
    : original_(original),
      adapted_(adapted),
      target_(target_class),
      c_(c),
      k_(k),
      cfg_(cfg) {}

Tensor TargetedDivaAttack::perturb(const Tensor& x,
                                   const std::vector<int>& labels) {
  FreezeGuard guard_orig(original_);
  FreezeGuard guard_adapted(adapted_);
  Tensor x_adv = maybe_random_start(x, cfg_);
  const std::int64_t d_classes = -1;
  (void)d_classes;
  for (int t = 0; t < cfg_.steps; ++t) {
    const Tensor p_o = softmax_rows(original_.forward(x_adv));
    const Tensor p_a = softmax_rows(adapted_.forward(x_adv));
    const Tensor grad_o = original_.backward(prob_grad_rows(p_o, labels));

    // Adapted-model logit gradient: -c * d(p_a[y]) - k * d(||p_a - t||^2).
    Tensor dlogits_a = prob_grad_rows(p_a, labels);
    const std::int64_t n = p_a.dim(0), d = p_a.dim(1);
    for (std::int64_t i = 0; i < n; ++i) {
      // J_softmax^T v with v = 2 (p - onehot(t)):
      //   p .* v - p * (p . v)
      double pv = 0.0;
      for (std::int64_t j = 0; j < d; ++j) {
        const float target_ind = static_cast<int>(j) == target_ ? 1.0f : 0.0f;
        pv += static_cast<double>(p_a.at(i, j)) * 2.0 *
              (p_a.at(i, j) - target_ind);
      }
      for (std::int64_t j = 0; j < d; ++j) {
        const float target_ind = static_cast<int>(j) == target_ ? 1.0f : 0.0f;
        const float dl2 =
            p_a.at(i, j) * (2.0f * (p_a.at(i, j) - target_ind) -
                            static_cast<float>(pv));
        // Combined coefficient: -c on the label-prob term (already in
        // dlogits_a scaled by +1), -k on the distance term. The caller
        // ascends on the total, so fold the signs here:
        dlogits_a.at(i, j) = -c_ * dlogits_a.at(i, j) - k_ * dl2;
      }
    }
    const Tensor grad_a = adapted_.backward(dlogits_a);

    Tensor grad = grad_o;
    accumulate(grad, grad_a);
    x_adv = ascend_and_project(x_adv, grad, x, cfg_.alpha, cfg_.epsilon);
  }
  return x_adv;
}

}  // namespace diva
