#include "attack/attack.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "runtime/rng.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace diva {

namespace {

/// Per-sample random start: each sample's noise stream is keyed by its
/// *global* batch index, so any sharding of the batch reproduces the
/// sequential result bit-for-bit.
Tensor per_sample_random_start(const Tensor& x, const AttackConfig& cfg,
                               std::int64_t first_sample) {
  const std::uint64_t base = cfg.seed == 0 ? 0xA77AC4ULL : cfg.seed;
  Tensor out = x;
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;
  for (std::int64_t i = 0; i < n; ++i) {
    Rng rng(hash_combine(base, static_cast<std::uint64_t>(first_sample + i)));
    float* row = out.raw() + i * per;
    for (std::int64_t j = 0; j < per; ++j) {
      const float v = row[j] + rng.uniform(-cfg.epsilon, cfg.epsilon);
      row[j] = std::min(1.0f, std::max(0.0f, v));
    }
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// IteratedAttack
// ---------------------------------------------------------------------------

IteratedAttack::IteratedAttack(std::string name,
                               std::vector<std::shared_ptr<GradSource>> sources,
                               std::shared_ptr<AttackObjective> objective,
                               AttackConfig cfg)
    : name_(std::move(name)),
      sources_(std::move(sources)),
      objective_(std::move(objective)),
      cfg_(std::move(cfg)) {
  DIVA_CHECK(objective_ != nullptr, "attack needs an objective");
  DIVA_CHECK(sources_.size() == objective_->num_sources(),
             "objective " << objective_->name() << " drives "
                          << objective_->num_sources() << " sources, got "
                          << sources_.size());
  for (const auto& s : sources_) {
    DIVA_CHECK(s != nullptr, "null gradient source");
  }
  DIVA_CHECK(cfg_.epsilon > 0 && cfg_.alpha > 0 && cfg_.steps >= 1,
             "bad attack config");
  DIVA_CHECK(cfg_.momentum >= 0.0f, "momentum must be non-negative");
}

Tensor IteratedAttack::perturb(const Tensor& x,
                               const std::vector<int>& labels) {
  return perturb_indexed(x, labels, 0);
}

Tensor IteratedAttack::perturb_indexed(const Tensor& x,
                                       const std::vector<int>& labels,
                                       std::int64_t first_sample) {
  DIVA_CHECK(x.rank() == 4, "attack input must be NCHW");
  DIVA_TRACE_SPAN(name_.c_str());
  const std::int64_t n = x.dim(0);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");
  // Per-attack budget accounting ("attack.PGD.steps", ...): the display
  // name is the key, so each matrix row gets its own counters. Lookup
  // cost (one registry hit per perturb call) is noise next to a PGD run.
  if (telemetry::enabled()) {
    telemetry::counter("attack." + name_ + ".perturb_calls").add(1);
    telemetry::counter("attack." + name_ + ".samples")
        .add(static_cast<std::uint64_t>(n));
    telemetry::counter("attack." + name_ + ".steps")
        .add(static_cast<std::uint64_t>(cfg_.steps));
    telemetry::counter("attack." + name_ + ".grad_evals")
        .add(static_cast<std::uint64_t>(cfg_.steps) * sources_.size());
  }
  SourcePrepareGuard guard(sources_);

  Tensor x_adv =
      cfg_.random_start ? per_sample_random_start(x, cfg_, first_sample) : x;
  const bool use_momentum = cfg_.momentum > 0.0f;
  Tensor velocity = use_momentum ? Tensor(x.shape()) : Tensor();
  const std::int64_t per = x.numel() / n;

  for (int t = 0; t < cfg_.steps; ++t) {
    Tensor grad;
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      GradRequest req;
      req.first_sample = first_sample;
      req.step = t;
      req.dlogits = [&, s](const Tensor& logits) {
        return objective_->grad_logits(s, logits, labels);
      };
      req.values = [&, s](const Tensor& logits,
                          const std::vector<std::int64_t>& rows) {
        std::vector<int> row_labels;
        row_labels.reserve(rows.size());
        for (const std::int64_t r : rows) {
          row_labels.push_back(labels[static_cast<std::size_t>(r)]);
        }
        return objective_->term_values(s, logits, row_labels);
      };
      Tensor g = sources_[s]->input_grad(x_adv, req);
      const float w = objective_->weight(s);
      if (s == 0) {
        grad = std::move(g);
        if (w != 1.0f) {
          for (std::int64_t i = 0; i < grad.numel(); ++i) grad[i] *= w;
        }
      } else if (w == 1.0f) {
        accumulate(grad, g);
      } else {
        axpy(w, g, grad);
      }
    }

    if (use_momentum) {
      // Per-sample L1 normalization before momentum accumulation
      // (Dong et al.), then the sign step follows the velocity.
      for (std::int64_t i = 0; i < n; ++i) {
        double l1 = 0.0;
        const float* g = grad.raw() + i * per;
        for (std::int64_t j = 0; j < per; ++j) l1 += std::fabs(g[j]);
        const float inv = l1 > 0.0 ? static_cast<float>(1.0 / l1) : 0.0f;
        float* v = velocity.raw() + i * per;
        for (std::int64_t j = 0; j < per; ++j) {
          v[j] = cfg_.momentum * v[j] + g[j] * inv;
        }
      }
      x_adv = ascend_and_project(x_adv, velocity, x, cfg_.alpha, cfg_.epsilon);
    } else {
      x_adv = ascend_and_project(x_adv, grad, x, cfg_.alpha, cfg_.epsilon);
    }
    if (cfg_.step_callback) cfg_.step_callback(t + 1, x_adv);
  }
  return x_adv;
}

}  // namespace diva
