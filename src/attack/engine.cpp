#include "attack/engine.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <exception>
#include <mutex>
#include <thread>

#include "telemetry/telemetry.h"
#include "telemetry/trace.h"

namespace diva {

AttackEngine::AttackEngine(EngineConfig cfg) : cfg_(cfg) {
  if (cfg_.threads == 0) {
    cfg_.threads = std::max(1u, std::thread::hardware_concurrency());
  }
  DIVA_CHECK(cfg_.shard_size >= 1, "shard_size must be at least 1");
  if (cfg_.threads > 1) {
    pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  }
}

AttackEngine::~AttackEngine() = default;

unsigned AttackEngine::threads() const { return cfg_.threads; }

Tensor AttackEngine::run(Attack& attack, const Tensor& x,
                         const std::vector<int>& labels) const {
  DIVA_CHECK(x.rank() == 4, "engine input must be NCHW");
  const std::int64_t n = x.dim(0);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");
  DIVA_TRACE_SPAN("engine.run");
  DIVA_TELEM_COUNT("engine.runs", 1);
  DIVA_TELEM_COUNT("engine.samples", static_cast<std::uint64_t>(n));
  if (!attack.shardable() || n <= cfg_.shard_size) {
    return attack.perturb_indexed(x, labels, 0);
  }

  const std::int64_t per = x.numel() / n;
  const std::int64_t num_shards = (n + cfg_.shard_size - 1) / cfg_.shard_size;
  Tensor out(x.shape());

  // Each shard perturbs samples [lo, hi) and writes its rows into the
  // disjoint slice of `out`; `first_sample = lo` keys per-sample RNG
  // streams to global indices so sharding is invisible to the result.
  auto run_shard = [&](std::int64_t shard) {
    DIVA_TRACE_SPAN("engine.shard");
    const auto shard_t0 = std::chrono::steady_clock::now();
    const std::int64_t lo = shard * cfg_.shard_size;
    const std::int64_t hi = std::min(n, lo + cfg_.shard_size);
    std::vector<int> idx;
    idx.reserve(static_cast<std::size_t>(hi - lo));
    for (std::int64_t i = lo; i < hi; ++i) idx.push_back(static_cast<int>(i));
    const Tensor shard_x = gather_batch(x, idx);
    const std::vector<int> shard_labels(
        labels.begin() + static_cast<std::ptrdiff_t>(lo),
        labels.begin() + static_cast<std::ptrdiff_t>(hi));
    const Tensor adv = attack.perturb_indexed(shard_x, shard_labels, lo);
    std::memcpy(out.raw() + lo * per, adv.raw(),
                sizeof(float) * static_cast<std::size_t>((hi - lo) * per));
    DIVA_TELEM_COUNT("engine.shards", 1);
    DIVA_TELEM_RECORD(
        "engine.shard_us",
        static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - shard_t0)
                .count()));
  };

  if (!pool_) {
    for (std::int64_t s = 0; s < num_shards; ++s) run_shard(s);
    return out;
  }

  std::atomic<std::int64_t> remaining(num_shards);
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (std::int64_t s = 0; s < num_shards; ++s) {
    pool_->submit([&, s] {
      try {
        run_shard(s);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }
  {
    std::unique_lock<std::mutex> lock(done_mu);
    done_cv.wait(lock, [&] { return remaining.load() == 0; });
  }
  if (first_error) std::rethrow_exception(first_error);
  return out;
}

}  // namespace diva
