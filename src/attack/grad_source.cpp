#include "attack/grad_source.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "attack/probe_compression.h"
#include "runtime/env.h"
#include "telemetry/telemetry.h"

namespace diva {

namespace {

/// Attack mode: eval, no parameter gradients (input gradients only).
void freeze(Module& m) {
  m.set_training(false);
  m.set_param_grads_enabled(false);
}

/// Restores the default state (training loops re-enable what they need).
void unfreeze(Module& m) { m.set_param_grads_enabled(true); }

}  // namespace

// ---------------------------------------------------------------------------
// ModuleGradSource
// ---------------------------------------------------------------------------

ModuleGradSource::ModuleGradSource(Module& module, std::string label)
    : module_(module),
      label_(label.empty() ? module.name() : std::move(label)) {}

Tensor ModuleGradSource::logits(const Tensor& x) {
  std::lock_guard<std::mutex> lock(mu_);
  return module_.forward(x);
}

Tensor ModuleGradSource::input_grad(const Tensor& x, const GradRequest& req) {
  DIVA_CHECK(req.dlogits, "ModuleGradSource needs a dlogits closure");
  std::lock_guard<std::mutex> lock(mu_);
  const Tensor l = module_.forward(x);
  return module_.backward(req.dlogits(l));
}

void ModuleGradSource::prepare() {
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_++ == 0) freeze(module_);
}

void ModuleGradSource::restore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--prepared_ == 0) unfreeze(module_);
}

// ---------------------------------------------------------------------------
// QuantSteGradSource
// ---------------------------------------------------------------------------

QuantSteGradSource::QuantSteGradSource(const QuantizedModel& model,
                                       Module& shadow, std::string label)
    : model_(model), shadow_(shadow), label_(std::move(label)) {}

Tensor QuantSteGradSource::logits(const Tensor& x) { return model_.forward(x); }

Tensor QuantSteGradSource::input_grad(const Tensor& x,
                                      const GradRequest& req) {
  DIVA_CHECK(req.dlogits, "QuantSteGradSource needs a dlogits closure");
  // dlogits is computed from the *integer* model's logits, then pushed
  // through the float shadow as if quantization were the identity.
  const Tensor ql = model_.forward(x);
  std::lock_guard<std::mutex> lock(mu_);
  (void)shadow_.forward(x);  // populate the shadow's backward caches
  return shadow_.backward(req.dlogits(ql));
}

void QuantSteGradSource::prepare() {
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_++ == 0) freeze(shadow_);
}

void QuantSteGradSource::restore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--prepared_ == 0) unfreeze(shadow_);
}

// ---------------------------------------------------------------------------
// QuantFdGradSource
// ---------------------------------------------------------------------------

FdConfig fd_config_from_env(FdConfig base) {
  base.h = static_cast<float>(env_double("DIVA_FD_H", base.h));
  base.samples =
      static_cast<int>(env_int_positive("DIVA_FD_SAMPLES", base.samples));
  base.subspace_dim =
      static_cast<int>(env_int_nonneg("DIVA_FD_SUBSPACE", base.subspace_dim));
  base.sparsity =
      static_cast<float>(env_double("DIVA_FD_SPARSITY", base.sparsity));
  base.batch_probes = env_flag("DIVA_FD_BATCH", base.batch_probes);
  base.max_probe_rows =
      env_int_positive("DIVA_FD_PROBE_ROWS", base.max_probe_rows);
  return base;
}

QuantFdGradSource::QuantFdGradSource(const QuantizedModel& model,
                                     FdConfig cfg, std::string label)
    : QuantFdGradSource(
          [&model](const Tensor& x) { return model.forward(x); },
          std::move(cfg), std::move(label)) {}

QuantFdGradSource::QuantFdGradSource(
    std::function<Tensor(const Tensor&)> forward, FdConfig cfg,
    std::string label)
    : forward_(std::move(forward)),
      cfg_(std::move(cfg)),
      label_(std::move(label)) {
  DIVA_CHECK(forward_ != nullptr, "QuantFdGradSource needs a forward fn");
  DIVA_CHECK(cfg_.h > 0.0f, "finite-difference step must be positive");
  DIVA_CHECK(cfg_.samples >= 1, "need at least one SPSA probe pair");
  DIVA_CHECK(cfg_.sparsity > 0.0f && cfg_.sparsity <= 1.0f,
             "probe sparsity must be in (0, 1]");
  DIVA_CHECK(!cfg_.batch_probes || cfg_.max_probe_rows >= 2,
             "batched probing needs max_probe_rows >= 2");
}

Tensor QuantFdGradSource::logits(const Tensor& x) { return forward_(x); }

Tensor QuantFdGradSource::input_grad(const Tensor& x, const GradRequest& req) {
  DIVA_CHECK(req.values, "QuantFdGradSource needs a scalar-values closure");
  DIVA_CHECK(x.rank() == 4, "QuantFdGradSource expects NCHW input");
  return cfg_.coordinate ? coordinate_grad(x, req) : spsa_grad(x, req);
}

Tensor QuantFdGradSource::coordinate_grad(const Tensor& x,
                                          const GradRequest& req) const {
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;

  // Probes run in chunks so the probe batch stays small: each chunk is
  // [2 * kChunk, C, H, W] with the +h and -h probe for each pixel.
  constexpr std::int64_t kChunk = 256;
  Tensor grad(x.shape());

  for (std::int64_t s = 0; s < n; ++s) {
    const float* base = x.raw() + s * per;
    for (std::int64_t p0 = 0; p0 < per; p0 += kChunk) {
      const std::int64_t chunk = std::min(kChunk, per - p0);
      Tensor probes(Shape{2 * chunk, x.dim(1), x.dim(2), x.dim(3)});
      float* pr = probes.raw();
      for (std::int64_t p = 0; p < chunk; ++p) {
        float* plus = pr + (2 * p) * per;
        float* minus = pr + (2 * p + 1) * per;
        std::memcpy(plus, base, sizeof(float) * static_cast<std::size_t>(per));
        std::memcpy(minus, base, sizeof(float) * static_cast<std::size_t>(per));
        plus[p0 + p] += cfg_.h;
        minus[p0 + p] -= cfg_.h;
      }
      DIVA_TELEM_COUNT("attack.fd.coordinate_probes",
                       static_cast<std::uint64_t>(2 * chunk));
      const Tensor probe_logits = forward_(probes);
      const std::vector<std::int64_t> rows(
          static_cast<std::size_t>(2 * chunk), s);
      const std::vector<float> v = req.values(probe_logits, rows);
      for (std::int64_t p = 0; p < chunk; ++p) {
        grad[s * per + p0 + p] =
            (v[static_cast<std::size_t>(2 * p)] -
             v[static_cast<std::size_t>(2 * p + 1)]) /
            (2.0f * cfg_.h);
      }
    }
  }
  return grad;
}

std::shared_ptr<const ProbeSubspace> QuantFdGradSource::ensure_subspace(
    std::int64_t per) const {
  if (cfg_.subspace) {
    DIVA_CHECK(cfg_.subspace->image_dim() == per,
               "probe subspace image_dim " << cfg_.subspace->image_dim()
                                           << " != input dim " << per);
    return cfg_.subspace;
  }
  if (cfg_.subspace_dim <= 0) return nullptr;
  std::lock_guard<std::mutex> lock(sub_mu_);
  if (!sub_) {
    const std::int64_t k =
        std::min<std::int64_t>(cfg_.subspace_dim, per);
    sub_ = make_random_subspace(per, k, hash_combine(cfg_.seed, 0xD1CEULL));
  }
  DIVA_CHECK(sub_->image_dim() == per,
             "probe subspace image_dim " << sub_->image_dim()
                                         << " != input dim " << per);
  return sub_;
}

// Probe-compression SPSA (ROADMAP item 3). One unified pipeline covers
// the dense legacy estimator and the three compression levers:
//
//   subspace  — directions are drawn in a k-dim coefficient space and
//               lifted through the orthonormal basis B [k, D]. The
//               lifted direction is rescaled to unit L-inf (divide by
//               its max-abs m) so every probe clears the int8
//               requantization staircase exactly like a dense ±1 probe;
//               the estimator compensates by multiplying diffs by m.
//   sparsity  — each probe touches only nnz random coordinates with ±1
//               signs (antithetic pair shares the support). Per-
//               coordinate touch counts normalize the accumulator.
//   batching  — probe rows are packed across samples and pairs into
//               forwards of up to max_probe_rows rows. The batched int8
//               forward is bit-exact per row regardless of batch
//               composition, and probe draws come from per-sample
//               streams consumed in pair order, so batched == unbatched
//               bit-for-bit.
//
// With every lever off the pipeline reproduces the pre-compression
// estimator bit-for-bit: same bernoulli stream, same probe values, same
// per-pair float accumulation order.
Tensor QuantFdGradSource::spsa_grad(const Tensor& x,
                                    const GradRequest& req) const {
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;
  const std::int64_t k = cfg_.samples;

  const std::shared_ptr<const ProbeSubspace> sub = ensure_subspace(per);
  const std::int64_t dof = sub ? sub->dim() : per;
  std::int64_t nnz = dof;
  if (cfg_.sparsity < 1.0f) {
    nnz = std::clamp<std::int64_t>(
        static_cast<std::int64_t>(
            std::lround(static_cast<double>(cfg_.sparsity) *
                        static_cast<double>(dof))),
        1, dof);
  }
  const bool dense_legacy = !sub && nnz == dof;

  // One probe-direction stream per (sample, step), consumed in pair
  // order within each sample: sharding the batch, replaying a step, or
  // changing the batching geometry reproduces the same directions.
  std::vector<Rng> rngs;
  rngs.reserve(static_cast<std::size_t>(n));
  for (std::int64_t s = 0; s < n; ++s) {
    rngs.emplace_back(hash_combine(
        hash_combine(cfg_.seed,
                     static_cast<std::uint64_t>(req.first_sample + s)),
        static_cast<std::uint64_t>(req.step)));
  }

  // Wave capacity in probe rows (2 per antithetic pair). Unbatched runs
  // one sample's 2k rows per forward — the legacy shape; batching packs
  // pairs across samples up to max_probe_rows rows per forward.
  std::int64_t rows_cap = 2 * k;
  if (cfg_.batch_probes) {
    rows_cap = std::max<std::int64_t>(2, cfg_.max_probe_rows);
    rows_cap -= rows_cap % 2;
  }
  const std::int64_t pairs_cap = rows_cap / 2;

  Tensor grad(x.shape());
  // Touch-count accumulators for the sparse / subspace estimators.
  std::vector<float> sum;
  std::vector<std::int32_t> touch;
  if (!dense_legacy) {
    sum.assign(static_cast<std::size_t>(n * dof), 0.0f);
    touch.assign(static_cast<std::size_t>(n * dof), 0);
  }
  std::vector<float> lift(sub ? static_cast<std::size_t>(per) : 0);

  struct PendingPair {
    std::int64_t sample = 0;
    SparseProbe dir;   // support over `dof` coordinates
    float m = 1.0f;    // L-inf norm of the lifted direction (subspace)
  };
  std::vector<PendingPair> wave;
  wave.reserve(static_cast<std::size_t>(pairs_cap));

  const std::int64_t total_pairs = n * k;
  for (std::int64_t done = 0; done < total_pairs;) {
    const std::int64_t batch_pairs =
        std::min(pairs_cap, total_pairs - done);
    wave.clear();
    Tensor probes(Shape{2 * batch_pairs, x.dim(1), x.dim(2), x.dim(3)});
    float* pr = probes.raw();
    std::vector<std::int64_t> rows(static_cast<std::size_t>(2 * batch_pairs));

    for (std::int64_t p = 0; p < batch_pairs; ++p) {
      const std::int64_t s = (done + p) / k;  // pairs are sample-major
      PendingPair pend;
      pend.sample = s;
      pend.dir = sample_sparse_probe(rngs[static_cast<std::size_t>(s)], dof,
                                     nnz);
      const float* base = x.raw() + s * per;
      float* plus = pr + (2 * p) * per;
      float* minus = pr + (2 * p + 1) * per;
      if (sub) {
        std::fill(lift.begin(), lift.end(), 0.0f);
        for (std::size_t t = 0; t < pend.dir.index.size(); ++t) {
          const float sgn = pend.dir.sign(t);
          const float* brow =
              sub->basis().raw() +
              static_cast<std::int64_t>(pend.dir.index[t]) * per;
          for (std::int64_t i = 0; i < per; ++i) {
            lift[static_cast<std::size_t>(i)] += sgn * brow[i];
          }
        }
        float m = 0.0f;
        for (std::int64_t i = 0; i < per; ++i) {
          m = std::max(m, std::fabs(lift[static_cast<std::size_t>(i)]));
        }
        if (!(m > 0.0f)) m = 1.0f;
        pend.m = m;
        const float step = cfg_.h / m;
        for (std::int64_t i = 0; i < per; ++i) {
          const float d = step * lift[static_cast<std::size_t>(i)];
          plus[i] = base[i] + d;
          minus[i] = base[i] - d;
        }
      } else if (dense_legacy) {
        for (std::int64_t i = 0; i < per; ++i) {
          const float d = pend.dir.sign(static_cast<std::size_t>(i));
          plus[i] = base[i] + cfg_.h * d;
          minus[i] = base[i] - cfg_.h * d;
        }
      } else {
        std::memcpy(plus, base, sizeof(float) * static_cast<std::size_t>(per));
        std::memcpy(minus, base,
                    sizeof(float) * static_cast<std::size_t>(per));
        for (std::size_t t = 0; t < pend.dir.index.size(); ++t) {
          const std::int64_t i = pend.dir.index[t];
          const float d = cfg_.h * pend.dir.sign(t);
          plus[i] += d;
          minus[i] -= d;
        }
      }
      rows[static_cast<std::size_t>(2 * p)] = s;
      rows[static_cast<std::size_t>(2 * p + 1)] = s;
      wave.push_back(std::move(pend));
    }

    // Deployed-query accounting: spsa_probes is the total probe-row
    // budget the acceptance tests pin as n * steps * 2 * samples
    // regardless of levers; probe_forwards shows the batching
    // compression; probe_dof is the touched degrees of freedom.
    DIVA_TELEM_COUNT("attack.fd.spsa_probes",
                     static_cast<std::uint64_t>(2 * batch_pairs));
    DIVA_TELEM_COUNT("attack.fd.probe_forwards", 1);
    DIVA_TELEM_COUNT("attack.fd.probe_dof",
                     static_cast<std::uint64_t>(2 * batch_pairs * nnz));
    const Tensor probe_logits = forward_(probes);
    const std::vector<float> v = req.values(probe_logits, rows);

    for (std::int64_t p = 0; p < batch_pairs; ++p) {
      const float diff = v[static_cast<std::size_t>(2 * p)] -
                         v[static_cast<std::size_t>(2 * p + 1)];
      const PendingPair& pend = wave[static_cast<std::size_t>(p)];
      if (dense_legacy) {
        float* g = grad.raw() + pend.sample * per;
        const float scale = 1.0f / (2.0f * cfg_.h * static_cast<float>(k));
        for (std::int64_t i = 0; i < per; ++i) {
          g[i] += diff * scale * pend.dir.sign(static_cast<std::size_t>(i));
        }
      } else {
        // Central difference along the probe direction estimates the
        // directional derivative; m rescales the unit-L-inf lift back
        // to the unit-coefficient direction.
        float* gs = sum.data() + pend.sample * dof;
        std::int32_t* tc = touch.data() + pend.sample * dof;
        const float w = diff * pend.m;
        for (std::size_t t = 0; t < pend.dir.index.size(); ++t) {
          const std::int64_t c = pend.dir.index[t];
          gs[c] += w * pend.dir.sign(t);
          tc[c] += 1;
        }
      }
    }
    done += batch_pairs;
  }

  if (!dense_legacy) {
    const float denom = 2.0f * cfg_.h;
    for (std::int64_t s = 0; s < n; ++s) {
      const float* gs = sum.data() + s * dof;
      const std::int32_t* tc = touch.data() + s * dof;
      float* g = grad.raw() + s * per;
      if (sub) {
        // Finalize coefficients, then lift the estimate to image space.
        for (std::int64_t c = 0; c < dof; ++c) {
          if (tc[c] == 0) continue;
          const float coef = gs[c] / (denom * static_cast<float>(tc[c]));
          if (coef == 0.0f) continue;
          const float* brow = sub->basis().raw() + c * per;
          for (std::int64_t i = 0; i < per; ++i) g[i] += coef * brow[i];
        }
      } else {
        for (std::int64_t i = 0; i < per; ++i) {
          g[i] = tc[i] > 0
                     ? gs[i] / (denom * static_cast<float>(tc[i]))
                     : 0.0f;
        }
      }
    }
  }
  return grad;
}

}  // namespace diva
