#include "attack/grad_source.h"

#include <algorithm>
#include <cstring>

#include "telemetry/telemetry.h"

namespace diva {

namespace {

/// Attack mode: eval, no parameter gradients (input gradients only).
void freeze(Module& m) {
  m.set_training(false);
  m.set_param_grads_enabled(false);
}

/// Restores the default state (training loops re-enable what they need).
void unfreeze(Module& m) { m.set_param_grads_enabled(true); }

}  // namespace

// ---------------------------------------------------------------------------
// ModuleGradSource
// ---------------------------------------------------------------------------

ModuleGradSource::ModuleGradSource(Module& module, std::string label)
    : module_(module),
      label_(label.empty() ? module.name() : std::move(label)) {}

Tensor ModuleGradSource::logits(const Tensor& x) {
  std::lock_guard<std::mutex> lock(mu_);
  return module_.forward(x);
}

Tensor ModuleGradSource::input_grad(const Tensor& x, const GradRequest& req) {
  DIVA_CHECK(req.dlogits, "ModuleGradSource needs a dlogits closure");
  std::lock_guard<std::mutex> lock(mu_);
  const Tensor l = module_.forward(x);
  return module_.backward(req.dlogits(l));
}

void ModuleGradSource::prepare() {
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_++ == 0) freeze(module_);
}

void ModuleGradSource::restore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--prepared_ == 0) unfreeze(module_);
}

// ---------------------------------------------------------------------------
// QuantSteGradSource
// ---------------------------------------------------------------------------

QuantSteGradSource::QuantSteGradSource(const QuantizedModel& model,
                                       Module& shadow, std::string label)
    : model_(model), shadow_(shadow), label_(std::move(label)) {}

Tensor QuantSteGradSource::logits(const Tensor& x) { return model_.forward(x); }

Tensor QuantSteGradSource::input_grad(const Tensor& x,
                                      const GradRequest& req) {
  DIVA_CHECK(req.dlogits, "QuantSteGradSource needs a dlogits closure");
  // dlogits is computed from the *integer* model's logits, then pushed
  // through the float shadow as if quantization were the identity.
  const Tensor ql = model_.forward(x);
  std::lock_guard<std::mutex> lock(mu_);
  (void)shadow_.forward(x);  // populate the shadow's backward caches
  return shadow_.backward(req.dlogits(ql));
}

void QuantSteGradSource::prepare() {
  std::lock_guard<std::mutex> lock(mu_);
  if (prepared_++ == 0) freeze(shadow_);
}

void QuantSteGradSource::restore() {
  std::lock_guard<std::mutex> lock(mu_);
  if (--prepared_ == 0) unfreeze(shadow_);
}

// ---------------------------------------------------------------------------
// QuantFdGradSource
// ---------------------------------------------------------------------------

QuantFdGradSource::QuantFdGradSource(const QuantizedModel& model,
                                     FdConfig cfg, std::string label)
    : model_(model), cfg_(cfg), label_(std::move(label)) {
  DIVA_CHECK(cfg.h > 0.0f, "finite-difference step must be positive");
  DIVA_CHECK(cfg.samples >= 1, "need at least one SPSA probe pair");
}

Tensor QuantFdGradSource::logits(const Tensor& x) { return model_.forward(x); }

Tensor QuantFdGradSource::input_grad(const Tensor& x, const GradRequest& req) {
  DIVA_CHECK(req.values, "QuantFdGradSource needs a scalar-values closure");
  DIVA_CHECK(x.rank() == 4, "QuantFdGradSource expects NCHW input");
  return cfg_.coordinate ? coordinate_grad(x, req) : spsa_grad(x, req);
}

Tensor QuantFdGradSource::coordinate_grad(const Tensor& x,
                                          const GradRequest& req) const {
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;

  // Probes run in chunks so the probe batch stays small: each chunk is
  // [2 * kChunk, C, H, W] with the +h and -h probe for each pixel.
  constexpr std::int64_t kChunk = 256;
  Tensor grad(x.shape());

  for (std::int64_t s = 0; s < n; ++s) {
    const float* base = x.raw() + s * per;
    for (std::int64_t p0 = 0; p0 < per; p0 += kChunk) {
      const std::int64_t chunk = std::min(kChunk, per - p0);
      Tensor probes(Shape{2 * chunk, x.dim(1), x.dim(2), x.dim(3)});
      float* pr = probes.raw();
      for (std::int64_t p = 0; p < chunk; ++p) {
        float* plus = pr + (2 * p) * per;
        float* minus = pr + (2 * p + 1) * per;
        std::memcpy(plus, base, sizeof(float) * static_cast<std::size_t>(per));
        std::memcpy(minus, base, sizeof(float) * static_cast<std::size_t>(per));
        plus[p0 + p] += cfg_.h;
        minus[p0 + p] -= cfg_.h;
      }
      DIVA_TELEM_COUNT("attack.fd.coordinate_probes",
                       static_cast<std::uint64_t>(2 * chunk));
      const Tensor probe_logits = model_.forward(probes);
      const std::vector<std::int64_t> rows(
          static_cast<std::size_t>(2 * chunk), s);
      const std::vector<float> v = req.values(probe_logits, rows);
      for (std::int64_t p = 0; p < chunk; ++p) {
        grad[s * per + p0 + p] =
            (v[static_cast<std::size_t>(2 * p)] -
             v[static_cast<std::size_t>(2 * p + 1)]) /
            (2.0f * cfg_.h);
      }
    }
  }
  return grad;
}

Tensor QuantFdGradSource::spsa_grad(const Tensor& x,
                                    const GradRequest& req) const {
  const std::int64_t n = x.dim(0);
  const std::int64_t per = x.numel() / n;
  const std::int64_t k = cfg_.samples;
  Tensor grad(x.shape());
  std::vector<float> deltas(static_cast<std::size_t>(k * per));

  for (std::int64_t s = 0; s < n; ++s) {
    // One probe-direction stream per (sample, step): sharding the batch
    // or replaying a step reproduces the exact same directions.
    Rng rng(hash_combine(
        hash_combine(cfg_.seed,
                     static_cast<std::uint64_t>(req.first_sample + s)),
        static_cast<std::uint64_t>(req.step)));
    const float* base = x.raw() + s * per;

    Tensor probes(Shape{2 * k, x.dim(1), x.dim(2), x.dim(3)});
    float* pr = probes.raw();
    for (std::int64_t j = 0; j < k; ++j) {
      float* delta = deltas.data() + j * per;
      float* plus = pr + (2 * j) * per;
      float* minus = pr + (2 * j + 1) * per;
      for (std::int64_t i = 0; i < per; ++i) {
        delta[i] = rng.bernoulli(0.5) ? 1.0f : -1.0f;
        plus[i] = base[i] + cfg_.h * delta[i];
        minus[i] = base[i] - cfg_.h * delta[i];
      }
    }
    // 2k probe rows per (sample, step): the SPSA query budget the
    // acceptance test pins as n * steps * 2 * samples.
    DIVA_TELEM_COUNT("attack.fd.spsa_probes",
                     static_cast<std::uint64_t>(2 * k));
    const Tensor probe_logits = model_.forward(probes);
    const std::vector<std::int64_t> rows(static_cast<std::size_t>(2 * k), s);
    const std::vector<float> v = req.values(probe_logits, rows);

    float* g = grad.raw() + s * per;
    const float scale = 1.0f / (2.0f * cfg_.h * static_cast<float>(k));
    for (std::int64_t j = 0; j < k; ++j) {
      const float diff = v[static_cast<std::size_t>(2 * j)] -
                         v[static_cast<std::size_t>(2 * j + 1)];
      const float* delta = deltas.data() + j * per;
      for (std::int64_t i = 0; i < per; ++i) {
        g[i] += diff * scale * delta[i];
      }
    }
  }
  return grad;
}

}  // namespace diva
