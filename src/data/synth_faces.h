// SynthFaces — procedural stand-in for the PubFig face dataset used by
// the paper's §6 case study. Each identity has a genome (face shape,
// skin tone, eye geometry, brow angle, mouth curve, hair color/line);
// instances add pose shift, lighting, expression jitter and sensor
// noise. Identity recognition on this data has the same structure as
// PubFig: many classes, high within-class similarity, subtle
// between-class differences.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace diva {

class SynthFaces {
 public:
  static constexpr std::int64_t kChannels = 3;
  static constexpr std::int64_t kHeight = 32;
  static constexpr std::int64_t kWidth = 32;

  explicit SynthFaces(int num_identities = 30, std::uint64_t seed = 0xFACE5);

  int num_classes() const { return num_identities_; }

  /// Renders instance `index` of identity `id` as CHW in [0,1].
  Tensor render(int id, std::int64_t index) const;

  Dataset generate(int per_class, std::int64_t index_offset = 0) const;

 private:
  int num_identities_;
  std::uint64_t seed_;
};

}  // namespace diva
