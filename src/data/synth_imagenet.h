// SynthImageNet — procedural stand-in for the paper's ImageNet subset.
//
// Each class has a deterministic "genome" (texture family, spatial
// frequency, orientation, palette, foreground shape) derived from the
// dataset seed; each instance applies jitter (phase, orientation,
// color, noise, brightness) on top. Classes within the same texture
// family differ only in frequency/orientation, which deliberately
// creates boundary-adjacent samples: trained models reach high accuracy
// yet the float and quantized twins disagree on a few percent of
// inputs — the instability the paper's Table 1 measures and DIVA
// exploits.
//
// Every image is a pure function of (dataset seed, class, instance
// index), so train / validation / surrogate splits built from disjoint
// index ranges are disjoint by construction.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace diva {

class SynthImageNet {
 public:
  static constexpr std::int64_t kChannels = 3;
  static constexpr std::int64_t kHeight = 32;
  static constexpr std::int64_t kWidth = 32;

  explicit SynthImageNet(int num_classes = 24, std::uint64_t seed = 0xD1AF00D);

  int num_classes() const { return num_classes_; }

  /// Renders instance `index` of class `cls` as a CHW tensor in [0,1].
  Tensor render(int cls, std::int64_t index) const;

  /// Generates `per_class` instances per class with instance indices
  /// [index_offset, index_offset + per_class).
  Dataset generate(int per_class, std::int64_t index_offset = 0) const;

 private:
  int num_classes_;
  std::uint64_t seed_;
};

}  // namespace diva
