#include "data/synth_faces.h"

#include <algorithm>
#include <cmath>

namespace diva {

namespace {

struct FaceGenome {
  float face_w, face_h;        // face ellipse half-axes
  float skin_r, skin_g, skin_b;
  float eye_dx, eye_y, eye_r;  // eye spacing / height / radius
  float brow_angle, brow_len;
  float mouth_w, mouth_curve, mouth_y;
  float hair_r, hair_g, hair_b, hairline;
  float bg_r, bg_g, bg_b;
  float nose_len;
};

FaceGenome face_genome(std::uint64_t seed, int id) {
  Rng rng(hash_combine(seed, static_cast<std::uint64_t>(id) * 104729 + 31));
  FaceGenome g;
  g.face_w = rng.uniform(0.26f, 0.36f);
  g.face_h = rng.uniform(0.33f, 0.43f);
  const float tone = rng.uniform(0.35f, 0.9f);
  g.skin_r = tone;
  g.skin_g = tone * rng.uniform(0.72f, 0.85f);
  g.skin_b = tone * rng.uniform(0.55f, 0.72f);
  g.eye_dx = rng.uniform(0.10f, 0.16f);
  g.eye_y = rng.uniform(-0.12f, -0.05f);
  g.eye_r = rng.uniform(0.025f, 0.05f);
  g.brow_angle = rng.uniform(-0.35f, 0.35f);
  g.brow_len = rng.uniform(0.06f, 0.11f);
  g.mouth_w = rng.uniform(0.08f, 0.16f);
  g.mouth_curve = rng.uniform(-0.06f, 0.08f);
  g.mouth_y = rng.uniform(0.14f, 0.22f);
  g.hair_r = rng.uniform(0.05f, 0.6f);
  g.hair_g = rng.uniform(0.03f, 0.45f);
  g.hair_b = rng.uniform(0.02f, 0.35f);
  g.hairline = rng.uniform(-0.30f, -0.20f);
  g.bg_r = rng.uniform(0.1f, 0.9f);
  g.bg_g = rng.uniform(0.1f, 0.9f);
  g.bg_b = rng.uniform(0.1f, 0.9f);
  g.nose_len = rng.uniform(0.05f, 0.10f);
  return g;
}

}  // namespace

SynthFaces::SynthFaces(int num_identities, std::uint64_t seed)
    : num_identities_(num_identities), seed_(seed) {
  DIVA_CHECK(num_identities > 0, "num_identities must be positive");
}

Tensor SynthFaces::render(int id, std::int64_t index) const {
  DIVA_CHECK(id >= 0 && id < num_identities_, "identity out of range");
  const FaceGenome g = face_genome(seed_, id);
  Rng rng(hash_combine(hash_combine(seed_, static_cast<std::uint64_t>(id)),
                       static_cast<std::uint64_t>(index) * 193939 + 5));

  // Pose / lighting / expression jitter.
  const float ox = rng.uniform(-0.05f, 0.05f);
  const float oy = rng.uniform(-0.05f, 0.05f);
  const float light = rng.uniform(0.8f, 1.2f);
  const float noise_sd = rng.uniform(0.02f, 0.06f);
  const float smile = g.mouth_curve + rng.uniform(-0.02f, 0.02f);
  const float eye_squint = rng.uniform(0.8f, 1.1f);

  Tensor img(Shape{1, kChannels, kHeight, kWidth});
  for (std::int64_t y = 0; y < kHeight; ++y) {
    for (std::int64_t x = 0; x < kWidth; ++x) {
      const float u = (static_cast<float>(x) + 0.5f) / kWidth - 0.5f - ox;
      const float v = (static_cast<float>(y) + 0.5f) / kHeight - 0.5f - oy;

      float r = g.bg_r, gg = g.bg_g, b = g.bg_b;

      const float fe = (u * u) / (g.face_w * g.face_w) +
                       (v * v) / (g.face_h * g.face_h);
      if (fe < 1.0f) {
        r = g.skin_r;
        gg = g.skin_g;
        b = g.skin_b;

        // Hair: region above the hairline inside the face ellipse.
        if (v < g.hairline) {
          r = g.hair_r;
          gg = g.hair_g;
          b = g.hair_b;
        }

        // Eyes.
        for (int side = -1; side <= 1; side += 2) {
          const float du = u - side * g.eye_dx;
          const float dv = (v - g.eye_y) / eye_squint;
          if (du * du + dv * dv < g.eye_r * g.eye_r) {
            r = gg = b = 0.08f;
          }
          // Brows: short line above each eye.
          const float bu = du;
          const float bv = v - (g.eye_y - 0.055f) -
                           g.brow_angle * side * du;
          if (std::fabs(bu) < g.brow_len && std::fabs(bv) < 0.014f) {
            r = gg = b = 0.15f;
          }
        }

        // Nose: vertical stroke.
        if (std::fabs(u) < 0.012f && v > -0.02f && v < g.nose_len) {
          r *= 0.8f;
          gg *= 0.8f;
          b *= 0.8f;
        }

        // Mouth: curved horizontal stroke.
        const float mv = v - (g.mouth_y + smile * (u * u) / (g.mouth_w * g.mouth_w + 1e-6f));
        if (std::fabs(u) < g.mouth_w && std::fabs(mv) < 0.02f) {
          r = 0.55f;
          gg = 0.15f;
          b = 0.18f;
        }
      }

      r = r * light + rng.normal(0.0f, noise_sd);
      gg = gg * light + rng.normal(0.0f, noise_sd);
      b = b * light + rng.normal(0.0f, noise_sd);
      img.at(0, 0, y, x) = std::clamp(r, 0.0f, 1.0f);
      img.at(0, 1, y, x) = std::clamp(gg, 0.0f, 1.0f);
      img.at(0, 2, y, x) = std::clamp(b, 0.0f, 1.0f);
    }
  }
  return img.reshaped(Shape{kChannels, kHeight, kWidth});
}

Dataset SynthFaces::generate(int per_class, std::int64_t index_offset) const {
  DIVA_CHECK(per_class > 0, "per_class must be positive");
  const std::int64_t total =
      static_cast<std::int64_t>(per_class) * num_identities_;
  Dataset out;
  out.images = Tensor(Shape{total, kChannels, kHeight, kWidth});
  out.labels.resize(static_cast<std::size_t>(total));
  out.num_classes = num_identities_;

  const std::int64_t per_image = kChannels * kHeight * kWidth;
  std::int64_t n = 0;
  for (int id = 0; id < num_identities_; ++id) {
    for (int i = 0; i < per_class; ++i, ++n) {
      const Tensor img = render(id, index_offset + i);
      std::copy_n(img.raw(), per_image, out.images.raw() + n * per_image);
      out.labels[static_cast<std::size_t>(n)] = id;
    }
  }
  return out;
}

}  // namespace diva
