// In-memory labeled image dataset plus a shuffling batch loader.
#pragma once

#include <utility>
#include <vector>

#include "runtime/rng.h"
#include "tensor/tensor.h"
#include "tensor/tensor_ops.h"

namespace diva {

struct Dataset {
  Tensor images;            // [N, C, H, W], values in [0, 1]
  std::vector<int> labels;  // size N
  int num_classes = 0;

  std::int64_t size() const { return images.empty() ? 0 : images.dim(0); }

  /// Subset by indices (deep copy).
  Dataset subset(const std::vector<int>& indices) const {
    Dataset out;
    out.images = gather_batch(images, indices);
    out.labels.reserve(indices.size());
    for (int i : indices) out.labels.push_back(labels[static_cast<std::size_t>(i)]);
    out.num_classes = num_classes;
    return out;
  }
};

struct Batch {
  Tensor images;
  std::vector<int> labels;
};

/// Iterates a dataset in shuffled mini-batches; reshuffles every epoch.
class DataLoader {
 public:
  DataLoader(const Dataset& data, std::int64_t batch_size, std::uint64_t seed)
      : data_(&data), batch_size_(batch_size), rng_(seed) {
    DIVA_CHECK(batch_size > 0, "batch_size must be positive");
    order_.resize(static_cast<std::size_t>(data.size()));
    for (std::size_t i = 0; i < order_.size(); ++i) {
      order_[i] = static_cast<int>(i);
    }
    reshuffle();
  }

  /// Number of batches per epoch (last partial batch included).
  std::int64_t batches_per_epoch() const {
    return (data_->size() + batch_size_ - 1) / batch_size_;
  }

  /// Next batch; wraps around epochs automatically (reshuffling).
  Batch next() {
    const std::int64_t n = data_->size();
    DIVA_CHECK(n > 0, "empty dataset");
    if (cursor_ >= n) {
      cursor_ = 0;
      reshuffle();
    }
    const std::int64_t take = std::min(batch_size_, n - cursor_);
    std::vector<int> idx(order_.begin() + cursor_,
                         order_.begin() + cursor_ + take);
    cursor_ += take;
    Batch b;
    b.images = gather_batch(data_->images, idx);
    b.labels.reserve(idx.size());
    for (int i : idx) {
      b.labels.push_back(data_->labels[static_cast<std::size_t>(i)]);
    }
    return b;
  }

 private:
  void reshuffle() { rng_.shuffle(std::span<int>(order_)); }

  const Dataset* data_;
  std::int64_t batch_size_;
  Rng rng_;
  std::vector<int> order_;
  std::int64_t cursor_ = 0;
};

}  // namespace diva
