// SynthDigits — procedural stand-in for MNIST (used by the paper's
// Figure 4 PCA analysis). Digits are rendered as jittered seven-segment
// strokes on a 28x28 single-channel canvas with blur and noise, giving
// ten well-separated classes with realistic intra-class variance.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace diva {

class SynthDigits {
 public:
  static constexpr std::int64_t kChannels = 1;
  static constexpr std::int64_t kHeight = 28;
  static constexpr std::int64_t kWidth = 28;

  explicit SynthDigits(std::uint64_t seed = 0xD161757);

  int num_classes() const { return 10; }

  /// Renders instance `index` of digit `digit` as [1,28,28] in [0,1].
  Tensor render(int digit, std::int64_t index) const;

  Dataset generate(int per_class, std::int64_t index_offset = 0) const;

 private:
  std::uint64_t seed_;
};

}  // namespace diva
