#include "data/synth_digits.h"

#include <array>
#include <algorithm>
#include <cmath>

namespace diva {

namespace {

// Seven-segment layout:      0: top, 1: top-left, 2: top-right,
//   _0_                      3: middle, 4: bottom-left, 5: bottom-right,
//  1| |2                     6: bottom
//   -3-
//  4| |5
//   _6_
constexpr std::array<std::array<bool, 7>, 10> kSegments{{
    {true, true, true, false, true, true, true},     // 0
    {false, false, true, false, false, true, false}, // 1
    {true, false, true, true, true, false, true},    // 2
    {true, false, true, true, false, true, true},    // 3
    {false, true, true, true, false, true, false},   // 4
    {true, true, false, true, false, true, true},    // 5
    {true, true, false, true, true, true, true},     // 6
    {true, false, true, false, false, true, false},  // 7
    {true, true, true, true, true, true, true},      // 8
    {true, true, true, true, false, true, true},     // 9
}};

struct Segment {
  float x0, y0, x1, y1;  // normalized endpoints within the glyph box
};

constexpr std::array<Segment, 7> kSegmentGeometry{{
    {0.15f, 0.05f, 0.85f, 0.05f},  // top
    {0.15f, 0.05f, 0.15f, 0.50f},  // top-left
    {0.85f, 0.05f, 0.85f, 0.50f},  // top-right
    {0.15f, 0.50f, 0.85f, 0.50f},  // middle
    {0.15f, 0.50f, 0.15f, 0.95f},  // bottom-left
    {0.85f, 0.50f, 0.85f, 0.95f},  // bottom-right
    {0.15f, 0.95f, 0.85f, 0.95f},  // bottom
}};

float dist_to_segment(float px, float py, const Segment& s) {
  const float dx = s.x1 - s.x0, dy = s.y1 - s.y0;
  const float len2 = dx * dx + dy * dy;
  float t = len2 > 0.0f ? ((px - s.x0) * dx + (py - s.y0) * dy) / len2 : 0.0f;
  t = std::clamp(t, 0.0f, 1.0f);
  const float cx = s.x0 + t * dx, cy = s.y0 + t * dy;
  return std::sqrt((px - cx) * (px - cx) + (py - cy) * (py - cy));
}

}  // namespace

SynthDigits::SynthDigits(std::uint64_t seed) : seed_(seed) {}

Tensor SynthDigits::render(int digit, std::int64_t index) const {
  DIVA_CHECK(digit >= 0 && digit < 10, "digit out of range");
  Rng rng(hash_combine(hash_combine(seed_, static_cast<std::uint64_t>(digit)),
                       static_cast<std::uint64_t>(index) * 40503 + 11));

  // Glyph placement jitter.
  const float ox = rng.uniform(-0.08f, 0.08f);
  const float oy = rng.uniform(-0.06f, 0.06f);
  const float scale = rng.uniform(0.85f, 1.05f);
  const float thickness = rng.uniform(0.055f, 0.095f);
  const float slant = rng.uniform(-0.12f, 0.12f);
  const float noise_sd = rng.uniform(0.02f, 0.08f);
  const float ink = rng.uniform(0.8f, 1.0f);

  // Per-segment endpoint jitter.
  std::array<Segment, 7> segs = kSegmentGeometry;
  for (auto& s : segs) {
    s.x0 += rng.uniform(-0.03f, 0.03f);
    s.y0 += rng.uniform(-0.03f, 0.03f);
    s.x1 += rng.uniform(-0.03f, 0.03f);
    s.y1 += rng.uniform(-0.03f, 0.03f);
  }

  Tensor img(Shape{1, kChannels, kHeight, kWidth});
  for (std::int64_t y = 0; y < kHeight; ++y) {
    for (std::int64_t x = 0; x < kWidth; ++x) {
      // Map pixel into glyph space with slant + scale + offset.
      const float gy = ((static_cast<float>(y) + 0.5f) / kHeight - 0.5f) /
                           scale + 0.5f - oy;
      const float gx = ((static_cast<float>(x) + 0.5f) / kWidth - 0.5f) /
                           scale + 0.5f - ox + slant * (gy - 0.5f);

      float best = 1e9f;
      for (int s = 0; s < 7; ++s) {
        if (!kSegments[static_cast<std::size_t>(digit)]
                      [static_cast<std::size_t>(s)]) {
          continue;
        }
        best = std::min(best, dist_to_segment(gx, gy, segs[static_cast<std::size_t>(s)]));
      }
      // Soft stroke profile (anti-aliased edge).
      const float v =
          ink / (1.0f + std::exp((best - thickness) * 60.0f));
      const float noisy = v + rng.normal(0.0f, noise_sd);
      img.at(0, 0, y, x) = std::clamp(noisy, 0.0f, 1.0f);
    }
  }
  return img.reshaped(Shape{kChannels, kHeight, kWidth});
}

Dataset SynthDigits::generate(int per_class, std::int64_t index_offset) const {
  DIVA_CHECK(per_class > 0, "per_class must be positive");
  const std::int64_t total = static_cast<std::int64_t>(per_class) * 10;
  Dataset out;
  out.images = Tensor(Shape{total, kChannels, kHeight, kWidth});
  out.labels.resize(static_cast<std::size_t>(total));
  out.num_classes = 10;

  const std::int64_t per_image = kChannels * kHeight * kWidth;
  std::int64_t n = 0;
  for (int digit = 0; digit < 10; ++digit) {
    for (int i = 0; i < per_class; ++i, ++n) {
      const Tensor img = render(digit, index_offset + i);
      std::copy_n(img.raw(), per_image, out.images.raw() + n * per_image);
      out.labels[static_cast<std::size_t>(n)] = digit;
    }
  }
  return out;
}

}  // namespace diva
