#include "data/synth_imagenet.h"

#include <algorithm>
#include <cmath>

namespace diva {

namespace {

constexpr float kPi = 3.14159265358979323846f;

/// Deterministic class genome.
struct ClassGenome {
  int texture_family;   // 0..5
  float frequency;      // cycles across the image
  float orientation;    // radians
  float hue_a, hue_b;   // palette endpoints in [0,1)
  int shape;            // 0..3 foreground shape
  float shape_size;     // radius fraction
};

/// HSV-ish hue to RGB (S=V=1 simplified).
void hue_to_rgb(float h, float* r, float* g, float* b) {
  const float x = h * 6.0f;
  const int i = static_cast<int>(x) % 6;
  const float f = x - std::floor(x);
  switch (i) {
    case 0: *r = 1; *g = f; *b = 0; break;
    case 1: *r = 1 - f; *g = 1; *b = 0; break;
    case 2: *r = 0; *g = 1; *b = f; break;
    case 3: *r = 0; *g = 1 - f; *b = 1; break;
    case 4: *r = f; *g = 0; *b = 1; break;
    default: *r = 1; *g = 0; *b = 1 - f; break;
  }
}

ClassGenome class_genome(std::uint64_t seed, int cls) {
  Rng rng(hash_combine(seed, static_cast<std::uint64_t>(cls) * 7919 + 13));
  ClassGenome g;
  // Classes are grouped into families of four. The family fixes every
  // "easy" cue (texture type, palette, foreground shape); the variant
  // within the family only shifts frequency and orientation by an
  // amount comparable to the per-instance jitter. Intra-family
  // discrimination is therefore genuinely hard: trained models end up
  // with boundary-adjacent samples, which is where quantization
  // instability (paper Table 1) and DIVA's attack surface live.
  const int family = cls / 4;
  const int variant = cls % 4;
  g.texture_family = family % 6;
  g.frequency = 3.0f * std::pow(1.22f, static_cast<float>(variant)) *
                (1.0f + rng.uniform(-0.02f, 0.02f));
  g.orientation = static_cast<float>(family) * 0.19f +
                  static_cast<float>(variant) * 0.35f +
                  rng.uniform(-0.03f, 0.03f);
  g.hue_a = std::fmod(static_cast<float>(family) * 0.23f +
                          rng.uniform(-0.015f, 0.015f) + 1.0f,
                      1.0f);
  g.hue_b = std::fmod(g.hue_a + 0.33f, 1.0f);
  g.shape = family % 4;
  g.shape_size = 0.30f + rng.uniform(-0.02f, 0.02f);
  return g;
}

/// Scalar texture field in [0, 1] at normalized coordinates (u, v).
float texture_value(const ClassGenome& g, float u, float v, float phase,
                    float orient_jitter, float freq_jitter) {
  const float theta = g.orientation + orient_jitter;
  const float freq = g.frequency * (1.0f + freq_jitter);
  const float ur = u * std::cos(theta) + v * std::sin(theta);
  const float vr = -u * std::sin(theta) + v * std::cos(theta);
  switch (g.texture_family) {
    case 0:  // stripes
      return 0.5f + 0.5f * std::sin(2.0f * kPi * freq * ur + phase);
    case 1:  // checker
      return (std::sin(2.0f * kPi * freq * ur + phase) *
                  std::sin(2.0f * kPi * freq * vr + phase) >
              0.0f)
                 ? 1.0f
                 : 0.0f;
    case 2: {  // dots
      const float du = std::fmod(std::fabs(ur * freq + phase * 0.2f), 1.0f) - 0.5f;
      const float dv = std::fmod(std::fabs(vr * freq + phase * 0.2f), 1.0f) - 0.5f;
      return (du * du + dv * dv < 0.09f) ? 1.0f : 0.0f;
    }
    case 3: {  // rings
      const float r = std::sqrt(ur * ur + vr * vr);
      return 0.5f + 0.5f * std::sin(2.0f * kPi * freq * r + phase);
    }
    case 4:  // diagonal gradient waves
      return 0.5f + 0.5f * std::sin(2.0f * kPi * freq * (ur + vr) * 0.7f + phase);
    default: {  // soft blobs
      const float s1 = std::sin(2.0f * kPi * freq * ur * 0.8f + phase);
      const float s2 = std::sin(2.0f * kPi * freq * vr * 0.8f - phase);
      return 0.25f * (s1 + 1.0f) * (s2 + 1.0f);
    }
  }
}

/// Signed distance-ish membership of the foreground shape.
bool inside_shape(int shape, float du, float dv, float size) {
  switch (shape) {
    case 0:  // circle
      return du * du + dv * dv < size * size;
    case 1:  // square
      return std::fabs(du) < size && std::fabs(dv) < size;
    case 2:  // diamond
      return std::fabs(du) + std::fabs(dv) < size * 1.3f;
    default:  // triangle (upward)
      return dv > -size && std::fabs(du) < (size - dv) * 0.6f;
  }
}

}  // namespace

SynthImageNet::SynthImageNet(int num_classes, std::uint64_t seed)
    : num_classes_(num_classes), seed_(seed) {
  DIVA_CHECK(num_classes > 0, "num_classes must be positive");
}

Tensor SynthImageNet::render(int cls, std::int64_t index) const {
  DIVA_CHECK(cls >= 0 && cls < num_classes_, "class out of range");
  const ClassGenome g = class_genome(seed_, cls);
  Rng rng(hash_combine(hash_combine(seed_, static_cast<std::uint64_t>(cls)),
                       static_cast<std::uint64_t>(index) * 2654435761ULL + 7));

  // Instance jitter — deliberately sized against the inter-variant
  // genome gaps (orientation gap 0.35 rad vs jitter +-0.16; frequency
  // ratio 1.22 vs jitter +-10%) so adjacent classes overlap in their
  // tails.
  const float phase = rng.uniform(0.0f, 2.0f * kPi);
  const float orient_jitter = rng.uniform(-0.16f, 0.16f);
  const float freq_jitter = rng.uniform(-0.10f, 0.10f);
  const float cx = rng.uniform(-0.18f, 0.18f);
  const float cy = rng.uniform(-0.18f, 0.18f);
  const float brightness = rng.uniform(0.8f, 1.2f);
  const float noise_sd = rng.uniform(0.02f, 0.07f);
  const float hue_jitter = rng.uniform(-0.05f, 0.05f);

  float ra, ga, ba, rb, gb, bb;
  hue_to_rgb(std::fmod(g.hue_a + hue_jitter + 1.0f, 1.0f), &ra, &ga, &ba);
  hue_to_rgb(std::fmod(g.hue_b + hue_jitter + 1.0f, 1.0f), &rb, &gb, &bb);

  Tensor img(Shape{1, kChannels, kHeight, kWidth});
  for (std::int64_t y = 0; y < kHeight; ++y) {
    for (std::int64_t x = 0; x < kWidth; ++x) {
      const float u = (static_cast<float>(x) / kWidth) - 0.5f;
      const float v = (static_cast<float>(y) / kHeight) - 0.5f;
      float t = texture_value(g, u, v, phase, orient_jitter, freq_jitter);

      // Foreground shape flips the palette blend locally.
      if (inside_shape(g.shape, u - cx, v - cy, g.shape_size)) {
        t = 1.0f - 0.8f * t;
      }

      float r = ra * t + rb * (1.0f - t);
      float gg = ga * t + gb * (1.0f - t);
      float b = ba * t + bb * (1.0f - t);

      r = r * brightness + rng.normal(0.0f, noise_sd);
      gg = gg * brightness + rng.normal(0.0f, noise_sd);
      b = b * brightness + rng.normal(0.0f, noise_sd);

      img.at(0, 0, y, x) = std::clamp(r, 0.0f, 1.0f);
      img.at(0, 1, y, x) = std::clamp(gg, 0.0f, 1.0f);
      img.at(0, 2, y, x) = std::clamp(b, 0.0f, 1.0f);
    }
  }
  return img.reshaped(Shape{kChannels, kHeight, kWidth});
}

Dataset SynthImageNet::generate(int per_class,
                                std::int64_t index_offset) const {
  DIVA_CHECK(per_class > 0, "per_class must be positive");
  const std::int64_t total =
      static_cast<std::int64_t>(per_class) * num_classes_;
  Dataset out;
  out.images = Tensor(Shape{total, kChannels, kHeight, kWidth});
  out.labels.resize(static_cast<std::size_t>(total));
  out.num_classes = num_classes_;

  const std::int64_t per_image = kChannels * kHeight * kWidth;
  std::int64_t n = 0;
  for (int cls = 0; cls < num_classes_; ++cls) {
    for (int i = 0; i < per_class; ++i, ++n) {
      const Tensor img = render(cls, index_offset + i);
      std::copy_n(img.raw(), per_image, out.images.raw() + n * per_image);
      out.labels[static_cast<std::size_t>(n)] = cls;
    }
  }
  return out;
}

}  // namespace diva
