#include "core/report.h"

#include <cstdio>

#include "runtime/check.h"

namespace diva {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  DIVA_CHECK(cells.size() == headers_.size(),
             "row has " << cells.size() << " cells, expected "
                        << headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::printf("  ");
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(headers_);
  std::size_t total = 2;
  for (const auto w : widths) total += w + 2;
  std::string rule(total, '-');
  std::printf("  %s\n", rule.c_str() + 2);
  for (const auto& row : rows_) print_row(row);
}

void banner(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

std::string fmt(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string with_paper(double measured, const std::string& paper_note,
                       int decimals) {
  return fmt(measured, decimals) + " (paper: " + paper_note + ")";
}

}  // namespace diva
