// Generic supervised training loop used by the model zoo, QAT
// finetuning, pruning finetuning and robust training.
#pragma once

#include <functional>

#include "data/dataset.h"
#include "nn/sequential.h"

namespace diva {

struct TrainConfig {
  int epochs = 10;
  std::int64_t batch_size = 32;
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
  /// Multiply lr by lr_decay every lr_decay_epochs (0 disables).
  float lr_decay = 0.1f;
  int lr_decay_epochs = 0;
  std::uint64_t seed = 1;
  bool verbose = false;
  /// Invoked after every optimizer step (e.g. pruning mask re-apply).
  std::function<void()> post_step;
};

/// Trains with SGD + momentum on softmax cross-entropy; returns the
/// final-epoch mean training loss. The model is left in eval mode.
float train_classifier(Sequential& model, const Dataset& train,
                       const TrainConfig& cfg);

}  // namespace diva
