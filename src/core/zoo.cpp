#include "core/zoo.h"

#include <cstdio>
#include <filesystem>

#include "data/synth_digits.h"
#include "data/synth_faces.h"
#include "data/synth_imagenet.h"
#include "distill/distill.h"
#include "nn/fold_bn.h"
#include "nn/init.h"
#include "nn/model_io.h"
#include "prune/prune.h"
#include "quant/qat.h"
#include "robust/robust.h"

namespace diva {

namespace {

std::string arch_key(Arch arch) {
  switch (arch) {
    case Arch::kResNet: return "resnet";
    case Arch::kMobileNet: return "mobilenet";
    case Arch::kDenseNet: return "densenet";
  }
  return "?";
}

/// A few deterministic calibration batches from a dataset.
std::vector<Tensor> calibration_batches(const Dataset& data, int batches,
                                        std::int64_t batch_size) {
  std::vector<Tensor> out;
  Rng rng(0xCA11B);
  for (int b = 0; b < batches; ++b) {
    std::vector<int> idx;
    for (std::int64_t i = 0; i < batch_size; ++i) {
      idx.push_back(static_cast<int>(rng.randint(
          static_cast<std::uint64_t>(data.size()))));
    }
    out.push_back(gather_batch(data.images, idx));
  }
  return out;
}

}  // namespace

ModelZoo::ModelZoo(ZooConfig cfg) : cfg_(std::move(cfg)) {
  std::filesystem::create_directories(cfg_.cache_dir);
}

ModelZoo::~ModelZoo() = default;

void ModelZoo::log(const std::string& msg) const {
  if (cfg_.verbose) std::printf("[zoo] %s\n", msg.c_str());
}

std::string ModelZoo::cache_path(const std::string& key) const {
  // Version + scale parameters in the filename invalidate stale caches.
  return cfg_.cache_dir + "/" + key + "_v1_c" +
         std::to_string(cfg_.num_classes) + "_t" +
         std::to_string(cfg_.train_per_class) + "_e" +
         std::to_string(cfg_.float_epochs) + ".bin";
}

bool ModelZoo::try_load(const std::string& key, Sequential& model) const {
  const std::string path = cache_path(key);
  if (!std::filesystem::exists(path)) return false;
  load_model_file(model, path);
  model.set_training(false);
  return true;
}

void ModelZoo::store(const std::string& key, Sequential& model) const {
  save_model_file(model, cache_path(key));
}

// ---------------------------------------------------------------------------
// Datasets.
// ---------------------------------------------------------------------------

const Dataset& ModelZoo::train_set() {
  if (!train_) {
    SynthImageNet gen(cfg_.num_classes, cfg_.data_seed);
    train_ = gen.generate(cfg_.train_per_class, /*index_offset=*/0);
  }
  return *train_;
}

const Dataset& ModelZoo::val_set() {
  if (!val_) {
    SynthImageNet gen(cfg_.num_classes, cfg_.data_seed);
    val_ = gen.generate(cfg_.val_per_class, /*index_offset=*/100000);
  }
  return *val_;
}

const Dataset& ModelZoo::surrogate_set() {
  if (!surrogate_) {
    SynthImageNet gen(cfg_.num_classes, cfg_.data_seed);
    surrogate_ = gen.generate(cfg_.surrogate_per_class,
                              /*index_offset=*/200000);
  }
  return *surrogate_;
}

const Dataset& ModelZoo::digit_train() {
  if (!digit_train_) digit_train_ = SynthDigits(77).generate(60, 0);
  return *digit_train_;
}

const Dataset& ModelZoo::digit_val() {
  if (!digit_val_) digit_val_ = SynthDigits(77).generate(100, 100000);
  return *digit_val_;
}

const Dataset& ModelZoo::face_train() {
  if (!face_train_) {
    face_train_ = SynthFaces(cfg_.face_identities)
                      .generate(cfg_.face_train_per_class, 0);
  }
  return *face_train_;
}

const Dataset& ModelZoo::face_val() {
  if (!face_val_) {
    face_val_ = SynthFaces(cfg_.face_identities)
                    .generate(cfg_.face_val_per_class, 100000);
  }
  return *face_val_;
}

// ---------------------------------------------------------------------------
// Generic machinery.
// ---------------------------------------------------------------------------

Sequential& ModelZoo::cached(const std::string& key, NetMode mode,
                             const Factory& factory,
                             const std::function<void(Sequential&)>& build) {
  auto it = models_.find(key);
  if (it != models_.end()) return *it->second;

  auto model = factory(mode);
  if (!try_load(key, *model)) {
    log("building '" + key + "' (not cached)");
    build(*model);
    model->set_training(false);
    store(key, *model);
  } else {
    log("loaded '" + key + "' from cache");
  }
  Sequential& ref = *model;
  models_[key] = std::move(model);
  return ref;
}

Sequential& ModelZoo::adapted_qat_for(const std::string& prefix,
                                      const Factory& factory,
                                      Sequential& source, const Dataset& data,
                                      bool preserve_zeros, float lr_override) {
  return cached(prefix + "_qat", NetMode::kQat, factory, [&](Sequential& m) {
    fold_batchnorm_into(source, m);
    calibrate(m, calibration_batches(data, 4, 32));
    TrainConfig qcfg;
    qcfg.epochs = cfg_.qat_epochs;
    qcfg.lr = lr_override > 0.0f ? lr_override : cfg_.qat_lr;
    qcfg.weight_decay = 0.0f;
    qcfg.seed = 21;
    std::optional<MagnitudePruner> pruner;
    if (preserve_zeros) {
      pruner.emplace(MagnitudePruner::from_existing_zeros(m));
      qcfg.post_step = [&pruner] { pruner->apply_masks(); };
    }
    train_classifier(m, data, qcfg);
  });
}

const QuantizedModel& ModelZoo::compiled(const std::string& key,
                                         Sequential& qat,
                                         const Shape& image_shape) {
  auto it = quantized_.find(key);
  if (it != quantized_.end()) return it->second;
  auto [pos, inserted] =
      quantized_.emplace(key, QuantizedModel::compile(qat, image_shape));
  (void)inserted;
  return pos->second;
}

// ---------------------------------------------------------------------------
// ImageNet track.
// ---------------------------------------------------------------------------

Sequential& ModelZoo::original(Arch arch) {
  const std::string key = arch_key(arch) + "_orig";
  return cached(key, NetMode::kFloat,
                [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); },
                [&](Sequential& m) {
                  init_parameters(m, 42 + static_cast<std::uint64_t>(arch));
                  TrainConfig cfg;
                  cfg.epochs = cfg_.float_epochs;
                  cfg.lr = 0.05f;
                  cfg.lr_decay_epochs = cfg_.float_epochs / 2;
                  cfg.seed = 7;
                  cfg.verbose = cfg_.verbose;
                  train_classifier(m, train_set(), cfg);
                });
}

Sequential& ModelZoo::adapted_qat(Arch arch) {
  Sequential& orig = original(arch);
  return adapted_qat_for(
      arch_key(arch), [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); },
      orig, train_set(), /*preserve_zeros=*/false);
}

const QuantizedModel& ModelZoo::quantized(Arch arch) {
  return compiled(arch_key(arch) + "_int8", adapted_qat(arch),
                  Shape{SynthImageNet::kChannels, SynthImageNet::kHeight,
                        SynthImageNet::kWidth});
}

Sequential& ModelZoo::surrogate_original(Arch arch) {
  const std::string key = arch_key(arch) + "_surro_fp";
  return cached(
      key, NetMode::kFolded,
      [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); },
      [&](Sequential& m) {
        // §4.3: reconstruct a full-precision surrogate of the original.
        // The paper initializes "using the pretrained ImageNet parameters
        // when possible or the parameters of the adapted model" — the
        // attacker CAN extract the adapted model's weights, so the
        // surrogate starts from them (dequantized via fold-transfer) and
        // is then finetuned by knowledge distillation against the
        // adapted model on the attacker's disjoint image pool.
        Sequential& teacher = adapted_qat(arch);
        fold_batchnorm_into(teacher, m);
        DistillConfig dcfg;
        dcfg.epochs = std::max(2, cfg_.distill_epochs / 2);
        dcfg.lr = 0.01f;  // gentle: refine, do not forget the init
        dcfg.verbose = cfg_.verbose;
        distill(m, fn(teacher), surrogate_set().images, dcfg);
      });
}

Sequential& ModelZoo::surrogate_adapted_qat(Arch arch) {
  const std::string key = arch_key(arch) + "_surro";
  Sequential& surro_fp = surrogate_original(arch);
  return cached(
      key + "_qat", NetMode::kQat,
      [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); },
      [&](Sequential& m) {
        // §4.4: blackbox — adapt the surrogate FP model and finetune it
        // against the true adapted model's *predictions* (query access).
        fold_batchnorm_into(surro_fp, m);
        calibrate(m, calibration_batches(surrogate_set(), 4, 32));
        Dataset relabeled = surrogate_set();
        relabeled.labels = predict(fn(adapted_qat(arch)), relabeled);
        TrainConfig qcfg;
        qcfg.epochs = cfg_.qat_epochs;
        qcfg.lr = 0.001f;
        qcfg.weight_decay = 0.0f;
        qcfg.seed = 23;
        train_classifier(m, relabeled, qcfg);
      });
}

Sequential& ModelZoo::pruned(Arch arch) {
  const std::string key = arch_key(arch) + "_pruned";
  return cached(
      key, NetMode::kFloat,
      [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); },
      [&](Sequential& m) {
        // Start from the trained original, ramp sparsity while
        // finetuning (Keras weight-pruning flow).
        copy_parameters(original(arch), m);
        PruneConfig pcfg;
        pcfg.target_sparsity = cfg_.prune_sparsity;
        const std::int64_t steps_per_epoch =
            (train_set().size() + 31) / 32;
        pcfg.ramp_steps = steps_per_epoch * 2;
        pcfg.update_every = 10;
        MagnitudePruner pruner(m, pcfg);
        TrainConfig tcfg;
        tcfg.epochs = 3;
        tcfg.lr = 0.01f;
        tcfg.seed = 31;
        tcfg.post_step = [&pruner] { pruner.step(); };
        train_classifier(m, train_set(), tcfg);
        pruner.prune_to(cfg_.prune_sparsity);
      });
}

Sequential& ModelZoo::pruned_qat(Arch arch) {
  Sequential& src = pruned(arch);
  return adapted_qat_for(
      arch_key(arch) + "_pruned",
      [&](NetMode m) { return make_model(arch, cfg_.num_classes, m); }, src,
      train_set(), /*preserve_zeros=*/true);
}

const QuantizedModel& ModelZoo::pruned_quantized(Arch arch) {
  return compiled(arch_key(arch) + "_pruned_int8", pruned_qat(arch),
                  Shape{SynthImageNet::kChannels, SynthImageNet::kHeight,
                        SynthImageNet::kWidth});
}

// ---------------------------------------------------------------------------
// Digit track.
// ---------------------------------------------------------------------------

Sequential& ModelZoo::digit_original() {
  return cached("digit_orig", NetMode::kFloat,
                [&](NetMode m) { return make_digit_net(m); },
                [&](Sequential& m) {
                  init_parameters(m, 4242);
                  TrainConfig cfg;
                  cfg.epochs = 10;
                  cfg.lr = 0.05f;
                  cfg.seed = 7;
                  train_classifier(m, digit_train(), cfg);
                });
}

Sequential& ModelZoo::digit_qat() {
  // The digit task converges so cleanly that the default QAT rate
  // leaves the twin nearly identical to the original; the Figure 4
  // representation study needs measurable divergence, so the digit
  // track QAT-finetunes with a higher rate.
  return adapted_qat_for("digit",
                         [&](NetMode m) { return make_digit_net(m); },
                         digit_original(), digit_train(),
                         /*preserve_zeros=*/false, /*lr_override=*/0.01f);
}

const QuantizedModel& ModelZoo::digit_quantized() {
  return compiled("digit_int8", digit_qat(),
                  Shape{SynthDigits::kChannels, SynthDigits::kHeight,
                        SynthDigits::kWidth});
}

// ---------------------------------------------------------------------------
// Face track.
// ---------------------------------------------------------------------------

Sequential& ModelZoo::face_original() {
  return cached("face_orig", NetMode::kFloat,
                [&](NetMode m) { return make_face_net(cfg_.face_identities, m); },
                [&](Sequential& m) {
                  init_parameters(m, 555);
                  TrainConfig cfg;
                  cfg.epochs = cfg_.float_epochs;
                  cfg.lr = 0.05f;
                  cfg.lr_decay_epochs = cfg_.float_epochs / 2;
                  cfg.seed = 9;
                  cfg.verbose = cfg_.verbose;
                  train_classifier(m, face_train(), cfg);
                });
}

Sequential& ModelZoo::face_qat() {
  return adapted_qat_for(
      "face", [&](NetMode m) { return make_face_net(cfg_.face_identities, m); },
      face_original(), face_train(), /*preserve_zeros=*/false);
}

const QuantizedModel& ModelZoo::face_quantized() {
  return compiled("face_int8", face_qat(),
                  Shape{SynthFaces::kChannels, SynthFaces::kHeight,
                        SynthFaces::kWidth});
}

// ---------------------------------------------------------------------------
// Robust track.
// ---------------------------------------------------------------------------

Sequential& ModelZoo::robust_original() {
  return cached("robust_orig", NetMode::kFloat,
                [&](NetMode m) { return make_model(Arch::kResNet, cfg_.num_classes, m); },
                [&](Sequential& m) {
                  init_parameters(m, 777);
                  RobustTrainConfig rcfg;
                  rcfg.train.epochs = cfg_.robust_epochs;
                  rcfg.train.lr = 0.05f;
                  rcfg.train.seed = 13;
                  rcfg.train.verbose = cfg_.verbose;
                  adversarial_train(m, train_set(), rcfg);
                });
}

Sequential& ModelZoo::robust_qat() {
  // The robust model is deliberately under-converged (adversarial
  // training is expensive); a standard-rate QAT finetune on clean data
  // would "heal" it and create an artificially divergent twin. Use a
  // near-zero rate: quantize, barely touch the weights — matching the
  // paper's §5.5 flow of quantizing the robust model as-is.
  return adapted_qat_for(
      "robust",
      [&](NetMode m) { return make_model(Arch::kResNet, cfg_.num_classes, m); },
      robust_original(), train_set(), /*preserve_zeros=*/false,
      /*lr_override=*/0.0002f);
}

const QuantizedModel& ModelZoo::robust_quantized() {
  return compiled("robust_int8", robust_qat(),
                  Shape{SynthImageNet::kChannels, SynthImageNet::kHeight,
                        SynthImageNet::kWidth});
}

// ---------------------------------------------------------------------------

ModelFn ModelZoo::fn(Sequential& m) {
  m.set_training(false);
  return [&m](const Tensor& x) { return m.forward(x); };
}

ModelFn ModelZoo::fn(const QuantizedModel& m) {
  return [&m](const Tensor& x) { return m.forward(x); };
}

}  // namespace diva
