// Plain-text table printer for the bench harnesses: aligned columns,
// a title banner, and a "paper=" annotation convention so every bench
// prints the measured value next to the paper's reported range.
#pragma once

#include <string>
#include <vector>

namespace diva {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds a row (cells are stringified by the caller).
  void add_row(std::vector<std::string> cells);

  /// Renders the aligned table to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a section banner:  === title ===
void banner(const std::string& title);

/// Formats a float with fixed precision, e.g. fmt(97.25, 1) -> "97.2".
std::string fmt(double value, int decimals = 1);

/// Formats "measured (paper: X)" annotations.
std::string with_paper(double measured, const std::string& paper_note,
                       int decimals = 1);

}  // namespace diva
