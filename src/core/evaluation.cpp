#include "core/evaluation.h"

#include <algorithm>

#include "metrics/dssim.h"
#include "tensor/tensor_ops.h"

namespace diva {

EvasionResult evaluate_evasion(const ModelFn& orig, const ModelFn& adapted,
                               const Tensor& natural, const Tensor& adv,
                               const std::vector<int>& labels) {
  DIVA_CHECK(natural.shape() == adv.shape(), "natural/adv shape mismatch");
  const std::int64_t n = natural.dim(0);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");

  const Tensor logits_o = orig(adv);
  const Tensor logits_a = adapted(adv);
  const auto pred_o = argmax_rows(logits_o);
  const auto pred_a = argmax_rows(logits_a);
  const int k = static_cast<int>(std::min<std::int64_t>(5, logits_o.dim(1)));
  const auto top5_o = topk_rows(logits_o, k);

  EvasionResult r;
  r.total = static_cast<int>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    const bool orig_ok = pred_o[static_cast<std::size_t>(i)] == y;
    const bool adapted_fooled = pred_a[static_cast<std::size_t>(i)] != y;
    r.orig_preserved += orig_ok;
    r.adapted_fooled += adapted_fooled;
    if (orig_ok && adapted_fooled) ++r.top1_success;
    if (orig_ok) {
      const auto& t5 = top5_o[static_cast<std::size_t>(i)];
      const bool in_top5 =
          std::find(t5.begin(), t5.end(),
                    pred_a[static_cast<std::size_t>(i)]) != t5.end();
      if (!in_top5) ++r.top5_success;
    }
  }

  r.conf_delta_natural = confidence_delta(orig, adapted, natural, labels);
  r.conf_delta_adv = confidence_delta(orig, adapted, adv, labels);

  // DSSIM over each image pair.
  const std::int64_t per = natural.numel() / n;
  double total_dssim = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    Tensor a(Shape{natural.dim(1), natural.dim(2), natural.dim(3)});
    Tensor b(a.shape());
    std::copy_n(natural.raw() + i * per, per, a.raw());
    std::copy_n(adv.raw() + i * per, per, b.raw());
    const float d = dssim(a, b);
    r.max_dssim = std::max(r.max_dssim, d);
    total_dssim += d;
  }
  r.mean_dssim = static_cast<float>(total_dssim / n);
  return r;
}

OutcomeBreakdown outcome_breakdown(const ModelFn& orig, const ModelFn& adapted,
                                   const Tensor& images,
                                   const std::vector<int>& labels) {
  const auto pred_o = argmax_rows(orig(images));
  const auto pred_a = argmax_rows(adapted(images));
  OutcomeBreakdown b;
  b.total = static_cast<int>(labels.size());
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const bool oc = pred_o[i] == labels[i];
    const bool ac = pred_a[i] == labels[i];
    if (oc && ac) ++b.both_correct;
    if (oc && !ac) ++b.orig_correct_adapted_wrong;
    if (!oc && !ac) ++b.both_wrong;
    if (!oc && ac) ++b.orig_wrong_adapted_correct;
  }
  return b;
}

std::vector<int> select_correct(const std::vector<ModelFn>& models,
                                const Dataset& pool, int per_class) {
  DIVA_CHECK(!models.empty(), "select_correct: no models");
  std::vector<std::vector<int>> preds;
  preds.reserve(models.size());
  for (const auto& m : models) preds.push_back(predict(m, pool));

  std::vector<int> per_class_count(static_cast<std::size_t>(pool.num_classes),
                                   0);
  std::vector<int> out;
  for (std::int64_t i = 0; i < pool.size(); ++i) {
    const int y = pool.labels[static_cast<std::size_t>(i)];
    if (per_class_count[static_cast<std::size_t>(y)] >= per_class) continue;
    bool all_ok = true;
    for (const auto& p : preds) {
      if (p[static_cast<std::size_t>(i)] != y) {
        all_ok = false;
        break;
      }
    }
    if (all_ok) {
      out.push_back(static_cast<int>(i));
      ++per_class_count[static_cast<std::size_t>(y)];
    }
  }
  return out;
}

}  // namespace diva
