// Shared experiment parameters for the bench harnesses.
//
// The perturbation budget is calibrated to the paper's *operating
// point* rather than its raw epsilon: on 224x224 ImageNet models,
// epsilon = 8/255 puts the baseline PGD attack at ~98% success against
// the adapted model; on this library's 32x32 low-capacity models the
// same raw epsilon leaves PGD below 70%, so the benches use
// epsilon = 16/255 / alpha = 2/255 / t = 20, which restores PGD
// attack-only success to the paper's ~90%+ regime (see EXPERIMENTS.md
// for the calibration sweep).
#pragma once

#include "attack/attack.h"
#include "core/zoo.h"

namespace diva {

struct ExperimentDefaults {
  /// Attack budget used by every table/figure bench unless the paper
  /// varies it (Fig. 6d varies steps; Fig. 7 varies c).
  static AttackConfig attack() {
    AttackConfig cfg;
    cfg.epsilon = 16.0f / 255.0f;
    cfg.alpha = 2.0f / 255.0f;
    cfg.steps = 20;
    cfg.random_start = false;  // paper: natural-sample initialization
    return cfg;
  }

  /// Default DIVA balance (paper default, §4.2).
  static constexpr float kC = 1.0f;

  /// Eval-set size: per-class cap on correctly-classified samples
  /// (paper uses 3 per class over 1000 classes; we use more per class
  /// over fewer classes to keep the sample count meaningful).
  static constexpr int kEvalPerClass = 6;

  static ZooConfig zoo() { return ZooConfig{}; }
};

}  // namespace diva
