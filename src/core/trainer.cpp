#include "core/trainer.h"

#include <cstdio>

#include "nn/loss.h"
#include "nn/optimizer.h"

namespace diva {

float train_classifier(Sequential& model, const Dataset& train,
                       const TrainConfig& cfg) {
  DIVA_CHECK(train.size() > 0, "empty training set");
  Sgd opt(model.named_parameters(), cfg.lr, cfg.momentum, cfg.weight_decay);
  DataLoader loader(train, cfg.batch_size, cfg.seed);
  const std::int64_t steps = loader.batches_per_epoch();

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (cfg.lr_decay_epochs > 0 && epoch > 0 &&
        epoch % cfg.lr_decay_epochs == 0) {
      opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    model.set_training(true);
    double epoch_loss = 0.0;
    for (std::int64_t step = 0; step < steps; ++step) {
      const Batch batch = loader.next();
      opt.zero_grad();
      const Tensor logits = model.forward(batch.images);
      LossGrad lg = softmax_cross_entropy(logits, batch.labels);
      model.backward(lg.dlogits);
      opt.step();
      if (cfg.post_step) cfg.post_step();
      epoch_loss += lg.loss;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / steps);
    if (cfg.verbose) {
      std::printf("  epoch %2d/%d  loss %.4f\n", epoch + 1, cfg.epochs,
                  last_epoch_loss);
    }
  }
  model.set_training(false);
  return last_epoch_loss;
}

}  // namespace diva
