// ModelZoo — the experiment context: datasets plus every trained model
// the paper's evaluation needs, built on demand and cached on disk so
// repeated bench runs skip training.
//
// Model inventory per ImageNet-track architecture (ResNet / MobileNet /
// DenseNet), mirroring §5.1 "Models":
//   original            float model (Conv+BN), trained on the train split
//   adapted_qat         QAT twin (fold -> calibrate -> QAT finetune);
//                       differentiable stand-in for the int8 model and
//                       the gradient source for attacks (paper §6 uses
//                       QAT gradients the same way)
//   quantized           integer-only deployed model compiled from the QAT
//                       twin (the "TFLite" artifact)
//   surrogate_original  semi-blackbox surrogate of the original model,
//                       distilled from the adapted model on a disjoint
//                       split (§4.3)
//   surrogate_adapted_* blackbox surrogate pair (§4.4)
//   pruned              magnitude-pruned + finetuned float model (§5.6)
//   pruned_qat/quantized  pruned-then-quantized track (§5.6)
// plus the digit track (Fig. 4), face track (§6) and robust track (§5.5).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "core/trainer.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "quant/quantized_model.h"

namespace diva {

struct ZooConfig {
  std::string cache_dir = ".cache/models";
  int num_classes = 16;
  int train_per_class = 50;
  int val_per_class = 12;
  int surrogate_per_class = 25;
  std::uint64_t data_seed = 0xD1AF00D;
  int float_epochs = 10;
  int qat_epochs = 2;
  /// QAT finetune learning rate. Calibrated so the adapted model drifts
  /// from the original about as much (relative to the attack budget) as
  /// the paper's 2-epoch tfmot QAT drifts ResNet50 — see EXPERIMENTS.md.
  float qat_lr = 0.002f;
  int distill_epochs = 8;
  float prune_sparsity = 0.6f;
  // Face track (§6).
  int face_identities = 30;
  int face_train_per_class = 20;
  int face_val_per_class = 8;
  // Robust track (§5.5) — adversarial training is expensive; short run.
  int robust_epochs = 4;
  bool verbose = true;
};

class ModelZoo {
 public:
  explicit ModelZoo(ZooConfig cfg = {});
  ~ModelZoo();

  const ZooConfig& config() const { return cfg_; }

  // Datasets (lazily generated, deterministic in data_seed).
  const Dataset& train_set();
  const Dataset& val_set();
  const Dataset& surrogate_set();
  const Dataset& digit_train();
  const Dataset& digit_val();
  const Dataset& face_train();
  const Dataset& face_val();

  // ImageNet track.
  Sequential& original(Arch arch);
  Sequential& adapted_qat(Arch arch);
  const QuantizedModel& quantized(Arch arch);
  Sequential& surrogate_original(Arch arch);
  Sequential& surrogate_adapted_qat(Arch arch);
  Sequential& pruned(Arch arch);
  Sequential& pruned_qat(Arch arch);
  const QuantizedModel& pruned_quantized(Arch arch);

  // Digit track.
  Sequential& digit_original();
  Sequential& digit_qat();
  const QuantizedModel& digit_quantized();

  // Face track.
  Sequential& face_original();
  Sequential& face_qat();
  const QuantizedModel& face_quantized();

  // Robust track (ResNet, as in the paper).
  Sequential& robust_original();
  Sequential& robust_qat();
  const QuantizedModel& robust_quantized();

  /// Eval-mode forward closure for metrics/evaluation.
  static ModelFn fn(Sequential& m);
  static ModelFn fn(const QuantizedModel& m);

 private:
  using Factory = std::function<std::unique_ptr<Sequential>(NetMode)>;

  std::string cache_path(const std::string& key) const;
  bool try_load(const std::string& key, Sequential& model) const;
  void store(const std::string& key, Sequential& model) const;
  void log(const std::string& msg) const;

  /// Generic get-or-build with disk cache.
  Sequential& cached(const std::string& key, NetMode mode,
                     const Factory& factory,
                     const std::function<void(Sequential&)>& build);

  Sequential& adapted_qat_for(const std::string& prefix,
                              const Factory& factory, Sequential& source,
                              const Dataset& data, bool preserve_zeros,
                              float lr_override = 0.0f);
  const QuantizedModel& compiled(const std::string& key, Sequential& qat,
                                 const Shape& image_shape);

  ZooConfig cfg_;
  std::optional<Dataset> train_, val_, surrogate_;
  std::optional<Dataset> digit_train_, digit_val_;
  std::optional<Dataset> face_train_, face_val_;
  std::map<std::string, std::unique_ptr<Sequential>> models_;
  std::map<std::string, QuantizedModel> quantized_;
};

}  // namespace diva
