// Evasive-attack evaluation implementing the paper's success criteria
// (§5.1):
//   A successful evasive attack requires BOTH
//     (a) the original model still classifies the perturbed image
//         correctly, and
//     (b) the adapted model, which classified the natural image
//         correctly, misclassifies the perturbed one.
//   top-1 success: (a) && (b).
//   top-5 success: original correct AND the adapted model's top-1
//     prediction does not even appear in the original model's top-5.
//   attack-only success (Table 2's evasion-cost metric): (b) alone.
//
// Evaluation sets are drawn from samples classified correctly by every
// relevant model, matching the paper's dataset construction.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "metrics/metrics.h"

namespace diva {

struct EvasionResult {
  int total = 0;
  int top1_success = 0;
  int top5_success = 0;
  int adapted_fooled = 0;   // (b) alone — Table 2 metric
  int orig_preserved = 0;   // (a) alone
  float conf_delta_natural = 0.0f;  // % on natural images
  float conf_delta_adv = 0.0f;      // % on adversarial images (Fig. 6c)
  float max_dssim = 0.0f;
  float mean_dssim = 0.0f;

  float top1_rate() const {
    return total ? 100.0f * static_cast<float>(top1_success) / total : 0.0f;
  }
  float top5_rate() const {
    return total ? 100.0f * static_cast<float>(top5_success) / total : 0.0f;
  }
  float attack_only_rate() const {
    return total ? 100.0f * static_cast<float>(adapted_fooled) / total : 0.0f;
  }
};

/// Scores an attack given natural and adversarial image batches. All
/// samples are assumed correctly classified by both models on the
/// natural images (use select_correct to build such sets).
EvasionResult evaluate_evasion(const ModelFn& orig, const ModelFn& adapted,
                               const Tensor& natural, const Tensor& adv,
                               const std::vector<int>& labels);

/// Outcome categories of Figure 1.
struct OutcomeBreakdown {
  int both_correct = 0;
  int orig_correct_adapted_wrong = 0;  // the evasive-success cell
  int both_wrong = 0;
  int orig_wrong_adapted_correct = 0;
  int total = 0;
};

OutcomeBreakdown outcome_breakdown(const ModelFn& orig, const ModelFn& adapted,
                                   const Tensor& images,
                                   const std::vector<int>& labels);

/// Indices of pool samples that every model classifies correctly,
/// capped at `per_class` samples per class (paper: three per class).
std::vector<int> select_correct(const std::vector<ModelFn>& models,
                                const Dataset& pool, int per_class);

}  // namespace diva
