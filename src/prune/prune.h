// Magnitude pruning with a polynomial sparsity schedule — the tfmot
// Keras weight-pruning behavior the paper uses for its second
// edge-adaptation technique (§5.6).
//
// Pruning is layer-wise: within every prunable weight tensor (conv and
// dense weights, rank >= 2), the smallest-magnitude fraction is masked
// to zero. During finetuning the schedule raises sparsity from 0 to the
// target following s_t = s_f * (1 - (1 - t/T)^3), and masks are
// re-applied after every optimizer step so pruned weights stay zero.
#pragma once

#include <cstdint>
#include <vector>

#include "nn/module.h"

namespace diva {

struct PruneConfig {
  float target_sparsity = 0.5f;
  /// Optimizer steps over which sparsity ramps from 0 to target.
  std::int64_t ramp_steps = 200;
  /// Re-select masks every this many steps during the ramp.
  std::int64_t update_every = 20;
};

class MagnitudePruner {
 public:
  /// Attaches to every prunable weight in the model.
  MagnitudePruner(Module& model, PruneConfig cfg);

  /// Builds a pruner whose masks are the existing zero patterns of the
  /// model — used to preserve sparsity through later pipelines
  /// (e.g. QAT finetuning of an already-pruned model).
  static MagnitudePruner from_existing_zeros(Module& model);

  /// Call after every optimizer step: advances the schedule, refreshes
  /// masks when due, and re-applies them.
  void step();

  /// Zeroes masked weights (idempotent).
  void apply_masks();

  /// Recomputes masks at the given sparsity and applies them.
  void prune_to(float sparsity);

  /// Scheduled sparsity at the current step.
  float scheduled_sparsity() const;

  /// Measured fraction of zeros across prunable weights.
  float actual_sparsity() const;

  std::size_t num_prunable_tensors() const { return prunable_.size(); }

 private:
  explicit MagnitudePruner(Module& model);
  void select_masks(float sparsity);

  PruneConfig cfg_;
  std::int64_t step_count_ = 0;
  std::vector<Parameter*> prunable_;
  std::vector<std::vector<std::uint8_t>> masks_;  // 1 = keep
};

}  // namespace diva
