#include "prune/prune.h"

#include <algorithm>
#include <cmath>

namespace diva {

namespace {

std::vector<Parameter*> find_prunable(Module& model) {
  std::vector<Parameter*> out;
  model.visit([&out](Module& m) {
    for (auto& [name, p] : m.local_parameters()) {
      if (p->trainable && p->value.rank() >= 2 &&
          name.ends_with("weight")) {
        out.push_back(p);
      }
    }
  });
  return out;
}

}  // namespace

MagnitudePruner::MagnitudePruner(Module& model)
    : prunable_(find_prunable(model)) {
  DIVA_CHECK(!prunable_.empty(), "model has no prunable weights");
  masks_.resize(prunable_.size());
  for (std::size_t i = 0; i < prunable_.size(); ++i) {
    masks_[i].assign(static_cast<std::size_t>(prunable_[i]->value.numel()), 1);
  }
}

MagnitudePruner::MagnitudePruner(Module& model, PruneConfig cfg)
    : MagnitudePruner(model) {
  DIVA_CHECK(cfg.target_sparsity >= 0.0f && cfg.target_sparsity < 1.0f,
             "target sparsity must be in [0, 1)");
  DIVA_CHECK(cfg.ramp_steps > 0 && cfg.update_every > 0, "bad prune schedule");
  cfg_ = cfg;
}

MagnitudePruner MagnitudePruner::from_existing_zeros(Module& model) {
  MagnitudePruner p(model);
  p.cfg_.target_sparsity = 0.0f;  // schedule disabled; masks are frozen
  p.cfg_.ramp_steps = 1;
  p.step_count_ = 1;  // past the ramp
  for (std::size_t i = 0; i < p.prunable_.size(); ++i) {
    const Tensor& w = p.prunable_[i]->value;
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      p.masks_[i][static_cast<std::size_t>(j)] = w[j] != 0.0f ? 1 : 0;
    }
  }
  return p;
}

float MagnitudePruner::scheduled_sparsity() const {
  const float t = std::min<float>(
      1.0f, static_cast<float>(step_count_) /
                static_cast<float>(cfg_.ramp_steps));
  const float keep = 1.0f - t;
  return cfg_.target_sparsity * (1.0f - keep * keep * keep);
}

void MagnitudePruner::select_masks(float sparsity) {
  for (std::size_t i = 0; i < prunable_.size(); ++i) {
    const Tensor& w = prunable_[i]->value;
    const std::int64_t n = w.numel();
    const auto cut = static_cast<std::int64_t>(
        std::floor(sparsity * static_cast<float>(n)));
    auto& mask = masks_[i];
    if (cut <= 0) {
      std::fill(mask.begin(), mask.end(), 1);
      continue;
    }
    // Threshold = cut-th smallest magnitude (nth_element on a copy).
    std::vector<float> mags(static_cast<std::size_t>(n));
    for (std::int64_t j = 0; j < n; ++j) mags[static_cast<std::size_t>(j)] = std::fabs(w[j]);
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(), sorted.begin() + (cut - 1), sorted.end());
    const float threshold = sorted[static_cast<std::size_t>(cut - 1)];
    std::int64_t pruned = 0;
    for (std::int64_t j = 0; j < n; ++j) {
      const bool prune = mags[static_cast<std::size_t>(j)] <= threshold &&
                         pruned < cut;
      if (prune) ++pruned;
      mask[static_cast<std::size_t>(j)] = prune ? 0 : 1;
    }
  }
}

void MagnitudePruner::apply_masks() {
  for (std::size_t i = 0; i < prunable_.size(); ++i) {
    Tensor& w = prunable_[i]->value;
    for (std::int64_t j = 0; j < w.numel(); ++j) {
      if (masks_[i][static_cast<std::size_t>(j)] == 0) w[j] = 0.0f;
    }
  }
}

void MagnitudePruner::prune_to(float sparsity) {
  select_masks(sparsity);
  apply_masks();
}

void MagnitudePruner::step() {
  ++step_count_;
  if (cfg_.target_sparsity > 0.0f && step_count_ <= cfg_.ramp_steps &&
      step_count_ % cfg_.update_every == 0) {
    select_masks(scheduled_sparsity());
  }
  apply_masks();
}

float MagnitudePruner::actual_sparsity() const {
  std::int64_t zeros = 0, total = 0;
  for (const Parameter* p : prunable_) {
    for (std::int64_t j = 0; j < p->value.numel(); ++j) {
      zeros += p->value[j] == 0.0f ? 1 : 0;
    }
    total += p->value.numel();
  }
  return static_cast<float>(zeros) / static_cast<float>(total);
}

}  // namespace diva
