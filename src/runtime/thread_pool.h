// Minimal work-stealing-free thread pool plus parallel_for.
//
// Used by the tensor and kernel code to parallelize batched convolutions
// and matrix multiplies across CPU cores. The pool is created once per
// process (see global_pool()); parallel_for blocks until all chunks
// complete, and rethrows the first exception raised by any chunk.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace diva {

/// Fixed-size pool of worker threads executing std::function jobs.
class ThreadPool {
 public:
  /// Creates `threads` workers (defaults to hardware concurrency, min 1).
  explicit ThreadPool(unsigned threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a job for asynchronous execution.
  void submit(std::function<void()> job);

  /// Number of worker threads.
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide pool used by parallel_for. Lazily constructed.
ThreadPool& global_pool();

/// Runs fn(i) for i in [begin, end) across the global pool.
///
/// The range is split into contiguous chunks of at least `grain`
/// iterations. Falls back to serial execution for small ranges.
/// Blocks until every iteration has completed; rethrows the first
/// exception thrown by any chunk.
void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain = 1);

/// Chunked variant: fn(chunk_begin, chunk_end) per chunk, fewer closures.
void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain = 1);

}  // namespace diva
