// Environment-variable override helpers.
//
// One parsing convention for every DIVA_* knob — benches, the serve
// daemon, and CI all read overrides through these instead of ad-hoc
// std::getenv calls, so "unset", "empty", "0", and malformed values
// mean the same thing everywhere:
//   flags    unset/empty/"0" -> false, anything else -> true
//   numbers  unset/empty/unparseable -> fallback
//   strings  unset -> fallback (empty string is a valid override)
//
// Size/count knobs (worker counts, probe rows, backlogs, batch windows)
// must never go zero or negative from a typo'd override: read them
// through env_int_positive / env_int_nonneg, which clamp out-of-range
// values back to the fallback with a stderr warning instead of feeding
// them into allocation sizes and loop bounds.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace diva {

/// Raw lookup; nullptr when unset.
inline const char* env_raw(const char* name) { return std::getenv(name); }

/// Boolean knob: set to anything but "" or "0" means true.
inline bool env_flag(const char* name, bool fallback = false) {
  const char* v = env_raw(name);
  if (v == nullptr) return fallback;
  return *v != '\0' && std::string(v) != "0";
}

/// Integer knob; falls back on unset or unparseable values.
inline long long env_int(const char* name, long long fallback) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Floating-point knob; falls back on unset or unparseable values.
inline double env_double(const char* name, double fallback) {
  const char* v = env_raw(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const double parsed = std::strtod(v, &end);
  return (end != nullptr && *end == '\0') ? parsed : fallback;
}

/// Count knob that must be >= 1 (worker counts, shard sizes, probe row
/// caps, ...). Parsed values below 1 are rejected with a stderr warning
/// and the fallback is used instead. The fallback itself is trusted.
inline long long env_int_positive(const char* name, long long fallback) {
  const long long v = env_int(name, fallback);
  if (v < 1) {
    std::fprintf(stderr,
                 "[diva] %s=%lld is not a positive count; using %lld\n", name,
                 v, fallback);
    return fallback;
  }
  return v;
}

/// Count knob that must be >= 0 (durations, windows, backlogs where 0
/// means "off"). Negative parsed values are rejected with a stderr
/// warning and the fallback is used instead.
inline long long env_int_nonneg(const char* name, long long fallback) {
  const long long v = env_int(name, fallback);
  if (v < 0) {
    std::fprintf(stderr, "[diva] %s=%lld is negative; using %lld\n", name, v,
                 fallback);
    return fallback;
  }
  return v;
}

/// String knob; empty string is a valid override, only unset falls back.
inline std::string env_string(const char* name, std::string fallback) {
  const char* v = env_raw(name);
  return v != nullptr ? std::string(v) : std::move(fallback);
}

}  // namespace diva
