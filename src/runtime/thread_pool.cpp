#include "runtime/thread_pool.h"

#include <pthread.h>

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>

namespace diva {
namespace {
// Set while a pool worker is executing a job. Nested parallel_for calls
// from inside a worker run serially instead of enqueueing (which could
// deadlock if every worker blocked waiting on queued chunks).
thread_local bool t_inside_worker = false;
}  // namespace

ThreadPool::ThreadPool(unsigned threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
      if (stopping_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    t_inside_worker = true;
    job();
    t_inside_worker = false;
  }
}

namespace {

// The global pool lives behind a pointer so a forked child can replace
// it: pool threads do not survive fork(), and a parallel_for against
// the parent's dead pool would block forever (the attack-serve workers
// are forked processes that run tensor ops). The atfork child handler
// abandons the inherited object — touching its mutex/threads would be
// unsafe if the fork happened mid-operation — and builds a fresh pool
// of the same width. The leak is one pool per fork, in processes that
// _exit anyway.
ThreadPool* g_pool = nullptr;
unsigned g_pool_threads = 0;

void rebuild_pool_in_forked_child() {
  if (g_pool != nullptr) g_pool = new ThreadPool(g_pool_threads);
}

}  // namespace

ThreadPool& global_pool() {
  static std::once_flag once;
  std::call_once(once, [] {
    g_pool = new ThreadPool();
    g_pool_threads = g_pool->size();
    ::pthread_atfork(nullptr, nullptr, rebuild_pool_in_forked_child);
  });
  return *g_pool;
}

void parallel_for_chunked(
    std::int64_t begin, std::int64_t end,
    const std::function<void(std::int64_t, std::int64_t)>& fn,
    std::int64_t grain) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (t_inside_worker) {
    fn(begin, end);
    return;
  }
  ThreadPool& pool = global_pool();
  const std::int64_t max_chunks = static_cast<std::int64_t>(pool.size()) * 4;
  std::int64_t chunk = std::max<std::int64_t>(grain, (n + max_chunks - 1) / max_chunks);
  const std::int64_t num_chunks = (n + chunk - 1) / chunk;
  if (num_chunks <= 1) {
    fn(begin, end);
    return;
  }

  std::atomic<std::int64_t> remaining(num_chunks);
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (std::int64_t c = 0; c < num_chunks; ++c) {
    const std::int64_t lo = begin + c * chunk;
    const std::int64_t hi = std::min(end, lo + chunk);
    pool.submit([&, lo, hi] {
      try {
        fn(lo, hi);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (!first_error) first_error = std::current_exception();
      }
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(done_mu);
  done_cv.wait(lock, [&] { return remaining.load() == 0; });
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(std::int64_t begin, std::int64_t end,
                  const std::function<void(std::int64_t)>& fn,
                  std::int64_t grain) {
  parallel_for_chunked(
      begin, end,
      [&fn](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t i = lo; i < hi; ++i) fn(i);
      },
      grain);
}

}  // namespace diva
