// Error handling primitives used across the library.
//
// All user-facing validation goes through DIVA_CHECK, which throws
// diva::Error (derived from std::runtime_error) with file/line context.
// Following the C++ Core Guidelines (E.2), errors are reported by
// exceptions so constructors can fully establish class invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace diva {

/// Exception type thrown by all DIVA_CHECK failures and explicit API errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "DIVA_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}

// Stream-collecting helper so DIVA_CHECK messages can use operator<<.
class MessageStream {
 public:
  template <typename T>
  MessageStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }
  std::string str() const { return os_.str(); }

 private:
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace diva

/// Validates a condition; throws diva::Error with context on failure.
/// Usage: DIVA_CHECK(a == b, "shape mismatch: " << a << " vs " << b);
#define DIVA_CHECK(cond, ...)                                                \
  do {                                                                       \
    if (!(cond)) {                                                           \
      ::diva::detail::check_failed(                                          \
          #cond, __FILE__, __LINE__,                                         \
          (::diva::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__))       \
              .str());                                                       \
    }                                                                        \
  } while (false)

/// Unconditional failure with message.
#define DIVA_FAIL(...)                                                      \
  ::diva::detail::check_failed(                                             \
      "explicit failure", __FILE__, __LINE__,                               \
      (::diva::detail::MessageStream{} __VA_OPT__(<< __VA_ARGS__)).str())
