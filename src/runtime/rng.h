// Deterministic, splittable random number generation.
//
// The library never uses global RNG state: every component that needs
// randomness takes an Rng (or a seed) explicitly, so experiments are
// reproducible bit-for-bit across runs. The engine is xoshiro256++,
// seeded through splitmix64; distributions are implemented in-house
// because std::<distribution> output is not portable across platforms.
#pragma once

#include <cstdint>
#include <span>
#include <utility>

namespace diva {

/// splitmix64 step — used for seeding and cheap hashing of seed material.
inline std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Mixes two 64-bit values into one; used to derive per-stream seeds.
inline std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256++ engine with convenience distributions.
///
/// Satisfies UniformRandomBitGenerator so it can also feed std::shuffle
/// style algorithms, though the members below are preferred for
/// reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5EEDC0DEULL) { reseed(seed); }

  /// Re-initializes the state from a single seed via splitmix64.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }

  /// Next raw 64-bit value.
  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t randint(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded sampling.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = -n % n;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Box-Muller (cached second value).
  float normal();

  /// Normal with mean/sd.
  float normal(float mean, float sd) { return mean + sd * normal(); }

  /// Bernoulli trial with probability p of returning true.
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle of a span.
  template <typename T>
  void shuffle(std::span<T> items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = randint(i);
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  /// Derives an independent child stream; deterministic in (state, tag).
  Rng split(std::uint64_t tag) {
    return Rng(hash_combine(next(), tag));
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
  bool have_cached_normal_ = false;
  float cached_normal_ = 0.0f;
};

}  // namespace diva
