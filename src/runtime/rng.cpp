#include "runtime/rng.h"

#include <cmath>

namespace diva {

float Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller on two uniforms; guard against log(0).
  double u1 = uniform();
  while (u1 <= 1e-300) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = static_cast<float>(r * std::sin(theta));
  have_cached_normal_ = true;
  return static_cast<float>(r * std::cos(theta));
}

}  // namespace diva
