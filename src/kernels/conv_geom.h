// Geometry of a 2-D convolution / pooling window. Lives in the kernel
// layer so both the float (tensor/nn) and int8 (quant) worlds can share
// the im2col lowering and the GEMM-backed kernels without depending on
// each other.
#pragma once

#include <cstdint>

namespace diva {

struct ConvGeom {
  std::int64_t in_c = 0, in_h = 0, in_w = 0;
  std::int64_t kernel_h = 0, kernel_w = 0;
  std::int64_t stride = 1;
  std::int64_t pad = 0;

  std::int64_t out_h() const { return (in_h + 2 * pad - kernel_h) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * pad - kernel_w) / stride + 1; }
};

}  // namespace diva
