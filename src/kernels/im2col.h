// Convolution lowering shared by the float and int8 worlds.
//
// im2col lowers one CHW image into a [C*Kh*Kw, OH*OW] patch matrix so a
// convolution becomes a single GEMM against the [OC, C*Kh*Kw] weight
// matrix. The template is instantiated for float (pad value 0.0f) and
// int8 (pad value = input zero point, which represents real zero on the
// affine grid). col2im is the float-only adjoint used by conv backward.
#pragma once

#include <algorithm>
#include <cstdint>

#include "kernels/conv_geom.h"

namespace diva {

/// Lowers one CHW image to [C*Kh*Kw, OH*OW]; out-of-bounds taps read as
/// `pad_value`. `out` must hold C*Kh*Kw*OH*OW elements.
template <typename T>
void im2col(const T* image, const ConvGeom& g, T pad_value, T* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const T* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        T* orow = out + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + kh;
          if (iy < 0 || iy >= g.in_h) {
            std::fill(orow + y * ow, orow + (y + 1) * ow, pad_value);
            continue;
          }
          const T* irow = chan + iy * g.in_w;
          if (g.pad == 0 && g.stride == 1 && kw + ow <= g.in_w) {
            // Common fast case: contiguous unit-stride row copy.
            std::copy_n(irow + kw, ow, orow + y * ow);
            continue;
          }
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.pad + kw;
            orow[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? irow[ix] : pad_value;
          }
        }
      }
    }
  }
}

/// Adjoint of im2col: scatters a patch matrix back into a CHW image
/// (accumulating). `image` must hold C*H*W floats, pre-zeroed by caller.
void col2im(const float* cols, const ConvGeom& g, float* image);

}  // namespace diva
