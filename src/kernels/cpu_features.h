// Host SIMD capability probe for the kernel-runtime ISA dispatch.
//
// One CPUID read (via __builtin_cpu_supports, which also verifies OS
// XSAVE state for the wide register files), cached for the process
// lifetime. The kernel dispatch layer (kernel_dispatch.h) turns these
// flags into a tier; everything else should go through the tier, not
// the raw flags — the flags exist so benches can record exactly what
// hardware a JSON row was measured on.
#pragma once

#include <string>

namespace diva {

/// x86 SIMD features the kernel tiers care about. All false on non-x86
/// builds or compilers without __builtin_cpu_supports.
struct CpuFeatures {
  bool avx2 = false;
  bool fma = false;
  bool avx512f = false;
  bool avx512bw = false;
  bool avx512vl = false;
  bool avx512vnni = false;
};

/// The host CPU's features; probed on first call, cached after.
const CpuFeatures& cpu_features();

/// Comma-separated detected flags, e.g. "avx2,fma,avx512f,...". Empty
/// on baseline x86-64 (or non-x86) hosts. Recorded in bench JSON rows.
std::string cpu_features_summary();

}  // namespace diva
