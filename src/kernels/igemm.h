// Cache-blocked int8 x int8 -> int32 GEMM with a fused requantization
// epilogue.
//
// Computes out[m,n] = requant(A[m,k] x (B[k,n] - b_zp) + bias[m]) where
// A holds int8 weights (per-row = per-output-channel quantized), B holds
// int8 activations on an affine grid with zero point b_zp (im2col
// panels fill padding with b_zp so padded taps contribute exactly
// zero), accumulation is int32, and the epilogue applies the TFLite
// fixed-point per-row multiplier, output zero point, and activation
// clamp. The zero-point correction is hoisted out of the inner loop:
//   sum_p a[i,p] * (b[p,j] - zp) = raw[i,j] - zp * rowsum_a[i]
// which is exact in integer arithmetic, so results are bit-identical to
// the naive scalar kernels for any loop order or blocking.
//
// The inner microkernel (and the packed-panel layout feeding it) is
// selected at startup by the runtime ISA dispatch (kernel_dispatch.h):
// a scalar int16-widening baseline, AVX2/AVX-512 pmaddwd variants, and
// an AVX-512 VNNI vpdpbusd variant that packs activations as u8
// (b + 128) and folds the offset into the zero-point correction.
// Bit-exactness policy: igemm is integer arithmetic end to end, so
// EVERY tier must be bit-identical to igemm_reference below — this is
// pinned per tier in tests/test_isa_dispatch.cpp.
#pragma once

#include <cstdint>

namespace diva {

/// Per-row requantization epilogue. All pointers have length m.
struct IgemmEpilogue {
  const std::int32_t* bias = nullptr;  // int32 bias at scale s_in*s_w[row]
  const std::int32_t* multiplier = nullptr;  // Q31 fixed-point multiplier
  const int* shift = nullptr;                // power-of-two shift
  std::int32_t out_zp = 0;
  std::int32_t act_min = -128;
  std::int32_t act_max = 127;
};

/// out[m,n] = requant(A[m,k] x (B[k,n] - b_zp)). A has leading dim lda,
/// B ldb, out ldo (all row-major).
void igemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
           std::int64_t ldb, std::int32_t b_zp, const IgemmEpilogue& ep,
           std::int8_t* out, std::int64_t ldo);

/// Naive triple-loop reference with the same epilogue: the pinned
/// bit-exactness anchor every dispatched igemm tier must match exactly.
/// Not a hot path — used by tests and never dispatched.
void igemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const std::int8_t* b, std::int64_t ldb, std::int32_t b_zp,
                     const IgemmEpilogue& ep, std::int8_t* out,
                     std::int64_t ldo);

}  // namespace diva
