#include "kernels/gemm.h"

#include <algorithm>

#include "kernels/workspace.h"
#include "runtime/thread_pool.h"

namespace diva {

namespace {

// Register microkernel footprint and cache blocking. MR*NR floats of
// accumulator fit comfortably in vector registers once the
// compiler vectorizes the NR loop; KC keeps one packed A strip plus one
// packed B strip resident in L1, MC keeps the packed A block in L2.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 64;
constexpr std::int64_t kNc = 512;

/// Reads element (i, j) of the logical matrix backed by `p`.
inline float at(const float* p, std::int64_t ld, bool trans, std::int64_t i,
                std::int64_t j) {
  return trans ? p[j * ld + i] : p[i * ld + j];
}

/// Packs rows [i0, i0+mc) x cols [p0, p0+kc) of logical A into MR-row
/// panels: out[strip][p][r] with zero padding to full MR.
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t i0,
            std::int64_t mc, std::int64_t p0, std::int64_t kc, float* out) {
  for (std::int64_t i = 0; i < mc; i += kMr) {
    const std::int64_t mr = std::min(kMr, mc - i);
    float* panel = out + i * kc;
    if (!trans && mr == kMr) {
      const float* r0 = a + (i0 + i) * lda + p0;
      const float* r1 = r0 + lda;
      const float* r2 = r1 + lda;
      const float* r3 = r2 + lda;
      for (std::int64_t p = 0; p < kc; ++p) {
        panel[p * kMr + 0] = r0[p];
        panel[p * kMr + 1] = r1[p];
        panel[p * kMr + 2] = r2[p];
        panel[p * kMr + 3] = r3[p];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < kMr; ++r) {
        panel[p * kMr + r] =
            r < mr ? at(a, lda, trans, i0 + i + r, p0 + p) : 0.0f;
      }
    }
  }
}

/// Packs rows [p0, p0+kc) x cols [j0, j0+nc) of logical B into NR-col
/// panels: out[strip][p][cc] with zero padding to full NR.
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nc, float* out) {
  for (std::int64_t j = 0; j < nc; j += kNr) {
    const std::int64_t nr = std::min(kNr, nc - j);
    float* panel = out + j * kc;
    if (!trans && nr == kNr) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + j;
        float* dst = panel + p * kNr;
        for (std::int64_t cc = 0; cc < kNr; ++cc) dst[cc] = src[cc];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t cc = 0; cc < kNr; ++cc) {
        panel[p * kNr + cc] =
            cc < nr ? at(b, ldb, trans, p0 + p, j0 + j + cc) : 0.0f;
      }
    }
  }
}

/// acc[MR][NR] += Ap[kc][MR] x Bp[kc][NR]. Plain loops; the NR loop
/// vectorizes and the MR loop unrolls.
inline void micro_kernel(const float* ap, const float* bp, std::int64_t kc,
                         float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kNr;
    const float* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const float av = arow[r];
      float* accrow = acc + r * kNr;
      for (std::int64_t cc = 0; cc < kNr; ++cc) accrow[cc] += av * brow[cc];
    }
  }
}

/// Small-problem fallback: packing costs more than it saves.
void sgemm_small(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, bool trans_a,
                 const float* b, std::int64_t ldb, bool trans_b, float* c,
                 std::int64_t ldc, const SgemmEpilogue& ep) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float bias_i = ep.bias_row != nullptr ? ep.bias_row[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      float base = ep.beta == 0.0f ? 0.0f : crow[j] * ep.beta;
      base += bias_i;
      if (ep.bias_col != nullptr) base += ep.bias_col[j];
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += at(a, lda, trans_a, i, p) * at(b, ldb, trans_b, p, j);
      }
      crow[j] = base + acc;
    }
  }
}

}  // namespace

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
           bool trans_b, float* c, std::int64_t ldc, const SgemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate: only the epilogue applies.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float v = ep.beta == 0.0f ? 0.0f : c[i * ldc + j] * ep.beta;
        if (ep.bias_row != nullptr) v += ep.bias_row[i];
        if (ep.bias_col != nullptr) v += ep.bias_col[j];
        c[i * ldc + j] = v;
      }
    }
    return;
  }
  if (m * n * k < (1 << 13)) {
    sgemm_small(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, ep);
    return;
  }

  auto frame = Workspace::tls().frame();
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t kc_max = std::min(k, kKc);
  const std::int64_t nc_strips = (nc_max + kNr - 1) / kNr;
  float* bpack = frame.alloc<float>(nc_strips * kNr * kc_max);

  for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
    const std::int64_t nc = std::min(kNc, n - j0);
    const std::int64_t strips_n = (nc + kNr - 1) / kNr;
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      const bool first_k = p0 == 0;
      pack_b(b, ldb, trans_b, p0, kc, j0, nc, bpack);

      parallel_for_chunked(0, (m + kMc - 1) / kMc, [&](std::int64_t blk_lo,
                                                       std::int64_t blk_hi) {
        auto wframe = Workspace::tls().frame();
        float* apack = wframe.alloc<float>(((kMc + kMr - 1) / kMr) * kMr * kc);
        float acc[kMr * kNr];
        for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::int64_t i0 = blk * kMc;
          const std::int64_t mc = std::min(kMc, m - i0);
          pack_a(a, lda, trans_a, i0, mc, p0, kc, apack);
          for (std::int64_t js = 0; js < strips_n; ++js) {
            const std::int64_t j = j0 + js * kNr;
            const std::int64_t nr = std::min(kNr, n - j);
            const float* bp = bpack + js * kNr * kc;
            for (std::int64_t is = 0; is * kMr < mc; ++is) {
              const std::int64_t i = i0 + is * kMr;
              const std::int64_t mr = std::min(kMr, m - i);
              std::fill(acc, acc + kMr * kNr, 0.0f);
              micro_kernel(apack + is * kMr * kc, bp, kc, acc);
              for (std::int64_t r = 0; r < mr; ++r) {
                float* crow = c + (i + r) * ldc + j;
                const float* arow = acc + r * kNr;
                if (first_k) {
                  float base = ep.bias_row != nullptr ? ep.bias_row[i + r]
                                                      : 0.0f;
                  if (ep.beta == 0.0f) {
                    for (std::int64_t cc = 0; cc < nr; ++cc) {
                      crow[cc] = base + arow[cc] +
                                 (ep.bias_col != nullptr
                                      ? ep.bias_col[j + cc]
                                      : 0.0f);
                    }
                  } else {
                    for (std::int64_t cc = 0; cc < nr; ++cc) {
                      crow[cc] = crow[cc] * ep.beta + base + arow[cc] +
                                 (ep.bias_col != nullptr
                                      ? ep.bias_col[j + cc]
                                      : 0.0f);
                    }
                  }
                } else {
                  for (std::int64_t cc = 0; cc < nr; ++cc) crow[cc] += arow[cc];
                }
              }
            }
          }
        }
      });
    }
  }
}

}  // namespace diva
