#include "kernels/gemm.h"

#include <algorithm>

#include "kernels/isa_variants.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/kernel_telemetry.h"
#include "kernels/workspace.h"
#include "runtime/thread_pool.h"

namespace diva {

namespace {

/// Counts one sgemm call: logical MACs plus panel bytes (analytic — the
/// same ceil arithmetic the pack loops run, so hot loops stay clean).
void count_sgemm(const char* tier, std::int64_t macs,
                 std::int64_t packed_bytes) {
  if (!telemetry::enabled()) return;
  thread_local const char* t_tier = nullptr;
  thread_local detail::KernelTierCounters t_c;
  if (t_tier != tier) {
    t_c = detail::make_kernel_tier_counters("sgemm", tier);
    t_tier = tier;
  }
  t_c.calls->add(1);
  t_c.macs->add(static_cast<std::uint64_t>(macs));
  t_c.packed_bytes->add(static_cast<std::uint64_t>(packed_bytes));
}

// Cache blocking (shared by every tier): KC keeps one packed A strip
// plus one packed B strip resident in L1, MC keeps the packed A block
// in L2. The register tile (MR x NR) is the dispatched variant's.
constexpr std::int64_t kKc = 256;
constexpr std::int64_t kMc = 64;
constexpr std::int64_t kNc = 512;

/// Reads element (i, j) of the logical matrix backed by `p`.
inline float at(const float* p, std::int64_t ld, bool trans, std::int64_t i,
                std::int64_t j) {
  return trans ? p[j * ld + i] : p[i * ld + j];
}

/// Packs rows [i0, i0+mc) x cols [p0, p0+kc) of logical A into MR-row
/// panels: out[strip][p][r] with zero padding to full MR.
void pack_a(const float* a, std::int64_t lda, bool trans, std::int64_t i0,
            std::int64_t mc, std::int64_t p0, std::int64_t kc,
            std::int64_t vmr, float* out) {
  for (std::int64_t i = 0; i < mc; i += vmr) {
    const std::int64_t mr = std::min(vmr, mc - i);
    float* panel = out + i * kc;
    if (!trans && mr == vmr) {
      const float* rows = a + (i0 + i) * lda + p0;
      for (std::int64_t p = 0; p < kc; ++p) {
        for (std::int64_t r = 0; r < vmr; ++r) {
          panel[p * vmr + r] = rows[r * lda + p];
        }
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t r = 0; r < vmr; ++r) {
        panel[p * vmr + r] =
            r < mr ? at(a, lda, trans, i0 + i + r, p0 + p) : 0.0f;
      }
    }
  }
}

/// Packs rows [p0, p0+kc) x cols [j0, j0+nc) of logical B into NR-col
/// panels: out[strip][p][cc] with zero padding to full NR.
void pack_b(const float* b, std::int64_t ldb, bool trans, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nc,
            std::int64_t vnr, float* out) {
  for (std::int64_t j = 0; j < nc; j += vnr) {
    const std::int64_t nr = std::min(vnr, nc - j);
    float* panel = out + j * kc;
    if (!trans && nr == vnr) {
      for (std::int64_t p = 0; p < kc; ++p) {
        const float* src = b + (p0 + p) * ldb + j0 + j;
        float* dst = panel + p * vnr;
        for (std::int64_t cc = 0; cc < vnr; ++cc) dst[cc] = src[cc];
      }
      continue;
    }
    for (std::int64_t p = 0; p < kc; ++p) {
      for (std::int64_t cc = 0; cc < vnr; ++cc) {
        panel[p * vnr + cc] =
            cc < nr ? at(b, ldb, trans, p0 + p, j0 + j + cc) : 0.0f;
      }
    }
  }
}

// Scalar (baseline x86-64) microkernel: 4x32 tile written as plain
// loops the compiler auto-vectorizes. Pinned as the kScalar tier.
constexpr std::int64_t kScalarMr = 4;
constexpr std::int64_t kScalarNr = 32;

void micro_kernel_scalar(const float* ap, const float* bp, std::int64_t kc,
                         float* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const float* brow = bp + p * kScalarNr;
    const float* arow = ap + p * kScalarMr;
    for (std::int64_t r = 0; r < kScalarMr; ++r) {
      const float av = arow[r];
      float* accrow = acc + r * kScalarNr;
      for (std::int64_t cc = 0; cc < kScalarNr; ++cc) {
        accrow[cc] += av * brow[cc];
      }
    }
  }
}

/// Small-problem fallback: packing costs more than it saves. Stays
/// scalar at every tier, so tiny sgemms are tier-invariant.
void sgemm_small(std::int64_t m, std::int64_t n, std::int64_t k,
                 const float* a, std::int64_t lda, bool trans_a,
                 const float* b, std::int64_t ldb, bool trans_b, float* c,
                 std::int64_t ldc, const SgemmEpilogue& ep) {
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    const float bias_i = ep.bias_row != nullptr ? ep.bias_row[i] : 0.0f;
    for (std::int64_t j = 0; j < n; ++j) {
      float base = ep.beta == 0.0f ? 0.0f : crow[j] * ep.beta;
      base += bias_i;
      if (ep.bias_col != nullptr) base += ep.bias_col[j];
      float acc = 0.0f;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += at(a, lda, trans_a, i, p) * at(b, ldb, trans_b, p, j);
      }
      crow[j] = base + acc;
    }
  }
}

}  // namespace

namespace detail {

SgemmVariant sgemm_variant_scalar() {
  return {"scalar", kScalarMr, kScalarNr, micro_kernel_scalar};
}

}  // namespace detail

void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
           bool trans_b, float* c, std::int64_t ldc, const SgemmEpilogue& ep) {
  if (m <= 0 || n <= 0) return;
  if (k <= 0) {
    // Degenerate: only the epilogue applies.
    for (std::int64_t i = 0; i < m; ++i) {
      for (std::int64_t j = 0; j < n; ++j) {
        float v = ep.beta == 0.0f ? 0.0f : c[i * ldc + j] * ep.beta;
        if (ep.bias_row != nullptr) v += ep.bias_row[i];
        if (ep.bias_col != nullptr) v += ep.bias_col[j];
        c[i * ldc + j] = v;
      }
    }
    return;
  }
  if (m * n * k < (1 << 13)) {
    sgemm_small(m, n, k, a, lda, trans_a, b, ldb, trans_b, c, ldc, ep);
    count_sgemm("scalar", m * n * k, /*packed_bytes=*/0);
    return;
  }

  const SgemmVariant& v = kernel_dispatch().sgemm;
  const std::int64_t vmr = v.mr;
  const std::int64_t vnr = v.nr;

  if (telemetry::enabled()) {
    // A is re-packed once per (j0, p0) pair; B once per (j0, p0). Rows
    // and cols are padded to the variant's MR/NR inside each block.
    std::int64_t a_rows_padded = 0;
    for (std::int64_t i0 = 0; i0 < m; i0 += kMc) {
      const std::int64_t mc = std::min(kMc, m - i0);
      a_rows_padded += ((mc + vmr - 1) / vmr) * vmr;
    }
    std::int64_t b_cols_padded = 0;
    for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
      const std::int64_t nc = std::min(kNc, n - j0);
      b_cols_padded += ((nc + vnr - 1) / vnr) * vnr;
    }
    const std::int64_t n_jblocks = (n + kNc - 1) / kNc;
    const std::int64_t packed =
        static_cast<std::int64_t>(sizeof(float)) *
        (n_jblocks * a_rows_padded * k + b_cols_padded * k);
    count_sgemm(v.name, m * n * k, packed);
  }

  auto frame = Workspace::tls().frame();
  const std::int64_t nc_max = std::min(n, kNc);
  const std::int64_t kc_max = std::min(k, kKc);
  const std::int64_t nc_strips = (nc_max + vnr - 1) / vnr;
  float* bpack = frame.alloc<float>(nc_strips * vnr * kc_max);

  for (std::int64_t j0 = 0; j0 < n; j0 += kNc) {
    const std::int64_t nc = std::min(kNc, n - j0);
    const std::int64_t strips_n = (nc + vnr - 1) / vnr;
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      const bool first_k = p0 == 0;
      pack_b(b, ldb, trans_b, p0, kc, j0, nc, vnr, bpack);

      parallel_for_chunked(0, (m + kMc - 1) / kMc, [&](std::int64_t blk_lo,
                                                       std::int64_t blk_hi) {
        auto wframe = Workspace::tls().frame();
        float* apack = wframe.alloc<float>(((kMc + vmr - 1) / vmr) * vmr * kc);
        alignas(64) float acc[kMaxSgemmMr * kMaxSgemmNr];
        for (std::int64_t blk = blk_lo; blk < blk_hi; ++blk) {
          const std::int64_t i0 = blk * kMc;
          const std::int64_t mc = std::min(kMc, m - i0);
          pack_a(a, lda, trans_a, i0, mc, p0, kc, vmr, apack);
          for (std::int64_t js = 0; js < strips_n; ++js) {
            const std::int64_t j = j0 + js * vnr;
            const std::int64_t nr = std::min(vnr, n - j);
            const float* bp = bpack + js * vnr * kc;
            for (std::int64_t is = 0; is * vmr < mc; ++is) {
              const std::int64_t i = i0 + is * vmr;
              // Rows packed into this panel: bounded by the block (kMc
              // need not be a multiple of the variant's MR), not by m.
              const std::int64_t mr = std::min(vmr, mc - is * vmr);
              std::fill(acc, acc + vmr * vnr, 0.0f);
              v.micro(apack + is * vmr * kc, bp, kc, acc);
              for (std::int64_t r = 0; r < mr; ++r) {
                float* crow = c + (i + r) * ldc + j;
                const float* arow = acc + r * vnr;
                if (first_k) {
                  float base = ep.bias_row != nullptr ? ep.bias_row[i + r]
                                                      : 0.0f;
                  if (ep.beta == 0.0f) {
                    for (std::int64_t cc = 0; cc < nr; ++cc) {
                      crow[cc] = base + arow[cc] +
                                 (ep.bias_col != nullptr
                                      ? ep.bias_col[j + cc]
                                      : 0.0f);
                    }
                  } else {
                    for (std::int64_t cc = 0; cc < nr; ++cc) {
                      crow[cc] = crow[cc] * ep.beta + base + arow[cc] +
                                 (ep.bias_col != nullptr
                                      ? ep.bias_col[j + cc]
                                      : 0.0f);
                    }
                  }
                } else {
                  for (std::int64_t cc = 0; cc < nr; ++cc) crow[cc] += arow[cc];
                }
              }
            }
          }
        }
      });
    }
  }
}

}  // namespace diva
