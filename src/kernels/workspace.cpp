#include "kernels/workspace.h"

#include <algorithm>

namespace diva {

namespace {
constexpr std::size_t kAlign = 64;
constexpr std::size_t kMinBlock = 1 << 16;  // 64 KiB

std::size_t align_up(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

Workspace& Workspace::tls() {
  static thread_local Workspace ws;
  return ws;
}

Workspace::Block Workspace::make_block(std::size_t size) {
  Block blk;
  blk.size = size;
  // new[] only guarantees 16-byte alignment; over-allocate and keep an
  // aligned base so every bump offset stays 64-byte aligned.
  blk.data = std::make_unique<std::byte[]>(size + kAlign);
  const auto raw = reinterpret_cast<std::uintptr_t>(blk.data.get());
  blk.base = blk.data.get() + (align_up(raw) - raw);
  return blk;
}

void* Workspace::bump(std::size_t bytes) {
  bytes = align_up(std::max<std::size_t>(bytes, 1));
  // Try the active block, then any later (previously rewound) block.
  for (std::size_t b = active_; b < blocks_.size(); ++b) {
    Block& blk = blocks_[b];
    if (blk.size - blk.used >= bytes) {
      void* p = blk.base + blk.used;
      blk.used += bytes;
      active_ = b;
      return p;
    }
    // A block we skip past counts as fully used until the frame unwinds.
    blk.used = blk.size;
  }
  // Chain a new block; existing allocations never move.
  blocks_.push_back(make_block(std::max({bytes, kMinBlock, capacity()})));
  active_ = blocks_.size() - 1;
  blocks_.back().used = bytes;
  return blocks_.back().base;
}

void Workspace::release(std::size_t block, std::size_t used) {
  DIVA_CHECK(depth_ > 0, "Workspace frame release without open frame");
  std::size_t total = 0;
  for (const auto& b : blocks_) total += b.used;
  high_water_ = std::max(high_water_, total);

  // Rewind to the frame's mark.
  for (std::size_t b = blocks_.size(); b-- > block + 1;) blocks_[b].used = 0;
  if (block < blocks_.size()) blocks_[block].used = used;
  active_ = block;

  if (--depth_ == 0 && blocks_.size() > 1) {
    // Coalesce: replace the chain with one block sized to the high-water
    // mark so the next outermost frame runs allocation-free.
    blocks_.clear();
    blocks_.push_back(make_block(align_up(high_water_) + kAlign));
    active_ = 0;
  }
}

}  // namespace diva
