// Internal registry of per-ISA microkernel variants.
//
// Each constructor is defined in its own translation unit, compiled
// with that tier's -m flags (see CMakeLists.txt); the scalar variants
// live in gemm.cpp / igemm.cpp next to the drivers. kernel_dispatch.cpp
// references a constructor only when the matching DIVA_ISA_HAVE_*
// definition says the TU was actually compiled with its flags, so a
// toolchain without AVX-512 support still links.
#pragma once

#include "kernels/kernel_dispatch.h"

namespace diva::detail {

SgemmVariant sgemm_variant_scalar();
IgemmVariant igemm_variant_scalar();
RequantVariant requant_variant_scalar();   // igemm.cpp

SgemmVariant sgemm_variant_avx2();         // sgemm_micro_avx2.cpp
IgemmVariant igemm_variant_avx2();         // igemm_micro_avx2.cpp
RequantVariant requant_variant_avx2();     // igemm_micro_avx2.cpp
SgemmVariant sgemm_variant_avx512();       // sgemm_micro_avx512.cpp
IgemmVariant igemm_variant_avx512();       // igemm_micro_avx512.cpp
RequantVariant requant_variant_avx512();   // igemm_micro_avx512.cpp
IgemmVariant igemm_variant_avx512_vnni();  // igemm_micro_avx512_vnni.cpp

}  // namespace diva::detail
