// AVX-512 sgemm microkernel: 8x32 register tile (16 zmm accumulators,
// 2 B-panel loads, 1 broadcast — 19 of 32 zmm). Compiled with
// -mavx512f -mavx512bw -mavx512vl; called only after CPUID dispatch.
#include "kernels/isa_variants.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 8;
constexpr std::int64_t kNr = 32;

void micro(const float* ap, const float* bp, std::int64_t kc, float* acc) {
  __m512 c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm512_loadu_ps(acc + r * kNr);
    c[r][1] = _mm512_loadu_ps(acc + r * kNr + 16);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m512 b0 = _mm512_loadu_ps(bp + p * kNr);
    const __m512 b1 = _mm512_loadu_ps(bp + p * kNr + 16);
    const float* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const __m512 av = _mm512_set1_ps(arow[r]);
      c[r][0] = _mm512_fmadd_ps(av, b0, c[r][0]);
      c[r][1] = _mm512_fmadd_ps(av, b1, c[r][1]);
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm512_storeu_ps(acc + r * kNr, c[r][0]);
    _mm512_storeu_ps(acc + r * kNr + 16, c[r][1]);
  }
}

}  // namespace

SgemmVariant sgemm_variant_avx512() { return {"avx512", kMr, kNr, micro}; }

}  // namespace diva::detail

#endif  // __AVX512F__
