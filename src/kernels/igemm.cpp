#include "kernels/igemm.h"

#include <algorithm>
#include <cstddef>

#include "kernels/fixedpoint.h"
#include "kernels/isa_variants.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/kernel_telemetry.h"
#include "kernels/workspace.h"
#include "runtime/check.h"

namespace diva {

namespace {

constexpr std::int64_t kKc = 512;

/// Counts one igemm call (see kernel_telemetry.h for name/semantics).
void count_igemm(const char* tier, std::int64_t macs,
                 std::int64_t packed_bytes) {
  if (!telemetry::enabled()) return;
  thread_local const char* t_tier = nullptr;
  thread_local detail::KernelTierCounters t_c;
  if (t_tier != tier) {
    t_c = detail::make_kernel_tier_counters("igemm", tier);
    t_tier = tier;
  }
  t_c.calls->add(1);
  t_c.macs->add(static_cast<std::uint64_t>(macs));
  t_c.packed_bytes->add(static_cast<std::uint64_t>(packed_bytes));
}

// Scalar (baseline x86-64) tier: int8 operands widened to int16 during
// packing so the microkernel is a plain int16 x int16 -> int32
// multiply-add the compiler vectorizes (pmaddwd-shaped). Pinned as the
// kScalar tier; the AVX variants live in igemm_micro_*.cpp.
constexpr std::int64_t kScalarMr = 4;
constexpr std::int64_t kScalarNr = 32;

void pack_a16(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
              std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t r = 0; r < kScalarMr; ++r) {
      out[p * kScalarMr + r] =
          r < mr ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p]) : 0;
    }
  }
}

void pack_b16(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
              std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int8_t* src = b + (p0 + p) * ldb + j0;
    std::int16_t* dst = out + p * kScalarNr;
    for (std::int64_t cc = 0; cc < kScalarNr; ++cc) {
      dst[cc] = cc < nr ? static_cast<std::int16_t>(src[cc]) : 0;
    }
  }
}

void micro_kernel_scalar(const void* ap_v, const void* bp_v, std::int64_t kc,
                         std::int32_t* acc) {
  const auto* ap = static_cast<const std::int16_t*>(ap_v);
  const auto* bp = static_cast<const std::int16_t*>(bp_v);
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int16_t* brow = bp + p * kScalarNr;
    const std::int16_t* arow = ap + p * kScalarMr;
    for (std::int64_t r = 0; r < kScalarMr; ++r) {
      const std::int32_t av = arow[r];
      std::int32_t* accrow = acc + r * kScalarNr;
      for (std::int64_t cc = 0; cc < kScalarNr; ++cc) {
        accrow[cc] += av * static_cast<std::int32_t>(brow[cc]);
      }
    }
  }
}

/// Scalar reference requant row — the pinned fixedpoint.h arithmetic
/// every SIMD requant tier must reproduce bit-for-bit.
void requant_row_scalar(const std::int32_t* raw, std::int64_t n,
                        std::int32_t base, std::int32_t mult, int shift,
                        std::int32_t out_zp, std::int32_t act_min,
                        std::int32_t act_max, std::int8_t* out) {
  for (std::int64_t j = 0; j < n; ++j) {
    const std::int32_t scaled =
        multiply_by_quantized_multiplier(base + raw[j], mult, shift);
    out[j] = static_cast<std::int8_t>(
        std::clamp(scaled + out_zp, act_min, act_max));
  }
}

}  // namespace

namespace detail {

IgemmVariant igemm_variant_scalar() {
  return {"scalar",
          kScalarMr,
          kScalarNr,
          /*k_unroll=*/1,
          /*b_zp_bias=*/0,
          sizeof(std::int16_t),
          sizeof(std::int16_t),
          pack_a16,
          pack_b16,
          micro_kernel_scalar};
}

RequantVariant requant_variant_scalar() {
  return {"scalar", requant_row_scalar};
}

}  // namespace detail

void igemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
           std::int64_t ldb, std::int32_t b_zp, const IgemmEpilogue& ep,
           std::int8_t* out, std::int64_t ldo) {
  if (m <= 0 || n <= 0) return;
  DIVA_CHECK(ep.multiplier != nullptr && ep.shift != nullptr,
             "igemm needs a per-row requant epilogue");

  auto frame = Workspace::tls().frame();
  if (m == 1) {
    // Single-row fast path (depthwise layers call igemm once per
    // channel): B rows stream with unit stride, so packing and the
    // MR-row microkernel would only multiply padding. Same integer
    // sums at every tier, still bit-exact.
    std::int32_t* raw = frame.alloc_zeroed<std::int32_t>(n);
    std::int32_t rowsum = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int32_t av = a[p];
      rowsum += av;
      if (av == 0) continue;
      const std::int8_t* brow = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) {
        raw[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
    const std::int32_t base =
        (ep.bias != nullptr ? ep.bias[0] : 0) - b_zp * rowsum;
    kernel_dispatch().requant.row(raw, n, base, ep.multiplier[0], ep.shift[0],
                                  ep.out_zp, ep.act_min, ep.act_max, out);
    count_igemm("scalar", n * k, /*packed_bytes=*/0);
    return;
  }

  const IgemmVariant& v = kernel_dispatch().igemm;
  const std::int64_t kc_max = std::min(std::max<std::int64_t>(k, 1), kKc);
  const std::int64_t n_strips = (n + v.nr - 1) / v.nr;

  if (telemetry::enabled()) {
    // Per K-block: every A strip (ceil(m/MR) of them) and every B strip
    // is packed exactly once; the variant owns the panel geometry.
    std::int64_t packed = 0;
    for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
      const std::int64_t kc = std::min(kKc, k - p0);
      packed += ((m + v.mr - 1) / v.mr) *
                static_cast<std::int64_t>(v.a_panel_bytes(kc));
      packed += n_strips * static_cast<std::int64_t>(v.b_panel_bytes(kc));
    }
    count_igemm(v.name, m * n * k, packed);
  }
  auto* apack = frame.alloc<std::byte>(
      static_cast<std::int64_t>(v.a_panel_bytes(kc_max)));
  auto* bpack = frame.alloc<std::byte>(
      static_cast<std::int64_t>(n_strips * v.b_panel_bytes(kc_max)));
  // Raw (pre-epilogue) int32 accumulators for the whole output, so K
  // blocking can accumulate before the requantization epilogue runs.
  std::int32_t* raw = frame.alloc_zeroed<std::int32_t>(m * n);
  alignas(64) std::int32_t acc[kMaxIgemmMr * kMaxIgemmNr];

  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    const std::size_t b_bytes = v.b_panel_bytes(kc);
    for (std::int64_t js = 0; js < n_strips; ++js) {
      v.pack_b(b, ldb, p0, kc, js * v.nr, std::min(v.nr, n - js * v.nr),
               bpack + static_cast<std::size_t>(js) * b_bytes);
    }
    for (std::int64_t i0 = 0; i0 < m; i0 += v.mr) {
      const std::int64_t mr = std::min(v.mr, m - i0);
      v.pack_a(a, lda, i0, mr, p0, kc, apack);
      for (std::int64_t js = 0; js < n_strips; ++js) {
        const std::int64_t j0 = js * v.nr;
        const std::int64_t nr = std::min(v.nr, n - j0);
        std::fill(acc, acc + v.mr * v.nr, 0);
        v.micro(apack, bpack + static_cast<std::size_t>(js) * b_bytes, kc,
                acc);
        for (std::int64_t r = 0; r < mr; ++r) {
          std::int32_t* rawrow = raw + (i0 + r) * n + j0;
          const std::int32_t* accrow = acc + r * v.nr;
          for (std::int64_t cc = 0; cc < nr; ++cc) rawrow[cc] += accrow[cc];
        }
      }
    }
  }

  // Epilogue: zero-point correction, bias, fixed-point requantization.
  // Packing may shift B onto an offset grid (the VNNI tier packs
  // b ^ 0x80, i.e. b + 128, to feed vpdpbusd's unsigned operand); the
  // variant reports that shift and it folds into the same hoisted
  // correction term, exactly:
  //   sum_p a[i,p] * (b[p,j] + bias - (b_zp + bias))
  //     = raw[i,j] - (b_zp + b_zp_bias) * rowsum_a[i].
  const std::int32_t zp_eff = b_zp + v.b_zp_bias;
  const RequantVariant& rq = kernel_dispatch().requant;
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int32_t rowsum = 0;
    for (std::int64_t p = 0; p < k; ++p) rowsum += arow[p];
    const std::int32_t base =
        (ep.bias != nullptr ? ep.bias[i] : 0) - zp_eff * rowsum;
    rq.row(raw + i * n, n, base, ep.multiplier[i], ep.shift[i], ep.out_zp,
           ep.act_min, ep.act_max, out + i * ldo);
  }
}

void igemm_reference(std::int64_t m, std::int64_t n, std::int64_t k,
                     const std::int8_t* a, std::int64_t lda,
                     const std::int8_t* b, std::int64_t ldb, std::int32_t b_zp,
                     const IgemmEpilogue& ep, std::int8_t* out,
                     std::int64_t ldo) {
  if (m <= 0 || n <= 0) return;
  DIVA_CHECK(ep.multiplier != nullptr && ep.shift != nullptr,
             "igemm needs a per-row requant epilogue");
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    for (std::int64_t j = 0; j < n; ++j) {
      std::int32_t acc = ep.bias != nullptr ? ep.bias[i] : 0;
      for (std::int64_t p = 0; p < k; ++p) {
        acc += static_cast<std::int32_t>(arow[p]) *
               (static_cast<std::int32_t>(b[p * ldb + j]) - b_zp);
      }
      const std::int32_t scaled =
          multiply_by_quantized_multiplier(acc, ep.multiplier[i], ep.shift[i]);
      out[i * ldo + j] = static_cast<std::int8_t>(
          std::clamp(scaled + ep.out_zp, ep.act_min, ep.act_max));
    }
  }
}

}  // namespace diva
