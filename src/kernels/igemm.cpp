#include "kernels/igemm.h"

#include <algorithm>

#include "kernels/fixedpoint.h"
#include "kernels/workspace.h"
#include "runtime/check.h"

namespace diva {

namespace {

// int32 accumulators: MR x NR tile. int8 operands are widened to int16
// during packing so the microkernel is a plain int16 x int16 -> int32
// multiply-add the compiler vectorizes (pmaddwd-shaped). igemm itself is
// serial — callers parallelize at the batch/image level.
constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kKc = 512;

void pack_a16(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
              std::int64_t mr, std::int64_t p0, std::int64_t kc,
              std::int16_t* out) {
  for (std::int64_t p = 0; p < kc; ++p) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      out[p * kMr + r] =
          r < mr ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p]) : 0;
    }
  }
}

void pack_b16(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
              std::int64_t kc, std::int64_t j0, std::int64_t nr,
              std::int16_t* out) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int8_t* src = b + (p0 + p) * ldb + j0;
    std::int16_t* dst = out + p * kNr;
    for (std::int64_t cc = 0; cc < kNr; ++cc) {
      dst[cc] = cc < nr ? static_cast<std::int16_t>(src[cc]) : 0;
    }
  }
}

inline void micro_kernel(const std::int16_t* ap, const std::int16_t* bp,
                         std::int64_t kc, std::int32_t* acc) {
  for (std::int64_t p = 0; p < kc; ++p) {
    const std::int16_t* brow = bp + p * kNr;
    const std::int16_t* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const std::int32_t av = arow[r];
      std::int32_t* accrow = acc + r * kNr;
      for (std::int64_t cc = 0; cc < kNr; ++cc) {
        accrow[cc] += av * static_cast<std::int32_t>(brow[cc]);
      }
    }
  }
}

}  // namespace

void igemm(std::int64_t m, std::int64_t n, std::int64_t k,
           const std::int8_t* a, std::int64_t lda, const std::int8_t* b,
           std::int64_t ldb, std::int32_t b_zp, const IgemmEpilogue& ep,
           std::int8_t* out, std::int64_t ldo) {
  if (m <= 0 || n <= 0) return;
  DIVA_CHECK(ep.multiplier != nullptr && ep.shift != nullptr,
             "igemm needs a per-row requant epilogue");

  auto frame = Workspace::tls().frame();
  if (m == 1) {
    // Single-row fast path (depthwise layers call igemm once per
    // channel): B rows stream with unit stride, so packing and the
    // 4-row microkernel would only multiply padding. Same integer sums,
    // still bit-exact.
    std::int32_t* raw = frame.alloc_zeroed<std::int32_t>(n);
    std::int32_t rowsum = 0;
    for (std::int64_t p = 0; p < k; ++p) {
      const std::int32_t av = a[p];
      rowsum += av;
      if (av == 0) continue;
      const std::int8_t* brow = b + p * ldb;
      for (std::int64_t j = 0; j < n; ++j) {
        raw[j] += av * static_cast<std::int32_t>(brow[j]);
      }
    }
    const std::int32_t base =
        (ep.bias != nullptr ? ep.bias[0] : 0) - b_zp * rowsum;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int32_t scaled = multiply_by_quantized_multiplier(
          base + raw[j], ep.multiplier[0], ep.shift[0]);
      out[j] = static_cast<std::int8_t>(
          std::clamp(scaled + ep.out_zp, ep.act_min, ep.act_max));
    }
    return;
  }

  const std::int64_t kc_max = std::min(std::max<std::int64_t>(k, 1), kKc);
  const std::int64_t n_strips = (n + kNr - 1) / kNr;
  std::int16_t* apack = frame.alloc<std::int16_t>(kMr * kc_max);
  std::int16_t* bpack = frame.alloc<std::int16_t>(n_strips * kNr * kc_max);
  // Raw (pre-epilogue) int32 accumulators for the whole output, so K
  // blocking can accumulate before the requantization epilogue runs.
  std::int32_t* raw = frame.alloc_zeroed<std::int32_t>(m * n);
  std::int32_t acc[kMr * kNr];

  for (std::int64_t p0 = 0; p0 < k; p0 += kKc) {
    const std::int64_t kc = std::min(kKc, k - p0);
    for (std::int64_t js = 0; js < n_strips; ++js) {
      pack_b16(b, ldb, p0, kc, js * kNr, std::min(kNr, n - js * kNr),
               bpack + js * kNr * kc);
    }
    for (std::int64_t i0 = 0; i0 < m; i0 += kMr) {
      const std::int64_t mr = std::min(kMr, m - i0);
      pack_a16(a, lda, i0, mr, p0, kc, apack);
      for (std::int64_t js = 0; js < n_strips; ++js) {
        const std::int64_t j0 = js * kNr;
        const std::int64_t nr = std::min(kNr, n - j0);
        std::fill(acc, acc + kMr * kNr, 0);
        micro_kernel(apack, bpack + js * kNr * kc, kc, acc);
        for (std::int64_t r = 0; r < mr; ++r) {
          std::int32_t* rawrow = raw + (i0 + r) * n + j0;
          const std::int32_t* accrow = acc + r * kNr;
          for (std::int64_t cc = 0; cc < nr; ++cc) rawrow[cc] += accrow[cc];
        }
      }
    }
  }

  // Epilogue: zero-point correction, bias, fixed-point requantization.
  for (std::int64_t i = 0; i < m; ++i) {
    const std::int8_t* arow = a + i * lda;
    std::int32_t rowsum = 0;
    for (std::int64_t p = 0; p < k; ++p) rowsum += arow[p];
    const std::int32_t base =
        (ep.bias != nullptr ? ep.bias[i] : 0) - b_zp * rowsum;
    const std::int32_t mult = ep.multiplier[i];
    const int shift = ep.shift[i];
    const std::int32_t* rawrow = raw + i * n;
    std::int8_t* orow = out + i * ldo;
    for (std::int64_t j = 0; j < n; ++j) {
      const std::int32_t scaled =
          multiply_by_quantized_multiplier(base + rawrow[j], mult, shift);
      orow[j] = static_cast<std::int8_t>(
          std::clamp(scaled + ep.out_zp, ep.act_min, ep.act_max));
    }
  }
}

}  // namespace diva
