#include "kernels/im2col.h"

namespace diva {

void col2im(const float* cols, const ConvGeom& g, float* image) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    float* chan = image + c * g.in_h * g.in_w;
    for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++row) {
        const float* crow = cols + row * oh * ow;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride - g.pad + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          float* irow = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride - g.pad + kw;
            if (ix >= 0 && ix < g.in_w) irow[ix] += crow[y * ow + x];
          }
        }
      }
    }
  }
}

}  // namespace diva
