// Workspace: a thread-local bump allocator for kernel scratch memory.
//
// Every hot path in this library used to allocate fresh Tensors or
// vectors per forward (im2col panels, packed GEMM blocks, int8 slot
// buffers) — thousands of heap round-trips per attack step. A Workspace
// instead hands out aligned slices of one arena that is reset, not
// freed, between uses:
//
//   auto frame = Workspace::tls().frame();   // RAII mark/release
//   float* cols = frame.alloc<float>(k2 * ohw);
//   ...                                      // frame destructor rewinds
//
// Allocation is a pointer bump. When the arena runs out mid-frame a new
// block is chained on (existing pointers stay valid); once the
// outermost frame unwinds, the blocks are coalesced into one allocation
// sized to the high-water mark, so steady-state loops (attack steps,
// bench iterations) allocate nothing after the first pass.
//
// The arena is thread-local: pool workers each own one, so kernels
// running under parallel_for need no locking. Frames nest; memory
// obtained from a frame must not outlive it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "runtime/check.h"

namespace diva {

class Workspace {
 public:
  Workspace() = default;
  Workspace(const Workspace&) = delete;
  Workspace& operator=(const Workspace&) = delete;

  /// The calling thread's arena.
  static Workspace& tls();

  /// RAII scope: records the bump position on entry, rewinds on exit.
  class Frame {
   public:
    explicit Frame(Workspace& ws)
        : ws_(ws), block_(ws.active_), used_(ws.current_used()) {
      ++ws_.depth_;
    }
    ~Frame() { ws_.release(block_, used_); }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

    /// Uninitialized, 64-byte-aligned scratch of `n` elements.
    template <typename T>
    T* alloc(std::int64_t n) {
      return static_cast<T*>(
          ws_.bump(static_cast<std::size_t>(n) * sizeof(T)));
    }

    /// Zero-filled variant (int32 GEMM accumulators, col2im targets).
    template <typename T>
    T* alloc_zeroed(std::int64_t n) {
      T* p = alloc<T>(n);
      for (std::int64_t i = 0; i < n; ++i) p[i] = T{};
      return p;
    }

   private:
    Workspace& ws_;
    std::size_t block_;
    std::size_t used_;
  };

  Frame frame() { return Frame(*this); }

  /// Bytes currently held by the arena (all blocks).
  std::size_t capacity() const {
    std::size_t total = 0;
    for (const auto& b : blocks_) total += b.size;
    return total;
  }

  /// Number of backing blocks (1 in steady state after coalescing).
  std::size_t block_count() const { return blocks_.size(); }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::byte* base = nullptr;  // 64-byte-aligned start within data
    std::size_t size = 0;
    std::size_t used = 0;
  };

  static Block make_block(std::size_t size);

  std::size_t current_used() const {
    return active_ < blocks_.size() ? blocks_[active_].used : 0;
  }

  void* bump(std::size_t bytes);
  void release(std::size_t block, std::size_t used);

  std::vector<Block> blocks_;
  std::size_t active_ = 0;  // block currently being bumped
  int depth_ = 0;           // open frame count
  std::size_t high_water_ = 0;
};

}  // namespace diva
