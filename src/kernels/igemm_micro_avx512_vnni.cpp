// AVX-512 VNNI igemm microkernel: the headline int8 path. vpdpbusd
// multiplies UNSIGNED bytes by signed bytes in groups of four and
// accumulates into int32 lanes without intermediate narrowing, so the
// panels stay 8-bit (half the pack traffic of the int16 tiers) and one
// instruction does four k steps. Activations are signed here, so
// pack_b stores b ^ 0x80 = b + 128 as the unsigned operand and the
// driver folds the +128 into the hoisted zero-point correction
// (b_zp_bias below) — exact integer arithmetic, bit-identical to
// igemm_reference. Weights (A) broadcast as the signed operand.
// 4x32 tile: 8 zmm accumulators, 2 B loads, 1 quad broadcast.
#include "kernels/isa_variants.h"

#if defined(__AVX512F__) && defined(__AVX512BW__) && defined(__AVX512VNNI__)

#include <immintrin.h>

#include <cstring>

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kKu = 4;

// A panel: [g][mr][4] s8 — one row's k-quad is a 32-bit broadcast lane.
void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
            std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int8_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kMr + r) * kKu + t] =
            (r < mr && p < kc) ? a[(i0 + r) * lda + p0 + p] : std::int8_t{0};
      }
    }
  }
}

// B panel: [g][nr][4] u8 holding b + 128 (zero A padding keeps padded
// positions exact regardless of the stored byte; pads store 0).
void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::uint8_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kNr + j) * kKu + t] =
            (j < nr && p < kc)
                ? static_cast<std::uint8_t>(b[(p0 + p) * ldb + j0 + j]) ^
                      std::uint8_t{0x80}
                : std::uint8_t{0};
      }
    }
  }
}

void micro(const void* ap_v, const void* bp_v, std::int64_t kc,
           std::int32_t* acc) {
  const auto* ap = static_cast<const std::int8_t*>(ap_v);
  const auto* bp = static_cast<const std::uint8_t*>(bp_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  __m512i c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm512_loadu_si512(acc + r * kNr);
    c[r][1] = _mm512_loadu_si512(acc + r * kNr + 16);
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::uint8_t* bg = bp + g * kNr * kKu;
    const __m512i b0 = _mm512_loadu_si512(bg);
    const __m512i b1 = _mm512_loadu_si512(bg + 64);
    const std::int8_t* ag = ap + g * kMr * kKu;
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t quad;
      std::memcpy(&quad, ag + r * kKu, sizeof(quad));
      const __m512i av = _mm512_set1_epi32(quad);
      c[r][0] = _mm512_dpbusd_epi32(c[r][0], b0, av);
      c[r][1] = _mm512_dpbusd_epi32(c[r][1], b1, av);
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm512_storeu_si512(acc + r * kNr, c[r][0]);
    _mm512_storeu_si512(acc + r * kNr + 16, c[r][1]);
  }
}

}  // namespace

IgemmVariant igemm_variant_avx512_vnni() {
  return {"avx512vnni",
          kMr,
          kNr,
          kKu,
          /*b_zp_bias=*/128,
          sizeof(std::int8_t),
          sizeof(std::uint8_t),
          pack_a,
          pack_b,
          micro};
}

}  // namespace diva::detail

#endif  // __AVX512F__ && __AVX512BW__ && __AVX512VNNI__
