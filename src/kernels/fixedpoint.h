// Fixed-point requantization arithmetic (gemmlowp / TFLite semantics).
//
// Moved from quant/qparams so the int8 GEMM epilogue in the kernel
// layer can requantize without depending on the quant layer; quant code
// keeps using these names via quant/qparams.h, which includes this
// header. All functions are exact integer arithmetic — results are
// bit-identical across call sites and loop orders.
#pragma once

#include <cstdint>
#include <limits>

namespace diva {

/// Saturating rounding doubling high multiplication (gemmlowp).
inline std::int32_t saturating_rounding_doubling_high_mul(std::int32_t a,
                                                          std::int32_t b) {
  const bool overflow = a == b && a == std::numeric_limits<std::int32_t>::min();
  if (overflow) return std::numeric_limits<std::int32_t>::max();
  const std::int64_t ab = static_cast<std::int64_t>(a) * b;
  const std::int32_t nudge = ab >= 0 ? (1 << 30) : (1 - (1 << 30));
  return static_cast<std::int32_t>((ab + nudge) / (1LL << 31));
}

/// Rounding arithmetic right shift by a power of two.
inline std::int32_t rounding_divide_by_pot(std::int32_t x, int exponent) {
  if (exponent == 0) return x;
  const std::int32_t mask = (1 << exponent) - 1;
  const std::int32_t remainder = x & mask;
  std::int32_t result = x >> exponent;
  std::int32_t threshold = mask >> 1;
  if (x < 0) threshold += 1;
  if (remainder > threshold) ++result;
  return result;
}

/// x * multiplier * 2^shift in fixed point (TFLite semantics).
inline std::int32_t multiply_by_quantized_multiplier(std::int32_t x,
                                                     std::int32_t multiplier,
                                                     int shift) {
  const int left_shift = shift > 0 ? shift : 0;
  const int right_shift = shift > 0 ? 0 : -shift;
  // Widen before the left shift so UBSan-clean; truncation back to int32
  // matches the historical x * (1 << left_shift) on all sane targets.
  const auto shifted = static_cast<std::int32_t>(
      static_cast<std::int64_t>(x) << left_shift);
  return rounding_divide_by_pot(
      saturating_rounding_doubling_high_mul(shifted, multiplier), right_shift);
}

}  // namespace diva
