// Per-tier kernel counters shared by the sgemm/igemm drivers.
//
// Counter names: kernels.<kernel>.{calls,macs,packed_bytes}.<tier>.
//   calls        driver invocations
//   macs         logical multiply-accumulates (m*n*k, padding excluded,
//                so analytic pinning in tests is exact)
//   packed_bytes bytes written into packed A/B panels (padding
//                *included* — this is real memory traffic)
// <tier> is the dispatched variant's name; the tier-invariant small
// and m==1 fast paths attribute to "scalar" since that is the code
// that ran.
//
// The drivers cache the resolved counter trio in thread-locals keyed
// on the variant-name pointer (a static literal, stable per tier), so
// the steady-state cost per gemm call is one pointer compare plus
// three relaxed atomic adds.
#pragma once

#include <string>

#include "telemetry/telemetry.h"

namespace diva::detail {

struct KernelTierCounters {
  telemetry::Counter* calls = nullptr;
  telemetry::Counter* macs = nullptr;
  telemetry::Counter* packed_bytes = nullptr;
};

inline KernelTierCounters make_kernel_tier_counters(const char* kernel,
                                                    const char* tier) {
  const std::string base = std::string("kernels.") + kernel;
  const std::string suffix = std::string(".") + tier;
  return {&telemetry::counter(base + ".calls" + suffix),
          &telemetry::counter(base + ".macs" + suffix),
          &telemetry::counter(base + ".packed_bytes" + suffix)};
}

}  // namespace diva::detail
