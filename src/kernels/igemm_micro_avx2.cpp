// AVX2 u8s8-shaped igemm microkernel, widening-multiply flavor: int8
// operands are widened to int16 at pack time in k-PAIR interleaved
// panels, and the inner op is vpmaddwd (s16 x s16 pairs -> s32), which
// is exact here — |widened s8| <= 128, so each pair sum is at most
// 2 * 128^2, far inside int32. 4x16 tile: 8 ymm accumulators, 2 B
// loads, 1 pair broadcast. Compiled with -mavx2 (see CMakeLists.txt);
// called only after CPUID dispatch. Bit-identical to igemm_reference.
#include "kernels/isa_variants.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cstring>

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKu = 2;

// A panel: [g][mr][2] int16 — a row's k-pair sits adjacent so the
// microkernel broadcasts it as one 32-bit lane.
void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
            std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kMr + r) * kKu + t] =
            (r < mr && p < kc)
                ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p])
                : 0;
      }
    }
  }
}

// B panel: [g][nr][2] int16 — a column's k-pair occupies one 32-bit
// lane, so vpmaddwd against the broadcast A pair yields that column's
// two-term dot product.
void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kNr + j) * kKu + t] =
            (j < nr && p < kc)
                ? static_cast<std::int16_t>(b[(p0 + p) * ldb + j0 + j])
                : 0;
      }
    }
  }
}

void micro(const void* ap_v, const void* bp_v, std::int64_t kc,
           std::int32_t* acc) {
  const auto* ap = static_cast<const std::int16_t*>(ap_v);
  const auto* bp = static_cast<const std::int16_t*>(bp_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  __m256i c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * kNr));
    c[r][1] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * kNr + 8));
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int16_t* bg = bp + g * kNr * kKu;
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 16));
    const std::int16_t* ag = ap + g * kMr * kKu;
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t pair;
      std::memcpy(&pair, ag + r * kKu, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      c[r][0] = _mm256_add_epi32(c[r][0], _mm256_madd_epi16(av, b0));
      c[r][1] = _mm256_add_epi32(c[r][1], _mm256_madd_epi16(av, b1));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kNr), c[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kNr + 8),
                        c[r][1]);
  }
}

}  // namespace

IgemmVariant igemm_variant_avx2() {
  return {"avx2",
          kMr,
          kNr,
          kKu,
          /*b_zp_bias=*/0,
          sizeof(std::int16_t),
          sizeof(std::int16_t),
          pack_a,
          pack_b,
          micro};
}

}  // namespace diva::detail

#endif  // __AVX2__
