// AVX2 u8s8-shaped igemm microkernel, widening-multiply flavor: int8
// operands are widened to int16 at pack time in k-PAIR interleaved
// panels, and the inner op is vpmaddwd (s16 x s16 pairs -> s32), which
// is exact here — |widened s8| <= 128, so each pair sum is at most
// 2 * 128^2, far inside int32. 4x16 tile: 8 ymm accumulators, 2 B
// loads, 1 pair broadcast. Compiled with -mavx2 (see CMakeLists.txt);
// called only after CPUID dispatch. Bit-identical to igemm_reference.
#include "kernels/isa_variants.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "kernels/fixedpoint.h"

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 16;
constexpr std::int64_t kKu = 2;

// A panel: [g][mr][2] int16 — a row's k-pair sits adjacent so the
// microkernel broadcasts it as one 32-bit lane.
void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
            std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kMr + r) * kKu + t] =
            (r < mr && p < kc)
                ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p])
                : 0;
      }
    }
  }
}

// B panel: [g][nr][2] int16 — a column's k-pair occupies one 32-bit
// lane, so vpmaddwd against the broadcast A pair yields that column's
// two-term dot product.
void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kNr + j) * kKu + t] =
            (j < nr && p < kc)
                ? static_cast<std::int16_t>(b[(p0 + p) * ldb + j0 + j])
                : 0;
      }
    }
  }
}

void micro(const void* ap_v, const void* bp_v, std::int64_t kc,
           std::int32_t* acc) {
  const auto* ap = static_cast<const std::int16_t*>(ap_v);
  const auto* bp = static_cast<const std::int16_t*>(bp_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  __m256i c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * kNr));
    c[r][1] = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(acc + r * kNr + 8));
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int16_t* bg = bp + g * kNr * kKu;
    const __m256i b0 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg));
    const __m256i b1 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(bg + 16));
    const std::int16_t* ag = ap + g * kMr * kKu;
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t pair;
      std::memcpy(&pair, ag + r * kKu, sizeof(pair));
      const __m256i av = _mm256_set1_epi32(pair);
      c[r][0] = _mm256_add_epi32(c[r][0], _mm256_madd_epi16(av, b0));
      c[r][1] = _mm256_add_epi32(c[r][1], _mm256_madd_epi16(av, b1));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kNr), c[r][0]);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + r * kNr + 8),
                        c[r][1]);
  }
}

// --------------------------------------------------------------------------
// Requantization epilogue, AVX2 (8 lanes / iteration).
//
// Must be bit-identical to the scalar fixedpoint.h chain. The SRDHM
// rounding is vectorized with a constant +2^30 nudge and a logical
// 64-bit right shift by 31: for every int64 product ab,
//   trunc((ab + (ab >= 0 ? 2^30 : 1 - 2^30)) / 2^31)
//     == low32((ab + 2^30) >> 31),
// because the negative-half cases the sign-dependent nudge exists for
// land on the same integer under floor division (case analysis over
// remainders; both sides differ only past the truncated bits). The
// INT32_MIN * INT32_MIN saturation case is masked separately.
// --------------------------------------------------------------------------

__m256i srdhm_avx2(__m256i a, __m256i b) {
  const __m256i nudge = _mm256_set1_epi64x(1LL << 30);
  __m256i even = _mm256_mul_epi32(a, b);  // lanes 0,2,4,6 -> 4 x int64
  __m256i odd = _mm256_mul_epi32(_mm256_srli_epi64(a, 32),
                                 _mm256_srli_epi64(b, 32));
  even = _mm256_srli_epi64(_mm256_add_epi64(even, nudge), 31);
  odd = _mm256_srli_epi64(_mm256_add_epi64(odd, nudge), 31);
  __m256i res =
      _mm256_blend_epi32(even, _mm256_slli_epi64(odd, 32), 0b10101010);
  const __m256i i32min = _mm256_set1_epi32(INT32_MIN);
  const __m256i sat = _mm256_and_si256(_mm256_cmpeq_epi32(a, i32min),
                                       _mm256_cmpeq_epi32(b, i32min));
  return _mm256_blendv_epi8(res, _mm256_set1_epi32(INT32_MAX), sat);
}

__m256i rdbpot_avx2(__m256i x, int exponent) {
  if (exponent == 0) return x;
  const std::int32_t mask =
      static_cast<std::int32_t>((1u << exponent) - 1u);
  const __m256i maskv = _mm256_set1_epi32(mask);
  const __m256i rem = _mm256_and_si256(x, maskv);
  __m256i res = _mm256_sra_epi32(x, _mm_cvtsi32_si128(exponent));
  // threshold = mask >> 1, plus 1 where x < 0 (cmpgt mask is -1).
  __m256i thr = _mm256_set1_epi32(mask >> 1);
  thr = _mm256_sub_epi32(thr,
                         _mm256_cmpgt_epi32(_mm256_setzero_si256(), x));
  return _mm256_sub_epi32(res, _mm256_cmpgt_epi32(rem, thr));
}

void requant_row(const std::int32_t* raw, std::int64_t n, std::int32_t base,
                 std::int32_t mult, int shift, std::int32_t out_zp,
                 std::int32_t act_min, std::int32_t act_max,
                 std::int8_t* out) {
  const int left = shift > 0 ? shift : 0;
  const int right = shift > 0 ? 0 : -shift;
  const __m128i left_cnt = _mm_cvtsi32_si128(left);
  const __m256i basev = _mm256_set1_epi32(base);
  const __m256i multv = _mm256_set1_epi32(mult);
  const __m256i zpv = _mm256_set1_epi32(out_zp);
  const __m256i minv = _mm256_set1_epi32(act_min);
  const __m256i maxv = _mm256_set1_epi32(act_max);
  std::int64_t j = 0;
  for (; j + 8 <= n; j += 8) {
    __m256i x = _mm256_add_epi32(
        basev,
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(raw + j)));
    // Wrapping 32-bit left shift == the scalar int64-widen-then-
    // truncate (low 32 bits agree).
    x = _mm256_sll_epi32(x, left_cnt);
    x = rdbpot_avx2(srdhm_avx2(x, multv), right);
    x = _mm256_add_epi32(x, zpv);
    x = _mm256_min_epi32(_mm256_max_epi32(x, minv), maxv);
    // Post-clamp values fit int8, so the saturating packs are exact.
    const __m128i p16 = _mm_packs_epi32(_mm256_castsi256_si128(x),
                                        _mm256_extracti128_si256(x, 1));
    _mm_storel_epi64(reinterpret_cast<__m128i*>(out + j),
                     _mm_packs_epi16(p16, p16));
  }
  for (; j < n; ++j) {
    const std::int32_t scaled =
        multiply_by_quantized_multiplier(base + raw[j], mult, shift);
    out[j] = static_cast<std::int8_t>(
        std::clamp(scaled + out_zp, act_min, act_max));
  }
}

}  // namespace

RequantVariant requant_variant_avx2() { return {"avx2", requant_row}; }

IgemmVariant igemm_variant_avx2() {
  return {"avx2",
          kMr,
          kNr,
          kKu,
          /*b_zp_bias=*/0,
          sizeof(std::int16_t),
          sizeof(std::int16_t),
          pack_a,
          pack_b,
          micro};
}

}  // namespace diva::detail

#endif  // __AVX2__
