// Cache-blocked single-precision GEMM.
//
// C[m,n] = A[m,k] x B[k,n] with optional accumulation (beta), optional
// logical transposition of either operand (handled during packing, so
// callers never materialize a transpose), and a fused bias epilogue
// (per-row for conv layouts, per-column for dense layouts).
//
// Structure is the classic three-level blocking: B is packed into
// [KC x NR] column panels, A into [KC x MR] row panels, and an MR x NR
// register microkernel. The microkernel (and its MR/NR tile shape) is
// selected at startup by the runtime ISA dispatch (kernel_dispatch.h):
// a scalar 4x32 baseline tier plus AVX2/FMA and AVX-512 FMA variants
// compiled in their own -m-flagged translation units. FMA tiers reorder
// accumulation, so results match the scalar tier to tolerance, not
// bit-exactly; a fixed tier is bit-deterministic run to run. The M
// dimension is sharded across the global thread pool (nested calls from
// inside pool workers degrade to serial, so batch-level parallel_for
// callers compose safely). Packing buffers come from the thread-local
// Workspace arena — steady-state calls do not touch the heap.
#pragma once

#include <cstdint>

namespace diva {

/// What happens to the float accumulators on writeback.
struct SgemmEpilogue {
  /// 0 overwrites C, 1 accumulates into C (other values scale old C).
  float beta = 0.0f;
  /// Added to every element of row i (length m). Conv bias layout.
  const float* bias_row = nullptr;
  /// Added to every element of column j (length n). Dense bias layout.
  const float* bias_col = nullptr;
};

/// C[m,n] (+)= op(A) x op(B). `a` holds a row-major matrix with leading
/// dimension lda: the logical A[m,k] itself, or — when trans_a — the
/// stored k x m matrix whose transpose is A. Likewise for B.
void sgemm(std::int64_t m, std::int64_t n, std::int64_t k, const float* a,
           std::int64_t lda, bool trans_a, const float* b, std::int64_t ldb,
           bool trans_b, float* c, std::int64_t ldc,
           const SgemmEpilogue& ep = {});

}  // namespace diva
