// Runtime ISA dispatch for the GEMM microkernels.
//
// The sgemm/igemm drivers (blocking, packing-buffer management, the
// requantization epilogue) are ISA-agnostic; only the innermost
// register microkernel — and, for igemm, the packed-panel layout it
// consumes — varies per tier. Each tier's variant lives in its own
// translation unit compiled with exactly the -m flags it needs (the
// mkldnn shape: per-ISA kernel classes behind one descriptor), so the
// rest of the library stays at baseline x86-64 and the binary runs on
// any machine: CPUID decides at startup which variants execute.
//
// Tier resolution happens once, on first kernel call:
//   min( highest tier the CPU supports,
//        highest tier compiled in,
//        DIVA_ISA_MAX clamp if set )
// DIVA_ISA_MAX takes "scalar", "avx2", "avx512", or "avx512vnni" and
// exists for A/B benching and for exercising the reference tier in CI.
// Set DIVA_LOG_ISA=1 to print the resolution to stderr.
//
// Bit-exactness policy (tested in tests/test_isa_dispatch.cpp):
//   - igemm tiers are pure integer arithmetic and MUST be bit-identical
//     to igemm_reference for every shape; any blocking, packing layout,
//     or widening trick that changes the computed int32 sums is a bug.
//   - sgemm tiers reorder FMA accumulation, so cross-tier float results
//     agree only to tolerance. Fixed-tier runs stay bit-deterministic;
//     determinism is pinned per tier, never across tiers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace diva {

/// Kernel ISA tiers, ascending. Each tier implies the CPU features of
/// the ones below it on real hardware; dispatch verifies per tier.
enum class IsaTier : int {
  kScalar = 0,      // auto-vectorized C++ at baseline x86-64
  kAvx2 = 1,        // AVX2 + FMA
  kAvx512 = 2,      // AVX-512 F/BW/VL (pmaddwd int8 path)
  kAvx512Vnni = 3,  // + AVX-512 VNNI (vpdpbusd int8 path)
};

/// Stable lowercase name ("scalar", "avx2", "avx512", "avx512vnni").
const char* isa_tier_name(IsaTier t);

/// Parses an isa_tier_name-style string. Returns false (and leaves
/// *out untouched) on unknown names.
bool parse_isa_tier(const std::string& name, IsaTier* out);

/// sgemm register microkernel over packed panels:
///   acc[mr][nr] += Ap[kc][mr] x Bp[kc][nr]
/// Ap is [p][mr] row-panel order, Bp is [p][nr] column-panel order,
/// acc is row-major with leading dimension nr. Packing is shared across
/// tiers (gemm.cpp), parameterized by mr/nr.
struct SgemmVariant {
  const char* name;
  std::int64_t mr, nr;
  void (*micro)(const float* ap, const float* bp, std::int64_t kc,
                float* acc);
};

/// igemm microkernel plus its packing: packed formats are variant-
/// private (k-group interleave and element width differ per tier), so
/// the variant owns pack_a/pack_b and the driver only sizes buffers.
///
/// pack_a/pack_b write ceil(kc / k_unroll) k-groups, zero-padding rows
/// beyond mr_actual / columns beyond nr_actual / k positions beyond kc
/// (zero A entries make every padded product exactly zero). micro
/// accumulates acc[mr][nr] += sum_p a[p] * b_packed[p][j] where
/// b_packed holds b + b_zp_bias (the VNNI u8 path packs b ^ 0x80, i.e.
/// b + 128); the driver folds b_zp_bias into the hoisted zero-point
/// correction, keeping every tier bit-identical to igemm_reference.
struct IgemmVariant {
  const char* name;
  std::int64_t mr, nr, k_unroll;
  std::int32_t b_zp_bias;
  std::size_t a_elem_bytes, b_elem_bytes;
  void (*pack_a)(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
                 std::int64_t mr_actual, std::int64_t p0, std::int64_t kc,
                 void* out);
  void (*pack_b)(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
                 std::int64_t kc, std::int64_t j0, std::int64_t nr_actual,
                 void* out);
  void (*micro)(const void* ap, const void* bp, std::int64_t kc,
                std::int32_t* acc);

  std::int64_t padded_k(std::int64_t kc) const {
    return (kc + k_unroll - 1) / k_unroll * k_unroll;
  }
  std::size_t a_panel_bytes(std::int64_t kc) const {
    return static_cast<std::size_t>(padded_k(kc) * mr) * a_elem_bytes;
  }
  std::size_t b_panel_bytes(std::int64_t kc) const {
    return static_cast<std::size_t>(padded_k(kc) * nr) * b_elem_bytes;
  }
};

/// Requantization epilogue row kernel (gemmlowp/TFLite fixed point):
///   out[j] = clamp(mbqm(base + raw[j], mult, shift) + out_zp,
///                  act_min, act_max)              for j in [0, n)
/// Same bit-exactness contract as the igemm microkernels: every tier
/// must match the scalar fixedpoint.h arithmetic for all inputs.
/// act_min/act_max must lie within [-128, 127] (true for every int8
/// layer; the SIMD tiers narrow with saturating packs after the clamp).
struct RequantVariant {
  const char* name;
  void (*row)(const std::int32_t* raw, std::int64_t n, std::int32_t base,
              std::int32_t mult, int shift, std::int32_t out_zp,
              std::int32_t act_min, std::int32_t act_max, std::int8_t* out);
};

/// Upper bounds over all variants' tile shapes, so drivers can keep
/// fixed-size stack accumulators.
inline constexpr std::int64_t kMaxSgemmMr = 8;
inline constexpr std::int64_t kMaxSgemmNr = 32;
inline constexpr std::int64_t kMaxIgemmMr = 4;
inline constexpr std::int64_t kMaxIgemmNr = 32;

struct KernelDispatch {
  IsaTier tier = IsaTier::kScalar;
  SgemmVariant sgemm;
  IgemmVariant igemm;
  RequantVariant requant;
};

/// The active dispatch table, resolved once on first use.
const KernelDispatch& kernel_dispatch();

/// Shorthand for kernel_dispatch().tier — what benches record as
/// isa_tier in their JSON rows.
IsaTier active_isa_tier();

/// Tiers this process can actually execute (compiled in AND supported
/// by the host CPU), ascending. Always contains kScalar.
std::vector<IsaTier> available_isa_tiers();

/// Forces the dispatch to `tier` (must be in available_isa_tiers();
/// throws otherwise). For per-tier parity tests and interleaved A/B
/// benching. Not thread-safe: call only while no kernels are running.
void force_isa_tier(IsaTier tier);

}  // namespace diva
