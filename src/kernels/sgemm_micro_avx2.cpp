// AVX2+FMA sgemm microkernel: 6x16 register tile (12 ymm accumulators,
// 2 B-panel loads, 1 broadcast — 15 of 16 ymm). This TU is compiled
// with -mavx2 -mfma (see CMakeLists.txt); it must only be *called*
// after CPUID dispatch confirms the host supports both.
#include "kernels/isa_variants.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 6;
constexpr std::int64_t kNr = 16;

void micro(const float* ap, const float* bp, std::int64_t kc, float* acc) {
  __m256 c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm256_loadu_ps(acc + r * kNr);
    c[r][1] = _mm256_loadu_ps(acc + r * kNr + 8);
  }
  for (std::int64_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNr);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNr + 8);
    const float* arow = ap + p * kMr;
    for (std::int64_t r = 0; r < kMr; ++r) {
      const __m256 av = _mm256_broadcast_ss(arow + r);
      c[r][0] = _mm256_fmadd_ps(av, b0, c[r][0]);
      c[r][1] = _mm256_fmadd_ps(av, b1, c[r][1]);
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm256_storeu_ps(acc + r * kNr, c[r][0]);
    _mm256_storeu_ps(acc + r * kNr + 8, c[r][1]);
  }
}

}  // namespace

SgemmVariant sgemm_variant_avx2() { return {"avx2", kMr, kNr, micro}; }

}  // namespace diva::detail

#endif  // __AVX2__ && __FMA__
