#include "kernels/kernel_dispatch.h"

#include <cstdio>

#include "kernels/cpu_features.h"
#include "kernels/isa_variants.h"
#include "runtime/check.h"
#include "runtime/env.h"

namespace diva {

namespace {

constexpr IsaTier kAllTiers[] = {IsaTier::kScalar, IsaTier::kAvx2,
                                 IsaTier::kAvx512, IsaTier::kAvx512Vnni};

/// Compiled in AND supported by the host CPU.
bool tier_runnable(IsaTier t) {
  [[maybe_unused]] const CpuFeatures& f = cpu_features();
  switch (t) {
    case IsaTier::kScalar:
      return true;
    case IsaTier::kAvx2:
#ifdef DIVA_ISA_HAVE_AVX2
      return f.avx2 && f.fma;
#else
      return false;
#endif
    case IsaTier::kAvx512:
#ifdef DIVA_ISA_HAVE_AVX512
      return f.avx512f && f.avx512bw && f.avx512vl;
#else
      return false;
#endif
    case IsaTier::kAvx512Vnni:
#if defined(DIVA_ISA_HAVE_AVX512) && defined(DIVA_ISA_HAVE_AVX512VNNI)
      return f.avx512f && f.avx512bw && f.avx512vl && f.avx512vnni;
#else
      return false;
#endif
  }
  return false;
}

KernelDispatch make_dispatch(IsaTier tier) {
  KernelDispatch d;
  d.tier = tier;
  d.sgemm = detail::sgemm_variant_scalar();
  d.igemm = detail::igemm_variant_scalar();
  d.requant = detail::requant_variant_scalar();
  switch (tier) {
    case IsaTier::kScalar:
      break;
#ifdef DIVA_ISA_HAVE_AVX2
    case IsaTier::kAvx2:
      d.sgemm = detail::sgemm_variant_avx2();
      d.igemm = detail::igemm_variant_avx2();
      d.requant = detail::requant_variant_avx2();
      break;
#endif
#ifdef DIVA_ISA_HAVE_AVX512
    case IsaTier::kAvx512:
      d.sgemm = detail::sgemm_variant_avx512();
      d.igemm = detail::igemm_variant_avx512();
      d.requant = detail::requant_variant_avx512();
      break;
#ifdef DIVA_ISA_HAVE_AVX512VNNI
    case IsaTier::kAvx512Vnni:
      d.sgemm = detail::sgemm_variant_avx512();
      d.igemm = detail::igemm_variant_avx512_vnni();
      // The VNNI tier changes only the inner product instruction; the
      // requant epilogue reuses the AVX-512 F/BW variant.
      d.requant = detail::requant_variant_avx512();
      break;
#endif
#endif
    default:
      // A tier whose TU was not compiled; tier_runnable() keeps
      // resolution away from here, and force_isa_tier() rejects it.
      DIVA_CHECK(false, "kernel tier not compiled into this binary");
  }
  return d;
}

KernelDispatch resolve_dispatch() {
  IsaTier clamp = IsaTier::kAvx512Vnni;
  bool clamped = false;
  const std::string req = env_string("DIVA_ISA_MAX", "");
  if (!req.empty()) {
    if (parse_isa_tier(req, &clamp)) {
      clamped = true;
    } else {
      std::fprintf(stderr,
                   "[diva] DIVA_ISA_MAX=%s not recognized "
                   "(scalar|avx2|avx512|avx512vnni); ignoring\n",
                   req.c_str());
    }
  }
  IsaTier tier = IsaTier::kScalar;
  for (int t = static_cast<int>(clamp); t >= 0; --t) {
    if (tier_runnable(static_cast<IsaTier>(t))) {
      tier = static_cast<IsaTier>(t);
      break;
    }
  }
  if (env_flag("DIVA_LOG_ISA")) {
    const std::string flags = cpu_features_summary();
    std::fprintf(stderr, "[diva] kernel dispatch: %s (cpu: %s)%s\n",
                 isa_tier_name(tier),
                 flags.empty() ? "baseline x86-64" : flags.c_str(),
                 clamped ? " [clamped by DIVA_ISA_MAX]" : "");
  }
  return make_dispatch(tier);
}

KernelDispatch& mutable_dispatch() {
  static KernelDispatch d = resolve_dispatch();
  return d;
}

}  // namespace

const char* isa_tier_name(IsaTier t) {
  switch (t) {
    case IsaTier::kScalar:
      return "scalar";
    case IsaTier::kAvx2:
      return "avx2";
    case IsaTier::kAvx512:
      return "avx512";
    case IsaTier::kAvx512Vnni:
      return "avx512vnni";
  }
  return "unknown";
}

bool parse_isa_tier(const std::string& name, IsaTier* out) {
  for (const IsaTier t : kAllTiers) {
    if (name == isa_tier_name(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

const KernelDispatch& kernel_dispatch() { return mutable_dispatch(); }

IsaTier active_isa_tier() { return kernel_dispatch().tier; }

std::vector<IsaTier> available_isa_tiers() {
  std::vector<IsaTier> tiers;
  for (const IsaTier t : kAllTiers) {
    if (tier_runnable(t)) tiers.push_back(t);
  }
  return tiers;
}

void force_isa_tier(IsaTier tier) {
  DIVA_CHECK(tier_runnable(tier),
             "isa tier " << isa_tier_name(tier)
                         << " is not runnable on this host/build");
  mutable_dispatch() = make_dispatch(tier);
}

}  // namespace diva
