#include "kernels/cpu_features.h"

namespace diva {

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
#define DIVA_CPU_PROBE 1
#else
#define DIVA_CPU_PROBE 0
#endif

const CpuFeatures& cpu_features() {
  static const CpuFeatures features = [] {
    CpuFeatures f;
#if DIVA_CPU_PROBE
    __builtin_cpu_init();
    f.avx2 = __builtin_cpu_supports("avx2") != 0;
    f.fma = __builtin_cpu_supports("fma") != 0;
    f.avx512f = __builtin_cpu_supports("avx512f") != 0;
    f.avx512bw = __builtin_cpu_supports("avx512bw") != 0;
    f.avx512vl = __builtin_cpu_supports("avx512vl") != 0;
    f.avx512vnni = __builtin_cpu_supports("avx512vnni") != 0;
#endif
    return f;
  }();
  return features;
}

std::string cpu_features_summary() {
  const CpuFeatures& f = cpu_features();
  std::string s;
  const auto append = [&s](bool have, const char* name) {
    if (!have) return;
    if (!s.empty()) s += ',';
    s += name;
  };
  append(f.avx2, "avx2");
  append(f.fma, "fma");
  append(f.avx512f, "avx512f");
  append(f.avx512bw, "avx512bw");
  append(f.avx512vl, "avx512vl");
  append(f.avx512vnni, "avx512vnni");
  return s;
}

}  // namespace diva
