// AVX-512 (F/BW/VL, no VNNI) igemm microkernel: the same exact
// k-pair-interleaved int16 vpmaddwd scheme as the AVX2 variant at zmm
// width — 4x32 tile, 8 zmm accumulators, 2 B loads, 1 pair broadcast.
// Deliberately compiled WITHOUT -mavx512vnni in its own TU so the
// compiler cannot peephole vpmaddwd+vpaddd into vpdpwssd and crash a
// non-VNNI AVX-512 host; the vpdpbusd path lives in
// igemm_micro_avx512_vnni.cpp. Bit-identical to igemm_reference.
#include "kernels/isa_variants.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <cstring>

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kKu = 2;

void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
            std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kMr + r) * kKu + t] =
            (r < mr && p < kc)
                ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p])
                : 0;
      }
    }
  }
}

void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kNr + j) * kKu + t] =
            (j < nr && p < kc)
                ? static_cast<std::int16_t>(b[(p0 + p) * ldb + j0 + j])
                : 0;
      }
    }
  }
}

void micro(const void* ap_v, const void* bp_v, std::int64_t kc,
           std::int32_t* acc) {
  const auto* ap = static_cast<const std::int16_t*>(ap_v);
  const auto* bp = static_cast<const std::int16_t*>(bp_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  __m512i c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm512_loadu_si512(acc + r * kNr);
    c[r][1] = _mm512_loadu_si512(acc + r * kNr + 16);
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int16_t* bg = bp + g * kNr * kKu;
    const __m512i b0 = _mm512_loadu_si512(bg);
    const __m512i b1 = _mm512_loadu_si512(bg + 32);
    const std::int16_t* ag = ap + g * kMr * kKu;
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t pair;
      std::memcpy(&pair, ag + r * kKu, sizeof(pair));
      const __m512i av = _mm512_set1_epi32(pair);
      c[r][0] = _mm512_add_epi32(c[r][0], _mm512_madd_epi16(av, b0));
      c[r][1] = _mm512_add_epi32(c[r][1], _mm512_madd_epi16(av, b1));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm512_storeu_si512(acc + r * kNr, c[r][0]);
    _mm512_storeu_si512(acc + r * kNr + 16, c[r][1]);
  }
}

}  // namespace

IgemmVariant igemm_variant_avx512() {
  return {"avx512",
          kMr,
          kNr,
          kKu,
          /*b_zp_bias=*/0,
          sizeof(std::int16_t),
          sizeof(std::int16_t),
          pack_a,
          pack_b,
          micro};
}

}  // namespace diva::detail

#endif  // __AVX512F__ && __AVX512BW__
