// AVX-512 (F/BW/VL, no VNNI) igemm microkernel: the same exact
// k-pair-interleaved int16 vpmaddwd scheme as the AVX2 variant at zmm
// width — 4x32 tile, 8 zmm accumulators, 2 B loads, 1 pair broadcast.
// Deliberately compiled WITHOUT -mavx512vnni in its own TU so the
// compiler cannot peephole vpmaddwd+vpaddd into vpdpwssd and crash a
// non-VNNI AVX-512 host; the vpdpbusd path lives in
// igemm_micro_avx512_vnni.cpp. Bit-identical to igemm_reference.
#include "kernels/isa_variants.h"

#if defined(__AVX512F__) && defined(__AVX512BW__)

#include <immintrin.h>

#include <algorithm>
#include <cstdint>
#include <cstring>

#include "kernels/fixedpoint.h"

namespace diva::detail {
namespace {

constexpr std::int64_t kMr = 4;
constexpr std::int64_t kNr = 32;
constexpr std::int64_t kKu = 2;

void pack_a(const std::int8_t* a, std::int64_t lda, std::int64_t i0,
            std::int64_t mr, std::int64_t p0, std::int64_t kc, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t r = 0; r < kMr; ++r) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kMr + r) * kKu + t] =
            (r < mr && p < kc)
                ? static_cast<std::int16_t>(a[(i0 + r) * lda + p0 + p])
                : 0;
      }
    }
  }
}

void pack_b(const std::int8_t* b, std::int64_t ldb, std::int64_t p0,
            std::int64_t kc, std::int64_t j0, std::int64_t nr, void* out_v) {
  auto* out = static_cast<std::int16_t*>(out_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  for (std::int64_t g = 0; g < groups; ++g) {
    for (std::int64_t j = 0; j < kNr; ++j) {
      for (std::int64_t t = 0; t < kKu; ++t) {
        const std::int64_t p = g * kKu + t;
        out[(g * kNr + j) * kKu + t] =
            (j < nr && p < kc)
                ? static_cast<std::int16_t>(b[(p0 + p) * ldb + j0 + j])
                : 0;
      }
    }
  }
}

void micro(const void* ap_v, const void* bp_v, std::int64_t kc,
           std::int32_t* acc) {
  const auto* ap = static_cast<const std::int16_t*>(ap_v);
  const auto* bp = static_cast<const std::int16_t*>(bp_v);
  const std::int64_t groups = (kc + kKu - 1) / kKu;
  __m512i c[kMr][2];
  for (std::int64_t r = 0; r < kMr; ++r) {
    c[r][0] = _mm512_loadu_si512(acc + r * kNr);
    c[r][1] = _mm512_loadu_si512(acc + r * kNr + 16);
  }
  for (std::int64_t g = 0; g < groups; ++g) {
    const std::int16_t* bg = bp + g * kNr * kKu;
    const __m512i b0 = _mm512_loadu_si512(bg);
    const __m512i b1 = _mm512_loadu_si512(bg + 32);
    const std::int16_t* ag = ap + g * kMr * kKu;
    for (std::int64_t r = 0; r < kMr; ++r) {
      std::int32_t pair;
      std::memcpy(&pair, ag + r * kKu, sizeof(pair));
      const __m512i av = _mm512_set1_epi32(pair);
      c[r][0] = _mm512_add_epi32(c[r][0], _mm512_madd_epi16(av, b0));
      c[r][1] = _mm512_add_epi32(c[r][1], _mm512_madd_epi16(av, b1));
    }
  }
  for (std::int64_t r = 0; r < kMr; ++r) {
    _mm512_storeu_si512(acc + r * kNr, c[r][0]);
    _mm512_storeu_si512(acc + r * kNr + 16, c[r][1]);
  }
}

// --------------------------------------------------------------------------
// Requantization epilogue, AVX-512 (16 lanes / iteration). Same
// constant-nudge SRDHM construction as the AVX2 variant (see
// igemm_micro_avx2.cpp for the equivalence argument); saturation and
// round-up corrections use mask registers instead of blend vectors.
// --------------------------------------------------------------------------

__m512i srdhm_avx512(__m512i a, __m512i b) {
  const __m512i nudge = _mm512_set1_epi64(1LL << 30);
  __m512i even = _mm512_mul_epi32(a, b);  // even lanes -> 8 x int64
  __m512i odd = _mm512_mul_epi32(_mm512_srli_epi64(a, 32),
                                 _mm512_srli_epi64(b, 32));
  even = _mm512_srli_epi64(_mm512_add_epi64(even, nudge), 31);
  odd = _mm512_srli_epi64(_mm512_add_epi64(odd, nudge), 31);
  __m512i res =
      _mm512_mask_blend_epi32(0xAAAA, even, _mm512_slli_epi64(odd, 32));
  const __m512i i32min = _mm512_set1_epi32(INT32_MIN);
  const __mmask16 sat = _mm512_cmpeq_epi32_mask(a, i32min) &
                        _mm512_cmpeq_epi32_mask(b, i32min);
  return _mm512_mask_mov_epi32(res, sat, _mm512_set1_epi32(INT32_MAX));
}

__m512i rdbpot_avx512(__m512i x, int exponent) {
  if (exponent == 0) return x;
  const std::int32_t mask =
      static_cast<std::int32_t>((1u << exponent) - 1u);
  const __m512i one = _mm512_set1_epi32(1);
  const __m512i maskv = _mm512_set1_epi32(mask);
  const __m512i rem = _mm512_and_si512(x, maskv);
  __m512i res = _mm512_sra_epi32(x, _mm_cvtsi32_si128(exponent));
  // threshold = mask >> 1, plus 1 where x < 0.
  __m512i thr = _mm512_set1_epi32(mask >> 1);
  const __mmask16 neg =
      _mm512_cmplt_epi32_mask(x, _mm512_setzero_si512());
  thr = _mm512_mask_add_epi32(thr, neg, thr, one);
  const __mmask16 up = _mm512_cmpgt_epi32_mask(rem, thr);
  return _mm512_mask_add_epi32(res, up, res, one);
}

void requant_row(const std::int32_t* raw, std::int64_t n, std::int32_t base,
                 std::int32_t mult, int shift, std::int32_t out_zp,
                 std::int32_t act_min, std::int32_t act_max,
                 std::int8_t* out) {
  const int left = shift > 0 ? shift : 0;
  const int right = shift > 0 ? 0 : -shift;
  const __m128i left_cnt = _mm_cvtsi32_si128(left);
  const __m512i basev = _mm512_set1_epi32(base);
  const __m512i multv = _mm512_set1_epi32(mult);
  const __m512i zpv = _mm512_set1_epi32(out_zp);
  const __m512i minv = _mm512_set1_epi32(act_min);
  const __m512i maxv = _mm512_set1_epi32(act_max);
  std::int64_t j = 0;
  for (; j + 16 <= n; j += 16) {
    __m512i x = _mm512_add_epi32(basev, _mm512_loadu_si512(raw + j));
    // Wrapping 32-bit left shift == the scalar int64-widen-then-
    // truncate (low 32 bits agree).
    x = _mm512_sll_epi32(x, left_cnt);
    x = rdbpot_avx512(srdhm_avx512(x, multv), right);
    x = _mm512_add_epi32(x, zpv);
    x = _mm512_min_epi32(_mm512_max_epi32(x, minv), maxv);
    // Post-clamp values fit int8, so the truncating narrow is exact.
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + j),
                     _mm512_cvtepi32_epi8(x));
  }
  for (; j < n; ++j) {
    const std::int32_t scaled =
        multiply_by_quantized_multiplier(base + raw[j], mult, shift);
    out[j] = static_cast<std::int8_t>(
        std::clamp(scaled + out_zp, act_min, act_max));
  }
}

}  // namespace

RequantVariant requant_variant_avx512() { return {"avx512", requant_row}; }

IgemmVariant igemm_variant_avx512() {
  return {"avx512",
          kMr,
          kNr,
          kKu,
          /*b_zp_bias=*/0,
          sizeof(std::int16_t),
          sizeof(std::int16_t),
          pack_a,
          pack_b,
          micro};
}

}  // namespace diva::detail

#endif  // __AVX512F__ && __AVX512BW__
