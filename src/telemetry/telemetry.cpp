#include "telemetry/telemetry.h"

#include <pthread.h>

#include <algorithm>
#include <bit>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>

#include "runtime/env.h"

namespace diva::telemetry {
namespace {

// -1 = not yet read from env; 0/1 = resolved.
std::atomic<int> g_enabled{-1};

// Bumped in the forked child so every thread (the child has exactly
// one at that point, but its thread-local slot cache is inherited)
// re-registers its slot on next use.
std::atomic<std::uint64_t> g_slot_epoch{0};
std::atomic<std::uint32_t> g_next_slot{0};

struct Registry {
  std::mutex mu;
  // Stable addresses: hot paths cache references across registrations.
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

Registry& registry();

// fork() can land while another thread holds the registry mutex (e.g.
// a respawning serve worker forks from a dispatch thread while a
// client thread registers a metric). Lock across the fork so the
// child's view of the maps is consistent, then zero everything in the
// child: a worker accounts only for its own work and the parent merges
// worker snapshots shipped over the pipe.
void atfork_prepare() { registry().mu.lock(); }
void atfork_parent() { registry().mu.unlock(); }
void atfork_child() {
  Registry& r = registry();
  r.mu.unlock();
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, h] : r.histograms) h->reset();
  g_slot_epoch.fetch_add(1, std::memory_order_relaxed);
  g_next_slot.store(0, std::memory_order_relaxed);
}

Registry& registry() {
  static Registry* r = [] {
    auto* reg = new Registry();
    ::pthread_atfork(atfork_prepare, atfork_parent, atfork_child);
    return reg;
  }();
  return *r;
}

void append_json_string(std::string* out, const std::string& s) {
  out->push_back('"');
  for (char ch : s) {
    switch (ch) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\n': *out += "\\n"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          *out += buf;
        } else {
          out->push_back(ch);
        }
    }
  }
  out->push_back('"');
}

void append_double(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out += buf;
}

}  // namespace

bool enabled() {
  if constexpr (!kCompiledIn) return false;
  int e = g_enabled.load(std::memory_order_relaxed);
  if (e < 0) {
    e = env_flag("DIVA_TELEMETRY", /*fallback=*/true) ? 1 : 0;
    g_enabled.store(e, std::memory_order_relaxed);
  }
  return e != 0;
}

void set_enabled(bool on) {
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

int shard_index() {
  thread_local std::uint64_t t_epoch = ~std::uint64_t{0};
  thread_local int t_slot = 0;
  const std::uint64_t epoch = g_slot_epoch.load(std::memory_order_relaxed);
  if (t_epoch != epoch) {
    t_slot = static_cast<int>(g_next_slot.fetch_add(
                 1, std::memory_order_relaxed) %
             static_cast<std::uint32_t>(kShards));
    t_epoch = epoch;
  }
  return t_slot;
}

std::uint64_t Counter::value() const {
  std::uint64_t total = 0;
  for (const auto& cell : cells_) {
    total += cell.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() {
  for (auto& cell : cells_) cell.v.store(0, std::memory_order_relaxed);
}

int hist_bucket(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kHistLinearMax)) {
    return static_cast<int>(v);
  }
  const int octave = std::bit_width(v);  // >= 5
  const std::uint64_t lo = std::uint64_t{1} << (octave - 1);
  const int sub = static_cast<int>((v - lo) >> (octave - 3));  // (v-lo)*4/lo
  return kHistLinearMax + (octave - 5) * kHistSubBuckets + sub;
}

void hist_bucket_bounds(int bucket, std::uint64_t* lo, std::uint64_t* hi) {
  if (bucket < kHistLinearMax) {
    *lo = *hi = static_cast<std::uint64_t>(bucket);
    return;
  }
  const int t = bucket - kHistLinearMax;
  const int octave = 5 + t / kHistSubBuckets;
  const int sub = t % kHistSubBuckets;
  const std::uint64_t base = std::uint64_t{1} << (octave - 1);
  const std::uint64_t width = base >> 2;  // base / kHistSubBuckets
  *lo = base + static_cast<std::uint64_t>(sub) * width;
  *hi = *lo + width - 1;
}

double HistogramData::quantile(double p) const {
  if (count == 0 || buckets.empty()) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  const double rank = p * static_cast<double>(count - 1);
  std::uint64_t cum = 0;
  for (int b = 0; b < static_cast<int>(buckets.size()); ++b) {
    const std::uint64_t n = buckets[b];
    if (n == 0) continue;
    if (static_cast<double>(cum + n) > rank) {
      std::uint64_t lo = 0, hi = 0;
      hist_bucket_bounds(b, &lo, &hi);
      const double frac =
          n == 1 ? 0.0 : (rank - static_cast<double>(cum)) /
                             static_cast<double>(n - 1);
      return static_cast<double>(lo) +
             frac * static_cast<double>(hi - lo);
    }
    cum += n;
  }
  std::uint64_t lo = 0, hi = 0;
  hist_bucket_bounds(static_cast<int>(buckets.size()) - 1, &lo, &hi);
  return static_cast<double>(hi);
}

HistogramData Histogram::data() const {
  HistogramData out;
  out.buckets.assign(kHistBuckets, 0);
  for (const auto& cell : cells_) {
    for (int b = 0; b < kHistBuckets; ++b) {
      out.buckets[b] += cell.buckets[b].load(std::memory_order_relaxed);
    }
    out.count += cell.count.load(std::memory_order_relaxed);
    out.sum += cell.sum.load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() {
  for (auto& cell : cells_) {
    for (auto& b : cell.buckets) b.store(0, std::memory_order_relaxed);
    cell.count.store(0, std::memory_order_relaxed);
    cell.sum.store(0, std::memory_order_relaxed);
  }
}

bool Snapshot::operator==(const Snapshot& other) const {
  if (counters != other.counters) return false;
  if (histograms.size() != other.histograms.size()) return false;
  for (const auto& [name, h] : histograms) {
    auto it = other.histograms.find(name);
    if (it == other.histograms.end()) return false;
    if (h.count != it->second.count || h.sum != it->second.sum ||
        h.buckets != it->second.buckets) {
      return false;
    }
  }
  return true;
}

Counter& counter(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.counters.find(name);
  if (it == r.counters.end()) {
    it = r.counters.emplace(name, std::make_unique<Counter>(name)).first;
  }
  return *it->second;
}

Histogram& histogram(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.histograms.find(name);
  if (it == r.histograms.end()) {
    it = r.histograms.emplace(name, std::make_unique<Histogram>(name)).first;
  }
  return *it->second;
}

Snapshot snapshot() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  Snapshot snap;
  for (const auto& [name, c] : r.counters) snap.counters[name] = c->value();
  for (const auto& [name, h] : r.histograms) snap.histograms[name] = h->data();
  return snap;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (auto& [name, c] : r.counters) c->reset();
  for (auto& [name, h] : r.histograms) h->reset();
}

void merge(Snapshot* into, const Snapshot& other) {
  for (const auto& [name, v] : other.counters) into->counters[name] += v;
  for (const auto& [name, h] : other.histograms) {
    HistogramData& dst = into->histograms[name];
    if (dst.buckets.empty()) dst.buckets.assign(kHistBuckets, 0);
    const std::size_t n = std::min(dst.buckets.size(), h.buckets.size());
    for (std::size_t b = 0; b < n; ++b) dst.buckets[b] += h.buckets[b];
    dst.count += h.count;
    dst.sum += h.sum;
  }
}

Snapshot diff(const Snapshot& now, const Snapshot& base) {
  Snapshot out;
  for (const auto& [name, v] : now.counters) {
    auto it = base.counters.find(name);
    const std::uint64_t b = it == base.counters.end() ? 0 : it->second;
    out.counters[name] = v >= b ? v - b : 0;
  }
  for (const auto& [name, h] : now.histograms) {
    auto it = base.histograms.find(name);
    HistogramData d = h;
    if (it != base.histograms.end()) {
      const HistogramData& bh = it->second;
      const std::size_t n = std::min(d.buckets.size(), bh.buckets.size());
      for (std::size_t b = 0; b < n; ++b) {
        d.buckets[b] = d.buckets[b] >= bh.buckets[b]
                           ? d.buckets[b] - bh.buckets[b]
                           : 0;
      }
      d.count = d.count >= bh.count ? d.count - bh.count : 0;
      d.sum = d.sum >= bh.sum ? d.sum - bh.sum : 0;
    }
    out.histograms[name] = std::move(d);
  }
  return out;
}

std::string to_json(const Snapshot& snap) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out.push_back(':');
    out += std::to_string(v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    if (!first) out.push_back(',');
    first = false;
    append_json_string(&out, name);
    out += ":{\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += ",\"mean\":";
    append_double(&out, h.mean());
    out += ",\"p50\":";
    append_double(&out, h.quantile(0.50));
    out += ",\"p90\":";
    append_double(&out, h.quantile(0.90));
    out += ",\"p99\":";
    append_double(&out, h.quantile(0.99));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      if (!first_bucket) out.push_back(',');
      first_bucket = false;
      out.push_back('[');
      out += std::to_string(b);
      out.push_back(',');
      out += std::to_string(h.buckets[b]);
      out.push_back(']');
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace diva::telemetry
