// In-process telemetry: named counters and log-bucketed histograms.
//
// The paper's central cost story is a *query budget* — Table 2 prices
// evasion in attack iterations, and real-world black-box feasibility
// hinges on per-query accounting — so the runtime counts its own work
// as a first-class concern: kernel invocations and MACs, deployed-
// artifact queries, FD/SPSA probes, engine shard timings, serve queue
// depth and batch occupancy. Everything is aggregated through one
// global registry and exported as a Snapshot (JSON for benches, a
// binary codec for the serve wire — see serve/protocol.h).
//
// Hot-path design:
//   - A metric is registered once (mutex-guarded name map) and then
//     updated lock-free: each Counter/Histogram owns kShards
//     cache-line-sized slots, and a thread picks its slot once via a
//     thread-local index — updates are one relaxed atomic add with no
//     sharing between threads that landed on different slots.
//     Aggregation happens only at snapshot time.
//   - Fork-aware: a pthread_atfork handler (registered with the
//     registry) locks the registry around the fork, zeroes every metric
//     in the child, and bumps the slot epoch so worker threads
//     re-register their slots. A forked serve worker therefore counts
//     only its own work; the parent merges worker snapshots shipped
//     over the existing parent<->worker pipe.
//
// Kill switches:
//   - Compile time: configure with -DDIVA_TELEMETRY=OFF (defines
//     DIVA_TELEMETRY_DISABLED) and every update compiles to nothing
//     (kCompiledIn is constexpr false; add/record are empty inline
//     functions). Snapshots are then empty but the API keeps working,
//     so serve/bench code needs no #ifdefs.
//   - Runtime: DIVA_TELEMETRY=0 disables updates (one relaxed load +
//     branch per update); set_enabled() is the test hook.
//
// Metric-name convention: dot-separated lowercase paths, e.g.
// "kernels.igemm.macs.avx2", "serve.request_us". Histogram names end
// in their unit (_us, .jobs) — values are unsigned integers.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace diva::telemetry {

#ifdef DIVA_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

/// Runtime switch: DIVA_TELEMETRY env flag (default on), memoized on
/// first use; set_enabled() overrides it (tests, benches' paired runs).
/// Always false when compiled out.
bool enabled();
void set_enabled(bool on);

/// Per-metric update slots. More shards = less false sharing under
/// contention; aggregation cost grows linearly. 16 covers every pool
/// width in the repo (engine tests go to 16 threads).
inline constexpr int kShards = 16;

/// Slot index of the calling thread (assigned on first use, re-assigned
/// after the slot epoch changes — i.e. after fork in the child).
int shard_index();

namespace detail {
struct alignas(64) CounterCell {
  std::atomic<std::uint64_t> v{0};
};
}  // namespace detail

/// Monotonic event counter. Updates are relaxed atomic adds on the
/// caller's shard; value() sums the shards (no torn totals: each shard
/// is a single 64-bit atomic).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n) {
    if constexpr (!kCompiledIn) {
      (void)n;
      return;
    } else {
      if (!enabled()) return;
      cells_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }
  }

  std::uint64_t value() const;
  void reset();
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  detail::CounterCell cells_[kShards];
};

// ---------------------------------------------------------------------------
// Histograms: log-linear buckets (HdrHistogram-coarse shape).
// ---------------------------------------------------------------------------

/// Values 0..15 get exact buckets; above that each power-of-two octave
/// is split into 4 linear sub-buckets, so quantile estimates carry at
/// most ~25% bucket error across the full uint64 range.
inline constexpr int kHistLinearMax = 16;
inline constexpr int kHistSubBuckets = 4;
inline constexpr int kHistBuckets =
    kHistLinearMax + (64 - 4) * kHistSubBuckets;  // 256

/// Bucket index for a value (monotone in v).
int hist_bucket(std::uint64_t v);
/// Inclusive [lo, hi] value range of a bucket.
void hist_bucket_bounds(int bucket, std::uint64_t* lo, std::uint64_t* hi);

/// Aggregated histogram contents: what snapshots carry and the wire
/// ships. All fields are exact integers, so encode/decode round-trips
/// are bit-exact.
struct HistogramData {
  std::vector<std::uint64_t> buckets;  // size kHistBuckets (or empty)
  std::uint64_t count = 0;
  std::uint64_t sum = 0;

  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
  /// Approximate p-quantile (p in [0,1]), linearly interpolated inside
  /// the landing bucket. 0 when empty.
  double quantile(double p) const;
};

class Histogram {
 public:
  explicit Histogram(std::string name) : name_(std::move(name)) {}
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) {
    if constexpr (!kCompiledIn) {
      (void)v;
      return;
    } else {
      if (!enabled()) return;
      Cell& c = cells_[shard_index()];
      c.buckets[hist_bucket(v)].fetch_add(1, std::memory_order_relaxed);
      c.count.fetch_add(1, std::memory_order_relaxed);
      c.sum.fetch_add(v, std::memory_order_relaxed);
    }
  }

  HistogramData data() const;
  void reset();
  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> buckets[kHistBuckets]{};
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
  };
  std::string name_;
  Cell cells_[kShards];
};

// ---------------------------------------------------------------------------
// Registry and snapshots.
// ---------------------------------------------------------------------------

/// Point-in-time aggregation of every registered metric. Counters and
/// histogram contents are exact integers; merge() sums (parent +
/// workers), diff() subtracts a baseline (per-sweep-point deltas in
/// benches) — both field-wise, both exact.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistogramData> histograms;

  bool operator==(const Snapshot& other) const;
};

/// Registers (first use) or fetches a metric. References stay valid for
/// the life of the process — hot paths cache them in function-local
/// statics (see the DIVA_TELEM_* macros below). Registration happens
/// even while disabled, so enabling later starts from zero rather than
/// from missing metrics.
Counter& counter(const std::string& name);
Histogram& histogram(const std::string& name);

/// Aggregates every registered metric.
Snapshot snapshot();

/// Zeroes every registered metric (names stay registered).
void reset();

/// into += other (unknown names are inserted).
void merge(Snapshot* into, const Snapshot& other);

/// now - base, element-wise, clamped at 0 (metrics born after `base`
/// pass through unchanged).
Snapshot diff(const Snapshot& now, const Snapshot& base);

/// One JSON object: {"counters":{...},"histograms":{name:{"count":..,
/// "sum":..,"mean":..,"p50":..,"p90":..,"p99":..,"buckets":[[idx,n],..]}}}.
/// Buckets are sparse [index, count] pairs. Stable key order (std::map).
std::string to_json(const Snapshot& snap);

// ---------------------------------------------------------------------------
// Hot-path macros: register once per call site, then lock-free updates.
// In DIVA_TELEMETRY_DISABLED builds the add/record bodies are empty
// inline functions, so these compile to nothing.
// ---------------------------------------------------------------------------

#define DIVA_TELEM_COUNT(name_literal, amount)               \
  do {                                                       \
    static ::diva::telemetry::Counter& diva_telem_c_ =       \
        ::diva::telemetry::counter(name_literal);            \
    diva_telem_c_.add(amount);                               \
  } while (0)

#define DIVA_TELEM_RECORD(name_literal, value)               \
  do {                                                       \
    static ::diva::telemetry::Histogram& diva_telem_h_ =     \
        ::diva::telemetry::histogram(name_literal);          \
    diva_telem_h_.record(value);                             \
  } while (0)

}  // namespace diva::telemetry
