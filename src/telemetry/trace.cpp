#include "telemetry/trace.h"

#include <pthread.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <vector>

#include "runtime/env.h"
#include "telemetry/telemetry.h"

namespace diva::telemetry {
namespace {

// Per-thread span cap: 1<<17 spans * 32 B = 4 MiB worst case per
// thread. Overflow drops the span and counts it ("trace.spans_dropped")
// rather than growing without bound in long daemon runs.
constexpr std::size_t kMaxSpansPerThread = std::size_t{1} << 17;

struct SpanEvent {
  const char* name;
  std::uint64_t start_us;
  std::uint64_t dur_us;
};

struct ThreadBuf {
  std::uint32_t tid = 0;
  std::vector<SpanEvent> spans;
};

struct TraceState {
  std::mutex mu;
  // Buffers are never freed: thread-local pointers into this list must
  // stay valid for the thread's lifetime (and across fork).
  std::vector<std::unique_ptr<ThreadBuf>> bufs;
  std::uint32_t next_tid = 1;
};

// -1 = unresolved, else 0/1.
std::atomic<int> g_trace_mode{-1};

TraceState& state();

void trace_atfork_prepare() { state().mu.lock(); }
void trace_atfork_parent() { state().mu.unlock(); }
void trace_atfork_child() {
  TraceState& s = state();
  s.mu.unlock();
  // Inherited spans belong to the parent's timeline; the worker exits
  // via _exit() and never exports, so keeping them would only burn
  // memory per respawn.
  for (auto& buf : s.bufs) buf->spans.clear();
}

TraceState& state() {
  static TraceState* s = [] {
    auto* st = new TraceState();
    ::pthread_atfork(trace_atfork_prepare, trace_atfork_parent,
                     trace_atfork_child);
    return st;
  }();
  return *s;
}

ThreadBuf& thread_buf() {
  thread_local ThreadBuf* t_buf = [] {
    TraceState& s = state();
    std::lock_guard<std::mutex> lock(s.mu);
    s.bufs.push_back(std::make_unique<ThreadBuf>());
    s.bufs.back()->tid = s.next_tid++;
    return s.bufs.back().get();
  }();
  return *t_buf;
}

void export_at_exit() {
  const std::string path = env_string("DIVA_TRACE", "");
  if (path.empty()) return;
  write_trace_file(path);
}

}  // namespace

bool trace_enabled() {
  if constexpr (!kCompiledIn) return false;
  int m = g_trace_mode.load(std::memory_order_relaxed);
  if (m < 0) {
    m = !env_string("DIVA_TRACE", "").empty() ? 1 : 0;
    if (m == 1) std::atexit(export_at_exit);
    g_trace_mode.store(m, std::memory_order_relaxed);
  }
  return m != 0;
}

void set_trace_enabled(bool on) {
  // Resolve env first so the atexit exporter is registered exactly once
  // even when a test toggles recording on and off.
  trace_enabled();
  g_trace_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

namespace detail {

std::uint64_t trace_now_us() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

void record_span(const char* name, std::uint64_t start_us,
                 std::uint64_t dur_us) {
  ThreadBuf& buf = thread_buf();
  if (buf.spans.size() >= kMaxSpansPerThread) {
    DIVA_TELEM_COUNT("trace.spans_dropped", 1);
    return;
  }
  buf.spans.push_back(SpanEvent{name, start_us, dur_us});
}

}  // namespace detail

std::size_t trace_span_count() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  std::size_t n = 0;
  for (const auto& buf : s.bufs) n += buf->spans.size();
  return n;
}

void write_trace(std::ostream& os) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  const long pid = static_cast<long>(::getpid());
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const auto& buf : s.bufs) {
    for (const SpanEvent& ev : buf->spans) {
      if (!first) os << ',';
      first = false;
      os << "{\"name\":\"" << ev.name
         << "\",\"cat\":\"diva\",\"ph\":\"X\",\"pid\":" << pid
         << ",\"tid\":" << buf->tid << ",\"ts\":" << ev.start_us
         << ",\"dur\":" << ev.dur_us << '}';
    }
  }
  os << "]}";
}

bool write_trace_file(const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  write_trace(out);
  out.flush();
  return static_cast<bool>(out);
}

void clear_trace() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lock(s.mu);
  for (auto& buf : s.bufs) buf->spans.clear();
}

}  // namespace diva::telemetry
