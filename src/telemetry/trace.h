// Scoped trace spans with a chrome://tracing JSON exporter.
//
// Usage: drop DIVA_TRACE_SPAN("engine.shard"); at the top of a scope.
// When tracing is enabled, the span records {name, thread, start,
// duration} into a per-thread buffer (one mutex hit per *thread*
// lifetime, not per span); when DIVA_TRACE=<path> is set, the process
// writes all spans at exit as a chrome://tracing "traceEvents" JSON
// (load in chrome://tracing or https://ui.perfetto.dev).
//
// Tracing is off unless DIVA_TRACE is set (or a test flips
// set_trace_enabled) — a disabled span is two relaxed loads. With
// DIVA_TELEMETRY_DISABLED builds spans compile to nothing.
//
// Forked serve workers inherit DIVA_TRACE but exit via _exit(), which
// skips the atexit exporter — worker spans are intentionally dropped
// (their *stats* travel over the pipe instead); the parent's file is
// written once, by the parent.
//
// Span names must outlive the span (string literals or strings owned
// by a longer-lived object): spans store the pointer, not a copy.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

namespace diva::telemetry {

/// True when span recording is active (DIVA_TRACE set and telemetry
/// not disabled). Memoized from env on first call.
bool trace_enabled();
/// Test/tool hook: force recording on/off regardless of DIVA_TRACE.
void set_trace_enabled(bool on);

namespace detail {
void record_span(const char* name, std::uint64_t start_us,
                 std::uint64_t dur_us);
std::uint64_t trace_now_us();
void trace_on_fork_child();
}  // namespace detail

class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(name),
        active_(kTraceCompiledIn && trace_enabled()),
        start_us_(active_ ? detail::trace_now_us() : 0) {}
  ~TraceSpan() {
    if (active_) {
      detail::record_span(name_, start_us_, detail::trace_now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
#ifdef DIVA_TELEMETRY_DISABLED
  static constexpr bool kTraceCompiledIn = false;
#else
  static constexpr bool kTraceCompiledIn = true;
#endif
  const char* name_;
  bool active_;
  std::uint64_t start_us_;
};

/// Number of spans currently buffered (all threads, capped — see
/// kMaxSpansPerThread in trace.cpp; overflow increments the
/// "trace.spans_dropped" counter instead of growing without bound).
std::size_t trace_span_count();

/// Serializes buffered spans as chrome://tracing JSON.
void write_trace(std::ostream& os);
/// write_trace to a file; returns false on I/O failure.
bool write_trace_file(const std::string& path);
/// Drops all buffered spans.
void clear_trace();

#define DIVA_TELEM_CAT2(a, b) a##b
#define DIVA_TELEM_CAT(a, b) DIVA_TELEM_CAT2(a, b)
#define DIVA_TRACE_SPAN(name_expr) \
  ::diva::telemetry::TraceSpan DIVA_TELEM_CAT(diva_trace_span_, \
                                              __LINE__)(name_expr)

}  // namespace diva::telemetry
