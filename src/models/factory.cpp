#include "models/factory.h"

#include "nn/activations.h"
#include "nn/batchnorm.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "quant/qat_layers.h"

namespace diva {

namespace {

enum class Act { kNone, kRelu, kRelu6, kSigmoid, kHardSigmoid, kLeakyRelu };

/// Activations the int8 compiler lowers to a 256-entry LUT rather than
/// fusing into the requant clamp. In QAT mode they need their own
/// fake-quant grid on both sides (conv output and activation output).
bool is_lut_act(Act act) {
  return act == Act::kSigmoid || act == Act::kHardSigmoid ||
         act == Act::kLeakyRelu;
}

/// Emits layers into a Sequential according to the construction mode.
class NetBuilder {
 public:
  NetBuilder(NetMode mode) : mode_(mode) {}

  /// Conv "unit": conv (+BN in float mode) (+activation) (+FQ in QAT).
  void conv(Sequential& seq, const std::string& name, std::int64_t in_c,
            std::int64_t out_c, std::int64_t k, std::int64_t stride,
            std::int64_t pad, Act act) {
    if (mode_ == NetMode::kQat) {
      seq.add(std::make_unique<QatConv2d>(name, in_c, out_c, k, stride, pad,
                                          /*bias=*/true));
    } else {
      // Float mode trains bias-free convs (BN provides the shift);
      // folded mode needs the bias slot for the fused offset.
      seq.add(std::make_unique<Conv2d>(name, in_c, out_c, k, stride, pad,
                                       /*bias=*/mode_ != NetMode::kFloat));
    }
    if (mode_ == NetMode::kFloat) {
      seq.add(std::make_unique<BatchNorm2d>(name + "_bn", out_c));
    }
    finish_unit(seq, name, act);
  }

  void depthwise(Sequential& seq, const std::string& name,
                 std::int64_t channels, std::int64_t k, std::int64_t stride,
                 std::int64_t pad, Act act) {
    if (mode_ == NetMode::kQat) {
      seq.add(std::make_unique<QatDepthwiseConv2d>(name, channels, k, stride,
                                                   pad, /*bias=*/true));
    } else {
      seq.add(std::make_unique<DepthwiseConv2d>(
          name, channels, k, stride, pad, /*bias=*/mode_ != NetMode::kFloat));
    }
    if (mode_ == NetMode::kFloat) {
      seq.add(std::make_unique<BatchNorm2d>(name + "_bn", channels));
    }
    finish_unit(seq, name, act);
  }

  void dense(Sequential& seq, const std::string& name, std::int64_t in_f,
             std::int64_t out_f) {
    if (mode_ == NetMode::kQat) {
      seq.add(std::make_unique<QatDense>(name, in_f, out_f));
    } else {
      seq.add(std::make_unique<Dense>(name, in_f, out_f));
    }
    add_fq(seq, name);
  }

  /// Residual block: main = conv(act) + conv(no act); optional
  /// projection shortcut; post-add activation in the parent.
  void residual(Sequential& seq, const std::string& name, std::int64_t in_c,
                std::int64_t out_c, std::int64_t stride, Act act) {
    auto main = std::make_unique<Sequential>("main");
    conv(*main, name + "_c1", in_c, out_c, 3, stride, 1, act);
    conv(*main, name + "_c2", out_c, out_c, 3, 1, 1, Act::kNone);

    std::unique_ptr<Sequential> shortcut;
    if (in_c != out_c || stride != 1) {
      shortcut = std::make_unique<Sequential>("shortcut");
      conv(*shortcut, name + "_proj", in_c, out_c, 1, stride, 0, Act::kNone);
    }
    seq.add(std::make_unique<Residual>(name, std::move(main),
                                       std::move(shortcut)));
    if (is_lut_act(act)) {
      // The add gets its own output grid; the LUT activation follows as
      // a standalone unit with a second grid.
      add_fq(seq, name + "_add");
    }
    finish_unit(seq, name + "_post", act);
  }

  /// DenseNet growth layer: concat(x, conv(x)).
  void dense_branch(Sequential& seq, const std::string& name,
                    std::int64_t in_c, std::int64_t growth, Act act) {
    auto body = std::make_unique<Sequential>("body");
    conv(*body, name + "_grow", in_c, growth, 3, 1, 1, act);
    seq.add(std::make_unique<DenseBranch>(name, std::move(body)));
    add_fq(seq, name + "_cat");
  }

  void input_stub(Sequential& seq) {
    if (mode_ == NetMode::kQat) {
      seq.add(std::make_unique<ActFakeQuant>("input_fq"));
    }
  }

 private:
  void add_act(Sequential& seq, const std::string& name, Act act) {
    if (act == Act::kRelu) {
      seq.add(std::make_unique<Relu>(name + "_relu"));
    } else if (act == Act::kRelu6) {
      seq.add(std::make_unique<Relu6>(name + "_relu6"));
    } else if (act == Act::kSigmoid) {
      seq.add(std::make_unique<Sigmoid>(name + "_sigmoid"));
    } else if (act == Act::kHardSigmoid) {
      seq.add(std::make_unique<HardSigmoid>(name + "_hsig"));
    } else if (act == Act::kLeakyRelu) {
      seq.add(std::make_unique<LeakyRelu>(name + "_lrelu"));
    }
  }

  /// Activation + fake-quant tail of a conv/depthwise unit. ReLU-family
  /// activations fuse into the producing op's requant clamp, so they sit
  /// before the single fake-quant; LUT activations need the producer's
  /// own grid first and a second grid after the activation.
  void finish_unit(Sequential& seq, const std::string& name, Act act) {
    if (is_lut_act(act)) {
      add_fq(seq, name);
      add_act(seq, name, act);
      add_fq(seq, name + "_act");
    } else {
      add_act(seq, name, act);
      add_fq(seq, name);
    }
  }

  void add_fq(Sequential& seq, const std::string& name) {
    if (mode_ == NetMode::kQat) {
      seq.add(std::make_unique<ActFakeQuant>(name + "_fq"));
    }
  }

  NetMode mode_;
};

std::unique_ptr<Sequential> make_mini_resnet(const std::string& model_name,
                                             int num_classes, NetMode mode,
                                             std::int64_t in_c,
                                             std::int64_t width) {
  NetBuilder b(mode);
  auto net = std::make_unique<Sequential>(model_name);
  b.input_stub(*net);
  b.conv(*net, "stem", in_c, width, 3, 1, 1, Act::kRelu);
  b.residual(*net, "s1b0", width, width, 1, Act::kRelu);
  b.residual(*net, "s2b0", width, width * 2, 2, Act::kRelu);
  b.residual(*net, "s2b1", width * 2, width * 2, 1, Act::kRelu);
  b.residual(*net, "s3b0", width * 2, width * 4, 2, Act::kRelu);
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  b.dense(*net, "fc", width * 4, num_classes);
  return net;
}

std::unique_ptr<Sequential> make_mini_mobilenet(int num_classes,
                                                NetMode mode) {
  NetBuilder b(mode);
  auto net = std::make_unique<Sequential>("mobilenet");
  b.input_stub(*net);
  b.conv(*net, "stem", 3, 8, 3, 1, 1, Act::kRelu6);

  struct Block { std::int64_t in, out, stride; };
  const Block blocks[] = {
      {8, 16, 1}, {16, 32, 2}, {32, 32, 1}, {32, 64, 2}, {64, 64, 1}};
  int idx = 0;
  for (const Block& blk : blocks) {
    const std::string name = "b" + std::to_string(idx++);
    b.depthwise(*net, name + "_dw", blk.in, 3, blk.stride, 1, Act::kRelu6);
    b.conv(*net, name + "_pw", blk.in, blk.out, 1, 1, 0, Act::kRelu6);
  }
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  b.dense(*net, "fc", 64, num_classes);
  return net;
}

std::unique_ptr<Sequential> make_mini_densenet(int num_classes,
                                               NetMode mode) {
  NetBuilder b(mode);
  constexpr std::int64_t growth = 8;
  auto net = std::make_unique<Sequential>("densenet");
  b.input_stub(*net);
  b.conv(*net, "stem", 3, 12, 3, 1, 1, Act::kRelu);
  net->add(std::make_unique<AvgPool2d>("stem_pool", 2));

  std::int64_t channels = 12;
  for (int layer = 0; layer < 2; ++layer) {
    b.dense_branch(*net, "d1l" + std::to_string(layer), channels, growth,
                   Act::kRelu);
    channels += growth;
  }
  b.conv(*net, "t1", channels, 24, 1, 1, 0, Act::kRelu);
  net->add(std::make_unique<AvgPool2d>("t1_pool", 2));
  channels = 24;
  for (int layer = 0; layer < 2; ++layer) {
    b.dense_branch(*net, "d2l" + std::to_string(layer), channels, growth,
                   Act::kRelu);
    channels += growth;
  }
  b.conv(*net, "t2", channels, 48, 1, 1, 0, Act::kRelu);
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  b.dense(*net, "fc", 48, num_classes);
  return net;
}

}  // namespace

std::string arch_name(Arch arch) {
  switch (arch) {
    case Arch::kResNet: return "ResNet";
    case Arch::kMobileNet: return "MobileNet";
    case Arch::kDenseNet: return "DenseNet";
  }
  return "?";
}

std::unique_ptr<Sequential> make_model(Arch arch, int num_classes,
                                       NetMode mode) {
  DIVA_CHECK(num_classes > 1, "need at least two classes");
  switch (arch) {
    case Arch::kResNet:
      return make_mini_resnet("resnet", num_classes, mode, 3, 8);
    case Arch::kMobileNet:
      return make_mini_mobilenet(num_classes, mode);
    case Arch::kDenseNet:
      return make_mini_densenet(num_classes, mode);
  }
  DIVA_FAIL("unknown arch");
}

std::unique_ptr<Sequential> make_digit_net(NetMode mode) {
  NetBuilder b(mode);
  auto net = std::make_unique<Sequential>("digitnet");
  b.input_stub(*net);
  b.conv(*net, "c1", 1, 16, 3, 1, 1, Act::kRelu);
  net->add(std::make_unique<MaxPool2d>("p1", 2));
  b.conv(*net, "c2", 16, 32, 3, 1, 1, Act::kRelu);
  net->add(std::make_unique<MaxPool2d>("p2", 2));
  b.conv(*net, "c3", 32, 32, 3, 1, 1, Act::kRelu);
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  b.dense(*net, "fc", 32, 10);
  return net;
}

std::unique_ptr<Sequential> make_edge_residual_net(int num_classes,
                                                   NetMode mode,
                                                   std::int64_t in_c) {
  DIVA_CHECK(num_classes > 1, "need at least two classes");
  // MobileNet-style residual fixture for the extended op catalog: every
  // LUT activation kind (hard-sigmoid, leaky-relu, sigmoid), an average
  // pool, and an identity-shortcut residual add — on top of the usual
  // depthwise/pointwise/GAP/dense ops.
  NetBuilder b(mode);
  auto net = std::make_unique<Sequential>("edgenet");
  b.input_stub(*net);
  b.conv(*net, "stem", in_c, 8, 3, 1, 1, Act::kHardSigmoid);
  b.depthwise(*net, "b0_dw", 8, 3, 1, 1, Act::kLeakyRelu);
  b.conv(*net, "b0_pw", 8, 16, 1, 1, 0, Act::kRelu6);
  net->add(std::make_unique<AvgPool2d>("pool", 2));
  b.residual(*net, "r0", 16, 16, 1, Act::kLeakyRelu);
  b.conv(*net, "head", 16, 16, 1, 1, 0, Act::kSigmoid);
  net->add(std::make_unique<GlobalAvgPool>("gap"));
  b.dense(*net, "fc", 16, num_classes);
  return net;
}

std::unique_ptr<Sequential> make_face_net(int num_identities, NetMode mode) {
  // VGGFace internally employs the ResNet topology (paper §6); the face
  // model is therefore the ResNet factory with its own head.
  return make_mini_resnet("facenet", num_identities, mode, 3, 8);
}

Tensor penultimate_features(Sequential& model, const Tensor& x) {
  const auto kids = model.children();
  // Find the last Dense (the classifier head).
  std::size_t head = kids.size();
  for (std::size_t i = kids.size(); i-- > 0;) {
    if (dynamic_cast<Dense*>(kids[i]) != nullptr) {
      head = i;
      break;
    }
  }
  DIVA_CHECK(head < kids.size(), "model has no Dense head");
  return model.forward_prefix(x, head);
}

}  // namespace diva
