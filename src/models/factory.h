// Model factories for the three evaluation architectures plus the
// digit and face models.
//
// Every architecture can be instantiated in three modes:
//   kFloat  — training topology: Conv(bias-free) + BatchNorm + activation.
//   kFolded — deployment float topology: Conv(bias) + activation, BN
//             folded away. Used as the intermediate between training and
//             quantization and for verifying fold exactness.
//   kQat    — quantization-aware topology: input ActFakeQuant stub,
//             QatConv/QatDense layers, activation fake-quant after every
//             conv/dense/add/concat — the pattern QuantizedModel::compile
//             understands.
//
// The three ImageNet-track architectures mirror the paper's choices at
// reduced scale: MiniResNet (residual additions), MiniMobileNet
// (depthwise-separable convolutions, ReLU6), MiniDenseNet (dense
// concatenation blocks). FaceNet reuses the ResNet topology, as VGGFace
// does in the paper (§6).
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.h"

namespace diva {

enum class NetMode { kFloat, kFolded, kQat };

enum class Arch { kResNet, kMobileNet, kDenseNet };

/// Display name matching the paper's tables ("ResNet", ...).
std::string arch_name(Arch arch);

/// 32x32x3 classifier in the requested mode. Weights uninitialized;
/// call init_parameters() or transfer weights from a trained model.
std::unique_ptr<Sequential> make_model(Arch arch, int num_classes,
                                       NetMode mode);

/// 28x28x1 digit classifier (Figure 4 / MNIST track).
std::unique_ptr<Sequential> make_digit_net(NetMode mode);

/// MobileNet-style residual fixture exercising the extended quantized op
/// catalog: LUT activations (sigmoid / hard-sigmoid / leaky-relu), an
/// identity-shortcut residual add (TFLite double-rescale), and average
/// pooling. `in_c` selects input depth (1 = digit-shaped, 3 = image).
std::unique_ptr<Sequential> make_edge_residual_net(int num_classes,
                                                   NetMode mode,
                                                   std::int64_t in_c = 1);

/// Face-recognition model (§6): ResNet topology, one logit per identity.
std::unique_ptr<Sequential> make_face_net(int num_identities, NetMode mode);

/// Penultimate-layer representation: runs every child up to (excluding)
/// the final Dense layer; returns [N, D] features.
Tensor penultimate_features(Sequential& model, const Tensor& x);

}  // namespace diva
