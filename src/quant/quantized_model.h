// QuantizedModel: the deployed integer-only edge model.
//
// This is the reproduction's stand-in for a TFLite int8 flatbuffer: a
// small static IR (ops over int8 slot buffers) compiled from a trained
// QAT graph. Weights are quantized per output channel with exactly the
// same grid the QAT fake-quant layers simulated; activation grids come
// from the frozen ActFakeQuant observers; ReLU/ReLU6 are fused into the
// requantization clamp. Inference is integer-only (int32 accumulators,
// fixed-point requantization) — only the final logits are dequantized.
//
// The converter understands the module patterns emitted by the model
// factories in src/models:
//   [ActFakeQuant] input stub
//   [QatConv2d|QatDepthwiseConv2d] (+ Relu|Relu6)? + ActFakeQuant
//   [QatDense] + ActFakeQuant
//   [MaxPool2d|AvgPool2d|GlobalAvgPool|Flatten]    (scale preserving)
//   [Sigmoid|HardSigmoid|LeakyRelu] + ActFakeQuant -> QLut
//   [Residual] (+ Relu)? + ActFakeQuant            -> QAdd
//   [DenseBranch] + ActFakeQuant                   -> QConcat
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "nn/module.h"
#include "quant/int8_kernels.h"

namespace diva {

class Sequential;

/// One intermediate tensor of the int8 graph.
struct QSlot {
  Shape shape;      // per-image shape (no batch dim), e.g. [C,H,W] or [D]
  QuantParams qp;
};

/// One operation of the int8 graph.
struct QOp {
  enum class Kind {
    kConv,
    kDepthwiseConv,
    kDense,
    kMaxPool,
    kAvgPool,
    kGlobalAvgPool,
    kFlatten,
    kAdd,
    kConcat,
    kRequantize,
    // LUT-lowered pointwise activation (sigmoid / hard-sigmoid /
    // leaky-relu). Appended last so serialized op kinds stay stable.
    kLut,
  };

  Kind kind;
  int in0 = -1, in1 = -1;  // input slot ids (in1 only for kAdd/kConcat)
  int out = -1;

  // Conv / dense payload. kLut reuses `weights` for its 256-entry table.
  ConvGeom geom;
  std::int64_t out_c = 0;
  std::vector<std::int8_t> weights;  // conv: [OC,IC,K,K]; dense: [out][in]
  std::vector<std::int32_t> bias;
  RequantChannel rq;
  std::int32_t act_min = kQmin;
  std::int32_t act_max = kQmax;
};

class QuantizedModel {
 public:
  /// Compiles a calibrated QAT model (eval mode, observers initialized)
  /// into an integer-only graph. `image_shape` is the per-image input
  /// shape [C, H, W]. Throws diva::Error on unsupported patterns.
  static QuantizedModel compile(Sequential& qat_model,
                                const Shape& image_shape);

  /// Runs float [N,C,H,W] inputs through the int8 graph and returns
  /// dequantized float logits [N, classes]. True batched execution: the
  /// graph runs layer by layer over the whole batch (slot buffers sized
  /// N x slot in workspace scratch, convs batch-parallel over the
  /// thread pool, the dense head one whole-batch GEMM) — this is the
  /// path the AttackEngine and the FD/SPSA gradient probes drive.
  Tensor forward(const Tensor& x) const;

  /// Integer-only path for one image (CHW floats are quantized at the
  /// input grid first). Returns raw int8 logits. Thin wrapper over the
  /// batched executor with N = 1.
  std::vector<std::int8_t> forward_single_int8(const float* image) const;

  /// Integer-only batched executor: `images` holds n contiguous CHW
  /// float images; writes n x classes raw int8 logits.
  void run_batch_int8(const float* images, std::int64_t n,
                      std::int8_t* out_logits) const;

  const QuantParams& input_qparams() const { return slots_[0].qp; }
  const QSlot& output_slot() const { return slots_[output_slot_]; }
  std::size_t num_ops() const { return ops_.size(); }
  std::size_t num_slots() const { return slots_.size(); }
  const std::vector<QOp>& ops() const { return ops_; }
  const std::vector<QSlot>& slots() const { return slots_; }
  int input_slot_index() const { return input_slot_; }
  int output_slot_index() const { return output_slot_; }

  /// Reassembles a model from its serialized parts (quant/qmodel_io.h).
  static QuantizedModel from_parts(std::vector<QSlot> slots,
                                   std::vector<QOp> ops, int input_slot,
                                   int output_slot);

  /// Approximate serialized size in bytes (weights + biases), the
  /// "model size" statistic quoted when comparing edge adaptations.
  std::int64_t weight_bytes() const;

 private:
  std::vector<QSlot> slots_;
  std::vector<QOp> ops_;
  int input_slot_ = 0;
  int output_slot_ = 0;
};

}  // namespace diva
