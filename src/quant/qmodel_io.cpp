#include "quant/qmodel_io.h"

#include <fstream>
#include <istream>
#include <ostream>

#include "tensor/serialize.h"

namespace diva {

namespace {

constexpr std::int64_t kMagic = 0xD1AAF10E;
constexpr std::int64_t kVersion = 1;

template <typename T>
void write_pod_vec(std::ostream& os, const std::vector<T>& v) {
  write_i64(os, static_cast<std::int64_t>(v.size()));
  os.write(reinterpret_cast<const char*>(v.data()),
           static_cast<std::streamsize>(v.size() * sizeof(T)));
  DIVA_CHECK(os.good(), "qmodel write failed");
}

template <typename T>
std::vector<T> read_pod_vec(std::istream& is) {
  const std::int64_t n = read_i64(is);
  DIVA_CHECK(n >= 0 && n < (1LL << 28), "qmodel: corrupt vector size " << n);
  std::vector<T> v(static_cast<std::size_t>(n));
  is.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  DIVA_CHECK(is.good(), "qmodel read failed");
  return v;
}

void write_qparams(std::ostream& os, const QuantParams& qp) {
  write_f32(os, qp.scale);
  write_i64(os, qp.zero_point);
}

QuantParams read_qparams(std::istream& is) {
  QuantParams qp;
  qp.scale = read_f32(is);
  qp.zero_point = static_cast<std::int32_t>(read_i64(is));
  return qp;
}

void write_geom(std::ostream& os, const ConvGeom& g) {
  for (const std::int64_t v : {g.in_c, g.in_h, g.in_w, g.kernel_h, g.kernel_w,
                               g.stride, g.pad}) {
    write_i64(os, v);
  }
}

ConvGeom read_geom(std::istream& is) {
  ConvGeom g;
  g.in_c = read_i64(is);
  g.in_h = read_i64(is);
  g.in_w = read_i64(is);
  g.kernel_h = read_i64(is);
  g.kernel_w = read_i64(is);
  g.stride = read_i64(is);
  g.pad = read_i64(is);
  return g;
}

}  // namespace

void save_quantized_model(const QuantizedModel& m, std::ostream& os) {
  write_i64(os, kMagic);
  write_i64(os, kVersion);
  write_i64(os, m.input_slot_index());
  write_i64(os, m.output_slot_index());

  write_i64(os, static_cast<std::int64_t>(m.slots().size()));
  for (const QSlot& slot : m.slots()) {
    write_i64(os, static_cast<std::int64_t>(slot.shape.rank()));
    for (std::size_t i = 0; i < slot.shape.rank(); ++i) {
      write_i64(os, slot.shape[i]);
    }
    write_qparams(os, slot.qp);
  }

  write_i64(os, static_cast<std::int64_t>(m.ops().size()));
  for (const QOp& op : m.ops()) {
    write_i64(os, static_cast<std::int64_t>(op.kind));
    write_i64(os, op.in0);
    write_i64(os, op.in1);
    write_i64(os, op.out);
    write_geom(os, op.geom);
    write_i64(os, op.out_c);
    write_pod_vec(os, op.weights);
    write_pod_vec(os, op.bias);
    write_pod_vec(os, op.rq.multiplier);
    write_pod_vec(os, op.rq.shift);
    write_i64(os, op.act_min);
    write_i64(os, op.act_max);
  }
}

QuantizedModel load_quantized_model(std::istream& is) {
  DIVA_CHECK(read_i64(is) == kMagic, "qmodel: bad magic");
  DIVA_CHECK(read_i64(is) == kVersion, "qmodel: unsupported version");
  const int input_slot = static_cast<int>(read_i64(is));
  const int output_slot = static_cast<int>(read_i64(is));

  const std::int64_t num_slots = read_i64(is);
  DIVA_CHECK(num_slots > 0 && num_slots < (1 << 20), "qmodel: slot count");
  std::vector<QSlot> slots;
  slots.reserve(static_cast<std::size_t>(num_slots));
  for (std::int64_t s = 0; s < num_slots; ++s) {
    const std::int64_t rank = read_i64(is);
    DIVA_CHECK(rank >= 0 && rank <= 4, "qmodel: slot rank " << rank);
    std::vector<std::int64_t> dims(static_cast<std::size_t>(rank));
    for (auto& d : dims) d = read_i64(is);
    QSlot slot;
    slot.shape = Shape(std::move(dims));
    slot.qp = read_qparams(is);
    slots.push_back(std::move(slot));
  }

  const std::int64_t num_ops = read_i64(is);
  DIVA_CHECK(num_ops >= 0 && num_ops < (1 << 20), "qmodel: op count");
  std::vector<QOp> ops;
  ops.reserve(static_cast<std::size_t>(num_ops));
  for (std::int64_t o = 0; o < num_ops; ++o) {
    QOp op;
    op.kind = static_cast<QOp::Kind>(read_i64(is));
    op.in0 = static_cast<int>(read_i64(is));
    op.in1 = static_cast<int>(read_i64(is));
    op.out = static_cast<int>(read_i64(is));
    op.geom = read_geom(is);
    op.out_c = read_i64(is);
    op.weights = read_pod_vec<std::int8_t>(is);
    op.bias = read_pod_vec<std::int32_t>(is);
    op.rq.multiplier = read_pod_vec<std::int32_t>(is);
    op.rq.shift = read_pod_vec<int>(is);
    op.act_min = static_cast<std::int32_t>(read_i64(is));
    op.act_max = static_cast<std::int32_t>(read_i64(is));
    ops.push_back(std::move(op));
  }

  return QuantizedModel::from_parts(std::move(slots), std::move(ops),
                                    input_slot, output_slot);
}

void save_quantized_model_file(const QuantizedModel& m,
                               const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  DIVA_CHECK(os.good(), "cannot open for write: " << path);
  save_quantized_model(m, os);
}

QuantizedModel load_quantized_model_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DIVA_CHECK(is.good(), "cannot open for read: " << path);
  return load_quantized_model(is);
}

}  // namespace diva
