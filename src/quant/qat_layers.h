// Quantization-aware layer variants.
//
// Each QAT layer derives from its float counterpart and overrides
// effective_weight() to run the forward/backward pass with per-channel
// fake-quantized weights. Gradients land on the float master weights
// (straight-through estimator), exactly the QAT training scheme of
// Jacob et al. (CVPR'18) that the paper's pipeline (tfmot) implements.
//
// The current per-channel scales are recomputed from the master weights
// on every forward, and are exposed for the int8 converter so that the
// deployed integer model uses bit-identical weight quantization.
#pragma once

#include <string>
#include <vector>

#include "nn/conv.h"
#include "nn/dense.h"
#include "quant/fake_quant.h"

namespace diva {

class QatConv2d : public Conv2d {
 public:
  using Conv2d::Conv2d;

  /// Scales used by the most recent forward (or computed fresh).
  std::vector<float> weight_scales() const {
    return per_channel_scales(const_cast<QatConv2d*>(this)->weight().value);
  }

  /// Per-tensor (not per-channel) weight quantization for ablations.
  void set_per_tensor(bool per_tensor) { per_tensor_ = per_tensor; }
  bool per_tensor() const { return per_tensor_; }

  /// Scales honoring the per-tensor ablation flag.
  std::vector<float> effective_scales();

 protected:
  const Tensor& effective_weight() override;

 private:
  Tensor fq_weight_;
  bool per_tensor_ = false;
};

class QatDepthwiseConv2d : public DepthwiseConv2d {
 public:
  using DepthwiseConv2d::DepthwiseConv2d;

  std::vector<float> weight_scales() const {
    return per_channel_scales(
        const_cast<QatDepthwiseConv2d*>(this)->weight().value);
  }

 protected:
  const Tensor& effective_weight() override;

 private:
  Tensor fq_weight_;
};

class QatDense : public Dense {
 public:
  using Dense::Dense;

  /// Dense weights are [in, out]; quantization is per output column,
  /// so scales are computed on the transposed view.
  std::vector<float> weight_scales() const;

 protected:
  const Tensor& effective_weight() override;

 private:
  Tensor fq_weight_;
};

}  // namespace diva
