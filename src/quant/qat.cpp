#include "quant/qat.h"

namespace diva {

std::vector<ActFakeQuant*> fake_quant_nodes(Module& m) {
  std::vector<ActFakeQuant*> out;
  m.visit([&out](Module& mod) {
    if (auto* fq = dynamic_cast<ActFakeQuant*>(&mod)) out.push_back(fq);
  });
  return out;
}

void set_quantize_enabled(Module& m, bool enabled) {
  for (ActFakeQuant* fq : fake_quant_nodes(m)) {
    fq->set_quantize_enabled(enabled);
  }
}

void calibrate(Module& m, const std::vector<Tensor>& batches) {
  DIVA_CHECK(!batches.empty(), "calibrate: no batches");
  m.set_training(true);
  for (const Tensor& batch : batches) (void)m.forward(batch);
  m.set_training(false);
}

bool fully_calibrated(Module& m) {
  for (ActFakeQuant* fq : fake_quant_nodes(m)) {
    if (!fq->initialized()) return false;
  }
  return true;
}

}  // namespace diva
