#include "quant/qparams.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace diva {

std::int8_t QuantParams::quantize(float x) const {
  const std::int32_t q =
      zero_point + static_cast<std::int32_t>(std::lround(x / scale));
  return static_cast<std::int8_t>(std::clamp<std::int32_t>(q, kQmin, kQmax));
}

QuantParams choose_qparams(float min_val, float max_val) {
  // The representable range must straddle zero.
  min_val = std::min(min_val, 0.0f);
  max_val = std::max(max_val, 0.0f);
  QuantParams qp;
  if (max_val == min_val) {
    qp.scale = 1.0f;
    qp.zero_point = 0;
    return qp;
  }
  qp.scale = (max_val - min_val) / static_cast<float>(kQmax - kQmin);
  const float zp_real = static_cast<float>(kQmin) - min_val / qp.scale;
  qp.zero_point = static_cast<std::int32_t>(
      std::clamp<float>(std::lround(zp_real), kQmin, kQmax));
  return qp;
}

std::vector<float> per_channel_scales(const Tensor& w) {
  DIVA_CHECK(w.rank() >= 2, "per_channel_scales: need rank >= 2 weights");
  const std::int64_t channels = w.dim(0);
  const std::int64_t per = w.numel() / channels;
  std::vector<float> scales(static_cast<std::size_t>(channels));
  for (std::int64_t c = 0; c < channels; ++c) {
    const float* p = w.raw() + c * per;
    float m = 0.0f;
    for (std::int64_t i = 0; i < per; ++i) m = std::max(m, std::fabs(p[i]));
    scales[static_cast<std::size_t>(c)] =
        std::max(m / static_cast<float>(kQmax), 1e-8f);
  }
  return scales;
}

std::vector<std::int8_t> quantize_per_channel(const Tensor& w,
                                              std::span<const float> scales) {
  const std::int64_t channels = w.dim(0);
  DIVA_CHECK(static_cast<std::int64_t>(scales.size()) == channels,
             "scale count mismatch");
  const std::int64_t per = w.numel() / channels;
  std::vector<std::int8_t> out(static_cast<std::size_t>(w.numel()));
  for (std::int64_t c = 0; c < channels; ++c) {
    const float inv = 1.0f / scales[static_cast<std::size_t>(c)];
    const float* p = w.raw() + c * per;
    std::int8_t* o = out.data() + c * per;
    for (std::int64_t i = 0; i < per; ++i) {
      const auto q = static_cast<std::int32_t>(std::lround(p[i] * inv));
      o[i] = static_cast<std::int8_t>(std::clamp<std::int32_t>(q, kQmin, kQmax));
    }
  }
  return out;
}

std::vector<std::int8_t> quantize_tensor(const Tensor& t,
                                         const QuantParams& qp) {
  std::vector<std::int8_t> out(static_cast<std::size_t>(t.numel()));
  for (std::int64_t i = 0; i < t.numel(); ++i) out[i] = qp.quantize(t[i]);
  return out;
}

Tensor dequantize_tensor(std::span<const std::int8_t> q, const Shape& shape,
                         const QuantParams& qp) {
  DIVA_CHECK(static_cast<std::int64_t>(q.size()) == shape.numel(),
             "dequantize size mismatch");
  Tensor out(shape);
  for (std::size_t i = 0; i < q.size(); ++i) {
    out[static_cast<std::int64_t>(i)] = qp.dequantize(q[i]);
  }
  return out;
}

void quantize_multiplier(double m, std::int32_t* multiplier, int* shift) {
  DIVA_CHECK(m >= 0.0, "negative requant multiplier");
  if (m == 0.0) {
    *multiplier = 0;
    *shift = 0;
    return;
  }
  int exponent = 0;
  const double q = std::frexp(m, &exponent);  // q in [0.5, 1)
  auto q_fixed = static_cast<std::int64_t>(std::llround(q * (1LL << 31)));
  DIVA_CHECK(q_fixed <= (1LL << 31), "requant multiplier overflow");
  if (q_fixed == (1LL << 31)) {
    q_fixed /= 2;
    ++exponent;
  }
  *shift = exponent;
  *multiplier = static_cast<std::int32_t>(q_fixed);
}

}  // namespace diva
