#include "quant/fake_quant.h"

#include <algorithm>
#include <cmath>

namespace diva {

Tensor fake_quantize(const Tensor& x, const QuantParams& qp) {
  Tensor out(x.shape());
  const float inv = 1.0f / qp.scale;
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const auto q = static_cast<std::int32_t>(std::lround(x[i] * inv)) +
                   qp.zero_point;
    const std::int32_t qc = std::clamp<std::int32_t>(q, kQmin, kQmax);
    out[i] = static_cast<float>(qc - qp.zero_point) * qp.scale;
  }
  return out;
}

Tensor fake_quantize_per_channel(const Tensor& w,
                                 std::span<const float> scales) {
  const std::int64_t channels = w.dim(0);
  DIVA_CHECK(static_cast<std::int64_t>(scales.size()) == channels,
             "fake_quantize_per_channel: scale count mismatch");
  const std::int64_t per = w.numel() / channels;
  Tensor out(w.shape());
  for (std::int64_t c = 0; c < channels; ++c) {
    const float s = scales[static_cast<std::size_t>(c)];
    const float inv = 1.0f / s;
    const float* p = w.raw() + c * per;
    float* o = out.raw() + c * per;
    for (std::int64_t i = 0; i < per; ++i) {
      const auto q = static_cast<std::int32_t>(std::lround(p[i] * inv));
      o[i] = static_cast<float>(std::clamp<std::int32_t>(q, kQmin, kQmax)) * s;
    }
  }
  return out;
}

ActFakeQuant::ActFakeQuant(std::string name, float ema_momentum)
    : Module(std::move(name)),
      ema_momentum_(ema_momentum),
      range_(Tensor(Shape{3}), /*trainable=*/false) {}

std::vector<std::pair<std::string, Parameter*>>
ActFakeQuant::local_parameters() {
  return {{"range", &range_}};
}

QuantParams ActFakeQuant::qparams() const {
  return choose_qparams(range_.value[0], range_.value[1]);
}

void ActFakeQuant::set_range(float min_val, float max_val) {
  range_.value[0] = min_val;
  range_.value[1] = max_val;
  range_.value[2] = 1.0f;
}

Tensor ActFakeQuant::forward(const Tensor& x) {
  if (training()) {
    float mn = x[0], mx = x[0];
    for (std::int64_t i = 1; i < x.numel(); ++i) {
      mn = std::min(mn, x[i]);
      mx = std::max(mx, x[i]);
    }
    if (!initialized()) {
      set_range(mn, mx);
    } else {
      range_.value[0] += ema_momentum_ * (mn - range_.value[0]);
      range_.value[1] += ema_momentum_ * (mx - range_.value[1]);
    }
  }

  if (!initialized() || !quantize_enabled_) {
    forward_quantized_ = false;
    return x;
  }

  forward_quantized_ = true;
  const QuantParams qp = qparams();
  // Representable real range for the STE clipping mask.
  const float lo = (static_cast<float>(kQmin) - qp.zero_point) * qp.scale;
  const float hi = (static_cast<float>(kQmax) - qp.zero_point) * qp.scale;
  cached_pass_mask_ = Tensor(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    cached_pass_mask_[i] = (x[i] >= lo && x[i] <= hi) ? 1.0f : 0.0f;
  }
  return fake_quantize(x, qp);
}

Tensor ActFakeQuant::backward(const Tensor& grad_out) {
  if (!forward_quantized_) return grad_out;
  DIVA_CHECK(grad_out.shape() == cached_pass_mask_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = grad_out[i] * cached_pass_mask_[i];
  }
  return grad_in;
}

}  // namespace diva
