// Serialization of compiled QuantizedModel artifacts — the equivalent
// of shipping a .tflite flatbuffer to the edge device. The format holds
// the full integer graph (slots with qparams, ops with int8 weights,
// int32 biases and fixed-point requant multipliers), so a loaded model
// runs bit-identically to the one that was saved without access to the
// float weights or the QAT graph.
#pragma once

#include <iosfwd>
#include <string>

#include "quant/quantized_model.h"

namespace diva {

void save_quantized_model(const QuantizedModel& m, std::ostream& os);
QuantizedModel load_quantized_model(std::istream& is);

void save_quantized_model_file(const QuantizedModel& m,
                               const std::string& path);
QuantizedModel load_quantized_model_file(const std::string& path);

}  // namespace diva
