// Fake quantization — the simulated-quantization building block of QAT.
//
// ActFakeQuant simulates int8 activation quantization inside a float
// graph: forward quantize-dequantizes through the affine grid; backward
// is the straight-through estimator with clipping (gradients pass where
// the input fell inside the representable range, and are zeroed where it
// was clipped). In training mode the layer also maintains an exponential
// moving average of the observed min/max (TF MovingAverageQuantize
// behavior); in eval mode it quantizes with the frozen range.
//
// Until the first training-mode forward initializes the range, the layer
// is a pass-through, so a freshly-built QAT skeleton behaves exactly
// like its float counterpart — which is what makes weight-transfer
// verification possible.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"
#include "quant/qparams.h"

namespace diva {

/// Quantize-dequantize through an int8 affine grid (out-of-place).
Tensor fake_quantize(const Tensor& x, const QuantParams& qp);

/// Per-channel symmetric weight fake-quantization (leading axis =
/// output channel).
Tensor fake_quantize_per_channel(const Tensor& w,
                                 std::span<const float> scales);

class ActFakeQuant : public Module {
 public:
  explicit ActFakeQuant(std::string name, float ema_momentum = 0.01f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<std::pair<std::string, Parameter*>> local_parameters() override;

  /// True once a training-mode forward has observed data.
  bool initialized() const { return range_.value[2] != 0.0f; }

  /// Frozen quantization parameters derived from the observed range.
  QuantParams qparams() const;

  float observed_min() const { return range_.value[0]; }
  float observed_max() const { return range_.value[1]; }

  /// Overrides the observed range (used by tests and PTQ pipelines).
  void set_range(float min_val, float max_val);

  /// When disabled the layer passes activations through unchanged while
  /// still updating statistics in training mode (observe-only phase of
  /// post-training calibration).
  void set_quantize_enabled(bool enabled) { quantize_enabled_ = enabled; }
  bool quantize_enabled() const { return quantize_enabled_; }

 private:
  float ema_momentum_;
  bool quantize_enabled_ = true;
  // Buffer {min, max, initialized-flag}; persisted with checkpoints.
  Parameter range_;
  Tensor cached_pass_mask_;  // 1 where gradient passes (STE clipping)
  bool forward_quantized_ = false;
};

}  // namespace diva
