// Integer-only int8 inference kernels.
//
// All kernels follow TFLite conventions: int8 activations with a
// per-tensor affine (scale, zero_point); int8 weights with per-output-
// channel symmetric scales; int32 bias pre-quantized at scale
// s_input * s_weight[c]; int32 accumulation; and fixed-point
// requantization via multiply_by_quantized_multiplier. Activation
// clamps (ReLU / ReLU6) are fused into the requantization clamp.
//
// The conv/dense/depthwise kernels lower onto the shared kernels/igemm
// core (int8 im2col panels + blocked GEMM with the requantization
// epilogue fused). The original naive scalar loops are retained as
// `*_reference` — integer arithmetic is exact, so the GEMM-backed
// kernels are pinned bit-identical against them in tests.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/qparams.h"
#include "tensor/tensor_ops.h"

namespace diva {

/// Precomputed per-channel requantization data.
struct RequantChannel {
  std::vector<std::int32_t> multiplier;
  std::vector<int> shift;
};

/// Builds per-channel requant multipliers for m[c] = s_in*s_w[c]/s_out.
RequantChannel make_requant(float s_in, std::span<const float> w_scales,
                            float s_out);

/// int8 convolution. `in` is CHW for a single image (callers loop /
/// parallelize over the batch), `w` is [OC, IC, K, K] int8, `bias` is
/// int32 at scale s_in*s_w[c]. Output clamped to [act_min, act_max]
/// (int8 domain, already including the fused activation bound).
void qconv2d(const std::int8_t* in, const ConvGeom& g, std::int32_t in_zp,
             const std::int8_t* w, std::int64_t out_c,
             const std::int32_t* bias, const RequantChannel& rq,
             std::int32_t out_zp, std::int32_t act_min, std::int32_t act_max,
             std::int8_t* out);

/// int8 depthwise convolution; `w` is [C, 1, K, K].
void qdepthwise_conv2d(const std::int8_t* in, const ConvGeom& g,
                       std::int32_t in_zp, const std::int8_t* w,
                       const std::int32_t* bias, const RequantChannel& rq,
                       std::int32_t out_zp, std::int32_t act_min,
                       std::int32_t act_max, std::int8_t* out);

/// int8 fully-connected for one row: in[features], w[out][features]
/// (row-major, i.e. already transposed to output-major), bias int32.
void qdense(const std::int8_t* in, std::int64_t in_f, std::int32_t in_zp,
            const std::int8_t* w, std::int64_t out_f,
            const std::int32_t* bias, const RequantChannel& rq,
            std::int32_t out_zp, std::int32_t act_min, std::int32_t act_max,
            std::int8_t* out);

/// Whole-batch int8 fully-connected: in is [n, in_f] row-major, out is
/// [n, out_f]. One GEMM over the batch (activations transposed into
/// workspace scratch so output channels become GEMM rows).
void qdense_batched(const std::int8_t* in, std::int64_t n, std::int64_t in_f,
                    std::int32_t in_zp, const std::int8_t* w,
                    std::int64_t out_f, const std::int32_t* bias,
                    const RequantChannel& rq, std::int32_t out_zp,
                    std::int32_t act_min, std::int32_t act_max,
                    std::int8_t* out);

// ---------------------------------------------------------------------------
// Naive scalar reference kernels (the pre-GEMM implementations). Used
// by parity tests to pin the igemm-backed kernels bit-exactly; not hot
// paths.
// ---------------------------------------------------------------------------

void qconv2d_reference(const std::int8_t* in, const ConvGeom& g,
                       std::int32_t in_zp, const std::int8_t* w,
                       std::int64_t out_c, const std::int32_t* bias,
                       const RequantChannel& rq, std::int32_t out_zp,
                       std::int32_t act_min, std::int32_t act_max,
                       std::int8_t* out);

void qdepthwise_conv2d_reference(const std::int8_t* in, const ConvGeom& g,
                                 std::int32_t in_zp, const std::int8_t* w,
                                 const std::int32_t* bias,
                                 const RequantChannel& rq, std::int32_t out_zp,
                                 std::int32_t act_min, std::int32_t act_max,
                                 std::int8_t* out);

void qdense_reference(const std::int8_t* in, std::int64_t in_f,
                      std::int32_t in_zp, const std::int8_t* w,
                      std::int64_t out_f, const std::int32_t* bias,
                      const RequantChannel& rq, std::int32_t out_zp,
                      std::int32_t act_min, std::int32_t act_max,
                      std::int8_t* out);

/// Elementwise add with requantization of both operands to the output
/// scale: out = clamp(zp_o + requant(a - zp_a) + requant(b - zp_b)).
void qadd(std::span<const std::int8_t> a, QuantParams qp_a,
          std::span<const std::int8_t> b, QuantParams qp_b,
          QuantParams qp_out, std::int32_t act_min, std::int32_t act_max,
          std::span<std::int8_t> out);

/// Requantizes a buffer from one affine grid to another.
void qrequantize(std::span<const std::int8_t> in, QuantParams qp_in,
                 QuantParams qp_out, std::span<std::int8_t> out);

/// Non-linear activations that do not map onto the fused requant clamp
/// (sigmoid / hard-sigmoid / leaky-relu) are lowered to a 256-entry
/// lookup table, TFLite style: lut[q + 128] = quantize_out(f(dequant_in(q))).
enum class LutKind { kSigmoid, kHardSigmoid, kLeakyRelu };

/// Builds the 256-entry int8 table for `kind` between the two affine
/// grids. `slope` is only read for kLeakyRelu.
std::vector<std::int8_t> build_activation_lut(LutKind kind, QuantParams qp_in,
                                              QuantParams qp_out,
                                              float slope = 0.01f);

/// Applies a 256-entry table elementwise: out[i] = lut[in[i] + 128].
void qlut(std::span<const std::int8_t> in, std::span<const std::int8_t> lut,
          std::span<std::int8_t> out);

/// Scalar reference for qlut: recomputes each element through the float
/// activation instead of the table. Bit-exact with qlut by construction
/// (the table itself is built from the same per-entry float math).
void qlut_reference(std::span<const std::int8_t> in, LutKind kind,
                    QuantParams qp_in, QuantParams qp_out, float slope,
                    std::span<std::int8_t> out);

/// int8 max pooling over one CHW image.
void qmaxpool2d(const std::int8_t* in, const ConvGeom& g, std::int8_t* out);

/// int8 average pooling (same scale in/out, rounding division).
void qavgpool2d(const std::int8_t* in, const ConvGeom& g, std::int8_t* out);

/// Global average pooling: CHW -> C (same scale, rounding division).
void qglobal_avgpool(const std::int8_t* in, std::int64_t c, std::int64_t hw,
                     std::int8_t* out);

}  // namespace diva
