#include "quant/qat_layers.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace diva {

std::vector<float> QatConv2d::effective_scales() {
  if (!per_tensor_) return weight_scales();
  const float m = max_abs(weight().value);
  const float s = std::max(m / static_cast<float>(kQmax), 1e-8f);
  return std::vector<float>(static_cast<std::size_t>(out_channels()), s);
}

const Tensor& QatConv2d::effective_weight() {
  const auto scales = effective_scales();
  fq_weight_ = fake_quantize_per_channel(weight().value, scales);
  return fq_weight_;
}

const Tensor& QatDepthwiseConv2d::effective_weight() {
  const auto scales = weight_scales();
  fq_weight_ = fake_quantize_per_channel(weight().value, scales);
  return fq_weight_;
}

std::vector<float> QatDense::weight_scales() const {
  // weight is [in, out]; compute per-output-column maxima.
  auto& self = const_cast<QatDense&>(*this);
  const Tensor& w = self.weight().value;
  const std::int64_t in = w.dim(0), out = w.dim(1);
  std::vector<float> scales(static_cast<std::size_t>(out), 0.0f);
  for (std::int64_t i = 0; i < in; ++i) {
    const float* row = w.raw() + i * out;
    for (std::int64_t j = 0; j < out; ++j) {
      scales[static_cast<std::size_t>(j)] =
          std::max(scales[static_cast<std::size_t>(j)], std::fabs(row[j]));
    }
  }
  for (auto& s : scales) s = std::max(s / static_cast<float>(kQmax), 1e-8f);
  return scales;
}

const Tensor& QatDense::effective_weight() {
  const auto scales = weight_scales();
  const Tensor& w = weight().value;
  const std::int64_t in = w.dim(0), out = w.dim(1);
  fq_weight_ = Tensor(w.shape());
  for (std::int64_t i = 0; i < in; ++i) {
    const float* row = w.raw() + i * out;
    float* orow = fq_weight_.raw() + i * out;
    for (std::int64_t j = 0; j < out; ++j) {
      const float s = scales[static_cast<std::size_t>(j)];
      const auto q = static_cast<std::int32_t>(std::lround(row[j] / s));
      orow[j] =
          static_cast<float>(std::clamp<std::int32_t>(q, kQmin, kQmax)) * s;
    }
  }
  return fq_weight_;
}

}  // namespace diva
