#include "quant/quantized_model.h"

#include <algorithm>
#include <cmath>

#include "kernels/workspace.h"
#include "nn/activations.h"
#include "nn/composite.h"
#include "nn/flatten.h"
#include "nn/pooling.h"
#include "nn/sequential.h"
#include "quant/qat_layers.h"
#include "runtime/thread_pool.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tensor/tensor_ops.h"

namespace diva {

namespace {

enum class ReluKind { kNone, kRelu, kRelu6 };

/// Incremental graph state while compiling.
struct Builder {
  std::vector<QSlot> slots;
  std::vector<QOp> ops;

  int add_slot(Shape shape, QuantParams qp) {
    slots.push_back({std::move(shape), qp});
    return static_cast<int>(slots.size() - 1);
  }

  /// Activation clamp bounds in the int8 domain for a fused activation.
  std::pair<std::int32_t, std::int32_t> act_bounds(ReluKind relu,
                                                   const QuantParams& qp) {
    std::int32_t lo = kQmin, hi = kQmax;
    if (relu == ReluKind::kRelu || relu == ReluKind::kRelu6) {
      lo = std::clamp<std::int32_t>(qp.zero_point, kQmin, kQmax);
    }
    if (relu == ReluKind::kRelu6) {
      hi = std::clamp<std::int32_t>(
          qp.zero_point + static_cast<std::int32_t>(std::lround(6.0f / qp.scale)),
          kQmin, kQmax);
    }
    return {lo, hi};
  }

  int emit_conv(QatConv2d& conv, ReluKind relu, const QuantParams& out_qp,
                int in_slot) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    DIVA_CHECK(in.shape.rank() == 3, "conv input must be CHW");
    QOp op;
    op.kind = QOp::Kind::kConv;
    op.in0 = in_slot;
    op.geom = ConvGeom{in.shape[0], in.shape[1], in.shape[2], conv.kernel(),
                       conv.kernel(), conv.stride(), conv.pad()};
    op.out_c = conv.out_channels();
    const auto scales = conv.effective_scales();
    op.weights = quantize_per_channel(conv.weight().value, scales);
    op.bias.resize(static_cast<std::size_t>(op.out_c), 0);
    for (std::int64_t c = 0; c < op.out_c; ++c) {
      const float b = conv.has_bias() ? conv.bias().value[c] : 0.0f;
      op.bias[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(
          std::lround(b / (in.qp.scale * scales[static_cast<std::size_t>(c)])));
    }
    op.rq = make_requant(in.qp.scale, scales, out_qp.scale);
    std::tie(op.act_min, op.act_max) = act_bounds(relu, out_qp);
    op.out = add_slot(Shape{op.out_c, op.geom.out_h(), op.geom.out_w()},
                      out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_depthwise(QatDepthwiseConv2d& conv, ReluKind relu,
                     const QuantParams& out_qp, int in_slot) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    DIVA_CHECK(in.shape.rank() == 3 && in.shape[0] == conv.channels(),
               "depthwise input mismatch");
    QOp op;
    op.kind = QOp::Kind::kDepthwiseConv;
    op.in0 = in_slot;
    op.geom = ConvGeom{conv.channels(), in.shape[1], in.shape[2],
                       conv.kernel(), conv.kernel(), conv.stride(),
                       conv.pad()};
    op.out_c = conv.channels();
    const auto scales = conv.weight_scales();
    op.weights = quantize_per_channel(conv.weight().value, scales);
    op.bias.resize(static_cast<std::size_t>(op.out_c), 0);
    for (std::int64_t c = 0; c < op.out_c; ++c) {
      const float b = conv.has_bias() ? conv.bias().value[c] : 0.0f;
      op.bias[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(
          std::lround(b / (in.qp.scale * scales[static_cast<std::size_t>(c)])));
    }
    op.rq = make_requant(in.qp.scale, scales, out_qp.scale);
    std::tie(op.act_min, op.act_max) = act_bounds(relu, out_qp);
    op.out = add_slot(Shape{op.out_c, op.geom.out_h(), op.geom.out_w()},
                      out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_dense(QatDense& dense, ReluKind relu, const QuantParams& out_qp,
                 int in_slot) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    DIVA_CHECK(in.shape.rank() == 1 && in.shape[0] == dense.in_features(),
               "dense input mismatch: slot " << in.shape.str());
    QOp op;
    op.kind = QOp::Kind::kDense;
    op.in0 = in_slot;
    op.out_c = dense.out_features();
    const auto scales = dense.weight_scales();
    // Transpose [in, out] float weights into output-major int8 rows.
    const Tensor& w = dense.weight().value;
    const std::int64_t in_f = w.dim(0), out_f = w.dim(1);
    op.weights.resize(static_cast<std::size_t>(in_f * out_f));
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float s = scales[static_cast<std::size_t>(o)];
      for (std::int64_t i = 0; i < in_f; ++i) {
        const auto q =
            static_cast<std::int32_t>(std::lround(w.at(i, o) / s));
        op.weights[static_cast<std::size_t>(o * in_f + i)] =
            static_cast<std::int8_t>(std::clamp<std::int32_t>(q, kQmin, kQmax));
      }
    }
    op.bias.resize(static_cast<std::size_t>(out_f), 0);
    for (std::int64_t o = 0; o < out_f; ++o) {
      const float b = dense.has_bias() ? dense.bias().value[o] : 0.0f;
      op.bias[static_cast<std::size_t>(o)] = static_cast<std::int32_t>(
          std::lround(b / (in.qp.scale * scales[static_cast<std::size_t>(o)])));
    }
    op.rq = make_requant(in.qp.scale, scales, out_qp.scale);
    std::tie(op.act_min, op.act_max) = act_bounds(relu, out_qp);
    op.geom.in_c = in_f;  // stashes in_features for the executor
    op.out = add_slot(Shape{out_f}, out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_simple(QOp::Kind kind, int in_slot, Shape out_shape,
                  const ConvGeom& geom = {}) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    QOp op;
    op.kind = kind;
    op.in0 = in_slot;
    op.geom = geom;
    op.out = add_slot(std::move(out_shape), in.qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_requantize(int in_slot, const QuantParams& out_qp) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    if (in.qp == out_qp) return in_slot;
    QOp op;
    op.kind = QOp::Kind::kRequantize;
    op.in0 = in_slot;
    op.out = add_slot(in.shape, out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_lut(LutKind kind, float slope, const QuantParams& out_qp,
               int in_slot) {
    const QSlot& in = slots[static_cast<std::size_t>(in_slot)];
    QOp op;
    op.kind = QOp::Kind::kLut;
    op.in0 = in_slot;
    op.weights = build_activation_lut(kind, in.qp, out_qp, slope);
    op.out = add_slot(in.shape, out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_add(int a, int b, ReluKind relu, const QuantParams& out_qp) {
    const QSlot& sa = slots[static_cast<std::size_t>(a)];
    DIVA_CHECK(sa.shape == slots[static_cast<std::size_t>(b)].shape,
               "qadd operand shape mismatch");
    QOp op;
    op.kind = QOp::Kind::kAdd;
    op.in0 = a;
    op.in1 = b;
    std::tie(op.act_min, op.act_max) = act_bounds(relu, out_qp);
    op.out = add_slot(sa.shape, out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int emit_concat(int a, int b, const QuantParams& out_qp) {
    const QSlot& sa = slots[static_cast<std::size_t>(a)];
    const QSlot& sb = slots[static_cast<std::size_t>(b)];
    DIVA_CHECK(sa.shape.rank() == 3 && sb.shape.rank() == 3 &&
                   sa.shape[1] == sb.shape[1] && sa.shape[2] == sb.shape[2],
               "qconcat operand shape mismatch");
    QOp op;
    op.kind = QOp::Kind::kConcat;
    op.in0 = a;
    op.in1 = b;
    op.out = add_slot(
        Shape{sa.shape[0] + sb.shape[0], sa.shape[1], sa.shape[2]}, out_qp);
    ops.push_back(std::move(op));
    return ops.back().out;
  }

  int build_sequential(Sequential& seq, int in_slot);
};

ReluKind relu_kind_of(Module* m) {
  if (dynamic_cast<Relu6*>(m) != nullptr) return ReluKind::kRelu6;
  if (dynamic_cast<Relu*>(m) != nullptr) return ReluKind::kRelu;
  return ReluKind::kNone;
}

/// Activations that lower to a 256-entry LUT instead of a fused clamp.
struct LutMatch {
  bool matched = false;
  LutKind kind = LutKind::kSigmoid;
  float slope = 0.0f;
};

LutMatch lut_kind_of(Module* m) {
  if (dynamic_cast<Sigmoid*>(m) != nullptr) {
    return {true, LutKind::kSigmoid, 0.0f};
  }
  if (dynamic_cast<HardSigmoid*>(m) != nullptr) {
    return {true, LutKind::kHardSigmoid, 0.0f};
  }
  if (auto* lr = dynamic_cast<LeakyRelu*>(m)) {
    return {true, LutKind::kLeakyRelu, lr->slope()};
  }
  return {};
}

/// Looks ahead from position i+1 for "(Relu)? ActFakeQuant"; returns the
/// fake-quant node, the relu kind, and how many modules were consumed.
struct Lookahead {
  ActFakeQuant* fq = nullptr;
  ReluKind relu = ReluKind::kNone;
  std::size_t consumed = 0;
};

Lookahead lookahead_act(const std::vector<Module*>& kids, std::size_t i) {
  Lookahead la;
  std::size_t j = i + 1;
  if (j < kids.size()) {
    const ReluKind rk = relu_kind_of(kids[j]);
    if (rk != ReluKind::kNone) {
      la.relu = rk;
      ++j;
    }
  }
  if (j < kids.size()) {
    if (auto* fq = dynamic_cast<ActFakeQuant*>(kids[j])) {
      la.fq = fq;
      la.consumed = j - i;
    }
  }
  return la;
}

QuantParams frozen_qparams(ActFakeQuant& fq) {
  DIVA_CHECK(fq.initialized(),
             "ActFakeQuant '" << fq.name()
                              << "' is uncalibrated; run calibration first");
  return fq.qparams();
}

int Builder::build_sequential(Sequential& seq, int in_slot) {
  auto kids = seq.children();
  int cur = in_slot;
  std::size_t i = 0;
  while (i < kids.size()) {
    Module* m = kids[i];

    if (auto* fq = dynamic_cast<ActFakeQuant*>(m)) {
      cur = emit_requantize(cur, frozen_qparams(*fq));
      ++i;
      continue;
    }
    // Order matters: QAT types derive from the float layers.
    if (auto* dw = dynamic_cast<QatDepthwiseConv2d*>(m)) {
      const Lookahead la = lookahead_act(kids, i);
      DIVA_CHECK(la.fq != nullptr, "QatDepthwiseConv2d '"
                                       << m->name()
                                       << "' must be followed by ActFakeQuant");
      cur = emit_depthwise(*dw, la.relu, frozen_qparams(*la.fq), cur);
      i += 1 + la.consumed;
      continue;
    }
    if (auto* conv = dynamic_cast<QatConv2d*>(m)) {
      const Lookahead la = lookahead_act(kids, i);
      DIVA_CHECK(la.fq != nullptr, "QatConv2d '"
                                       << m->name()
                                       << "' must be followed by ActFakeQuant");
      cur = emit_conv(*conv, la.relu, frozen_qparams(*la.fq), cur);
      i += 1 + la.consumed;
      continue;
    }
    if (auto* dense = dynamic_cast<QatDense*>(m)) {
      const Lookahead la = lookahead_act(kids, i);
      DIVA_CHECK(la.fq != nullptr, "QatDense '"
                                       << m->name()
                                       << "' must be followed by ActFakeQuant");
      cur = emit_dense(*dense, la.relu, frozen_qparams(*la.fq), cur);
      i += 1 + la.consumed;
      continue;
    }
    if (const LutMatch lut = lut_kind_of(m); lut.matched) {
      ActFakeQuant* fq =
          i + 1 < kids.size() ? dynamic_cast<ActFakeQuant*>(kids[i + 1])
                              : nullptr;
      DIVA_CHECK(fq != nullptr,
                 "LUT activation '" << m->name()
                                    << "' must be followed by ActFakeQuant");
      cur = emit_lut(lut.kind, lut.slope, frozen_qparams(*fq), cur);
      i += 2;
      continue;
    }
    if (auto* res = dynamic_cast<Residual*>(m)) {
      const Lookahead la = lookahead_act(kids, i);
      DIVA_CHECK(la.fq != nullptr, "Residual '"
                                       << m->name()
                                       << "' must be followed by ActFakeQuant");
      const int a = build_sequential(res->main_branch(), cur);
      const int b = res->has_projection()
                        ? build_sequential(*res->shortcut(), cur)
                        : cur;
      cur = emit_add(a, b, la.relu, frozen_qparams(*la.fq));
      i += 1 + la.consumed;
      continue;
    }
    if (auto* db = dynamic_cast<DenseBranch*>(m)) {
      const Lookahead la = lookahead_act(kids, i);
      DIVA_CHECK(la.fq != nullptr, "DenseBranch '"
                                       << m->name()
                                       << "' must be followed by ActFakeQuant");
      const int grown = build_sequential(db->body(), cur);
      const QuantParams out_qp = frozen_qparams(*la.fq);
      DIVA_CHECK(la.relu == ReluKind::kNone,
                 "activation after DenseBranch is unsupported");
      // Requantize both inputs to the concat output grid first.
      const int a = emit_requantize(cur, out_qp);
      const int b = emit_requantize(grown, out_qp);
      cur = emit_concat(a, b, out_qp);
      i += 1 + la.consumed;
      continue;
    }
    if (auto* mp = dynamic_cast<MaxPool2d*>(m)) {
      const QSlot& in = slots[static_cast<std::size_t>(cur)];
      ConvGeom g{in.shape[0], in.shape[1], in.shape[2], mp->kernel(),
                 mp->kernel(), mp->stride(), mp->pad()};
      cur = emit_simple(QOp::Kind::kMaxPool, cur,
                        Shape{g.in_c, g.out_h(), g.out_w()}, g);
      ++i;
      continue;
    }
    if (auto* ap = dynamic_cast<AvgPool2d*>(m)) {
      const QSlot& in = slots[static_cast<std::size_t>(cur)];
      ConvGeom g{in.shape[0], in.shape[1], in.shape[2], ap->kernel(),
                 ap->kernel(), ap->stride(), 0};
      cur = emit_simple(QOp::Kind::kAvgPool, cur,
                        Shape{g.in_c, g.out_h(), g.out_w()}, g);
      ++i;
      continue;
    }
    if (dynamic_cast<GlobalAvgPool*>(m) != nullptr) {
      const QSlot& in = slots[static_cast<std::size_t>(cur)];
      DIVA_CHECK(in.shape.rank() == 3, "gap input must be CHW");
      ConvGeom g{in.shape[0], in.shape[1], in.shape[2], 1, 1, 1, 0};
      cur = emit_simple(QOp::Kind::kGlobalAvgPool, cur, Shape{in.shape[0]}, g);
      ++i;
      continue;
    }
    if (dynamic_cast<Flatten*>(m) != nullptr) {
      const QSlot& in = slots[static_cast<std::size_t>(cur)];
      cur = emit_simple(QOp::Kind::kFlatten, cur, Shape{in.shape.numel()});
      ++i;
      continue;
    }
    if (dynamic_cast<Identity*>(m) != nullptr) {
      ++i;
      continue;
    }
    if (auto* inner = dynamic_cast<Sequential*>(m)) {
      cur = build_sequential(*inner, cur);
      ++i;
      continue;
    }
    DIVA_FAIL("QuantizedModel: unsupported module '"
              << m->name() << "' (is the model built in QAT mode?)");
  }
  return cur;
}

}  // namespace

QuantizedModel QuantizedModel::compile(Sequential& qat_model,
                                       const Shape& image_shape) {
  DIVA_CHECK(image_shape.rank() == 3, "image_shape must be [C,H,W]");
  qat_model.set_training(false);

  auto kids = qat_model.children();
  DIVA_CHECK(!kids.empty(), "empty model");
  auto* input_stub = dynamic_cast<ActFakeQuant*>(kids[0]);
  DIVA_CHECK(input_stub != nullptr,
             "QAT model must start with an input ActFakeQuant stub");

  Builder b;
  QuantizedModel qm;
  const int in_slot = b.add_slot(image_shape, frozen_qparams(*input_stub));

  // Build the rest of the graph; the stub itself defines slot 0's grid,
  // so skip it by compiling a view without the first child. Simplest:
  // compile the whole Sequential — the leading emit_requantize against
  // identical qparams is a no-op returning slot 0.
  const int out_slot = b.build_sequential(qat_model, in_slot);
  DIVA_CHECK(b.slots[static_cast<std::size_t>(out_slot)].shape.rank() == 1,
             "model output must be a flat logits vector");

  qm.slots_ = std::move(b.slots);
  qm.ops_ = std::move(b.ops);
  qm.input_slot_ = in_slot;
  qm.output_slot_ = out_slot;
  return qm;
}

void QuantizedModel::run_batch_int8(const float* images, std::int64_t n,
                                    std::int8_t* out_logits) const {
  // Cap the slot-buffer width so one huge probe batch (the coordinate-FD
  // source submits 512 images at a time) can't pin the thread's arena at
  // batch x sum-of-all-slots bytes forever; chunks are still wide enough
  // that the per-layer GEMMs amortize.
  constexpr std::int64_t kMaxChunk = 64;
  if (n > kMaxChunk) {
    const QSlot& in0 = slots_[static_cast<std::size_t>(input_slot_)];
    const std::int64_t classes =
        slots_[static_cast<std::size_t>(output_slot_)].shape.numel();
    for (std::int64_t at = 0; at < n; at += kMaxChunk) {
      const std::int64_t take = std::min(kMaxChunk, n - at);
      run_batch_int8(images + at * in0.shape.numel(), take,
                     out_logits + at * classes);
    }
    return;
  }

  // One workspace frame holds every slot buffer at batch width: buffer
  // for slot s is [n, slot_numel] row-major. The graph executes layer by
  // layer over the whole batch — convolutions fan the batch across the
  // thread pool (each worker lowers+GEMMs its images with thread-local
  // scratch), the dense head runs as a single whole-batch GEMM, and
  // elementwise ops stream over the full [n * numel] span.
  auto frame = Workspace::tls().frame();
  std::vector<std::int8_t*> buffers(slots_.size(), nullptr);
  std::vector<std::int64_t> sizes(slots_.size(), 0);
  // Arena memory is uninitialized; track writes so a miswired graph
  // fails fast instead of consuming stale bytes.
  std::vector<bool> written(slots_.size(), false);
  for (std::size_t s = 0; s < slots_.size(); ++s) {
    sizes[s] = slots_[s].shape.numel();
    buffers[s] = frame.alloc<std::int8_t>(n * sizes[s]);
  }

  const QSlot& in = slots_[static_cast<std::size_t>(input_slot_)];
  const std::int64_t per = in.shape.numel();
  std::int8_t* qin = buffers[static_cast<std::size_t>(input_slot_)];
  parallel_for_chunked(0, n * per, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) qin[i] = in.qp.quantize(images[i]);
  }, /*grain=*/4096);
  written[static_cast<std::size_t>(input_slot_)] = true;

  for (const QOp& op : ops_) {
    DIVA_CHECK(written[static_cast<std::size_t>(op.in0)] &&
                   (op.in1 < 0 || written[static_cast<std::size_t>(op.in1)]),
               "int8 executor: dangling input slot");
    written[static_cast<std::size_t>(op.out)] = true;
    const std::int8_t* src = buffers[static_cast<std::size_t>(op.in0)];
    std::int8_t* dst = buffers[static_cast<std::size_t>(op.out)];
    const QSlot& in_slot = slots_[static_cast<std::size_t>(op.in0)];
    const QSlot& out_slot = slots_[static_cast<std::size_t>(op.out)];
    const std::int64_t in_n = sizes[static_cast<std::size_t>(op.in0)];
    const std::int64_t out_n = sizes[static_cast<std::size_t>(op.out)];

    switch (op.kind) {
      case QOp::Kind::kConv:
        parallel_for(0, n, [&](std::int64_t i) {
          qconv2d(src + i * in_n, op.geom, in_slot.qp.zero_point,
                  op.weights.data(), op.out_c, op.bias.data(), op.rq,
                  out_slot.qp.zero_point, op.act_min, op.act_max,
                  dst + i * out_n);
        });
        break;
      case QOp::Kind::kDepthwiseConv:
        parallel_for(0, n, [&](std::int64_t i) {
          qdepthwise_conv2d(src + i * in_n, op.geom, in_slot.qp.zero_point,
                            op.weights.data(), op.bias.data(), op.rq,
                            out_slot.qp.zero_point, op.act_min, op.act_max,
                            dst + i * out_n);
        });
        break;
      case QOp::Kind::kDense:
        qdense_batched(src, n, op.geom.in_c, in_slot.qp.zero_point,
                       op.weights.data(), op.out_c, op.bias.data(), op.rq,
                       out_slot.qp.zero_point, op.act_min, op.act_max, dst);
        break;
      case QOp::Kind::kMaxPool:
        parallel_for(0, n, [&](std::int64_t i) {
          qmaxpool2d(src + i * in_n, op.geom, dst + i * out_n);
        });
        break;
      case QOp::Kind::kAvgPool:
        parallel_for(0, n, [&](std::int64_t i) {
          qavgpool2d(src + i * in_n, op.geom, dst + i * out_n);
        });
        break;
      case QOp::Kind::kGlobalAvgPool:
        parallel_for(0, n, [&](std::int64_t i) {
          qglobal_avgpool(src + i * in_n, op.geom.in_c,
                          op.geom.in_h * op.geom.in_w, dst + i * out_n);
        });
        break;
      case QOp::Kind::kFlatten:
        std::copy_n(src, n * in_n, dst);
        break;
      case QOp::Kind::kRequantize:
        qrequantize({src, static_cast<std::size_t>(n * in_n)}, in_slot.qp,
                    out_slot.qp, {dst, static_cast<std::size_t>(n * out_n)});
        break;
      case QOp::Kind::kAdd: {
        const std::int8_t* src1 = buffers[static_cast<std::size_t>(op.in1)];
        qadd({src, static_cast<std::size_t>(n * in_n)}, in_slot.qp,
             {src1, static_cast<std::size_t>(n * in_n)},
             slots_[static_cast<std::size_t>(op.in1)].qp, out_slot.qp,
             op.act_min, op.act_max,
             {dst, static_cast<std::size_t>(n * out_n)});
        break;
      }
      case QOp::Kind::kLut:
        qlut({src, static_cast<std::size_t>(n * in_n)},
             {op.weights.data(), op.weights.size()},
             {dst, static_cast<std::size_t>(n * out_n)});
        break;
      case QOp::Kind::kConcat: {
        const std::int8_t* src1 = buffers[static_cast<std::size_t>(op.in1)];
        const std::int64_t in1_n = sizes[static_cast<std::size_t>(op.in1)];
        for (std::int64_t i = 0; i < n; ++i) {
          std::copy_n(src + i * in_n, in_n, dst + i * out_n);
          std::copy_n(src1 + i * in1_n, in1_n, dst + i * out_n + in_n);
        }
        break;
      }
    }
  }

  const std::int64_t classes = sizes[static_cast<std::size_t>(output_slot_)];
  std::copy_n(buffers[static_cast<std::size_t>(output_slot_)], n * classes,
              out_logits);
}

std::vector<std::int8_t> QuantizedModel::forward_single_int8(
    const float* image) const {
  DIVA_TELEM_COUNT("quant.forward.calls", 1);
  DIVA_TELEM_COUNT("quant.forward.rows", 1);
  const QSlot& out = slots_[static_cast<std::size_t>(output_slot_)];
  std::vector<std::int8_t> logits(static_cast<std::size_t>(out.shape.numel()));
  run_batch_int8(image, 1, logits.data());
  return logits;
}

Tensor QuantizedModel::forward(const Tensor& x) const {
  DIVA_TRACE_SPAN("quant.forward");
  DIVA_CHECK(x.rank() == 4, "QuantizedModel::forward expects NCHW");
  const QSlot& in = slots_[static_cast<std::size_t>(input_slot_)];
  DIVA_CHECK(x.numel() / x.dim(0) == in.shape.numel(),
             "input image size mismatch");
  const std::int64_t n = x.dim(0);
  // Every row through here is one query against the deployed artifact —
  // the unit the paper's Table 2 budgets evasion in.
  DIVA_TELEM_COUNT("quant.forward.calls", 1);
  DIVA_TELEM_COUNT("quant.forward.rows", static_cast<std::uint64_t>(n));
  const QSlot& out = slots_[static_cast<std::size_t>(output_slot_)];
  const std::int64_t classes = out.shape[0];

  auto frame = Workspace::tls().frame();
  std::int8_t* q = frame.alloc<std::int8_t>(n * classes);
  run_batch_int8(x.raw(), n, q);

  Tensor logits(Shape{n, classes});
  for (std::int64_t i = 0; i < n * classes; ++i) {
    logits[i] = out.qp.dequantize(q[i]);
  }
  return logits;
}

QuantizedModel QuantizedModel::from_parts(std::vector<QSlot> slots,
                                          std::vector<QOp> ops,
                                          int input_slot, int output_slot) {
  DIVA_CHECK(input_slot >= 0 &&
                 input_slot < static_cast<int>(slots.size()) &&
                 output_slot >= 0 &&
                 output_slot < static_cast<int>(slots.size()),
             "from_parts: slot indices out of range");
  for (const QOp& op : ops) {
    DIVA_CHECK(op.in0 >= 0 && op.in0 < static_cast<int>(slots.size()) &&
                   op.out >= 0 && op.out < static_cast<int>(slots.size()),
               "from_parts: op references missing slot");
  }
  QuantizedModel qm;
  qm.slots_ = std::move(slots);
  qm.ops_ = std::move(ops);
  qm.input_slot_ = input_slot;
  qm.output_slot_ = output_slot;
  return qm;
}

std::int64_t QuantizedModel::weight_bytes() const {
  std::int64_t total = 0;
  for (const QOp& op : ops_) {
    total += static_cast<std::int64_t>(op.weights.size());
    total += static_cast<std::int64_t>(op.bias.size()) * 4;
  }
  return total;
}

}  // namespace diva
