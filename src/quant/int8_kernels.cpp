#include "quant/int8_kernels.h"

#include <algorithm>
#include <cmath>

#include "kernels/igemm.h"
#include "kernels/im2col.h"
#include "kernels/workspace.h"

namespace diva {

namespace {

std::int8_t clamp_to_int8(std::int32_t v, std::int32_t lo, std::int32_t hi) {
  return static_cast<std::int8_t>(std::clamp(v, lo, hi));
}

/// Rounding signed division by a positive non-power-of-two count.
std::int32_t rounding_div(std::int32_t x, std::int32_t d) {
  return x >= 0 ? (x + d / 2) / d : -((-x + d / 2) / d);
}

IgemmEpilogue epilogue(const std::int32_t* bias, const RequantChannel& rq,
                       std::size_t row0, std::int32_t out_zp,
                       std::int32_t act_min, std::int32_t act_max) {
  return {bias, rq.multiplier.data() + row0, rq.shift.data() + row0, out_zp,
          act_min, act_max};
}

}  // namespace

RequantChannel make_requant(float s_in, std::span<const float> w_scales,
                            float s_out) {
  RequantChannel rq;
  rq.multiplier.resize(w_scales.size());
  rq.shift.resize(w_scales.size());
  for (std::size_t c = 0; c < w_scales.size(); ++c) {
    const double m = static_cast<double>(s_in) * w_scales[c] / s_out;
    quantize_multiplier(m, &rq.multiplier[c], &rq.shift[c]);
  }
  return rq;
}

void qconv2d(const std::int8_t* in, const ConvGeom& g, std::int32_t in_zp,
             const std::int8_t* w, std::int64_t out_c,
             const std::int32_t* bias, const RequantChannel& rq,
             std::int32_t out_zp, std::int32_t act_min, std::int32_t act_max,
             std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k2 = g.in_c * g.kernel_h * g.kernel_w;
  const std::int64_t ohw = oh * ow;
  // Lower to a GEMM: padded taps read the input zero point, which is
  // exactly real zero, so the igemm zero-point correction is exact.
  auto frame = Workspace::tls().frame();
  std::int8_t* cols = frame.alloc<std::int8_t>(k2 * ohw);
  im2col<std::int8_t>(in, g, static_cast<std::int8_t>(in_zp), cols);
  igemm(out_c, ohw, k2, w, k2, cols, ohw, in_zp,
        epilogue(bias, rq, 0, out_zp, act_min, act_max), out, ohw);
}

void qdepthwise_conv2d(const std::int8_t* in, const ConvGeom& g,
                       std::int32_t in_zp, const std::int8_t* w,
                       const std::int32_t* bias, const RequantChannel& rq,
                       std::int32_t out_zp, std::int32_t act_min,
                       std::int32_t act_max, std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k2 = g.kernel_h * g.kernel_w;
  const std::int64_t ohw = oh * ow;
  // One single-channel im2col + 1-row GEMM per channel; the requant
  // epilogue pointers are offset to the channel's row.
  ConvGeom chan_geom = g;
  chan_geom.in_c = 1;
  auto frame = Workspace::tls().frame();
  std::int8_t* cols = frame.alloc<std::int8_t>(k2 * ohw);
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    im2col<std::int8_t>(in + c * g.in_h * g.in_w, chan_geom,
                        static_cast<std::int8_t>(in_zp), cols);
    igemm(1, ohw, k2, w + c * k2, k2, cols, ohw, in_zp,
          epilogue(bias != nullptr ? bias + c : nullptr, rq,
                   static_cast<std::size_t>(c), out_zp, act_min, act_max),
          out + c * ohw, ohw);
  }
}

void qdense(const std::int8_t* in, std::int64_t in_f, std::int32_t in_zp,
            const std::int8_t* w, std::int64_t out_f,
            const std::int32_t* bias, const RequantChannel& rq,
            std::int32_t out_zp, std::int32_t act_min, std::int32_t act_max,
            std::int8_t* out) {
  // The input vector is a [in_f, 1] column; output channels are rows.
  igemm(out_f, 1, in_f, w, in_f, in, 1, in_zp,
        epilogue(bias, rq, 0, out_zp, act_min, act_max), out, 1);
}

void qdense_batched(const std::int8_t* in, std::int64_t n, std::int64_t in_f,
                    std::int32_t in_zp, const std::int8_t* w,
                    std::int64_t out_f, const std::int32_t* bias,
                    const RequantChannel& rq, std::int32_t out_zp,
                    std::int32_t act_min, std::int32_t act_max,
                    std::int8_t* out) {
  auto frame = Workspace::tls().frame();
  // Transpose activations so samples become GEMM columns, run one GEMM
  // over the whole batch, transpose back into [n, out_f] slot layout.
  std::int8_t* in_t = frame.alloc<std::int8_t>(in_f * n);
  for (std::int64_t i = 0; i < n; ++i) {
    const std::int8_t* row = in + i * in_f;
    for (std::int64_t j = 0; j < in_f; ++j) in_t[j * n + i] = row[j];
  }
  std::int8_t* out_t = frame.alloc<std::int8_t>(out_f * n);
  igemm(out_f, n, in_f, w, in_f, in_t, n, in_zp,
        epilogue(bias, rq, 0, out_zp, act_min, act_max), out_t, n);
  for (std::int64_t i = 0; i < n; ++i) {
    std::int8_t* row = out + i * out_f;
    for (std::int64_t j = 0; j < out_f; ++j) row[j] = out_t[j * n + i];
  }
}

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

void qconv2d_reference(const std::int8_t* in, const ConvGeom& g,
                       std::int32_t in_zp, const std::int8_t* w,
                       std::int64_t out_c, const std::int32_t* bias,
                       const RequantChannel& rq, std::int32_t out_zp,
                       std::int32_t act_min, std::int32_t act_max,
                       std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k2 = g.in_c * g.kernel_h * g.kernel_w;
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    const std::int8_t* wc = w + oc * k2;
    std::int8_t* orow = out + oc * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        std::int32_t acc = bias != nullptr ? bias[oc] : 0;
        std::int64_t widx = 0;
        for (std::int64_t c = 0; c < g.in_c; ++c) {
          const std::int8_t* chan = in + c * g.in_h * g.in_w;
          for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
            const std::int64_t iy = y * g.stride - g.pad + kh;
            for (std::int64_t kw = 0; kw < g.kernel_w; ++kw, ++widx) {
              const std::int64_t ix = x * g.stride - g.pad + kw;
              // Zero padding contributes (in_zp - in_zp) = 0 in real
              // space; represented by substituting q = in_zp.
              const std::int32_t q =
                  (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                      ? chan[iy * g.in_w + ix]
                      : in_zp;
              acc += (q - in_zp) * static_cast<std::int32_t>(wc[widx]);
            }
          }
        }
        const std::int32_t scaled = multiply_by_quantized_multiplier(
            acc, rq.multiplier[static_cast<std::size_t>(oc)],
            rq.shift[static_cast<std::size_t>(oc)]);
        orow[y * ow + x] = clamp_to_int8(scaled + out_zp, act_min, act_max);
      }
    }
  }
}

void qdepthwise_conv2d_reference(const std::int8_t* in, const ConvGeom& g,
                                 std::int32_t in_zp, const std::int8_t* w,
                                 const std::int32_t* bias,
                                 const RequantChannel& rq, std::int32_t out_zp,
                                 std::int32_t act_min, std::int32_t act_max,
                                 std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t k2 = g.kernel_h * g.kernel_w;
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const std::int8_t* chan = in + c * g.in_h * g.in_w;
    const std::int8_t* wc = w + c * k2;
    std::int8_t* orow = out + c * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        std::int32_t acc = bias != nullptr ? bias[c] : 0;
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
          const std::int64_t iy = y * g.stride - g.pad + kh;
          for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
            const std::int64_t ix = x * g.stride - g.pad + kw;
            const std::int32_t q =
                (iy >= 0 && iy < g.in_h && ix >= 0 && ix < g.in_w)
                    ? chan[iy * g.in_w + ix]
                    : in_zp;
            acc += (q - in_zp) * static_cast<std::int32_t>(wc[kh * g.kernel_w + kw]);
          }
        }
        const std::int32_t scaled = multiply_by_quantized_multiplier(
            acc, rq.multiplier[static_cast<std::size_t>(c)],
            rq.shift[static_cast<std::size_t>(c)]);
        orow[y * ow + x] = clamp_to_int8(scaled + out_zp, act_min, act_max);
      }
    }
  }
}

void qdense_reference(const std::int8_t* in, std::int64_t in_f,
                      std::int32_t in_zp, const std::int8_t* w,
                      std::int64_t out_f, const std::int32_t* bias,
                      const RequantChannel& rq, std::int32_t out_zp,
                      std::int32_t act_min, std::int32_t act_max,
                      std::int8_t* out) {
  for (std::int64_t o = 0; o < out_f; ++o) {
    const std::int8_t* wrow = w + o * in_f;
    std::int32_t acc = bias != nullptr ? bias[o] : 0;
    for (std::int64_t i = 0; i < in_f; ++i) {
      acc += (static_cast<std::int32_t>(in[i]) - in_zp) *
             static_cast<std::int32_t>(wrow[i]);
    }
    const std::int32_t scaled = multiply_by_quantized_multiplier(
        acc, rq.multiplier[static_cast<std::size_t>(o)],
        rq.shift[static_cast<std::size_t>(o)]);
    out[o] = clamp_to_int8(scaled + out_zp, act_min, act_max);
  }
}

void qadd(std::span<const std::int8_t> a, QuantParams qp_a,
          std::span<const std::int8_t> b, QuantParams qp_b,
          QuantParams qp_out, std::int32_t act_min, std::int32_t act_max,
          std::span<std::int8_t> out) {
  DIVA_CHECK(a.size() == b.size() && a.size() == out.size(),
             "qadd size mismatch");
  // Left-shift inputs before the fixed-point rescale to keep precision
  // (TFLite uses the same trick with shift = 20).
  constexpr int kLeftShift = 20;
  std::int32_t mult_a = 0, mult_b = 0;
  int shift_a = 0, shift_b = 0;
  quantize_multiplier(
      static_cast<double>(qp_a.scale) / qp_out.scale / (1 << kLeftShift),
      &mult_a, &shift_a);
  quantize_multiplier(
      static_cast<double>(qp_b.scale) / qp_out.scale / (1 << kLeftShift),
      &mult_b, &shift_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::int32_t da =
        (static_cast<std::int32_t>(a[i]) - qp_a.zero_point) << kLeftShift;
    const std::int32_t db =
        (static_cast<std::int32_t>(b[i]) - qp_b.zero_point) << kLeftShift;
    const std::int32_t ra =
        multiply_by_quantized_multiplier(da, mult_a, shift_a);
    const std::int32_t rb =
        multiply_by_quantized_multiplier(db, mult_b, shift_b);
    out[i] = clamp_to_int8(ra + rb + qp_out.zero_point, act_min, act_max);
  }
}

void qrequantize(std::span<const std::int8_t> in, QuantParams qp_in,
                 QuantParams qp_out, std::span<std::int8_t> out) {
  DIVA_CHECK(in.size() == out.size(), "qrequantize size mismatch");
  if (qp_in == qp_out) {
    std::copy(in.begin(), in.end(), out.begin());
    return;
  }
  std::int32_t mult = 0;
  int shift = 0;
  constexpr int kLeftShift = 20;
  quantize_multiplier(
      static_cast<double>(qp_in.scale) / qp_out.scale / (1 << kLeftShift),
      &mult, &shift);
  for (std::size_t i = 0; i < in.size(); ++i) {
    const std::int32_t d =
        (static_cast<std::int32_t>(in[i]) - qp_in.zero_point) << kLeftShift;
    const std::int32_t r = multiply_by_quantized_multiplier(d, mult, shift);
    out[i] = clamp_to_int8(r + qp_out.zero_point, kQmin, kQmax);
  }
}

namespace {

float lut_activation(LutKind kind, float x, float slope) {
  switch (kind) {
    case LutKind::kSigmoid:
      return 1.0f / (1.0f + std::exp(-x));
    case LutKind::kHardSigmoid: {
      const float y = x / 6.0f + 0.5f;
      return y <= 0.0f ? 0.0f : (y >= 1.0f ? 1.0f : y);
    }
    case LutKind::kLeakyRelu:
      return x > 0.0f ? x : slope * x;
  }
  DIVA_FAIL("unknown LutKind");
}

}  // namespace

std::vector<std::int8_t> build_activation_lut(LutKind kind, QuantParams qp_in,
                                              QuantParams qp_out, float slope) {
  std::vector<std::int8_t> lut(256);
  for (int q = kQmin; q <= kQmax; ++q) {
    const float x = qp_in.dequantize(static_cast<std::int8_t>(q));
    lut[static_cast<std::size_t>(q + 128)] =
        qp_out.quantize(lut_activation(kind, x, slope));
  }
  return lut;
}

void qlut(std::span<const std::int8_t> in, std::span<const std::int8_t> lut,
          std::span<std::int8_t> out) {
  DIVA_CHECK(lut.size() == 256, "qlut table must have 256 entries");
  DIVA_CHECK(in.size() == out.size(), "qlut size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = lut[static_cast<std::size_t>(static_cast<int>(in[i]) + 128)];
  }
}

void qlut_reference(std::span<const std::int8_t> in, LutKind kind,
                    QuantParams qp_in, QuantParams qp_out, float slope,
                    std::span<std::int8_t> out) {
  DIVA_CHECK(in.size() == out.size(), "qlut_reference size mismatch");
  for (std::size_t i = 0; i < in.size(); ++i) {
    const float x = qp_in.dequantize(in[i]);
    out[i] = qp_out.quantize(lut_activation(kind, x, slope));
  }
}

void qmaxpool2d(const std::int8_t* in, const ConvGeom& g, std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const std::int8_t* chan = in + c * g.in_h * g.in_w;
    std::int8_t* o = out + c * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        std::int8_t best = kQmin;
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
          const std::int64_t iy = y * g.stride - g.pad + kh;
          if (iy < 0 || iy >= g.in_h) continue;
          for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
            const std::int64_t ix = x * g.stride - g.pad + kw;
            if (ix < 0 || ix >= g.in_w) continue;
            best = std::max(best, chan[iy * g.in_w + ix]);
          }
        }
        o[y * ow + x] = best;
      }
    }
  }
}

void qavgpool2d(const std::int8_t* in, const ConvGeom& g, std::int8_t* out) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const auto count = static_cast<std::int32_t>(g.kernel_h * g.kernel_w);
  for (std::int64_t c = 0; c < g.in_c; ++c) {
    const std::int8_t* chan = in + c * g.in_h * g.in_w;
    std::int8_t* o = out + c * oh * ow;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t x = 0; x < ow; ++x) {
        std::int32_t acc = 0;
        for (std::int64_t kh = 0; kh < g.kernel_h; ++kh) {
          for (std::int64_t kw = 0; kw < g.kernel_w; ++kw) {
            acc += chan[(y * g.stride + kh) * g.in_w + (x * g.stride + kw)];
          }
        }
        o[y * ow + x] = clamp_to_int8(rounding_div(acc, count), kQmin, kQmax);
      }
    }
  }
}

void qglobal_avgpool(const std::int8_t* in, std::int64_t c, std::int64_t hw,
                     std::int8_t* out) {
  for (std::int64_t ci = 0; ci < c; ++ci) {
    const std::int8_t* chan = in + ci * hw;
    std::int32_t acc = 0;
    for (std::int64_t i = 0; i < hw; ++i) acc += chan[i];
    out[ci] = clamp_to_int8(rounding_div(acc, static_cast<std::int32_t>(hw)),
                            kQmin, kQmax);
  }
}

}  // namespace diva
