// Quantization parameter math for int8 affine quantization.
//
// Activations use per-tensor asymmetric affine quantization into
// [-128, 127]; weights use per-channel symmetric quantization
// (zero_point = 0). Requantization of int32 accumulators uses
// gemmlowp-style fixed-point multipliers (Q31 multiplier + power-of-two
// shift), the same arithmetic as TFLite kernels, so the int8 engine is
// integer-only end to end.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "kernels/fixedpoint.h"
#include "tensor/tensor.h"

namespace diva {

inline constexpr int kQmin = -128;
inline constexpr int kQmax = 127;

/// Per-tensor affine quantization: real = (q - zero_point) * scale.
struct QuantParams {
  float scale = 1.0f;
  std::int32_t zero_point = 0;

  std::int8_t quantize(float x) const;
  float dequantize(std::int8_t q) const {
    return (static_cast<std::int32_t>(q) - zero_point) * scale;
  }
  bool operator==(const QuantParams&) const = default;
};

/// Derives affine qparams from an observed float range. The range is
/// expanded to include zero (so that real 0.0 is exactly representable,
/// a requirement for zero-padding correctness).
QuantParams choose_qparams(float min_val, float max_val);

/// Per-channel symmetric scales for a weight tensor whose leading axis
/// is the output channel: scale[c] = max|W_c| / 127 (minimum 1e-8).
std::vector<float> per_channel_scales(const Tensor& w);

/// Symmetric int8 quantization of a weight tensor with the given
/// per-channel scales (leading axis = channel).
std::vector<std::int8_t> quantize_per_channel(const Tensor& w,
                                              std::span<const float> scales);

/// Quantizes a float tensor with per-tensor affine qparams.
std::vector<std::int8_t> quantize_tensor(const Tensor& t,
                                         const QuantParams& qp);

/// Dequantizes an int8 buffer back to a float tensor of the given shape.
Tensor dequantize_tensor(std::span<const std::int8_t> q, const Shape& shape,
                         const QuantParams& qp);

// ---------------------------------------------------------------------------
// Fixed-point requantization (gemmlowp / TFLite arithmetic). The
// runtime primitives (saturating_rounding_doubling_high_mul,
// rounding_divide_by_pot, multiply_by_quantized_multiplier) moved to
// kernels/fixedpoint.h, included above, so the int8 GEMM epilogue can
// use them without a quant dependency.
// ---------------------------------------------------------------------------

/// Decomposes a positive real multiplier into a Q31 fixed-point
/// multiplier and a (possibly negative) power-of-two shift such that
/// m ~= multiplier * 2^shift / 2^31.
void quantize_multiplier(double m, std::int32_t* multiplier, int* shift);

}  // namespace diva
