// QAT pipeline utilities: observer calibration and fake-quant control.
#pragma once

#include <vector>

#include "nn/sequential.h"
#include "quant/fake_quant.h"

namespace diva {

/// All fake-quant nodes of a model in traversal order.
std::vector<ActFakeQuant*> fake_quant_nodes(Module& m);

/// Enables/disables quantization simulation on every fake-quant node
/// (observers keep updating in training mode either way).
void set_quantize_enabled(Module& m, bool enabled);

/// Runs `batches` forward passes in training mode so the activation
/// observers record min/max ranges, then returns the model to eval
/// mode. Each batch is an NCHW tensor. This is the post-training
/// calibration step; QAT finetuning afterward keeps refining the same
/// moving averages.
void calibrate(Module& m, const std::vector<Tensor>& batches);

/// True when every fake-quant node has an initialized range.
bool fully_calibrated(Module& m);

}  // namespace diva
