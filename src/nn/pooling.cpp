#include "nn/pooling.h"

#include <limits>

namespace diva {

MaxPool2d::MaxPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride, std::int64_t pad)
    : Module(std::move(name)),
      kernel_(kernel),
      stride_(stride == 0 ? kernel : stride),
      pad_(pad) {
  DIVA_CHECK(kernel > 0 && stride_ > 0 && pad >= 0, "bad MaxPool2d config");
}

Tensor MaxPool2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4, name() << ": expected NCHW");
  input_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h + 2 * pad_ - kernel_) / stride_ + 1;
  const std::int64_t ow = (w + 2 * pad_ - kernel_) / stride_ + 1;
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses");
  output_shape_ = Shape{n, c, oh, ow};
  Tensor out(output_shape_);
  argmax_.assign(static_cast<std::size_t>(out.numel()), -1);

  std::int64_t oi = 0;
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* in = x.raw() + (ni * c + ci) * h * w;
      const std::int64_t base = (ni * c + ci) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = -1;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            const std::int64_t iy = y * stride_ - pad_ + kh;
            if (iy < 0 || iy >= h) continue;
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              const std::int64_t ix = xo * stride_ - pad_ + kw;
              if (ix < 0 || ix >= w) continue;
              const float v = in[iy * w + ix];
              if (v > best) {
                best = v;
                best_idx = base + iy * w + ix;
              }
            }
          }
          out[oi] = best_idx >= 0 ? best : 0.0f;
          argmax_[static_cast<std::size_t>(oi)] = best_idx;
        }
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  DIVA_CHECK(!argmax_.empty(), name() << ": backward without a preceding forward");
  DIVA_CHECK(grad_out.shape() == output_shape_, name() << ": bad grad shape");
  Tensor grad_in(input_shape_);
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const std::int64_t idx = argmax_[static_cast<std::size_t>(i)];
    if (idx >= 0) grad_in[idx] += grad_out[i];
  }
  // Release the argmax cache (one int64 per output element) so attack
  // loops don't hold it across steps.
  std::vector<std::int64_t>().swap(argmax_);
  return grad_in;
}

AvgPool2d::AvgPool2d(std::string name, std::int64_t kernel,
                     std::int64_t stride)
    : Module(std::move(name)),
      kernel_(kernel),
      stride_(stride == 0 ? kernel : stride) {
  DIVA_CHECK(kernel > 0 && stride_ > 0, "bad AvgPool2d config");
}

Tensor AvgPool2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4, name() << ": expected NCHW");
  input_shape_ = x.shape();
  geom_ = ConvGeom{x.dim(1), x.dim(2), x.dim(3), kernel_, kernel_, stride_, 0};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  Tensor out(Shape{n, c, oh, ow});
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);

  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* in = x.raw() + (ni * c + ci) * h * w;
      float* o = out.raw() + (ni * c + ci) * oh * ow;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          float acc = 0.0f;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              acc += in[(y * stride_ + kh) * w + (xo * stride_ + kw)];
            }
          }
          o[y * ow + xo] = acc * inv;
        }
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(2) == oh &&
                 grad_out.dim(3) == ow,
             name() << ": bad grad shape");
  Tensor grad_in(input_shape_);
  const std::int64_t n = input_shape_[0], c = input_shape_[1],
                     h = input_shape_[2], w = input_shape_[3];
  const float inv = 1.0f / static_cast<float>(kernel_ * kernel_);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* gy = grad_out.raw() + (ni * c + ci) * oh * ow;
      float* gi = grad_in.raw() + (ni * c + ci) * h * w;
      for (std::int64_t y = 0; y < oh; ++y) {
        for (std::int64_t xo = 0; xo < ow; ++xo) {
          const float g = gy[y * ow + xo] * inv;
          for (std::int64_t kh = 0; kh < kernel_; ++kh) {
            for (std::int64_t kw = 0; kw < kernel_; ++kw) {
              gi[(y * stride_ + kh) * w + (xo * stride_ + kw)] += g;
            }
          }
        }
      }
    }
  }
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4, name() << ": expected NCHW");
  input_shape_ = x.shape();
  const std::int64_t n = x.dim(0), c = x.dim(1);
  const std::int64_t hw = x.dim(2) * x.dim(3);
  Tensor out(Shape{n, c});
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float* in = x.raw() + (ni * c + ci) * hw;
      float acc = 0.0f;
      for (std::int64_t i = 0; i < hw; ++i) acc += in[i];
      out.at(ni, ci) = acc * inv;
    }
  }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.rank() == 2 && grad_out.dim(0) == input_shape_[0] &&
                 grad_out.dim(1) == input_shape_[1],
             name() << ": bad grad shape");
  Tensor grad_in(input_shape_);
  const std::int64_t n = input_shape_[0], c = input_shape_[1];
  const std::int64_t hw = input_shape_[2] * input_shape_[3];
  const float inv = 1.0f / static_cast<float>(hw);
  for (std::int64_t ni = 0; ni < n; ++ni) {
    for (std::int64_t ci = 0; ci < c; ++ci) {
      const float g = grad_out.at(ni, ci) * inv;
      float* gi = grad_in.raw() + (ni * c + ci) * hw;
      for (std::int64_t i = 0; i < hw; ++i) gi[i] = g;
    }
  }
  return grad_in;
}

}  // namespace diva
