// Model checkpointing: writes/reads every named parameter (including
// buffers such as BatchNorm running statistics). Loading validates both
// names and shapes, so a checkpoint only loads into a structurally
// identical model.
#pragma once

#include <iosfwd>
#include <string>

#include "nn/module.h"

namespace diva {

void save_model(Module& m, std::ostream& os);
void load_model(Module& m, std::istream& is);

/// File variants; create parent directories before calling.
void save_model_file(Module& m, const std::string& path);
void load_model_file(Module& m, const std::string& path);

/// Copies parameter values between two models with identical parameter
/// names and shapes (e.g. two instances built by the same factory).
void copy_parameters(Module& src, Module& dst);

}  // namespace diva
