// Classification losses. Each returns the scalar loss (mean over the
// batch) together with the gradient with respect to the logits, ready to
// feed into Module::backward.
#pragma once

#include <span>
#include <vector>

#include "tensor/tensor.h"

namespace diva {

struct LossGrad {
  float loss = 0.0f;
  Tensor dlogits;  // same shape as logits
};

/// Mean softmax cross-entropy against integer labels.
LossGrad softmax_cross_entropy(const Tensor& logits,
                               std::span<const int> labels);

/// Mean cross-entropy against a full target distribution (rows of
/// `target_probs` must sum to 1). Used for distillation.
LossGrad soft_cross_entropy(const Tensor& logits, const Tensor& target_probs);

/// Hinton-style distillation loss:
///   alpha * CE(student, hard_labels) +
///   (1 - alpha) * T^2 * KL(softmax(teacher/T) || softmax(student/T))
/// The T^2 factor keeps gradient magnitudes comparable across T.
LossGrad distillation_loss(const Tensor& student_logits,
                           const Tensor& teacher_logits,
                           std::span<const int> hard_labels, float temperature,
                           float alpha);

/// Mean KL(p_teacher || p_student) between temperature-softened softmaxes
/// (diagnostic metric; no gradient).
float kl_divergence(const Tensor& teacher_logits, const Tensor& student_logits,
                    float temperature = 1.0f);

}  // namespace diva
