// Weight initialization. Fan counts are derived from tensor shapes:
// conv [out, in, kh, kw] -> fan_in = in*kh*kw; dense [in, out] -> in.
#pragma once

#include "nn/module.h"
#include "runtime/rng.h"

namespace diva {

/// He (Kaiming) normal initialization: N(0, sqrt(2 / fan_in)).
void he_normal(Tensor& w, Rng& rng);

/// Xavier/Glorot uniform: U(-a, a), a = sqrt(6 / (fan_in + fan_out)).
void xavier_uniform(Tensor& w, Rng& rng);

/// Initializes every trainable weight tensor in the module tree:
/// He-normal for rank-4 conv weights, Xavier for rank-2 dense weights,
/// zeros for biases. BatchNorm gamma/beta and buffers are left at their
/// constructor defaults. Deterministic in (module structure, seed).
void init_parameters(Module& m, std::uint64_t seed);

}  // namespace diva
