#include "nn/batchnorm.h"

#include <cmath>

namespace diva {

BatchNorm2d::BatchNorm2d(std::string name, std::int64_t channels, float eps,
                         float momentum)
    : Module(std::move(name)),
      channels_(channels),
      eps_(eps),
      momentum_(momentum),
      gamma_(Tensor(Shape{channels}, 1.0f)),
      beta_(Tensor(Shape{channels})),
      running_mean_(Tensor(Shape{channels}), /*trainable=*/false),
      running_var_(Tensor(Shape{channels}, 1.0f), /*trainable=*/false) {
  DIVA_CHECK(channels > 0, "bad BatchNorm2d config");
}

std::vector<std::pair<std::string, Parameter*>>
BatchNorm2d::local_parameters() {
  return {{"gamma", &gamma_},
          {"beta", &beta_},
          {"running_mean", &running_mean_},
          {"running_var", &running_var_}};
}

Tensor BatchNorm2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             name() << ": expected [N," << channels_ << ",H,W], got "
                    << x.shape().str());
  batch_ = x.dim(0);
  height_ = x.dim(2);
  width_ = x.dim(3);
  const std::int64_t hw = height_ * width_;
  const std::int64_t m = batch_ * hw;
  forward_was_training_ = training();

  Tensor out(x.shape());
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_.assign(static_cast<std::size_t>(channels_), 0.0f);

  for (std::int64_t c = 0; c < channels_; ++c) {
    float mean_c, var_c;
    if (forward_was_training_) {
      double s = 0.0, s2 = 0.0;
      for (std::int64_t n = 0; n < batch_; ++n) {
        const float* p = x.raw() + (n * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          s += p[i];
          s2 += static_cast<double>(p[i]) * p[i];
        }
      }
      mean_c = static_cast<float>(s / m);
      var_c = static_cast<float>(s2 / m - (s / m) * (s / m));
      if (var_c < 0.0f) var_c = 0.0f;  // numeric guard
      running_mean_.value[c] =
          (1.0f - momentum_) * running_mean_.value[c] + momentum_ * mean_c;
      running_var_.value[c] =
          (1.0f - momentum_) * running_var_.value[c] + momentum_ * var_c;
    } else {
      mean_c = running_mean_.value[c];
      var_c = running_var_.value[c];
    }
    const float inv_std = 1.0f / std::sqrt(var_c + eps_);
    cached_inv_std_[static_cast<std::size_t>(c)] = inv_std;
    const float g = gamma_.value[c], b = beta_.value[c];
    for (std::int64_t n = 0; n < batch_; ++n) {
      const float* p = x.raw() + (n * channels_ + c) * hw;
      float* xh = cached_xhat_.raw() + (n * channels_ + c) * hw;
      float* o = out.raw() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        xh[i] = (p[i] - mean_c) * inv_std;
        o[i] = g * xh[i] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_xhat_.shape(),
             name() << ": bad grad shape " << grad_out.shape().str());
  const std::int64_t hw = height_ * width_;
  const std::int64_t m = batch_ * hw;
  Tensor grad_in(grad_out.shape());

  for (std::int64_t c = 0; c < channels_; ++c) {
    const float inv_std = cached_inv_std_[static_cast<std::size_t>(c)];
    const float g = gamma_.value[c];

    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (std::int64_t n = 0; n < batch_; ++n) {
      const float* dy = grad_out.raw() + (n * channels_ + c) * hw;
      const float* xh = cached_xhat_.raw() + (n * channels_ + c) * hw;
      for (std::int64_t i = 0; i < hw; ++i) {
        sum_dy += dy[i];
        sum_dy_xhat += static_cast<double>(dy[i]) * xh[i];
      }
    }
    gamma_.grad[c] += static_cast<float>(sum_dy_xhat);
    beta_.grad[c] += static_cast<float>(sum_dy);

    if (forward_was_training_) {
      // Full BN backward through batch statistics.
      const float k1 = g * inv_std / static_cast<float>(m);
      for (std::int64_t n = 0; n < batch_; ++n) {
        const float* dy = grad_out.raw() + (n * channels_ + c) * hw;
        const float* xh = cached_xhat_.raw() + (n * channels_ + c) * hw;
        float* gi = grad_in.raw() + (n * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) {
          gi[i] = k1 * (static_cast<float>(m) * dy[i] -
                        static_cast<float>(sum_dy) -
                        xh[i] * static_cast<float>(sum_dy_xhat));
        }
      }
    } else {
      // Eval mode: normalization constants are fixed, so BN is affine.
      const float k = g * inv_std;
      for (std::int64_t n = 0; n < batch_; ++n) {
        const float* dy = grad_out.raw() + (n * channels_ + c) * hw;
        float* gi = grad_in.raw() + (n * channels_ + c) * hw;
        for (std::int64_t i = 0; i < hw; ++i) gi[i] = k * dy[i];
      }
    }
  }
  return grad_in;
}

}  // namespace diva
