#include "nn/composite.h"

#include "tensor/tensor_ops.h"

namespace diva {

namespace {

/// Extracts channels [from, to) of an NCHW tensor.
Tensor slice_channels(const Tensor& t, std::int64_t from, std::int64_t to) {
  DIVA_CHECK(t.rank() == 4 && from >= 0 && to <= t.dim(1) && from < to,
             "bad channel slice");
  const std::int64_t n = t.dim(0), c = t.dim(1);
  const std::int64_t hw = t.dim(2) * t.dim(3);
  Tensor out(Shape{n, to - from, t.dim(2), t.dim(3)});
  for (std::int64_t ni = 0; ni < n; ++ni) {
    std::copy_n(t.raw() + (ni * c + from) * hw, (to - from) * hw,
                out.raw() + ni * (to - from) * hw);
  }
  return out;
}

}  // namespace

Residual::Residual(std::string name, std::unique_ptr<Sequential> main_branch,
                   std::unique_ptr<Sequential> shortcut)
    : Module(std::move(name)),
      main_(std::move(main_branch)),
      shortcut_(std::move(shortcut)) {
  DIVA_CHECK(main_ != nullptr, "Residual requires a main branch");
}

Tensor Residual::forward(const Tensor& x) {
  Tensor ym = main_->forward(x);
  if (shortcut_) {
    Tensor ys = shortcut_->forward(x);
    return add(ym, ys);
  }
  DIVA_CHECK(ym.shape() == x.shape(),
             name() << ": identity shortcut shape mismatch "
                    << ym.shape().str() << " vs " << x.shape().str());
  return add(ym, x);
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor grad_main = main_->backward(grad_out);
  if (shortcut_) {
    Tensor grad_short = shortcut_->backward(grad_out);
    return add(grad_main, grad_short);
  }
  return add(grad_main, grad_out);
}

std::vector<Module*> Residual::children() {
  std::vector<Module*> out{main_.get()};
  if (shortcut_) out.push_back(shortcut_.get());
  return out;
}

DenseBranch::DenseBranch(std::string name, std::unique_ptr<Sequential> body)
    : Module(std::move(name)), body_(std::move(body)) {
  DIVA_CHECK(body_ != nullptr, "DenseBranch requires a body");
}

Tensor DenseBranch::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4, name() << ": expected NCHW");
  input_channels_ = x.dim(1);
  Tensor grown = body_->forward(x);
  return concat_channels(x, grown);
}

Tensor DenseBranch::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(1) > input_channels_,
             name() << ": bad grad shape");
  Tensor grad_passthrough = slice_channels(grad_out, 0, input_channels_);
  Tensor grad_body =
      slice_channels(grad_out, input_channels_, grad_out.dim(1));
  Tensor grad_x = body_->backward(grad_body);
  return add(grad_passthrough, grad_x);
}

std::vector<Module*> DenseBranch::children() { return {body_.get()}; }

}  // namespace diva
