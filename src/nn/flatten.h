// Flatten: [N, C, H, W] -> [N, C*H*W].
#pragma once

#include <string>

#include "nn/module.h"

namespace diva {

class Flatten : public Module {
 public:
  explicit Flatten(std::string name = "flatten") : Module(std::move(name)) {}

  Tensor forward(const Tensor& x) override {
    DIVA_CHECK(x.rank() >= 2, name() << ": expected rank >= 2");
    input_shape_ = x.shape();
    const std::int64_t n = x.dim(0);
    return x.reshaped(Shape{n, x.numel() / n});
  }

  Tensor backward(const Tensor& grad_out) override {
    return grad_out.reshaped(input_shape_);
  }

 private:
  Shape input_shape_;
};

}  // namespace diva
