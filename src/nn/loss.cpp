#include "nn/loss.h"

#include <cmath>

#include "tensor/tensor_ops.h"

namespace diva {

LossGrad softmax_cross_entropy(const Tensor& logits,
                               std::span<const int> labels) {
  DIVA_CHECK(logits.rank() == 2, "softmax_cross_entropy needs [N, D]");
  const std::int64_t n = logits.dim(0), d = logits.dim(1);
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == n,
             "labels size mismatch");

  const Tensor logp = log_softmax_rows(logits);
  Tensor dlogits = softmax_rows(logits);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const int y = labels[static_cast<std::size_t>(i)];
    DIVA_CHECK(y >= 0 && y < d, "label " << y << " out of range");
    total -= logp.at(i, y);
    dlogits.at(i, y) -= 1.0f;
  }
  for (std::int64_t i = 0; i < dlogits.numel(); ++i) dlogits[i] *= inv_n;
  return {static_cast<float>(total / n), std::move(dlogits)};
}

LossGrad soft_cross_entropy(const Tensor& logits, const Tensor& target_probs) {
  DIVA_CHECK(logits.shape() == target_probs.shape(),
             "soft_cross_entropy shape mismatch");
  const std::int64_t n = logits.dim(0), d = logits.dim(1);
  const Tensor logp = log_softmax_rows(logits);
  Tensor p = softmax_rows(logits);
  double total = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      total -= static_cast<double>(target_probs.at(i, j)) * logp.at(i, j);
      p.at(i, j) = (p.at(i, j) - target_probs.at(i, j)) * inv_n;
    }
  }
  return {static_cast<float>(total / n), std::move(p)};
}

LossGrad distillation_loss(const Tensor& student_logits,
                           const Tensor& teacher_logits,
                           std::span<const int> hard_labels, float temperature,
                           float alpha) {
  DIVA_CHECK(student_logits.shape() == teacher_logits.shape(),
             "distillation_loss shape mismatch");
  DIVA_CHECK(temperature > 0.0f && alpha >= 0.0f && alpha <= 1.0f,
             "bad distillation hyperparameters");
  const std::int64_t n = student_logits.dim(0), d = student_logits.dim(1);

  // Soft term at temperature T. d/ds of T^2 * KL(pt || ps_T) where
  // ps_T = softmax(s/T): gradient is T * (ps_T - pt_T); we fold the mean.
  const Tensor s_t = mul_scalar(student_logits, 1.0f / temperature);
  const Tensor t_t = mul_scalar(teacher_logits, 1.0f / temperature);
  const Tensor ps = softmax_rows(s_t);
  const Tensor pt = softmax_rows(t_t);
  const Tensor log_ps = log_softmax_rows(s_t);
  const Tensor log_pt = log_softmax_rows(t_t);

  double soft_loss = 0.0;
  Tensor dlogits(student_logits.shape());
  const float inv_n = 1.0f / static_cast<float>(n);
  const float t2 = temperature * temperature;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      soft_loss += static_cast<double>(pt.at(i, j)) *
                   (log_pt.at(i, j) - log_ps.at(i, j));
      dlogits.at(i, j) = (1.0f - alpha) * temperature *
                         (ps.at(i, j) - pt.at(i, j)) * inv_n;
    }
  }
  soft_loss = soft_loss * t2 / n;

  // Hard term.
  LossGrad hard = softmax_cross_entropy(student_logits, hard_labels);
  axpy(alpha, hard.dlogits, dlogits);

  return {static_cast<float>((1.0f - alpha) * soft_loss + alpha * hard.loss),
          std::move(dlogits)};
}

float kl_divergence(const Tensor& teacher_logits, const Tensor& student_logits,
                    float temperature) {
  DIVA_CHECK(teacher_logits.shape() == student_logits.shape(),
             "kl_divergence shape mismatch");
  const std::int64_t n = teacher_logits.dim(0), d = teacher_logits.dim(1);
  const Tensor pt =
      softmax_rows(mul_scalar(teacher_logits, 1.0f / temperature));
  const Tensor log_pt =
      log_softmax_rows(mul_scalar(teacher_logits, 1.0f / temperature));
  const Tensor log_ps =
      log_softmax_rows(mul_scalar(student_logits, 1.0f / temperature));
  double total = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < d; ++j) {
      total += static_cast<double>(pt.at(i, j)) *
               (log_pt.at(i, j) - log_ps.at(i, j));
    }
  }
  return static_cast<float>(total / n);
}

}  // namespace diva
