// Batch normalization over NCHW feature maps (per-channel statistics).
//
// Training mode normalizes with batch statistics and maintains running
// mean/variance via exponential moving average; eval mode uses the
// running statistics, making the layer a per-channel affine transform —
// which is what allows exact folding into a preceding convolution
// (nn/fold_bn.h). Eval-mode backward is supported (input gradients are
// needed when attacking eval-mode models).
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace diva {

class BatchNorm2d : public Module {
 public:
  BatchNorm2d(std::string name, std::int64_t channels, float eps = 1e-5f,
              float momentum = 0.1f);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<std::pair<std::string, Parameter*>> local_parameters() override;

  Parameter& gamma() { return gamma_; }
  Parameter& beta() { return beta_; }
  Parameter& running_mean() { return running_mean_; }
  Parameter& running_var() { return running_var_; }
  float eps() const { return eps_; }
  std::int64_t channels() const { return channels_; }

 private:
  std::int64_t channels_;
  float eps_, momentum_;
  Parameter gamma_, beta_;
  Parameter running_mean_, running_var_;  // buffers (trainable = false)

  // Backward caches.
  Tensor cached_xhat_;
  std::vector<float> cached_inv_std_;
  bool forward_was_training_ = false;
  std::int64_t batch_ = 0, height_ = 0, width_ = 0;
};

}  // namespace diva
