// Composite topologies: residual addition (ResNet) and channel
// concatenation (DenseNet). Together with Sequential these express every
// architecture in src/models without a general DAG executor.
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.h"

namespace diva {

/// y = main(x) + shortcut(x). Pass nullptr shortcut for identity.
/// The post-addition activation (classic ResNet places ReLU after the
/// add) is NOT part of this module; model factories append it.
class Residual : public Module {
 public:
  Residual(std::string name, std::unique_ptr<Sequential> main_branch,
           std::unique_ptr<Sequential> shortcut = nullptr);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Module*> children() override;

  Sequential& main_branch() { return *main_; }
  bool has_projection() const { return shortcut_ != nullptr; }
  Sequential* shortcut() { return shortcut_.get(); }

 private:
  std::unique_ptr<Sequential> main_;
  std::unique_ptr<Sequential> shortcut_;  // nullptr = identity
};

/// y = concat_channels(x, body(x)) — the DenseNet growth pattern.
class DenseBranch : public Module {
 public:
  DenseBranch(std::string name, std::unique_ptr<Sequential> body);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Module*> children() override;

  Sequential& body() { return *body_; }

 private:
  std::unique_ptr<Sequential> body_;
  std::int64_t input_channels_ = 0;
};

}  // namespace diva
