// BatchNorm folding.
//
// Eval-mode BatchNorm is a per-channel affine transform, so a
// Conv -> BatchNorm pair is exactly equivalent to a single Conv with
// rescaled weights and shifted bias:
//   W' = W * gamma / sqrt(var + eps)        (per output channel)
//   b' = beta + (b - mean) * gamma / sqrt(var + eps)
//
// Deployment pipelines (and this library's QAT/int8 conversion) operate
// on folded models. fold_batchnorm_into() transfers weights from a
// trained BN model into a structurally matching BN-free skeleton built
// by the same factory — the standard "fold then quantize" flow.
#pragma once

#include <vector>

#include "nn/module.h"

namespace diva {

/// Leaf modules (no children) in forward execution order.
std::vector<Module*> execution_leaves(Module& m);

/// Fuses every Conv/DepthwiseConv + BatchNorm pair of `src` and writes
/// the fused weights into the corresponding layer of `dst`; Dense and
/// unpaired conv layers are copied as-is. `dst` must be a BN-free
/// skeleton whose parameterized layers appear in the same order (extra
/// non-parameterized leaves such as fake-quant nodes are ignored).
/// Throws diva::Error if the structures cannot be aligned.
void fold_batchnorm_into(Module& src, Module& dst);

}  // namespace diva
