// Pointwise activation layers.
#pragma once

#include <string>

#include "nn/module.h"

namespace diva {

/// Rectified linear unit: y = max(0, x).
class Relu : public Module {
 public:
  explicit Relu(std::string name = "relu") : Module(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// ReLU6: y = min(6, max(0, x)) — the MobileNet activation, also friendly
/// to fixed-range quantization.
class Relu6 : public Module {
 public:
  explicit Relu6(std::string name = "relu6") : Module(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// Logistic sigmoid: y = 1 / (1 + exp(-x)).
class Sigmoid : public Module {
 public:
  explicit Sigmoid(std::string name = "sigmoid") : Module(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_output_;
};

/// Hard sigmoid, TFLite convention: y = clamp(x / 6 + 0.5, 0, 1).
class HardSigmoid : public Module {
 public:
  explicit HardSigmoid(std::string name = "hard_sigmoid")
      : Module(std::move(name)) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor cached_input_;
};

/// Leaky ReLU with fixed negative slope.
class LeakyRelu : public Module {
 public:
  explicit LeakyRelu(std::string name = "leaky_relu", float slope = 0.01f)
      : Module(std::move(name)), slope_(slope) {}
  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;
  float slope() const { return slope_; }

 private:
  float slope_;
  Tensor cached_input_;
};

}  // namespace diva
