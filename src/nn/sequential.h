// Sequential container: runs children in order.
#pragma once

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "nn/module.h"

namespace diva {

class Sequential : public Module {
 public:
  explicit Sequential(std::string name = "seq") : Module(std::move(name)) {}

  /// Appends a child; returns *this for chaining.
  Sequential& add(std::unique_ptr<Module> m) {
    DIVA_CHECK(m != nullptr, "null module");
    modules_.push_back(std::move(m));
    return *this;
  }

  /// Constructs a child in place and returns a reference to it.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto m = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *m;
    modules_.push_back(std::move(m));
    return ref;
  }

  Tensor forward(const Tensor& x) override {
    Tensor h = x;
    for (auto& m : modules_) h = m->forward(h);
    return h;
  }

  Tensor backward(const Tensor& grad_out) override {
    Tensor g = grad_out;
    for (auto it = modules_.rbegin(); it != modules_.rend(); ++it) {
      g = (*it)->backward(g);
    }
    return g;
  }

  /// Runs only children [0, count); used to extract intermediate
  /// (e.g. penultimate-layer) representations.
  Tensor forward_prefix(const Tensor& x, std::size_t count) {
    DIVA_CHECK(count <= modules_.size(), "forward_prefix out of range");
    Tensor h = x;
    for (std::size_t i = 0; i < count; ++i) h = modules_[i]->forward(h);
    return h;
  }

  std::vector<Module*> children() override {
    std::vector<Module*> out;
    out.reserve(modules_.size());
    for (auto& m : modules_) out.push_back(m.get());
    return out;
  }

  std::size_t size() const { return modules_.size(); }
  Module& module(std::size_t i) {
    DIVA_CHECK(i < modules_.size(), "module index out of range");
    return *modules_[i];
  }

 private:
  std::vector<std::unique_ptr<Module>> modules_;
};

}  // namespace diva
