// First-order optimizers over a fixed set of parameters.
//
// Optimizers are constructed from Module::named_parameters(); the
// parameter set must outlive the optimizer. Buffers (trainable = false)
// are skipped automatically.
#pragma once

#include <vector>

#include "nn/module.h"

namespace diva {

class Optimizer {
 public:
  explicit Optimizer(std::vector<NamedParameter> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the currently-accumulated gradients.
  virtual void step() = 0;

  /// Zeroes all owned gradients.
  void zero_grad();

  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

 protected:
  std::vector<NamedParameter> params_;  // trainable only
  float lr_ = 0.01f;
};

/// SGD with classical momentum and decoupled L2 weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<NamedParameter> params, float lr, float momentum = 0.9f,
      float weight_decay = 0.0f);
  void step() override;

 private:
  float momentum_, weight_decay_;
  std::vector<Tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam : public Optimizer {
 public:
  Adam(std::vector<NamedParameter> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f);
  void step() override;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  std::vector<Tensor> m_, v_;
  std::int64_t t_ = 0;
};

}  // namespace diva
