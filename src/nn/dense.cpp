#include "nn/dense.h"

#include "kernels/gemm.h"
#include "tensor/tensor_ops.h"

namespace diva {

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features, bool with_bias)
    : Module(std::move(name)),
      in_f_(in_features),
      out_f_(out_features),
      with_bias_(with_bias),
      weight_(Tensor(Shape{in_features, out_features})),
      bias_(Tensor(Shape{out_features})) {
  DIVA_CHECK(in_features > 0 && out_features > 0, "bad Dense config");
}

std::vector<std::pair<std::string, Parameter*>> Dense::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Dense::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 2 && x.dim(1) == in_f_,
             name() << ": expected [N," << in_f_ << "], got "
                    << x.shape().str());
  // The input is only needed for dW; frozen models skip the copy.
  cached_input_ = param_grads_enabled() ? x : Tensor();
  weff_ = &effective_weight();
  const std::int64_t n = x.dim(0);
  Tensor out(Shape{n, out_f_});
  // out[N, out_f] = x[N, in_f] x W[in_f, out_f] + bias (per column).
  sgemm(n, out_f_, in_f_, x.raw(), in_f_, false, weff_->raw(), out_f_, false,
        out.raw(), out_f_,
        {.bias_col = with_bias_ ? bias_.value.raw() : nullptr});
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  DIVA_CHECK(weff_ != nullptr,
             name() << ": backward without a preceding forward");
  DIVA_CHECK(!param_grads_enabled() || !cached_input_.empty(),
             name() << ": parameter gradients were enabled after a frozen "
                       "forward; rerun forward first");
  DIVA_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_f_,
             name() << ": bad grad shape " << grad_out.shape().str());
  const std::int64_t n = grad_out.dim(0);
  // dW += XT dY ; db += colsum(dY) ; dX = dY WT — transposes are
  // handled inside sgemm packing, nothing is materialized.
  if (param_grads_enabled()) {
    sgemm(in_f_, out_f_, n, cached_input_.raw(), in_f_, true, grad_out.raw(),
          out_f_, false, weight_.grad.raw(), out_f_, {.beta = 1.0f});
    if (with_bias_) {
      for (std::int64_t i = 0; i < n; ++i) {
        const float* row = grad_out.raw() + i * out_f_;
        for (std::int64_t j = 0; j < out_f_; ++j) bias_.grad[j] += row[j];
      }
    }
  }
  Tensor grad_in(Shape{n, in_f_});
  sgemm(n, in_f_, out_f_, grad_out.raw(), out_f_, false, weff_->raw(), out_f_,
        true, grad_in.raw(), in_f_, {});

  cached_input_ = Tensor();
  weff_ = nullptr;
  return grad_in;
}

}  // namespace diva
