#include "nn/dense.h"

#include "tensor/tensor_ops.h"

namespace diva {

Dense::Dense(std::string name, std::int64_t in_features,
             std::int64_t out_features, bool with_bias)
    : Module(std::move(name)),
      in_f_(in_features),
      out_f_(out_features),
      with_bias_(with_bias),
      weight_(Tensor(Shape{in_features, out_features})),
      bias_(Tensor(Shape{out_features})) {
  DIVA_CHECK(in_features > 0 && out_features > 0, "bad Dense config");
}

std::vector<std::pair<std::string, Parameter*>> Dense::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Dense::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 2 && x.dim(1) == in_f_,
             name() << ": expected [N," << in_f_ << "], got "
                    << x.shape().str());
  cached_input_ = x;
  cached_weff_ = effective_weight();
  Tensor out = matmul(x, cached_weff_);
  if (with_bias_) {
    const std::int64_t n = out.dim(0);
    for (std::int64_t i = 0; i < n; ++i) {
      float* row = out.raw() + i * out_f_;
      for (std::int64_t j = 0; j < out_f_; ++j) row[j] += bias_.value[j];
    }
  }
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_f_,
             name() << ": bad grad shape " << grad_out.shape().str());
  // dW += X^T dY ; db += colsum(dY) ; dX = dY W^T
  if (param_grads_enabled()) {
    matmul_acc(transpose2d(cached_input_), grad_out, weight_.grad);
    if (with_bias_) {
      const std::int64_t n = grad_out.dim(0);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* row = grad_out.raw() + i * out_f_;
        for (std::int64_t j = 0; j < out_f_; ++j) bias_.grad[j] += row[j];
      }
    }
  }
  return matmul(grad_out, transpose2d(cached_weff_));
}

}  // namespace diva
