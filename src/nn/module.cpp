#include "nn/module.h"

namespace diva {

void Module::collect(const std::string& prefix,
                     std::vector<NamedParameter>& out) {
  for (auto& [local_name, param] : local_parameters()) {
    out.push_back({prefix + local_name, param});
  }
  for (Module* child : children()) {
    child->collect(prefix + child->name() + ".", out);
  }
}

std::vector<NamedParameter> Module::named_parameters() {
  std::vector<NamedParameter> out;
  collect(name_ + ".", out);
  return out;
}

void Module::visit(const std::function<void(Module&)>& fn) {
  fn(*this);
  for (Module* child : children()) child->visit(fn);
}

void Module::zero_grad() {
  visit([](Module& m) {
    for (auto& [name, p] : m.local_parameters()) {
      (void)name;
      p->grad.fill(0.0f);
    }
  });
}

void Module::set_training(bool training) {
  visit([training](Module& m) { m.training_ = training; });
}

void Module::set_param_grads_enabled(bool enabled) {
  visit([enabled](Module& m) { m.param_grads_enabled_ = enabled; });
}

std::int64_t Module::num_trainable_elements() {
  std::int64_t total = 0;
  visit([&total](Module& m) {
    for (auto& [name, p] : m.local_parameters()) {
      (void)name;
      if (p->trainable) total += p->value.numel();
    }
  });
  return total;
}

}  // namespace diva
