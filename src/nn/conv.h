// 2-D convolution layers (standard and depthwise), NCHW, square kernels.
//
// Conv2d lowers each image with im2col into thread-local Workspace
// scratch and runs the blocked kernels/gemm.h sgemm against the
// [out_c, in_c*k*k] weight matrix; batches are parallelized across the
// thread pool. Backward is two more GEMMs over the same panels (dX via
// the transposed weights + col2im, dW via gy x colsT, recomputed from
// the cached input only when parameter gradients are enabled). All
// forward caches are released when backward finishes, so attack loops
// don't retain per-layer im2col buffers between steps.
//
// The `effective_weight()` hook lets quantization-aware subclasses
// (quant/QatConv2d) substitute fake-quantized weights while reusing all
// of the forward/backward machinery — gradients then flow to the float
// master weights via the straight-through estimator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace diva {

class Conv2d : public Module {
 public:
  /// kernel is the square kernel size; pad is symmetric zero padding.
  Conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
         std::int64_t kernel, std::int64_t stride = 1, std::int64_t pad = 0,
         bool with_bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<std::pair<std::string, Parameter*>> local_parameters() override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }
  std::int64_t in_channels() const { return in_c_; }
  std::int64_t out_channels() const { return out_c_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 protected:
  /// Weights used by forward/backward. Subclasses may return a
  /// transformed (e.g. fake-quantized) tensor; gradients accumulate to
  /// the master weight() regardless (straight-through estimator).
  virtual const Tensor& effective_weight() { return weight_.value; }

 private:
  std::int64_t in_c_, out_c_, kernel_, stride_, pad_;
  bool with_bias_;
  Parameter weight_;  // [out_c, in_c, k, k]
  Parameter bias_;    // [out_c]

  // Cached state for backward; released when backward completes.
  Tensor cached_input_;          // forward input (for the dW im2col)
  const Tensor* weff_ = nullptr; // weights used by the last forward
  ConvGeom geom_;
  std::int64_t batch_ = 0;
};

/// Depthwise convolution: one k x k filter per channel (multiplier 1).
class DepthwiseConv2d : public Module {
 public:
  DepthwiseConv2d(std::string name, std::int64_t channels,
                  std::int64_t kernel, std::int64_t stride = 1,
                  std::int64_t pad = 0, bool with_bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<std::pair<std::string, Parameter*>> local_parameters() override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }
  std::int64_t channels() const { return channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 protected:
  virtual const Tensor& effective_weight() { return weight_.value; }

 private:
  std::int64_t channels_, kernel_, stride_, pad_;
  bool with_bias_;
  Parameter weight_;  // [C, 1, k, k]
  Parameter bias_;    // [C]

  // Released when backward completes.
  Tensor cached_input_;
  const Tensor* weff_ = nullptr;
  ConvGeom geom_;
};

}  // namespace diva
