#include "nn/init.h"

#include <cmath>

namespace diva {

namespace {

std::pair<std::int64_t, std::int64_t> fans(const Tensor& w) {
  if (w.rank() == 4) {
    const std::int64_t receptive = w.dim(2) * w.dim(3);
    return {w.dim(1) * receptive, w.dim(0) * receptive};
  }
  if (w.rank() == 2) return {w.dim(0), w.dim(1)};
  return {w.numel(), w.numel()};
}

}  // namespace

void he_normal(Tensor& w, Rng& rng) {
  const auto [fan_in, fan_out] = fans(w);
  (void)fan_out;
  const float sd = std::sqrt(2.0f / static_cast<float>(fan_in));
  w.fill_normal(rng, 0.0f, sd);
}

void xavier_uniform(Tensor& w, Rng& rng) {
  const auto [fan_in, fan_out] = fans(w);
  const float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  w.fill_uniform(rng, -a, a);
}

void init_parameters(Module& m, std::uint64_t seed) {
  Rng rng(seed);
  for (auto& np : m.named_parameters()) {
    if (!np.param->trainable) continue;
    // Stable per-parameter stream: order-independent of other params.
    std::uint64_t h = seed;
    for (char ch : np.name) h = hash_combine(h, static_cast<std::uint64_t>(ch));
    Rng prng(h);
    const bool is_weight = np.name.ends_with("weight");
    if (is_weight && np.param->value.rank() == 4) {
      he_normal(np.param->value, prng);
    } else if (is_weight && np.param->value.rank() == 2) {
      xavier_uniform(np.param->value, prng);
    } else if (np.name.ends_with("bias")) {
      np.param->value.fill(0.0f);
    }
    // gamma/beta keep constructor defaults (1, 0).
  }
  (void)rng;
}

}  // namespace diva
