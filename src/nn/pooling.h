// Spatial pooling layers over NCHW feature maps.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"
#include "tensor/tensor_ops.h"

namespace diva {

/// Max pooling with square window. Caches argmax indices for backward.
class MaxPool2d : public Module {
 public:
  MaxPool2d(std::string name, std::int64_t kernel, std::int64_t stride = 0,
            std::int64_t pad = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t pad() const { return pad_; }

 private:
  std::int64_t kernel_, stride_, pad_;
  std::vector<std::int64_t> argmax_;  // flat input index per output element
  Shape input_shape_;
  Shape output_shape_;
};

/// Average pooling with square window (zero padding contributes zeros but
/// the divisor is always kernel*kernel, matching TF "SAME"-free behavior).
class AvgPool2d : public Module {
 public:
  AvgPool2d(std::string name, std::int64_t kernel, std::int64_t stride = 0);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
  Shape input_shape_;
  ConvGeom geom_;
};

/// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Module {
 public:
  explicit GlobalAvgPool(std::string name = "gap") : Module(std::move(name)) {}

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Shape input_shape_;
};

}  // namespace diva
