#include "nn/activations.h"

#include <cmath>

namespace diva {

Tensor Relu::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] > 0.0f ? x[i] : 0.0f;
  }
  return out;
}

Tensor Relu::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_input_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = cached_input_[i] > 0.0f ? grad_out[i] : 0.0f;
  }
  return grad_in;
}

Tensor Relu6::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] <= 0.0f ? 0.0f : (x[i] >= 6.0f ? 6.0f : x[i]);
  }
  return out;
}

Tensor Relu6::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_input_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const float x = cached_input_[i];
    grad_in[i] = (x > 0.0f && x < 6.0f) ? grad_out[i] : 0.0f;
  }
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& x) {
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = 1.0f / (1.0f + std::exp(-x[i]));
  }
  cached_output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_output_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const float y = cached_output_[i];
    grad_in[i] = grad_out[i] * y * (1.0f - y);
  }
  return grad_in;
}

Tensor HardSigmoid::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const float y = x[i] / 6.0f + 0.5f;
    out[i] = y <= 0.0f ? 0.0f : (y >= 1.0f ? 1.0f : y);
  }
  return out;
}

Tensor HardSigmoid::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_input_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    const float x = cached_input_[i];
    grad_in[i] = (x > -3.0f && x < 3.0f) ? grad_out[i] / 6.0f : 0.0f;
  }
  return grad_in;
}

Tensor LeakyRelu::forward(const Tensor& x) {
  cached_input_ = x;
  Tensor out(x.shape());
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    out[i] = x[i] > 0.0f ? x[i] : slope_ * x[i];
  }
  return out;
}

Tensor LeakyRelu::backward(const Tensor& grad_out) {
  DIVA_CHECK(grad_out.shape() == cached_input_.shape(),
             name() << ": bad grad shape");
  Tensor grad_in(grad_out.shape());
  for (std::int64_t i = 0; i < grad_out.numel(); ++i) {
    grad_in[i] = cached_input_[i] > 0.0f ? grad_out[i] : slope_ * grad_out[i];
  }
  return grad_in;
}

}  // namespace diva
