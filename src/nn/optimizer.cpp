#include "nn/optimizer.h"

#include <cmath>

namespace diva {

Optimizer::Optimizer(std::vector<NamedParameter> params) {
  params_.reserve(params.size());
  for (auto& np : params) {
    if (np.param != nullptr && np.param->trainable) params_.push_back(np);
  }
}

void Optimizer::zero_grad() {
  for (auto& np : params_) np.param->grad.fill(0.0f);
}

Sgd::Sgd(std::vector<NamedParameter> params, float lr, float momentum,
         float weight_decay)
    : Optimizer(std::move(params)),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  lr_ = lr;
  velocity_.reserve(params_.size());
  for (auto& np : params_) velocity_.emplace_back(np.param->value.shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i].param;
    Tensor& vel = velocity_[i];
    float* w = p.value.raw();
    const float* g = p.grad.raw();
    float* v = vel.raw();
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      v[j] = momentum_ * v[j] + grad;
      w[j] -= lr_ * v[j];
    }
  }
}

Adam::Adam(std::vector<NamedParameter> params, float lr, float beta1,
           float beta2, float eps, float weight_decay)
    : Optimizer(std::move(params)),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {
  lr_ = lr;
  m_.reserve(params_.size());
  v_.reserve(params_.size());
  for (auto& np : params_) {
    m_.emplace_back(np.param->value.shape());
    v_.emplace_back(np.param->value.shape());
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Parameter& p = *params_[i].param;
    float* w = p.value.raw();
    const float* g = p.grad.raw();
    float* m = m_[i].raw();
    float* v = v_[i].raw();
    for (std::int64_t j = 0; j < p.value.numel(); ++j) {
      const float grad = g[j] + weight_decay_ * w[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      w[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace diva
