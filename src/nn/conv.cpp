#include "nn/conv.h"

#include <algorithm>

#include "runtime/thread_pool.h"

namespace diva {

Conv2d::Conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool with_bias)
    : Module(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_(Tensor(Shape{out_c, in_c, kernel, kernel})),
      bias_(Tensor(Shape{out_c})) {
  DIVA_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0,
             "bad Conv2d config");
}

std::vector<std::pair<std::string, Parameter*>> Conv2d::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Conv2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4 && x.dim(1) == in_c_,
             name() << ": expected [N," << in_c_ << ",H,W], got "
                    << x.shape().str());
  batch_ = x.dim(0);
  geom_ = ConvGeom{in_c_, x.dim(2), x.dim(3), kernel_, kernel_, stride_, pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses to zero size");
  const std::int64_t k2 = in_c_ * kernel_ * kernel_;
  const std::int64_t ohw = oh * ow;

  cached_weff_ = effective_weight();
  const Tensor wmat = cached_weff_.reshaped(Shape{out_c_, k2});

  cached_cols_ = Tensor(Shape{batch_, k2, ohw});
  Tensor out(Shape{batch_, out_c_, oh, ow});

  const std::int64_t in_stride = in_c_ * geom_.in_h * geom_.in_w;
  parallel_for(0, batch_, [&](std::int64_t n) {
    float* cols = cached_cols_.raw() + n * k2 * ohw;
    im2col(x.raw() + n * in_stride, geom_, cols);
    // out_n[out_c, ohw] = wmat[out_c, k2] x cols[k2, ohw]
    float* on = out.raw() + n * out_c_ * ohw;
    for (std::int64_t oc = 0; oc < out_c_; ++oc) {
      float* orow = on + oc * ohw;
      const float b = with_bias_ ? bias_.value[oc] : 0.0f;
      std::fill(orow, orow + ohw, b);
      const float* wrow = wmat.raw() + oc * k2;
      for (std::int64_t kk = 0; kk < k2; ++kk) {
        const float w = wrow[kk];
        if (w == 0.0f) continue;
        const float* crow = cols + kk * ohw;
        for (std::int64_t j = 0; j < ohw; ++j) orow[j] += w * crow[j];
      }
    }
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t k2 = in_c_ * kernel_ * kernel_;
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch_ &&
                 grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
                 grad_out.dim(3) == ow,
             name() << ": bad grad shape " << grad_out.shape().str());

  Tensor grad_in(Shape{batch_, in_c_, geom_.in_h, geom_.in_w});
  const std::int64_t in_stride = in_c_ * geom_.in_h * geom_.in_w;
  const Tensor wmat = cached_weff_.reshaped(Shape{out_c_, k2});

  // Per-chunk weight/bias gradient accumulators avoid a shared-write race.
  const bool want_param_grads = param_grads_enabled();
  std::mutex reduce_mu;
  parallel_for_chunked(0, batch_, [&](std::int64_t lo, std::int64_t hi) {
    Tensor dw_local(Shape{out_c_, k2});
    Tensor db_local(Shape{out_c_});
    std::vector<float> dcol(static_cast<std::size_t>(k2 * ohw));

    for (std::int64_t n = lo; n < hi; ++n) {
      const float* gy = grad_out.raw() + n * out_c_ * ohw;
      const float* cols = cached_cols_.raw() + n * k2 * ohw;

      // dW[oc, kk] += sum_j gy[oc, j] * cols[kk, j]; db[oc] += sum_j gy.
      if (want_param_grads) {
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
          const float* gyrow = gy + oc * ohw;
          float* dwrow = dw_local.raw() + oc * k2;
          double bsum = 0.0;
          for (std::int64_t j = 0; j < ohw; ++j) bsum += gyrow[j];
          db_local[oc] += static_cast<float>(bsum);
          for (std::int64_t kk = 0; kk < k2; ++kk) {
            const float* crow = cols + kk * ohw;
            float acc = 0.0f;
            for (std::int64_t j = 0; j < ohw; ++j) acc += gyrow[j] * crow[j];
            dwrow[kk] += acc;
          }
        }
      }

      // dcol[kk, j] = sum_oc W[oc, kk] * gy[oc, j]; then scatter to dx.
      std::fill(dcol.begin(), dcol.end(), 0.0f);
      for (std::int64_t oc = 0; oc < out_c_; ++oc) {
        const float* wrow = wmat.raw() + oc * k2;
        const float* gyrow = gy + oc * ohw;
        for (std::int64_t kk = 0; kk < k2; ++kk) {
          const float w = wrow[kk];
          if (w == 0.0f) continue;
          float* drow = dcol.data() + kk * ohw;
          for (std::int64_t j = 0; j < ohw; ++j) drow[j] += w * gyrow[j];
        }
      }
      col2im(dcol.data(), geom_, grad_in.raw() + n * in_stride);
    }

    if (want_param_grads) {
      std::lock_guard<std::mutex> lock(reduce_mu);
      float* dw = weight_.grad.raw();
      for (std::int64_t i = 0; i < dw_local.numel(); ++i) dw[i] += dw_local[i];
      if (with_bias_) {
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
          bias_.grad[oc] += db_local[oc];
        }
      }
    }
  });

  return grad_in;
}

DepthwiseConv2d::DepthwiseConv2d(std::string name, std::int64_t channels,
                                 std::int64_t kernel, std::int64_t stride,
                                 std::int64_t pad, bool with_bias)
    : Module(std::move(name)),
      channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_(Tensor(Shape{channels, 1, kernel, kernel})),
      bias_(Tensor(Shape{channels})) {
  DIVA_CHECK(channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
             "bad DepthwiseConv2d config");
}

std::vector<std::pair<std::string, Parameter*>>
DepthwiseConv2d::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             name() << ": expected [N," << channels_ << ",H,W], got "
                    << x.shape().str());
  const std::int64_t batch = x.dim(0);
  geom_ = ConvGeom{channels_, x.dim(2), x.dim(3), kernel_, kernel_, stride_,
                   pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses to zero size");

  cached_input_ = x;
  cached_weff_ = effective_weight();
  Tensor out(Shape{batch, channels_, oh, ow});

  parallel_for(0, batch * channels_, [&](std::int64_t nc) {
    const std::int64_t n = nc / channels_, c = nc % channels_;
    const float* in = x.raw() + (n * channels_ + c) * geom_.in_h * geom_.in_w;
    const float* w = cached_weff_.raw() + c * kernel_ * kernel_;
    float* o = out.raw() + (n * channels_ + c) * oh * ow;
    const float b = with_bias_ ? bias_.value[c] : 0.0f;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        float acc = b;
        for (std::int64_t kh = 0; kh < kernel_; ++kh) {
          const std::int64_t iy = y * stride_ - pad_ + kh;
          if (iy < 0 || iy >= geom_.in_h) continue;
          for (std::int64_t kw = 0; kw < kernel_; ++kw) {
            const std::int64_t ix = xo * stride_ - pad_ + kw;
            if (ix < 0 || ix >= geom_.in_w) continue;
            acc += w[kh * kernel_ + kw] * in[iy * geom_.in_w + ix];
          }
        }
        o[y * ow + xo] = acc;
      }
    }
  }, /*grain=*/4);
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  const std::int64_t batch = cached_input_.dim(0);
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch &&
                 grad_out.dim(1) == channels_,
             name() << ": bad grad shape " << grad_out.shape().str());

  Tensor grad_in(cached_input_.shape());
  const bool want_param_grads = param_grads_enabled();
  std::mutex reduce_mu;

  parallel_for_chunked(0, batch, [&](std::int64_t lo, std::int64_t hi) {
    Tensor dw_local(weight_.value.shape());
    Tensor db_local(Shape{channels_});
    for (std::int64_t n = lo; n < hi; ++n) {
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float* in = cached_input_.raw() +
                          (n * channels_ + c) * geom_.in_h * geom_.in_w;
        const float* gy = grad_out.raw() + (n * channels_ + c) * oh * ow;
        const float* w = cached_weff_.raw() + c * kernel_ * kernel_;
        float* gi =
            grad_in.raw() + (n * channels_ + c) * geom_.in_h * geom_.in_w;
        float* dw = dw_local.raw() + c * kernel_ * kernel_;
        double bsum = 0.0;
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const float g = gy[y * ow + xo];
            if (g == 0.0f) continue;
            bsum += g;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const std::int64_t iy = y * stride_ - pad_ + kh;
              if (iy < 0 || iy >= geom_.in_h) continue;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const std::int64_t ix = xo * stride_ - pad_ + kw;
                if (ix < 0 || ix >= geom_.in_w) continue;
                if (want_param_grads) {
                  dw[kh * kernel_ + kw] += g * in[iy * geom_.in_w + ix];
                }
                gi[iy * geom_.in_w + ix] += g * w[kh * kernel_ + kw];
              }
            }
          }
        }
        db_local[c] += static_cast<float>(bsum);
      }
    }
    if (want_param_grads) {
      std::lock_guard<std::mutex> lock(reduce_mu);
      for (std::int64_t i = 0; i < dw_local.numel(); ++i) {
        weight_.grad[i] += dw_local[i];
      }
      if (with_bias_) {
        for (std::int64_t c = 0; c < channels_; ++c) {
          bias_.grad[c] += db_local[c];
        }
      }
    }
  });

  return grad_in;
}

}  // namespace diva
