#include "nn/conv.h"

#include <algorithm>
#include <mutex>

#include "kernels/gemm.h"
#include "kernels/workspace.h"
#include "runtime/thread_pool.h"

namespace diva {

Conv2d::Conv2d(std::string name, std::int64_t in_c, std::int64_t out_c,
               std::int64_t kernel, std::int64_t stride, std::int64_t pad,
               bool with_bias)
    : Module(std::move(name)),
      in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_(Tensor(Shape{out_c, in_c, kernel, kernel})),
      bias_(Tensor(Shape{out_c})) {
  DIVA_CHECK(in_c > 0 && out_c > 0 && kernel > 0 && stride > 0 && pad >= 0,
             "bad Conv2d config");
}

std::vector<std::pair<std::string, Parameter*>> Conv2d::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor Conv2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4 && x.dim(1) == in_c_,
             name() << ": expected [N," << in_c_ << ",H,W], got "
                    << x.shape().str());
  batch_ = x.dim(0);
  geom_ = ConvGeom{in_c_, x.dim(2), x.dim(3), kernel_, kernel_, stride_, pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses to zero size");
  const std::int64_t k2 = in_c_ * kernel_ * kernel_;
  const std::int64_t ohw = oh * ow;

  weff_ = &effective_weight();  // [out_c, k2] once flattened row-major
  // The input is only needed to recompute im2col panels for dW; frozen
  // models (attack mode) skip the copy entirely.
  cached_input_ = param_grads_enabled() ? x : Tensor();
  Tensor out(Shape{batch_, out_c_, oh, ow});

  const std::int64_t in_stride = in_c_ * geom_.in_h * geom_.in_w;
  const float* bias = with_bias_ ? bias_.value.raw() : nullptr;
  parallel_for(0, batch_, [&](std::int64_t n) {
    auto frame = Workspace::tls().frame();
    float* cols = frame.alloc<float>(k2 * ohw);
    im2col(x.raw() + n * in_stride, geom_, cols);
    // out_n[out_c, ohw] = W[out_c, k2] x cols[k2, ohw] + bias
    sgemm(out_c_, ohw, k2, weff_->raw(), k2, false, cols, ohw, false,
          out.raw() + n * out_c_ * ohw, ohw, {.bias_row = bias});
  });
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  DIVA_CHECK(weff_ != nullptr,
             name() << ": backward without a preceding forward");
  DIVA_CHECK(!param_grads_enabled() || !cached_input_.empty(),
             name() << ": parameter gradients were enabled after a frozen "
                       "forward; rerun forward first");
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  const std::int64_t ohw = oh * ow;
  const std::int64_t k2 = in_c_ * kernel_ * kernel_;
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == batch_ &&
                 grad_out.dim(1) == out_c_ && grad_out.dim(2) == oh &&
                 grad_out.dim(3) == ow,
             name() << ": bad grad shape " << grad_out.shape().str());

  Tensor grad_in(Shape{batch_, in_c_, geom_.in_h, geom_.in_w});
  const std::int64_t in_stride = in_c_ * geom_.in_h * geom_.in_w;
  const float* wraw = weff_->raw();

  // Per-chunk weight/bias gradient accumulators avoid a shared-write race.
  const bool want_param_grads = param_grads_enabled();
  std::mutex reduce_mu;
  parallel_for_chunked(0, batch_, [&](std::int64_t lo, std::int64_t hi) {
    auto frame = Workspace::tls().frame();
    float* dcol = frame.alloc<float>(k2 * ohw);
    float* cols = want_param_grads ? frame.alloc<float>(k2 * ohw) : nullptr;
    float* dw_local =
        want_param_grads ? frame.alloc_zeroed<float>(out_c_ * k2) : nullptr;
    double* db_local =
        want_param_grads ? frame.alloc_zeroed<double>(out_c_) : nullptr;

    for (std::int64_t n = lo; n < hi; ++n) {
      const float* gy = grad_out.raw() + n * out_c_ * ohw;

      if (want_param_grads) {
        // dW[out_c, k2] += gy[out_c, ohw] x colsT[ohw, k2]; the im2col
        // panels are recomputed from the cached input rather than
        // retained across the step.
        im2col(cached_input_.raw() + n * in_stride, geom_, cols);
        sgemm(out_c_, k2, ohw, gy, ohw, false, cols, ohw, true, dw_local, k2,
              {.beta = 1.0f});
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
          const float* gyrow = gy + oc * ohw;
          double bsum = 0.0;
          for (std::int64_t j = 0; j < ohw; ++j) bsum += gyrow[j];
          db_local[oc] += bsum;
        }
      }

      // dcol[k2, ohw] = WT[k2, out_c] x gy[out_c, ohw]; scatter to dX.
      sgemm(k2, ohw, out_c_, wraw, k2, true, gy, ohw, false, dcol, ohw, {});
      col2im(dcol, geom_, grad_in.raw() + n * in_stride);
    }

    if (want_param_grads) {
      std::lock_guard<std::mutex> lock(reduce_mu);
      float* dw = weight_.grad.raw();
      for (std::int64_t i = 0; i < out_c_ * k2; ++i) dw[i] += dw_local[i];
      if (with_bias_) {
        for (std::int64_t oc = 0; oc < out_c_; ++oc) {
          bias_.grad[oc] += static_cast<float>(db_local[oc]);
        }
      }
    }
  });

  // Step over: drop the forward caches so attack loops don't carry
  // per-layer buffers between iterations.
  cached_input_ = Tensor();
  weff_ = nullptr;
  return grad_in;
}

DepthwiseConv2d::DepthwiseConv2d(std::string name, std::int64_t channels,
                                 std::int64_t kernel, std::int64_t stride,
                                 std::int64_t pad, bool with_bias)
    : Module(std::move(name)),
      channels_(channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      with_bias_(with_bias),
      weight_(Tensor(Shape{channels, 1, kernel, kernel})),
      bias_(Tensor(Shape{channels})) {
  DIVA_CHECK(channels > 0 && kernel > 0 && stride > 0 && pad >= 0,
             "bad DepthwiseConv2d config");
}

std::vector<std::pair<std::string, Parameter*>>
DepthwiseConv2d::local_parameters() {
  std::vector<std::pair<std::string, Parameter*>> out{{"weight", &weight_}};
  if (with_bias_) out.emplace_back("bias", &bias_);
  return out;
}

Tensor DepthwiseConv2d::forward(const Tensor& x) {
  DIVA_CHECK(x.rank() == 4 && x.dim(1) == channels_,
             name() << ": expected [N," << channels_ << ",H,W], got "
                    << x.shape().str());
  const std::int64_t batch = x.dim(0);
  geom_ = ConvGeom{channels_, x.dim(2), x.dim(3), kernel_, kernel_, stride_,
                   pad_};
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(oh > 0 && ow > 0, name() << ": output collapses to zero size");

  cached_input_ = param_grads_enabled() ? x : Tensor();
  weff_ = &effective_weight();
  Tensor out(Shape{batch, channels_, oh, ow});

  parallel_for(0, batch * channels_, [&](std::int64_t nc) {
    const std::int64_t n = nc / channels_, c = nc % channels_;
    const float* in = x.raw() + (n * channels_ + c) * geom_.in_h * geom_.in_w;
    const float* w = weff_->raw() + c * kernel_ * kernel_;
    float* o = out.raw() + (n * channels_ + c) * oh * ow;
    const float b = with_bias_ ? bias_.value[c] : 0.0f;
    for (std::int64_t y = 0; y < oh; ++y) {
      for (std::int64_t xo = 0; xo < ow; ++xo) {
        float acc = b;
        for (std::int64_t kh = 0; kh < kernel_; ++kh) {
          const std::int64_t iy = y * stride_ - pad_ + kh;
          if (iy < 0 || iy >= geom_.in_h) continue;
          for (std::int64_t kw = 0; kw < kernel_; ++kw) {
            const std::int64_t ix = xo * stride_ - pad_ + kw;
            if (ix < 0 || ix >= geom_.in_w) continue;
            acc += w[kh * kernel_ + kw] * in[iy * geom_.in_w + ix];
          }
        }
        o[y * ow + xo] = acc;
      }
    }
  }, /*grain=*/4);
  return out;
}

Tensor DepthwiseConv2d::backward(const Tensor& grad_out) {
  DIVA_CHECK(weff_ != nullptr,
             name() << ": backward without a preceding forward");
  const bool want_param_grads = param_grads_enabled();
  DIVA_CHECK(!want_param_grads || !cached_input_.empty(),
             name() << ": parameter gradients were enabled after a frozen "
                       "forward; rerun forward first");
  const std::int64_t oh = geom_.out_h(), ow = geom_.out_w();
  DIVA_CHECK(grad_out.rank() == 4 && grad_out.dim(1) == channels_ &&
                 grad_out.dim(2) == oh && grad_out.dim(3) == ow,
             name() << ": bad grad shape " << grad_out.shape().str());
  const std::int64_t batch = grad_out.dim(0);
  DIVA_CHECK(!want_param_grads || cached_input_.dim(0) == batch,
             name() << ": grad batch " << batch << " != forward batch "
                    << cached_input_.dim(0));

  Tensor grad_in(Shape{batch, channels_, geom_.in_h, geom_.in_w});
  std::mutex reduce_mu;

  parallel_for_chunked(0, batch, [&](std::int64_t lo, std::int64_t hi) {
    Tensor dw_local(weight_.value.shape());
    Tensor db_local(Shape{channels_});
    for (std::int64_t n = lo; n < hi; ++n) {
      for (std::int64_t c = 0; c < channels_; ++c) {
        const float* in = want_param_grads
                              ? cached_input_.raw() +
                                    (n * channels_ + c) * geom_.in_h * geom_.in_w
                              : nullptr;
        const float* gy = grad_out.raw() + (n * channels_ + c) * oh * ow;
        const float* w = weff_->raw() + c * kernel_ * kernel_;
        float* gi =
            grad_in.raw() + (n * channels_ + c) * geom_.in_h * geom_.in_w;
        float* dw = dw_local.raw() + c * kernel_ * kernel_;
        double bsum = 0.0;
        for (std::int64_t y = 0; y < oh; ++y) {
          for (std::int64_t xo = 0; xo < ow; ++xo) {
            const float g = gy[y * ow + xo];
            if (g == 0.0f) continue;
            bsum += g;
            for (std::int64_t kh = 0; kh < kernel_; ++kh) {
              const std::int64_t iy = y * stride_ - pad_ + kh;
              if (iy < 0 || iy >= geom_.in_h) continue;
              for (std::int64_t kw = 0; kw < kernel_; ++kw) {
                const std::int64_t ix = xo * stride_ - pad_ + kw;
                if (ix < 0 || ix >= geom_.in_w) continue;
                if (want_param_grads) {
                  dw[kh * kernel_ + kw] += g * in[iy * geom_.in_w + ix];
                }
                gi[iy * geom_.in_w + ix] += g * w[kh * kernel_ + kw];
              }
            }
          }
        }
        db_local[c] += static_cast<float>(bsum);
      }
    }
    if (want_param_grads) {
      std::lock_guard<std::mutex> lock(reduce_mu);
      for (std::int64_t i = 0; i < dw_local.numel(); ++i) {
        weight_.grad[i] += dw_local[i];
      }
      if (with_bias_) {
        for (std::int64_t c = 0; c < channels_; ++c) {
          bias_.grad[c] += db_local[c];
        }
      }
    }
  });

  cached_input_ = Tensor();
  weff_ = nullptr;
  return grad_in;
}

}  // namespace diva
