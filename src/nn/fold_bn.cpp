#include "nn/fold_bn.h"

#include <cmath>

#include "nn/batchnorm.h"
#include "nn/conv.h"
#include "nn/dense.h"

namespace diva {

namespace {

void collect_leaves(Module& m, std::vector<Module*>& out) {
  auto children = m.children();
  if (children.empty()) {
    out.push_back(&m);
    return;
  }
  for (Module* c : children) collect_leaves(*c, out);
}

/// A parameterized layer optionally followed by a BatchNorm to fuse.
struct FoldUnit {
  Module* layer = nullptr;       // Conv2d, DepthwiseConv2d, or Dense
  BatchNorm2d* bn = nullptr;
};

bool is_parameterized_layer(Module* m) {
  return dynamic_cast<Conv2d*>(m) != nullptr ||
         dynamic_cast<DepthwiseConv2d*>(m) != nullptr ||
         dynamic_cast<Dense*>(m) != nullptr;
}

std::vector<FoldUnit> units_with_bn(std::vector<Module*> leaves) {
  std::vector<FoldUnit> units;
  for (Module* leaf : leaves) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(leaf)) {
      DIVA_CHECK(!units.empty() && units.back().bn == nullptr,
                 "BatchNorm '" << bn->name()
                               << "' is not preceded by a conv layer");
      units.back().bn = bn;
    } else if (is_parameterized_layer(leaf)) {
      units.push_back({leaf, nullptr});
    }
  }
  return units;
}

/// Per-output-channel fused scale and offset from a BN layer.
struct ChannelAffine {
  std::vector<float> scale, offset;
};

ChannelAffine bn_affine(BatchNorm2d& bn) {
  const std::int64_t c = bn.channels();
  ChannelAffine out;
  out.scale.resize(static_cast<std::size_t>(c));
  out.offset.resize(static_cast<std::size_t>(c));
  for (std::int64_t i = 0; i < c; ++i) {
    const float inv_std =
        1.0f / std::sqrt(bn.running_var().value[i] + bn.eps());
    out.scale[static_cast<std::size_t>(i)] = bn.gamma().value[i] * inv_std;
    out.offset[static_cast<std::size_t>(i)] =
        bn.beta().value[i] -
        bn.running_mean().value[i] * bn.gamma().value[i] * inv_std;
  }
  return out;
}

}  // namespace

std::vector<Module*> execution_leaves(Module& m) {
  std::vector<Module*> out;
  collect_leaves(m, out);
  return out;
}

void fold_batchnorm_into(Module& src, Module& dst) {
  auto src_units = units_with_bn(execution_leaves(src));
  auto dst_units = units_with_bn(execution_leaves(dst));
  DIVA_CHECK(src_units.size() == dst_units.size(),
             "fold: " << src_units.size() << " source layers vs "
                      << dst_units.size() << " destination layers");

  for (std::size_t i = 0; i < src_units.size(); ++i) {
    Module* s = src_units[i].layer;
    Module* d = dst_units[i].layer;
    BatchNorm2d* bn = src_units[i].bn;
    DIVA_CHECK(dst_units[i].bn == nullptr,
               "fold destination still contains BatchNorm after '"
                   << d->name() << "'");

    if (auto* sc = dynamic_cast<Conv2d*>(s)) {
      auto* dc = dynamic_cast<Conv2d*>(d);
      DIVA_CHECK(dc != nullptr && dc->weight().value.shape() ==
                                      sc->weight().value.shape(),
                 "fold: layer mismatch at '" << s->name() << "'");
      dc->weight().value = sc->weight().value;
      const std::int64_t out_c = sc->out_channels();
      const std::int64_t per = sc->weight().value.numel() / out_c;
      if (bn != nullptr) {
        DIVA_CHECK(bn->channels() == out_c && dc->has_bias(),
                   "fold: cannot fuse BN into '" << d->name() << "'");
        const ChannelAffine a = bn_affine(*bn);
        for (std::int64_t oc = 0; oc < out_c; ++oc) {
          float* w = dc->weight().value.raw() + oc * per;
          for (std::int64_t j = 0; j < per; ++j) {
            w[j] *= a.scale[static_cast<std::size_t>(oc)];
          }
          const float b = sc->has_bias() ? sc->bias().value[oc] : 0.0f;
          dc->bias().value[oc] = a.offset[static_cast<std::size_t>(oc)] +
                                 b * a.scale[static_cast<std::size_t>(oc)];
        }
      } else if (sc->has_bias() && dc->has_bias()) {
        dc->bias().value = sc->bias().value;
      }
    } else if (auto* sd = dynamic_cast<DepthwiseConv2d*>(s)) {
      auto* dd = dynamic_cast<DepthwiseConv2d*>(d);
      DIVA_CHECK(dd != nullptr && dd->weight().value.shape() ==
                                      sd->weight().value.shape(),
                 "fold: layer mismatch at '" << s->name() << "'");
      dd->weight().value = sd->weight().value;
      const std::int64_t c = sd->channels();
      const std::int64_t per = sd->kernel() * sd->kernel();
      if (bn != nullptr) {
        DIVA_CHECK(bn->channels() == c && dd->has_bias(),
                   "fold: cannot fuse BN into '" << d->name() << "'");
        const ChannelAffine a = bn_affine(*bn);
        for (std::int64_t ci = 0; ci < c; ++ci) {
          float* w = dd->weight().value.raw() + ci * per;
          for (std::int64_t j = 0; j < per; ++j) {
            w[j] *= a.scale[static_cast<std::size_t>(ci)];
          }
          const float b = sd->has_bias() ? sd->bias().value[ci] : 0.0f;
          dd->bias().value[ci] = a.offset[static_cast<std::size_t>(ci)] +
                                 b * a.scale[static_cast<std::size_t>(ci)];
        }
      } else if (sd->has_bias() && dd->has_bias()) {
        dd->bias().value = sd->bias().value;
      }
    } else if (auto* sde = dynamic_cast<Dense*>(s)) {
      auto* dde = dynamic_cast<Dense*>(d);
      DIVA_CHECK(dde != nullptr && bn == nullptr &&
                     dde->weight().value.shape() ==
                         sde->weight().value.shape(),
                 "fold: layer mismatch at '" << s->name() << "'");
      dde->weight().value = sde->weight().value;
      if (sde->has_bias() && dde->has_bias()) {
        dde->bias().value = sde->bias().value;
      }
    } else {
      DIVA_FAIL("fold: unsupported layer '" << s->name() << "'");
    }
  }
}

}  // namespace diva
