// Fully-connected layer on rank-2 [N, D] inputs. Forward and both
// backward products run on the blocked kernels/gemm.h sgemm (bias and
// transposes fused); forward caches are released after backward.
#pragma once

#include <string>
#include <vector>

#include "nn/module.h"

namespace diva {

class Dense : public Module {
 public:
  Dense(std::string name, std::int64_t in_features, std::int64_t out_features,
        bool with_bias = true);

  Tensor forward(const Tensor& x) override;
  Tensor backward(const Tensor& grad_out) override;

  std::vector<std::pair<std::string, Parameter*>> local_parameters() override;

  Parameter& weight() { return weight_; }
  Parameter& bias() { return bias_; }
  bool has_bias() const { return with_bias_; }
  std::int64_t in_features() const { return in_f_; }
  std::int64_t out_features() const { return out_f_; }

 protected:
  /// See Conv2d::effective_weight — hook for fake-quantized weights.
  virtual const Tensor& effective_weight() { return weight_.value; }

 private:
  std::int64_t in_f_, out_f_;
  bool with_bias_;
  Parameter weight_;  // [in_f, out_f]
  Parameter bias_;    // [out_f]

  // Released when backward completes.
  Tensor cached_input_;
  const Tensor* weff_ = nullptr;
};

}  // namespace diva
