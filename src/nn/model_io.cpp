#include "nn/model_io.h"

#include <fstream>

#include "tensor/serialize.h"

namespace diva {

void save_model(Module& m, std::ostream& os) {
  auto params = m.named_parameters();
  write_i64(os, static_cast<std::int64_t>(params.size()));
  for (auto& np : params) {
    write_string(os, np.name);
    write_tensor(os, np.param->value);
  }
}

void load_model(Module& m, std::istream& is) {
  auto params = m.named_parameters();
  const std::int64_t count = read_i64(is);
  DIVA_CHECK(count == static_cast<std::int64_t>(params.size()),
             "checkpoint has " << count << " params, model has "
                               << params.size());
  for (auto& np : params) {
    const std::string name = read_string(is);
    DIVA_CHECK(name == np.name,
               "checkpoint param '" << name << "' != model param '" << np.name
                                    << "'");
    Tensor t = read_tensor(is);
    DIVA_CHECK(t.shape() == np.param->value.shape(),
               "shape mismatch for " << name << ": " << t.shape().str()
                                     << " vs "
                                     << np.param->value.shape().str());
    np.param->value = std::move(t);
  }
}

void save_model_file(Module& m, const std::string& path) {
  std::ofstream os(path, std::ios::binary);
  DIVA_CHECK(os.good(), "cannot open for write: " << path);
  save_model(m, os);
}

void load_model_file(Module& m, const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  DIVA_CHECK(is.good(), "cannot open for read: " << path);
  load_model(m, is);
}

void copy_parameters(Module& src, Module& dst) {
  auto sp = src.named_parameters();
  auto dp = dst.named_parameters();
  DIVA_CHECK(sp.size() == dp.size(), "copy_parameters: size mismatch "
                                         << sp.size() << " vs " << dp.size());
  for (std::size_t i = 0; i < sp.size(); ++i) {
    DIVA_CHECK(sp[i].name == dp[i].name, "copy_parameters: name mismatch "
                                             << sp[i].name << " vs "
                                             << dp[i].name);
    DIVA_CHECK(sp[i].param->value.shape() == dp[i].param->value.shape(),
               "copy_parameters: shape mismatch for " << sp[i].name);
    dp[i].param->value = sp[i].param->value;
  }
}

}  // namespace diva
