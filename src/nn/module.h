// Module: the layer abstraction of the NN substrate.
//
// Modules are stateful layers in the classic Caffe style: forward()
// caches whatever backward() needs; backward() receives the gradient
// with respect to the module output and returns the gradient with
// respect to the module input, accumulating parameter gradients along
// the way. Exactly one forward/backward pair may be in flight per
// module (no re-entrancy), which is all the training loops and attack
// loops in this library require.
//
// Both training-mode and eval-mode backward are supported; adversarial
// attacks differentiate eval-mode networks with respect to their input.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.h"

namespace diva {

/// A learnable (or buffer) tensor with its gradient accumulator.
struct Parameter {
  Tensor value;
  Tensor grad;
  /// False for buffers such as BatchNorm running statistics: serialized
  /// with the model but never updated by optimizers.
  bool trainable = true;

  explicit Parameter(Tensor v, bool trainable_in = true)
      : value(std::move(v)), grad(value.shape()), trainable(trainable_in) {}
  Parameter() = default;
};

/// A parameter with its fully-qualified name, e.g. "block1.conv1.weight".
struct NamedParameter {
  std::string name;
  Parameter* param = nullptr;
};

class Module {
 public:
  explicit Module(std::string name) : name_(std::move(name)) {}
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// Computes the layer output. Caches state for backward().
  virtual Tensor forward(const Tensor& x) = 0;

  /// Propagates gradients: takes d(loss)/d(output), returns
  /// d(loss)/d(input), and accumulates parameter gradients (+=).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Parameters owned directly by this module (non-recursive),
  /// with their local names.
  virtual std::vector<std::pair<std::string, Parameter*>> local_parameters() {
    return {};
  }

  /// Direct submodules (non-recursive).
  virtual std::vector<Module*> children() { return {}; }

  /// All parameters in the subtree with hierarchical names.
  std::vector<NamedParameter> named_parameters();

  /// Applies fn to this module and every descendant (pre-order).
  void visit(const std::function<void(Module&)>& fn);

  /// Zeroes every gradient in the subtree.
  void zero_grad();

  /// Switches training/eval mode for the subtree.
  void set_training(bool training);

  /// Disables parameter-gradient accumulation in the subtree. backward()
  /// then only propagates input gradients — roughly halving its cost.
  /// Used by adversarial attacks, which differentiate frozen models with
  /// respect to the input thousands of times.
  void set_param_grads_enabled(bool enabled);

  bool training() const { return training_; }
  bool param_grads_enabled() const { return param_grads_enabled_; }
  const std::string& name() const { return name_; }

  /// Total number of elements across trainable parameters in the subtree.
  std::int64_t num_trainable_elements();

 private:
  void collect(const std::string& prefix, std::vector<NamedParameter>& out);

  std::string name_;
  bool training_ = false;
  bool param_grads_enabled_ = true;
};

/// Pass-through layer; useful as a residual shortcut.
class Identity : public Module {
 public:
  explicit Identity(std::string name = "identity") : Module(std::move(name)) {}
  Tensor forward(const Tensor& x) override { return x; }
  Tensor backward(const Tensor& grad_out) override { return grad_out; }
};

}  // namespace diva
