// Knowledge distillation (Hinton et al.), used by the paper to
// reconstruct surrogate models for the semi-blackbox and blackbox
// attacks (§4.3, §4.4): the adapted model is the *teacher* and the
// surrogate full-precision model is the *student*; the student is
// trained to match the teacher's predicted labels and its temperature-
// softened output distribution. The teacher is queried through a plain
// forward function, so prediction-only (blackbox) access suffices.
#pragma once

#include <functional>

#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace diva {

/// Teacher interface: NCHW batch -> [N, classes] float logits.
using TeacherFn = std::function<Tensor(const Tensor&)>;

struct DistillConfig {
  float temperature = 4.0f;
  /// Weight of the hard-label cross-entropy term (vs the soft KL term).
  float alpha = 0.5f;
  int epochs = 4;
  std::int64_t batch_size = 32;
  float lr = 0.04f;
  float momentum = 0.9f;
  std::uint64_t seed = 11;
  bool verbose = false;
};

/// Distills the teacher into the student over an unlabeled image pool
/// (hard labels are the teacher's argmax, per the paper). Returns the
/// final-epoch mean distillation loss. Student left in eval mode.
float distill(Sequential& student, const TeacherFn& teacher,
              const Tensor& images, const DistillConfig& cfg);

/// Mean agreement (same argmax) between student and teacher on a pool —
/// the fidelity metric for surrogate reconstruction.
float agreement(Sequential& student, const TeacherFn& teacher,
                const Tensor& images, std::int64_t batch_size = 64);

}  // namespace diva
