#include "distill/distill.h"

#include <cstdio>

#include "nn/loss.h"
#include "nn/optimizer.h"
#include "runtime/rng.h"
#include "tensor/tensor_ops.h"

namespace diva {

float distill(Sequential& student, const TeacherFn& teacher,
              const Tensor& images, const DistillConfig& cfg) {
  DIVA_CHECK(images.rank() == 4 && images.dim(0) > 0, "empty distill pool");
  const std::int64_t n = images.dim(0);
  Sgd opt(student.named_parameters(), cfg.lr, cfg.momentum);
  Rng rng(cfg.seed);
  std::vector<int> order(static_cast<std::size_t>(n));
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = static_cast<int>(i);

  float last_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
    rng.shuffle(std::span<int>(order));
    student.set_training(true);
    double epoch_loss = 0.0;
    std::int64_t steps = 0;
    for (std::int64_t at = 0; at < n; at += cfg.batch_size, ++steps) {
      const std::int64_t take = std::min(cfg.batch_size, n - at);
      std::vector<int> idx(order.begin() + at, order.begin() + at + take);
      const Tensor batch = gather_batch(images, idx);

      const Tensor teacher_logits = teacher(batch);
      const auto hard = argmax_rows(teacher_logits);

      opt.zero_grad();
      const Tensor student_logits = student.forward(batch);
      LossGrad lg = distillation_loss(student_logits, teacher_logits, hard,
                                      cfg.temperature, cfg.alpha);
      student.backward(lg.dlogits);
      opt.step();
      epoch_loss += lg.loss;
    }
    last_loss = static_cast<float>(epoch_loss / static_cast<double>(steps));
    if (cfg.verbose) {
      std::printf("  distill epoch %d/%d loss %.4f\n", epoch + 1, cfg.epochs,
                  last_loss);
    }
  }
  student.set_training(false);
  return last_loss;
}

float agreement(Sequential& student, const TeacherFn& teacher,
                const Tensor& images, std::int64_t batch_size) {
  student.set_training(false);
  const std::int64_t n = images.dim(0);
  std::int64_t agree = 0;
  for (std::int64_t at = 0; at < n; at += batch_size) {
    const std::int64_t take = std::min(batch_size, n - at);
    std::vector<int> idx(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<int>(at + i);
    }
    const Tensor batch = gather_batch(images, idx);
    const auto ps = argmax_rows(student.forward(batch));
    const auto pt = argmax_rows(teacher(batch));
    for (std::size_t i = 0; i < ps.size(); ++i) agree += ps[i] == pt[i];
  }
  return static_cast<float>(agree) / static_cast<float>(n);
}

}  // namespace diva
