#include "tensor/serialize.h"

#include <cstdint>
#include <istream>
#include <ostream>
#include <vector>

namespace diva {

namespace {

template <typename T>
void write_pod(std::ostream& os, T v) {
  os.write(reinterpret_cast<const char*>(&v), sizeof(T));
  DIVA_CHECK(os.good(), "stream write failed");
}

template <typename T>
T read_pod(std::istream& is) {
  T v{};
  is.read(reinterpret_cast<char*>(&v), sizeof(T));
  DIVA_CHECK(is.good(), "stream read failed");
  return v;
}

}  // namespace

void write_tensor(std::ostream& os, const Tensor& t) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(t.rank()));
  for (std::size_t i = 0; i < t.rank(); ++i) {
    write_pod<std::int64_t>(os, t.dim(i));
  }
  os.write(reinterpret_cast<const char*>(t.raw()),
           static_cast<std::streamsize>(t.numel() * sizeof(float)));
  DIVA_CHECK(os.good(), "tensor data write failed");
}

Tensor read_tensor(std::istream& is) {
  const auto rank = read_pod<std::uint32_t>(is);
  DIVA_CHECK(rank <= 8, "corrupt tensor stream: rank=" << rank);
  std::vector<std::int64_t> dims(rank);
  for (auto& d : dims) d = read_pod<std::int64_t>(is);
  Tensor t{Shape(std::move(dims))};
  is.read(reinterpret_cast<char*>(t.raw()),
          static_cast<std::streamsize>(t.numel() * sizeof(float)));
  DIVA_CHECK(is.good(), "tensor data read failed");
  return t;
}

void write_string(std::ostream& os, const std::string& s) {
  write_pod<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
  DIVA_CHECK(os.good(), "string write failed");
}

std::string read_string(std::istream& is) {
  const auto n = read_pod<std::uint32_t>(is);
  DIVA_CHECK(n <= (1u << 20), "corrupt string length " << n);
  std::string s(n, '\0');
  is.read(s.data(), static_cast<std::streamsize>(n));
  DIVA_CHECK(is.good(), "string read failed");
  return s;
}

void write_i64(std::ostream& os, std::int64_t v) { write_pod(os, v); }
std::int64_t read_i64(std::istream& is) { return read_pod<std::int64_t>(is); }
void write_f32(std::ostream& os, float v) { write_pod(os, v); }
float read_f32(std::istream& is) { return read_pod<float>(is); }

}  // namespace diva
