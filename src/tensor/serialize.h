// Binary tensor (de)serialization used by model checkpoints and the
// experiment model cache. Format is little-endian, versioned by a magic
// header per stream element:
//   u32 rank, i64 dims[rank], f32 data[numel]
#pragma once

#include <iosfwd>
#include <string>

#include "tensor/tensor.h"

namespace diva {

/// Writes a tensor to a binary stream. Throws diva::Error on I/O failure.
void write_tensor(std::ostream& os, const Tensor& t);

/// Reads a tensor previously written by write_tensor.
Tensor read_tensor(std::istream& is);

/// Writes a length-prefixed string.
void write_string(std::ostream& os, const std::string& s);
std::string read_string(std::istream& is);

void write_i64(std::ostream& os, std::int64_t v);
std::int64_t read_i64(std::istream& is);
void write_f32(std::ostream& os, float v);
float read_f32(std::istream& is);

}  // namespace diva
