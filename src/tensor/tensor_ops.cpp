#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "kernels/gemm.h"
#include "runtime/thread_pool.h"

namespace diva {

namespace {

void check_same_shape(const Tensor& a, const Tensor& b, const char* op) {
  DIVA_CHECK(a.shape() == b.shape(), op << ": shape mismatch "
                                        << a.shape().str() << " vs "
                                        << b.shape().str());
}

}  // namespace

Tensor add(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "add");
  Tensor out(a.shape());
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* po = out.raw();
  for (std::int64_t i = 0; i < a.numel(); ++i) po[i] = pa[i] + pb[i];
  return out;
}

Tensor sub(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "sub");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] - b[i];
  return out;
}

Tensor mul(const Tensor& a, const Tensor& b) {
  check_same_shape(a, b, "mul");
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * b[i];
  return out;
}

Tensor add_scalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] + s;
  return out;
}

Tensor mul_scalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = a[i] * s;
  return out;
}

void axpy(float alpha, const Tensor& x, Tensor& y) {
  check_same_shape(x, y, "axpy");
  float* py = y.raw();
  const float* px = x.raw();
  for (std::int64_t i = 0; i < x.numel(); ++i) py[i] += alpha * px[i];
}

void accumulate(Tensor& y, const Tensor& x) { axpy(1.0f, x, y); }

Tensor clamp(const Tensor& a, float lo, float hi) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = std::min(hi, std::max(lo, a[i]));
  }
  return out;
}

Tensor sign(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) {
    out[i] = a[i] > 0.0f ? 1.0f : (a[i] < 0.0f ? -1.0f : 0.0f);
  }
  return out;
}

Tensor abs(const Tensor& a) {
  Tensor out(a.shape());
  for (std::int64_t i = 0; i < a.numel(); ++i) out[i] = std::fabs(a[i]);
  return out;
}

Tensor matmul(const Tensor& a, const Tensor& b) {
  DIVA_CHECK(a.rank() == 2 && b.rank() == 2, "matmul needs rank-2 operands");
  DIVA_CHECK(a.dim(1) == b.dim(0), "matmul inner dims: " << a.shape().str()
                                                         << " x "
                                                         << b.shape().str());
  Tensor c(Shape{a.dim(0), b.dim(1)});
  sgemm(a.dim(0), b.dim(1), a.dim(1), a.raw(), a.dim(1), false, b.raw(),
        b.dim(1), false, c.raw(), b.dim(1), {});
  return c;
}

void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c) {
  DIVA_CHECK(a.rank() == 2 && b.rank() == 2 && c.rank() == 2,
             "matmul_acc needs rank-2 operands");
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  DIVA_CHECK(b.dim(0) == k && c.dim(0) == m && c.dim(1) == n,
             "matmul_acc shapes: " << a.shape().str() << " x "
                                   << b.shape().str() << " -> "
                                   << c.shape().str());
  sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, c.raw(), n,
        {.beta = 1.0f});
}

Tensor matmul_reference(const Tensor& a, const Tensor& b) {
  DIVA_CHECK(a.rank() == 2 && b.rank() == 2 && a.dim(1) == b.dim(0),
             "matmul_reference shapes: " << a.shape().str() << " x "
                                         << b.shape().str());
  const std::int64_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  Tensor c(Shape{m, n});
  const float* pa = a.raw();
  const float* pb = b.raw();
  float* pc = c.raw();
  // i-k-j loop order: unit-stride inner loops over B and C rows.
  for (std::int64_t i = 0; i < m; ++i) {
    float* crow = pc + i * n;
    const float* arow = pa + i * k;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const float aik = arow[kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      for (std::int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

Tensor transpose2d(const Tensor& a) {
  DIVA_CHECK(a.rank() == 2, "transpose2d needs rank-2");
  const std::int64_t m = a.dim(0), n = a.dim(1);
  Tensor out(Shape{n, m});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) out.at(j, i) = a.at(i, j);
  }
  return out;
}

Tensor softmax_rows(const Tensor& logits) {
  DIVA_CHECK(logits.rank() == 2, "softmax_rows needs [N, D]");
  const std::int64_t n = logits.dim(0), d = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.raw() + i * d;
    float* orow = out.raw() + i * d;
    const float m = *std::max_element(row, row + d);
    float total = 0.0f;
    for (std::int64_t j = 0; j < d; ++j) {
      orow[j] = std::exp(row[j] - m);
      total += orow[j];
    }
    const float inv = 1.0f / total;
    for (std::int64_t j = 0; j < d; ++j) orow[j] *= inv;
  }
  return out;
}

Tensor log_softmax_rows(const Tensor& logits) {
  DIVA_CHECK(logits.rank() == 2, "log_softmax_rows needs [N, D]");
  const std::int64_t n = logits.dim(0), d = logits.dim(1);
  Tensor out(logits.shape());
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.raw() + i * d;
    float* orow = out.raw() + i * d;
    const float m = *std::max_element(row, row + d);
    float total = 0.0f;
    for (std::int64_t j = 0; j < d; ++j) total += std::exp(row[j] - m);
    const float lse = m + std::log(total);
    for (std::int64_t j = 0; j < d; ++j) orow[j] = row[j] - lse;
  }
  return out;
}

std::vector<int> argmax_rows(const Tensor& m) {
  DIVA_CHECK(m.rank() == 2, "argmax_rows needs [N, D]");
  const std::int64_t n = m.dim(0), d = m.dim(1);
  std::vector<int> out(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = m.raw() + i * d;
    out[static_cast<std::size_t>(i)] =
        static_cast<int>(std::max_element(row, row + d) - row);
  }
  return out;
}

std::vector<std::vector<int>> topk_rows(const Tensor& m, int k) {
  DIVA_CHECK(m.rank() == 2, "topk_rows needs [N, D]");
  const std::int64_t n = m.dim(0), d = m.dim(1);
  DIVA_CHECK(k >= 1 && k <= d, "topk k=" << k << " out of range for D=" << d);
  std::vector<std::vector<int>> out(static_cast<std::size_t>(n));
  std::vector<int> idx(static_cast<std::size_t>(d));
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = m.raw() + i * d;
    std::iota(idx.begin(), idx.end(), 0);
    std::partial_sort(idx.begin(), idx.begin() + k, idx.end(),
                      [row](int a, int b) { return row[a] > row[b]; });
    out[static_cast<std::size_t>(i)].assign(idx.begin(), idx.begin() + k);
  }
  return out;
}

float sum(const Tensor& a) {
  double s = 0.0;
  for (std::int64_t i = 0; i < a.numel(); ++i) s += a[i];
  return static_cast<float>(s);
}

float mean(const Tensor& a) {
  DIVA_CHECK(a.numel() > 0, "mean of empty tensor");
  return sum(a) / static_cast<float>(a.numel());
}

float max_value(const Tensor& a) {
  DIVA_CHECK(a.numel() > 0, "max of empty tensor");
  return *std::max_element(a.data().begin(), a.data().end());
}

float min_value(const Tensor& a) {
  DIVA_CHECK(a.numel() > 0, "min of empty tensor");
  return *std::min_element(a.data().begin(), a.data().end());
}

float max_abs(const Tensor& a) {
  float m = 0.0f;
  for (std::int64_t i = 0; i < a.numel(); ++i) m = std::max(m, std::fabs(a[i]));
  return m;
}

Tensor slice_batch(const Tensor& batch, std::int64_t n) {
  DIVA_CHECK(batch.rank() == 4, "slice_batch needs NCHW");
  DIVA_CHECK(n >= 0 && n < batch.dim(0), "batch index out of range");
  const std::int64_t per = batch.numel() / batch.dim(0);
  Tensor out(Shape{1, batch.dim(1), batch.dim(2), batch.dim(3)});
  std::copy_n(batch.raw() + n * per, per, out.raw());
  return out;
}

Tensor gather_batch(const Tensor& batch, const std::vector<int>& indices) {
  DIVA_CHECK(batch.rank() == 4, "gather_batch needs NCHW");
  const std::int64_t per = batch.numel() / batch.dim(0);
  Tensor out(Shape{static_cast<std::int64_t>(indices.size()), batch.dim(1),
                   batch.dim(2), batch.dim(3)});
  for (std::size_t i = 0; i < indices.size(); ++i) {
    const std::int64_t n = indices[i];
    DIVA_CHECK(n >= 0 && n < batch.dim(0), "gather index out of range");
    std::copy_n(batch.raw() + n * per, per,
                out.raw() + static_cast<std::int64_t>(i) * per);
  }
  return out;
}

Tensor concat_channels(const Tensor& a, const Tensor& b) {
  DIVA_CHECK(a.rank() == 4 && b.rank() == 4, "concat_channels needs NCHW");
  DIVA_CHECK(a.dim(0) == b.dim(0) && a.dim(2) == b.dim(2) &&
                 a.dim(3) == b.dim(3),
             "concat_channels: " << a.shape().str() << " vs "
                                 << b.shape().str());
  const std::int64_t n = a.dim(0), ca = a.dim(1), cb = b.dim(1);
  const std::int64_t hw = a.dim(2) * a.dim(3);
  Tensor out(Shape{n, ca + cb, a.dim(2), a.dim(3)});
  for (std::int64_t i = 0; i < n; ++i) {
    std::copy_n(a.raw() + i * ca * hw, ca * hw,
                out.raw() + i * (ca + cb) * hw);
    std::copy_n(b.raw() + i * cb * hw, cb * hw,
                out.raw() + i * (ca + cb) * hw + ca * hw);
  }
  return out;
}

}  // namespace diva
