// Shape: dimension list for dense tensors (rank 0..4 in practice).
#pragma once

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

#include "runtime/check.h"

namespace diva {

/// Immutable-ish dimension vector with row-major index math.
///
/// Invariant: every dimension is >= 0. numel() is the product of all
/// dimensions (1 for rank-0).
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<std::int64_t> dims) : dims_(dims) { validate(); }
  explicit Shape(std::vector<std::int64_t> dims) : dims_(std::move(dims)) {
    validate();
  }

  std::size_t rank() const { return dims_.size(); }

  std::int64_t operator[](std::size_t i) const {
    DIVA_CHECK(i < dims_.size(), "shape axis " << i << " out of range for "
                                               << str());
    return dims_[i];
  }

  /// Total element count (product of dims; 1 for scalar rank-0).
  std::int64_t numel() const {
    std::int64_t n = 1;
    for (auto d : dims_) n *= d;
    return n;
  }

  const std::vector<std::int64_t>& dims() const { return dims_; }

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

  /// Human-readable form, e.g. "[2, 3, 32, 32]".
  std::string str() const {
    std::string s = "[";
    for (std::size_t i = 0; i < dims_.size(); ++i) {
      if (i) s += ", ";
      s += std::to_string(dims_[i]);
    }
    return s + "]";
  }

 private:
  void validate() const {
    for (auto d : dims_) DIVA_CHECK(d >= 0, "negative dim in shape " << str());
  }

  std::vector<std::int64_t> dims_;
};

inline std::ostream& operator<<(std::ostream& os, const Shape& s) {
  return os << s.str();
}

}  // namespace diva
