// Dense tensor operations: elementwise math, GEMM, im2col, row-wise
// softmax/argmax/top-k, and reductions. These are the primitives the NN
// layer builds on. matmul routes through the blocked kernels/gemm.h
// sgemm (packed panels, thread-pool sharded); everything else is
// single-threaded (callers parallelize at the batch level).
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/conv_geom.h"
#include "kernels/im2col.h"
#include "tensor/tensor.h"

namespace diva {

// ---------------------------------------------------------------------------
// Elementwise (shapes must match exactly; scalar variants broadcast).
// ---------------------------------------------------------------------------

Tensor add(const Tensor& a, const Tensor& b);
Tensor sub(const Tensor& a, const Tensor& b);
Tensor mul(const Tensor& a, const Tensor& b);
Tensor add_scalar(const Tensor& a, float s);
Tensor mul_scalar(const Tensor& a, float s);

/// In-place y += alpha * x.
void axpy(float alpha, const Tensor& x, Tensor& y);
/// In-place elementwise accumulate: y += x.
void accumulate(Tensor& y, const Tensor& x);

/// Elementwise clamp into [lo, hi].
Tensor clamp(const Tensor& a, float lo, float hi);
/// Elementwise sign: -1, 0, or +1.
Tensor sign(const Tensor& a);
Tensor abs(const Tensor& a);

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// C[M,N] = A[M,K] x B[K,N] via the blocked kernels/gemm.h sgemm.
Tensor matmul(const Tensor& a, const Tensor& b);

/// C[M,N] += A[M,K] x B[K,N] (accumulating GEMM).
void matmul_acc(const Tensor& a, const Tensor& b, Tensor& c);

/// Naive i-k-j reference GEMM. Kept as the ground truth the blocked
/// sgemm is pinned against in tests; not a hot path.
Tensor matmul_reference(const Tensor& a, const Tensor& b);

/// Transpose of a rank-2 tensor.
Tensor transpose2d(const Tensor& a);

// ---------------------------------------------------------------------------
// Convolution lowering (single image, CHW). ConvGeom and the templated
// im2col/col2im live in kernels/; this float wrapper keeps the
// historical zero-padding signature.
// ---------------------------------------------------------------------------

/// Lowers one CHW image to a [C*Kh*Kw, OH*OW] patch matrix (zero padding).
/// `image` points at C*H*W floats; `out` must hold C*Kh*Kw*OH*OW floats.
inline void im2col(const float* image, const ConvGeom& g, float* out) {
  im2col<float>(image, g, 0.0f, out);
}

// ---------------------------------------------------------------------------
// Row-wise ops on rank-2 [N, D] tensors.
// ---------------------------------------------------------------------------

/// Numerically-stable softmax along the last axis of a [N, D] tensor.
Tensor softmax_rows(const Tensor& logits);

/// log-softmax along the last axis of [N, D].
Tensor log_softmax_rows(const Tensor& logits);

/// Index of the max element in each row.
std::vector<int> argmax_rows(const Tensor& m);

/// Indices of the k largest elements of each row, in descending order.
std::vector<std::vector<int>> topk_rows(const Tensor& m, int k);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

float sum(const Tensor& a);
float mean(const Tensor& a);
float max_value(const Tensor& a);
float min_value(const Tensor& a);
/// Largest absolute element (L-infinity norm).
float max_abs(const Tensor& a);

// ---------------------------------------------------------------------------
// Batch helpers for rank-4 NCHW tensors.
// ---------------------------------------------------------------------------

/// Extracts image n of a [N,C,H,W] tensor as [1,C,H,W].
Tensor slice_batch(const Tensor& batch, std::int64_t n);

/// Builds a [K,C,H,W] batch from selected indices of a [N,C,H,W] tensor.
Tensor gather_batch(const Tensor& batch, const std::vector<int>& indices);

/// Concatenates rank-4 tensors along the channel axis.
Tensor concat_channels(const Tensor& a, const Tensor& b);

}  // namespace diva
