// Dense float tensor, row-major, NCHW convention for images.
//
// Tensors own their storage (std::vector<float>); copies are deep and
// moves are cheap. All shape errors throw diva::Error. The tensor layer
// is deliberately simple — no views, no broadcasting beyond the helpers
// in tensor_ops.h — because the NN layer above it only needs dense
// row-major math.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "runtime/check.h"
#include "runtime/rng.h"
#include "tensor/shape.h"

namespace diva {

class Tensor {
 public:
  /// Empty tensor (rank 0, zero elements until assigned).
  Tensor() = default;

  /// Zero-filled tensor of the given shape.
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), 0.0f) {}

  /// Constant-filled tensor.
  Tensor(Shape shape, float fill)
      : shape_(std::move(shape)),
        data_(static_cast<std::size_t>(shape_.numel()), fill) {}

  /// Takes ownership of `values`; must match shape.numel().
  Tensor(Shape shape, std::vector<float> values)
      : shape_(std::move(shape)), data_(std::move(values)) {
    DIVA_CHECK(static_cast<std::int64_t>(data_.size()) == shape_.numel(),
               "data size " << data_.size() << " != numel of " << shape_.str());
  }

  const Shape& shape() const { return shape_; }
  std::int64_t numel() const { return shape_.numel(); }
  std::size_t rank() const { return shape_.rank(); }
  std::int64_t dim(std::size_t i) const { return shape_[i]; }

  std::span<float> data() { return {data_.data(), data_.size()}; }
  std::span<const float> data() const { return {data_.data(), data_.size()}; }
  float* raw() { return data_.data(); }
  const float* raw() const { return data_.data(); }

  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const {
    return data_[static_cast<std::size_t>(i)];
  }

  /// 2-D element access (row-major).
  float& at(std::int64_t i, std::int64_t j) {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }
  float at(std::int64_t i, std::int64_t j) const {
    return data_[static_cast<std::size_t>(i * shape_[1] + j)];
  }

  /// 4-D (NCHW) element access.
  float& at(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }
  float at(std::int64_t n, std::int64_t c, std::int64_t h,
           std::int64_t w) const {
    return data_[static_cast<std::size_t>(
        ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
  }

  /// Returns a tensor with the same data, new shape (numel must match).
  Tensor reshaped(Shape new_shape) const& {
    DIVA_CHECK(new_shape.numel() == shape_.numel(),
               "reshape " << shape_.str() << " -> " << new_shape.str());
    return Tensor(std::move(new_shape), data_);
  }
  Tensor reshaped(Shape new_shape) && {
    DIVA_CHECK(new_shape.numel() == shape_.numel(),
               "reshape " << shape_.str() << " -> " << new_shape.str());
    return Tensor(std::move(new_shape), std::move(data_));
  }

  /// Fills with a constant.
  void fill(float v) {
    for (auto& x : data_) x = v;
  }

  /// Fills i.i.d. from N(mean, sd).
  void fill_normal(Rng& rng, float mean, float sd) {
    for (auto& x : data_) x = rng.normal(mean, sd);
  }

  /// Fills i.i.d. from U[lo, hi).
  void fill_uniform(Rng& rng, float lo, float hi) {
    for (auto& x : data_) x = rng.uniform(lo, hi);
  }

  bool empty() const { return data_.empty(); }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace diva
