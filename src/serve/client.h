// AttackClient: blocking client for the attack server.
//
// One instance owns one AF_UNIX connection and is meant to be used from
// a single thread (bench clients create one per thread). Any number of
// requests may be kept in flight on the connection — responses are
// matched by correlation id, and frames that belong to a different
// outstanding request are buffered until that request is waited on.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "serve/protocol.h"

namespace diva::serve {

/// Assembled outcome of one served request, in request sample order.
struct ServedResult {
  Tensor adv;  // [N, C, H, W], bit-identical to a sequential run
  std::vector<SampleVerdict> verdicts;
  /// Server-side latency, request decode to last shard (RequestDone).
  double server_seconds = 0.0;
  /// Slowest single shard's attack time — the critical-path lower bound.
  double max_shard_seconds = 0.0;
  /// Distinct worker processes that contributed shards.
  std::vector<std::uint32_t> shard_workers;
};

class AttackClient {
 public:
  /// Connects to the server's AF_UNIX socket; throws on failure.
  explicit AttackClient(const std::string& socket_path);
  ~AttackClient();

  AttackClient(const AttackClient&) = delete;
  AttackClient& operator=(const AttackClient&) = delete;

  /// Sends a request and returns its correlation id. When req.id is 0 a
  /// fresh id unique to this client is assigned; otherwise req.id must
  /// not collide with an outstanding request on this connection.
  std::uint64_t submit(AttackRequest req);

  /// Blocks until request `id` finishes. Throws diva::Error carrying the
  /// server's rejection text if the request failed (registry validation
  /// shapes included, verbatim).
  ServedResult wait(std::uint64_t id);

  /// submit + wait.
  ServedResult run(AttackRequest req) { return wait(submit(std::move(req))); }

  /// Asks the daemon to shut itself down (kShutdown frame).
  void request_server_shutdown();

  /// Fetches the server's merged telemetry snapshot (kStatsRequest).
  /// Safe with requests in flight: result frames that arrive before the
  /// kStatsReply are applied to their in-flight records as usual.
  telemetry::Snapshot stats();

 private:
  struct InFlight {
    std::int64_t total = 0;  // batch rows expected
    Shape sample_shape;      // [C, H, W]
    ServedResult result;
    std::int64_t received = 0;  // rows assembled so far
    bool done = false;
    bool failed = false;
    std::string error;
  };

  /// Reads one frame and applies it to the matching in-flight record.
  void pump();

  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, InFlight> inflight_;
  telemetry::Snapshot last_stats_;
  bool stats_pending_ = false;
};

}  // namespace diva::serve
