#include "serve/protocol.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace diva::serve {

namespace {

/// Frames are images-dominated; anything past this is a corrupt length
/// field, not a real request (1 GiB of float32 is ~256M pixels).
constexpr std::uint64_t kMaxPayload = 1ULL << 30;

constexpr std::size_t kHeaderBytes = 4 + 2 + 2 + 8;

void append_header(std::vector<std::uint8_t>& frame, MsgType type,
                   std::uint64_t payload_bytes) {
  WireWriter w;
  w.u32(kMagic);
  w.u16(kProtocolVersion);
  w.u16(static_cast<std::uint16_t>(type));
  w.u64(payload_bytes);
  const auto header = w.take();
  frame.insert(frame.end(), header.begin(), header.end());
}

std::vector<std::uint8_t> finish_frame(MsgType type, WireWriter&& payload) {
  std::vector<std::uint8_t> body = payload.take();
  std::vector<std::uint8_t> frame;
  frame.reserve(kHeaderBytes + body.size());
  append_header(frame, type, body.size());
  frame.insert(frame.end(), body.begin(), body.end());
  return frame;
}

void write_spec(WireWriter& w, const AttackSpec& spec) {
  DIVA_CHECK(!spec.cfg.step_callback,
             "attack specs with step callbacks cannot travel the wire");
  w.f32(spec.cfg.epsilon);
  w.f32(spec.cfg.alpha);
  w.i32(spec.cfg.steps);
  w.u8(spec.cfg.random_start ? 1 : 0);
  w.u64(spec.cfg.seed);
  w.f32(spec.cfg.momentum);
  w.f32(spec.c);
  w.f32(spec.k);
  w.i32(spec.target);
}

AttackSpec read_spec(WireReader& r) {
  AttackSpec spec;
  spec.cfg.epsilon = r.f32();
  spec.cfg.alpha = r.f32();
  spec.cfg.steps = r.i32();
  spec.cfg.random_start = r.u8() != 0;
  spec.cfg.seed = r.u64();
  spec.cfg.momentum = r.f32();
  spec.c = r.f32();
  spec.k = r.f32();
  spec.target = r.i32();
  return spec;
}

void write_batch(WireWriter& w, const Tensor& images,
                 const std::vector<int>& labels) {
  DIVA_CHECK(images.rank() == 4, "wire batches must be NCHW, got rank "
                                     << images.rank());
  DIVA_CHECK(static_cast<std::int64_t>(labels.size()) == images.dim(0),
             "labels size " << labels.size() << " != batch " << images.dim(0));
  for (std::size_t d = 0; d < 4; ++d) w.i64(images.dim(d));
  for (const int label : labels) w.i32(label);
  w.floats(images.raw(), static_cast<std::size_t>(images.numel()));
}

void read_batch(WireReader& r, Tensor* images, std::vector<int>* labels) {
  std::int64_t dims[4];
  for (auto& d : dims) {
    d = r.i64();
    DIVA_CHECK(d > 0 && d <= (1 << 24), "implausible wire tensor dim " << d);
  }
  const std::int64_t n = dims[0];
  labels->clear();
  labels->reserve(static_cast<std::size_t>(n));
  for (std::int64_t i = 0; i < n; ++i) labels->push_back(r.i32());
  *images = Tensor(Shape{dims[0], dims[1], dims[2], dims[3]});
  r.floats(images->raw(), static_cast<std::size_t>(images->numel()));
}

void write_verdicts(WireWriter& w, const std::vector<SampleVerdict>& vs) {
  w.u64(vs.size());
  for (const SampleVerdict& v : vs) {
    w.u8(static_cast<std::uint8_t>((v.fooled ? 1 : 0) |
                                   (v.preserved ? 2 : 0) |
                                   (v.evaded ? 4 : 0)));
  }
}

std::vector<SampleVerdict> read_verdicts(WireReader& r) {
  const std::uint64_t n = r.u64();
  DIVA_CHECK(n <= (1ULL << 24), "implausible verdict count " << n);
  std::vector<SampleVerdict> vs(static_cast<std::size_t>(n));
  for (auto& v : vs) {
    const std::uint8_t bits = r.u8();
    v.fooled = (bits & 1) != 0;
    v.preserved = (bits & 2) != 0;
    v.evaded = (bits & 4) != 0;
  }
  return vs;
}

void write_job(WireWriter& w, const WireJob& job) {
  w.u64(job.ticket);
  w.str(job.attack);
  w.u8(static_cast<std::uint8_t>(job.original));
  w.u8(static_cast<std::uint8_t>(job.adapted));
  write_spec(w, job.spec);
  w.i64(job.first_sample);
  write_batch(w, job.images, job.labels);
}

scenario::OriginalKind read_original_kind(WireReader& r) {
  const std::uint8_t raw = r.u8();
  DIVA_CHECK(raw <= static_cast<std::uint8_t>(
                        scenario::OriginalKind::kSurrogate),
             "bad original-kind byte " << static_cast<int>(raw));
  return static_cast<scenario::OriginalKind>(raw);
}

scenario::AdaptedKind read_adapted_kind(WireReader& r) {
  const std::uint8_t raw = r.u8();
  DIVA_CHECK(raw <= static_cast<std::uint8_t>(
                        scenario::AdaptedKind::kInt8EarlyExit),
             "bad adapted-kind byte " << static_cast<int>(raw));
  return static_cast<scenario::AdaptedKind>(raw);
}

WireJob read_job(WireReader& r) {
  WireJob job;
  job.ticket = r.u64();
  job.attack = r.str();
  job.original = read_original_kind(r);
  job.adapted = read_adapted_kind(r);
  job.spec = read_spec(r);
  job.first_sample = r.i64();
  read_batch(r, &job.images, &job.labels);
  return job;
}

}  // namespace

// ---------------------------------------------------------------------------
// WireWriter / WireReader
// ---------------------------------------------------------------------------

void WireWriter::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void WireWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void WireWriter::f32(float v) {
  std::uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u32(bits);
}

void WireWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void WireWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::floats(const float* data, std::size_t count) {
  const std::size_t old = buf_.size();
  buf_.resize(old + count * sizeof(float));
  std::memcpy(buf_.data() + old, data, count * sizeof(float));
}

const std::uint8_t* WireReader::need(std::size_t n) {
  DIVA_CHECK(off_ + n <= size_, "truncated frame payload: need "
                                    << n << " bytes at offset " << off_
                                    << " of " << size_);
  const std::uint8_t* at = p_ + off_;
  off_ += n;
  return at;
}

std::uint8_t WireReader::u8() { return *need(1); }

std::uint16_t WireReader::u16() {
  const std::uint8_t* b = need(2);
  return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t WireReader::u32() {
  const std::uint8_t* b = need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
  return v;
}

std::uint64_t WireReader::u64() {
  const std::uint8_t* b = need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
  return v;
}

float WireReader::f32() {
  const std::uint32_t bits = u32();
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

double WireReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string WireReader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* b = need(n);
  return std::string(reinterpret_cast<const char*>(b), n);
}

void WireReader::floats(float* dst, std::size_t count) {
  const std::uint8_t* b = need(count * sizeof(float));
  std::memcpy(dst, b, count * sizeof(float));
}

void WireReader::expect_done() const {
  DIVA_CHECK(off_ == size_, "frame payload has " << (size_ - off_)
                                                 << " trailing bytes");
}

// ---------------------------------------------------------------------------
// Message codecs
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_attack_request(const AttackRequest& req) {
  WireWriter w;
  w.u64(req.id);
  w.str(req.attack);
  w.u8(static_cast<std::uint8_t>(req.original));
  w.u8(static_cast<std::uint8_t>(req.adapted));
  write_spec(w, req.spec);
  write_batch(w, req.images, req.labels);
  return finish_frame(MsgType::kAttackRequest, std::move(w));
}

AttackRequest decode_attack_request(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  AttackRequest req;
  req.id = r.u64();
  req.attack = r.str();
  req.original = read_original_kind(r);
  req.adapted = read_adapted_kind(r);
  req.spec = read_spec(r);
  read_batch(r, &req.images, &req.labels);
  r.expect_done();
  return req;
}

std::vector<std::uint8_t> encode_result_chunk(const ResultChunk& chunk) {
  DIVA_CHECK(chunk.adv.rank() == 4 &&
                 chunk.adv.dim(0) == chunk.hi - chunk.lo &&
                 static_cast<std::int64_t>(chunk.verdicts.size()) ==
                     chunk.hi - chunk.lo,
             "result chunk shape mismatch");
  WireWriter w;
  w.u64(chunk.id);
  w.i64(chunk.lo);
  w.i64(chunk.hi);
  w.f64(chunk.seconds);
  w.u32(chunk.worker);
  write_verdicts(w, chunk.verdicts);
  for (std::size_t d = 0; d < 4; ++d) w.i64(chunk.adv.dim(d));
  w.floats(chunk.adv.raw(), static_cast<std::size_t>(chunk.adv.numel()));
  return finish_frame(MsgType::kResultChunk, std::move(w));
}

ResultChunk decode_result_chunk(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  ResultChunk chunk;
  chunk.id = r.u64();
  chunk.lo = r.i64();
  chunk.hi = r.i64();
  chunk.seconds = r.f64();
  chunk.worker = r.u32();
  chunk.verdicts = read_verdicts(r);
  std::int64_t dims[4];
  for (auto& d : dims) {
    d = r.i64();
    DIVA_CHECK(d > 0 && d <= (1 << 24), "implausible wire tensor dim " << d);
  }
  chunk.adv = Tensor(Shape{dims[0], dims[1], dims[2], dims[3]});
  r.floats(chunk.adv.raw(), static_cast<std::size_t>(chunk.adv.numel()));
  r.expect_done();
  DIVA_CHECK(chunk.hi > chunk.lo && chunk.adv.dim(0) == chunk.hi - chunk.lo &&
                 static_cast<std::int64_t>(chunk.verdicts.size()) ==
                     chunk.hi - chunk.lo,
             "result chunk range/payload mismatch");
  return chunk;
}

std::vector<std::uint8_t> encode_request_done(const RequestDone& done) {
  WireWriter w;
  w.u64(done.id);
  w.i64(done.total);
  w.f64(done.seconds);
  return finish_frame(MsgType::kRequestDone, std::move(w));
}

RequestDone decode_request_done(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  RequestDone done;
  done.id = r.u64();
  done.total = r.i64();
  done.seconds = r.f64();
  r.expect_done();
  return done;
}

std::vector<std::uint8_t> encode_error(const ErrorReply& err) {
  WireWriter w;
  w.u64(err.id);
  w.str(err.message);
  return finish_frame(MsgType::kError, std::move(w));
}

ErrorReply decode_error(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  ErrorReply err;
  err.id = r.u64();
  err.message = r.str();
  r.expect_done();
  return err;
}

std::vector<std::uint8_t> encode_job_batch(const std::vector<WireJob>& jobs) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(jobs.size()));
  for (const WireJob& job : jobs) write_job(w, job);
  return finish_frame(MsgType::kJobBatch, std::move(w));
}

std::vector<WireJob> decode_job_batch(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  const std::uint32_t n = r.u32();
  DIVA_CHECK(n <= (1u << 20), "implausible job-batch size " << n);
  std::vector<WireJob> jobs;
  jobs.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) jobs.push_back(read_job(r));
  r.expect_done();
  return jobs;
}

std::vector<std::uint8_t> encode_job_result(const JobResult& result) {
  WireWriter w;
  w.u64(result.ticket);
  w.i64(result.first_sample);
  w.f64(result.seconds);
  w.str(result.error);
  if (result.error.empty()) {
    write_verdicts(w, result.verdicts);
    for (std::size_t d = 0; d < 4; ++d) w.i64(result.adv.dim(d));
    w.floats(result.adv.raw(), static_cast<std::size_t>(result.adv.numel()));
  }
  return finish_frame(MsgType::kJobResult, std::move(w));
}

JobResult decode_job_result(const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  JobResult result;
  result.ticket = r.u64();
  result.first_sample = r.i64();
  result.seconds = r.f64();
  result.error = r.str();
  if (result.error.empty()) {
    result.verdicts = read_verdicts(r);
    std::int64_t dims[4];
    for (auto& d : dims) {
      d = r.i64();
      DIVA_CHECK(d > 0 && d <= (1 << 24), "implausible wire tensor dim " << d);
    }
    result.adv = Tensor(Shape{dims[0], dims[1], dims[2], dims[3]});
    r.floats(result.adv.raw(), static_cast<std::size_t>(result.adv.numel()));
  }
  r.expect_done();
  return result;
}

std::vector<std::uint8_t> encode_shutdown() {
  return finish_frame(MsgType::kShutdown, WireWriter{});
}

std::vector<std::uint8_t> encode_stats_request() {
  return finish_frame(MsgType::kStatsRequest, WireWriter{});
}

std::vector<std::uint8_t> encode_stats_reply(
    const telemetry::Snapshot& snap) {
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, value] : snap.counters) {
    w.str(name);
    w.u64(value);
  }
  w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    w.str(name);
    w.u64(h.count);
    w.u64(h.sum);
    // Sparse buckets: [index, count] pairs for the non-zero ones.
    std::uint32_t nonzero = 0;
    for (const std::uint64_t b : h.buckets) nonzero += b != 0 ? 1 : 0;
    w.u32(nonzero);
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) continue;
      w.u16(static_cast<std::uint16_t>(b));
      w.u64(h.buckets[b]);
    }
  }
  return finish_frame(MsgType::kStatsReply, std::move(w));
}

telemetry::Snapshot decode_stats_reply(
    const std::vector<std::uint8_t>& payload) {
  WireReader r(payload);
  telemetry::Snapshot snap;
  const std::uint32_t n_counters = r.u32();
  DIVA_CHECK(n_counters <= (1u << 20), "implausible counter count "
                                           << n_counters);
  for (std::uint32_t i = 0; i < n_counters; ++i) {
    const std::string name = r.str();
    snap.counters[name] = r.u64();
  }
  const std::uint32_t n_hists = r.u32();
  DIVA_CHECK(n_hists <= (1u << 20), "implausible histogram count "
                                        << n_hists);
  for (std::uint32_t i = 0; i < n_hists; ++i) {
    const std::string name = r.str();
    telemetry::HistogramData h;
    h.buckets.assign(telemetry::kHistBuckets, 0);
    h.count = r.u64();
    h.sum = r.u64();
    const std::uint32_t nonzero = r.u32();
    DIVA_CHECK(nonzero <= static_cast<std::uint32_t>(telemetry::kHistBuckets),
               "implausible bucket count " << nonzero);
    for (std::uint32_t b = 0; b < nonzero; ++b) {
      const std::uint16_t idx = r.u16();
      DIVA_CHECK(idx < telemetry::kHistBuckets, "bucket index out of range "
                                                    << idx);
      h.buckets[idx] = r.u64();
    }
    snap.histograms[name] = std::move(h);
  }
  r.expect_done();
  return snap;
}

MsgType split_frame(const std::vector<std::uint8_t>& frame,
                    std::vector<std::uint8_t>* payload) {
  DIVA_CHECK(frame.size() >= kHeaderBytes, "frame shorter than its header");
  WireReader r(frame.data(), kHeaderBytes);
  DIVA_CHECK(r.u32() == kMagic, "bad frame magic");
  const std::uint16_t version = r.u16();
  DIVA_CHECK(version == kProtocolVersion,
             "protocol version mismatch: got " << version << ", want "
                                               << kProtocolVersion);
  const std::uint16_t raw_type = r.u16();
  DIVA_CHECK(raw_type >= 1 &&
                 raw_type <= static_cast<std::uint16_t>(MsgType::kStatsReply),
             "unknown frame type " << raw_type);
  const std::uint64_t len = r.u64();
  DIVA_CHECK(len <= kMaxPayload, "frame payload too large: " << len);
  DIVA_CHECK(frame.size() == kHeaderBytes + len,
             "frame length mismatch: header says " << len << ", have "
                                                   << frame.size() -
                                                          kHeaderBytes);
  payload->assign(frame.begin() + kHeaderBytes, frame.end());
  return static_cast<MsgType>(raw_type);
}

// ---------------------------------------------------------------------------
// Frame IO
// ---------------------------------------------------------------------------

namespace {

/// Full read; returns bytes read (short only at EOF). Throws on errors.
std::size_t read_fully(int fd, std::uint8_t* dst, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = ::read(fd, dst + got, n - got);
    if (r == 0) break;  // EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      DIVA_FAIL("socket read failed: " << std::strerror(errno));
    }
    got += static_cast<std::size_t>(r);
  }
  return got;
}

}  // namespace

void write_frame(int fd, const std::vector<std::uint8_t>& frame) {
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a dead peer surfaces as EPIPE instead of SIGPIPE.
    const ssize_t r = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      DIVA_FAIL("socket write failed: " << std::strerror(errno));
    }
    sent += static_cast<std::size_t>(r);
  }
}

bool read_frame(int fd, MsgType* type, std::vector<std::uint8_t>* payload) {
  std::uint8_t header[kHeaderBytes];
  const std::size_t got = read_fully(fd, header, kHeaderBytes);
  if (got == 0) return false;  // clean EOF between frames
  DIVA_CHECK(got == kHeaderBytes, "EOF inside a frame header");
  WireReader r(header, kHeaderBytes);
  DIVA_CHECK(r.u32() == kMagic, "bad frame magic");
  const std::uint16_t version = r.u16();
  DIVA_CHECK(version == kProtocolVersion,
             "protocol version mismatch: got " << version << ", want "
                                               << kProtocolVersion);
  const std::uint16_t raw_type = r.u16();
  DIVA_CHECK(raw_type >= 1 &&
                 raw_type <= static_cast<std::uint16_t>(MsgType::kStatsReply),
             "unknown frame type " << raw_type);
  const std::uint64_t len = r.u64();
  DIVA_CHECK(len <= kMaxPayload, "frame payload too large: " << len);
  payload->resize(static_cast<std::size_t>(len));
  if (len > 0) {
    DIVA_CHECK(read_fully(fd, payload->data(), payload->size()) ==
                   payload->size(),
               "EOF inside a frame payload");
  }
  *type = static_cast<MsgType>(raw_type);
  return true;
}

}  // namespace diva::serve
