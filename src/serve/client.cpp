#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "runtime/check.h"

namespace diva::serve {

AttackClient::AttackClient(const std::string& socket_path) {
  DIVA_CHECK(!socket_path.empty(), "socket path is required");
  DIVA_CHECK(socket_path.size() < sizeof(sockaddr_un::sun_path),
             "socket path too long: " << socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DIVA_CHECK(fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, socket_path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    DIVA_FAIL("connect(" << socket_path
                         << ") failed: " << std::strerror(err));
  }
}

AttackClient::~AttackClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::uint64_t AttackClient::submit(AttackRequest req) {
  DIVA_CHECK(req.images.rank() == 4 && req.images.dim(0) > 0,
             "request batch must be a non-empty NCHW tensor");
  if (req.id == 0) req.id = next_id_++;
  DIVA_CHECK(inflight_.find(req.id) == inflight_.end(),
             "correlation id " << req.id << " is already in flight");
  next_id_ = std::max(next_id_, req.id + 1);

  InFlight fl;
  fl.total = req.images.dim(0);
  fl.sample_shape =
      Shape{req.images.dim(1), req.images.dim(2), req.images.dim(3)};
  const std::uint64_t id = req.id;
  write_frame(fd_, encode_attack_request(req));
  inflight_.emplace(id, std::move(fl));
  return id;
}

void AttackClient::pump() {
  MsgType type;
  std::vector<std::uint8_t> payload;
  DIVA_CHECK(read_frame(fd_, &type, &payload),
             "server closed the connection with requests in flight");
  switch (type) {
    case MsgType::kResultChunk: {
      ResultChunk chunk = decode_result_chunk(payload);
      const auto it = inflight_.find(chunk.id);
      DIVA_CHECK(it != inflight_.end(),
                 "result chunk for unknown request id " << chunk.id);
      InFlight& fl = it->second;
      DIVA_CHECK(chunk.lo >= 0 && chunk.hi <= fl.total && chunk.lo < chunk.hi,
                 "chunk range [" << chunk.lo << ", " << chunk.hi
                                 << ") outside batch of " << fl.total);
      DIVA_CHECK(chunk.adv.dim(0) == chunk.hi - chunk.lo &&
                     static_cast<std::int64_t>(chunk.verdicts.size()) ==
                         chunk.hi - chunk.lo,
                 "chunk payload size mismatch");
      if (fl.result.adv.empty()) {
        fl.result.adv = Tensor(Shape{fl.total, fl.sample_shape[0],
                                     fl.sample_shape[1], fl.sample_shape[2]});
        fl.result.verdicts.resize(static_cast<std::size_t>(fl.total));
      }
      const std::int64_t per = fl.result.adv.numel() / fl.total;
      std::memcpy(fl.result.adv.raw() + chunk.lo * per, chunk.adv.raw(),
                  sizeof(float) *
                      static_cast<std::size_t>((chunk.hi - chunk.lo) * per));
      std::copy(chunk.verdicts.begin(), chunk.verdicts.end(),
                fl.result.verdicts.begin() +
                    static_cast<std::ptrdiff_t>(chunk.lo));
      fl.received += chunk.hi - chunk.lo;
      fl.result.max_shard_seconds =
          std::max(fl.result.max_shard_seconds, chunk.seconds);
      auto& workers = fl.result.shard_workers;
      if (std::find(workers.begin(), workers.end(), chunk.worker) ==
          workers.end()) {
        workers.push_back(chunk.worker);
      }
      break;
    }
    case MsgType::kRequestDone: {
      RequestDone done = decode_request_done(payload);
      const auto it = inflight_.find(done.id);
      DIVA_CHECK(it != inflight_.end(),
                 "completion for unknown request id " << done.id);
      InFlight& fl = it->second;
      DIVA_CHECK(fl.received == fl.total && done.total == fl.total,
                 "request " << done.id << " completed with " << fl.received
                            << "/" << fl.total << " samples");
      fl.result.server_seconds = done.seconds;
      fl.done = true;
      break;
    }
    case MsgType::kError: {
      ErrorReply err = decode_error(payload);
      // id 0 = connection-level error (malformed frame): fail loudly.
      DIVA_CHECK(err.id != 0, "server error: " << err.message);
      const auto it = inflight_.find(err.id);
      DIVA_CHECK(it != inflight_.end(),
                 "error for unknown request id " << err.id);
      it->second.failed = true;
      it->second.done = true;
      it->second.error = err.message;
      break;
    }
    case MsgType::kStatsReply: {
      last_stats_ = decode_stats_reply(payload);
      stats_pending_ = false;
      break;
    }
    default:
      DIVA_FAIL("unexpected frame type "
                << static_cast<int>(type) << " from server");
  }
}

ServedResult AttackClient::wait(std::uint64_t id) {
  auto it = inflight_.find(id);
  DIVA_CHECK(it != inflight_.end(), "request id " << id << " not in flight");
  while (!it->second.done) {
    pump();
    it = inflight_.find(id);  // pump never erases, but stay defensive
    DIVA_CHECK(it != inflight_.end(), "request id " << id << " vanished");
  }
  InFlight fl = std::move(it->second);
  inflight_.erase(it);
  if (fl.failed) throw Error(fl.error);
  return std::move(fl.result);
}

void AttackClient::request_server_shutdown() {
  write_frame(fd_, encode_shutdown());
}

telemetry::Snapshot AttackClient::stats() {
  write_frame(fd_, encode_stats_request());
  stats_pending_ = true;
  while (stats_pending_) pump();
  return last_stats_;
}

}  // namespace diva::serve
