#include "serve/queue.h"

#include <algorithm>

#include "telemetry/telemetry.h"

namespace diva::serve {

std::vector<ShardJob> make_shard_jobs(
    std::shared_ptr<const AttackRequest> request, std::uint64_t request_key,
    std::int64_t shard_size, std::uint64_t* ticket_counter) {
  DIVA_CHECK(shard_size >= 1, "shard_size must be at least 1");
  DIVA_CHECK(request != nullptr && request->images.rank() == 4,
             "shard jobs need a decoded NCHW request");
  const std::int64_t n = request->images.dim(0);
  const std::int64_t num_shards = (n + shard_size - 1) / shard_size;
  std::vector<ShardJob> jobs;
  jobs.reserve(static_cast<std::size_t>(num_shards));
  for (std::int64_t s = 0; s < num_shards; ++s) {
    ShardJob job;
    job.ticket = (*ticket_counter)++;
    job.request_key = request_key;
    job.request = request;
    job.lo = s * shard_size;
    job.hi = std::min(n, job.lo + shard_size);
    jobs.push_back(std::move(job));
  }
  return jobs;
}

void BatchingQueue::push(std::vector<ShardJob> jobs) {
  if (jobs.empty()) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    for (auto& job : jobs) jobs_.push_back(std::move(job));
    // Depth sampled at every arrival: sustained growth here is the
    // scale-out signal ROADMAP item 2 asks for.
    DIVA_TELEM_RECORD("serve.queue.depth",
                      static_cast<std::uint64_t>(jobs_.size()));
  }
  cv_.notify_all();
}

void BatchingQueue::requeue(std::vector<ShardJob> jobs) {
  if (jobs.empty()) return;
  DIVA_TELEM_COUNT("serve.jobs.requeued",
                   static_cast<std::uint64_t>(jobs.size()));
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Front-insert in reverse so the vector's order is preserved and
    // re-executed work does not wait behind new traffic. Requeue works
    // even on a closed queue: close() promises to drain, and a dying
    // worker's jobs must not be silently dropped mid-drain.
    for (auto it = jobs.rbegin(); it != jobs.rend(); ++it) {
      jobs_.push_front(std::move(*it));
    }
  }
  cv_.notify_all();
}

std::vector<ShardJob> BatchingQueue::pop_batch(const CoalescePolicy& policy) {
  DIVA_CHECK(policy.max_jobs >= 1, "coalesce max_jobs must be at least 1");
  std::vector<ShardJob> batch;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return closed_ || !jobs_.empty(); });
  if (jobs_.empty()) return batch;  // closed and drained

  auto take_available = [&] {
    while (batch.size() < policy.max_jobs && !jobs_.empty()) {
      batch.push_back(std::move(jobs_.front()));
      jobs_.pop_front();
    }
  };
  take_available();

  // Coalescing window: once the first job is in hand, wait (bounded)
  // for more arrivals to fill the batch. Window zero never sleeps, so
  // tests and latency-critical configs stay deterministic.
  if (batch.size() < policy.max_jobs && policy.window.count() > 0 &&
      !closed_) {
    const auto deadline = std::chrono::steady_clock::now() + policy.window;
    while (batch.size() < policy.max_jobs) {
      if (!cv_.wait_until(lock, deadline, [&] {
            return closed_ || !jobs_.empty();
          })) {
        break;  // window elapsed
      }
      if (jobs_.empty()) break;  // closed
      take_available();
    }
  }
  if (!batch.empty()) {
    DIVA_TELEM_RECORD("serve.batch.jobs",
                      static_cast<std::uint64_t>(batch.size()));
    // How full the coalescing window got, in percent of max_jobs — low
    // occupancy at a non-zero window means the window is wasted sleep.
    DIVA_TELEM_RECORD("serve.batch.occupancy_pct",
                      static_cast<std::uint64_t>(batch.size() * 100 /
                                                 policy.max_jobs));
  }
  return batch;
}

void BatchingQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool BatchingQueue::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t BatchingQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

}  // namespace diva::serve
