// Attack-as-a-service wire protocol: framed binary messages shared by
// the client library, the server front-end, and the parent<->worker
// links.
//
// Every message is one frame:
//
//   u32 magic 'DIVA' | u16 version | u16 type | u64 payload bytes | payload
//
// All integers are little-endian; floats travel as raw IEEE-754 bits,
// so a served adversarial example is byte-identical to the tensor the
// worker produced — the cross-process determinism invariant depends on
// the codec never rounding. Payload layouts are documented per message
// struct below; encode_* / decode_* round-trip each one and throw
// diva::Error on malformed input (bad magic, version skew, truncation,
// unknown type), which makes the codec unit-testable without sockets.
//
// Client -> server:  kAttackRequest, kStatsRequest, kShutdown
// Server -> client:  kResultChunk (streamed per shard), kRequestDone,
//                    kError, kStatsReply
// Parent -> worker:  kJobBatch (coalesced shard jobs)
// Worker -> parent:  kJobResult (one per shard job, streamed), then one
//                    kStatsReply trailer per batch (the worker's own
//                    telemetry snapshot; the parent merges these into
//                    what kStatsRequest returns)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "attack/registry.h"
#include "scenario/scenario.h"
#include "telemetry/telemetry.h"
#include "tensor/tensor.h"

namespace diva::serve {

inline constexpr std::uint32_t kMagic = 0x41564944;  // "DIVA" little-endian
inline constexpr std::uint16_t kProtocolVersion = 1;

enum class MsgType : std::uint16_t {
  kAttackRequest = 1,
  kResultChunk = 2,
  kRequestDone = 3,
  kError = 4,
  kJobBatch = 5,
  kJobResult = 6,
  kShutdown = 7,
  kStatsRequest = 8,
  kStatsReply = 9,
};

// ---------------------------------------------------------------------------
// Byte-level reader/writer (little-endian, bounds-checked).
// ---------------------------------------------------------------------------

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f32(float v);
  void f64(double v);
  /// Length-prefixed UTF-8/bytes string.
  void str(const std::string& s);
  /// Raw float block (no length prefix; caller encodes the count).
  void floats(const float* data, std::size_t count);

  const std::vector<std::uint8_t>& bytes() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : p_(data), size_(size) {}
  explicit WireReader(const std::vector<std::uint8_t>& buf)
      : WireReader(buf.data(), buf.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  float f32();
  double f64();
  std::string str();
  void floats(float* dst, std::size_t count);

  std::size_t remaining() const { return size_ - off_; }
  /// Throws unless the payload was consumed exactly.
  void expect_done() const;

 private:
  const std::uint8_t* need(std::size_t n);

  const std::uint8_t* p_;
  std::size_t size_;
  std::size_t off_ = 0;
};

// ---------------------------------------------------------------------------
// Messages.
// ---------------------------------------------------------------------------

/// One attack request: which registry cell to run, the attack budget,
/// and the sample payload. `id` is the client's correlation id — every
/// response frame for this request echoes it, so a client may keep any
/// number of requests in flight on one connection (ids must be unique
/// among that connection's unfinished requests).
struct AttackRequest {
  std::uint64_t id = 0;
  std::string attack;  // registry kind, e.g. "diva"
  scenario::OriginalKind original = scenario::OriginalKind::kNone;
  scenario::AdaptedKind adapted = scenario::AdaptedKind::kQat;
  AttackSpec spec;          // cfg + objective hyperparameters
  Tensor images;            // [N, C, H, W], values in [0, 1]
  std::vector<int> labels;  // size N
};

/// Per-sample outcome against the server's model pool: `fooled` — the
/// deployed adapted artifact misclassified the adversarial image;
/// `preserved` — the true original still classifies it correctly;
/// `evaded` — both (the paper's §5.1 joint criterion).
struct SampleVerdict {
  bool fooled = false;
  bool preserved = false;
  bool evaded = false;
};

/// One shard of a request's results, streamed as soon as the shard
/// finishes: samples [lo, hi) of the request, in request order.
struct ResultChunk {
  std::uint64_t id = 0;  // client correlation id
  std::int64_t lo = 0;
  std::int64_t hi = 0;
  Tensor adv;  // [hi-lo, C, H, W]
  std::vector<SampleVerdict> verdicts;
  double seconds = 0.0;   // worker attack time for this shard
  std::uint32_t worker = 0;  // which worker process ran it
};

/// Terminal success frame: all `total` samples of the request have been
/// streamed. `seconds` is the server-side latency from request decode
/// to last shard completion.
struct RequestDone {
  std::uint64_t id = 0;
  std::int64_t total = 0;
  double seconds = 0.0;
};

/// Terminal failure frame. For invalid requests the message carries the
/// registry's own validation text (validate_attack_targets /
/// attack_traits error shapes) verbatim.
struct ErrorReply {
  std::uint64_t id = 0;
  std::string message;
};

/// One shard job on the parent->worker link. `first_sample` is the
/// sample index of images row 0 *within its request* — workers pass it
/// straight to Attack::perturb_indexed, which is what keys per-sample
/// RNG streams and makes the served result bit-identical to a
/// sequential AttackEngine run of the whole request.
struct WireJob {
  std::uint64_t ticket = 0;  // server-internal job id
  std::string attack;
  scenario::OriginalKind original = scenario::OriginalKind::kNone;
  scenario::AdaptedKind adapted = scenario::AdaptedKind::kQat;
  AttackSpec spec;
  std::int64_t first_sample = 0;
  Tensor images;
  std::vector<int> labels;
};

/// Worker's answer to one WireJob. An empty `error` means success; a
/// non-empty one fails the whole request (adv/verdicts are then empty).
struct JobResult {
  std::uint64_t ticket = 0;
  std::int64_t first_sample = 0;
  Tensor adv;
  std::vector<SampleVerdict> verdicts;
  double seconds = 0.0;
  std::string error;
};

// ---------------------------------------------------------------------------
// Codec. encode_* produce a complete frame (header + payload);
// decode_* take the payload of a frame whose type already matched.
// ---------------------------------------------------------------------------

std::vector<std::uint8_t> encode_attack_request(const AttackRequest& req);
std::vector<std::uint8_t> encode_result_chunk(const ResultChunk& chunk);
std::vector<std::uint8_t> encode_request_done(const RequestDone& done);
std::vector<std::uint8_t> encode_error(const ErrorReply& err);
std::vector<std::uint8_t> encode_job_batch(const std::vector<WireJob>& jobs);
std::vector<std::uint8_t> encode_job_result(const JobResult& result);
std::vector<std::uint8_t> encode_shutdown();
/// kStatsRequest carries no payload.
std::vector<std::uint8_t> encode_stats_request();
/// Telemetry snapshot as pure integers (counter values, histogram
/// bucket counts/count/sum), so decode(encode(s)) == s bit-exactly.
std::vector<std::uint8_t> encode_stats_reply(const telemetry::Snapshot& snap);

AttackRequest decode_attack_request(const std::vector<std::uint8_t>& payload);
ResultChunk decode_result_chunk(const std::vector<std::uint8_t>& payload);
RequestDone decode_request_done(const std::vector<std::uint8_t>& payload);
ErrorReply decode_error(const std::vector<std::uint8_t>& payload);
std::vector<WireJob> decode_job_batch(const std::vector<std::uint8_t>& payload);
JobResult decode_job_result(const std::vector<std::uint8_t>& payload);
telemetry::Snapshot decode_stats_reply(
    const std::vector<std::uint8_t>& payload);

/// Splits a complete frame into (type, payload), validating magic,
/// version, and length. Used by the frame IO below and by codec tests.
MsgType split_frame(const std::vector<std::uint8_t>& frame,
                    std::vector<std::uint8_t>* payload);

// ---------------------------------------------------------------------------
// Blocking frame IO over a stream socket (or any byte-stream fd).
// ---------------------------------------------------------------------------

/// Writes one complete frame; throws diva::Error on IO failure
/// (EPIPE included — callers treat it as peer death).
void write_frame(int fd, const std::vector<std::uint8_t>& frame);

/// Reads one frame. Returns false on clean EOF at a frame boundary;
/// throws on IO errors, malformed headers, or mid-frame EOF.
bool read_frame(int fd, MsgType* type, std::vector<std::uint8_t>* payload);

}  // namespace diva::serve
