// Async batching queue: the coalescing heart of the attack server.
//
// Client requests are split into engine-geometry shard jobs (the same
// fixed [s*shard, min(n, (s+1)*shard)) boundaries AttackEngine uses, so
// sharding stays invisible to the result). Dispatcher threads pop
// *batches* of jobs: pop_batch blocks for the first job, then keeps
// coalescing arrivals — possibly from many concurrent requests — until
// either `max_jobs` are collected or the coalescing window elapses.
// A larger window trades request latency for fuller worker batches.
//
// Failure path: jobs that were in flight on a worker that died are
// pushed back at the *front* of the queue (requeue), so re-execution
// does not wait behind newly arrived traffic.
//
// The queue is deliberately socket-free and time-bounded-deterministic
// (window zero never waits), which is what makes it unit-testable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "serve/protocol.h"

namespace diva::serve {

/// One schedulable unit: samples [lo, hi) of a request. The job shares
/// the request payload instead of copying it; slices are materialized
/// only when a job is encoded onto a worker link.
struct ShardJob {
  std::uint64_t ticket = 0;       // unique job id (requeue keeps it)
  std::uint64_t request_key = 0;  // server-internal request handle
  std::shared_ptr<const AttackRequest> request;
  std::int64_t lo = 0;
  std::int64_t hi = 0;
};

/// How pop_batch coalesces.
struct CoalescePolicy {
  std::size_t max_jobs = 8;
  std::chrono::microseconds window{2000};
};

/// Splits a request into shard jobs with AttackEngine's shard geometry.
/// Tickets are drawn from *ticket_counter (incremented per job).
std::vector<ShardJob> make_shard_jobs(
    std::shared_ptr<const AttackRequest> request, std::uint64_t request_key,
    std::int64_t shard_size, std::uint64_t* ticket_counter);

class BatchingQueue {
 public:
  /// Appends new jobs (FIFO). No-op on an empty vector.
  void push(std::vector<ShardJob> jobs);

  /// Pushes failed jobs back at the front, preserving their order.
  void requeue(std::vector<ShardJob> jobs);

  /// Blocks until at least one job is available (or the queue closes),
  /// then coalesces up to policy.max_jobs, waiting at most
  /// policy.window for stragglers once the first job is in hand.
  /// Returns an empty batch only when the queue is closed and drained.
  std::vector<ShardJob> pop_batch(const CoalescePolicy& policy);

  /// Closes the queue: push becomes a no-op, pop_batch drains what is
  /// left and then returns empty batches.
  void close();

  bool closed() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<ShardJob> jobs_;
  bool closed_ = false;
};

}  // namespace diva::serve
