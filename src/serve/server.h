// AttackServer: sharded multi-process attack-as-a-service.
//
// The paper's threat model is an attacker probing *deployed* artifacts
// at scale; this is the deployed side of that story as a long-running
// service. Topology:
//
//   clients --AF_UNIX socket--> front-end (accept + per-connection
//   reader threads) --> BatchingQueue (requests split into
//   engine-geometry shard jobs, coalesced into batches) --> one
//   dispatcher thread per worker --socketpair--> N forked worker
//   processes, each owning its *own copies* of the model pool
//   (inherited at fork), its own pinned thread pool, and its own
//   thread-local workspace arenas. Results stream back per shard with
//   the client's correlation id.
//
// Determinism across the process boundary: a shard job carries
// `first_sample` = its offset within its request, and workers run
// Attack::perturb_indexed exactly like AttackEngine shards do — so the
// bytes a client assembles are bit-identical to a sequential
// AttackEngine (or plain Attack::perturb) run of the same request,
// regardless of worker count, coalescing window, or which worker
// happened to run which shard.
//
// Failure paths: invalid requests are rejected at the front-end with
// the registry's own validation text (validate_attack_targets /
// attack_traits error shapes) and never reach a worker; when a worker
// process dies, its in-flight jobs are requeued at the front of the
// queue and the worker is respawned.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attack/grad_source.h"
#include "scenario/scenario.h"
#include "serve/protocol.h"
#include "serve/queue.h"

namespace diva::serve {

struct ServeConfig {
  /// AF_UNIX socket path the front-end listens on (required; unlinked
  /// on bind and on stop).
  std::string socket_path;
  /// Worker processes. Each owns its own model copies (fork) — this is
  /// the sharding axis that scales past the mutex-serialized backprop
  /// limit of a single process.
  unsigned workers = 2;
  /// Threads in each worker's pool (shards of one batch run in
  /// parallel, exactly like AttackEngine).
  unsigned worker_threads = 2;
  /// Samples per shard job; must match the AttackEngine shard_size a
  /// caller compares against (shard geometry is determinism-neutral,
  /// but throughput granularity is not).
  std::int64_t shard_size = 8;
  /// Max coalesced jobs per worker dispatch.
  std::size_t max_batch_jobs = 8;
  /// How long the queue waits for stragglers after the first job of a
  /// batch arrives. Zero never waits (lowest latency, smallest batches).
  std::chrono::microseconds coalesce_window{2000};
  /// Probe configuration for int8-fd request columns.
  FdConfig fd;
  /// Pin worker w's process to cores [w*worker_threads, (w+1)*worker_threads).
  bool pin_workers = false;
  int listen_backlog = 64;
  /// Invoked (from a connection thread) when a client sends kShutdown.
  /// The callback must not call stop() directly — signal the thread
  /// that owns the server instead (the daemon raises SIGTERM at itself).
  std::function<void()> on_shutdown_request;
};

class AttackServer {
 public:
  /// The pool is borrowed; models must outlive the server. Workers
  /// inherit copy-on-write copies at fork, so the parent's models are
  /// never touched by serving.
  AttackServer(scenario::ModelPool pool, ServeConfig cfg);
  ~AttackServer();

  AttackServer(const AttackServer&) = delete;
  AttackServer& operator=(const AttackServer&) = delete;

  /// Binds the socket, forks the workers (before any server thread
  /// exists), then starts dispatcher/accept threads. Throws on setup
  /// failure.
  void start();

  /// Graceful shutdown: stops accepting, drains queued jobs through the
  /// workers, completes in-flight requests, reaps workers. Idempotent.
  void stop();

  bool running() const { return running_.load(); }

  /// Live worker process ids (test hook for the kill/requeue path).
  std::vector<pid_t> worker_pids() const;

  /// Connections the front-end currently tracks, dead or alive (test
  /// hook for the dead-connection reaper: churn must not accumulate).
  std::size_t live_conns() const;

  /// Request validation exactly as the front-end applies it: "" when
  /// servable, otherwise the rejection message a client would receive
  /// (registry error shapes for unknown kinds / trait mismatches,
  /// scenario pool diagnostics for missing models).
  std::string validate_request(const AttackRequest& req) const;

  /// Merged telemetry: the parent's own snapshot plus every worker's
  /// latest per-batch snapshot (workers append a kStatsReply trailer to
  /// each job batch) plus the final snapshots of workers that have died
  /// or been reaped — so counters survive a SIGKILLed worker. Worker
  /// numbers are at most one batch stale; this is what kStatsRequest
  /// answers with.
  telemetry::Snapshot stats_snapshot() const;

  const ServeConfig& config() const { return cfg_; }
  const scenario::ModelPool& pool() const { return pool_; }

 private:
  struct ClientConn {
    int fd = -1;
    std::mutex write_mu;
    std::atomic<bool> dead{false};
    std::thread reader;
  };

  struct PendingRequest {
    std::shared_ptr<ClientConn> conn;
    std::shared_ptr<const AttackRequest> request;
    std::int64_t remaining_shards = 0;
    bool failed = false;
    std::chrono::steady_clock::time_point t0;
  };

  struct WorkerLink {
    pid_t pid = -1;
    int fd = -1;
    bool alive = false;
  };

  /// Per worker slot: `latest` is the live worker's most recent
  /// per-batch snapshot (cumulative since its fork); `retired` is the
  /// merged total of every previous worker that died in this slot.
  struct WorkerStats {
    telemetry::Snapshot retired;
    telemetry::Snapshot latest;
  };

  void accept_loop();
  /// Joins reader threads and closes fds of connections whose client
  /// has gone away (runs on the accept thread between accepts, so a
  /// connect/disconnect churn can't leak threads until stop()).
  void reap_dead_conns();
  void client_loop(const std::shared_ptr<ClientConn>& conn);
  void handle_request(const std::shared_ptr<ClientConn>& conn,
                      AttackRequest&& req);
  void dispatch_loop(std::size_t w);
  bool spawn_worker(std::size_t w);
  void reap_worker(std::size_t w);
  void deliver_result(const ShardJob& job, JobResult&& result,
                      std::uint32_t worker_index);
  void send_frame_to(const std::shared_ptr<ClientConn>& conn,
                     const std::vector<std::uint8_t>& frame);

  scenario::ModelPool pool_;
  ServeConfig cfg_;

  std::atomic<bool> running_{false};
  bool started_ = false;
  int listen_fd_ = -1;

  BatchingQueue queue_;
  std::atomic<std::uint64_t> next_ticket_{1};
  std::atomic<std::uint64_t> next_request_key_{1};

  mutable std::mutex workers_mu_;
  std::vector<WorkerLink> workers_;
  std::vector<std::thread> dispatchers_;

  mutable std::mutex stats_mu_;
  std::vector<WorkerStats> worker_stats_;

  std::mutex pending_mu_;
  std::map<std::uint64_t, PendingRequest> pending_;

  mutable std::mutex conns_mu_;
  std::vector<std::shared_ptr<ClientConn>> conns_;
  std::thread accept_thread_;
};

/// Worker-process entry point (exposed for white-box reuse by tests):
/// serves kJobBatch frames on `fd` until EOF/kShutdown, then _exit(0).
[[noreturn]] void run_worker(int fd, const scenario::ModelPool& pool,
                             const ServeConfig& cfg, unsigned index);

}  // namespace diva::serve
