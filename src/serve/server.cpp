#include "serve/server.h"

#include <sched.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <utility>

#include "runtime/check.h"
#include "runtime/thread_pool.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "tensor/tensor_ops.h"

namespace diva::serve {

namespace {

/// Stable fingerprint of everything that selects a worker-side Attack
/// instance. Float fields are keyed by their bit patterns so distinct
/// configs never collide.
std::string attack_cache_key(const WireJob& job) {
  auto bits32 = [](float v) {
    std::uint32_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
  };
  char buf[256];
  std::snprintf(buf, sizeof(buf), "|%d|%d|%08x|%08x|%d|%d|%llx|%08x|%08x|%08x|%d",
                static_cast<int>(job.original), static_cast<int>(job.adapted),
                bits32(job.spec.cfg.epsilon), bits32(job.spec.cfg.alpha),
                job.spec.cfg.steps, job.spec.cfg.random_start ? 1 : 0,
                static_cast<unsigned long long>(job.spec.cfg.seed),
                bits32(job.spec.cfg.momentum), bits32(job.spec.c),
                bits32(job.spec.k), job.spec.target);
  return job.attack + buf;
}

/// Contiguous [lo, hi) slice of a request batch (rows are contiguous
/// in NCHW, so this is one memcpy).
void slice_batch(const AttackRequest& req, std::int64_t lo, std::int64_t hi,
                 Tensor* images, std::vector<int>* labels) {
  const std::int64_t per = req.images.numel() / req.images.dim(0);
  Shape shape = req.images.shape();
  *images = Tensor(Shape{hi - lo, shape[1], shape[2], shape[3]});
  std::memcpy(images->raw(), req.images.raw() + lo * per,
              sizeof(float) * static_cast<std::size_t>((hi - lo) * per));
  labels->assign(req.labels.begin() + static_cast<std::ptrdiff_t>(lo),
                 req.labels.begin() + static_cast<std::ptrdiff_t>(hi));
}

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Worker process
// ---------------------------------------------------------------------------

namespace {

struct WorkerJobState {
  WireJob job;
  Tensor adv;
  double seconds = 0.0;
  std::string error;
};

/// Runs `fn(i)` for every job index across the worker's pool, blocking
/// until all complete — the engine's shard-fanout shape.
void fan_out(ThreadPool* pool, std::size_t count,
             const std::function<void(std::size_t)>& fn) {
  if (pool == nullptr || count <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> remaining(count);
  std::mutex mu;
  std::condition_variable cv;
  for (std::size_t i = 0; i < count; ++i) {
    pool->submit([&, i] {
      fn(i);  // fn captures its own errors; never throws
      if (remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return remaining.load() == 0; });
}

void pin_to_cores(unsigned index, unsigned threads) {
  const long ncpu = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncpu <= 0) return;
  cpu_set_t set;
  CPU_ZERO(&set);
  for (unsigned t = 0; t < std::max(1u, threads); ++t) {
    CPU_SET((index * std::max(1u, threads) + t) % static_cast<unsigned>(ncpu),
            &set);
  }
  (void)::sched_setaffinity(0, sizeof(set), &set);
}

}  // namespace

void run_worker(int fd, const scenario::ModelPool& pool,
                const ServeConfig& cfg, unsigned index) {
  if (cfg.pin_workers) pin_to_cores(index, cfg.worker_threads);
  std::unique_ptr<ThreadPool> threads;
  if (cfg.worker_threads > 1) {
    threads = std::make_unique<ThreadPool>(cfg.worker_threads);
  }
  // Attacks (and their sources) are cached per spec fingerprint so a
  // steady request stream pays construction once. Shared-module safety:
  // only jobs with the SAME cached attack run concurrently (the
  // engine-proven pattern); distinct groups run back to back, and
  // verdict scoring — which forwards through the pool's modules — is
  // sequential after each group's attack phase.
  std::map<std::string, std::shared_ptr<Attack>> attacks;
  std::mutex write_mu;

  const auto send_result = [&](const JobResult& result) {
    std::lock_guard<std::mutex> lock(write_mu);
    write_frame(fd, encode_job_result(result));
  };

  for (;;) {
    MsgType type;
    std::vector<std::uint8_t> payload;
    bool have = false;
    try {
      have = read_frame(fd, &type, &payload);
    } catch (const std::exception&) {
      break;  // parent died or link corrupted; nothing to answer to
    }
    if (!have || type == MsgType::kShutdown) break;
    if (type != MsgType::kJobBatch) break;

    std::vector<WireJob> jobs;
    try {
      jobs = decode_job_batch(payload);
    } catch (const std::exception&) {
      break;
    }

    // Group jobs by attack fingerprint, preserving first-seen order.
    std::vector<std::pair<std::string, std::vector<std::size_t>>> groups;
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const std::string key = attack_cache_key(jobs[i]);
      auto it = std::find_if(groups.begin(), groups.end(),
                             [&](const auto& g) { return g.first == key; });
      if (it == groups.end()) {
        groups.push_back({key, {i}});
      } else {
        it->second.push_back(i);
      }
    }

    for (const auto& [key, indices] : groups) {
      const WireJob& first = jobs[indices.front()];

      std::shared_ptr<Attack> attack;
      auto cached = attacks.find(key);
      if (cached != attacks.end()) {
        attack = cached->second;
      } else {
        try {
          const AttackTargets targets{
              scenario::make_original_source(pool, first.original),
              scenario::make_adapted_source(pool, first.adapted, cfg.fd)};
          attack = make_attack(first.attack, targets, first.spec);
          attacks.emplace(key, attack);
        } catch (const std::exception& e) {
          for (const std::size_t i : indices) {
            JobResult fail;
            fail.ticket = jobs[i].ticket;
            fail.first_sample = jobs[i].first_sample;
            fail.error = e.what();
            try {
              send_result(fail);
            } catch (const std::exception&) {
              _exit(1);
            }
          }
          continue;
        }
      }

      // Phase 1 — perturb shards in parallel through one shared Attack
      // instance, keyed by each job's within-request first_sample.
      std::vector<WorkerJobState> states(indices.size());
      for (std::size_t s = 0; s < indices.size(); ++s) {
        states[s].job = std::move(jobs[indices[s]]);
      }
      fan_out(threads.get(), states.size(), [&](std::size_t s) {
        WorkerJobState& st = states[s];
        const auto t0 = std::chrono::steady_clock::now();
        try {
          st.adv = attack->perturb_indexed(st.job.images, st.job.labels,
                                           st.job.first_sample);
        } catch (const std::exception& e) {
          st.error = e.what();
        }
        st.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
      });

      // Phase 2 — score verdicts sequentially (module forwards are
      // stateful) and stream each job's result frame.
      ModelFn orig_fn, deployed_fn;
      for (WorkerJobState& st : states) {
        JobResult result;
        result.ticket = st.job.ticket;
        result.first_sample = st.job.first_sample;
        result.seconds = st.seconds;
        result.error = st.error;
        if (result.error.empty()) {
          try {
            if (!orig_fn) {
              DIVA_CHECK(pool.original != nullptr,
                         "worker pool lacks the true original model");
              pool.original->set_training(false);
              orig_fn = [m = pool.original](const Tensor& x) {
                return m->forward(x);
              };
              deployed_fn = scenario::deployed_model_fn(pool, st.job.adapted);
            }
            const std::vector<int> orig_pred =
                argmax_rows(orig_fn(st.adv));
            const std::vector<int> adapted_pred =
                argmax_rows(deployed_fn(st.adv));
            result.verdicts.resize(st.job.labels.size());
            for (std::size_t i = 0; i < st.job.labels.size(); ++i) {
              SampleVerdict& v = result.verdicts[i];
              v.preserved = orig_pred[i] == st.job.labels[i];
              v.fooled = adapted_pred[i] != st.job.labels[i];
              v.evaded = v.preserved && v.fooled;
            }
            result.adv = std::move(st.adv);
          } catch (const std::exception& e) {
            result.error = e.what();
            result.adv = Tensor();
            result.verdicts.clear();
          }
        }
        try {
          send_result(result);
        } catch (const std::exception&) {
          _exit(1);  // parent gone
        }
      }
    }

    // Stats trailer: after the last result of every batch, ship this
    // worker's cumulative telemetry (zeroed at fork by the registry's
    // atfork hook, so it covers exactly this worker's own work). Always
    // sent — empty when telemetry is disabled — so the parent's framing
    // never depends on env agreement across the fork.
    try {
      std::lock_guard<std::mutex> lock(write_mu);
      write_frame(fd, encode_stats_reply(telemetry::snapshot()));
    } catch (const std::exception&) {
      _exit(1);  // parent gone
    }
  }
  // _exit: a forked child must not run the parent's static destructors
  // or flush its inherited stdio buffers.
  _exit(0);
}

// ---------------------------------------------------------------------------
// AttackServer
// ---------------------------------------------------------------------------

AttackServer::AttackServer(scenario::ModelPool pool, ServeConfig cfg)
    : pool_(pool), cfg_(std::move(cfg)) {
  DIVA_CHECK(!cfg_.socket_path.empty(), "ServeConfig.socket_path is required");
  DIVA_CHECK(cfg_.socket_path.size() < sizeof(sockaddr_un::sun_path),
             "socket path too long: " << cfg_.socket_path);
  DIVA_CHECK(cfg_.workers >= 1, "need at least one worker process");
  DIVA_CHECK(cfg_.worker_threads >= 1, "need at least one worker thread");
  DIVA_CHECK(cfg_.shard_size >= 1, "shard_size must be at least 1");
  DIVA_CHECK(cfg_.max_batch_jobs >= 1, "max_batch_jobs must be at least 1");
  DIVA_CHECK(pool_.original != nullptr,
             "serving requires the true original model (verdict scoring)");
}

AttackServer::~AttackServer() {
  try {
    stop();
  } catch (const std::exception&) {
    // Destructor shutdown is best-effort.
  }
}

std::string AttackServer::validate_request(const AttackRequest& req) const {
  // Unknown kinds surface the registry's own error text.
  try {
    (void)attack_traits(req.attack);
  } catch (const Error& e) {
    return e.what();
  }
  if (req.images.rank() != 4 || req.images.dim(0) == 0) {
    return "request batch must be a non-empty NCHW tensor";
  }
  if (static_cast<std::int64_t>(req.labels.size()) != req.images.dim(0)) {
    return "request labels size " + std::to_string(req.labels.size()) +
           " != batch size " + std::to_string(req.images.dim(0));
  }
  if (req.spec.cfg.steps < 1) return "attack steps must be at least 1";
  if (!(req.spec.cfg.epsilon > 0.0f)) return "attack epsilon must be positive";
  if (!(req.spec.cfg.alpha > 0.0f)) return "attack alpha must be positive";
  if (req.adapted == scenario::AdaptedKind::kInt8Batched) {
    return "adapted kind 'int8-batched' is not a request column: the server "
           "batches every request (request 'int8-fd' instead)";
  }
  const std::string missing =
      scenario::pool_missing_reason(pool_, req.original, req.adapted);
  if (!missing.empty()) return missing;
  // The registry's exact rejection shapes: build the same targets a
  // worker would and let validate_attack_targets judge them.
  const AttackTargets targets{
      scenario::make_original_source(pool_, req.original),
      scenario::make_adapted_source(pool_, req.adapted, cfg_.fd)};
  return validate_attack_targets(req.attack, targets);
}

void AttackServer::start() {
  DIVA_CHECK(!started_, "AttackServer::start called twice");
  started_ = true;

  // Bind + listen first so workers can be forked before any thread
  // exists in this process (the initial forks must be single-threaded).
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  DIVA_CHECK(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, cfg_.socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(cfg_.socket_path.c_str());
  DIVA_CHECK(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    sizeof(addr)) == 0,
             "bind(" << cfg_.socket_path
                     << ") failed: " << std::strerror(errno));
  DIVA_CHECK(::listen(listen_fd_, cfg_.listen_backlog) == 0,
             "listen failed: " << std::strerror(errno));

  workers_.resize(cfg_.workers);
  worker_stats_.assign(cfg_.workers, WorkerStats{});
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    DIVA_CHECK(spawn_worker(w), "failed to fork worker " << w);
  }

  running_.store(true);
  for (std::size_t w = 0; w < cfg_.workers; ++w) {
    dispatchers_.emplace_back([this, w] { dispatch_loop(w); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void AttackServer::stop() {
  if (!started_ || !running_.exchange(false)) {
    if (started_ && accept_thread_.joinable()) accept_thread_.join();
    return;
  }

  // 1. Stop accepting; wake the accept loop.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (accept_thread_.joinable()) accept_thread_.join();

  // 2. Stop taking requests: kick every connection reader, join them.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) ::shutdown(conn->fd, SHUT_RD);
  }
  for (auto& conn : conns_) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 3. Drain: close the queue, let dispatchers push the remaining jobs
  //    through the workers and deliver the results.
  queue_.close();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();

  // 4. Reap workers.
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    WorkerLink& link = workers_[w];
    if (link.fd >= 0) {
      try {
        write_frame(link.fd, encode_shutdown());
      } catch (const std::exception&) {
        // Worker already gone; reaping below still applies.
      }
    }
    reap_worker(w);
  }

  // 5. Release the front-end.
  close_fd(listen_fd_);
  ::unlink(cfg_.socket_path.c_str());
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) close_fd(conn->fd);
    conns_.clear();
  }
  std::lock_guard<std::mutex> lock(pending_mu_);
  pending_.clear();
}

std::size_t AttackServer::live_conns() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

std::vector<pid_t> AttackServer::worker_pids() const {
  std::lock_guard<std::mutex> lock(workers_mu_);
  std::vector<pid_t> pids;
  for (const WorkerLink& link : workers_) {
    if (link.alive) pids.push_back(link.pid);
  }
  return pids;
}

bool AttackServer::spawn_worker(std::size_t w) {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) return false;
  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(sv[0]);
    ::close(sv[1]);
    return false;
  }
  if (pid == 0) {
    // Child: drop the parent-side fds we know about, then serve. The
    // inherited listening socket must go so the bound path dies with
    // the parent, not with the slowest worker.
    ::close(sv[0]);
    if (listen_fd_ >= 0) ::close(listen_fd_);
    for (const WorkerLink& other : workers_) {
      if (other.fd >= 0) ::close(other.fd);
    }
    run_worker(sv[1], pool_, cfg_, static_cast<unsigned>(w));
  }
  ::close(sv[1]);
  std::lock_guard<std::mutex> lock(workers_mu_);
  workers_[w] = WorkerLink{pid, sv[0], true};
  return true;
}

void AttackServer::reap_worker(std::size_t w) {
  WorkerLink link;
  {
    std::lock_guard<std::mutex> lock(workers_mu_);
    link = workers_[w];
    workers_[w].alive = false;
    workers_[w].fd = -1;
  }
  if (link.fd >= 0) ::close(link.fd);
  if (link.pid > 0) {
    int status = 0;
    (void)::waitpid(link.pid, &status, 0);
  }
  {
    // Fold the dead worker's last shipped snapshot into the slot's
    // retired total so its counted work outlives the process (this is
    // what keeps stats intact across a SIGKILLed worker).
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (w < worker_stats_.size()) {
      telemetry::merge(&worker_stats_[w].retired, worker_stats_[w].latest);
      worker_stats_[w].latest = telemetry::Snapshot{};
    }
  }
  std::lock_guard<std::mutex> lock(workers_mu_);
  workers_[w].pid = -1;
}

telemetry::Snapshot AttackServer::stats_snapshot() const {
  telemetry::Snapshot snap = telemetry::snapshot();
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (const WorkerStats& ws : worker_stats_) {
    telemetry::merge(&snap, ws.retired);
    telemetry::merge(&snap, ws.latest);
  }
  return snap;
}

void AttackServer::dispatch_loop(std::size_t w) {
  const CoalescePolicy policy{cfg_.max_batch_jobs, cfg_.coalesce_window};
  for (;;) {
    std::vector<ShardJob> batch = queue_.pop_batch(policy);
    if (batch.empty()) return;  // closed and drained
    DIVA_TRACE_SPAN("serve.dispatch_batch");

    bool alive;
    int fd;
    {
      std::lock_guard<std::mutex> lock(workers_mu_);
      alive = workers_[w].alive;
      fd = workers_[w].fd;
    }
    if (!alive) {
      DIVA_TELEM_COUNT("serve.worker.restarts", 1);
      if (!spawn_worker(w)) {
        // This worker slot is dead for good; hand the jobs to the
        // other dispatchers and retire.
        queue_.requeue(std::move(batch));
        std::fprintf(stderr,
                     "[serve] worker %zu respawn failed; slot retired\n", w);
        return;
      }
      std::lock_guard<std::mutex> lock(workers_mu_);
      fd = workers_[w].fd;
    }

    // Encode the coalesced batch and ship it.
    std::vector<WireJob> wire;
    wire.reserve(batch.size());
    for (const ShardJob& job : batch) {
      WireJob wj;
      wj.ticket = job.ticket;
      wj.attack = job.request->attack;
      wj.original = job.request->original;
      wj.adapted = job.request->adapted;
      wj.spec = job.request->spec;
      wj.first_sample = job.lo;
      slice_batch(*job.request, job.lo, job.hi, &wj.images, &wj.labels);
      wire.push_back(std::move(wj));
    }

    std::map<std::uint64_t, std::size_t> outstanding;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      outstanding.emplace(batch[i].ticket, i);
    }

    bool failed = false;
    try {
      write_frame(fd, encode_job_batch(wire));
    } catch (const std::exception&) {
      failed = true;
    }
    while (!failed && !outstanding.empty()) {
      MsgType type;
      std::vector<std::uint8_t> payload;
      try {
        if (!read_frame(fd, &type, &payload) || type != MsgType::kJobResult) {
          failed = true;
          break;
        }
        JobResult result = decode_job_result(payload);
        const auto it = outstanding.find(result.ticket);
        if (it == outstanding.end()) continue;  // defensive: stale ticket
        const std::size_t idx = it->second;
        outstanding.erase(it);
        deliver_result(batch[idx], std::move(result),
                       static_cast<std::uint32_t>(w));
      } catch (const std::exception&) {
        failed = true;
      }
    }

    // Per-batch stats trailer (always present after the last result).
    if (!failed) {
      MsgType type;
      std::vector<std::uint8_t> payload;
      try {
        if (read_frame(fd, &type, &payload) &&
            type == MsgType::kStatsReply) {
          telemetry::Snapshot snap = decode_stats_reply(payload);
          std::lock_guard<std::mutex> lock(stats_mu_);
          worker_stats_[w].latest = std::move(snap);
        } else {
          failed = true;  // worker died between results and trailer
        }
      } catch (const std::exception&) {
        failed = true;
      }
    }

    if (failed) {
      // The worker died (or the link corrupted): reap it, requeue the
      // jobs whose results never arrived — front of the queue, original
      // order — and respawn on the next loop.
      reap_worker(w);
      std::vector<ShardJob> still_in_flight;
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (outstanding.count(batch[i].ticket)) {
          still_in_flight.push_back(std::move(batch[i]));
        }
      }
      std::fprintf(stderr,
                   "[serve] worker %zu died; requeueing %zu in-flight jobs\n",
                   w, still_in_flight.size());
      queue_.requeue(std::move(still_in_flight));
    }
  }
}

void AttackServer::deliver_result(const ShardJob& job, JobResult&& result,
                                  std::uint32_t worker_index) {
  std::lock_guard<std::mutex> lock(pending_mu_);
  const auto it = pending_.find(job.request_key);
  if (it == pending_.end()) return;  // request already failed and closed
  PendingRequest& pr = it->second;

  if (!result.error.empty()) {
    if (!pr.failed) {
      pr.failed = true;
      DIVA_TELEM_COUNT("serve.requests.failed", 1);
      send_frame_to(pr.conn, encode_error({pr.request->id, result.error}));
    }
  } else if (!pr.failed) {
    ResultChunk chunk;
    chunk.id = pr.request->id;
    chunk.lo = job.lo;
    chunk.hi = job.hi;
    chunk.adv = std::move(result.adv);
    chunk.verdicts = std::move(result.verdicts);
    chunk.seconds = result.seconds;
    chunk.worker = worker_index;
    send_frame_to(pr.conn, encode_result_chunk(chunk));
  }

  if (--pr.remaining_shards == 0) {
    if (!pr.failed) {
      RequestDone done;
      done.id = pr.request->id;
      done.total = pr.request->images.dim(0);
      done.seconds = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - pr.t0)
                         .count();
      DIVA_TELEM_COUNT("serve.requests.completed", 1);
      DIVA_TELEM_COUNT("serve.samples.completed",
                       static_cast<std::uint64_t>(done.total));
      // Server-side latency, decode to last shard: what a client can't
      // see from the outside (excludes client-side queueing/transport).
      DIVA_TELEM_RECORD("serve.request_us",
                        static_cast<std::uint64_t>(done.seconds * 1e6));
      send_frame_to(pr.conn, encode_request_done(done));
    }
    pending_.erase(it);
  }
}

void AttackServer::send_frame_to(const std::shared_ptr<ClientConn>& conn,
                                 const std::vector<std::uint8_t>& frame) {
  if (conn->dead.load()) return;
  std::lock_guard<std::mutex> lock(conn->write_mu);
  try {
    write_frame(conn->fd, frame);
  } catch (const std::exception&) {
    conn->dead.store(true);  // client went away; drop its later frames
  }
}

namespace {

/// accept(2) errnos that mean pressure (fd exhaustion, dropped
/// handshakes, momentary kernel memory shortage) rather than a broken
/// listener. These must never kill the accept thread: the listener fd
/// is still valid and the condition clears on its own.
bool accept_errno_is_transient(int err) {
  switch (err) {
    case ECONNABORTED:  // client gave up between connect and accept
    case EMFILE:        // process fd table full
    case ENFILE:        // system fd table full
    case EAGAIN:        // spurious wakeup on a (non)blocking listener
#if defined(EWOULDBLOCK) && EWOULDBLOCK != EAGAIN
    case EWOULDBLOCK:
#endif
    case ENOBUFS:
    case ENOMEM:
#ifdef EPROTO
    case EPROTO:
#endif
      return true;
    default:
      return false;
  }
}

}  // namespace

void AttackServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (!running_.load()) return;  // stop() shut the listener down
      if (accept_errno_is_transient(errno)) {
        DIVA_TELEM_COUNT("serve.accept.transient_errors", 1);
        std::fprintf(stderr, "[serve] accept: %s; retrying\n",
                     std::strerror(errno));
        // Reap first: finished connections are the likeliest source of
        // the fds this error is starving for.
        reap_dead_conns();
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      std::fprintf(stderr, "[serve] accept failed: %s; listener down\n",
                   std::strerror(errno));
      return;
    }
    if (!running_.load()) {
      ::close(fd);
      return;
    }
    reap_dead_conns();
    auto conn = std::make_shared<ClientConn>();
    conn->fd = fd;
    conn->reader = std::thread([this, conn] { client_loop(conn); });
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns_.push_back(conn);
  }
}

void AttackServer::reap_dead_conns() {
  // A connection is reclaimable once its reader has exited AND nothing
  // else holds a reference (no pending request, no in-flight send) —
  // use_count()==1 means the reader lambda's copy is gone, so join()
  // returns immediately and closing the fd can't race a writer.
  std::vector<std::shared_ptr<ClientConn>> done;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    auto keep = conns_.begin();
    for (auto& conn : conns_) {
      if (conn->dead.load() && conn.use_count() == 1) {
        done.push_back(std::move(conn));
      } else {
        *keep++ = std::move(conn);
      }
    }
    conns_.erase(keep, conns_.end());
  }
  for (auto& conn : done) {
    if (conn->reader.joinable()) conn->reader.join();
    close_fd(conn->fd);
  }
}

void AttackServer::client_loop(const std::shared_ptr<ClientConn>& conn) {
  for (;;) {
    MsgType type;
    std::vector<std::uint8_t> payload;
    bool have = false;
    try {
      have = read_frame(conn->fd, &type, &payload);
    } catch (const std::exception&) {
      break;  // corrupted stream or reset; connection is done
    }
    if (!have) break;

    if (type == MsgType::kShutdown) {
      if (cfg_.on_shutdown_request) cfg_.on_shutdown_request();
      continue;
    }
    if (type == MsgType::kStatsRequest) {
      send_frame_to(conn, encode_stats_reply(stats_snapshot()));
      continue;
    }
    if (type != MsgType::kAttackRequest) {
      send_frame_to(conn, encode_error({0, "unexpected frame type"}));
      continue;
    }
    AttackRequest req;
    try {
      req = decode_attack_request(payload);
    } catch (const std::exception& e) {
      send_frame_to(conn,
                    encode_error({0, std::string("malformed request: ") +
                                         e.what()}));
      continue;
    }
    handle_request(conn, std::move(req));
  }
  conn->dead.store(true);
}

void AttackServer::handle_request(const std::shared_ptr<ClientConn>& conn,
                                  AttackRequest&& req) {
  DIVA_TRACE_SPAN("serve.handle_request");
  const std::string reason = validate_request(req);
  if (!reason.empty()) {
    DIVA_TELEM_COUNT("serve.requests.rejected", 1);
    send_frame_to(conn, encode_error({req.id, reason}));
    return;
  }
  DIVA_TELEM_COUNT("serve.requests.accepted", 1);
  DIVA_TELEM_COUNT("serve.samples.accepted",
                   static_cast<std::uint64_t>(req.images.dim(0)));

  const auto request =
      std::make_shared<const AttackRequest>(std::move(req));
  const std::uint64_t key = next_request_key_.fetch_add(1);
  std::uint64_t ticket_base = 0;  // placeholder; tickets come from the atomic
  std::vector<ShardJob> jobs;
  {
    // make_shard_jobs wants a plain counter; feed it a local snapshot
    // carved out of the atomic so tickets stay globally unique.
    const std::int64_t n = request->images.dim(0);
    const std::uint64_t count = static_cast<std::uint64_t>(
        (n + cfg_.shard_size - 1) / cfg_.shard_size);
    ticket_base = next_ticket_.fetch_add(count);
    std::uint64_t counter = ticket_base;
    jobs = make_shard_jobs(request, key, cfg_.shard_size, &counter);
  }

  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    PendingRequest pr;
    pr.conn = conn;
    pr.request = request;
    pr.remaining_shards = static_cast<std::int64_t>(jobs.size());
    pr.t0 = std::chrono::steady_clock::now();
    pending_.emplace(key, std::move(pr));
  }
  queue_.push(std::move(jobs));
}

}  // namespace diva::serve
