#include "robust/robust.h"

#include <cstdio>

#include "attack/registry.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace diva {

float adversarial_train(Sequential& model, const Dataset& train,
                        const RobustTrainConfig& cfg) {
  DIVA_CHECK(train.size() > 0, "empty training set");
  Sgd opt(model.named_parameters(), cfg.train.lr, cfg.train.momentum,
          cfg.train.weight_decay);
  DataLoader loader(train, cfg.train.batch_size, cfg.train.seed);
  const std::int64_t steps = loader.batches_per_epoch();

  float last_epoch_loss = 0.0f;
  for (int epoch = 0; epoch < cfg.train.epochs; ++epoch) {
    double epoch_loss = 0.0;
    for (std::int64_t step = 0; step < steps; ++step) {
      const Batch batch = loader.next();

      // Inner maximization: PGD against the current model.
      AttackConfig inner = cfg.inner_attack;
      inner.seed = cfg.train.seed + static_cast<std::uint64_t>(epoch) * 1000 +
                   static_cast<std::uint64_t>(step);
      auto pgd = make_attack("pgd", {nullptr, source(model)}, {.cfg = inner});
      const Tensor x_adv = pgd->perturb(batch.images, batch.labels);

      // Outer minimization on the adversarial batch.
      model.set_training(true);
      opt.zero_grad();
      const Tensor logits = model.forward(x_adv);
      LossGrad lg = softmax_cross_entropy(logits, batch.labels);
      model.backward(lg.dlogits);
      opt.step();
      epoch_loss += lg.loss;
    }
    last_epoch_loss = static_cast<float>(epoch_loss / steps);
    if (cfg.train.verbose) {
      std::printf("  robust epoch %d/%d adv-loss %.4f\n", epoch + 1,
                  cfg.train.epochs, last_epoch_loss);
    }
  }
  model.set_training(false);
  return last_epoch_loss;
}

float robust_accuracy(Sequential& model, const Dataset& data,
                      const AttackConfig& attack_cfg,
                      std::int64_t batch_size) {
  model.set_training(false);
  const std::int64_t n = data.size();
  std::int64_t correct = 0;
  auto pgd = make_attack("pgd", {nullptr, source(model)}, {.cfg = attack_cfg});
  for (std::int64_t at = 0; at < n; at += batch_size) {
    const std::int64_t take = std::min(batch_size, n - at);
    std::vector<int> idx(static_cast<std::size_t>(take));
    std::vector<int> labels(static_cast<std::size_t>(take));
    for (std::int64_t i = 0; i < take; ++i) {
      idx[static_cast<std::size_t>(i)] = static_cast<int>(at + i);
      labels[static_cast<std::size_t>(i)] =
          data.labels[static_cast<std::size_t>(at + i)];
    }
    const Tensor x_adv = pgd->perturb(gather_batch(data.images, idx), labels);
    const auto preds = argmax_rows(model.forward(x_adv));
    for (std::size_t i = 0; i < preds.size(); ++i) {
      correct += preds[i] == labels[i];
    }
  }
  return static_cast<float>(correct) / static_cast<float>(n);
}

}  // namespace diva
