// PGD adversarial ("robust") training — the defense evaluated in §5.5.
// Solves the minimax problem of Eq. 4: each minibatch is replaced by its
// PGD-adversarial counterpart before the gradient step (Madry et al.).
#pragma once

#include "attack/attack.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "nn/sequential.h"

namespace diva {

struct RobustTrainConfig {
  TrainConfig train;          // outer minimization
  AttackConfig inner_attack;  // inner maximization (defaults below)

  RobustTrainConfig() {
    // Madry-style inner attack, scaled to this library's budget.
    inner_attack.epsilon = 8.0f / 255.0f;
    inner_attack.alpha = 2.0f / 255.0f;
    inner_attack.steps = 5;
    inner_attack.random_start = true;
  }
};

/// Adversarially trains the model; returns final-epoch training loss on
/// adversarial examples. Model left in eval mode.
float adversarial_train(Sequential& model, const Dataset& train,
                        const RobustTrainConfig& cfg);

/// Robust accuracy: accuracy on PGD-adversarial versions of the data.
float robust_accuracy(Sequential& model, const Dataset& data,
                      const AttackConfig& attack_cfg,
                      std::int64_t batch_size = 64);

}  // namespace diva
