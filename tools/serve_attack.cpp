// serve_attack — attack-as-a-service daemon.
//
// Binds an AttackServer on an AF_UNIX socket, serving the requested
// model track (trained via the ModelZoo disk cache on first use), and
// runs until SIGINT/SIGTERM or a client kShutdown frame.
//
// Quickstart:
//   ./tools/serve_attack --socket /tmp/diva.sock --track digit --workers 2 &
//   ./tools/attack_client --socket /tmp/diva.sock --attack diva
//       --original float --adapted int8-ste --n 16
//
// Every flag has a DIVA_SERVE_* environment twin (flag wins):
//   DIVA_SERVE_SOCKET, DIVA_SERVE_TRACK, DIVA_SERVE_WORKERS,
//   DIVA_SERVE_WORKER_THREADS, DIVA_SERVE_SHARD, DIVA_SERVE_MAX_JOBS,
//   DIVA_SERVE_WINDOW_US, DIVA_SERVE_PIN, DIVA_SERVE_STATS_SEC.
//
// With --stats-sec N (or DIVA_SERVE_STATS_SEC=N) the daemon logs a
// one-line merged-telemetry summary every N seconds; 0 disables.
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>

#include "core/zoo.h"
#include "runtime/env.h"
#include "serve/server.h"

namespace {

using diva::env_flag;
using diva::env_int_nonneg;
using diva::env_int_positive;
using diva::env_string;

struct Options {
  std::string socket = env_string("DIVA_SERVE_SOCKET", "/tmp/diva_serve.sock");
  std::string track = env_string("DIVA_SERVE_TRACK", "digit");
  unsigned workers =
      static_cast<unsigned>(env_int_positive("DIVA_SERVE_WORKERS", 2));
  unsigned worker_threads =
      static_cast<unsigned>(env_int_positive("DIVA_SERVE_WORKER_THREADS", 2));
  std::int64_t shard_size = env_int_positive("DIVA_SERVE_SHARD", 8);
  std::int64_t max_jobs = env_int_positive("DIVA_SERVE_MAX_JOBS", 8);
  std::int64_t window_us = env_int_nonneg("DIVA_SERVE_WINDOW_US", 2000);
  bool pin = env_flag("DIVA_SERVE_PIN", false);
  std::int64_t stats_sec = env_int_nonneg("DIVA_SERVE_STATS_SEC", 0);
};

void usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--socket PATH] [--track digit|resnet] [--workers N]\n"
      "          [--worker-threads N] [--shard-size N] [--max-batch-jobs N]\n"
      "          [--window-us N] [--pin] [--stats-sec N]\n",
      argv0);
}

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--socket") {
      const char* v = value();
      if (!v) return false;
      opt->socket = v;
    } else if (arg == "--track") {
      const char* v = value();
      if (!v) return false;
      opt->track = v;
    } else if (arg == "--workers") {
      const char* v = value();
      if (!v) return false;
      opt->workers = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--worker-threads") {
      const char* v = value();
      if (!v) return false;
      opt->worker_threads = static_cast<unsigned>(std::atoi(v));
    } else if (arg == "--shard-size") {
      const char* v = value();
      if (!v) return false;
      opt->shard_size = std::atoll(v);
    } else if (arg == "--max-batch-jobs") {
      const char* v = value();
      if (!v) return false;
      opt->max_jobs = std::atoll(v);
    } else if (arg == "--window-us") {
      const char* v = value();
      if (!v) return false;
      opt->window_us = std::atoll(v);
    } else if (arg == "--pin") {
      opt->pin = true;
    } else if (arg == "--stats-sec") {
      const char* v = value();
      if (!v) return false;
      opt->stats_sec = std::atoll(v);
    } else {
      usage(argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;

  // Block termination signals before any thread or worker exists so
  // every descendant inherits the mask and the daemon thread owns
  // delivery via sigwait.
  sigset_t sigs;
  sigemptyset(&sigs);
  sigaddset(&sigs, SIGINT);
  sigaddset(&sigs, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &sigs, nullptr);

  diva::ModelZoo zoo;
  diva::scenario::ModelPool pool;
  if (opt.track == "digit") {
    pool.original = &zoo.digit_original();
    pool.adapted_qat = &zoo.digit_qat();
    pool.quantized = &zoo.digit_quantized();
  } else if (opt.track == "resnet") {
    pool.original = &zoo.original(diva::Arch::kResNet);
    pool.surrogate = &zoo.surrogate_original(diva::Arch::kResNet);
    pool.adapted_qat = &zoo.adapted_qat(diva::Arch::kResNet);
    pool.quantized = &zoo.quantized(diva::Arch::kResNet);
  } else {
    std::fprintf(stderr, "unknown --track '%s' (digit|resnet)\n",
                 opt.track.c_str());
    return 2;
  }

  diva::serve::ServeConfig cfg;
  cfg.socket_path = opt.socket;
  cfg.workers = opt.workers;
  cfg.worker_threads = opt.worker_threads;
  cfg.shard_size = opt.shard_size;
  cfg.max_batch_jobs = static_cast<std::size_t>(opt.max_jobs);
  cfg.coalesce_window = std::chrono::microseconds(opt.window_us);
  cfg.pin_workers = opt.pin;
  // A client's kShutdown lands on a connection thread, which must not
  // join itself via stop(); route it through the signal the main thread
  // is already waiting on.
  cfg.on_shutdown_request = [] { kill(getpid(), SIGTERM); };

  try {
    diva::serve::AttackServer server(pool, cfg);
    server.start();
    std::printf("serve_attack: track=%s socket=%s workers=%u threads=%u "
                "shard=%lld window=%lldus\n",
                opt.track.c_str(), opt.socket.c_str(), opt.workers,
                opt.worker_threads, static_cast<long long>(opt.shard_size),
                static_cast<long long>(opt.window_us));
    std::fflush(stdout);

    // Periodic stats line: merged parent+worker snapshot, the handful
    // of fields an operator watches first. Timed CV wait so shutdown
    // never blocks on the logging interval.
    std::mutex stats_mu;
    std::condition_variable stats_cv;
    bool stats_stop = false;
    std::thread stats_thread;
    if (opt.stats_sec > 0) {
      stats_thread = std::thread([&] {
        std::unique_lock<std::mutex> lock(stats_mu);
        while (!stats_cv.wait_for(lock, std::chrono::seconds(opt.stats_sec),
                                  [&] { return stats_stop; })) {
          const auto snap = server.stats_snapshot();
          auto count = [&](const char* name) -> std::uint64_t {
            const auto it = snap.counters.find(name);
            return it == snap.counters.end() ? 0 : it->second;
          };
          const auto lat = snap.histograms.find("serve.request_us");
          const auto batch = snap.histograms.find("serve.batch.jobs");
          std::printf(
              "serve_attack: stats reqs=%llu done=%llu failed=%llu "
              "queries=%llu restarts=%llu p50=%.1fms p99=%.1fms "
              "batch=%.2f\n",
              static_cast<unsigned long long>(count("serve.requests.accepted")),
              static_cast<unsigned long long>(
                  count("serve.requests.completed")),
              static_cast<unsigned long long>(count("serve.requests.failed")),
              static_cast<unsigned long long>(count("quant.forward.rows")),
              static_cast<unsigned long long>(count("serve.worker.restarts")),
              lat == snap.histograms.end()
                  ? 0.0
                  : lat->second.quantile(0.5) / 1000.0,
              lat == snap.histograms.end()
                  ? 0.0
                  : lat->second.quantile(0.99) / 1000.0,
              batch == snap.histograms.end() ? 0.0 : batch->second.mean());
          std::fflush(stdout);
        }
      });
    }

    int sig = 0;
    sigwait(&sigs, &sig);
    std::printf("serve_attack: %s — shutting down\n", strsignal(sig));
    if (stats_thread.joinable()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu);
        stats_stop = true;
      }
      stats_cv.notify_all();
      stats_thread.join();
    }
    server.stop();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "serve_attack: %s\n", e.what());
    return 1;
  }
  return 0;
}
