// check_probe_efficiency — CI gate over the probe-compression sweep JSON.
//
// bench_table2_evasion_cost's second section runs the black-box int8-fd
// attack under a grid of (probing variant x probe budget) and records,
// per point, how many int8 rows went through the deployed artifact
// (telemetry quant.forward.rows) and how many eval images the attack
// fooled. This tool checks the claim that probe compression buys query
// efficiency, not just a different estimator:
//
//   reference = the "dense" variant at its LARGEST probe budget
//   gate      = some compressed (non-dense) point must reach at least
//               the reference's adapted_fooled count while spending at
//               most --ratio (default 0.5) of its deployed queries.
//
// Everything is compared within one run, so machine speed, ISA tier,
// and eval-set composition cancel — the gate is about the shape of the
// queries-vs-evasion trade-off, never absolute numbers.
//
// Smoke caveat: at CI smoke strength (2 PGD steps, tiny budgets) the
// attack fools nothing, so the reference's adapted_fooled is 0 and the
// evasion side of the gate is vacuous. The query side still bites —
// compressed variants must demonstrate the claimed query reduction —
// and the tool prints a loud note that evasion parity was not
// exercised rather than pretending it was.
//
// Input format: line-delimited flat JSON as the bench writes it.
//
// Usage:
//   check_probe_efficiency --current PATH [--ratio FRACTION]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

namespace {

/// Extracts a `"key":<number>` field from one flat JSON record line.
/// Keys are matched quoted and colon-terminated, so "probe_rows" never
/// matches inside a longer key.
bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    if (pos > 0 && line[pos - 1] != ',' && line[pos - 1] != '{') {
      pos += needle.size();
      continue;
    }
    const char* start = line.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;
    *out = v;
    return true;
  }
  return false;
}

bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  *out = line.substr(start, stop - start);
  return true;
}

struct Point {
  std::string variant;
  std::string label;
  int samples = 0;
  double fooled = 0.0;
  double queries = 0.0;
};

std::vector<Point> load_sweep_points(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "check_probe_efficiency: cannot open %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::vector<Point> points;
  std::string line;
  while (std::getline(in, line)) {
    std::string bench;
    if (!extract_string(line, "bench", &bench) ||
        bench != "table2_probe_compression") {
      continue;
    }
    Point p;
    double samples = 0;
    if (!extract_string(line, "variant", &p.variant) ||
        !extract_string(line, "label", &p.label) ||
        !extract_number(line, "samples", &samples) ||
        !extract_number(line, "adapted_fooled", &p.fooled) ||
        !extract_number(line, "deployed_queries", &p.queries)) {
      std::fprintf(stderr,
                   "check_probe_efficiency: %s: sweep row missing gated "
                   "fields: %s\n",
                   path.c_str(), line.c_str());
      std::exit(2);
    }
    p.samples = static_cast<int>(samples);
    points.push_back(p);
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path;
  double ratio = 0.5;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--ratio" && i + 1 < argc) {
      ratio = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "usage: %s --current PATH [--ratio FRACTION]\n",
                   argv[0]);
      return 2;
    }
  }
  if (current_path.empty() || ratio <= 0.0 || ratio >= 1.0) {
    std::fprintf(stderr,
                 "check_probe_efficiency: --current and a ratio in (0,1) "
                 "are required\n");
    return 2;
  }

  const auto points = load_sweep_points(current_path);

  // Reference: dense at the largest budget present in the run. The
  // sweep always emits it; its absence means the bench changed shape
  // under the gate, which must fail loudly rather than pass silently.
  const Point* ref = nullptr;
  for (const auto& p : points) {
    if (p.variant == "dense" && (!ref || p.samples > ref->samples)) ref = &p;
  }
  if (!ref) {
    std::fprintf(stderr,
                 "check_probe_efficiency: no dense reference row in %s — "
                 "refusing to pass an empty gate\n",
                 current_path.c_str());
    return 2;
  }
  if (ref->queries <= 0.0) {
    std::fprintf(stderr,
                 "check_probe_efficiency: dense reference recorded zero "
                 "deployed queries — telemetry accounting is broken\n");
    return 2;
  }

  const double budget = ratio * ref->queries;
  std::printf("reference: dense @ %d samples — %.0f fooled, %.0f queries\n",
              ref->samples, ref->fooled, ref->queries);
  std::printf("gate: fooled >= %.0f at <= %.0f queries (%.0f%% of dense)\n\n",
              ref->fooled, budget, ratio * 100.0);
  std::printf("%-28s %8s %8s %10s  %s\n", "point", "samples", "fooled",
              "queries", "verdict");

  int passing = 0;
  for (const auto& p : points) {
    if (p.variant == "dense") continue;
    const bool ok = p.fooled >= ref->fooled && p.queries <= budget;
    passing += ok ? 1 : 0;
    char name[64];
    std::snprintf(name, sizeof(name), "%s @ %d", p.variant.c_str(),
                  p.samples);
    std::printf("%-28s %8d %8.0f %10.0f  %s\n", name, p.samples, p.fooled,
                p.queries, ok ? "PASS" : "-");
  }
  if (points.size() <= 1) {
    std::fprintf(stderr,
                 "check_probe_efficiency: no compressed sweep points — "
                 "refusing to pass an empty gate\n");
    return 2;
  }
  if (ref->fooled <= 0.0) {
    std::printf(
        "\nnote: dense reference fooled 0 images (smoke-strength attack) — "
        "evasion parity was NOT exercised; this run gates the query "
        "reduction only.\n");
  }
  if (passing == 0) {
    std::fprintf(stderr,
                 "\nFAIL: no compressed variant matched dense evasion at "
                 "<= %.0f%% of its deployed queries\n",
                 ratio * 100.0);
    return 1;
  }
  std::printf(
      "\nok: %d compressed point(s) match dense evasion at <= %.0f%% of "
      "its deployed-model queries\n",
      passing, ratio * 100.0);
  return 0;
}
