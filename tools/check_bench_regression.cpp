// check_bench_regression — CI gate over the serve-throughput smoke JSON.
//
// Compares a fresh bench_serve_throughput smoke run against the pinned
// in-repo baseline (bench/baseline/serve_smoke_baseline.json) and exits
// non-zero on a regression.
//
// What is compared: for every "served" sweep point (keyed by workers x
// clients x window_us), the *same-run* ratio
//
//     served images_per_sec / engine_baseline images_per_sec
//
// not the absolute img/s. Every bench run records its own single-process
// AttackEngine baseline at matching thread width in the same JSON, so
// the ratio cancels machine speed, CPU generation, and ISA tier — the
// things a shared CI runner does not hold constant. A point regresses
// when its ratio drops more than --threshold (default 25%) below the
// pinned ratio. Absolute numbers are printed for context but never
// gated.
//
// Input format: line-delimited JSON records as bench_serve_throughput
// writes them. Fields are extracted with a flat scanner (no nesting
// inside the gated fields), which keeps this tool dependency-free.
//
// Usage:
//   check_bench_regression --current PATH --baseline PATH
//                          [--threshold FRACTION]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

/// Extracts a `"key":<number>` field from one flat JSON record line.
/// Returns false when the key is absent. Keys are matched quoted and
/// colon-terminated, so "p50_ms" never matches "server_p50_ms".
bool extract_number(const std::string& line, const std::string& key,
                    double* out) {
  const std::string needle = "\"" + key + "\":";
  std::size_t pos = 0;
  while ((pos = line.find(needle, pos)) != std::string::npos) {
    // Reject a longer key ending in ours ("x_p50_ms" vs "p50_ms").
    if (pos > 0 && line[pos - 1] != ',' && line[pos - 1] != '{') {
      pos += needle.size();
      continue;
    }
    const char* start = line.c_str() + pos + needle.size();
    char* end = nullptr;
    const double v = std::strtod(start, &end);
    if (end == start) return false;  // non-numeric value
    *out = v;
    return true;
  }
  return false;
}

bool extract_string(const std::string& line, const std::string& key,
                    std::string* out) {
  const std::string needle = "\"" + key + "\":\"";
  const std::size_t pos = line.find(needle);
  if (pos == std::string::npos) return false;
  const std::size_t start = pos + needle.size();
  const std::size_t stop = line.find('"', start);
  if (stop == std::string::npos) return false;
  *out = line.substr(start, stop - start);
  return true;
}

struct Point {
  double ratio = 0.0;       // served / same-run engine baseline
  double images_per_sec = 0.0;  // context only, never gated
};

/// "served" rows keyed by `workers=W clients=C window=U`.
std::map<std::string, Point> load_served_points(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "check_bench_regression: cannot open %s\n",
                 path.c_str());
    std::exit(2);
  }
  std::map<std::string, Point> points;
  std::string line;
  while (std::getline(in, line)) {
    std::string mode;
    if (!extract_string(line, "mode", &mode) || mode != "served") continue;
    double workers = 0, clients = 0, window = 0, img_s = 0, base = 0;
    if (!extract_number(line, "workers", &workers) ||
        !extract_number(line, "clients", &clients) ||
        !extract_number(line, "window_us", &window) ||
        !extract_number(line, "images_per_sec", &img_s) ||
        !extract_number(line, "engine_baseline_images_per_sec", &base)) {
      std::fprintf(stderr,
                   "check_bench_regression: %s: served row missing gated "
                   "fields: %s\n",
                   path.c_str(), line.c_str());
      std::exit(2);
    }
    if (base <= 0.0) {
      std::fprintf(stderr,
                   "check_bench_regression: %s: non-positive engine "
                   "baseline\n",
                   path.c_str());
      std::exit(2);
    }
    char key[64];
    std::snprintf(key, sizeof(key), "workers=%d clients=%d window=%d",
                  static_cast<int>(workers), static_cast<int>(clients),
                  static_cast<int>(window));
    points[key] = Point{img_s / base, img_s};
  }
  return points;
}

}  // namespace

int main(int argc, char** argv) {
  std::string current_path, baseline_path;
  double threshold = 0.25;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--current" && i + 1 < argc) {
      current_path = argv[++i];
    } else if (arg == "--baseline" && i + 1 < argc) {
      baseline_path = argv[++i];
    } else if (arg == "--threshold" && i + 1 < argc) {
      threshold = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s --current PATH --baseline PATH "
                   "[--threshold FRACTION]\n",
                   argv[0]);
      return 2;
    }
  }
  if (current_path.empty() || baseline_path.empty() || threshold <= 0.0 ||
      threshold >= 1.0) {
    std::fprintf(stderr,
                 "check_bench_regression: --current, --baseline, and a "
                 "threshold in (0,1) are required\n");
    return 2;
  }

  const auto current = load_served_points(current_path);
  const auto baseline = load_served_points(baseline_path);

  int compared = 0;
  std::vector<std::string> regressions;
  std::printf("%-36s %10s %10s %8s\n", "sweep point", "pinned", "current",
              "delta");
  for (const auto& [key, pinned] : baseline) {
    const auto it = current.find(key);
    if (it == current.end()) {
      // A pinned point the current run never produced is itself a
      // failure: the sweep shrank, so the gate would silently weaken.
      regressions.push_back(key + ": missing from current run");
      continue;
    }
    ++compared;
    const double delta = it->second.ratio / pinned.ratio - 1.0;
    std::printf("%-36s %10.3f %10.3f %+7.1f%%%s\n", key.c_str(), pinned.ratio,
                it->second.ratio, delta * 100.0,
                delta < -threshold ? "  << REGRESSION" : "");
    if (delta < -threshold) {
      char msg[160];
      std::snprintf(msg, sizeof(msg),
                    "%s: served/engine ratio %.3f vs pinned %.3f (%.1f%%, "
                    "threshold -%.0f%%)",
                    key.c_str(), it->second.ratio, pinned.ratio,
                    delta * 100.0, threshold * 100.0);
      regressions.push_back(msg);
    }
  }
  if (compared == 0) {
    std::fprintf(stderr,
                 "check_bench_regression: no comparable sweep points — "
                 "refusing to pass an empty gate\n");
    return 2;
  }
  if (!regressions.empty()) {
    std::fprintf(stderr, "\n%zu regression(s):\n", regressions.size());
    for (const auto& r : regressions) {
      std::fprintf(stderr, "  %s\n", r.c_str());
    }
    return 1;
  }
  std::printf("\nok: %d sweep point(s) within %.0f%% of the pinned "
              "served/engine ratios\n",
              compared, threshold * 100.0);
  return 0;
}
