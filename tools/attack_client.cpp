// attack_client — CLI client for the serve_attack daemon.
//
// Generates a SynthDigits batch (the daemon's digit track), submits one
// attack request, and prints the per-sample verdict table. With
// --shutdown it instead asks the daemon to exit; with --stats it prints
// the daemon's merged telemetry snapshot (counters, then histogram
// quantiles) and exits.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/report.h"
#include "data/synth_digits.h"
#include "runtime/env.h"
#include "serve/client.h"

namespace {

struct Options {
  std::string socket =
      diva::env_string("DIVA_SERVE_SOCKET", "/tmp/diva_serve.sock");
  std::string attack = "diva";
  std::string original = "float";
  std::string adapted = "int8-ste";
  int n = 16;
  float epsilon = 0.05f;
  float alpha = 0.01f;
  int steps = 20;
  std::uint64_t seed = 0;
  bool shutdown = false;
  bool stats = false;
};

bool parse_args(int argc, char** argv, Options* opt) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    const char* v = nullptr;
    if (arg == "--shutdown") {
      opt->shutdown = true;
    } else if (arg == "--stats") {
      opt->stats = true;
    } else if (!(v = value())) {
      return false;
    } else if (arg == "--socket") {
      opt->socket = v;
    } else if (arg == "--attack") {
      opt->attack = v;
    } else if (arg == "--original") {
      opt->original = v;
    } else if (arg == "--adapted") {
      opt->adapted = v;
    } else if (arg == "--n") {
      opt->n = std::atoi(v);
    } else if (arg == "--epsilon") {
      opt->epsilon = static_cast<float>(std::atof(v));
    } else if (arg == "--alpha") {
      opt->alpha = static_cast<float>(std::atof(v));
    } else if (arg == "--steps") {
      opt->steps = std::atoi(v);
    } else if (arg == "--seed") {
      opt->seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      std::fprintf(
          stderr,
          "usage: %s [--socket PATH] [--attack KIND] [--original KIND]\n"
          "          [--adapted KIND] [--n N] [--epsilon E] [--alpha A]\n"
          "          [--steps S] [--seed S] [--shutdown] [--stats]\n",
          argv[0]);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  if (!parse_args(argc, argv, &opt)) return 2;

  try {
    diva::serve::AttackClient client(opt.socket);
    if (opt.shutdown) {
      client.request_server_shutdown();
      std::printf("attack_client: shutdown requested\n");
      return 0;
    }
    if (opt.stats) {
      const diva::telemetry::Snapshot snap = client.stats();
      diva::banner("server telemetry");
      diva::TablePrinter counters({"counter", "value"});
      for (const auto& [name, v] : snap.counters) {
        counters.add_row({name, std::to_string(v)});
      }
      counters.print();
      diva::TablePrinter hists(
          {"histogram", "count", "mean", "p50", "p90", "p99"});
      char buf[64];
      auto fmt = [&](double d) {
        std::snprintf(buf, sizeof(buf), "%.1f", d);
        return std::string(buf);
      };
      for (const auto& [name, h] : snap.histograms) {
        hists.add_row({name, std::to_string(h.count), fmt(h.mean()),
                       fmt(h.quantile(0.5)), fmt(h.quantile(0.9)),
                       fmt(h.quantile(0.99))});
      }
      hists.print();
      return 0;
    }

    diva::serve::AttackRequest req;
    req.attack = opt.attack;
    DIVA_CHECK(
        diva::scenario::parse_original_kind(opt.original, &req.original),
        "unknown --original '" << opt.original << "'");
    DIVA_CHECK(diva::scenario::parse_adapted_kind(opt.adapted, &req.adapted),
               "unknown --adapted '" << opt.adapted << "'");
    req.spec.cfg.epsilon = opt.epsilon;
    req.spec.cfg.alpha = opt.alpha;
    req.spec.cfg.steps = opt.steps;
    req.spec.cfg.seed = opt.seed;

    const diva::SynthDigits digits;
    const diva::Dataset batch =
        digits.generate((opt.n + digits.num_classes() - 1) /
                        digits.num_classes());
    std::vector<int> take;
    for (int i = 0; i < opt.n && i < batch.size(); ++i) take.push_back(i);
    const diva::Dataset sub = batch.subset(take);
    req.images = sub.images;
    req.labels = sub.labels;

    const diva::serve::ServedResult result = client.run(std::move(req));

    diva::banner("served attack: " + opt.attack + " (" + opt.original +
                 " x " + opt.adapted + ")");
    diva::TablePrinter table({"sample", "label", "fooled", "preserved",
                              "evaded"});
    int evaded = 0;
    for (std::size_t i = 0; i < result.verdicts.size(); ++i) {
      const auto& v = result.verdicts[i];
      evaded += v.evaded ? 1 : 0;
      table.add_row({std::to_string(i), std::to_string(sub.labels[i]),
                 v.fooled ? "yes" : "no", v.preserved ? "yes" : "no",
                 v.evaded ? "yes" : "no"});
    }
    table.print();
    std::printf(
        "evaded %d/%zu  server=%.3fs  slowest shard=%.3fs  workers=%zu\n",
        evaded, result.verdicts.size(), result.server_seconds,
        result.max_shard_seconds, result.shard_workers.size());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "attack_client: %s\n", e.what());
    return 1;
  }
  return 0;
}
