// Quickstart: the whole DIVA pipeline on one image in ~100 lines.
//
//  1. Train a small float classifier.
//  2. Quantize it for the "edge" (fold BN -> calibrate -> QAT -> int8).
//  3. Craft a DIVA adversarial image: the int8 edge model mispredicts,
//     the full-precision original still predicts correctly — the
//     paper's Figure 3 scenario, printed as confidence readouts.
//
// Run from the repository root:  ./build/examples/example_quickstart
#include <cstdio>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/zoo.h"
#include "metrics/dssim.h"

using namespace diva;

int main() {
  std::printf("== DIVA quickstart ==\n\n");

  // The zoo trains (or loads from .cache/models) everything we need.
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  Sequential& original = zoo.original(Arch::kResNet);
  Sequential& adapted_qat = zoo.adapted_qat(Arch::kResNet);   // gradients
  const QuantizedModel& edge = zoo.quantized(Arch::kResNet);  // deployment

  const auto orig_fn = ModelZoo::fn(original);
  const auto edge_fn = ModelZoo::fn(edge);
  std::printf("\noriginal accuracy:  %.1f%%\n",
              100.0 * accuracy(orig_fn, zoo.val_set()));
  std::printf("edge int8 accuracy: %.1f%% (model is %lld bytes of weights)\n",
              100.0 * accuracy(edge_fn, zoo.val_set()),
              static_cast<long long>(edge.weight_bytes()));

  // Pick candidate validation images both models classify correctly,
  // then attack them and present the first image whose attack is
  // evasive (edge flips, original holds).
  const auto idx = select_correct({orig_fn, edge_fn}, zoo.val_set(), 2);
  DIVA_CHECK(!idx.empty(), "no commonly-correct sample found");

  auto report = [&](const char* title, const Tensor& image) {
    const Tensor po = softmax_rows(orig_fn(image));
    const Tensor pe = softmax_rows(edge_fn(image));
    const auto top_o = argmax_rows(po)[0];
    const auto top_e = argmax_rows(pe)[0];
    std::printf("  %-14s original: class %2d (%.1f%%)   edge: class %2d "
                "(%.1f%%)\n",
                title, top_o, 100.0f * po.at(0, top_o), top_e,
                100.0f * pe.at(0, top_e));
  };

  // DIVA (Eq. 5/6): maximize p_original[y] - c * p_adapted[y]. The
  // registry wires the objective to gradient sources for both models.
  AttackConfig attack_cfg;
  attack_cfg.epsilon = 16.0f / 255.0f;
  attack_cfg.alpha = 2.0f / 255.0f;
  attack_cfg.steps = 20;
  auto diva = make_attack("diva", {source(original), source(adapted_qat)},
                          {.cfg = attack_cfg, .c = 1.0f});

  Dataset sample = zoo.val_set().subset({idx[0]});
  Tensor adv;
  for (const int candidate : idx) {
    Dataset trial = zoo.val_set().subset({candidate});
    const Tensor trial_adv = diva->perturb(trial.images, trial.labels);
    const int edge_pred = argmax_rows(edge_fn(trial_adv))[0];
    const int orig_pred = argmax_rows(orig_fn(trial_adv))[0];
    sample = trial;
    adv = trial_adv;
    if (edge_pred != trial.labels[0] && orig_pred == trial.labels[0]) {
      break;  // evasive success — present this one
    }
  }
  const int label = sample.labels[0];

  std::printf("\ntrue label: class %d\n", label);
  report("natural:", sample.images);
  report("DIVA attacked:", adv);

  std::printf("\nperturbation: L-inf %.4f (budget %.4f), DSSIM %.4f\n",
              max_abs(sub(adv, sample.images)), attack_cfg.epsilon,
              dssim(adv, sample.images));
  std::printf(
      "\nIf the edge prediction flipped while the original held, the attack\n"
      "is evasive: validating this input against the authoritative model\n"
      "would reveal nothing wrong. That is the paper's core threat.\n");
  return 0;
}
