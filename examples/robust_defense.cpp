// Robust training as a defense against DIVA (paper §5.5).
//
// Operators can adversarially train the original model before adapting
// it. This example adversarially trains a model (Eq. 4 minimax),
// quantizes it, and measures how much of DIVA's evasive success
// survives — the paper finds both PGD and DIVA are strongly suppressed
// because robust training shrinks the divergence wedge between the two
// models, though DIVA keeps a small edge.
//
// Run from the repository root:  ./build/examples/example_robust_defense
#include <cstdio>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/zoo.h"
#include "robust/robust.h"

using namespace diva;

int main() {
  std::printf("== Robust training as a defense (paper Sec. 5.5) ==\n\n");
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  // Undefended pair for reference.
  Sequential& orig = zoo.original(Arch::kResNet);
  Sequential& qat = zoo.adapted_qat(Arch::kResNet);
  // Robust pair.
  Sequential& r_orig = zoo.robust_original();
  Sequential& r_qat = zoo.robust_qat();

  const auto orig_fn = ModelZoo::fn(orig);
  const auto q8_fn = ModelZoo::fn(zoo.quantized(Arch::kResNet));
  const auto r_orig_fn = ModelZoo::fn(r_orig);
  const auto r_q8_fn = ModelZoo::fn(zoo.robust_quantized());

  AttackConfig acfg;
  acfg.epsilon = 16.0f / 255.0f;
  acfg.alpha = 2.0f / 255.0f;
  acfg.steps = 20;

  std::printf("\nclean accuracy:  undefended %.1f%%, robust %.1f%%\n",
              100.0 * accuracy(orig_fn, zoo.val_set()),
              100.0 * accuracy(r_orig_fn, zoo.val_set()));
  std::printf("robust accuracy under PGD: undefended %.1f%%, robust %.1f%%\n",
              100.0 * robust_accuracy(orig, zoo.val_set(), acfg),
              100.0 * robust_accuracy(r_orig, zoo.val_set(), acfg));

  auto evasive = [&](Sequential& o, Sequential& a, const ModelFn& ofn,
                     const ModelFn& afn) {
    const auto idx = select_correct({ofn, afn}, zoo.val_set(), 6);
    const Dataset eval = zoo.val_set().subset(idx);
    auto diva = make_attack("diva", {source(o), source(a)},
                            {.cfg = acfg, .c = 1.5f});
    const Tensor adv = diva->perturb(eval.images, eval.labels);
    return evaluate_evasion(ofn, afn, eval.images, adv, eval.labels);
  };

  const EvasionResult undefended = evasive(orig, qat, orig_fn, q8_fn);
  const EvasionResult defended = evasive(r_orig, r_qat, r_orig_fn, r_q8_fn);
  std::printf("\nDIVA evasive top-1: undefended %.1f%%  ->  robust %.1f%%\n",
              undefended.top1_rate(), defended.top1_rate());
  std::printf(
      "\nRobust training pushes both models toward the same worst-case\n"
      "boundaries, shrinking the non-overlap DIVA exploits (paper: success\n"
      "drops to ~13%% on robust ResNet50). It is also the most expensive\n"
      "defense — the minimax inner loop multiplies training cost.\n");
  return 0;
}
