// DIVA against a pruned edge model (paper §5.6).
//
// Pruning is the second edge-adaptation technique the paper attacks:
// the model is magnitude-pruned to 60% sparsity and finetuned, shrinking
// it to roughly a third of its effective size. This example walks the
// pruning pipeline and shows the same evasive attack working against
// the sparse model.
//
// Run from the repository root:  ./build/examples/example_pruning_attack
#include <cstdio>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/zoo.h"
#include "prune/prune.h"

using namespace diva;

int main() {
  std::printf("== Attacking a pruned edge model (paper Sec. 5.6) ==\n\n");
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  Sequential& original = zoo.original(Arch::kDenseNet);
  Sequential& pruned = zoo.pruned(Arch::kDenseNet);

  MagnitudePruner inspector = MagnitudePruner::from_existing_zeros(pruned);
  std::printf("\npruned model sparsity: %.1f%% across %zu weight tensors\n",
              100.0f * inspector.actual_sparsity(),
              inspector.num_prunable_tensors());

  const auto orig_fn = ModelZoo::fn(original);
  const auto pruned_fn = ModelZoo::fn(pruned);
  std::printf("original accuracy: %.1f%%   pruned accuracy: %.1f%%\n",
              100.0 * accuracy(orig_fn, zoo.val_set()),
              100.0 * accuracy(pruned_fn, zoo.val_set()));
  const InstabilityStats s = instability(orig_fn, pruned_fn, zoo.val_set());
  std::printf("instability between them: %.1f%% — pruning is a more\n"
              "intrusive adaptation than quantization (paper: 17.1-33.5%%)\n",
              100.0 * s.instability);

  const auto idx = select_correct({orig_fn, pruned_fn}, zoo.val_set(), 6);
  const Dataset eval = zoo.val_set().subset(idx);

  AttackConfig acfg;
  acfg.epsilon = 16.0f / 255.0f;
  acfg.alpha = 2.0f / 255.0f;
  acfg.steps = 20;

  const AttackTargets targets{source(original), source(pruned)};
  auto pgd = make_attack("pgd", targets, {.cfg = acfg});
  auto diva = make_attack("diva", targets, {.cfg = acfg, .c = 1.0f});
  const EvasionResult rp = evaluate_evasion(
      orig_fn, pruned_fn, eval.images, pgd->perturb(eval.images, eval.labels),
      eval.labels);
  const EvasionResult rd = evaluate_evasion(
      orig_fn, pruned_fn, eval.images, diva->perturb(eval.images, eval.labels),
      eval.labels);

  std::printf("\n%-6s evasive top-1 %.1f%%   attack-only %.1f%%\n", "PGD:",
              rp.top1_rate(), rp.attack_only_rate());
  std::printf("%-6s evasive top-1 %.1f%%   attack-only %.1f%%\n", "DIVA:",
              rd.top1_rate(), rd.attack_only_rate());
  std::printf(
      "\nDIVA generalizes across adaptation techniques: the loss never\n"
      "assumed quantization, only that an adapted twin diverges somewhere\n"
      "from its original (paper Fig. 8).\n");
  return 0;
}
