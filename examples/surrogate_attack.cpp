// Semi-blackbox attack walkthrough (paper §4.3 / Figure 5), ported to
// the scenario-matrix runner.
//
// The attacker extracts the int8 model from an edge device but has no
// access to the original model or its training data. This example
// reconstructs a full-precision surrogate by knowledge distillation
// from the adapted model over a scraped (disjoint) image pool, then
// drives the surrogate row of the attack matrix: DIVA against
// (surrogate, adapted) for each deployed-artifact column — the QAT twin
// and the three int8 targets (STE, derivative-free, batched engine).
// Every cell is scored against the TRUE original + deployed int8 model,
// so the numbers measure transfer, exactly like the paper's Fig. 5.
//
// Run from the repository root:  ./build/examples/example_surrogate_attack
#include <cstdio>

#include "core/evaluation.h"
#include "core/experiment_defaults.h"
#include "core/zoo.h"
#include "distill/distill.h"
#include "scenario/scenario.h"

using namespace diva;
using namespace diva::scenario;

int main() {
  std::printf("== Semi-blackbox surrogate attack (paper Sec. 4.3) ==\n\n");
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  // What the attacker has: the adapted (edge) model.
  Sequential& adapted = zoo.adapted_qat(Arch::kMobileNet);
  // What the attacker does NOT have: the original.
  Sequential& original = zoo.original(Arch::kMobileNet);

  // Step 1: distill a surrogate full-precision model from the adapted
  // model over the attacker's own (disjoint) image pool.
  Sequential& surrogate = zoo.surrogate_original(Arch::kMobileNet);
  const float agree = agreement(surrogate, ModelZoo::fn(adapted),
                                zoo.surrogate_set().images);
  std::printf("\nsurrogate/adapted prediction agreement: %.1f%%\n",
              100.0f * agree);

  // Step 2: hand the model pool to the scenario runner and sweep the
  // surrogate row of the attack matrix.
  ModelPool pool;
  pool.original = &original;  // scoring only — never a gradient source here
  pool.surrogate = &surrogate;
  pool.adapted_qat = &adapted;
  pool.quantized = &zoo.quantized(Arch::kMobileNet);

  const auto orig_fn = ModelZoo::fn(original);
  const auto q8_fn = ModelZoo::fn(zoo.quantized(Arch::kMobileNet));
  const auto eval_idx = select_correct({orig_fn, q8_fn}, zoo.val_set(), 6);
  const Dataset eval = zoo.val_set().subset(eval_idx);

  RunnerConfig rcfg;
  rcfg.spec.cfg = ExperimentDefaults::attack();
  rcfg.spec.c = ExperimentDefaults::kC;
  rcfg.fd.samples = 32;
  rcfg.batched_threads = 4;
  rcfg.measure_steps = false;
  const ScenarioMatrix matrix(pool, rcfg);

  std::printf("\nsemi-blackbox DIVA on %zd images, per adapted-side target:\n",
              static_cast<std::ptrdiff_t>(eval.size()));
  for (const AdaptedKind target :
       {AdaptedKind::kQat, AdaptedKind::kInt8Ste, AdaptedKind::kInt8Fd,
        AdaptedKind::kInt8Batched}) {
    const CellResult r =
        matrix.run_cell({"diva", OriginalKind::kSurrogate, target}, eval);
    if (!r.ran) {
      std::printf("  %-12s skipped: %s\n", to_string(target),
                  r.skip_reason.c_str());
      continue;
    }
    std::printf("  %-12s evasive top-1 %5.1f%%   adapted fooled %5.1f%%   "
                "original preserved %5.1f%%   %.1f img/s%s\n",
                to_string(target), r.evasion_top1_pct, r.adapted_fooled_pct,
                r.orig_preserved_pct, r.images_per_sec,
                target == AdaptedKind::kInt8Batched ? "  (engine x4)" : "");
  }

  std::printf(
      "\nThe attack never touched the original model, yet evades it: the\n"
      "surrogate stood in for it during optimization (paper Fig. 5), and\n"
      "the same cell runs against the deployed int8 artifact directly.\n");
  return 0;
}
