// Semi-blackbox attack walkthrough (paper §4.3 / Figure 5).
//
// The attacker extracts the int8 model from an edge device but has no
// access to the original model or its training data. This example
// reconstructs a full-precision surrogate by knowledge distillation
// from the adapted model over a scraped (disjoint) image pool, then
// runs DIVA against (surrogate, adapted) and shows the attack carries
// over to the *true* original model.
//
// Run from the repository root:  ./build/examples/example_surrogate_attack
#include <cstdio>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/zoo.h"
#include "distill/distill.h"

using namespace diva;

int main() {
  std::printf("== Semi-blackbox surrogate attack (paper Sec. 4.3) ==\n\n");
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  // What the attacker has: the adapted (edge) model.
  Sequential& adapted = zoo.adapted_qat(Arch::kMobileNet);
  // What the attacker does NOT have: the original.
  Sequential& original = zoo.original(Arch::kMobileNet);

  // Step 1: distill a surrogate full-precision model from the adapted
  // model over the attacker's own (disjoint) image pool.
  Sequential& surrogate = zoo.surrogate_original(Arch::kMobileNet);
  const float agree = agreement(surrogate, ModelZoo::fn(adapted),
                                zoo.surrogate_set().images);
  std::printf("\nsurrogate/adapted prediction agreement: %.1f%%\n",
              100.0f * agree);

  // Step 2: whitebox DIVA against (surrogate, adapted).
  const auto orig_fn = ModelZoo::fn(original);
  const auto q8_fn = ModelZoo::fn(zoo.quantized(Arch::kMobileNet));
  const auto eval_idx = select_correct({orig_fn, q8_fn}, zoo.val_set(), 6);
  const Dataset eval = zoo.val_set().subset(eval_idx);

  AttackConfig acfg;
  acfg.epsilon = 16.0f / 255.0f;
  acfg.alpha = 2.0f / 255.0f;
  acfg.steps = 20;
  auto semi = make_attack("diva", {source(surrogate), source(adapted)},
                          {.cfg = acfg, .c = 1.0f});
  const Tensor adv = semi->perturb(eval.images, eval.labels);

  // Step 3: score against the TRUE original + deployed int8 model.
  const EvasionResult r =
      evaluate_evasion(orig_fn, q8_fn, eval.images, adv, eval.labels);
  std::printf("\nsemi-blackbox DIVA on %d images:\n", r.total);
  std::printf("  evasive top-1 success: %.1f%%\n", r.top1_rate());
  std::printf("  adapted-model fooled:  %.1f%%\n", r.attack_only_rate());
  std::printf("  original preserved:    %.1f%%\n",
              100.0f * r.orig_preserved / r.total);
  std::printf(
      "\nThe attack never touched the original model, yet evades it: the\n"
      "surrogate stood in for it during optimization (paper Fig. 5).\n");
  return 0;
}
