// Face-recognition attack scenario (paper §6 / Figure 9).
//
// A security camera runs an int8 face-recognition model; the vendor
// validates suspicious inputs against the full-precision original in
// the cloud. DIVA crafts a face image the camera misidentifies — even
// as a *chosen* other person (targeted variant) — while the cloud model
// still identifies it correctly.
//
// Run from the repository root:  ./build/examples/example_face_attack
#include <cstdio>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/zoo.h"

using namespace diva;

int main() {
  std::printf("== Face recognition attack (paper Sec. 6) ==\n\n");
  ZooConfig cfg;
  cfg.verbose = true;
  ModelZoo zoo(cfg);

  Sequential& cloud = zoo.face_original();
  Sequential& camera_qat = zoo.face_qat();
  const QuantizedModel& camera = zoo.face_quantized();
  const auto cloud_fn = ModelZoo::fn(cloud);
  const auto camera_fn = ModelZoo::fn(camera);

  std::printf("\ncloud model accuracy:  %.1f%%\n",
              100.0 * accuracy(cloud_fn, zoo.face_val()));
  std::printf("camera int8 accuracy:  %.1f%%\n",
              100.0 * accuracy(camera_fn, zoo.face_val()));

  // Victim: a correctly-recognized person.
  const auto idx = select_correct({cloud_fn, camera_fn}, zoo.face_val(), 1);
  const Dataset victim = zoo.face_val().subset({idx[0]});
  const int person = victim.labels[0];
  const int impostor = (person + 11) % zoo.config().face_identities;

  auto report = [&](const char* title, const Tensor& image) {
    const Tensor pc = softmax_rows(cloud_fn(image));
    const Tensor pq = softmax_rows(camera_fn(image));
    const int top_c = argmax_rows(pc)[0];
    const int top_q = argmax_rows(pq)[0];
    std::printf("  %-22s cloud: person %2d (%.1f%%)   camera: person %2d "
                "(%.1f%%)\n",
                title, top_c, 100.0f * pc.at(0, top_c), top_q,
                100.0f * pq.at(0, top_q));
  };

  std::printf("\nvictim is person %d; impostor target is person %d\n",
              person, impostor);
  report("natural:", victim.images);

  AttackConfig acfg;
  acfg.epsilon = 16.0f / 255.0f;
  acfg.alpha = 2.0f / 255.0f;
  acfg.steps = 20;

  // Untargeted evasive attack: camera misidentifies, cloud does not.
  const AttackTargets targets{source(cloud), source(camera_qat)};
  auto diva = make_attack("diva", targets, {.cfg = acfg, .c = 1.0f});
  const Tensor adv = diva->perturb(victim.images, victim.labels);
  report("DIVA (untargeted):", adv);

  // Targeted: push the camera specifically toward the impostor.
  auto targeted = make_attack(
      "targeted-diva", targets,
      {.cfg = acfg, .c = 1.0f, .k = 2.0f, .target = impostor});
  const Tensor adv_t = targeted->perturb(victim.images, victim.labels);
  report("DIVA (targeted):", adv_t);

  std::printf(
      "\nThe paper's Figure 9 shows exactly this: Nicolas Cage identified\n"
      "as Jerry Seinfeld by the quantized model with high confidence while\n"
      "the full-precision model still sees Nicolas Cage.\n");
  return 0;
}
