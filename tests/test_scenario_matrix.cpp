// Tests for the scenario-matrix runner: every cell of the
// {attack} x {original source} x {adapted source} grid is pinned —
// enumeration completeness, per-cell determinism (including the batched
// int8 column across engine widths), skip/error paths, JSON schema, and
// the paper's core sanity invariant (DIVA evades the deployed int8
// model while the true original keeps its prediction).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <set>
#include <string>

#include "attack/registry.h"
#include "core/evaluation.h"
#include "core/trainer.h"
#include "core/zoo.h"
#include "data/synth_digits.h"
#include "distill/distill.h"
#include "kernels/kernel_dispatch.h"
#include "models/factory.h"
#include "nn/fold_bn.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "quant/quantized_model.h"
#include "scenario/scenario.h"
#include "telemetry/telemetry.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"

namespace diva {
namespace {

using namespace diva::scenario;

/// Digit-track model pool: a trained original, a separately trained
/// float "adapted" model, the QAT twin folded from the original, the
/// compiled int8 artifact, and a surrogate distilled from the deployed
/// artifact over a disjoint image pool (§4.3) — one instance shared by
/// every test in this file.
struct MatrixFixture {
  Dataset train, val, disjoint;
  std::unique_ptr<Sequential> original;
  std::unique_ptr<Sequential> adapted_float;
  std::unique_ptr<Sequential> qat;
  std::unique_ptr<QuantizedModel> quantized;
  std::unique_ptr<Sequential> surrogate;
  std::unique_ptr<Sequential> qat_twin;
  std::unique_ptr<QuantizedModel> quantized_twin;
  std::unique_ptr<MovingTargetModel> mtd;
  std::unique_ptr<EarlyExitModel> early_exit;

  MatrixFixture() {
    SynthDigits gen(77);
    train = gen.generate(40, 0);
    val = gen.generate(12, 4000);
    disjoint = gen.generate(20, 8000);

    original = make_digit_net(NetMode::kFloat);
    init_parameters(*original, 11);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 12;
    train_classifier(*original, train, cfg);

    adapted_float = make_digit_net(NetMode::kFloat);
    init_parameters(*adapted_float, 13);
    TrainConfig cfg2 = cfg;
    cfg2.seed = 14;
    cfg2.epochs = 6;
    train_classifier(*adapted_float, train, cfg2);

    // Fold, calibrate, then QAT-finetune at a high rate so the adapted
    // twin measurably diverges from the original (the zoo's digit track
    // does the same; a straight fold leaves the pair nearly identical
    // and the evasive gap empty).
    qat = make_digit_net(NetMode::kQat);
    fold_batchnorm_into(*original, *qat);
    calibrate(*qat, {train.images});
    TrainConfig qcfg;
    qcfg.epochs = 2;
    qcfg.lr = 0.01f;
    qcfg.seed = 15;
    train_classifier(*qat, train, qcfg);
    quantized = std::make_unique<QuantizedModel>(QuantizedModel::compile(
        *qat, Shape{SynthDigits::kChannels, SynthDigits::kHeight,
                    SynthDigits::kWidth}));

    // The attacker's §4.3 move: distill a full-precision surrogate of
    // the original from the deployed artifact over a disjoint pool.
    surrogate = make_digit_net(NetMode::kFolded);
    fold_batchnorm_into(*original, *surrogate);
    DistillConfig dcfg;
    dcfg.epochs = 2;
    dcfg.lr = 0.01f;
    const QuantizedModel& q = *quantized;
    distill(*surrogate, [&q](const Tensor& x) { return q.forward(x); },
            disjoint.images, dcfg);

    // EI-MTD twin: same original, re-calibrated and re-finetuned on the
    // disjoint pool so the moving-target members genuinely differ.
    qat_twin = make_digit_net(NetMode::kQat);
    fold_batchnorm_into(*original, *qat_twin);
    calibrate(*qat_twin, {disjoint.images});
    TrainConfig tcfg;
    tcfg.epochs = 2;
    tcfg.lr = 0.01f;
    tcfg.seed = 16;
    train_classifier(*qat_twin, disjoint, tcfg);
    quantized_twin = std::make_unique<QuantizedModel>(QuantizedModel::compile(
        *qat_twin, Shape{SynthDigits::kChannels, SynthDigits::kHeight,
                         SynthDigits::kWidth}));

    mtd = std::make_unique<MovingTargetModel>(
        std::vector<const QuantizedModel*>{quantized.get(),
                                           quantized_twin.get()});
    // Early-exit head: the twin answers confident rows, the primary
    // artifact finishes the uncertain ones. Low margin so both paths
    // actually run on digit-scale logits.
    early_exit = std::make_unique<EarlyExitModel>(quantized_twin.get(),
                                                  quantized.get(), 0.5f);
  }

  ModelPool pool() {
    ModelPool p;
    p.original = original.get();
    p.surrogate = surrogate.get();
    p.adapted_float = adapted_float.get();
    p.adapted_qat = qat.get();
    p.quantized = quantized.get();
    p.mtd = mtd.get();
    p.early_exit = early_exit.get();
    return p;
  }
};

MatrixFixture& fixture() {
  static MatrixFixture f;
  return f;
}

/// Fast sweep config: tiny budget, probe counts, and no instrumented
/// second run unless a test opts in.
RunnerConfig quick_config(int steps = 2) {
  RunnerConfig cfg;
  cfg.spec.cfg.epsilon = 8.0f / 255.0f;
  cfg.spec.cfg.alpha = 2.0f / 255.0f;
  cfg.spec.cfg.steps = steps;
  cfg.fd.samples = 4;
  cfg.batched_threads = 2;
  cfg.shard_size = 2;
  cfg.measure_steps = false;
  cfg.attacks = {"pgd", "cw", "fgsm", "momentum-pgd", "diva",
                 "targeted-diva"};
  return cfg;
}

Dataset small_eval(int n) {
  std::vector<int> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  return fixture().val.subset(idx);
}

// ---------------------------------------------------------------------------
// Enumeration and full-matrix coverage.
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, EnumeratesEveryBuiltinCell) {
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const auto cells = matrix.enumerate();
  // 6 builtin attacks x 3 original rows x 10 adapted columns.
  EXPECT_EQ(cells.size(), 6u * 3u * 10u);
  std::set<std::string> keys;
  for (const CellSpec& c : cells) {
    keys.insert(c.attack + "|" + to_string(c.original) + "|" +
                to_string(c.adapted));
  }
  EXPECT_EQ(keys.size(), cells.size()) << "duplicate cells";
  EXPECT_TRUE(keys.count("diva|surrogate|int8-fd"));
  EXPECT_TRUE(keys.count("pgd|none|int8-batched"));
  // The probe-compression columns are first-class matrix cells.
  EXPECT_TRUE(keys.count("diva|float|int8-fd-sub"));
  EXPECT_TRUE(keys.count("pgd|none|int8-fd-sparse"));
  EXPECT_TRUE(keys.count("diva|surrogate|int8-fd-batch"));
  // So are the deployed-defense columns.
  EXPECT_TRUE(keys.count("pgd|none|int8-mtd"));
  EXPECT_TRUE(keys.count("diva|surrogate|int8-ee"));
}

TEST(ScenarioMatrix, RunAllEmitsOneRecordPerCellWithRowTraitSkips) {
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const Dataset eval = small_eval(4);
  const auto results = matrix.run_all(eval);
  ASSERT_EQ(results.size(), matrix.enumerate().size());

  int ran = 0, skipped = 0;
  for (const CellResult& r : results) {
    // Exactly one of (metrics, skip reason) per record.
    EXPECT_EQ(r.ran, r.skip_reason.empty());
    if (r.ran) {
      ++ran;
      EXPECT_EQ(r.total, 4);
      EXPECT_LE(r.linf, matrix.config().spec.cfg.epsilon + 1e-5f);
    } else {
      ++skipped;
    }
    const bool pair = attack_traits(r.cell.attack).needs_original;
    if (pair && r.cell.original == OriginalKind::kNone) {
      EXPECT_FALSE(r.ran) << r.cell.attack;
    }
    if (!pair && r.cell.original != OriginalKind::kNone) {
      EXPECT_FALSE(r.ran) << r.cell.attack;
    }
  }
  // Runnable cells: 4 single-model attacks on the 'none' row + 2 pair
  // attacks on the float and surrogate rows, times 10 columns each.
  EXPECT_EQ(ran, (4 + 2 * 2) * 10);
  EXPECT_EQ(skipped, static_cast<int>(results.size()) - ran);
}

TEST(ScenarioMatrix, SurrogateInt8CellsRun) {
  // The three previously-open ROADMAP cells must execute end-to-end.
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const Dataset eval = small_eval(4);
  for (const AdaptedKind adapted :
       {AdaptedKind::kInt8Ste, AdaptedKind::kInt8Fd, AdaptedKind::kInt8FdSub,
        AdaptedKind::kInt8FdSparse, AdaptedKind::kInt8FdBatch,
        AdaptedKind::kInt8Batched}) {
    const CellResult r =
        matrix.run_cell({"diva", OriginalKind::kSurrogate, adapted}, eval);
    ASSERT_TRUE(r.ran) << to_string(adapted) << ": " << r.skip_reason;
    EXPECT_EQ(r.total, 4);
    EXPECT_GT(r.images_per_sec, 0.0);
    EXPECT_LE(r.linf, matrix.config().spec.cfg.epsilon + 1e-5f);
    EXPECT_GE(r.mean_l2, 0.0f);
  }
}

// ---------------------------------------------------------------------------
// Determinism.
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, CellMetricsAreDeterministic) {
  RunnerConfig cfg = quick_config(3);
  cfg.measure_steps = true;
  const ScenarioMatrix matrix(fixture().pool(), cfg);
  const Dataset eval = small_eval(5);
  for (const CellSpec& cell :
       {CellSpec{"diva", OriginalKind::kFloat, AdaptedKind::kInt8Ste},
        CellSpec{"pgd", OriginalKind::kNone, AdaptedKind::kInt8Fd},
        CellSpec{"momentum-pgd", OriginalKind::kNone, AdaptedKind::kQat}}) {
    const CellResult a = matrix.run_cell(cell, eval);
    const CellResult b = matrix.run_cell(cell, eval);
    ASSERT_TRUE(a.ran) << a.skip_reason;
    EXPECT_EQ(a.evasion_top1_pct, b.evasion_top1_pct) << cell.attack;
    EXPECT_EQ(a.adapted_fooled_pct, b.adapted_fooled_pct) << cell.attack;
    EXPECT_EQ(a.orig_preserved_pct, b.orig_preserved_pct) << cell.attack;
    EXPECT_EQ(a.linf, b.linf) << cell.attack;
    EXPECT_EQ(a.mean_l2, b.mean_l2) << cell.attack;
    EXPECT_EQ(a.mean_steps_to_evade, b.mean_steps_to_evade) << cell.attack;
  }
}

TEST(ScenarioMatrix, CellMetricsAreDeterministicAtEveryIsaTier) {
  // Determinism is pinned PER ISA TIER, never across tiers: sgemm FMA
  // tiers reorder accumulation, so float-model metrics may differ
  // between tiers, but two runs at a fixed tier must agree bit-for-bit
  // (the igemm tiers are bit-identical to each other by policy; the
  // sgemm side is what makes this per-tier).
  const IsaTier orig_tier = active_isa_tier();
  RunnerConfig cfg = quick_config(3);
  const ScenarioMatrix matrix(fixture().pool(), cfg);
  const Dataset eval = small_eval(4);
  const CellSpec cell{"diva", OriginalKind::kFloat, AdaptedKind::kInt8Fd};
  for (const IsaTier tier : available_isa_tiers()) {
    force_isa_tier(tier);
    const CellResult a = matrix.run_cell(cell, eval);
    const CellResult b = matrix.run_cell(cell, eval);
    ASSERT_TRUE(a.ran) << a.skip_reason;
    EXPECT_EQ(a.evasion_top1_pct, b.evasion_top1_pct) << isa_tier_name(tier);
    EXPECT_EQ(a.adapted_fooled_pct, b.adapted_fooled_pct)
        << isa_tier_name(tier);
    EXPECT_EQ(a.linf, b.linf) << isa_tier_name(tier);
    EXPECT_EQ(a.mean_l2, b.mean_l2) << isa_tier_name(tier);
  }
  force_isa_tier(orig_tier);
}

TEST(ScenarioMatrix, BatchedCellIsEngineWidthInvariant) {
  // The int8-batched column must produce identical metrics whether the
  // engine runs 1, 2, or 4 worker threads (per-sample RNG streams +
  // fixed shard geometry).
  const Dataset eval = small_eval(6);
  const CellSpec cell{"diva", OriginalKind::kSurrogate,
                      AdaptedKind::kInt8Batched};
  RunnerConfig cfg = quick_config(3);
  cfg.batched_threads = 1;
  const CellResult base = ScenarioMatrix(fixture().pool(), cfg)
                              .run_cell(cell, eval);
  ASSERT_TRUE(base.ran) << base.skip_reason;
  for (const unsigned threads : {2u, 4u}) {
    cfg.batched_threads = threads;
    const CellResult r =
        ScenarioMatrix(fixture().pool(), cfg).run_cell(cell, eval);
    EXPECT_EQ(r.evasion_top1_pct, base.evasion_top1_pct) << threads;
    EXPECT_EQ(r.adapted_fooled_pct, base.adapted_fooled_pct) << threads;
    EXPECT_EQ(r.linf, base.linf) << threads;
    EXPECT_EQ(r.mean_l2, base.mean_l2) << threads;
    EXPECT_EQ(r.threads, threads);
  }
}

// ---------------------------------------------------------------------------
// Deployed-defense rows (EI-MTD moving target, early-exit dynamic).
// ---------------------------------------------------------------------------

TEST(DefenseModels, MovingTargetForwardIsBatchCompositionInvariant) {
  auto& f = fixture();
  const MovingTargetModel& mtd = *f.mtd;
  const Tensor& x = f.val.images;
  const Tensor whole = mtd.forward(x);
  const std::int64_t per = x.numel() / x.dim(0);

  // Row-wise forwards (the worst-case shard geometry) must reproduce
  // the whole-batch bytes: member choice is a pure content hash.
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    Tensor row(Shape{1, x.dim(1), x.dim(2), x.dim(3)});
    std::memcpy(row.raw(), x.raw() + i * per,
                sizeof(float) * static_cast<std::size_t>(per));
    const Tensor one = mtd.forward(row);
    for (std::int64_t j = 0; j < whole.dim(1); ++j) {
      ASSERT_EQ(whole.at(i, j), one.at(0, j)) << "row " << i;
    }
    const std::size_t m = mtd.member_for(x.raw() + i * per, per);
    EXPECT_LT(m, mtd.num_members());
    EXPECT_EQ(m, mtd.member_for(row.raw(), per));
  }

  // The hash must actually spread traffic — a pool where one member
  // serves everything is not a moving target.
  std::set<std::size_t> used;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    used.insert(mtd.member_for(x.raw() + i * per, per));
  }
  EXPECT_GT(used.size(), 1u);
}

TEST(DefenseModels, EarlyExitRoutesPerRowDeterministically) {
  auto& f = fixture();
  const EarlyExitModel& ee = *f.early_exit;
  const Tensor& x = f.val.images;
  const Tensor whole = ee.forward(x);
  EXPECT_EQ(max_abs(sub(whole, ee.forward(x))), 0.0f);

  // Each row's logits come from exactly the head exits_early() names:
  // the early twin when its top-2 margin clears the threshold, the full
  // artifact otherwise.
  const Tensor early_logits = f.quantized_twin->forward(x);
  const Tensor full_logits = f.quantized->forward(x);
  const std::int64_t classes = whole.dim(1);
  int early_rows = 0;
  for (std::int64_t i = 0; i < x.dim(0); ++i) {
    const bool early =
        ee.exits_early(early_logits.raw() + i * classes, classes);
    early_rows += early ? 1 : 0;
    const Tensor& want = early ? early_logits : full_logits;
    for (std::int64_t j = 0; j < classes; ++j) {
      ASSERT_EQ(whole.at(i, j), want.at(i, j))
          << "row " << i << (early ? " (early)" : " (full)");
    }
  }
  // The margin is tuned so the exit is genuinely input-dependent on
  // this fixture: neither path should swallow the whole batch.
  EXPECT_GT(early_rows, 0);
  EXPECT_LT(early_rows, static_cast<int>(x.dim(0)));
}

TEST(ScenarioMatrix, DefenseCellsRunDeterministicallyWithQueryAccounting) {
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const Dataset eval = small_eval(4);
  for (const AdaptedKind adapted :
       {AdaptedKind::kInt8Mtd, AdaptedKind::kInt8EarlyExit}) {
    const CellResult a =
        matrix.run_cell({"pgd", OriginalKind::kNone, adapted}, eval);
    const CellResult b =
        matrix.run_cell({"pgd", OriginalKind::kNone, adapted}, eval);
    ASSERT_TRUE(a.ran) << to_string(adapted) << ": " << a.skip_reason;
    EXPECT_EQ(a.total, 4);
    EXPECT_LE(a.linf, matrix.config().spec.cfg.epsilon + 1e-5f);
    EXPECT_EQ(a.evasion_top1_pct, b.evasion_top1_pct) << to_string(adapted);
    EXPECT_EQ(a.adapted_fooled_pct, b.adapted_fooled_pct)
        << to_string(adapted);
    EXPECT_EQ(a.orig_preserved_pct, b.orig_preserved_pct)
        << to_string(adapted);
    EXPECT_EQ(a.linf, b.linf) << to_string(adapted);
    EXPECT_EQ(a.mean_l2, b.mean_l2) << to_string(adapted);

    if (!telemetry::kCompiledIn) continue;
    EXPECT_GT(a.deployed_queries, 0u) << to_string(adapted);
    if (adapted == AdaptedKind::kInt8Mtd) {
      // Per-member query accounting: every member's share is recorded
      // and the split is reproducible.
      ASSERT_EQ(a.mtd_member_queries.size(), fixture().mtd->num_members());
      std::uint64_t sum = 0;
      for (const std::uint64_t q : a.mtd_member_queries) sum += q;
      EXPECT_GT(sum, 0u);
      EXPECT_EQ(b.mtd_member_queries, a.mtd_member_queries);
    } else {
      EXPECT_GT(a.ee_early_rows + a.ee_full_rows, 0u);
      EXPECT_EQ(a.ee_early_rows, b.ee_early_rows);
      EXPECT_EQ(a.ee_full_rows, b.ee_full_rows);
    }
  }
}

TEST(ScenarioMatrix, DefenseCellsAreEngineGeometryInvariant) {
  // Engine-geometry knobs (batched worker threads, shard size) must not
  // change defense-row results: member choice and exit routing are
  // per-row content functions.
  const Dataset eval = small_eval(4);
  RunnerConfig narrow = quick_config();
  narrow.batched_threads = 1;
  narrow.shard_size = 1;
  RunnerConfig wide = quick_config();
  wide.batched_threads = 4;
  wide.shard_size = 4;
  for (const AdaptedKind adapted :
       {AdaptedKind::kInt8Mtd, AdaptedKind::kInt8EarlyExit}) {
    const CellResult a = ScenarioMatrix(fixture().pool(), narrow)
                             .run_cell({"pgd", OriginalKind::kNone, adapted},
                                       eval);
    const CellResult b = ScenarioMatrix(fixture().pool(), wide)
                             .run_cell({"pgd", OriginalKind::kNone, adapted},
                                       eval);
    ASSERT_TRUE(a.ran) << a.skip_reason;
    EXPECT_EQ(a.evasion_top1_pct, b.evasion_top1_pct) << to_string(adapted);
    EXPECT_EQ(a.adapted_fooled_pct, b.adapted_fooled_pct)
        << to_string(adapted);
    EXPECT_EQ(a.linf, b.linf) << to_string(adapted);
    EXPECT_EQ(a.mean_l2, b.mean_l2) << to_string(adapted);
  }
}

TEST(ScenarioMatrix, CompressedColumnsResolveLeversAndCountQueries) {
  // Column -> lever resolution: each compressed column switches exactly
  // its lever on (with the documented default strength) and leaves the
  // base column untouched.
  const FdConfig base;
  EXPECT_EQ(resolved_fd_for(AdaptedKind::kInt8FdSub, base).subspace_dim,
            kDefaultFdSubspaceDim);
  EXPECT_EQ(resolved_fd_for(AdaptedKind::kInt8FdSparse, base).sparsity,
            kDefaultFdSparsity);
  EXPECT_TRUE(resolved_fd_for(AdaptedKind::kInt8FdBatch, base).batch_probes);
  EXPECT_EQ(resolved_fd_for(AdaptedKind::kInt8Fd, base).subspace_dim, 0);
  EXPECT_EQ(resolved_fd_for(AdaptedKind::kInt8Fd, base).sparsity, 1.0f);
  // An explicit user lever wins over the column default.
  FdConfig custom;
  custom.subspace_dim = 4;
  EXPECT_EQ(resolved_fd_for(AdaptedKind::kInt8FdSub, custom).subspace_dim, 4);

  // A compressed cell runs end-to-end and records its deployed-query
  // cost from telemetry.
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const CellResult r = matrix.run_cell(
      {"pgd", OriginalKind::kNone, AdaptedKind::kInt8FdSub}, small_eval(3));
  ASSERT_TRUE(r.ran) << r.skip_reason;
  EXPECT_GT(r.deployed_queries, 0u);
  EXPECT_GT(r.probe_rows, 0u);
  EXPECT_GT(r.probe_forwards, 0u);
  EXPECT_GE(r.deployed_queries, r.probe_rows)
      << "probe rows are deployed queries";
}

// ---------------------------------------------------------------------------
// Skip and error paths.
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, MissingPoolModelsProduceSkipReasons) {
  ModelPool pool = fixture().pool();
  pool.surrogate = nullptr;
  pool.quantized = nullptr;
  const ScenarioMatrix matrix(pool, quick_config());

  const CellResult surro = matrix.run_cell(
      {"diva", OriginalKind::kSurrogate, AdaptedKind::kQat}, small_eval(2));
  EXPECT_FALSE(surro.ran);
  EXPECT_NE(surro.skip_reason.find("surrogate"), std::string::npos);

  for (const AdaptedKind adapted :
       {AdaptedKind::kInt8Ste, AdaptedKind::kInt8Fd, AdaptedKind::kInt8FdSub,
        AdaptedKind::kInt8FdSparse, AdaptedKind::kInt8FdBatch,
        AdaptedKind::kInt8Batched}) {
    const CellResult r = matrix.run_cell(
        {"pgd", OriginalKind::kNone, adapted}, small_eval(2));
    EXPECT_FALSE(r.ran) << to_string(adapted);
    EXPECT_NE(r.skip_reason.find("quantized"), std::string::npos)
        << to_string(adapted);
  }

  // Defense columns need their wrappers, not the bare artifact.
  ModelPool no_defense = fixture().pool();
  no_defense.mtd = nullptr;
  no_defense.early_exit = nullptr;
  const ScenarioMatrix undefended(no_defense, quick_config());
  const CellResult mtd_skip = undefended.run_cell(
      {"pgd", OriginalKind::kNone, AdaptedKind::kInt8Mtd}, small_eval(2));
  EXPECT_FALSE(mtd_skip.ran);
  EXPECT_NE(mtd_skip.skip_reason.find("moving-target"), std::string::npos);
  const CellResult ee_skip = undefended.run_cell(
      {"pgd", OriginalKind::kNone, AdaptedKind::kInt8EarlyExit},
      small_eval(2));
  EXPECT_FALSE(ee_skip.ran);
  EXPECT_NE(ee_skip.skip_reason.find("early-exit"), std::string::npos);

  // A pool with no true original cannot score anything.
  ModelPool no_orig = fixture().pool();
  no_orig.original = nullptr;
  const CellResult r = ScenarioMatrix(no_orig, quick_config())
                           .run_cell({"pgd", OriginalKind::kNone,
                                      AdaptedKind::kQat},
                                     small_eval(2));
  EXPECT_FALSE(r.ran);
  EXPECT_NE(r.skip_reason.find("original"), std::string::npos);
}

TEST(ScenarioMatrix, FactoryRejectionBecomesASkipRecordNotAnAbort) {
  // A kind registered via the traits-less overload declares no source
  // requirements, so the grid enumerates it on the 'none' row; if its
  // factory then demands an original source, the cell must downgrade to
  // a record instead of killing the sweep.
  register_attack("test-pair-no-traits",
                  [](const AttackTargets& t, const AttackSpec& s) {
                    DIVA_CHECK(t.original != nullptr,
                               "test-pair-no-traits needs an original-model "
                               "source");
                    return std::make_unique<IteratedAttack>(
                        "PairNoTraits",
                        std::vector<std::shared_ptr<GradSource>>{t.original,
                                                                 t.adapted},
                        std::make_shared<DivaObjective>(s.c), s.cfg);
                  });
  RunnerConfig cfg = quick_config();
  cfg.attacks = {"test-pair-no-traits"};
  const ScenarioMatrix matrix(fixture().pool(), cfg);
  const CellResult r = matrix.run_cell(
      {"test-pair-no-traits", OriginalKind::kNone, AdaptedKind::kQat},
      small_eval(2));
  EXPECT_FALSE(r.ran);
  EXPECT_NE(r.skip_reason.find("construction failed"), std::string::npos);
  EXPECT_NE(r.skip_reason.find("needs an original-model source"),
            std::string::npos);
  // Undeclared traits must not lock the kind out of the original rows:
  // with an original source wired, the same kind actually runs.
  const CellResult ok = matrix.run_cell(
      {"test-pair-no-traits", OriginalKind::kFloat, AdaptedKind::kQat},
      small_eval(2));
  EXPECT_TRUE(ok.ran) << ok.skip_reason;
  // The whole-grid sweep must also complete rather than abort.
  const auto all = matrix.run_all(small_eval(2));
  EXPECT_EQ(all.size(), 1u * 3u * 10u);  // sweep completed, no abort
}

TEST(ScenarioMatrix, UnknownAttackKindThrowsNotSkips) {
  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const CellSpec bogus{"no-such-attack", OriginalKind::kNone,
                       AdaptedKind::kQat};
  EXPECT_THROW((void)matrix.skip_reason(bogus), Error);
  EXPECT_THROW((void)matrix.run_cell(bogus, small_eval(2)), Error);
}

TEST(ScenarioMatrix, RejectsUserStepCallbacksAndEmptyEvalSets) {
  // The runner owns per-step instrumentation; a caller callback would
  // also silently de-parallelize the batched column.
  RunnerConfig cfg = quick_config();
  cfg.spec.cfg.step_callback = [](int, const Tensor&) {};
  EXPECT_THROW(ScenarioMatrix(fixture().pool(), cfg), Error);

  const ScenarioMatrix matrix(fixture().pool(), quick_config());
  const Dataset empty = fixture().val.subset({});
  EXPECT_THROW((void)matrix.run_cell(
                   {"pgd", OriginalKind::kNone, AdaptedKind::kQat}, empty),
               Error);
}

// ---------------------------------------------------------------------------
// Sanity invariants (the paper's core claim, in miniature).
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, DivaEvadesInt8WhileOriginalHolds) {
  auto& f = fixture();
  // Paper-style eval set: samples every scored model gets right.
  const QuantizedModel& q = *f.quantized;
  const auto idx = select_correct(
      {ModelZoo::fn(*f.original), [&q](const Tensor& x) { return q.forward(x); }},
      f.val, 3);
  ASSERT_GE(idx.size(), 4u);
  const Dataset eval = f.val.subset(idx);

  RunnerConfig cfg = quick_config(20);
  cfg.spec.cfg.epsilon = 16.0f / 255.0f;
  cfg.spec.cfg.alpha = 2.0f / 255.0f;
  cfg.measure_steps = true;
  const ScenarioMatrix matrix(f.pool(), cfg);
  const CellResult r = matrix.run_cell(
      {"diva", OriginalKind::kFloat, AdaptedKind::kInt8Ste}, eval);
  ASSERT_TRUE(r.ran) << r.skip_reason;

  // DIVA must flip the deployed int8 model on a meaningful share of
  // samples while the true original keeps most predictions — the
  // evasive-attack definition (§5.1).
  SCOPED_TRACE("fooled=" + std::to_string(r.adapted_fooled_pct) +
               " preserved=" + std::to_string(r.orig_preserved_pct) +
               " evasion=" + std::to_string(r.evasion_top1_pct));
  EXPECT_GT(r.adapted_fooled_pct, 25.0f);
  EXPECT_GE(r.orig_preserved_pct, 50.0f);
  EXPECT_GT(r.evasion_top1_pct, 0.0f);
  // Joint success can never exceed either marginal.
  EXPECT_LE(r.evasion_top1_pct,
            std::min(r.adapted_fooled_pct, r.orig_preserved_pct) + 1e-4f);
  // Instrumented run agrees with the scored one about what evaded.
  EXPECT_GT(r.mean_steps_to_evade, 0.0f);
  EXPECT_LE(r.mean_steps_to_evade, static_cast<float>(cfg.spec.cfg.steps));
}

// ---------------------------------------------------------------------------
// JSON records.
// ---------------------------------------------------------------------------

TEST(ScenarioMatrix, JsonRecordCarriesTheSchema) {
  RunnerConfig cfg = quick_config();
  const ScenarioMatrix matrix(fixture().pool(), cfg);
  const CellResult ok = matrix.run_cell(
      {"diva", OriginalKind::kSurrogate, AdaptedKind::kInt8Fd},
      small_eval(3));
  ASSERT_TRUE(ok.ran) << ok.skip_reason;
  const std::string json = to_json(ok, cfg);
  for (const char* key :
       {"\"bench\":\"scenario_matrix\"", "\"isa_tier\":\"",
        "\"cpu_flags\":\"", "\"attack\":\"diva\"",
        "\"original\":\"surrogate\"", "\"adapted\":\"int8-fd\"",
        "\"status\":\"ok\"", "\"epsilon\":", "\"steps\":", "\"fd_samples\":",
        "\"total\":3", "\"evasion_top1_pct\":", "\"adapted_fooled_pct\":",
        "\"orig_preserved_pct\":", "\"linf\":", "\"mean_l2\":",
        "\"mean_steps_to_evade\":", "\"fd_subspace_dim\":0",
        "\"fd_sparsity\":1.000", "\"fd_batch_probes\":false",
        "\"deployed_queries\":", "\"probe_rows\":", "\"probe_forwards\":",
        "\"queries_per_fooled\":", "\"seconds\":", "\"images_per_sec\":",
        "\"threads\":1"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }

  // Defense cells append their accounting fields to the record.
  const CellResult mtd_cell = matrix.run_cell(
      {"pgd", OriginalKind::kNone, AdaptedKind::kInt8Mtd}, small_eval(3));
  ASSERT_TRUE(mtd_cell.ran) << mtd_cell.skip_reason;
  const std::string mjson = to_json(mtd_cell, cfg);
  EXPECT_NE(mjson.find("\"adapted\":\"int8-mtd\""), std::string::npos);
  EXPECT_NE(mjson.find("\"mtd_member_queries\":["), std::string::npos);

  const CellResult ee_cell = matrix.run_cell(
      {"pgd", OriginalKind::kNone, AdaptedKind::kInt8EarlyExit},
      small_eval(3));
  ASSERT_TRUE(ee_cell.ran) << ee_cell.skip_reason;
  const std::string ejson = to_json(ee_cell, cfg);
  EXPECT_NE(ejson.find("\"adapted\":\"int8-ee\""), std::string::npos);
  EXPECT_NE(ejson.find("\"ee_early_rows\":"), std::string::npos);
  EXPECT_NE(ejson.find("\"ee_full_rows\":"), std::string::npos);

  const CellResult skip = matrix.run_cell(
      {"diva", OriginalKind::kNone, AdaptedKind::kQat}, small_eval(3));
  ASSERT_FALSE(skip.ran);
  const std::string sjson = to_json(skip, cfg);
  EXPECT_NE(sjson.find("\"status\":\"skipped\""), std::string::npos);
  EXPECT_NE(sjson.find("\"reason\":\""), std::string::npos);
  EXPECT_EQ(sjson.find("images_per_sec"), std::string::npos)
      << "skipped records carry no metrics";
}

}  // namespace
}  // namespace diva
