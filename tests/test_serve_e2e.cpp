// Loopback end-to-end tests for the attack server (ctest label: serve,
// not tier1 — they fork worker processes and bind AF_UNIX sockets).
//
// The model pool is untrained (init + calibrate + compile): every
// property under test — cross-process bit-determinism, verdict
// consistency, failure paths — is independent of model accuracy, and
// an untrained pool keeps the suite seconds-fast.
#include <signal.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "models/factory.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "serve/client.h"
#include "serve/server.h"
#include "telemetry/telemetry.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"

namespace diva::serve {
namespace {

using scenario::AdaptedKind;
using scenario::OriginalKind;

class ServeE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = make_digit_net(NetMode::kFloat);
    init_parameters(*original_, 401);
    original_->set_training(false);
    qat_ = make_digit_net(NetMode::kQat);
    init_parameters(*qat_, 402);
    calibrate(*qat_,
              {testing::random_tensor(Shape{4, 1, 28, 28}, 403, 0.0f, 1.0f)});
    quantized_ = std::make_unique<QuantizedModel>(
        QuantizedModel::compile(*qat_, Shape{1, 28, 28}));
    pool_.original = original_.get();
    pool_.adapted_qat = qat_.get();
    pool_.quantized = quantized_.get();

    images_ = testing::random_tensor(Shape{12, 1, 28, 28}, 404, 0.0f, 1.0f);
    labels_.clear();
    for (int i = 0; i < 12; ++i) labels_.push_back(i % 10);
  }

  std::string socket_path(const char* tag) const {
    return "/tmp/diva_e2e_" + std::string(tag) + "_" +
           std::to_string(getpid()) + ".sock";
  }

  ServeConfig config(const char* tag, unsigned workers) const {
    ServeConfig cfg;
    cfg.socket_path = socket_path(tag);
    cfg.workers = workers;
    cfg.worker_threads = 2;
    cfg.shard_size = 4;
    cfg.coalesce_window = std::chrono::microseconds(0);
    return cfg;
  }

  AttackRequest request(int steps = 4) const {
    AttackRequest req;
    req.attack = "pgd";
    req.original = OriginalKind::kNone;
    req.adapted = AdaptedKind::kInt8Ste;
    req.spec.cfg.epsilon = 0.05f;
    req.spec.cfg.alpha = 0.01f;
    req.spec.cfg.steps = steps;
    req.spec.cfg.random_start = true;
    req.spec.cfg.seed = 77;
    req.images = images_;
    req.labels = labels_;
    return req;
  }

  /// The sequential ground truth the served result must match bit for
  /// bit: one Attack::perturb call in this process.
  Tensor sequential_reference(const AttackRequest& req) const {
    const AttackTargets targets{
        scenario::make_original_source(pool_, req.original),
        scenario::make_adapted_source(pool_, req.adapted, {})};
    const auto attack = make_attack(req.attack, targets, req.spec);
    return attack->perturb(req.images, req.labels);
  }

  std::unique_ptr<Sequential> original_, qat_;
  std::unique_ptr<QuantizedModel> quantized_;
  scenario::ModelPool pool_;
  Tensor images_;
  std::vector<int> labels_;
};

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.raw(), b.raw(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

TEST_F(ServeE2eTest, LoopbackSmokeServesFourRequests) {
  AttackServer server(pool_, config("smoke", 2));
  server.start();
  {
    AttackClient client(server.config().socket_path);
    std::vector<std::uint64_t> ids;
    for (int r = 0; r < 4; ++r) ids.push_back(client.submit(request()));
    for (const std::uint64_t id : ids) {
      const ServedResult result = client.wait(id);
      ASSERT_EQ(result.verdicts.size(), labels_.size());
      ASSERT_TRUE(result.adv.shape() == images_.shape());

      // Perturbation stayed inside the L-inf ball.
      float linf = 0.0f;
      for (std::int64_t i = 0; i < result.adv.numel(); ++i) {
        linf = std::max(linf,
                        std::abs(result.adv.raw()[i] - images_.raw()[i]));
      }
      EXPECT_LE(linf, 0.05f + 1e-6f);

      // Server verdicts must agree with scoring the returned tensor
      // locally against the same pool.
      const auto orig_pred = argmax_rows(original_->forward(result.adv));
      const auto dep_pred = argmax_rows(
          scenario::deployed_model_fn(pool_, AdaptedKind::kInt8Ste)(
              result.adv));
      for (std::size_t i = 0; i < labels_.size(); ++i) {
        EXPECT_EQ(result.verdicts[i].fooled, dep_pred[i] != labels_[i]);
        EXPECT_EQ(result.verdicts[i].preserved, orig_pred[i] == labels_[i]);
        EXPECT_EQ(result.verdicts[i].evaded, result.verdicts[i].fooled &&
                                                 result.verdicts[i].preserved);
      }
    }
  }
  server.stop();
}

TEST_F(ServeE2eTest, ServedResultIsBitIdenticalAcrossWorkerCounts) {
  // Cross-process bit-determinism holds because every forked worker
  // resolves the same kernel ISA tier as this parent (same host CPU,
  // same inherited DIVA_ISA_MAX). It is pinned per tier, never across
  // tiers: re-running the suite under a different DIVA_ISA_MAX changes
  // the sgemm accumulation order, and served bytes may legitimately
  // differ from a run at another tier (kernels/kernel_dispatch.h).
  const AttackRequest req = request();
  const Tensor reference = sequential_reference(req);
  for (const unsigned workers : {1u, 2u, 4u}) {
    AttackServer server(pool_, config("det", workers));
    server.start();
    {
      AttackClient client(server.config().socket_path);
      const ServedResult result = client.run(req);
      EXPECT_TRUE(bit_identical(result.adv, reference))
          << "served result diverged from the sequential run at workers="
          << workers;
      if (workers > 1) {
        EXPECT_GE(result.shard_workers.size(), 1u);
      }
    }
    server.stop();
  }
}

TEST_F(ServeE2eTest, KilledWorkerJobsAreRequeuedAndStayDeterministic) {
  const AttackRequest req = request(/*steps=*/12);
  const Tensor reference = sequential_reference(req);

  AttackServer server(pool_, config("kill", 2));
  server.start();
  const auto pids = server.worker_pids();
  ASSERT_EQ(pids.size(), 2u);
  {
    AttackClient client(server.config().socket_path);
    std::vector<std::uint64_t> ids;
    for (int r = 0; r < 4; ++r) ids.push_back(client.submit(req));
    // Kill a worker while its jobs are (very likely) in flight; the
    // dispatcher must requeue them and every request must still finish
    // with the sequential answer.
    ASSERT_EQ(kill(pids[0], SIGKILL), 0);
    for (const std::uint64_t id : ids) {
      const ServedResult result = client.wait(id);
      EXPECT_TRUE(bit_identical(result.adv, reference))
          << "request " << id << " diverged after the worker kill";
    }
  }
  server.stop();
}

TEST_F(ServeE2eTest, StatsSurviveASigkilledWorker) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const AttackRequest req = request(/*steps=*/8);

  AttackServer server(pool_, config("stats", 2));
  server.start();
  {
    AttackClient client(server.config().socket_path);
    // Telemetry is process-global and earlier tests in this binary also
    // serve requests, so everything is asserted as a delta from here.
    const telemetry::Snapshot snap0 = client.stats();
    const auto get = [](const telemetry::Snapshot& s, const char* name) {
      const auto it = s.counters.find(name);
      return it == s.counters.end() ? std::uint64_t{0} : it->second;
    };
    const auto hist_count = [](const telemetry::Snapshot& s,
                               const char* name) {
      const auto it = s.histograms.find(name);
      return it == s.histograms.end() ? std::uint64_t{0} : it->second.count;
    };

    // Warm batch: every worker has shipped at least one stats trailer.
    for (int r = 0; r < 4; ++r) (void)client.wait(client.submit(req));
    const telemetry::Snapshot snap1 =
        telemetry::diff(client.stats(), snap0);
    EXPECT_EQ(get(snap1, "serve.requests.completed"), 4u);
    // Worker-side accounting made it over the pipe: the deployed
    // artifact's query counter reflects forked-worker forwards.
    EXPECT_GT(get(snap1, "quant.forward.rows"), 0u);
    EXPECT_EQ(hist_count(snap1, "serve.request_us"), 4u);

    // Kill one worker. Its already-shipped counters must survive the
    // reap (folded into the retired bucket), and the restarted worker
    // keeps accumulating.
    const auto pids = server.worker_pids();
    ASSERT_EQ(pids.size(), 2u);
    ASSERT_EQ(kill(pids[0], SIGKILL), 0);
    for (int r = 0; r < 4; ++r) (void)client.wait(client.submit(req));

    const telemetry::Snapshot snap2 =
        telemetry::diff(client.stats(), snap0);
    EXPECT_EQ(get(snap2, "serve.requests.completed"), 8u);
    EXPECT_GE(get(snap2, "serve.worker.restarts"), 1u);
    // Merged totals are monotone across the kill: nothing the dead
    // worker had already reported was lost.
    EXPECT_GE(get(snap2, "quant.forward.rows"),
              get(snap1, "quant.forward.rows"));
    EXPECT_EQ(hist_count(snap2, "serve.request_us"), 8u);
  }
  server.stop();
}

TEST_F(ServeE2eTest, MalformedRequestsAreRejectedWithoutCrashingWorkers) {
  AttackServer server(pool_, config("reject", 2));
  server.start();
  {
    AttackClient client(server.config().socket_path);

    AttackRequest unknown = request();
    unknown.attack = "nope";
    try {
      client.run(unknown);
      FAIL() << "unknown attack kind was accepted";
    } catch (const Error& e) {
      EXPECT_NE(std::string(e.what()).find("unknown attack kind 'nope'"),
                std::string::npos);
    }

    AttackRequest no_original = request();
    no_original.attack = "diva";  // needs an original; request has none
    const AttackTargets targets{
        nullptr, scenario::make_adapted_source(pool_, no_original.adapted, {})};
    const std::string expected = validate_attack_targets("diva", targets);
    ASSERT_NE(expected, "");
    try {
      client.run(no_original);
      FAIL() << "diva without an original source was accepted";
    } catch (const Error& e) {
      EXPECT_EQ(std::string(e.what()), expected);
    }

    AttackRequest batched = request();
    batched.adapted = AdaptedKind::kInt8Batched;
    EXPECT_THROW(client.run(batched), Error);

    // The server (and its workers) must still be fully serviceable.
    const ServedResult ok = client.run(request());
    EXPECT_EQ(ok.verdicts.size(), labels_.size());
  }
  const auto pids = server.worker_pids();
  EXPECT_EQ(pids.size(), 2u);  // nobody crashed
  server.stop();
}

TEST_F(ServeE2eTest, AcceptLoopSurvivesFdExhaustion) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  AttackServer server(pool_, config("emfile", 1));
  server.start();

  // The front-end runs in this process, so its transient-error counter
  // is readable straight from process-global telemetry.
  const auto transient_errors = [] {
    const telemetry::Snapshot s = telemetry::snapshot();
    const auto it = s.counters.find("serve.accept.transient_errors");
    return it == s.counters.end() ? std::uint64_t{0} : it->second;
  };
  const std::uint64_t before = transient_errors();

  // Pre-open the client socket, then exhaust the fd table (under a
  // lowered RLIMIT_NOFILE so the fill is bounded). connect() needs no
  // new fd, so the handshake sits in the listen backlog while every
  // accept() in the server fails with EMFILE.
  const int cfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(cfd, 0);
  rlimit orig{};
  ASSERT_EQ(getrlimit(RLIMIT_NOFILE, &orig), 0);
  rlimit low = orig;
  low.rlim_cur = 128;
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &low), 0);
  std::vector<int> hogs;
  for (;;) {
    const int fd = ::dup(cfd);
    if (fd < 0) break;
    hogs.push_back(fd);
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server.config().socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(cfd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  // The accept loop must be counting transient failures and retrying,
  // not exiting (the pre-fix behaviour killed the listener thread here).
  bool bumped = false;
  for (int i = 0; i < 500 && !bumped; ++i) {
    bumped = transient_errors() > before;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  for (const int fd : hogs) ::close(fd);
  ASSERT_EQ(setrlimit(RLIMIT_NOFILE, &orig), 0);
  EXPECT_TRUE(bumped) << "accept() never reported a transient error";

  // Pressure gone: the backlogged connection gets accepted and served.
  write_frame(cfd, encode_stats_request());
  MsgType type;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(cfd, &type, &payload));
  EXPECT_EQ(type, MsgType::kStatsReply);
  ::close(cfd);

  // Fresh connections work too — the listener survived the storm.
  {
    AttackClient client(server.config().socket_path);
    const ServedResult ok = client.run(request());
    EXPECT_EQ(ok.verdicts.size(), labels_.size());
  }
  EXPECT_TRUE(server.running());
  server.stop();
}

TEST_F(ServeE2eTest, ConnectionChurnDoesNotAccumulateDeadReaders) {
  // Short-lived clients leave dead ClientConn records behind; the
  // accept thread must reap them (join reader, close fd) instead of
  // holding every thread until stop(). The sanitize CI job runs this
  // under ASan, which turns any join/close race into a hard failure.
  AttackServer server(pool_, config("churn", 1));
  server.start();
  for (int i = 0; i < 24; ++i) {
    AttackClient client(server.config().socket_path);
    (void)client.stats();
  }
  // Give the readers a beat to observe the disconnects...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  {
    // ...then one more accept reaps them before tracking the new conn.
    AttackClient client(server.config().socket_path);
    (void)client.stats();
    EXPECT_LE(server.live_conns(), 2u);
  }
  server.stop();
}

}  // namespace
}  // namespace diva::serve
