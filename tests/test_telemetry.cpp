// Telemetry subsystem tests (labels: tier1, telemetry).
//
// Covers the accounting the paper's query-budget story depends on:
// counters stay exact under thread contention, the runtime kill switch
// is a true no-op, histogram quantiles stay inside the log-linear
// bucket error bound, snapshots merge/diff exactly, the chrome-trace
// exporter emits valid JSON, kernel MAC/packed-byte counters match
// analytic counts at every compiled ISA tier, and FD/SPSA probe
// counters match the configured query budget exactly (the Table 2
// cost axis).
#include <algorithm>
#include <cctype>
#include <cstring>
#include <numeric>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "attack/engine.h"
#include "attack/registry.h"
#include "kernels/gemm.h"
#include "kernels/igemm.h"
#include "kernels/kernel_dispatch.h"
#include "models/factory.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "telemetry/telemetry.h"
#include "telemetry/trace.h"
#include "test_helpers.h"

namespace diva {
namespace {

using telemetry::Snapshot;
using testing::random_tensor;

/// Re-enables telemetry even when an assertion fails mid-test.
struct EnabledGuard {
  explicit EnabledGuard(bool on) { telemetry::set_enabled(on); }
  ~EnabledGuard() { telemetry::set_enabled(true); }
};

std::uint64_t counter_delta(const Snapshot& now, const Snapshot& base,
                            const std::string& name) {
  const auto get = [&](const Snapshot& s) -> std::uint64_t {
    const auto it = s.counters.find(name);
    return it == s.counters.end() ? 0 : it->second;
  };
  return get(now) - get(base);
}

std::uint64_t hist_count_delta(const Snapshot& now, const Snapshot& base,
                               const std::string& name) {
  const auto get = [&](const Snapshot& s) -> std::uint64_t {
    const auto it = s.histograms.find(name);
    return it == s.histograms.end() ? 0 : it->second.count;
  };
  return get(now) - get(base);
}

// ---------------------------------------------------------------------------
// Minimal recursive-descent JSON validator (structure only, no DOM):
// enough to certify the exporter output parses, without a JSON dep.
// ---------------------------------------------------------------------------

class JsonValidator {
 public:
  explicit JsonValidator(const std::string& text) : s_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    const std::size_t len = std::strlen(lit);
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(Telemetry, CounterExactUnderContention) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Counter& c = telemetry::counter("test.contended_counter");
  const std::uint64_t before = c.value();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 50'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.add(3);
    });
  }
  for (auto& t : threads) t.join();
  // Shard-local relaxed adds must still sum exactly — no lost updates.
  EXPECT_EQ(c.value() - before, kThreads * kPerThread * 3);
}

TEST(Telemetry, DisabledModeIsATrueNoOp) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Counter& c = telemetry::counter("test.disabled_counter");
  telemetry::Histogram& h = telemetry::histogram("test.disabled_hist_us");
  const std::uint64_t c_before = c.value();
  const std::uint64_t h_before = h.data().count;
  {
    EnabledGuard off(false);
    EXPECT_FALSE(telemetry::enabled());
    c.add(100);
    h.record(42);
    DIVA_TELEM_COUNT("test.disabled_counter", 5);
    DIVA_TELEM_RECORD("test.disabled_hist_us", 7);
    EXPECT_EQ(c.value(), c_before);
    EXPECT_EQ(h.data().count, h_before);
  }
  EXPECT_TRUE(telemetry::enabled());
  c.add(1);  // re-enabled updates land again
  EXPECT_EQ(c.value(), c_before + 1);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(Telemetry, HistBucketMonotoneWithConsistentBounds) {
  int prev = -1;
  for (std::uint64_t v : {0ull, 1ull, 15ull, 16ull, 17ull, 100ull, 1000ull,
                          123456ull, 1ull << 40, ~0ull}) {
    const int b = telemetry::hist_bucket(v);
    ASSERT_GE(b, 0);
    ASSERT_LT(b, telemetry::kHistBuckets);
    EXPECT_GE(b, prev) << "bucket index must be monotone in v (v=" << v << ")";
    prev = b;
    std::uint64_t lo = 0, hi = 0;
    telemetry::hist_bucket_bounds(b, &lo, &hi);
    EXPECT_LE(lo, v);
    EXPECT_GE(hi, v);
    // The bounds themselves must land back in the same bucket.
    EXPECT_EQ(telemetry::hist_bucket(lo), b);
    EXPECT_EQ(telemetry::hist_bucket(hi), b);
  }
}

TEST(Telemetry, HistogramQuantileSanity) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Histogram& h = telemetry::histogram("test.quantile_hist_us");
  h.reset();
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const telemetry::HistogramData d = h.data();
  EXPECT_EQ(d.count, 1000u);
  EXPECT_EQ(d.sum, 500'500u);
  EXPECT_DOUBLE_EQ(d.mean(), 500.5);  // count/sum are exact integers
  // Log-linear buckets guarantee <= ~25% value error per bucket.
  const double p50 = d.quantile(0.50);
  const double p90 = d.quantile(0.90);
  const double p99 = d.quantile(0.99);
  EXPECT_NEAR(p50, 500.0, 125.0);
  EXPECT_NEAR(p90, 900.0, 225.0);
  EXPECT_NEAR(p99, 990.0, 250.0);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_EQ(telemetry::histogram("test.quantile_hist_us").data().count, 1000u)
      << "histogram() must return the same registered instance";
}

// ---------------------------------------------------------------------------
// Snapshots: merge / diff / JSON
// ---------------------------------------------------------------------------

TEST(Telemetry, SnapshotMergeAndDiffAreExact) {
  Snapshot a, b;
  a.counters["x"] = 10;
  a.counters["only_a"] = 1;
  b.counters["x"] = 32;
  b.counters["only_b"] = 7;
  telemetry::HistogramData ha, hb;
  ha.buckets.assign(telemetry::kHistBuckets, 0);
  hb.buckets.assign(telemetry::kHistBuckets, 0);
  ha.buckets[3] = 2;
  ha.count = 2;
  ha.sum = 6;
  hb.buckets[3] = 1;
  hb.buckets[20] = 4;
  hb.count = 5;
  hb.sum = 100;
  a.histograms["h"] = ha;
  b.histograms["h"] = hb;

  Snapshot merged = a;
  telemetry::merge(&merged, b);
  EXPECT_EQ(merged.counters["x"], 42u);
  EXPECT_EQ(merged.counters["only_a"], 1u);
  EXPECT_EQ(merged.counters["only_b"], 7u);
  EXPECT_EQ(merged.histograms["h"].count, 7u);
  EXPECT_EQ(merged.histograms["h"].sum, 106u);
  EXPECT_EQ(merged.histograms["h"].buckets[3], 3u);
  EXPECT_EQ(merged.histograms["h"].buckets[20], 4u);

  const Snapshot delta = telemetry::diff(merged, a);
  EXPECT_EQ(delta.counters.at("x"), 32u);
  EXPECT_EQ(delta.counters.at("only_a"), 0u);
  EXPECT_EQ(delta.counters.at("only_b"), 7u);
  EXPECT_EQ(delta.histograms.at("h").count, 5u);
  EXPECT_EQ(delta.histograms.at("h").buckets[3], 1u);
  EXPECT_EQ(delta.histograms.at("h").buckets[20], 4u);

  // diff clamps at zero instead of wrapping.
  const Snapshot clamped = telemetry::diff(a, merged);
  EXPECT_EQ(clamped.counters.at("x"), 0u);
  EXPECT_EQ(clamped.histograms.at("h").count, 0u);
}

TEST(Telemetry, SnapshotJsonIsValid) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  (void)telemetry::counter("test.json \"quoted\"\\name");  // escaping path
  DIVA_TELEM_RECORD("test.json_hist_us", 12345);
  const std::string json = telemetry::to_json(telemetry::snapshot());
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("test.json_hist_us"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

TEST(Telemetry, ChromeTraceExportsValidJson) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::clear_trace();
  telemetry::set_trace_enabled(true);
  {
    DIVA_TRACE_SPAN("test.trace.outer");
    DIVA_TRACE_SPAN("test.trace.inner");
    std::thread worker([] { DIVA_TRACE_SPAN("test.trace.worker"); });
    worker.join();
  }
  telemetry::set_trace_enabled(false);
  EXPECT_GE(telemetry::trace_span_count(), 3u);

  std::ostringstream os;
  telemetry::write_trace(os);
  const std::string json = os.str();
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("test.trace.outer"), std::string::npos);
  EXPECT_NE(json.find("test.trace.worker"), std::string::npos);
  // Spans from different threads carry different tids.
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);

  telemetry::clear_trace();
  EXPECT_EQ(telemetry::trace_span_count(), 0u);
  std::ostringstream empty;
  telemetry::write_trace(empty);
  EXPECT_TRUE(JsonValidator(empty.str()).valid());
}

TEST(Telemetry, DisabledTraceRecordsNothing) {
  telemetry::clear_trace();
  telemetry::set_trace_enabled(false);
  {
    DIVA_TRACE_SPAN("test.trace.should_not_appear");
  }
  EXPECT_EQ(telemetry::trace_span_count(), 0u);
}

// ---------------------------------------------------------------------------
// Kernel counters vs analytic counts, at every available ISA tier
// ---------------------------------------------------------------------------

class KernelTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    initial_tier_ = active_isa_tier();
  }
  void TearDown() override {
    if (telemetry::kCompiledIn) force_isa_tier(initial_tier_);
  }
  IsaTier initial_tier_ = IsaTier::kScalar;
};

TEST_F(KernelTelemetryTest, SgemmCountsMatchAnalyticPerTier) {
  // One-block shape (m <= MC, n <= NC, k <= KC) above the small-path
  // threshold, so the analytic formula has a single term per dimension.
  const std::int64_t m = 8, n = 64, k = 32;
  std::vector<float> a(static_cast<std::size_t>(m * k), 0.5f);
  std::vector<float> b(static_cast<std::size_t>(k * n), 0.25f);
  std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);

  for (const IsaTier tier : available_isa_tiers()) {
    force_isa_tier(tier);
    const SgemmVariant& v = kernel_dispatch().sgemm;
    const std::string suffix = std::string(".") + v.name;
    const Snapshot before = telemetry::snapshot();
    sgemm(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n);
    const Snapshot after = telemetry::snapshot();

    EXPECT_EQ(counter_delta(after, before, "kernels.sgemm.calls" + suffix), 1u)
        << v.name;
    // MACs are logical m*n*k — padding excluded, so this is exact.
    EXPECT_EQ(counter_delta(after, before, "kernels.sgemm.macs" + suffix),
              static_cast<std::uint64_t>(m * n * k))
        << v.name;
    // Packed bytes include MR/NR padding: one A block padded to MR rows,
    // one B block padded to NR columns, each spanning all of k.
    const std::int64_t a_rows = (m + v.mr - 1) / v.mr * v.mr;
    const std::int64_t b_cols = (n + v.nr - 1) / v.nr * v.nr;
    const std::uint64_t expected_bytes =
        sizeof(float) * static_cast<std::uint64_t>(a_rows * k + b_cols * k);
    EXPECT_EQ(
        counter_delta(after, before, "kernels.sgemm.packed_bytes" + suffix),
        expected_bytes)
        << v.name;
  }
}

TEST_F(KernelTelemetryTest, SgemmSmallPathAttributesToScalar) {
  // m*n*k below the 2^13 threshold takes the tier-invariant small path.
  const std::int64_t m = 4, n = 4, k = 4;
  std::vector<float> a(16, 1.0f), b(16, 1.0f), c(16, 0.0f);
  const Snapshot before = telemetry::snapshot();
  sgemm(m, n, k, a.data(), k, false, b.data(), n, false, c.data(), n);
  const Snapshot after = telemetry::snapshot();
  EXPECT_EQ(counter_delta(after, before, "kernels.sgemm.calls.scalar"), 1u);
  EXPECT_EQ(counter_delta(after, before, "kernels.sgemm.macs.scalar"), 64u);
  EXPECT_EQ(
      counter_delta(after, before, "kernels.sgemm.packed_bytes.scalar"), 0u);
}

TEST_F(KernelTelemetryTest, IgemmCountsMatchAnalyticPerTier) {
  const std::int64_t m = 4, n = 40, k = 64;  // single K block (k <= 512)
  std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n));
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<std::int8_t>(i % 7 - 3);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<std::int8_t>(i % 11 - 5);
  }
  std::vector<std::int32_t> bias(static_cast<std::size_t>(m), 0);
  std::vector<std::int32_t> multiplier(static_cast<std::size_t>(m), 1 << 30);
  std::vector<int> shift(static_cast<std::size_t>(m), 0);
  IgemmEpilogue ep;
  ep.bias = bias.data();
  ep.multiplier = multiplier.data();
  ep.shift = shift.data();
  std::vector<std::int8_t> out(static_cast<std::size_t>(m * n));

  for (const IsaTier tier : available_isa_tiers()) {
    force_isa_tier(tier);
    const IgemmVariant& v = kernel_dispatch().igemm;
    const std::string suffix = std::string(".") + v.name;
    const Snapshot before = telemetry::snapshot();
    igemm(m, n, k, a.data(), k, b.data(), n, /*b_zp=*/3, ep, out.data(), n);
    const Snapshot after = telemetry::snapshot();

    EXPECT_EQ(counter_delta(after, before, "kernels.igemm.calls" + suffix), 1u)
        << v.name;
    EXPECT_EQ(counter_delta(after, before, "kernels.igemm.macs" + suffix),
              static_cast<std::uint64_t>(m * n * k))
        << v.name;
    // Panel bytes straight from the variant's own geometry accessors.
    const std::uint64_t expected_bytes =
        static_cast<std::uint64_t>((m + v.mr - 1) / v.mr) *
            v.a_panel_bytes(k) +
        static_cast<std::uint64_t>((n + v.nr - 1) / v.nr) *
            v.b_panel_bytes(k);
    EXPECT_EQ(
        counter_delta(after, before, "kernels.igemm.packed_bytes" + suffix),
        expected_bytes)
        << v.name;
  }
}

TEST_F(KernelTelemetryTest, IgemmSingleRowPathAttributesToScalar) {
  const std::int64_t n = 8, k = 16;
  std::vector<std::int8_t> a(static_cast<std::size_t>(k), 1);
  std::vector<std::int8_t> b(static_cast<std::size_t>(k * n), 2);
  std::int32_t bias = 0, multiplier = 1 << 30;
  int shift = 0;
  IgemmEpilogue ep;
  ep.bias = &bias;
  ep.multiplier = &multiplier;
  ep.shift = &shift;
  std::vector<std::int8_t> out(static_cast<std::size_t>(n));
  const Snapshot before = telemetry::snapshot();
  igemm(1, n, k, a.data(), k, b.data(), n, 0, ep, out.data(), n);
  const Snapshot after = telemetry::snapshot();
  EXPECT_EQ(counter_delta(after, before, "kernels.igemm.calls.scalar"), 1u);
  EXPECT_EQ(counter_delta(after, before, "kernels.igemm.macs.scalar"),
            static_cast<std::uint64_t>(n * k));
  EXPECT_EQ(
      counter_delta(after, before, "kernels.igemm.packed_bytes.scalar"), 0u);
}

// ---------------------------------------------------------------------------
// Attack-layer query accounting: FD/SPSA probe budgets, engine shards
// ---------------------------------------------------------------------------

class AttackTelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
    float_net_ = make_digit_net(NetMode::kFloat);
    init_parameters(*float_net_, 501);
    qat_ = make_digit_net(NetMode::kQat);
    init_parameters(*qat_, 502);
    calibrate(*qat_, {random_tensor(Shape{4, 1, 28, 28}, 503, 0.0f, 1.0f)});
    quantized_ = std::make_unique<QuantizedModel>(
        QuantizedModel::compile(*qat_, Shape{1, 28, 28}));
  }

  std::unique_ptr<Sequential> float_net_, qat_;
  std::unique_ptr<QuantizedModel> quantized_;
};

TEST_F(AttackTelemetryTest, SpsaProbeCountMatchesConfiguredBudgetExactly) {
  const std::int64_t n = 2;
  const int steps = 3, samples = 4;
  const Tensor x = random_tensor(Shape{n, 1, 28, 28}, 601, 0.0f, 1.0f);
  const std::vector<int> y = {0, 1};

  AttackSpec spec;
  spec.cfg.epsilon = 0.05f;
  spec.cfg.alpha = 0.01f;
  spec.cfg.steps = steps;
  FdConfig fd;
  fd.samples = samples;
  auto attack = make_attack("pgd", {nullptr, fd_source(*quantized_, fd)},
                            spec);

  const Snapshot before = telemetry::snapshot();
  (void)attack->perturb(x, y);
  const Snapshot after = telemetry::snapshot();

  // The paper's query-budget invariant: SPSA spends exactly
  // n * steps * 2 * samples deployed-artifact probes, no hidden extras.
  EXPECT_EQ(counter_delta(after, before, "attack.fd.spsa_probes"),
            static_cast<std::uint64_t>(n * steps * 2 * samples));
  // Probe rows all pass through the deployed artifact's query counter.
  EXPECT_GE(counter_delta(after, before, "quant.forward.rows"),
            static_cast<std::uint64_t>(n * steps * 2 * samples));
  EXPECT_EQ(counter_delta(after, before, "attack.PGD.perturb_calls"), 1u);
  EXPECT_EQ(counter_delta(after, before, "attack.PGD.samples"),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(counter_delta(after, before, "attack.PGD.grad_evals"),
            static_cast<std::uint64_t>(steps));  // one FD source
}

TEST_F(AttackTelemetryTest, CompressedVariantsPinProbeBudgetsExactly) {
  // Every probe-compression lever must keep the paper's query-budget
  // invariant — spsa_probes == n * steps * 2 * samples — while moving
  // only the per-forward packing (probe_forwards) and the touched
  // degrees of freedom (probe_dof).
  const std::int64_t n = 2;
  const int steps = 2, samples = 4;
  const std::int64_t d = 28 * 28;
  const Tensor x = random_tensor(Shape{n, 1, 28, 28}, 604, 0.0f, 1.0f);
  const std::vector<int> y = {0, 1};

  AttackSpec spec;
  spec.cfg.epsilon = 0.05f;
  spec.cfg.alpha = 0.01f;
  spec.cfg.steps = steps;

  struct Case {
    FdConfig fd;
    std::uint64_t nnz;       // probed degrees of freedom per probe
    std::uint64_t forwards;  // probe forwards per step
  };
  const Case cases[] = {
      // Dense unbatched: one 2*samples-row forward per sample per step.
      {{.samples = samples},
       static_cast<std::uint64_t>(d),
       static_cast<std::uint64_t>(n)},
      // Subspace: probes span k coefficients instead of d pixels.
      {{.samples = samples, .subspace_dim = 8}, 8,
       static_cast<std::uint64_t>(n)},
      // Sign-sparse: each probe touches round(0.25 * d) pixels.
      {{.samples = samples, .sparsity = 0.25f}, 196,
       static_cast<std::uint64_t>(n)},
      // Batched: n * samples = 8 pairs packed 3 per forward (cap 6
      // rows), so ceil(8 / 3) = 3 forwards per step instead of n.
      {{.samples = samples, .batch_probes = true, .max_probe_rows = 6},
       static_cast<std::uint64_t>(d), 3},
      // All levers at once: nnz = round(0.5 * k).
      {{.samples = samples,
        .subspace_dim = 8,
        .sparsity = 0.5f,
        .batch_probes = true,
        .max_probe_rows = 6},
       4, 3},
  };
  const auto budget = static_cast<std::uint64_t>(n * steps * 2 * samples);
  for (const Case& c : cases) {
    auto attack =
        make_attack("pgd", {nullptr, fd_source(*quantized_, c.fd)}, spec);
    const Snapshot before = telemetry::snapshot();
    (void)attack->perturb(x, y);
    const Snapshot after = telemetry::snapshot();
    const std::string label = fd_label(c.fd);
    EXPECT_EQ(counter_delta(after, before, "attack.fd.spsa_probes"), budget)
        << label;
    EXPECT_EQ(counter_delta(after, before, "attack.fd.probe_forwards"),
              c.forwards * static_cast<std::uint64_t>(steps))
        << label;
    EXPECT_EQ(counter_delta(after, before, "attack.fd.probe_dof"),
              budget * c.nnz)
        << label;
    // Probe rows all hit the deployed artifact's query counter.
    EXPECT_GE(counter_delta(after, before, "quant.forward.rows"), budget)
        << label;
  }
}

TEST_F(AttackTelemetryTest, CoordinateProbeCountMatchesPixelBudget) {
  const std::int64_t n = 1;
  const Tensor x = random_tensor(Shape{n, 1, 28, 28}, 602, 0.0f, 1.0f);
  const std::vector<int> y = {0};

  AttackSpec spec;
  spec.cfg.epsilon = 0.05f;
  spec.cfg.alpha = 0.01f;
  spec.cfg.steps = 1;
  FdConfig fd;
  fd.coordinate = true;
  auto attack = make_attack("pgd", {nullptr, fd_source(*quantized_, fd)},
                            spec);

  const Snapshot before = telemetry::snapshot();
  (void)attack->perturb(x, y);
  const Snapshot after = telemetry::snapshot();
  // Exact central differences: one +h/-h probe pair per pixel per step.
  EXPECT_EQ(counter_delta(after, before, "attack.fd.coordinate_probes"),
            static_cast<std::uint64_t>(2 * 28 * 28));
}

TEST_F(AttackTelemetryTest, EngineCountsRunsSamplesAndShards) {
  const std::int64_t n = 8;
  const std::int64_t shard_size = 2;
  const Tensor x = random_tensor(Shape{n, 1, 28, 28}, 603, 0.0f, 1.0f);
  std::vector<int> y(static_cast<std::size_t>(n), 0);

  AttackSpec spec;
  spec.cfg.epsilon = 0.05f;
  spec.cfg.alpha = 0.01f;
  spec.cfg.steps = 1;
  auto attack = make_attack("pgd", {nullptr, source(*float_net_)}, spec);
  const AttackEngine engine({.threads = 2, .shard_size = shard_size});

  const Snapshot before = telemetry::snapshot();
  (void)engine.run(*attack, x, y);
  const Snapshot after = telemetry::snapshot();

  EXPECT_EQ(counter_delta(after, before, "engine.runs"), 1u);
  EXPECT_EQ(counter_delta(after, before, "engine.samples"),
            static_cast<std::uint64_t>(n));
  EXPECT_EQ(counter_delta(after, before, "engine.shards"),
            static_cast<std::uint64_t>(n / shard_size));
  EXPECT_EQ(hist_count_delta(after, before, "engine.shard_us"),
            static_cast<std::uint64_t>(n / shard_size));
}

}  // namespace
}  // namespace diva
