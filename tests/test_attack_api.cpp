// Tests for the three-layer attack API: registry round-trips, engine
// sharding determinism, objective/source composition, and the
// quantized-model gradient sources (STE and finite differences).
#include <gtest/gtest.h>

#include <memory>

#include "attack/engine.h"
#include "attack/probe_compression.h"
#include "attack/registry.h"
#include "core/trainer.h"
#include "data/synth_digits.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "nn/fold_bn.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "quant/quantized_model.h"
#include "test_helpers.h"

namespace diva {
namespace {

/// Tiny trained digit pair + a compiled int8 artifact, shared by all
/// tests in this file.
struct ApiFixture {
  Dataset train, val;
  std::unique_ptr<Sequential> model;  // "original"
  std::unique_ptr<Sequential> twin;   // "adapted" float stand-in
  std::unique_ptr<Sequential> qat;    // calibrated QAT twin
  std::unique_ptr<QuantizedModel> quantized;

  ApiFixture() {
    SynthDigits gen(77);
    train = gen.generate(40, 0);
    val = gen.generate(8, 4000);

    model = make_digit_net(NetMode::kFloat);
    init_parameters(*model, 11);
    TrainConfig cfg;
    cfg.epochs = 8;
    cfg.seed = 12;
    train_classifier(*model, train, cfg);

    twin = make_digit_net(NetMode::kFloat);
    init_parameters(*twin, 13);
    TrainConfig cfg2 = cfg;
    cfg2.seed = 14;
    cfg2.epochs = 6;
    train_classifier(*twin, train, cfg2);

    // Fold the trained float weights into the QAT skeleton (the
    // standard fold-then-quantize flow), so the int8 artifact has a
    // meaningful decision surface rather than random-weight noise.
    qat = make_digit_net(NetMode::kQat);
    fold_batchnorm_into(*model, *qat);
    calibrate(*qat, {train.images});
    quantized = std::make_unique<QuantizedModel>(QuantizedModel::compile(
        *qat, Shape{SynthDigits::kChannels, SynthDigits::kHeight,
                    SynthDigits::kWidth}));
  }
};

ApiFixture& fixture() {
  static ApiFixture f;
  return f;
}

Dataset small_eval(int n) {
  std::vector<int> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  return fixture().val.subset(idx);
}

AttackSpec quick_spec(int steps = 4) {
  AttackSpec spec;
  spec.cfg.epsilon = 8.0f / 255.0f;
  spec.cfg.alpha = 2.0f / 255.0f;
  spec.cfg.steps = steps;
  spec.target = 3;
  return spec;
}

AttackTargets float_targets() {
  auto& f = fixture();
  return {source(*f.model), source(*f.twin)};
}

// ---------------------------------------------------------------------------
// Registry.
// ---------------------------------------------------------------------------

TEST(AttackRegistry, ListsAllBuiltinKinds) {
  for (const char* kind : {"pgd", "cw", "fgsm", "momentum-pgd", "diva",
                           "targeted-diva"}) {
    EXPECT_TRUE(attack_registered(kind)) << kind;
  }
  EXPECT_GE(registered_attack_names().size(), 6u);
}

TEST(AttackRegistry, RoundTripEveryKind) {
  const Dataset eval = small_eval(4);
  const AttackSpec spec = quick_spec();
  for (const std::string& kind : registered_attack_names()) {
    auto attack = make_attack(kind, float_targets(), spec);
    ASSERT_NE(attack, nullptr) << kind;
    EXPECT_FALSE(attack->name().empty()) << kind;
    const Tensor adv = attack->perturb(eval.images, eval.labels);
    ASSERT_EQ(adv.shape(), eval.images.shape()) << kind;
    EXPECT_LE(max_abs(sub(adv, eval.images)), spec.cfg.epsilon + 1e-5f)
        << kind;
    EXPECT_GE(min_value(adv), -1e-6f) << kind;
    EXPECT_LE(max_value(adv), 1.0f + 1e-6f) << kind;
  }
}

/// Runs `fn`, expecting diva::Error whose message contains `needle`.
template <typename Fn>
void expect_error_containing(Fn&& fn, const std::string& needle) {
  try {
    fn();
    FAIL() << "expected diva::Error containing '" << needle << "'";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
        << "message was: " << e.what();
  }
}

TEST(AttackRegistry, UnknownKindThrowsAndNamesTheKind) {
  expect_error_containing(
      [] { (void)make_attack("no-such-attack", float_targets(), quick_spec()); },
      "unknown attack kind 'no-such-attack'");
  expect_error_containing([] { (void)attack_traits("no-such-attack"); },
                          "unknown attack kind 'no-such-attack'");
}

TEST(AttackRegistry, MissingAdaptedSourceThrowsWithClearMessage) {
  AttackTargets empty;
  expect_error_containing(
      [&] { (void)make_attack("pgd", empty, quick_spec()); },
      "needs an adapted-model source");
  expect_error_containing(
      [&] { (void)make_attack("diva", empty, quick_spec()); },
      "needs an adapted-model source");
}

TEST(AttackRegistry, DivaWithSingleSourceThrowsWithClearMessage) {
  // Adapted side only: the DIVA family must demand its original source.
  AttackTargets only_adapted{nullptr, source(*fixture().twin)};
  EXPECT_NO_THROW(make_attack("pgd", only_adapted, quick_spec()));
  expect_error_containing(
      [&] { (void)make_attack("diva", only_adapted, quick_spec()); },
      "needs an original-model source");
  expect_error_containing(
      [&] { (void)make_attack("targeted-diva", only_adapted, quick_spec()); },
      "needs an original-model source");
}

TEST(AttackRegistry, TraitsDescribeSourceRequirements) {
  for (const char* kind : {"pgd", "cw", "fgsm", "momentum-pgd"}) {
    EXPECT_FALSE(attack_traits(kind).needs_original) << kind;
    EXPECT_TRUE(attack_traits(kind).needs_adapted) << kind;
  }
  for (const char* kind : {"diva", "targeted-diva"}) {
    EXPECT_TRUE(attack_traits(kind).needs_original) << kind;
    EXPECT_TRUE(attack_traits(kind).needs_adapted) << kind;
  }
}

TEST(AttackRegistry, ValidateTargetsMirrorsMakeAttackErrors) {
  AttackTargets empty;
  AttackTargets only_adapted{nullptr, source(*fixture().twin)};
  EXPECT_EQ(validate_attack_targets("pgd", only_adapted), "");
  EXPECT_EQ(validate_attack_targets("diva", float_targets()), "");
  EXPECT_NE(validate_attack_targets("pgd", empty).find(
                "needs an adapted-model source"),
            std::string::npos);
  EXPECT_NE(validate_attack_targets("diva", only_adapted)
                .find("needs an original-model source"),
            std::string::npos);
  EXPECT_THROW((void)validate_attack_targets("no-such-attack", empty), Error);
}

TEST(AttackRegistry, CustomKindsCanBeRegistered) {
  register_attack("test-custom-pgd",
                  [](const AttackTargets& t, const AttackSpec& s) {
                    return std::make_unique<IteratedAttack>(
                        "CustomPGD",
                        std::vector<std::shared_ptr<GradSource>>{t.adapted},
                        std::make_shared<CrossEntropyObjective>(), s.cfg);
                  });
  ASSERT_TRUE(attack_registered("test-custom-pgd"));
  auto attack = make_attack("test-custom-pgd", float_targets(), quick_spec());
  EXPECT_EQ(attack->name(), "CustomPGD");
  // Kinds registered without traits declare no requirements: make_attack
  // must not pre-reject their targets (the factory decides).
  EXPECT_FALSE(attack_traits("test-custom-pgd").needs_adapted);
  EXPECT_EQ(validate_attack_targets("test-custom-pgd", AttackTargets{}), "");
}

TEST(AttackRegistry, KindsMatchDirectlyComposedIteratedAttacks) {
  // Pin the registry wiring (kind -> objective, source order, spec
  // plumbing) against attacks composed by hand from the primitives,
  // bit-for-bit. Successor of the removed wrapper-parity test: a bug in
  // the factory mapping cannot cancel out here because the right-hand
  // side never goes through the registry.
  const Dataset eval = small_eval(5);
  const AttackSpec spec = quick_spec();
  auto& f = fixture();

  IteratedAttack direct_pgd(
      "PGD", {source(*f.twin)}, std::make_shared<CrossEntropyObjective>(),
      spec.cfg);
  auto pgd = make_attack("pgd", float_targets(), spec);
  EXPECT_EQ(max_abs(sub(direct_pgd.perturb(eval.images, eval.labels),
                        pgd->perturb(eval.images, eval.labels))),
            0.0f);

  IteratedAttack direct_diva(
      "DIVA", {source(*f.model), source(*f.twin)},
      std::make_shared<DivaObjective>(spec.c), spec.cfg);
  auto diva = make_attack("diva", float_targets(), spec);
  EXPECT_EQ(max_abs(sub(direct_diva.perturb(eval.images, eval.labels),
                        diva->perturb(eval.images, eval.labels))),
            0.0f);
}

// ---------------------------------------------------------------------------
// AttackEngine determinism.
// ---------------------------------------------------------------------------

TEST(AttackEngine2, ShardedEqualsSequentialAcrossThreadCounts) {
  const Dataset eval = small_eval(8);
  for (const char* kind : {"pgd", "diva", "momentum-pgd"}) {
    auto attack = make_attack(kind, float_targets(), quick_spec(3));
    const Tensor sequential =
        attack->perturb(eval.images, eval.labels);
    for (const unsigned threads : {1u, 2u, 4u, 8u, 16u}) {
      const AttackEngine engine({.threads = threads, .shard_size = 3});
      const Tensor sharded = engine.run(*attack, eval.images, eval.labels);
      EXPECT_EQ(max_abs(sub(sequential, sharded)), 0.0f)
          << kind << " with " << threads << " threads";
    }
  }
}

TEST(AttackEngine2, FdSourceShardedEqualsSequentialUpTo16Threads) {
  // Derivative-free sources run probe batches fully concurrently (no
  // module mutex), so thread counts beyond the shard count genuinely
  // interleave — the SPSA streams keyed on (seed, global sample, step)
  // must still reproduce the sequential result bit-for-bit.
  auto& f = fixture();
  const Dataset eval = small_eval(8);
  AttackSpec spec = quick_spec(2);
  auto fd_pgd = make_attack(
      "pgd", {nullptr, fd_source(*f.quantized, {.samples = 4})}, spec);
  const Tensor sequential = fd_pgd->perturb(eval.images, eval.labels);
  for (const unsigned threads : {2u, 8u, 16u}) {
    const AttackEngine engine({.threads = threads, .shard_size = 2});
    const Tensor sharded = engine.run(*fd_pgd, eval.images, eval.labels);
    EXPECT_EQ(max_abs(sub(sequential, sharded)), 0.0f)
        << threads << " threads";
  }
}

TEST(AttackEngine2, CompressedFdVariantsShardedEqualSequential) {
  // The probe-compression levers (subspace, sparsity, batching) keep
  // the per-sample (seed, global sample, step) stream keying, so every
  // compressed estimator must stay bit-identical under engine sharding
  // — the same determinism contract the dense estimator pins above.
  auto& f = fixture();
  const Dataset eval = small_eval(6);
  AttackSpec spec = quick_spec(2);
  const FdConfig variants[] = {
      {.samples = 4, .subspace_dim = 8},
      {.samples = 4, .sparsity = 0.25f},
      {.samples = 4, .batch_probes = true, .max_probe_rows = 6},
      {.samples = 4,
       .subspace_dim = 8,
       .sparsity = 0.5f,
       .batch_probes = true,
       .max_probe_rows = 10},
  };
  for (const FdConfig& cfg : variants) {
    auto attack =
        make_attack("pgd", {nullptr, fd_source(*f.quantized, cfg)}, spec);
    const Tensor sequential = attack->perturb(eval.images, eval.labels);
    for (const unsigned threads : {2u, 8u}) {
      const AttackEngine engine({.threads = threads, .shard_size = 2});
      const Tensor sharded = engine.run(*attack, eval.images, eval.labels);
      EXPECT_EQ(max_abs(sub(sequential, sharded)), 0.0f)
          << fd_label(cfg) << " with " << threads << " threads";
    }
  }
}

TEST(AttackEngine2, RandomStartIsShardInvariant) {
  const Dataset eval = small_eval(8);
  AttackSpec spec = quick_spec(2);
  spec.cfg.random_start = true;
  spec.cfg.seed = 99;
  auto attack = make_attack("diva", float_targets(), spec);
  const Tensor sequential = attack->perturb(eval.images, eval.labels);
  for (const unsigned threads : {2u, 4u}) {
    const AttackEngine engine({.threads = threads, .shard_size = 3});
    EXPECT_EQ(max_abs(sub(sequential,
                          engine.run(*attack, eval.images, eval.labels))),
              0.0f)
        << threads << " threads";
  }
}

TEST(AttackEngine2, CallbackAttacksFallBackToSequential) {
  const Dataset eval = small_eval(6);
  AttackSpec spec = quick_spec(3);
  int calls = 0;
  spec.cfg.step_callback = [&calls](int, const Tensor& batch) {
    // Whole-batch iterates: sharding would hand the callback fragments.
    EXPECT_EQ(batch.dim(0), 6);
    ++calls;
  };
  auto attack = make_attack("pgd", float_targets(), spec);
  EXPECT_FALSE(attack->shardable());
  const AttackEngine engine({.threads = 2, .shard_size = 2});
  (void)engine.run(*attack, eval.images, eval.labels);
  EXPECT_EQ(calls, 3);
}

// ---------------------------------------------------------------------------
// Quantized-model gradient sources: the edge artifact as attack target.
// ---------------------------------------------------------------------------

TEST(QuantTarget, SteDivaCompletesEndToEnd) {
  auto& f = fixture();
  const Dataset eval = small_eval(3);
  AttackSpec spec = quick_spec(4);
  // Adapted side: int8 forward, STE backward through the QAT shadow.
  const AttackTargets targets{source(*f.model),
                              source(*f.quantized, *f.qat)};
  auto diva = make_attack("diva", targets, spec);
  const Tensor adv = diva->perturb(eval.images, eval.labels);
  ASSERT_EQ(adv.shape(), eval.images.shape());
  EXPECT_LE(max_abs(sub(adv, eval.images)), spec.cfg.epsilon + 1e-5f);
  EXPECT_GE(min_value(adv), -1e-6f);
  EXPECT_LE(max_value(adv), 1.0f + 1e-6f);
}

TEST(QuantTarget, FiniteDifferenceDivaCompletesEndToEnd) {
  auto& f = fixture();
  const Dataset eval = small_eval(2);
  AttackSpec spec = quick_spec(2);
  // Adapted side: derivative-free probing of the int8 artifact alone.
  const AttackTargets targets{source(*f.model), fd_source(*f.quantized)};
  auto diva = make_attack("diva", targets, spec);
  const Tensor adv = diva->perturb(eval.images, eval.labels);
  ASSERT_EQ(adv.shape(), eval.images.shape());
  EXPECT_LE(max_abs(sub(adv, eval.images)), spec.cfg.epsilon + 1e-5f);
  EXPECT_GE(min_value(adv), -1e-6f);
  EXPECT_LE(max_value(adv), 1.0f + 1e-6f);
}

TEST(QuantTarget, SpsaGradientDescendsTheIntegerSurface) {
  // Functional check of the derivative-free estimator: one full-budget
  // descent step along -sign(g_fd) must reduce the int8 model's label
  // probability well beyond staircase noise.
  auto& f = fixture();
  const Dataset eval = small_eval(1);
  const int y = eval.labels[0];
  FdConfig fd_cfg;
  fd_cfg.samples = 256;
  auto fd = fd_source(*f.quantized, fd_cfg);

  DivaObjective obj(1.0f);
  GradRequest req;
  req.values = [&](const Tensor& l, const std::vector<std::int64_t>& rows) {
    std::vector<int> labels;
    labels.reserve(rows.size());
    for (auto r : rows) {
      labels.push_back(eval.labels[static_cast<std::size_t>(r)]);
    }
    return obj.term_values(1, l, labels);
  };
  const Tensor g = fd->input_grad(eval.images, req);

  auto label_prob = [&](const Tensor& x) {
    return softmax_rows(f.quantized->forward(x)).at(0, y);
  };
  Tensor stepped = eval.images;
  for (std::int64_t i = 0; i < g.numel(); ++i) {
    const float s = g[i] > 0 ? 1.0f : (g[i] < 0 ? -1.0f : 0.0f);
    stepped[i] = std::min(1.0f, std::max(0.0f, stepped[i] - 8.0f / 255.0f * s));
  }
  EXPECT_LT(label_prob(stepped), label_prob(eval.images) - 0.02f);
}

TEST(QuantTarget, FdProbesAreShardAndReplayInvariant) {
  // The SPSA probe stream is keyed by (seed, global sample, step), so
  // the same sample produces the same gradient whether it enters as
  // batch row 0 with first_sample=2 or as row 2 of the full batch.
  auto& f = fixture();
  const Dataset eval = small_eval(3);
  auto fd = fd_source(*f.quantized, {.samples = 8});
  DivaObjective obj(1.0f);
  auto values_for = [&](const std::vector<int>& labels) {
    return [&obj, labels](const Tensor& l,
                          const std::vector<std::int64_t>& rows) {
      std::vector<int> row_labels;
      row_labels.reserve(rows.size());
      for (auto r : rows) {
        row_labels.push_back(labels[static_cast<std::size_t>(r)]);
      }
      return obj.term_values(1, l, row_labels);
    };
  };

  GradRequest full;
  full.first_sample = 0;
  full.values = values_for(eval.labels);
  const Tensor g_full = fd->input_grad(eval.images, full);

  const Dataset last = eval.subset({2});
  GradRequest shard;
  shard.first_sample = 2;
  shard.values = values_for(last.labels);
  const Tensor g_shard = fd->input_grad(last.images, shard);

  const std::int64_t per = g_full.numel() / 3;
  float diff = 0.0f;
  for (std::int64_t i = 0; i < per; ++i) {
    diff = std::max(diff, std::fabs(g_full[2 * per + i] - g_shard[i]));
  }
  EXPECT_EQ(diff, 0.0f);
}

TEST(QuantTarget, BatchedProbeSchedulingIsBitIdenticalToUnbatched) {
  // Cross-sample probe batching only reschedules forwards — same probe
  // directions, same accumulation order per sample — so switching it on
  // (at any row cap) must not move a single output bit.
  auto& f = fixture();
  const Dataset eval = small_eval(5);
  const AttackSpec spec = quick_spec(2);
  const FdConfig bases[] = {
      {.samples = 4},
      {.samples = 4, .subspace_dim = 8},
      {.samples = 4, .sparsity = 0.25f},
  };
  for (const FdConfig& base : bases) {
    auto plain =
        make_attack("pgd", {nullptr, fd_source(*f.quantized, base)}, spec);
    const Tensor want = plain->perturb(eval.images, eval.labels);
    for (const std::int64_t rows : {2, 6, 64}) {
      FdConfig batched = base;
      batched.batch_probes = true;
      batched.max_probe_rows = rows;
      auto attack = make_attack(
          "pgd", {nullptr, fd_source(*f.quantized, batched)}, spec);
      const Tensor got = attack->perturb(eval.images, eval.labels);
      EXPECT_EQ(max_abs(sub(want, got)), 0.0f)
          << fd_label(base) << " rows_cap=" << rows;
    }
  }
}

TEST(QuantTarget, FdLabelsEncodeCompressionLevers) {
  EXPECT_EQ(fd_label({}), "int8+fd");
  EXPECT_EQ(fd_label({.coordinate = true}), "int8+fd+coord");
  EXPECT_EQ(fd_label({.subspace_dim = 16}), "int8+fd+sub16");
  EXPECT_EQ(fd_label({.sparsity = 0.25f}), "int8+fd+sp25");
  EXPECT_EQ(fd_label({.batch_probes = true}), "int8+fd+batch");
  EXPECT_EQ(fd_label({.subspace_dim = 8, .sparsity = 0.5f,
                      .batch_probes = true}),
            "int8+fd+sub8+sp50+batch");
  // An explicit basis reports its kind (and the registry's default
  // source label is exactly this string).
  auto& f = fixture();
  FdConfig with_basis;
  with_basis.subspace = make_random_subspace(
      SynthDigits::kChannels * SynthDigits::kHeight * SynthDigits::kWidth, 4,
      1);
  EXPECT_EQ(fd_label(with_basis), "int8+fd+rand4");
  EXPECT_EQ(fd_source(*f.quantized, with_basis)->name(), "int8+fd+rand4");
}

TEST(QuantTarget, SteLogitsComeFromIntegerModel) {
  auto& f = fixture();
  const Dataset eval = small_eval(2);
  auto ste = source(*f.quantized, *f.qat);
  const Tensor expected = f.quantized->forward(eval.images);
  EXPECT_EQ(max_abs(sub(ste->logits(eval.images), expected)), 0.0f);
}

}  // namespace
}  // namespace diva
