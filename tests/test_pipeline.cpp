// End-to-end adaptation pipeline tests: train a small float model, fold
// BatchNorm exactly, transfer into a QAT skeleton, calibrate, QAT-
// finetune, and compile to the integer-only QuantizedModel. These tests
// pin down the invariants the whole reproduction rests on.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synth_digits.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "nn/fold_bn.h"
#include "nn/init.h"
#include "nn/model_io.h"
#include "quant/qat.h"
#include "quant/quantized_model.h"
#include "tensor/tensor_ops.h"
#include "test_helpers.h"

namespace diva {
namespace {

/// Small shared fixture: a digit model trained on a modest dataset.
/// Training runs once per process and is reused by every test.
struct Pipeline {
  SynthDigits gen;
  Dataset train, val;
  std::unique_ptr<Sequential> float_model;
  std::unique_ptr<Sequential> folded;
  std::unique_ptr<Sequential> qat;
  QuantizedModel q8;

  Pipeline() : gen(77) {
    train = gen.generate(60, 0);
    val = gen.generate(25, 1000);

    float_model = make_digit_net(NetMode::kFloat);
    init_parameters(*float_model, 42);
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.lr = 0.05f;
    cfg.seed = 7;
    train_classifier(*float_model, train, cfg);

    folded = make_digit_net(NetMode::kFolded);
    fold_batchnorm_into(*float_model, *folded);

    qat = make_digit_net(NetMode::kQat);
    fold_batchnorm_into(*float_model, *qat);
    // Calibrate observers on a few training batches.
    std::vector<Tensor> calib;
    for (int i = 0; i < 4; ++i) {
      std::vector<int> idx;
      for (int j = 0; j < 32; ++j) idx.push_back(i * 32 + j);
      calib.push_back(gather_batch(train.images, idx));
    }
    calibrate(*qat, calib);
    // Short QAT finetune.
    TrainConfig qcfg;
    qcfg.epochs = 2;
    qcfg.lr = 0.01f;
    qcfg.seed = 8;
    train_classifier(*qat, train, qcfg);

    q8 = QuantizedModel::compile(
        *qat, Shape{SynthDigits::kChannels, SynthDigits::kHeight,
                    SynthDigits::kWidth});
  }
};

Pipeline& pipeline() {
  static Pipeline p;
  return p;
}

ModelFn model_fn(Sequential& m) {
  m.set_training(false);
  return [&m](const Tensor& x) { return m.forward(x); };
}

TEST(Pipeline, FloatModelLearns) {
  auto& p = pipeline();
  const float acc = accuracy(model_fn(*p.float_model), p.val);
  EXPECT_GT(acc, 0.9f) << "digit model failed to train";
}

TEST(Pipeline, FoldingIsExactInEvalMode) {
  auto& p = pipeline();
  p.float_model->set_training(false);
  p.folded->set_training(false);
  std::vector<int> idx;
  for (int i = 0; i < 40; ++i) idx.push_back(i * 5);
  const Tensor x = gather_batch(p.val.images, idx);
  const Tensor a = p.float_model->forward(x);
  const Tensor b = p.folded->forward(x);
  EXPECT_LT(max_abs(sub(a, b)), 2e-3f)
      << "BN folding must be numerically exact";
}

TEST(Pipeline, UncalibratedQatSkeletonMatchesFolded) {
  // A fresh QAT skeleton (no calibration) passes activations through,
  // so with transferred weights it differs from the folded model only
  // by weight fake-quantization.
  auto& p = pipeline();
  auto fresh = make_digit_net(NetMode::kQat);
  fold_batchnorm_into(*p.float_model, *fresh);
  fresh->set_training(false);
  const Tensor x = gather_batch(p.val.images, {0, 10, 20, 30});
  const Tensor a = p.folded->forward(x);
  const Tensor b = fresh->forward(x);
  EXPECT_LT(max_abs(sub(a, b)), 0.35f);
  // And predictions agree on almost all samples.
  EXPECT_EQ(argmax_rows(a), argmax_rows(b));
}

TEST(Pipeline, QatModelRetainsAccuracy) {
  auto& p = pipeline();
  const float facc = accuracy(model_fn(*p.float_model), p.val);
  const float qacc = accuracy(model_fn(*p.qat), p.val);
  EXPECT_GT(qacc, facc - 0.06f) << "QAT degraded accuracy too much";
}

TEST(Pipeline, Int8ModelAgreesWithQatSimulation) {
  auto& p = pipeline();
  p.qat->set_training(false);
  const std::int64_t n = 150;
  std::vector<int> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  const Tensor x = gather_batch(p.val.images, idx);
  const Tensor sim = p.qat->forward(x);
  const Tensor real = p.q8.forward(x);
  const auto ps = argmax_rows(sim);
  const auto pr = argmax_rows(real);
  int agree = 0;
  for (std::size_t i = 0; i < ps.size(); ++i) agree += ps[i] == pr[i];
  // Fixed-point rounding may flip a rare borderline sample.
  EXPECT_GE(agree, static_cast<int>(n) - 5)
      << "int8 engine diverges from its own QAT simulation";
}

TEST(Pipeline, Int8ModelAccuracyCloseToFloat) {
  auto& p = pipeline();
  const float facc = accuracy(model_fn(*p.float_model), p.val);
  const float q8acc = accuracy([&](const Tensor& x) { return p.q8.forward(x); },
                               p.val);
  // Paper Table 1: quantized accuracy >= 96% of original.
  EXPECT_GT(q8acc, facc * 0.9f);
}

TEST(Pipeline, Int8GraphStructure) {
  auto& p = pipeline();
  EXPECT_GT(p.q8.num_ops(), 4u);
  EXPECT_GT(p.q8.weight_bytes(), 1000);
  // Input grid should be close to 1/255 (images are in [0,1]).
  EXPECT_NEAR(p.q8.input_qparams().scale, 1.0f / 255.0f, 2e-3f);
}

TEST(Pipeline, CheckpointRoundTripPreservesPredictions) {
  auto& p = pipeline();
  const std::string path = ::testing::TempDir() + "/diva_ckpt.bin";
  save_model_file(*p.float_model, path);

  auto clone = make_digit_net(NetMode::kFloat);
  load_model_file(*clone, path);
  clone->set_training(false);
  p.float_model->set_training(false);
  const Tensor x = gather_batch(p.val.images, {1, 2, 3, 4, 5});
  EXPECT_LT(max_abs(sub(p.float_model->forward(x), clone->forward(x))), 1e-6f);
}

TEST(Pipeline, CheckpointRejectsWrongArchitecture) {
  auto& p = pipeline();
  const std::string path = ::testing::TempDir() + "/diva_ckpt2.bin";
  save_model_file(*p.float_model, path);
  auto other = make_model(Arch::kResNet, 10, NetMode::kFloat);
  EXPECT_THROW(load_model_file(*other, path), Error);
}

TEST(Pipeline, InstabilityIsSmallButNonzero) {
  // Table 1's core observation: top-line accuracy is preserved while a
  // few percent of individual predictions deviate.
  auto& p = pipeline();
  const auto stats = instability(model_fn(*p.float_model),
                                 [&](const Tensor& x) { return p.q8.forward(x); },
                                 p.val);
  EXPECT_LT(stats.instability, 0.25f);
  EXPECT_GT(stats.total, 0);
}

}  // namespace
}  // namespace diva
