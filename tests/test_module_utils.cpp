// Module infrastructure tests: naming/visiting, gradient bookkeeping,
// training-mode propagation, and the attack fast path.
#include <gtest/gtest.h>

#include "nn/activations.h"
#include "nn/composite.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/flatten.h"
#include "nn/init.h"
#include "nn/sequential.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

std::unique_ptr<Sequential> tiny_net() {
  auto net = std::make_unique<Sequential>("net");
  auto main = std::make_unique<Sequential>("main");
  main->emplace<Conv2d>("c1", 2, 2, 3, 1, 1);
  net->add(std::make_unique<Residual>("res", std::move(main)));
  net->emplace<Relu>("relu");
  net->emplace<Flatten>("flat");
  net->emplace<Dense>("fc", 2 * 4 * 4, 3);
  return net;
}

TEST(ModuleUtils, HierarchicalParameterNames) {
  auto net = tiny_net();
  std::vector<std::string> names;
  for (auto& np : net->named_parameters()) names.push_back(np.name);
  EXPECT_EQ(names, (std::vector<std::string>{
                       "net.res.main.c1.weight", "net.res.main.c1.bias",
                       "net.fc.weight", "net.fc.bias"}));
}

TEST(ModuleUtils, VisitReachesEveryModulePreOrder) {
  auto net = tiny_net();
  std::vector<std::string> order;
  net->visit([&order](Module& m) { order.push_back(m.name()); });
  EXPECT_EQ(order, (std::vector<std::string>{"net", "res", "main", "c1",
                                             "relu", "flat", "fc"}));
}

TEST(ModuleUtils, TrainingModePropagates) {
  auto net = tiny_net();
  net->set_training(true);
  int trained = 0;
  net->visit([&trained](Module& m) { trained += m.training(); });
  EXPECT_EQ(trained, 7);
  net->set_training(false);
  int eval = 0;
  net->visit([&eval](Module& m) { eval += !m.training(); });
  EXPECT_EQ(eval, 7);
}

TEST(ModuleUtils, ZeroGradClearsAccumulatedGradients) {
  auto net = tiny_net();
  init_parameters(*net, 1);
  net->set_training(true);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, 2);
  const Tensor out = net->forward(x);
  net->backward(Tensor(out.shape(), 1.0f));
  float before = 0;
  for (auto& np : net->named_parameters()) before += max_abs(np.param->grad);
  EXPECT_GT(before, 0.0f);
  net->zero_grad();
  for (auto& np : net->named_parameters()) {
    EXPECT_EQ(max_abs(np.param->grad), 0.0f) << np.name;
  }
}

TEST(ModuleUtils, GradientsAccumulateAcrossBackwardCalls) {
  Dense fc("fc", 3, 2);
  init_parameters(fc, 3);
  fc.set_training(true);
  const Tensor x = random_tensor(Shape{1, 3}, 4);
  Tensor g(Shape{1, 2}, 1.0f);
  fc.zero_grad();
  (void)fc.forward(x);
  (void)fc.backward(g);
  const Tensor once = fc.weight().grad;
  (void)fc.forward(x);
  (void)fc.backward(g);
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_NEAR(fc.weight().grad[i], 2.0f * once[i], 1e-5f);
  }
}

TEST(ModuleUtils, ParamGradsDisabledSkipsAccumulationButKeepsInputGrad) {
  auto net = tiny_net();
  init_parameters(*net, 5);
  net->set_training(false);
  net->set_param_grads_enabled(false);
  const Tensor x = random_tensor(Shape{1, 2, 4, 4}, 6);
  const Tensor out = net->forward(x);
  net->zero_grad();
  const Tensor dx = net->backward(Tensor(out.shape(), 1.0f));
  EXPECT_GT(max_abs(dx), 0.0f);
  for (auto& np : net->named_parameters()) {
    EXPECT_EQ(max_abs(np.param->grad), 0.0f)
        << np.name << " accumulated despite disabled param grads";
  }
  // Re-enabling restores accumulation.
  net->set_param_grads_enabled(true);
  (void)net->forward(x);
  (void)net->backward(Tensor(out.shape(), 1.0f));
  float total = 0;
  for (auto& np : net->named_parameters()) total += max_abs(np.param->grad);
  EXPECT_GT(total, 0.0f);
}

TEST(ModuleUtils, DisabledParamGradsMatchEnabledInputGrads) {
  // The fast path must not change the input gradient values.
  auto net = tiny_net();
  init_parameters(*net, 7);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{2, 2, 4, 4}, 8);
  const Tensor out = net->forward(x);
  const Tensor probe = random_tensor(out.shape(), 9);

  (void)net->forward(x);
  const Tensor dx_full = net->backward(probe);
  net->set_param_grads_enabled(false);
  (void)net->forward(x);
  const Tensor dx_fast = net->backward(probe);
  EXPECT_EQ(max_abs(sub(dx_full, dx_fast)), 0.0f);
}

TEST(ModuleUtils, NumTrainableElementsCountsWeightsNotBuffers) {
  auto net = tiny_net();
  // conv: 2*2*3*3 + 2 bias = 38; fc: 32*3 + 3 = 99.
  EXPECT_EQ(net->num_trainable_elements(), 38 + 99);
}

TEST(ModuleUtils, IdentityPassesThroughBothDirections) {
  Identity id("id");
  const Tensor x = random_tensor(Shape{3, 5}, 10);
  const Tensor y = id.forward(x);
  const Tensor g = id.backward(y);
  EXPECT_EQ(max_abs(sub(x, y)), 0.0f);
  EXPECT_EQ(max_abs(sub(g, y)), 0.0f);
}

TEST(ModuleUtils, SequentialForwardPrefixBounds) {
  auto net = tiny_net();
  init_parameters(*net, 11);
  net->set_training(false);
  const Tensor x = random_tensor(Shape{1, 2, 4, 4}, 12);
  // Prefix 0 = identity on input.
  const Tensor same = net->forward_prefix(x, 0);
  EXPECT_EQ(max_abs(sub(same, x)), 0.0f);
  // Full prefix equals forward.
  const Tensor full = net->forward_prefix(x, net->size());
  EXPECT_EQ(max_abs(sub(full, net->forward(x))), 0.0f);
  EXPECT_THROW((void)net->forward_prefix(x, net->size() + 1), Error);
}

}  // namespace
}  // namespace diva
