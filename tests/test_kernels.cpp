// Kernel-runtime tests: the blocked sgemm pinned against the naive
// matmul reference, the igemm-backed int8 kernels pinned bit-exactly
// against the retained scalar references, workspace arena behavior, and
// batched gradchecks for the GEMM-backed Conv2d/Dense backward.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernels/gemm.h"
#include "kernels/igemm.h"
#include "kernels/kernel_dispatch.h"
#include "kernels/workspace.h"
#include "nn/conv.h"
#include "nn/dense.h"
#include "nn/init.h"
#include "quant/int8_kernels.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::check_gradients;
using testing::random_tensor;

// ---------------------------------------------------------------------------
// sgemm vs the naive reference.
// ---------------------------------------------------------------------------

void expect_close(const Tensor& got, const Tensor& want, float tol,
                  const char* what) {
  ASSERT_EQ(got.shape(), want.shape()) << what;
  for (std::int64_t i = 0; i < got.numel(); ++i) {
    ASSERT_NEAR(got[i], want[i], tol) << what << " at flat index " << i;
  }
}

TEST(Sgemm, MatchesNaiveReferenceAcrossShapes) {
  // Shapes straddle the small-problem cutoff, the MR/NR tile edges, and
  // the KC/MC/NC block boundaries.
  const std::int64_t shapes[][3] = {
      {1, 1, 1},    {3, 5, 2},     {4, 32, 8},    {5, 33, 7},
      {16, 1024, 27}, {33, 65, 17}, {64, 64, 288}, {70, 130, 260},
      {128, 31, 515},
  };
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const Tensor a = random_tensor(Shape{m, k}, 7 * m + n);
    const Tensor b = random_tensor(Shape{k, n}, 13 * n + k);
    const Tensor want = matmul_reference(a, b);
    Tensor got(Shape{m, n});
    sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n, {});
    // Accumulation order differs from the reference, so exact equality
    // is not guaranteed — 1e-4 absolute on O(1) inputs is ample.
    expect_close(got, want, 1e-4f, "sgemm");
  }
}

TEST(Sgemm, DegenerateAndTailShapesMatchReference) {
  // Microkernel tail paths: single-row/column/depth problems, odd K,
  // and N just off the NR=32 panel and MR=4 tile boundaries.
  const std::int64_t shapes[][3] = {
      {1, 1, 1},   {1, 1, 7},   {1, 9, 1},    {7, 1, 1},    {1, 32, 5},
      {1, 33, 17}, {4, 1, 129}, {2, 130, 1},  {1, 1, 515},  {3, 31, 3},
      {5, 63, 9},  {6, 96, 11}, {31, 1, 255}, {1, 257, 64},
  };
  for (const auto& s : shapes) {
    const std::int64_t m = s[0], n = s[1], k = s[2];
    const Tensor a = random_tensor(Shape{m, k}, 1000 + 7 * m + n);
    const Tensor b = random_tensor(Shape{k, n}, 2000 + 13 * n + k);
    Tensor got(Shape{m, n});
    sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n, {});
    expect_close(got, matmul_reference(a, b), 1e-4f, "sgemm tail");

    // The same degenerate shape through both packing transposes.
    const Tensor at = transpose2d(a);
    const Tensor bt = transpose2d(b);
    got.fill(0.0f);
    sgemm(m, n, k, at.raw(), m, true, bt.raw(), k, true, got.raw(), n, {});
    expect_close(got, matmul_reference(a, b), 1e-4f, "sgemm tail transposed");
  }
}

TEST(Sgemm, TransposedOperandsMatchMaterializedTranspose) {
  const std::int64_t m = 37, n = 41, k = 23;
  const Tensor a = random_tensor(Shape{m, k}, 1);
  const Tensor b = random_tensor(Shape{k, n}, 2);
  const Tensor want = matmul_reference(a, b);
  const Tensor at = transpose2d(a);  // stored [k, m]
  const Tensor bt = transpose2d(b);  // stored [n, k]

  Tensor got(Shape{m, n});
  sgemm(m, n, k, at.raw(), m, true, b.raw(), n, false, got.raw(), n, {});
  expect_close(got, want, 1e-4f, "sgemm trans_a");

  got.fill(0.0f);
  sgemm(m, n, k, a.raw(), k, false, bt.raw(), k, true, got.raw(), n, {});
  expect_close(got, want, 1e-4f, "sgemm trans_b");

  got.fill(0.0f);
  sgemm(m, n, k, at.raw(), m, true, bt.raw(), k, true, got.raw(), n, {});
  expect_close(got, want, 1e-4f, "sgemm trans_a trans_b");
}

TEST(Sgemm, AccumulateAndBiasEpilogues) {
  const std::int64_t m = 19, n = 35, k = 29;
  const Tensor a = random_tensor(Shape{m, k}, 3);
  const Tensor b = random_tensor(Shape{k, n}, 4);
  const Tensor c0 = random_tensor(Shape{m, n}, 5);
  const Tensor prod = matmul_reference(a, b);

  // beta = 1 accumulates into existing C.
  Tensor got = c0;
  sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n,
        {.beta = 1.0f});
  Tensor want = add(c0, prod);
  expect_close(got, want, 1e-4f, "sgemm beta=1");

  // Row bias adds bias[i] to every element of row i.
  const Tensor row_bias = random_tensor(Shape{m}, 6);
  got = Tensor(Shape{m, n});
  sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n,
        {.bias_row = row_bias.raw()});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_NEAR(got.at(i, j), prod.at(i, j) + row_bias[i], 1e-4f);
    }
  }

  // Column bias adds bias[j] to every element of column j.
  const Tensor col_bias = random_tensor(Shape{n}, 7);
  got = Tensor(Shape{m, n});
  sgemm(m, n, k, a.raw(), k, false, b.raw(), n, false, got.raw(), n,
        {.bias_col = col_bias.raw()});
  for (std::int64_t i = 0; i < m; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      ASSERT_NEAR(got.at(i, j), prod.at(i, j) + col_bias[j], 1e-4f);
    }
  }
}

TEST(Sgemm, MatmulEntryPointsAgreeWithReference) {
  const Tensor a = random_tensor(Shape{45, 120}, 8);
  const Tensor b = random_tensor(Shape{120, 33}, 9);
  expect_close(matmul(a, b), matmul_reference(a, b), 1e-4f, "matmul");

  Tensor acc = random_tensor(Shape{45, 33}, 10);
  const Tensor want = add(acc, matmul_reference(a, b));
  matmul_acc(a, b, acc);
  expect_close(acc, want, 1e-4f, "matmul_acc");
}

// ---------------------------------------------------------------------------
// igemm-backed int8 kernels vs the scalar references (bit-exact).
// ---------------------------------------------------------------------------

std::vector<std::int8_t> random_int8(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int8_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int8_t>(
        std::lround(rng.uniform(-128.0f, 127.0f)));
  }
  return v;
}

RequantChannel random_requant(std::int64_t channels, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> w_scales(static_cast<std::size_t>(channels));
  for (auto& s : w_scales) s = rng.uniform(0.001f, 0.05f);
  return make_requant(rng.uniform(0.005f, 0.05f), w_scales,
                      rng.uniform(0.05f, 0.3f));
}

std::vector<std::int32_t> random_bias(std::int64_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = static_cast<std::int32_t>(std::lround(rng.uniform(-4000.f, 4000.f)));
  }
  return v;
}

TEST(Igemm, QconvBitExactVsScalarReference) {
  struct Case {
    ConvGeom g;
    std::int64_t out_c;
  };
  const Case cases[] = {
      {{1, 5, 5, 1, 1, 1, 0}, 1},   {{3, 8, 8, 3, 3, 1, 1}, 16},
      {{8, 9, 7, 3, 3, 2, 1}, 5},   {{4, 16, 16, 5, 5, 1, 2}, 17},
      {{2, 6, 6, 3, 3, 3, 0}, 33},
  };
  int idx = 0;
  for (const auto& c : cases) {
    ++idx;
    const std::int64_t k2 = c.g.in_c * c.g.kernel_h * c.g.kernel_w;
    const std::int64_t ohw = c.g.out_h() * c.g.out_w();
    const auto in = random_int8(c.g.in_c * c.g.in_h * c.g.in_w, 100u + idx);
    const auto w = random_int8(c.out_c * k2, 200u + idx);
    const auto bias = random_bias(c.out_c, 300u + idx);
    const RequantChannel rq = random_requant(c.out_c, 400u + idx);
    const std::int32_t in_zp = -3 + idx, out_zp = 5 - idx;

    std::vector<std::int8_t> got(static_cast<std::size_t>(c.out_c * ohw));
    std::vector<std::int8_t> want(got.size());
    qconv2d(in.data(), c.g, in_zp, w.data(), c.out_c, bias.data(), rq, out_zp,
            kQmin, kQmax, got.data());
    qconv2d_reference(in.data(), c.g, in_zp, w.data(), c.out_c, bias.data(),
                      rq, out_zp, kQmin, kQmax, want.data());
    EXPECT_EQ(got, want) << "qconv2d case " << idx;
  }
}

TEST(Igemm, QdepthwiseBitExactVsScalarReference) {
  const ConvGeom geoms[] = {
      {4, 8, 8, 3, 3, 1, 1}, {7, 9, 9, 3, 3, 2, 1}, {16, 5, 5, 5, 5, 1, 2}};
  int idx = 0;
  for (const auto& g : geoms) {
    ++idx;
    const std::int64_t k2 = g.kernel_h * g.kernel_w;
    const std::int64_t ohw = g.out_h() * g.out_w();
    const auto in = random_int8(g.in_c * g.in_h * g.in_w, 500u + idx);
    const auto w = random_int8(g.in_c * k2, 600u + idx);
    const auto bias = random_bias(g.in_c, 700u + idx);
    const RequantChannel rq = random_requant(g.in_c, 800u + idx);

    std::vector<std::int8_t> got(static_cast<std::size_t>(g.in_c * ohw));
    std::vector<std::int8_t> want(got.size());
    qdepthwise_conv2d(in.data(), g, 2, w.data(), bias.data(), rq, -4, kQmin,
                      kQmax, got.data());
    qdepthwise_conv2d_reference(in.data(), g, 2, w.data(), bias.data(), rq,
                                -4, kQmin, kQmax, want.data());
    EXPECT_EQ(got, want) << "qdepthwise case " << idx;
  }
}

TEST(Igemm, QdenseAndBatchedBitExactVsScalarReference) {
  const std::int64_t in_f = 190, out_f = 33, n = 9;
  const auto w = random_int8(out_f * in_f, 900);
  const auto bias = random_bias(out_f, 901);
  const RequantChannel rq = random_requant(out_f, 902);
  const auto in = random_int8(n * in_f, 903);
  const std::int32_t in_zp = -7, out_zp = 11;

  std::vector<std::int8_t> want(static_cast<std::size_t>(n * out_f));
  for (std::int64_t i = 0; i < n; ++i) {
    qdense_reference(in.data() + i * in_f, in_f, in_zp, w.data(), out_f,
                     bias.data(), rq, out_zp, kQmin, kQmax,
                     want.data() + i * out_f);
  }

  // Single-row GEMM path.
  std::vector<std::int8_t> got_single(want.size());
  for (std::int64_t i = 0; i < n; ++i) {
    qdense(in.data() + i * in_f, in_f, in_zp, w.data(), out_f, bias.data(),
           rq, out_zp, kQmin, kQmax, got_single.data() + i * out_f);
  }
  EXPECT_EQ(got_single, want);

  // Whole-batch GEMM path.
  std::vector<std::int8_t> got_batched(want.size());
  qdense_batched(in.data(), n, in_f, in_zp, w.data(), out_f, bias.data(), rq,
                 out_zp, kQmin, kQmax, got_batched.data());
  EXPECT_EQ(got_batched, want);
}

TEST(Igemm, DegenerateAndTailShapesBitExactVsScalarReference) {
  // igemm tail paths through the qdense entry points: M (out_f), N
  // (batch), and K (in_f) each driven to 1, odd K, and widths just off
  // the packing-panel boundaries.
  const std::int64_t shapes[][3] = {
      // {out_f, in_f, batch}
      {1, 1, 1},  {1, 7, 3},  {9, 1, 2},   {1, 129, 1}, {33, 3, 1},
      {5, 31, 4}, {2, 257, 2}, {65, 17, 5}, {3, 96, 7},
  };
  int idx = 0;
  for (const auto& s : shapes) {
    ++idx;
    const std::int64_t out_f = s[0], in_f = s[1], n = s[2];
    const auto w = random_int8(out_f * in_f, 1100u + idx);
    const auto bias = random_bias(out_f, 1200u + idx);
    const RequantChannel rq = random_requant(out_f, 1300u + idx);
    const auto in = random_int8(n * in_f, 1400u + idx);
    const std::int32_t in_zp = idx - 5, out_zp = 3 - idx;

    std::vector<std::int8_t> want(static_cast<std::size_t>(n * out_f));
    for (std::int64_t i = 0; i < n; ++i) {
      qdense_reference(in.data() + i * in_f, in_f, in_zp, w.data(), out_f,
                       bias.data(), rq, out_zp, kQmin, kQmax,
                       want.data() + i * out_f);
    }
    std::vector<std::int8_t> got(want.size());
    qdense_batched(in.data(), n, in_f, in_zp, w.data(), out_f, bias.data(),
                   rq, out_zp, kQmin, kQmax, got.data());
    EXPECT_EQ(got, want) << "qdense_batched shape case " << idx;
  }
}

TEST(Igemm, QconvSinglePixelAndSingleChannelTails) {
  // Conv geometries whose im2col panels degenerate to K=1 / N=1 GEMMs.
  struct Case {
    ConvGeom g;
    std::int64_t out_c;
  };
  const Case cases[] = {
      {{1, 1, 1, 1, 1, 1, 0}, 1},   // 1x1 image, 1x1 kernel: M=N=K=1
      {{1, 3, 3, 3, 3, 1, 0}, 1},   // single output pixel, odd K=9
      {{5, 1, 1, 1, 1, 1, 0}, 33},  // channel-only contraction, M=33 tail
      {{2, 4, 1, 3, 1, 1, 1}, 3},   // width-1 input, asymmetric kernel
  };
  int idx = 100;
  for (const auto& c : cases) {
    ++idx;
    const std::int64_t ohw = c.g.out_h() * c.g.out_w();
    const auto in = random_int8(c.g.in_c * c.g.in_h * c.g.in_w, 10u + idx);
    const auto w =
        random_int8(c.out_c * c.g.in_c * c.g.kernel_h * c.g.kernel_w,
                    20u + idx);
    const auto bias = random_bias(c.out_c, 30u + idx);
    const RequantChannel rq = random_requant(c.out_c, 40u + idx);

    std::vector<std::int8_t> got(static_cast<std::size_t>(c.out_c * ohw));
    std::vector<std::int8_t> want(got.size());
    qconv2d(in.data(), c.g, 1, w.data(), c.out_c, bias.data(), rq, -2, kQmin,
            kQmax, got.data());
    qconv2d_reference(in.data(), c.g, 1, w.data(), c.out_c, bias.data(), rq,
                      -2, kQmin, kQmax, want.data());
    EXPECT_EQ(got, want) << "qconv2d tail case " << idx;
  }
}

TEST(Igemm, ActivationClampIsHonored) {
  const std::int64_t in_f = 64, out_f = 8;
  const auto w = random_int8(out_f * in_f, 950);
  const auto in = random_int8(in_f, 951);
  const RequantChannel rq = random_requant(out_f, 952);
  std::vector<std::int8_t> out(static_cast<std::size_t>(out_f));
  qdense(in.data(), in_f, 0, w.data(), out_f, nullptr, rq, 3, 3, 40,
         out.data());
  for (const std::int8_t v : out) {
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 40);
  }
}

// ---------------------------------------------------------------------------
// Elementwise / pooling quantized op catalog: bit-exact pins.
// ---------------------------------------------------------------------------

/// Restores the startup-resolved ISA tier when a per-tier test ends.
class TierGuard {
 public:
  TierGuard() : orig_(active_isa_tier()) {}
  ~TierGuard() { force_isa_tier(orig_); }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  IsaTier orig_;
};

QuantParams random_qparams(std::uint64_t seed) {
  Rng rng(seed);
  return {rng.uniform(0.005f, 0.08f),
          static_cast<std::int32_t>(std::lround(rng.uniform(-30.f, 30.f)))};
}

TEST(QuantOps, QlutBitExactVsFloatReferenceAtEveryIsaTier) {
  // Every representable int8 input once (exhaustive: the table has no
  // untested entries), then a fuzz buffer, for each activation kind and
  // each runnable tier. The reference recomputes per element through
  // float math, so this pins table construction AND application.
  std::vector<std::int8_t> exhaustive(256);
  for (int q = kQmin; q <= kQmax; ++q) {
    exhaustive[static_cast<std::size_t>(q - kQmin)] =
        static_cast<std::int8_t>(q);
  }
  const LutKind kinds[] = {LutKind::kSigmoid, LutKind::kHardSigmoid,
                           LutKind::kLeakyRelu};
  TierGuard guard;
  for (const IsaTier tier : available_isa_tiers()) {
    force_isa_tier(tier);
    int idx = 0;
    for (const LutKind kind : kinds) {
      ++idx;
      const QuantParams qp_in = random_qparams(3000u + idx);
      const QuantParams qp_out = kind == LutKind::kLeakyRelu
                                     ? random_qparams(3100u + idx)
                                     : QuantParams{1.0f / 256.0f, -128};
      const float slope = 0.1f;
      const auto lut = build_activation_lut(kind, qp_in, qp_out, slope);
      ASSERT_EQ(lut.size(), 256u);

      for (const std::int64_t n : {std::int64_t{256}, std::int64_t{1000}}) {
        const std::vector<std::int8_t> in =
            n == 256 ? exhaustive : random_int8(n, 3200u + idx);
        std::vector<std::int8_t> got(in.size()), want(in.size());
        qlut({in.data(), in.size()}, {lut.data(), lut.size()},
             {got.data(), got.size()});
        qlut_reference({in.data(), in.size()}, kind, qp_in, qp_out, slope,
                       {want.data(), want.size()});
        EXPECT_EQ(got, want) << "qlut kind " << idx << " n=" << n << " tier "
                             << isa_tier_name(tier);
      }
    }
  }
}

TEST(QuantOps, QaddDoubleRescaleStaysWithinOneLsbOfFloatMath) {
  // qadd's TFLite double-rescale (shift-by-20 then fixed-point
  // multiply) must agree with exact float addition to one output LSB
  // for every operand combination — fuzzed over mismatched input grids.
  for (int round = 0; round < 4; ++round) {
    const QuantParams qp_a = random_qparams(4000u + round);
    const QuantParams qp_b = random_qparams(4100u + round);
    const QuantParams qp_out = random_qparams(4200u + round);
    const auto a = random_int8(512, 4300u + round);
    const auto b = random_int8(512, 4400u + round);
    std::vector<std::int8_t> out(a.size());
    qadd({a.data(), a.size()}, qp_a, {b.data(), b.size()}, qp_b, qp_out,
         kQmin, kQmax, {out.data(), out.size()});
    for (std::size_t i = 0; i < out.size(); ++i) {
      const float real = qp_a.dequantize(a[i]) + qp_b.dequantize(b[i]);
      const std::int8_t want = qp_out.quantize(real);
      ASSERT_NEAR(static_cast<int>(out[i]), static_cast<int>(want), 1)
          << "qadd round " << round << " element " << i;
    }
  }
}

TEST(QuantOps, ElementwiseOpsBitIdenticalAcrossIsaTiers) {
  // qadd / qavgpool2d / qglobal_avgpool / qlut are part of the executor
  // op catalog: whatever tier dispatch resolves, their output bytes
  // must match the scalar tier's. (They are scalar today, so this pins
  // the policy any future vectorization must keep.)
  const ConvGeom pool_g{6, 12, 12, 2, 2, 2, 0};
  const auto in = random_int8(pool_g.in_c * pool_g.in_h * pool_g.in_w, 5000);
  const auto b = random_int8(in.size(), 5001);
  const QuantParams qp_a = random_qparams(5002);
  const QuantParams qp_b = random_qparams(5003);
  const QuantParams qp_out = random_qparams(5004);
  const auto lut =
      build_activation_lut(LutKind::kSigmoid, qp_a, {1.0f / 256.0f, -128});
  const std::int64_t pooled =
      pool_g.in_c * pool_g.out_h() * pool_g.out_w();

  struct Baselines {
    std::vector<std::int8_t> add, avg, gavg, lut;
  };
  const auto run_all = [&](Baselines* r) {
    r->add.resize(in.size());
    qadd({in.data(), in.size()}, qp_a, {b.data(), b.size()}, qp_b, qp_out,
         kQmin, kQmax, {r->add.data(), r->add.size()});
    r->avg.resize(static_cast<std::size_t>(pooled));
    qavgpool2d(in.data(), pool_g, r->avg.data());
    r->gavg.resize(static_cast<std::size_t>(pool_g.in_c));
    qglobal_avgpool(in.data(), pool_g.in_c, pool_g.in_h * pool_g.in_w,
                    r->gavg.data());
    r->lut.resize(in.size());
    qlut({in.data(), in.size()}, {lut.data(), lut.size()},
         {r->lut.data(), r->lut.size()});
  };

  TierGuard guard;
  force_isa_tier(IsaTier::kScalar);
  Baselines scalar;
  run_all(&scalar);
  for (const IsaTier tier : available_isa_tiers()) {
    force_isa_tier(tier);
    Baselines got;
    run_all(&got);
    EXPECT_EQ(got.add, scalar.add) << isa_tier_name(tier);
    EXPECT_EQ(got.avg, scalar.avg) << isa_tier_name(tier);
    EXPECT_EQ(got.gavg, scalar.gavg) << isa_tier_name(tier);
    EXPECT_EQ(got.lut, scalar.lut) << isa_tier_name(tier);
  }
}

// ---------------------------------------------------------------------------
// Workspace arena.
// ---------------------------------------------------------------------------

TEST(Workspace, PointersSurviveGrowthWithinFrame) {
  Workspace ws;
  auto frame = ws.frame();
  float* small = frame.alloc<float>(16);
  for (int i = 0; i < 16; ++i) small[i] = static_cast<float>(i);
  // Force several new blocks; earlier allocations must stay intact.
  for (int round = 0; round < 4; ++round) {
    std::int8_t* big = frame.alloc<std::int8_t>(1 << 20);
    big[0] = 1;
    big[(1 << 20) - 1] = 2;
  }
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(small[i], static_cast<float>(i));
  }
}

TEST(Workspace, CoalescesToOneBlockAfterOutermostFrame) {
  Workspace ws;
  {
    auto frame = ws.frame();
    (void)frame.alloc<float>(1000);
    {
      auto inner = ws.frame();
      (void)inner.alloc<double>(100000);
      (void)inner.alloc<std::int32_t>(300000);
    }
    (void)frame.alloc<float>(200000);
  }
  EXPECT_EQ(ws.block_count(), 1u);
  const std::size_t cap = ws.capacity();
  // Steady state: a same-shaped frame allocates no new blocks.
  {
    auto frame = ws.frame();
    (void)frame.alloc<float>(1000);
    (void)frame.alloc<float>(200000);
  }
  EXPECT_EQ(ws.block_count(), 1u);
  EXPECT_EQ(ws.capacity(), cap);
}

TEST(Workspace, AllocZeroedReturnsZeros) {
  auto frame = Workspace::tls().frame();
  const std::int32_t* p = frame.alloc_zeroed<std::int32_t>(4096);
  for (int i = 0; i < 4096; ++i) ASSERT_EQ(p[i], 0);
}

// ---------------------------------------------------------------------------
// GEMM-backed layer backward: batched gradient checks.
// ---------------------------------------------------------------------------

TEST(KernelBackward, Conv2dBatchedGradcheck) {
  Conv2d conv("conv", 3, 5, 3, /*stride=*/1, /*pad=*/1);
  init_parameters(conv, 21);
  check_gradients(conv, random_tensor(Shape{3, 3, 7, 7}, 22), 23);
}

TEST(KernelBackward, Conv2dStridedNoPadGradcheck) {
  Conv2d conv("conv", 2, 4, 3, /*stride=*/2, /*pad=*/0);
  init_parameters(conv, 31);
  check_gradients(conv, random_tensor(Shape{2, 2, 9, 9}, 32), 33);
}

TEST(KernelBackward, DenseBatchedGradcheck) {
  Dense dense("fc", 26, 11);
  init_parameters(dense, 41);
  check_gradients(dense, random_tensor(Shape{4, 26}, 42), 43);
}

TEST(KernelBackward, CachesReleasedAfterBackward) {
  // backward() without a fresh forward() must fail loudly instead of
  // silently reusing stale caches (they are released at step end).
  Conv2d conv("conv", 2, 3, 3, 1, 1);
  init_parameters(conv, 51);
  const Tensor x = random_tensor(Shape{2, 2, 6, 6}, 52);
  const Tensor y = conv.forward(x);
  Tensor gy(y.shape(), 1.0f);
  (void)conv.backward(gy);
  EXPECT_THROW(conv.backward(gy), Error);

  Dense dense("fc", 12, 7);
  init_parameters(dense, 53);
  const Tensor xd = random_tensor(Shape{3, 12}, 54);
  const Tensor yd = dense.forward(xd);
  Tensor gyd(yd.shape(), 1.0f);
  (void)dense.backward(gyd);
  EXPECT_THROW(dense.backward(gyd), Error);
}

}  // namespace
}  // namespace diva
