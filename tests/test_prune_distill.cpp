// Pruning and distillation tests.
#include <gtest/gtest.h>

#include "core/trainer.h"
#include "data/synth_digits.h"
#include "distill/distill.h"
#include "nn/dense.h"
#include "nn/loss.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "nn/init.h"
#include "prune/prune.h"
#include "test_helpers.h"

namespace diva {
namespace {

TEST(Prune, PruneToReachesRequestedSparsityPerLayer) {
  auto m = make_digit_net(NetMode::kFloat);
  init_parameters(*m, 1);
  MagnitudePruner pruner(*m, PruneConfig{.target_sparsity = 0.5f});
  pruner.prune_to(0.5f);
  EXPECT_NEAR(pruner.actual_sparsity(), 0.5f, 0.02f);
}

TEST(Prune, KeepsLargestMagnitudes) {
  Sequential net("net");
  auto& fc = net.emplace<Dense>("fc", 4, 2);
  float vals[8] = {0.9f, -0.1f, 0.5f, -0.05f, 0.01f, 0.8f, -0.3f, 0.02f};
  for (int i = 0; i < 8; ++i) fc.weight().value[i] = vals[i];
  MagnitudePruner pruner(net, PruneConfig{.target_sparsity = 0.5f});
  pruner.prune_to(0.5f);
  // Survivors should be the four largest |w|: 0.9, 0.8, 0.5, -0.3.
  EXPECT_EQ(fc.weight().value[0], 0.9f);
  EXPECT_EQ(fc.weight().value[5], 0.8f);
  EXPECT_EQ(fc.weight().value[2], 0.5f);
  EXPECT_EQ(fc.weight().value[6], -0.3f);
  EXPECT_EQ(fc.weight().value[1], 0.0f);
  EXPECT_EQ(fc.weight().value[3], 0.0f);
  EXPECT_EQ(fc.weight().value[4], 0.0f);
  EXPECT_EQ(fc.weight().value[7], 0.0f);
}

TEST(Prune, ScheduleIsMonotoneAndReachesTarget) {
  auto m = make_digit_net(NetMode::kFloat);
  init_parameters(*m, 2);
  PruneConfig cfg;
  cfg.target_sparsity = 0.7f;
  cfg.ramp_steps = 100;
  cfg.update_every = 5;
  MagnitudePruner pruner(*m, cfg);
  float prev = -1.0f;
  for (int step = 0; step < 120; ++step) {
    pruner.step();
    const float s = pruner.scheduled_sparsity();
    EXPECT_GE(s, prev - 1e-6f);
    prev = s;
  }
  EXPECT_NEAR(pruner.scheduled_sparsity(), 0.7f, 1e-5f);
  EXPECT_NEAR(pruner.actual_sparsity(), 0.7f, 0.02f);
}

TEST(Prune, MasksPersistThroughTrainingSteps) {
  SynthDigits gen(5);
  const Dataset train = gen.generate(10, 0);
  auto m = make_digit_net(NetMode::kFloat);
  init_parameters(*m, 3);
  MagnitudePruner pruner(*m, PruneConfig{.target_sparsity = 0.5f});
  pruner.prune_to(0.5f);

  TrainConfig cfg;
  cfg.epochs = 1;
  cfg.lr = 0.05f;
  cfg.post_step = [&pruner] { pruner.apply_masks(); };
  train_classifier(*m, train, cfg);
  // Gradient updates would densify without the post-step mask.
  EXPECT_NEAR(pruner.actual_sparsity(), 0.5f, 0.02f);
}

TEST(Prune, FromExistingZerosFreezesPattern) {
  auto m = make_digit_net(NetMode::kFolded);
  init_parameters(*m, 4);
  MagnitudePruner first(*m, PruneConfig{.target_sparsity = 0.6f});
  first.prune_to(0.6f);

  MagnitudePruner frozen = MagnitudePruner::from_existing_zeros(*m);
  EXPECT_NEAR(frozen.actual_sparsity(), 0.6f, 0.02f);
  // Perturb all weights, re-apply: zeros return exactly.
  for (auto& np : m->named_parameters()) {
    if (np.param->trainable) {
      for (std::int64_t i = 0; i < np.param->value.numel(); ++i) {
        np.param->value[i] += 0.01f;
      }
    }
  }
  frozen.apply_masks();
  EXPECT_NEAR(frozen.actual_sparsity(), 0.6f, 0.02f);
}

TEST(Prune, RejectsInvalidConfig) {
  auto m = make_digit_net(NetMode::kFloat);
  EXPECT_THROW(MagnitudePruner(*m, PruneConfig{.target_sparsity = 1.0f}),
               Error);
  PruneConfig bad;
  bad.ramp_steps = 0;
  EXPECT_THROW(MagnitudePruner(*m, bad), Error);
}

// ---------------------------------------------------------------------------

struct DistillFixture {
  Dataset train, pool, val;
  std::unique_ptr<Sequential> teacher;

  DistillFixture() {
    SynthDigits gen(31);
    train = gen.generate(40, 0);
    pool = gen.generate(40, 10000);  // attacker's disjoint pool
    val = gen.generate(10, 20000);
    teacher = make_digit_net(NetMode::kFloat);
    init_parameters(*teacher, 5);
    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.seed = 6;
    train_classifier(*teacher, train, cfg);
  }
};

DistillFixture& dfix() {
  static DistillFixture f;
  return f;
}

TEST(Distill, StudentLearnsToAgreeWithTeacher) {
  auto& f = dfix();
  const TeacherFn teacher_fn = [&](const Tensor& x) {
    f.teacher->set_training(false);
    return f.teacher->forward(x);
  };

  auto student = make_digit_net(NetMode::kFolded);
  init_parameters(*student, 99);
  const float before = agreement(*student, teacher_fn, f.val.images);

  DistillConfig cfg;
  cfg.epochs = 10;
  cfg.seed = 7;
  distill(*student, teacher_fn, f.pool.images, cfg);
  const float after = agreement(*student, teacher_fn, f.val.images);
  EXPECT_GT(after, before + 0.3f);
  EXPECT_GT(after, 0.7f);
}

TEST(Distill, KlDivergenceDropsAfterDistillation) {
  auto& f = dfix();
  const TeacherFn teacher_fn = [&](const Tensor& x) {
    f.teacher->set_training(false);
    return f.teacher->forward(x);
  };
  auto student = make_digit_net(NetMode::kFolded);
  init_parameters(*student, 123);
  student->set_training(false);
  const Tensor t_logits = teacher_fn(f.val.images);
  const float kl_before =
      kl_divergence(t_logits, student->forward(f.val.images));
  DistillConfig cfg;
  cfg.epochs = 8;
  distill(*student, teacher_fn, f.pool.images, cfg);
  student->set_training(false);
  const float kl_after =
      kl_divergence(t_logits, student->forward(f.val.images));
  EXPECT_LT(kl_after, kl_before * 0.5f);
}

TEST(Distill, WorksWithPredictionOnlyTeacher) {
  // Blackbox condition: teacher callback may be any function — here a
  // deliberately quantized-logit teacher (coarse outputs).
  auto& f = dfix();
  const TeacherFn coarse_teacher = [&](const Tensor& x) {
    f.teacher->set_training(false);
    Tensor logits = f.teacher->forward(x);
    for (std::int64_t i = 0; i < logits.numel(); ++i) {
      logits[i] = std::round(logits[i] * 2.0f) / 2.0f;
    }
    return logits;
  };
  auto student = make_digit_net(NetMode::kFolded);
  init_parameters(*student, 321);
  DistillConfig cfg;
  cfg.epochs = 8;
  distill(*student, coarse_teacher, f.pool.images, cfg);
  EXPECT_GT(agreement(*student, coarse_teacher, f.val.images), 0.6f);
}

}  // namespace
}  // namespace diva
