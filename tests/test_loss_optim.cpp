// Loss-function and optimizer tests.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/dense.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "nn/optimizer.h"
#include "nn/batchnorm.h"
#include "nn/sequential.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

TEST(Loss, CrossEntropyValueMatchesManual) {
  Tensor logits(Shape{1, 3});
  logits[0] = 1.0f; logits[1] = 2.0f; logits[2] = 0.5f;
  const std::vector<int> labels{1};
  const LossGrad lg = softmax_cross_entropy(logits, labels);
  const Tensor p = softmax_rows(logits);
  EXPECT_NEAR(lg.loss, -std::log(p[1]), 1e-5f);
}

TEST(Loss, CrossEntropyGradientIsSoftmaxMinusOneHot) {
  const Tensor logits = random_tensor(Shape{4, 6}, 1, -2.0f, 2.0f);
  const std::vector<int> labels{0, 3, 5, 2};
  const LossGrad lg = softmax_cross_entropy(logits, labels);
  const Tensor p = softmax_rows(logits);
  for (std::int64_t i = 0; i < 4; ++i) {
    for (std::int64_t j = 0; j < 6; ++j) {
      const float onehot =
          static_cast<int>(j) == labels[static_cast<std::size_t>(i)] ? 1.0f : 0.0f;
      EXPECT_NEAR(lg.dlogits.at(i, j), (p.at(i, j) - onehot) / 4.0f, 1e-5f);
    }
  }
}

TEST(Loss, CrossEntropyGradientMatchesFiniteDifference) {
  Tensor logits = random_tensor(Shape{2, 4}, 2, -1.0f, 1.0f);
  const std::vector<int> labels{3, 1};
  const LossGrad lg = softmax_cross_entropy(logits, labels);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + eps;
    const float up = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig - eps;
    const float dn = softmax_cross_entropy(logits, labels).loss;
    logits[i] = orig;
    EXPECT_NEAR(lg.dlogits[i], (up - dn) / (2 * eps), 1e-3f);
  }
}

TEST(Loss, CrossEntropyRejectsBadLabels) {
  const Tensor logits = random_tensor(Shape{1, 3}, 3);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{3}), Error);
  EXPECT_THROW(softmax_cross_entropy(logits, std::vector<int>{-1}), Error);
}

TEST(Loss, SoftCrossEntropyAgainstOwnSoftmaxHasSmallGradient) {
  const Tensor logits = random_tensor(Shape{3, 5}, 4);
  const Tensor p = softmax_rows(logits);
  const LossGrad lg = soft_cross_entropy(logits, p);
  EXPECT_LT(max_abs(lg.dlogits), 1e-6f);  // gradient zero at the optimum
}

TEST(Loss, DistillationGradientMatchesFiniteDifference) {
  Tensor student = random_tensor(Shape{2, 4}, 5, -1.0f, 1.0f);
  const Tensor teacher = random_tensor(Shape{2, 4}, 6, -1.0f, 1.0f);
  const std::vector<int> labels{0, 2};
  const float T = 3.0f, alpha = 0.4f;
  const LossGrad lg = distillation_loss(student, teacher, labels, T, alpha);
  const float eps = 1e-3f;
  for (std::int64_t i = 0; i < student.numel(); ++i) {
    const float orig = student[i];
    student[i] = orig + eps;
    const float up = distillation_loss(student, teacher, labels, T, alpha).loss;
    student[i] = orig - eps;
    const float dn = distillation_loss(student, teacher, labels, T, alpha).loss;
    student[i] = orig;
    EXPECT_NEAR(lg.dlogits[i], (up - dn) / (2 * eps), 2e-3f);
  }
}

TEST(Loss, KlDivergenceZeroOnIdenticalLogitsAndPositiveOtherwise) {
  const Tensor a = random_tensor(Shape{3, 4}, 7);
  const Tensor b = random_tensor(Shape{3, 4}, 8);
  EXPECT_NEAR(kl_divergence(a, a), 0.0f, 1e-6f);
  EXPECT_GT(kl_divergence(a, b), 0.0f);
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  // Minimize ||Wx - t||^2 through the Dense layer machinery.
  Sequential net("net");
  auto& fc = net.emplace<Dense>("fc", 2, 1);
  fc.weight().value[0] = 0.0f;
  fc.weight().value[1] = 0.0f;
  Sgd opt(net.named_parameters(), 0.05f, 0.0f);

  Tensor x(Shape{4, 2});
  x.at(0, 0) = 1; x.at(0, 1) = 0;
  x.at(1, 0) = 0; x.at(1, 1) = 1;
  x.at(2, 0) = 1; x.at(2, 1) = 1;
  x.at(3, 0) = 2; x.at(3, 1) = -1;
  const float target_w[2] = {1.5f, -0.7f};
  Tensor t(Shape{4, 1});
  for (int i = 0; i < 4; ++i) {
    t.at(i, 0) = target_w[0] * x.at(i, 0) + target_w[1] * x.at(i, 1) + 0.3f;
  }

  for (int iter = 0; iter < 1200; ++iter) {
    opt.zero_grad();
    const Tensor y = net.forward(x);
    Tensor dy(y.shape());
    for (std::int64_t i = 0; i < y.numel(); ++i) dy[i] = 2 * (y[i] - t[i]) / 4;
    net.backward(dy);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], target_w[0], 1e-2f);
  EXPECT_NEAR(fc.weight().value[1], target_w[1], 1e-2f);
  EXPECT_NEAR(fc.bias().value[0], 0.3f, 1e-2f);
}

TEST(Optimizer, MomentumAcceleratesDescent) {
  auto loss_after = [](float momentum) {
    Sequential net("net");
    auto& fc = net.emplace<Dense>("fc", 1, 1, /*bias=*/false);
    fc.weight().value[0] = 5.0f;
    Sgd opt(net.named_parameters(), 0.02f, momentum);
    Tensor x(Shape{1, 1}, 1.0f);
    float l = 0;
    for (int i = 0; i < 30; ++i) {
      opt.zero_grad();
      const Tensor y = net.forward(x);
      l = y[0] * y[0];
      Tensor dy(y.shape());
      dy[0] = 2 * y[0];
      net.backward(dy);
      opt.step();
    }
    return l;
  };
  EXPECT_LT(loss_after(0.9f), loss_after(0.0f));
}

TEST(Optimizer, AdamConvergesAndSkipsBuffers) {
  Sequential net("net");
  auto& fc = net.emplace<Dense>("fc", 1, 1, /*bias=*/false);
  fc.weight().value[0] = 3.0f;
  Adam opt(net.named_parameters(), 0.1f);
  Tensor x(Shape{1, 1}, 1.0f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    const Tensor y = net.forward(x);
    Tensor dy(y.shape());
    dy[0] = 2 * y[0];
    net.backward(dy);
    opt.step();
  }
  EXPECT_NEAR(fc.weight().value[0], 0.0f, 1e-2f);
}

TEST(Optimizer, WeightDecayShrinksWeights) {
  Sequential net("net");
  auto& fc = net.emplace<Dense>("fc", 1, 1, /*bias=*/false);
  fc.weight().value[0] = 1.0f;
  Sgd opt(net.named_parameters(), 0.1f, 0.0f, /*weight_decay=*/0.1f);
  // Zero task gradient: only decay acts.
  Tensor x(Shape{1, 1}, 1.0f);
  for (int i = 0; i < 10; ++i) {
    opt.zero_grad();
    (void)net.forward(x);
    opt.step();
  }
  EXPECT_LT(fc.weight().value[0], 0.95f);
  EXPECT_GT(fc.weight().value[0], 0.5f);
}

TEST(Optimizer, BuffersAreNeverUpdated) {
  // BatchNorm running stats are non-trainable: an optimizer step must
  // not touch them even with garbage in their grad slot.
  Sequential net("net");
  auto& bn = net.emplace<BatchNorm2d>("bn", 2);
  bn.running_mean().value[0] = 0.5f;
  bn.running_mean().grad.fill(100.0f);
  Sgd opt(net.named_parameters(), 1.0f);
  opt.step();
  EXPECT_EQ(bn.running_mean().value[0], 0.5f);
}

}  // namespace
}  // namespace diva
