// Parameterized property sweep: the int8 convolution kernel against a
// float reference across geometries (kernel/stride/pad/channels), and
// quantization-grid properties across observed ranges.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "quant/fake_quant.h"
#include "quant/int8_kernels.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

// (in_c, out_c, kernel, stride, pad, hw)
using ConvCase = std::tuple<int, int, int, int, int, int>;

class QConvSweep : public ::testing::TestWithParam<ConvCase> {};

TEST_P(QConvSweep, MatchesFloatReferenceWithinQuantizationError) {
  const auto [in_c, out_c, k, stride, pad, hw] = GetParam();
  ConvGeom g{in_c, hw, hw, k, k, stride, pad};
  if (g.out_h() <= 0 || g.out_w() <= 0) GTEST_SKIP();

  Rng rng(static_cast<std::uint64_t>(in_c * 31 + out_c * 7 + k));
  Tensor x(Shape{in_c, hw, hw});
  x.fill_uniform(rng, 0.0f, 1.0f);
  Tensor w(Shape{out_c, in_c, k, k});
  w.fill_uniform(rng, -0.5f, 0.5f);
  Tensor bias(Shape{out_c});
  bias.fill_uniform(rng, -0.25f, 0.25f);

  // Output range from the float reference (pad with slack).
  const float acc_bound = 0.5f * static_cast<float>(in_c * k * k) + 0.5f;
  const QuantParams in_qp = choose_qparams(0.0f, 1.0f);
  const QuantParams out_qp = choose_qparams(-acc_bound, acc_bound);

  const auto w_scales = per_channel_scales(w);
  const auto wq = quantize_per_channel(w, w_scales);
  const auto xq = quantize_tensor(x, in_qp);
  std::vector<std::int32_t> bq(static_cast<std::size_t>(out_c));
  for (int c = 0; c < out_c; ++c) {
    bq[static_cast<std::size_t>(c)] = static_cast<std::int32_t>(std::lround(
        bias[c] / (in_qp.scale * w_scales[static_cast<std::size_t>(c)])));
  }
  const RequantChannel rq = make_requant(in_qp.scale, w_scales, out_qp.scale);
  std::vector<std::int8_t> out(
      static_cast<std::size_t>(out_c * g.out_h() * g.out_w()));
  qconv2d(xq.data(), g, in_qp.zero_point, wq.data(), out_c, bq.data(), rq,
          out_qp.zero_point, kQmin, kQmax, out.data());

  // Float reference at a few probe positions.
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  for (std::int64_t oc = 0; oc < out_c; ++oc) {
    for (std::int64_t y = 0; y < oh; y += std::max<std::int64_t>(1, oh / 3)) {
      for (std::int64_t xo = 0; xo < ow;
           xo += std::max<std::int64_t>(1, ow / 3)) {
        double ref = bias[oc];
        for (std::int64_t c = 0; c < in_c; ++c) {
          for (std::int64_t kh = 0; kh < k; ++kh) {
            const std::int64_t iy = y * stride - pad + kh;
            if (iy < 0 || iy >= hw) continue;
            for (std::int64_t kw = 0; kw < k; ++kw) {
              const std::int64_t ix = xo * stride - pad + kw;
              if (ix < 0 || ix >= hw) continue;
              ref += w.at(oc, c, kh, kw) * x[(c * hw + iy) * hw + ix];
            }
          }
        }
        const float got = out_qp.dequantize(
            out[static_cast<std::size_t>((oc * oh + y) * ow + xo)]);
        // Error budget: input rounding accumulates over the receptive
        // field; output grid contributes out_qp.scale.
        const float tol = 0.004f * static_cast<float>(in_c * k * k) +
                          out_qp.scale * 1.5f;
        EXPECT_NEAR(got, ref, tol)
            << "oc=" << oc << " y=" << y << " x=" << xo << " geom=(" << in_c
            << "," << out_c << "," << k << "," << stride << "," << pad << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, QConvSweep,
    ::testing::Values(ConvCase{1, 1, 1, 1, 0, 6},   // pointwise minimal
                      ConvCase{3, 8, 1, 1, 0, 8},   // pointwise wide
                      ConvCase{2, 4, 3, 1, 1, 8},   // same-pad 3x3
                      ConvCase{4, 4, 3, 2, 1, 9},   // strided odd input
                      ConvCase{3, 2, 5, 1, 2, 10},  // 5x5 kernel
                      ConvCase{8, 8, 3, 2, 0, 8},   // no pad, strided
                      ConvCase{1, 6, 7, 1, 3, 12}   // large kernel
                      ));

class QParamsSweep : public ::testing::TestWithParam<std::pair<float, float>> {
};

TEST_P(QParamsSweep, GridPropertiesHoldAcrossRanges) {
  const auto [lo, hi] = GetParam();
  const QuantParams qp = choose_qparams(lo, hi);
  // Zero exactly representable.
  EXPECT_EQ(qp.dequantize(qp.quantize(0.0f)), 0.0f);
  // Quantize-dequantize error bounded by scale/2 inside the range.
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const float x = rng.uniform(std::min(lo, 0.0f), std::max(hi, 0.0f));
    EXPECT_LE(std::fabs(qp.dequantize(qp.quantize(x)) - x),
              qp.scale * 0.5f + 1e-6f);
  }
  // Fake-quant is idempotent.
  const Tensor t = random_tensor(Shape{64}, 3, lo - 0.5f, hi + 0.5f);
  const Tensor once = fake_quantize(t, qp);
  const Tensor twice = fake_quantize(once, qp);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(once[i], twice[i]);
}

INSTANTIATE_TEST_SUITE_P(
    Ranges, QParamsSweep,
    ::testing::Values(std::pair{-1.0f, 1.0f}, std::pair{0.0f, 6.0f},
                      std::pair{-0.01f, 0.02f}, std::pair{-100.0f, 3.0f},
                      std::pair{0.0f, 1.0f}, std::pair{-5.0f, 0.0f}));

}  // namespace
}  // namespace diva
