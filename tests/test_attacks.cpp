// Attack unit and property tests: constraint satisfaction, determinism,
// loss-gradient math, and behavioral invariants on tiny trained models.
#include <gtest/gtest.h>

#include "attack/registry.h"
#include "core/trainer.h"
#include "data/synth_digits.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "nn/init.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

/// Tiny trained digit model shared by the behavioral tests.
struct AttackFixture {
  Dataset train, val;
  std::unique_ptr<Sequential> model;
  std::unique_ptr<Sequential> twin;  // slightly different second model

  AttackFixture() {
    SynthDigits gen(99);
    train = gen.generate(50, 0);
    val = gen.generate(10, 5000);
    model = make_digit_net(NetMode::kFloat);
    init_parameters(*model, 1);
    TrainConfig cfg;
    cfg.epochs = 10;
    cfg.seed = 2;
    train_classifier(*model, train, cfg);

    twin = make_digit_net(NetMode::kFloat);
    init_parameters(*twin, 3);
    TrainConfig cfg2 = cfg;
    cfg2.seed = 4;
    cfg2.epochs = 8;
    train_classifier(*twin, train, cfg2);
  }
};

AttackFixture& fixture() {
  static AttackFixture f;
  return f;
}

Dataset small_eval(int n) {
  auto& f = fixture();
  std::vector<int> idx;
  for (int i = 0; i < n; ++i) idx.push_back(i);
  return f.val.subset(idx);
}

// ---------------------------------------------------------------------------
// Pure-math helpers.
// ---------------------------------------------------------------------------

TEST(AttackMath, ProbGradRowsMatchesSoftmaxJacobian) {
  const Tensor logits = random_tensor(Shape{3, 5}, 10, -2.0f, 2.0f);
  const Tensor p = softmax_rows(logits);
  const std::vector<int> labels{1, 4, 0};
  const Tensor g = prob_grad_rows(p, labels);

  // Finite differences on p[y] w.r.t. logits.
  const float eps = 1e-3f;
  Tensor l2 = logits;
  for (std::int64_t i = 0; i < 3; ++i) {
    for (std::int64_t j = 0; j < 5; ++j) {
      const float orig = l2.at(i, j);
      l2.at(i, j) = orig + eps;
      const float up = softmax_rows(l2).at(i, labels[static_cast<std::size_t>(i)]);
      l2.at(i, j) = orig - eps;
      const float dn = softmax_rows(l2).at(i, labels[static_cast<std::size_t>(i)]);
      l2.at(i, j) = orig;
      EXPECT_NEAR(g.at(i, j), (up - dn) / (2 * eps), 1e-4f);
    }
  }
}

TEST(AttackMath, ProjectRespectsBallAndPixelRange) {
  const Tensor x = random_tensor(Shape{2, 1, 4, 4}, 11, 0.0f, 1.0f);
  Tensor far = add_scalar(x, 0.5f);
  const Tensor proj = project(far, x, 0.1f);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(proj[i], std::min(1.0f, x[i] + 0.1f) + 1e-6f);
    EXPECT_GE(proj[i], std::max(0.0f, x[i] - 0.1f) - 1e-6f);
  }
}

TEST(AttackMath, AscendMovesInSignDirection) {
  Tensor x(Shape{1, 1, 2, 2}, 0.5f);
  Tensor g(Shape{1, 1, 2, 2});
  g[0] = 3.0f; g[1] = -2.0f; g[2] = 0.0f; g[3] = 1e-9f;
  const Tensor out = ascend_and_project(x, g, x, 0.01f, 1.0f);
  EXPECT_NEAR(out[0], 0.51f, 1e-6f);
  EXPECT_NEAR(out[1], 0.49f, 1e-6f);
  EXPECT_NEAR(out[2], 0.50f, 1e-6f);  // zero gradient -> no move
  EXPECT_NEAR(out[3], 0.51f, 1e-6f);
}

// ---------------------------------------------------------------------------
// Constraint properties across the whole attack family (parameterized).
// ---------------------------------------------------------------------------

struct AttackCase {
  std::string name;
  std::function<std::unique_ptr<Attack>(AttackConfig)> make;
};

class AttackProperties : public ::testing::TestWithParam<float> {};

std::vector<AttackCase> all_attacks() {
  auto& f = fixture();
  const AttackTargets single{nullptr, source(*f.model)};
  const AttackTargets pair{source(*f.model), source(*f.twin)};
  return {
      {"PGD",
       [=](AttackConfig c) { return make_attack("pgd", single, {.cfg = c}); }},
      {"CW",
       [=](AttackConfig c) { return make_attack("cw", single, {.cfg = c}); }},
      {"MomentumPGD",
       [=](AttackConfig c) {
         return make_attack("momentum-pgd", single, {.cfg = c});
       }},
      {"DIVA",
       [=](AttackConfig c) {
         return make_attack("diva", pair, {.cfg = c, .c = 1.0f});
       }},
      {"TargetedDIVA",
       [=](AttackConfig c) {
         return make_attack("targeted-diva", pair,
                            {.cfg = c, .c = 1.0f, .k = 2.0f, .target = 3});
       }},
  };
}

TEST_P(AttackProperties, EpsilonBallAndPixelRangeHold) {
  const float eps = GetParam();
  AttackConfig cfg;
  cfg.epsilon = eps;
  cfg.alpha = eps / 4.0f;
  cfg.steps = 6;
  const Dataset eval = small_eval(6);
  for (auto& ac : all_attacks()) {
    auto attack = ac.make(cfg);
    const Tensor adv = attack->perturb(eval.images, eval.labels);
    ASSERT_EQ(adv.shape(), eval.images.shape());
    EXPECT_LE(max_abs(sub(adv, eval.images)), eps + 1e-5f) << ac.name;
    EXPECT_GE(min_value(adv), -1e-6f) << ac.name;
    EXPECT_LE(max_value(adv), 1.0f + 1e-6f) << ac.name;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsilonSweep, AttackProperties,
                         ::testing::Values(2.0f / 255.0f, 8.0f / 255.0f,
                                           16.0f / 255.0f, 32.0f / 255.0f));

TEST(AttackProperties2, Deterministic) {
  AttackConfig cfg;
  cfg.steps = 4;
  const Dataset eval = small_eval(4);
  for (auto& ac : all_attacks()) {
    auto a1 = ac.make(cfg);
    auto a2 = ac.make(cfg);
    const Tensor r1 = a1->perturb(eval.images, eval.labels);
    const Tensor r2 = a2->perturb(eval.images, eval.labels);
    EXPECT_EQ(max_abs(sub(r1, r2)), 0.0f) << ac.name << " not deterministic";
  }
}

TEST(AttackProperties2, FgsmEqualsOneStepFullAlphaPgd) {
  auto& f = fixture();
  const Dataset eval = small_eval(5);
  AttackConfig fgsm_cfg;
  fgsm_cfg.epsilon = 8.0f / 255.0f;
  auto fgsm =
      make_attack("fgsm", {nullptr, source(*f.model)}, {.cfg = fgsm_cfg});
  AttackConfig cfg;
  cfg.epsilon = 8.0f / 255.0f;
  cfg.alpha = 8.0f / 255.0f;
  cfg.steps = 1;
  auto pgd = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
  const Tensor a = fgsm->perturb(eval.images, eval.labels);
  const Tensor b = pgd->perturb(eval.images, eval.labels);
  EXPECT_EQ(max_abs(sub(a, b)), 0.0f);
}

TEST(AttackProperties2, RandomStartStaysInBallAndVariesWithSeed) {
  auto& f = fixture();
  AttackConfig cfg;
  cfg.random_start = true;
  cfg.steps = 2;
  cfg.seed = 1;
  const Dataset eval = small_eval(3);
  auto a1 = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
  cfg.seed = 2;
  auto a2 = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
  const Tensor r1 = a1->perturb(eval.images, eval.labels);
  const Tensor r2 = a2->perturb(eval.images, eval.labels);
  EXPECT_LE(max_abs(sub(r1, eval.images)), cfg.epsilon + 1e-5f);
  EXPECT_GT(max_abs(sub(r1, r2)), 0.0f);
}

TEST(AttackProperties2, StepCallbackFiresEveryStep) {
  auto& f = fixture();
  AttackConfig cfg;
  cfg.steps = 7;
  int calls = 0;
  cfg.step_callback = [&calls](int step, const Tensor&) {
    EXPECT_EQ(step, calls + 1);
    ++calls;
  };
  auto pgd = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
  (void)pgd->perturb(small_eval(2).images, small_eval(2).labels);
  EXPECT_EQ(calls, 7);
}

TEST(AttackProperties2, ModelsLeftInCleanState) {
  auto& f = fixture();
  AttackConfig cfg;
  cfg.steps = 2;
  const Dataset eval = small_eval(2);
  auto diva = make_attack("diva", {source(*f.model), source(*f.twin)},
                          {.cfg = cfg, .c = 1.0f});
  (void)diva->perturb(eval.images, eval.labels);
  EXPECT_TRUE(f.model->param_grads_enabled());
  EXPECT_TRUE(f.twin->param_grads_enabled());
  EXPECT_FALSE(f.model->training());
}

// ---------------------------------------------------------------------------
// Behavioral tests on the trained model.
// ---------------------------------------------------------------------------

TEST(AttackBehavior, PgdReducesAccuracySubstantially) {
  auto& f = fixture();
  const auto fn = [&](const Tensor& x) { return f.model->forward(x); };
  f.model->set_training(false);
  const float clean = accuracy(fn, f.val);
  ASSERT_GT(clean, 0.9f);

  AttackConfig cfg;
  cfg.epsilon = 16.0f / 255.0f;
  cfg.alpha = 2.0f / 255.0f;
  cfg.steps = 10;
  auto pgd = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
  const Tensor adv = pgd->perturb(f.val.images, f.val.labels);
  const auto preds = argmax_rows(f.model->forward(adv));
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == f.val.labels[i];
  }
  const float adv_acc = static_cast<float>(correct) / preds.size();
  EXPECT_LT(adv_acc, clean - 0.3f) << "PGD too weak";
}

TEST(AttackBehavior, MoreStepsNeverMuchWorse) {
  auto& f = fixture();
  const Dataset eval = small_eval(30);
  auto adv_acc = [&](int steps) {
    AttackConfig cfg;
    cfg.epsilon = 16.0f / 255.0f;
    cfg.alpha = 2.0f / 255.0f;
    cfg.steps = steps;
    auto pgd = make_attack("pgd", {nullptr, source(*f.model)}, {.cfg = cfg});
    const Tensor adv = pgd->perturb(eval.images, eval.labels);
    const auto preds = argmax_rows(f.model->forward(adv));
    int correct = 0;
    for (std::size_t i = 0; i < preds.size(); ++i) {
      correct += preds[i] == eval.labels[i];
    }
    return static_cast<float>(correct) / preds.size();
  };
  // Attack strength is roughly monotone in steps (small fluctuation ok).
  EXPECT_LE(adv_acc(10), adv_acc(1) + 0.1f);
}

TEST(AttackBehavior, DivaWithZeroCNeverAttacks) {
  // c = 0 removes the adapted-model term: DIVA only *reinforces* the
  // original model's correct prediction, so accuracy must not drop.
  auto& f = fixture();
  const Dataset eval = small_eval(20);
  AttackConfig cfg;
  cfg.epsilon = 16.0f / 255.0f;
  cfg.alpha = 2.0f / 255.0f;
  cfg.steps = 8;
  auto diva = make_attack("diva", {source(*f.model), source(*f.twin)},
                          {.cfg = cfg, .c = 0.0f});
  const Tensor adv = diva->perturb(eval.images, eval.labels);
  f.model->set_training(false);
  const auto preds = argmax_rows(f.model->forward(adv));
  int correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i) {
    correct += preds[i] == eval.labels[i];
  }
  EXPECT_EQ(correct, static_cast<int>(preds.size()));
}

TEST(AttackBehavior, TargetedDivaSteersTowardTarget) {
  auto& f = fixture();
  const Dataset eval = small_eval(30);
  const int target = 7;
  AttackConfig cfg;
  cfg.epsilon = 24.0f / 255.0f;
  cfg.alpha = 3.0f / 255.0f;
  cfg.steps = 12;
  auto attack =
      make_attack("targeted-diva", {source(*f.model), source(*f.twin)},
                  {.cfg = cfg, .c = 0.2f, .k = 4.0f, .target = target});
  const Tensor adv = attack->perturb(eval.images, eval.labels);
  f.twin->set_training(false);
  const Tensor p_nat = softmax_rows(f.twin->forward(eval.images));
  const Tensor p_adv = softmax_rows(f.twin->forward(adv));
  // Mean target probability on the twin must increase.
  double nat = 0, adv_p = 0;
  for (std::int64_t i = 0; i < p_nat.dim(0); ++i) {
    nat += p_nat.at(i, target);
    adv_p += p_adv.at(i, target);
  }
  EXPECT_GT(adv_p, nat * 1.5 + 0.01);
}

}  // namespace
}  // namespace diva
