// Serve-subsystem unit tests that need no sockets and no forked
// workers: wire codec round-trips (bit-exact floats), frame error
// paths, shard-job geometry, the batching queue's coalescing contract,
// request validation against the registry's exact error shapes, and the
// env helpers behind the DIVA_SERVE_* knobs.
#include <sys/socket.h>
#include <unistd.h>

#include <cstdlib>
#include <cstring>
#include <thread>

#include <gtest/gtest.h>

#include "models/factory.h"
#include "nn/init.h"
#include "quant/qat.h"
#include "runtime/env.h"
#include "serve/client.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "test_helpers.h"

namespace diva::serve {
namespace {

using scenario::AdaptedKind;
using scenario::OriginalKind;
using testing::random_tensor;

Tensor awkward_floats(const Shape& shape, std::uint64_t seed) {
  Tensor t = random_tensor(shape, seed, -1.0f, 1.0f);
  // Values that expose any codec rounding: denormal, huge, negative zero.
  if (t.numel() >= 3) {
    t.raw()[0] = 1e-41f;
    t.raw()[1] = -0.0f;
    t.raw()[2] = 3.4e38f;
  }
  return t;
}

bool bit_identical(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.raw(), b.raw(),
                     sizeof(float) * static_cast<std::size_t>(a.numel())) == 0;
}

AttackRequest sample_request() {
  AttackRequest req;
  req.id = 42;
  req.attack = "diva";
  req.original = OriginalKind::kFloat;
  req.adapted = AdaptedKind::kInt8Ste;
  req.spec.cfg.epsilon = 0.05f;
  req.spec.cfg.alpha = 0.0123f;
  req.spec.cfg.steps = 7;
  req.spec.cfg.random_start = true;
  req.spec.cfg.seed = 0xC0FFEE;
  req.spec.cfg.momentum = 0.5f;
  req.spec.c = 1.25f;
  req.spec.k = 2.5f;
  req.spec.target = 3;
  req.images = awkward_floats(Shape{5, 1, 4, 4}, 9);
  req.labels = {0, 1, 2, 3, 4};
  return req;
}

// ---------------------------------------------------------------------------
// Codec round-trips
// ---------------------------------------------------------------------------

TEST(ServeProtocol, AttackRequestRoundTripsBitExactly) {
  const AttackRequest req = sample_request();
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_attack_request(req), &payload),
            MsgType::kAttackRequest);
  const AttackRequest back = decode_attack_request(payload);
  EXPECT_EQ(back.id, req.id);
  EXPECT_EQ(back.attack, req.attack);
  EXPECT_EQ(back.original, req.original);
  EXPECT_EQ(back.adapted, req.adapted);
  EXPECT_EQ(back.spec.cfg.steps, req.spec.cfg.steps);
  EXPECT_EQ(back.spec.cfg.seed, req.spec.cfg.seed);
  EXPECT_EQ(back.spec.cfg.random_start, req.spec.cfg.random_start);
  // Floats must survive as bits, not as values-printed-and-reparsed.
  EXPECT_EQ(std::memcmp(&back.spec.cfg.epsilon, &req.spec.cfg.epsilon, 4), 0);
  EXPECT_EQ(std::memcmp(&back.spec.c, &req.spec.c, 4), 0);
  EXPECT_TRUE(bit_identical(back.images, req.images));
  EXPECT_EQ(back.labels, req.labels);
}

TEST(ServeProtocol, ResultChunkRoundTrips) {
  ResultChunk chunk;
  chunk.id = 7;
  chunk.lo = 8;
  chunk.hi = 11;
  chunk.adv = awkward_floats(Shape{3, 1, 4, 4}, 21);
  chunk.verdicts = {{true, false, false}, {true, true, true},
                    {false, true, false}};
  chunk.seconds = 0.125;
  chunk.worker = 3;
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_result_chunk(chunk), &payload),
            MsgType::kResultChunk);
  const ResultChunk back = decode_result_chunk(payload);
  EXPECT_EQ(back.id, chunk.id);
  EXPECT_EQ(back.lo, chunk.lo);
  EXPECT_EQ(back.hi, chunk.hi);
  EXPECT_TRUE(bit_identical(back.adv, chunk.adv));
  ASSERT_EQ(back.verdicts.size(), chunk.verdicts.size());
  for (std::size_t i = 0; i < back.verdicts.size(); ++i) {
    EXPECT_EQ(back.verdicts[i].fooled, chunk.verdicts[i].fooled);
    EXPECT_EQ(back.verdicts[i].preserved, chunk.verdicts[i].preserved);
    EXPECT_EQ(back.verdicts[i].evaded, chunk.verdicts[i].evaded);
  }
  EXPECT_EQ(back.seconds, chunk.seconds);
  EXPECT_EQ(back.worker, chunk.worker);
}

TEST(ServeProtocol, JobBatchAndResultRoundTrip) {
  WireJob job;
  job.ticket = 99;
  job.attack = "pgd";
  job.original = OriginalKind::kNone;
  job.adapted = AdaptedKind::kInt8Fd;
  job.spec.cfg.steps = 3;
  job.first_sample = 16;
  job.images = awkward_floats(Shape{2, 1, 3, 3}, 33);
  job.labels = {5, 6};
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_job_batch({job, job}), &payload),
            MsgType::kJobBatch);
  const auto jobs = decode_job_batch(payload);
  ASSERT_EQ(jobs.size(), 2u);
  EXPECT_EQ(jobs[1].ticket, 99u);
  EXPECT_EQ(jobs[1].attack, "pgd");
  EXPECT_EQ(jobs[1].first_sample, 16);
  EXPECT_TRUE(bit_identical(jobs[1].images, job.images));

  JobResult ok;
  ok.ticket = 99;
  ok.first_sample = 16;
  ok.adv = job.images;
  ok.verdicts = {{true, true, true}, {false, false, false}};
  ok.seconds = 1.5;
  ASSERT_EQ(split_frame(encode_job_result(ok), &payload), MsgType::kJobResult);
  const JobResult ok_back = decode_job_result(payload);
  EXPECT_TRUE(ok_back.error.empty());
  EXPECT_TRUE(bit_identical(ok_back.adv, ok.adv));
  EXPECT_EQ(ok_back.verdicts.size(), 2u);

  JobResult fail;
  fail.ticket = 100;
  fail.error = "diva needs an original-model source";
  ASSERT_EQ(split_frame(encode_job_result(fail), &payload),
            MsgType::kJobResult);
  const JobResult fail_back = decode_job_result(payload);
  EXPECT_EQ(fail_back.error, fail.error);
  EXPECT_TRUE(fail_back.verdicts.empty());
}

TEST(ServeProtocol, ErrorAndDoneRoundTrip) {
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_error({12, "nope"}), &payload),
            MsgType::kError);
  const ErrorReply err = decode_error(payload);
  EXPECT_EQ(err.id, 12u);
  EXPECT_EQ(err.message, "nope");

  ASSERT_EQ(split_frame(encode_request_done({12, 32, 0.5}), &payload),
            MsgType::kRequestDone);
  const RequestDone done = decode_request_done(payload);
  EXPECT_EQ(done.id, 12u);
  EXPECT_EQ(done.total, 32);

  ASSERT_EQ(split_frame(encode_shutdown(), &payload), MsgType::kShutdown);
  EXPECT_TRUE(payload.empty());
}

TEST(ServeProtocol, StatsRequestHasNoPayload) {
  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_stats_request(), &payload),
            MsgType::kStatsRequest);
  EXPECT_TRUE(payload.empty());
}

TEST(ServeProtocol, StatsReplyRoundTripsBitExactly) {
  telemetry::Snapshot snap;
  snap.counters["kernels.igemm.macs.avx2"] = 0xFFFFFFFFFFFFFFFFull;
  snap.counters["serve.requests.completed"] = 0;
  snap.counters["attack.fd.spsa_probes"] = 12345678901234ull;
  telemetry::HistogramData h;
  h.buckets.assign(telemetry::kHistBuckets, 0);
  h.buckets[0] = 3;
  h.buckets[17] = 1;
  h.buckets[telemetry::kHistBuckets - 1] = 9;
  h.count = 13;
  h.sum = 0xDEADBEEFCAFEull;
  snap.histograms["serve.request_us"] = h;
  telemetry::HistogramData never_hit;  // registered but never recorded
  never_hit.buckets.assign(telemetry::kHistBuckets, 0);
  snap.histograms["serve.batch.jobs"] = never_hit;

  std::vector<std::uint8_t> payload;
  ASSERT_EQ(split_frame(encode_stats_reply(snap), &payload),
            MsgType::kStatsReply);
  const telemetry::Snapshot back = decode_stats_reply(payload);
  // operator== compares counters and histogram contents field-wise;
  // everything on the wire is integers, so equality is bit-exactness.
  EXPECT_TRUE(back == snap);
}

TEST(ServeProtocol, StatsReplyRejectsCorruptPayload) {
  telemetry::Snapshot snap;
  snap.counters["a"] = 1;
  std::vector<std::uint8_t> payload;
  split_frame(encode_stats_reply(snap), &payload);
  payload.resize(payload.size() - 1);
  EXPECT_THROW(decode_stats_reply(payload), Error);
}

// ---------------------------------------------------------------------------
// Frame error paths
// ---------------------------------------------------------------------------

TEST(ServeProtocol, SplitFrameRejectsCorruption) {
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> frame = encode_error({1, "x"});

  std::vector<std::uint8_t> bad = frame;
  bad[0] ^= 0xFF;  // magic
  EXPECT_THROW(split_frame(bad, &payload), Error);

  bad = frame;
  bad[4] += 1;  // version
  EXPECT_THROW(split_frame(bad, &payload), Error);

  bad = frame;
  bad[6] = 0x7F;  // unknown type
  EXPECT_THROW(split_frame(bad, &payload), Error);

  bad = frame;
  bad.pop_back();  // length mismatch
  EXPECT_THROW(split_frame(bad, &payload), Error);

  bad.assign(frame.begin(), frame.begin() + 10);  // truncated header
  EXPECT_THROW(split_frame(bad, &payload), Error);
}

TEST(ServeProtocol, DecodeRejectsTruncatedPayload) {
  std::vector<std::uint8_t> payload;
  split_frame(encode_attack_request(sample_request()), &payload);
  payload.resize(payload.size() / 2);
  EXPECT_THROW(decode_attack_request(payload), Error);
}

TEST(ServeProtocol, FrameIoRoundTripsOverSocketpair) {
  int sv[2];
  ASSERT_EQ(socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  const AttackRequest req = sample_request();
  write_frame(sv[0], encode_attack_request(req));
  MsgType type;
  std::vector<std::uint8_t> payload;
  ASSERT_TRUE(read_frame(sv[1], &type, &payload));
  EXPECT_EQ(type, MsgType::kAttackRequest);
  EXPECT_TRUE(bit_identical(decode_attack_request(payload).images,
                            req.images));
  ::close(sv[0]);  // clean EOF
  EXPECT_FALSE(read_frame(sv[1], &type, &payload));
  ::close(sv[1]);
}

// ---------------------------------------------------------------------------
// Shard geometry + batching queue
// ---------------------------------------------------------------------------

std::shared_ptr<const AttackRequest> tiny_request(std::int64_t n) {
  AttackRequest req;
  req.attack = "pgd";
  req.images = Tensor(Shape{n, 1, 2, 2});
  req.labels.assign(static_cast<std::size_t>(n), 0);
  return std::make_shared<const AttackRequest>(std::move(req));
}

TEST(ServeQueue, ShardJobsUseEngineGeometry) {
  std::uint64_t ticket = 5;
  const auto jobs = make_shard_jobs(tiny_request(10), 77, 4, &ticket);
  ASSERT_EQ(jobs.size(), 3u);
  EXPECT_EQ(jobs[0].lo, 0);
  EXPECT_EQ(jobs[0].hi, 4);
  EXPECT_EQ(jobs[1].lo, 4);
  EXPECT_EQ(jobs[1].hi, 8);
  EXPECT_EQ(jobs[2].lo, 8);
  EXPECT_EQ(jobs[2].hi, 10);
  EXPECT_EQ(jobs[0].ticket, 5u);
  EXPECT_EQ(jobs[2].ticket, 7u);
  EXPECT_EQ(ticket, 8u);
  for (const auto& j : jobs) EXPECT_EQ(j.request_key, 77u);
}

TEST(ServeQueue, PopBatchHonorsMaxJobsInFifoOrder) {
  BatchingQueue q;
  std::uint64_t ticket = 0;
  q.push(make_shard_jobs(tiny_request(20), 1, 4, &ticket));
  ASSERT_EQ(q.size(), 5u);
  const CoalescePolicy policy{3, std::chrono::microseconds(0)};
  auto batch = q.pop_batch(policy);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].ticket, 0u);
  EXPECT_EQ(batch[2].ticket, 2u);
  batch = q.pop_batch(policy);
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0].ticket, 3u);
}

TEST(ServeQueue, RequeuePutsJobsAtTheFrontInOrder) {
  BatchingQueue q;
  std::uint64_t ticket = 0;
  q.push(make_shard_jobs(tiny_request(8), 1, 4, &ticket));   // tickets 0,1
  q.push(make_shard_jobs(tiny_request(4), 2, 4, &ticket));   // ticket 2
  const CoalescePolicy two{2, std::chrono::microseconds(0)};
  auto inflight = q.pop_batch(two);  // 0,1
  ASSERT_EQ(inflight.size(), 2u);
  q.requeue(std::move(inflight));  // dead worker path
  const auto batch = q.pop_batch(CoalescePolicy{8, {}});
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].ticket, 0u);
  EXPECT_EQ(batch[1].ticket, 1u);
  EXPECT_EQ(batch[2].ticket, 2u);
}

TEST(ServeQueue, CloseDrainsThenReturnsEmpty) {
  BatchingQueue q;
  std::uint64_t ticket = 0;
  q.push(make_shard_jobs(tiny_request(4), 1, 4, &ticket));
  q.close();
  EXPECT_TRUE(q.closed());
  q.push(make_shard_jobs(tiny_request(4), 2, 4, &ticket));  // dropped
  EXPECT_EQ(q.pop_batch(CoalescePolicy{8, {}}).size(), 1u);
  EXPECT_TRUE(q.pop_batch(CoalescePolicy{8, {}}).empty());
}

TEST(ServeQueue, CoalescingWindowGathersLateArrivals) {
  BatchingQueue q;
  std::uint64_t ticket = 0;
  q.push(make_shard_jobs(tiny_request(4), 1, 4, &ticket));
  std::thread late([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    std::uint64_t t2 = 10;
    q.push(make_shard_jobs(tiny_request(4), 2, 4, &t2));
  });
  // Generous window so the late push lands well inside it.
  const auto batch =
      q.pop_batch(CoalescePolicy{2, std::chrono::microseconds(2'000'000)});
  late.join();
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1].ticket, 10u);
}

// ---------------------------------------------------------------------------
// Request validation: the server must reject with the registry's own
// error shapes, never invent parallel ones.
// ---------------------------------------------------------------------------

class ServeValidationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    original_ = make_digit_net(NetMode::kFloat);
    init_parameters(*original_, 301);
    qat_ = make_digit_net(NetMode::kQat);
    init_parameters(*qat_, 302);
    calibrate(*qat_, {random_tensor(Shape{4, 1, 28, 28}, 303, 0.0f, 1.0f)});
    quantized_ = std::make_unique<QuantizedModel>(
        QuantizedModel::compile(*qat_, Shape{1, 28, 28}));
    pool_.original = original_.get();
    pool_.adapted_qat = qat_.get();
    pool_.quantized = quantized_.get();

    cfg_.socket_path = "/tmp/diva_test_validate.sock";
    server_ = std::make_unique<AttackServer>(pool_, cfg_);  // never started
  }

  AttackRequest valid_request() const {
    AttackRequest req;
    req.attack = "diva";
    req.original = scenario::OriginalKind::kFloat;
    req.adapted = scenario::AdaptedKind::kInt8Ste;
    req.spec.cfg.epsilon = 0.05f;
    req.spec.cfg.alpha = 0.01f;
    req.spec.cfg.steps = 2;
    req.images = testing::random_tensor(Shape{2, 1, 28, 28}, 7, 0.0f, 1.0f);
    req.labels = {0, 1};
    return req;
  }

  std::unique_ptr<Sequential> original_, qat_;
  std::unique_ptr<QuantizedModel> quantized_;
  scenario::ModelPool pool_;
  ServeConfig cfg_;
  std::unique_ptr<AttackServer> server_;
};

TEST_F(ServeValidationTest, AcceptsAWellFormedRequest) {
  EXPECT_EQ(server_->validate_request(valid_request()), "");
}

TEST_F(ServeValidationTest, UnknownKindUsesRegistryErrorText) {
  AttackRequest req = valid_request();
  req.attack = "nope";
  std::string expected;
  try {
    attack_traits("nope");
  } catch (const Error& e) {
    expected = e.what();
  }
  ASSERT_NE(expected, "");
  EXPECT_EQ(server_->validate_request(req), expected);
  EXPECT_NE(expected.find("unknown attack kind 'nope'"), std::string::npos);
}

TEST_F(ServeValidationTest, TraitMismatchUsesValidateAttackTargetsText) {
  AttackRequest req = valid_request();
  req.original = scenario::OriginalKind::kNone;  // diva needs an original
  const AttackTargets targets{
      nullptr, scenario::make_adapted_source(pool_, req.adapted, {})};
  const std::string expected = validate_attack_targets("diva", targets);
  ASSERT_NE(expected, "");
  EXPECT_EQ(server_->validate_request(req), expected);
}

TEST_F(ServeValidationTest, MissingPoolModelUsesScenarioDiagnostics) {
  scenario::ModelPool no_surrogate = pool_;
  AttackServer server(no_surrogate, cfg_);
  AttackRequest req = valid_request();
  req.original = scenario::OriginalKind::kSurrogate;
  EXPECT_EQ(server.validate_request(req),
            scenario::pool_missing_reason(no_surrogate, req.original,
                                          req.adapted));
  EXPECT_NE(server.validate_request(req).find("surrogate"),
            std::string::npos);
}

TEST_F(ServeValidationTest, RejectsGeometryAndBudgetErrors) {
  AttackRequest req = valid_request();
  req.labels.pop_back();
  EXPECT_NE(server_->validate_request(req), "");

  req = valid_request();
  req.spec.cfg.steps = 0;
  EXPECT_NE(server_->validate_request(req), "");

  req = valid_request();
  req.adapted = scenario::AdaptedKind::kInt8Batched;
  const std::string reason = server_->validate_request(req);
  EXPECT_NE(reason.find("int8-batched"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Env helpers (the one path for DIVA_SERVE_* and bench knobs)
// ---------------------------------------------------------------------------

TEST(EnvHelpers, FlagIntStringSemantics) {
  ::setenv("DIVA_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("DIVA_TEST_FLAG", false));
  ::setenv("DIVA_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("DIVA_TEST_FLAG", true));
  ::setenv("DIVA_TEST_FLAG", "", 1);
  EXPECT_FALSE(env_flag("DIVA_TEST_FLAG", true));
  ::unsetenv("DIVA_TEST_FLAG");
  EXPECT_TRUE(env_flag("DIVA_TEST_FLAG", true));

  ::setenv("DIVA_TEST_INT", "42", 1);
  EXPECT_EQ(env_int("DIVA_TEST_INT", 7), 42);
  ::setenv("DIVA_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(env_int("DIVA_TEST_INT", 7), 7);
  ::unsetenv("DIVA_TEST_INT");
  EXPECT_EQ(env_int("DIVA_TEST_INT", 7), 7);

  ::setenv("DIVA_TEST_STR", "", 1);
  EXPECT_EQ(env_string("DIVA_TEST_STR", "fallback"), "");
  ::unsetenv("DIVA_TEST_STR");
  EXPECT_EQ(env_string("DIVA_TEST_STR", "fallback"), "fallback");
}

TEST(EnvHelpers, ClampedCountKnobsRejectOutOfRangeOverrides) {
  // Size/count knobs read through the clamped helpers: a typo'd
  // negative or zero override must fall back, never flow into an
  // allocation size or loop bound.
  ::setenv("DIVA_TEST_INT", "3", 1);
  EXPECT_EQ(env_int_positive("DIVA_TEST_INT", 7), 3);
  EXPECT_EQ(env_int_nonneg("DIVA_TEST_INT", 7), 3);

  ::setenv("DIVA_TEST_INT", "0", 1);
  EXPECT_EQ(env_int_positive("DIVA_TEST_INT", 7), 7);  // counts need >= 1
  EXPECT_EQ(env_int_nonneg("DIVA_TEST_INT", 7), 0);    // 0 = "off" is valid

  ::setenv("DIVA_TEST_INT", "-5", 1);
  EXPECT_EQ(env_int_positive("DIVA_TEST_INT", 7), 7);
  EXPECT_EQ(env_int_nonneg("DIVA_TEST_INT", 7), 7);

  ::unsetenv("DIVA_TEST_INT");
  EXPECT_EQ(env_int_positive("DIVA_TEST_INT", 7), 7);
  EXPECT_EQ(env_int_nonneg("DIVA_TEST_INT", 7), 7);
}

}  // namespace
}  // namespace diva::serve
