// Reporting helpers and error-handling primitives.
#include <gtest/gtest.h>

#include "core/report.h"
#include "runtime/check.h"

namespace diva {
namespace {

TEST(Report, FmtFixedDecimals) {
  EXPECT_EQ(fmt(97.25, 1), "97.2");
  EXPECT_EQ(fmt(97.25, 0), "97");
  EXPECT_EQ(fmt(-3.14159, 3), "-3.142");
  EXPECT_EQ(fmt(0.0, 2), "0.00");
}

TEST(Report, WithPaperAnnotation) {
  EXPECT_EQ(with_paper(96.9, "92.3-97"), "96.9 (paper: 92.3-97)");
}

TEST(Report, TableRejectsRaggedRows) {
  TablePrinter t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

TEST(Report, TablePrintsWithoutCrashing) {
  TablePrinter t({"Architecture", "x"});
  t.add_row({"ResNet", "1"});
  t.add_row({"a-very-long-cell-value", "2"});
  t.print();  // smoke: alignment math must not throw
  banner("banner smoke");
}

TEST(Check, ThrowsWithContext) {
  try {
    DIVA_CHECK(1 == 2, "custom message " << 42);
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom message 42"), std::string::npos);
    EXPECT_NE(what.find("test_report.cpp"), std::string::npos);
  }
}

TEST(Check, MessagelessFormSupported) {
  EXPECT_THROW(DIVA_CHECK(false), Error);
  EXPECT_NO_THROW(DIVA_CHECK(true));
}

TEST(Check, FailMacroAlwaysThrows) {
  EXPECT_THROW(DIVA_FAIL("unconditional"), Error);
}

}  // namespace
}  // namespace diva
