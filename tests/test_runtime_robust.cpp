// Thread-pool/parallel_for tests plus robust-training behavior.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/trainer.h"
#include "data/synth_digits.h"
#include "metrics/metrics.h"
#include "models/factory.h"
#include "nn/init.h"
#include "robust/robust.h"
#include "runtime/thread_pool.h"

namespace diva {
namespace {

TEST(ParallelFor, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::int64_t i) { hits[static_cast<std::size_t>(i)]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelFor, EmptyAndSingleRanges) {
  int count = 0;
  parallel_for(5, 5, [&](std::int64_t) { ++count; });
  EXPECT_EQ(count, 0);
  parallel_for(3, 4, [&](std::int64_t i) {
    EXPECT_EQ(i, 3);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ParallelFor, PropagatesExceptions) {
  EXPECT_THROW(
      parallel_for(0, 100,
                   [](std::int64_t i) {
                     if (i == 37) throw Error("boom");
                   }),
      Error);
}

TEST(ParallelFor, NestedCallsDoNotDeadlock) {
  std::atomic<int> total{0};
  parallel_for(0, 8, [&](std::int64_t) {
    parallel_for(0, 8, [&](std::int64_t) { total++; });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ParallelFor, ChunkedPartitionIsDisjointAndComplete) {
  std::vector<std::atomic<int>> hits(503);
  parallel_for_chunked(0, 503, [&](std::int64_t lo, std::int64_t hi) {
    for (std::int64_t i = lo; i < hi; ++i) hits[static_cast<std::size_t>(i)]++;
  }, /*grain=*/7);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RunsSubmittedJobs) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  std::mutex mu;
  std::condition_variable cv;
  for (int i = 0; i < 16; ++i) {
    pool.submit([&] {
      if (done.fetch_add(1) == 15) {
        std::lock_guard<std::mutex> lock(mu);
        cv.notify_all();
      }
    });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait_for(lock, std::chrono::seconds(10), [&] { return done == 16; });
  EXPECT_EQ(done.load(), 16);
}

// ---------------------------------------------------------------------------

TEST(Robust, AdversarialTrainingImprovesRobustAccuracy) {
  SynthDigits gen(51);
  const Dataset train = gen.generate(30, 0);
  const Dataset val = gen.generate(8, 9000);

  AttackConfig eval_attack;
  eval_attack.epsilon = 16.0f / 255.0f;
  eval_attack.alpha = 4.0f / 255.0f;
  eval_attack.steps = 5;

  // Standard training.
  auto plain = make_digit_net(NetMode::kFloat);
  init_parameters(*plain, 1);
  TrainConfig tcfg;
  tcfg.epochs = 6;
  tcfg.seed = 2;
  train_classifier(*plain, train, tcfg);
  const float plain_robust = robust_accuracy(*plain, val, eval_attack);

  // Adversarial training with the same budget.
  auto robust = make_digit_net(NetMode::kFloat);
  init_parameters(*robust, 1);
  RobustTrainConfig rcfg;
  rcfg.train = tcfg;
  rcfg.inner_attack.steps = 3;
  rcfg.inner_attack.alpha = 6.0f / 255.0f;
  rcfg.inner_attack.epsilon = 16.0f / 255.0f;
  adversarial_train(*robust, train, rcfg);
  const float robust_robust = robust_accuracy(*robust, val, eval_attack);

  EXPECT_GT(robust_robust, plain_robust + 0.1f)
      << "adversarial training failed to improve robustness ("
      << plain_robust << " -> " << robust_robust << ")";

  // Clean accuracy remains usable.
  robust->set_training(false);
  const float clean =
      accuracy([&](const Tensor& x) { return robust->forward(x); }, val);
  EXPECT_GT(clean, 0.5f);
}

}  // namespace
}  // namespace diva
