// Metrics tests: accuracy/top-k, instability, confidence delta,
// evasion scoring, DSSIM properties, PCA correctness.
#include <gtest/gtest.h>

#include <cmath>

#include "core/evaluation.h"
#include "metrics/dssim.h"
#include "metrics/metrics.h"
#include "metrics/pca.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

/// A fake "model" that returns fixed logits per sample index; logits are
/// looked up by matching the first pixel value (set to index/255).
ModelFn table_model(const std::vector<std::vector<float>>& logit_rows) {
  return [logit_rows](const Tensor& x) {
    const std::int64_t n = x.dim(0);
    const std::int64_t d = static_cast<std::int64_t>(logit_rows[0].size());
    Tensor out(Shape{n, d});
    const std::int64_t per = x.numel() / n;
    for (std::int64_t i = 0; i < n; ++i) {
      const int id = static_cast<int>(std::lround(x[i * per] * 255.0f));
      for (std::int64_t j = 0; j < d; ++j) {
        out.at(i, j) = logit_rows[static_cast<std::size_t>(id)]
                                 [static_cast<std::size_t>(j)];
      }
    }
    return out;
  };
}

Dataset tiny_dataset(int n, int classes) {
  Dataset d;
  d.images = Tensor(Shape{n, 1, 8, 8});
  for (int i = 0; i < n; ++i) {
    d.images[static_cast<std::int64_t>(i) * 64] = static_cast<float>(i) / 255.0f;
  }
  d.labels.resize(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) d.labels[static_cast<std::size_t>(i)] = i % classes;
  d.num_classes = classes;
  return d;
}

TEST(Metrics, AccuracyAndTopK) {
  // 4 samples, 3 classes; model gets samples 0,1 right, 2,3 wrong with
  // the true label ranked second for sample 2 only.
  Dataset d = tiny_dataset(4, 3);
  d.labels = {0, 1, 2, 0};
  const ModelFn m = table_model({{5, 1, 0},    // pred 0 == label ✓
                                 {0, 5, 1},    // pred 1 ✓
                                 {5, 4, 4.5f}, // pred 0, label 2 ranked 2nd
                                 {0, 5, 4}});  // pred 1, label 0 ranked 3rd
  EXPECT_NEAR(accuracy(m, d), 0.5f, 1e-6f);
  EXPECT_NEAR(topk_accuracy(m, d, 2), 0.75f, 1e-6f);
  EXPECT_NEAR(topk_accuracy(m, d, 3), 1.0f, 1e-6f);
}

TEST(Metrics, InstabilityCountsBothDirections) {
  Dataset d = tiny_dataset(4, 2);
  d.labels = {0, 0, 1, 1};
  const ModelFn orig = table_model({{5, 0}, {5, 0}, {0, 5}, {5, 0}});
  const ModelFn adapted = table_model({{5, 0}, {0, 5}, {0, 5}, {0, 5}});
  const InstabilityStats s = instability(orig, adapted, d);
  EXPECT_EQ(s.orig_correct_adapted_wrong, 1);  // sample 1
  EXPECT_EQ(s.orig_wrong_adapted_correct, 1);  // sample 3
  EXPECT_EQ(s.disagreements, 2);
  EXPECT_NEAR(s.instability, 0.5f, 1e-6f);
  EXPECT_NEAR(s.orig_accuracy, 0.75f, 1e-6f);
  EXPECT_NEAR(s.adapted_accuracy, 0.75f, 1e-6f);
}

TEST(Metrics, ConfidenceDeltaSignAndMagnitude) {
  Dataset d = tiny_dataset(1, 2);
  d.labels = {0};
  // orig strongly correct; adapted weakly correct.
  const ModelFn orig = table_model({{4, 0}});
  const ModelFn adapted = table_model({{0.5f, 0}});
  const float cd = confidence_delta(orig, adapted, d.images, d.labels);
  const float po = 1.0f / (1.0f + std::exp(-4.0f));
  const float pa = 1.0f / (1.0f + std::exp(-0.5f));
  EXPECT_NEAR(cd, (po - pa) * 100.0f, 0.1f);
}

TEST(Evaluation, EvasionCriteriaMatchPaperDefinition) {
  Dataset d = tiny_dataset(3, 6);
  d.labels = {0, 0, 0};
  // After attack:
  //  s0: orig correct, adapted wrong       -> top1 success
  //  s1: orig wrong, adapted wrong         -> not success (orig flipped)
  //  s2: orig correct, adapted correct     -> not success
  const ModelFn orig =
      table_model({{9, 0, 0, 0, 0, 0}, {0, 9, 0, 0, 0, 0}, {9, 0, 0, 0, 0, 0}});
  const ModelFn adapted =
      table_model({{0, 9, 0, 0, 0, 0}, {0, 9, 0, 0, 0, 0}, {9, 0, 0, 0, 0, 0}});
  const EvasionResult r =
      evaluate_evasion(orig, adapted, d.images, d.images, d.labels);
  EXPECT_EQ(r.total, 3);
  EXPECT_EQ(r.top1_success, 1);
  EXPECT_EQ(r.adapted_fooled, 2);
  EXPECT_EQ(r.orig_preserved, 2);
  // top-5: s0's adapted top-1 (=1) IS in orig's top-5 (6 classes, label
  // scores 0 tie-broken by index) — in this synthetic logit table the
  // remaining entries are zeros so class 1 appears in orig top-5.
  EXPECT_LE(r.top5_success, r.top1_success);
}

TEST(Evaluation, OutcomeBreakdownPartitions) {
  Dataset d = tiny_dataset(4, 2);
  d.labels = {0, 0, 0, 0};
  const ModelFn orig = table_model({{5, 0}, {5, 0}, {0, 5}, {0, 5}});
  const ModelFn adapted = table_model({{5, 0}, {0, 5}, {5, 0}, {0, 5}});
  const OutcomeBreakdown b = outcome_breakdown(orig, adapted, d.images, d.labels);
  EXPECT_EQ(b.both_correct, 1);
  EXPECT_EQ(b.orig_correct_adapted_wrong, 1);
  EXPECT_EQ(b.orig_wrong_adapted_correct, 1);
  EXPECT_EQ(b.both_wrong, 1);
  EXPECT_EQ(b.both_correct + b.orig_correct_adapted_wrong +
                b.orig_wrong_adapted_correct + b.both_wrong,
            b.total);
}

TEST(Evaluation, SelectCorrectHonorsPerClassCapAndCorrectness) {
  Dataset d = tiny_dataset(8, 2);
  d.labels = {0, 0, 0, 0, 1, 1, 1, 1};
  // Model A wrong on sample 0; model B wrong on sample 4.
  std::vector<std::vector<float>> rows_a, rows_b;
  for (int i = 0; i < 8; ++i) {
    const int y = d.labels[static_cast<std::size_t>(i)];
    std::vector<float> correct{y == 0 ? 5.0f : 0.0f, y == 1 ? 5.0f : 0.0f};
    std::vector<float> wrong{y == 0 ? 0.0f : 5.0f, y == 1 ? 0.0f : 5.0f};
    rows_a.push_back(i == 0 ? wrong : correct);
    rows_b.push_back(i == 4 ? wrong : correct);
  }
  const auto idx = select_correct({table_model(rows_a), table_model(rows_b)},
                                  d, /*per_class=*/2);
  // Class 0: samples 1,2 (0 excluded); class 1: samples 5,6 (4 excluded).
  EXPECT_EQ(idx, (std::vector<int>{1, 2, 5, 6}));
}

TEST(Dssim, IdentityIsZeroAndSymmetric) {
  const Tensor a = random_tensor(Shape{3, 16, 16}, 1, 0.0f, 1.0f);
  const Tensor b = random_tensor(Shape{3, 16, 16}, 2, 0.0f, 1.0f);
  EXPECT_NEAR(dssim(a, a), 0.0f, 1e-6f);
  EXPECT_NEAR(dssim(a, b), dssim(b, a), 1e-6f);
  EXPECT_GT(dssim(a, b), 0.01f);
}

TEST(Dssim, MonotoneInNoiseAmplitude) {
  const Tensor a = random_tensor(Shape{1, 16, 16}, 3, 0.2f, 0.8f);
  Rng rng(4);
  Tensor n1(a.shape()), n2(a.shape());
  n1.fill_normal(rng, 0.0f, 0.01f);
  n2 = mul_scalar(n1, 8.0f);
  const float d1 = dssim(a, clamp(add(a, n1), 0.0f, 1.0f));
  const float d2 = dssim(a, clamp(add(a, n2), 0.0f, 1.0f));
  EXPECT_LT(d1, d2);
  EXPECT_LT(d1, 0.05f);
}

TEST(Dssim, RejectsTinyImagesAndShapeMismatch) {
  const Tensor small(Shape{1, 4, 4});
  EXPECT_THROW((void)dssim(small, small), Error);
  const Tensor a(Shape{1, 16, 16});
  const Tensor b(Shape{1, 16, 8});
  EXPECT_THROW((void)dssim(a, b), Error);
}

TEST(Pca, RecoversDominantAxis) {
  // Generate points stretched along a known direction.
  Rng rng(5);
  const float dir[2] = {0.8f, 0.6f};  // unit vector
  Tensor x(Shape{300, 2});
  for (std::int64_t i = 0; i < 300; ++i) {
    const float t = rng.normal(0.0f, 5.0f);
    const float noise = rng.normal(0.0f, 0.3f);
    x.at(i, 0) = t * dir[0] - noise * dir[1] + 2.0f;
    x.at(i, 1) = t * dir[1] + noise * dir[0] - 1.0f;
  }
  const PcaResult pca = pca_fit(x, 2);
  // First component parallel to dir (sign-agnostic).
  const float dot = std::fabs(pca.components.at(0, 0) * dir[0] +
                              pca.components.at(0, 1) * dir[1]);
  EXPECT_GT(dot, 0.99f);
  EXPECT_GT(pca.explained_variance[0], pca.explained_variance[1] * 50.0f);
  EXPECT_NEAR(pca.mean[0], 2.0f, 1.0f);
}

TEST(Pca, ComponentsOrthonormalAndTransformCentered) {
  const Tensor x = random_tensor(Shape{60, 7}, 6);
  const PcaResult pca = pca_fit(x, 3);
  for (int a = 0; a < 3; ++a) {
    double norm = 0, cross = 0;
    for (std::int64_t j = 0; j < 7; ++j) {
      norm += pca.components.at(a, j) * pca.components.at(a, j);
      cross += pca.components.at(a, j) * pca.components.at((a + 1) % 3, j);
    }
    EXPECT_NEAR(norm, 1.0, 1e-4);
    EXPECT_NEAR(cross, 0.0, 1e-4);
  }
  const Tensor proj = pca_transform(pca, x);
  for (int c = 0; c < 3; ++c) {
    double mean_c = 0;
    for (std::int64_t i = 0; i < 60; ++i) mean_c += proj.at(i, c);
    EXPECT_NEAR(mean_c / 60.0, 0.0, 1e-4);
  }
}

TEST(Pca, ProjectionVarianceMatchesEigenvalues) {
  const Tensor x = random_tensor(Shape{100, 5}, 7, -2.0f, 2.0f);
  const PcaResult pca = pca_fit(x, 5);
  const Tensor proj = pca_transform(pca, x);
  for (int c = 0; c < 5; ++c) {
    double var = 0;
    for (std::int64_t i = 0; i < 100; ++i) var += proj.at(i, c) * proj.at(i, c);
    var /= 99.0;
    EXPECT_NEAR(var, pca.explained_variance[static_cast<std::size_t>(c)],
                0.02 * pca.explained_variance[0] + 1e-5);
  }
}

}  // namespace
}  // namespace diva
