// Model factory, composite architecture, and zoo-machinery tests.
#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "core/evaluation.h"
#include "core/zoo.h"
#include "nn/fold_bn.h"
#include "nn/init.h"
#include "nn/model_io.h"
#include "quant/qat.h"
#include "test_helpers.h"

namespace diva {
namespace {

using testing::random_tensor;

class FactoryShapes : public ::testing::TestWithParam<Arch> {};

TEST_P(FactoryShapes, AllModesProduceLogitsOfRightShape) {
  const Arch arch = GetParam();
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 1, 0.0f, 1.0f);
  for (const NetMode mode :
       {NetMode::kFloat, NetMode::kFolded, NetMode::kQat}) {
    auto m = make_model(arch, 16, mode);
    init_parameters(*m, 7);
    m->set_training(false);
    const Tensor logits = m->forward(x);
    EXPECT_EQ(logits.shape(), (Shape{2, 16}))
        << arch_name(arch) << " mode " << static_cast<int>(mode);
  }
}

TEST_P(FactoryShapes, BackwardProducesInputGradient) {
  const Arch arch = GetParam();
  auto m = make_model(arch, 8, NetMode::kFloat);
  init_parameters(*m, 9);
  m->set_training(true);
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 2, 0.0f, 1.0f);
  const Tensor out = m->forward(x);
  m->zero_grad();
  const Tensor dx = m->backward(Tensor(out.shape(), 1.0f));
  EXPECT_EQ(dx.shape(), x.shape());
  EXPECT_GT(max_abs(dx), 0.0f);
}

TEST_P(FactoryShapes, FoldTransferPreservesEvalPredictions) {
  const Arch arch = GetParam();
  auto fl = make_model(arch, 8, NetMode::kFloat);
  init_parameters(*fl, 11);
  // Populate BN running stats.
  fl->set_training(true);
  (void)fl->forward(random_tensor(Shape{16, 3, 32, 32}, 3, 0.0f, 1.0f));
  fl->set_training(false);

  auto folded = make_model(arch, 8, NetMode::kFolded);
  fold_batchnorm_into(*fl, *folded);
  folded->set_training(false);

  const Tensor x = random_tensor(Shape{4, 3, 32, 32}, 4, 0.0f, 1.0f);
  EXPECT_LT(max_abs(sub(fl->forward(x), folded->forward(x))), 2e-3f)
      << arch_name(arch);
}

TEST_P(FactoryShapes, QatCompilesToInt8AfterCalibration) {
  const Arch arch = GetParam();
  auto qat = make_model(arch, 8, NetMode::kQat);
  init_parameters(*qat, 13);
  calibrate(*qat, {random_tensor(Shape{8, 3, 32, 32}, 5, 0.0f, 1.0f)});
  ASSERT_TRUE(fully_calibrated(*qat));
  const QuantizedModel q8 = QuantizedModel::compile(*qat, Shape{3, 32, 32});
  EXPECT_GT(q8.num_ops(), 3u);
  const Tensor x = random_tensor(Shape{2, 3, 32, 32}, 6, 0.0f, 1.0f);
  const Tensor logits = q8.forward(x);
  EXPECT_EQ(logits.shape(), (Shape{2, 8}));
}

INSTANTIATE_TEST_SUITE_P(AllArchitectures, FactoryShapes,
                         ::testing::Values(Arch::kResNet, Arch::kMobileNet,
                                           Arch::kDenseNet),
                         [](const auto& info) { return arch_name(info.param); });

TEST(Factory, DigitAndFaceNets) {
  auto digit = make_digit_net(NetMode::kFloat);
  init_parameters(*digit, 1);
  digit->set_training(false);
  EXPECT_EQ(digit->forward(random_tensor(Shape{2, 1, 28, 28}, 1)).shape(),
            (Shape{2, 10}));

  auto face = make_face_net(30, NetMode::kFloat);
  init_parameters(*face, 2);
  face->set_training(false);
  EXPECT_EQ(face->forward(random_tensor(Shape{2, 3, 32, 32}, 2)).shape(),
            (Shape{2, 30}));
}

TEST(Factory, PenultimateFeaturesShape) {
  auto m = make_digit_net(NetMode::kFloat);
  init_parameters(*m, 3);
  m->set_training(false);
  const Tensor f =
      penultimate_features(*m, random_tensor(Shape{3, 1, 28, 28}, 3));
  EXPECT_EQ(f.shape(), (Shape{3, 32}));  // GAP output width
}

TEST(Factory, ParameterNamesAreUnique) {
  for (const Arch arch : {Arch::kResNet, Arch::kMobileNet, Arch::kDenseNet}) {
    auto m = make_model(arch, 16, NetMode::kQat);
    auto params = m->named_parameters();
    std::set<std::string> names;
    for (auto& np : params) {
      EXPECT_TRUE(names.insert(np.name).second)
          << "duplicate parameter name " << np.name;
    }
  }
}

TEST(Zoo, CacheRoundTripSkipsRetraining) {
  const std::string dir = ::testing::TempDir() + "/diva_zoo_test";
  std::filesystem::remove_all(dir);

  ZooConfig cfg;
  cfg.cache_dir = dir;
  cfg.verbose = false;
  // Tiny budget: this test checks the cache plumbing, not quality.
  cfg.num_classes = 4;
  cfg.train_per_class = 8;
  cfg.val_per_class = 4;
  cfg.float_epochs = 1;
  cfg.qat_epochs = 1;

  Tensor probe;
  {
    ModelZoo zoo(cfg);
    Sequential& m = zoo.original(Arch::kResNet);
    probe = m.forward(zoo.val_set().images);
  }
  EXPECT_TRUE(std::filesystem::exists(dir));
  {
    ModelZoo zoo(cfg);  // new instance must load from disk
    Sequential& m = zoo.original(Arch::kResNet);
    const Tensor again = m.forward(zoo.val_set().images);
    EXPECT_LT(max_abs(sub(probe, again)), 1e-6f);
  }
  std::filesystem::remove_all(dir);
}

TEST(Zoo, DatasetsAreDeterministicAndDisjointSplits) {
  ZooConfig cfg;
  cfg.verbose = false;
  cfg.num_classes = 4;
  cfg.train_per_class = 4;
  cfg.val_per_class = 4;
  cfg.surrogate_per_class = 4;
  ModelZoo zoo1(cfg), zoo2(cfg);
  EXPECT_LT(max_abs(sub(zoo1.train_set().images, zoo2.train_set().images)),
            1e-9f);
  // Train and surrogate splits share no identical image.
  const std::int64_t per = 3 * 32 * 32;
  for (std::int64_t i = 0; i < zoo1.train_set().size(); ++i) {
    for (std::int64_t j = 0; j < zoo1.surrogate_set().size(); ++j) {
      bool same = true;
      for (std::int64_t k = 0; k < per && same; ++k) {
        same = zoo1.train_set().images[i * per + k] ==
               zoo1.surrogate_set().images[j * per + k];
      }
      EXPECT_FALSE(same);
    }
  }
}

}  // namespace
}  // namespace diva
